module oakmap

go 1.22
