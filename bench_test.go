// Benchmarks regenerating the paper's evaluation (one per figure panel)
// plus ablations of Oak's design choices. These use testing.B with
// scaled-down data shapes so `go test -bench=.` completes quickly; the
// cmd/oak-bench and cmd/druid-bench binaries run the full sweeps with
// the paper's 100B keys / 1KB values and longer sustained stages.
//
// The mapping to the paper:
//
//	BenchmarkFig3aIngest            — Fig. 3a ingestion throughput
//	BenchmarkFig3bIngestTightRAM    — Fig. 3b ingestion under RAM budget
//	BenchmarkFig4aPut               — Fig. 4a put-only
//	BenchmarkFig4bComputeIfPresent  — Fig. 4b in-place updates
//	BenchmarkFig4cGet               — Fig. 4c get-only (ZC and Copy)
//	BenchmarkFig4d95Get5Put         — Fig. 4d mixed workload
//	BenchmarkFig4eAscendScan        — Fig. 4e ascending scans (Set/Stream)
//	BenchmarkFig4fDescendScan       — Fig. 4f descending scans
//	BenchmarkFig5aDruidIngest       — Fig. 5a I² ingestion
//	BenchmarkFig5bDruidIngestTightRAM — Fig. 5b ingestion under RAM budget
//	BenchmarkFig5cDruidMemory       — Fig. 5c RAM overhead (bytes/row metric)
//	BenchmarkAblation*              — design-choice ablations (DESIGN.md §7)
package oakmap_test

import (
	"fmt"
	"runtime/debug"
	"testing"

	"oakmap"
	"oakmap/internal/arena"
	"oakmap/internal/bench"
	"oakmap/internal/core"
	"oakmap/internal/druid"
)

const (
	benchKeyRange  = 50_000
	benchKeySize   = 32
	benchValueSize = 256
)

func benchTargets() []bench.Target {
	return []bench.Target{
		bench.NewOak(&oakmap.Options{BlockSize: 8 << 20}, false),
		bench.NewOnHeap(),
		bench.NewOffHeap(arena.NewPool(8<<20, 0)),
	}
}

func benchConfig(threads int) bench.Config {
	return bench.Config{
		Threads:   threads,
		KeyRange:  benchKeyRange,
		KeySize:   benchKeySize,
		ValueSize: benchValueSize,
		Seed:      42,
	}
}

// runMix benchmarks one op of the mix per b.N iteration across targets.
func runMix(b *testing.B, mix bench.Mix, targets []bench.Target) {
	for _, t := range targets {
		t := t
		b.Run(t.Name(), func(b *testing.B) {
			cfg := benchConfig(1)
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			r := bench.Run(t, cfg, mix)
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
		})
		t.Close()
	}
}

func BenchmarkFig3aIngest(b *testing.B) {
	for _, t := range benchTargets() {
		t := t
		b.Run(t.Name(), func(b *testing.B) {
			enc := bench.NewKeyEncoder(benchKeySize)
			kb := make([]byte, benchKeySize)
			val := bench.MakeValue(benchValueSize, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.PutIfAbsent(enc.Encode(kb, uint64(i)), val)
			}
		})
		t.Close()
	}
}

func BenchmarkFig3bIngestTightRAM(b *testing.B) {
	for _, t := range benchTargets() {
		t := t
		b.Run(t.Name(), func(b *testing.B) {
			prev := debug.SetMemoryLimit(256 << 20)
			defer debug.SetMemoryLimit(prev)
			enc := bench.NewKeyEncoder(benchKeySize)
			kb := make([]byte, benchKeySize)
			val := bench.MakeValue(benchValueSize, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.PutIfAbsent(enc.Encode(kb, uint64(i)), val)
			}
		})
		t.Close()
	}
}

func BenchmarkFig4aPut(b *testing.B)              { runMix(b, bench.MixPut, benchTargets()) }
func BenchmarkFig4bComputeIfPresent(b *testing.B) { runMix(b, bench.MixCompute, benchTargets()) }

func BenchmarkFig4cGet(b *testing.B) {
	targets := []bench.Target{
		bench.NewOak(&oakmap.Options{BlockSize: 8 << 20}, false),
		bench.NewOak(&oakmap.Options{BlockSize: 8 << 20}, true), // Oak-Copy
		bench.NewOnHeap(),
		bench.NewOffHeap(arena.NewPool(8<<20, 0)),
	}
	runMix(b, bench.MixGet, targets)
}

func BenchmarkFig4d95Get5Put(b *testing.B) { runMix(b, bench.Mix95Get5Put, benchTargets()) }

// scanBench runs one scan of scanLen entries per iteration.
func scanBench(b *testing.B, descending, stream bool, scanLen int) {
	targets := benchTargets()
	for _, t := range targets {
		t := t
		names := []string{t.Name()}
		if t.Name() == "Oak" {
			names = []string{"Oak-Set", "Oak-Stream"}
		}
		for _, name := range names {
			useStream := name == "Oak-Stream" || (stream && t.Name() != "Oak")
			b.Run(name, func(b *testing.B) {
				cfg := benchConfig(1)
				bench.Warm(t, cfg)
				enc := bench.NewKeyEncoder(benchKeySize)
				kb := make([]byte, benchKeySize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					from := enc.Encode(kb, uint64(i*7919%benchKeyRange))
					if descending {
						t.ScanDesc(from, scanLen, useStream)
					} else {
						t.Scan(from, scanLen, useStream)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(scanLen), "entries/scan")
			})
		}
		t.Close()
	}
}

func BenchmarkFig4eAscendScan(b *testing.B)  { scanBench(b, false, false, 1000) }
func BenchmarkFig4fDescendScan(b *testing.B) { scanBench(b, true, false, 1000) }

func BenchmarkFig5aDruidIngest(b *testing.B) {
	schema := druid.DefaultSchema(true)
	b.Run("I2-Oak", func(b *testing.B) {
		idx, err := druid.NewIndex(schema, &druid.IndexOptions{BlockSize: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		defer idx.Close()
		gen := druid.NewTupleGen(42, 4, []int{1000, 100000}, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.Ingest(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("I2-legacy", func(b *testing.B) {
		idx, err := druid.NewLegacyIndex(schema)
		if err != nil {
			b.Fatal(err)
		}
		gen := druid.NewTupleGen(42, 4, []int{1000, 100000}, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.Ingest(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5bDruidIngestTightRAM is Fig. 5b's panel: I² ingestion
// under a constrained RAM budget, where the GC burden separates the
// implementations.
func BenchmarkFig5bDruidIngestTightRAM(b *testing.B) {
	schema := druid.DefaultSchema(true)
	run := func(b *testing.B, ingest func(druid.Tuple) error) {
		prev := debug.SetMemoryLimit(256 << 20)
		defer debug.SetMemoryLimit(prev)
		gen := druid.NewTupleGen(42, 4, []int{1000, 100000}, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ingest(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("I2-Oak", func(b *testing.B) {
		idx, err := druid.NewIndex(schema, &druid.IndexOptions{BlockSize: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		defer idx.Close()
		run(b, idx.Ingest)
	})
	b.Run("I2-legacy", func(b *testing.B) {
		idx, err := druid.NewLegacyIndex(schema)
		if err != nil {
			b.Fatal(err)
		}
		run(b, idx.Ingest)
	})
}

// BenchmarkFig5cDruidMemory reports bytes of RAM per indexed row for the
// two I² implementations (the Fig. 5c overhead comparison), using the
// allocation metric as the proxy: allocations per ingested tuple.
func BenchmarkFig5cDruidMemory(b *testing.B) {
	schema := druid.DefaultSchema(true)
	b.Run("I2-Oak", func(b *testing.B) {
		idx, _ := druid.NewIndex(schema, &druid.IndexOptions{BlockSize: 8 << 20})
		defer idx.Close()
		gen := druid.NewTupleGen(7, 1, []int{1000, 100000}, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Ingest(gen.Next())
		}
		b.StopTimer()
		if idx.Cardinality() > 0 {
			b.ReportMetric(float64(idx.OffHeapBytes())/float64(idx.Cardinality()), "offheapB/row")
			b.ReportMetric(float64(idx.StoredDataBytes())/float64(idx.Cardinality()), "dataB/row")
		}
	})
	b.Run("I2-legacy", func(b *testing.B) {
		idx, _ := druid.NewLegacyIndex(schema)
		gen := druid.NewTupleGen(7, 1, []int{1000, 100000}, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Ingest(gen.Next())
		}
		b.StopTimer()
		if idx.Cardinality() > 0 {
			b.ReportMetric(float64(idx.StoredDataBytes())/float64(idx.Cardinality()), "dataB/row")
		}
	})
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationChunkSize sweeps the entries-array capacity.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, capacity := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			t := bench.NewOak(&oakmap.Options{ChunkCapacity: capacity, BlockSize: 8 << 20}, false)
			defer t.Close()
			cfg := benchConfig(1)
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N)
			b.ResetTimer()
			r := bench.Run(t, cfg, bench.MixPut)
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
		})
	}
}

// BenchmarkAblationRebalanceThreshold sweeps the unsorted/sorted trigger.
func BenchmarkAblationRebalanceThreshold(b *testing.B) {
	for _, ratio := range []float64{0.25, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("ratio=%.2f", ratio), func(b *testing.B) {
			t := bench.NewOak(&oakmap.Options{RebalanceRatio: ratio, BlockSize: 8 << 20}, false)
			defer t.Close()
			cfg := benchConfig(1)
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N)
			b.ResetTimer()
			r := bench.Run(t, cfg, bench.MixPut)
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
			b.ReportMetric(float64(t.Map().Stats().Rebalances), "rebalances")
		})
	}
}

// BenchmarkAblationDescend compares Oak's stack-based descending scan
// with the naive per-key-lookup implementation skiplists use — isolating
// the contribution of §4.2's design.
func BenchmarkAblationDescend(b *testing.B) {
	m := core.New(&core.Options{Pool: arena.NewPool(8<<20, 0)})
	defer m.Close()
	enc := bench.NewKeyEncoder(benchKeySize)
	kb := make([]byte, benchKeySize)
	val := bench.MakeValue(benchValueSize, 1)
	for i := 0; i < benchKeyRange; i++ {
		m.Put(enc.Encode(kb, uint64(i)), val)
	}
	const scanLen = 1000
	b.Run("chunk-stack", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			m.Descend(nil, nil, func(uint64, core.ValueHandle) bool {
				n++
				return n < scanLen
			})
		}
	})
	b.Run("naive-lookup-per-key", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			m.DescendNaive(nil, nil, func(uint64, core.ValueHandle) bool {
				n++
				return n < scanLen
			})
		}
	})
}

// BenchmarkAblationAllocator compares the three allocator modes under a
// churn (put+remove) workload: the default segregated size-class free
// lists, the paper-faithful flat first-fit list (§3.2), and bump-only
// allocation (no reuse).
func BenchmarkAblationAllocator(b *testing.B) {
	modes := []struct {
		name string
		opts oakmap.Options
	}{
		{"size-class", oakmap.Options{}},
		{"first-fit", oakmap.Options{FlatFreeList: true}},
		{"bump-only", oakmap.Options{DisableFirstFit: true}},
	}
	for _, m := range modes {
		opts := m.opts
		opts.BlockSize = 8 << 20
		b.Run(m.name, func(b *testing.B) {
			t := bench.NewOak(&opts, false)
			defer t.Close()
			cfg := benchConfig(1)
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N)
			b.ResetTimer()
			r := bench.Run(t, cfg, bench.Mix{Name: "churn", PutPct: 45, RemovePct: 45})
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
			b.ReportMetric(float64(t.OffHeapBytes())/(1<<20), "offheapMB")
		})
	}
}

// BenchmarkZCvsLegacyPut quantifies the copying saved by the zero-copy
// write path (Table 1's design rationale). Both sub-benchmarks overwrite
// keys of a pre-populated map, so they measure the same update path; the
// legacy put additionally deserializes and returns the old value.
func BenchmarkZCvsLegacyPut(b *testing.B) {
	newWarm := func() *oakmap.Map[uint64, []byte] {
		m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
			&oakmap.Options{BlockSize: 8 << 20})
		val := bench.MakeValue(benchValueSize, 3)
		for i := 0; i < benchKeyRange; i++ {
			m.ZC().Put(uint64(i), val)
		}
		return m
	}
	val := bench.MakeValue(benchValueSize, 4)
	b.Run("zc-put", func(b *testing.B) {
		m := newWarm()
		defer m.Close()
		zc := m.ZC()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			zc.Put(uint64(i%benchKeyRange), val)
		}
	})
	b.Run("legacy-put-returning-old", func(b *testing.B) {
		m := newWarm()
		defer m.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Put(uint64(i%benchKeyRange), val)
		}
	})
}

// BenchmarkAblationHeaderReclaim compares the default (append-only)
// header table with the generation-based reclaiming table under a
// delete-heavy churn workload, reporting header-slot growth.
func BenchmarkAblationHeaderReclaim(b *testing.B) {
	for _, reclaim := range []bool{false, true} {
		name := "default-no-reuse"
		if reclaim {
			name = "epoch-reclaiming"
		}
		b.Run(name, func(b *testing.B) {
			t := bench.NewOak(&oakmap.Options{BlockSize: 8 << 20, ReclaimHeaders: reclaim}, false)
			defer t.Close()
			cfg := benchConfig(1)
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N)
			b.ResetTimer()
			r := bench.Run(t, cfg, bench.Mix{Name: "churn", PutPct: 45, RemovePct: 45})
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
			b.ReportMetric(float64(t.Map().Stats().HeaderCount), "headers")
		})
	}
}

// BenchmarkAblationKeyReclaim measures what the epoch-based key/value
// reclamation layer costs and saves: a delete-heavy churn mix (put +
// remove over a bounded key range) at 1–32 goroutines, with the default
// epoch reclamation against the DisableKeyReclaim leaky baseline.
// Reported per run: churn ns/op, the final off-heap footprint, and the
// retained dead-key bytes (zero by definition under reclaim).
func BenchmarkAblationKeyReclaim(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "epoch-reclaim"
		if disable {
			name = "leaky-baseline"
		}
		for _, g := range []int{1, 2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/g=%d", name, g), func(b *testing.B) {
				t := bench.NewOak(&oakmap.Options{
					BlockSize:         8 << 20,
					DisableKeyReclaim: disable,
					ReclaimHeaders:    true,
				}, false)
				defer t.Close()
				cfg := benchConfig(g)
				bench.Warm(t, cfg)
				cfg.OpsPerThread = int64(b.N/g + 1)
				b.ResetTimer()
				r := bench.Run(t, cfg, bench.Mix{Name: "churn", PutPct: 45, RemovePct: 45})
				b.StopTimer()
				s := t.Map().Stats()
				b.ReportMetric(r.KopsPerSec, "Kops/s")
				b.ReportMetric(float64(s.Footprint)/(1<<20), "footprintMB")
				b.ReportMetric(float64(s.KeyLeakBytes)/(1<<20), "keyLeakMB")
			})
		}
	}
}

// BenchmarkMapDBComparison reruns the comparison §5 omits data for: the
// off-heap B+ tree (MapDB stand-in) against Oak under puts and gets.
func BenchmarkMapDBComparison(b *testing.B) {
	targets := []bench.Target{
		bench.NewOak(&oakmap.Options{BlockSize: 8 << 20}, false),
		bench.NewBTree(arena.NewPool(8<<20, 0)),
	}
	for _, mix := range []bench.Mix{bench.MixPut, bench.MixGet} {
		for _, t := range targets {
			b.Run(mix.Name+"/"+t.Name(), func(b *testing.B) {
				cfg := benchConfig(4) // contention exposes the global lock
				bench.Warm(t, cfg)
				cfg.OpsPerThread = int64(b.N/4 + 1)
				b.ResetTimer()
				r := bench.Run(t, cfg, mix)
				b.StopTimer()
				b.ReportMetric(r.KopsPerSec, "Kops/s")
			})
		}
	}
	for _, t := range targets {
		t.Close()
	}
}

// BenchmarkZipfContention measures the solutions under a skewed key
// distribution (synchrobench's Zipf workloads): hot keys concentrate
// updates on a few values, stressing Oak's per-value locks against the
// baselines' node-level synchronization.
func BenchmarkZipfContention(b *testing.B) {
	for _, t := range benchTargets() {
		t := t
		b.Run(t.Name(), func(b *testing.B) {
			cfg := benchConfig(4)
			cfg.ZipfS = 1.3
			bench.Warm(t, cfg)
			cfg.OpsPerThread = int64(b.N/4 + 1)
			b.ResetTimer()
			r := bench.Run(t, cfg, bench.Mix{Name: "zipf-50put", PutPct: 50})
			b.StopTimer()
			b.ReportMetric(r.KopsPerSec, "Kops/s")
		})
		t.Close()
	}
}

// BenchmarkIteratorVsCallback compares the pull iterator with the
// callback scan over the same range (the pull form costs one cursor
// object; both are allocation-free per entry in stream mode).
func BenchmarkIteratorVsCallback(b *testing.B) {
	m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 8 << 20})
	defer m.Close()
	zc := m.ZC()
	val := bench.MakeValue(64, 1)
	for i := uint64(0); i < 20000; i++ {
		zc.Put(i, val)
	}
	const scanLen = 1000
	b.Run("callback-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			zc.AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
				n++
				return n < scanLen
			})
		}
	})
	b.Run("pull-iterator-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := zc.Iterator(nil, nil, false, true)
			for n := 0; n < scanLen; n++ {
				if _, _, ok := it.Next(); !ok {
					break
				}
			}
		}
	})
}
