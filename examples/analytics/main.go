// Analytics builds a miniature real-time rollup index — the workload
// class that motivates Oak (§6) — directly on the public API. Concurrent
// writers ingest page-view events keyed by (minute, page); every ingest
// atomically updates a fixed-size aggregate row (count, sum, min, max of
// latency) in place, off-heap, with PutIfAbsentComputeIfPresent. A
// concurrent reader issues time-range queries over the live index.
//
//	go run ./examples/analytics
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"oakmap"
)

// eventKey identifies a rollup row: a minute bucket plus a page id.
type eventKey struct {
	Minute int64
	PageID uint32
}

// eventKeySerializer orders rows by time, then page (big-endian fields
// keep bytes.Compare consistent with the natural order).
type eventKeySerializer struct{}

func (eventKeySerializer) SizeOf(eventKey) int { return 12 }
func (eventKeySerializer) Serialize(k eventKey, buf []byte) {
	binary.BigEndian.PutUint64(buf, uint64(k.Minute)^(1<<63))
	binary.BigEndian.PutUint32(buf[8:], k.PageID)
}
func (eventKeySerializer) Deserialize(buf []byte) eventKey {
	return eventKey{
		Minute: int64(binary.BigEndian.Uint64(buf) ^ (1 << 63)),
		PageID: binary.BigEndian.Uint32(buf[8:]),
	}
}

// aggRow is a fixed-size aggregate: count, sum, min, max (32 bytes).
// Fixed size makes every update a pure in-place compute.
type aggRow struct{ Count, Sum, Min, Max float64 }

type aggRowSerializer struct{}

func (aggRowSerializer) SizeOf(aggRow) int { return 32 }
func (aggRowSerializer) Serialize(r aggRow, buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(r.Count))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.Sum))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.Min))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(r.Max))
}
func (aggRowSerializer) Deserialize(buf []byte) aggRow {
	return aggRow{
		Count: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
		Sum:   math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		Min:   math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		Max:   math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
	}
}

// fold updates the serialized aggregate in place.
func fold(buf []byte, latency float64) {
	cnt := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
	sum := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
	lo := math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(cnt+1))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(sum+latency))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(math.Min(lo, latency)))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(math.Max(hi, latency)))
}

func main() {
	idx := oakmap.New[eventKey, aggRow](
		eventKeySerializer{}, aggRowSerializer{},
		&oakmap.Options{BlockSize: 8 << 20},
	)
	defer idx.Close()
	zc := idx.ZC()

	const (
		writers    = 4
		eventsPerW = 50_000
		pages      = 200
		minutes    = 30
	)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for i := 0; i < eventsPerW; i++ {
				k := eventKey{
					Minute: int64(rng.Uint64() % minutes),
					PageID: uint32(rng.Uint64() % pages),
				}
				latency := 5 + rng.ExpFloat64()*20
				init := aggRow{Count: 1, Sum: latency, Min: latency, Max: latency}
				// One linearizable call: insert the first event's row, or
				// fold the event into the existing row in place.
				err := zc.PutIfAbsentComputeIfPresent(k, init, func(row oakmap.OakWBuffer) error {
					fold(row.Bytes(), latency)
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}(uint64(w + 1))
	}

	// A concurrent reader: live dashboards query while ingestion runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			lo := eventKey{Minute: 10, PageID: 0}
			hi := eventKey{Minute: 20, PageID: 0}
			var total float64
			zc.AscendStream(&lo, &hi, func(k, v *oakmap.OakRBuffer) bool {
				v.Read(func(b []byte) error {
					total += math.Float64frombits(binary.LittleEndian.Uint64(b))
					return nil
				})
				return true
			})
		}
	}()
	wg.Wait()
	<-done

	// Final report: per-minute totals via a descending stream scan
	// (most recent minute first), then a full verification count.
	fmt.Println("per-minute event counts (most recent first):")
	var lastMinute int64 = -1
	var minuteCount float64
	flush := func() {
		if lastMinute >= 0 {
			fmt.Printf("  minute %2d: %8.0f events\n", lastMinute, minuteCount)
		}
	}
	shown := 0
	truncated := false
	zc.DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		var kb [12]byte
		k.Read(func(b []byte) error { copy(kb[:], b); return nil })
		minute := int64(binary.BigEndian.Uint64(kb[:]) ^ (1 << 63)) // inline decode
		if minute != lastMinute {
			flush()
			if shown++; shown > 5 {
				truncated = true
				return false
			}
			lastMinute, minuteCount = minute, 0
		}
		v.Read(func(b []byte) error {
			minuteCount += math.Float64frombits(binary.LittleEndian.Uint64(b))
			return nil
		})
		return true
	})
	if !truncated {
		flush()
	}

	var grand float64
	idx.Range(nil, nil, func(k eventKey, r aggRow) bool {
		grand += r.Count
		return true
	})
	fmt.Printf("total events folded: %.0f (expected %d)\n", grand, writers*eventsPerW)
	fmt.Printf("distinct rows: %d, off-heap footprint: %.1f MB\n",
		idx.Len(), float64(idx.Footprint())/(1<<20))
}
