// Quickstart demonstrates oakmap's two API surfaces on a small dataset:
// the legacy (copying) ConcurrentNavigableMap-style API, the zero-copy
// API with buffer views and in-place compute, and the map's memory
// introspection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oakmap"
)

func main() {
	// An Oak map from string keys to string values. Serializers convert
	// objects to/from Oak's off-heap buffers; nil options = paper
	// defaults (4096-entry chunks, shared 100MB block pool).
	m := oakmap.New[string, string](
		oakmap.StringSerializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 8 << 20},
	)
	defer m.Close()

	// --- Legacy API: objects in, objects out (copies at the boundary).
	if _, _, err := m.Put("cherry", "red"); err != nil {
		log.Fatal(err)
	}
	m.Put("banana", "yellow")
	m.Put("apple", "green")
	if v, ok := m.Get("banana"); ok {
		fmt.Println("banana is", v)
	}
	prev, _, _ := m.Put("apple", "red")
	fmt.Println("apple was", prev)

	// --- Zero-copy API: buffer views instead of objects.
	zc := m.ZC()
	if buf := zc.Get("cherry"); buf != nil {
		// Read accesses the off-heap bytes in place, atomically.
		buf.Read(func(b []byte) error {
			fmt.Printf("cherry bytes: %q\n", b)
			return nil
		})
	}

	// Atomic in-place update: the lambda runs under the value's write
	// lock, exactly once (Java's compute is not atomic; Oak's is).
	zc.ComputeIfPresent("cherry", func(w oakmap.OakWBuffer) error {
		b := w.Bytes()
		b[0] = 'R' // red → Red
		return nil
	})
	v, _ := m.Get("cherry")
	fmt.Println("cherry is now", v)

	// Upsert-style aggregation in one linearizable call.
	for i := 0; i < 3; i++ {
		zc.PutIfAbsentComputeIfPresent("counter", "x", func(w oakmap.OakWBuffer) error {
			return w.Set(append([]byte{}, append(w.Bytes(), 'x')...))
		})
	}
	v, _ = m.Get("counter")
	fmt.Println("counter =", v) // xxx: 1 insert + 2 computes

	// --- Ordered iteration: ascending, descending, and sub-ranges.
	fmt.Print("ascending:")
	m.Range(nil, nil, func(k, v string) bool {
		fmt.Printf(" %s=%s", k, v)
		return true
	})
	fmt.Println()

	fmt.Print("descending (stream API, zero allocation):")
	zc.DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		kb, _ := k.Bytes()
		fmt.Printf(" %s", kb)
		return true
	})
	fmt.Println()

	from, to := "b", "d"
	fmt.Printf("range [%s, %s): %d entries\n", from, to, m.SubMap(&from, &to).Len())

	// --- Navigation queries (ConcurrentNavigableMap surface).
	if k, ok := m.FloorKey("bz"); ok {
		fmt.Println("floor(bz) =", k)
	}
	if k, ok := m.HigherKey("banana"); ok {
		fmt.Println("higher(banana) =", k)
	}

	// --- Memory introspection: the paper's fast footprint estimate.
	st := m.Stats()
	fmt.Printf("%d keys, %d B live off-heap, %d B reserved, %d chunks\n",
		st.Len, st.LiveBytes, st.Footprint, st.Chunks)
}
