// Druid walks the paper's §6 case study end to end: build an Oak-backed
// incremental index (I²-Oak), ingest a synthetic event stream while
// serving queries, compare its memory profile with the legacy skiplist
// index (I²-legacy), then freeze it into an immutable segment and
// dispose the live index — the full Druid ingestion lifecycle.
//
//	go run ./examples/druid
package main

import (
	"fmt"
	"log"
	"runtime"

	"oakmap/internal/druid"
)

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func main() {
	schema := druid.Schema{
		Dimensions: []string{"page", "country"},
		Metrics:    []string{"latency_ms", "bytes"},
		Aggregators: []druid.AggregatorSpec{
			{Kind: druid.AggCount},
			{Kind: druid.AggSum, Metric: 0},
			{Kind: druid.AggMax, Metric: 0},
			{Kind: druid.AggSum, Metric: 1},
			{Kind: druid.AggUniqueHLL, Dim: 1, HLLPrecision: 9},
			{Kind: druid.AggQuantileP2, Metric: 0, Quantile: 0.95},
		},
		Rollup: true,
	}

	idx, err := druid.NewIndex(schema, &druid.IndexOptions{BlockSize: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	leg, err := druid.NewLegacyIndex(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest the same stream into both implementations.
	const tuples = 150_000
	base := heapMB()
	gen := druid.NewTupleGen(2024, 6, []int{500, 40_000}, 2)
	for i := 0; i < tuples; i++ {
		t := gen.Next()
		if err := idx.Ingest(t); err != nil {
			log.Fatal(err)
		}
		if err := leg.Ingest(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d tuples → %d rollup rows\n", tuples, idx.Cardinality())
	fmt.Printf("stored data:        %.1f MB\n", float64(idx.StoredDataBytes())/(1<<20))
	fmt.Printf("I²-Oak off-heap:    %.1f MB (GC-opaque)\n", float64(idx.OffHeapBytes())/(1<<20))
	fmt.Printf("process heap now:   %.1f MB (started at %.1f)\n", heapMB(), base)

	// Serve the three Druid query families from the live index.
	last := idx.RecentKeys(1)[0]
	fmt.Printf("\nper-5k-tick event counts (timeseries):")
	for _, c := range idx.Timeseries(0, last+1, (last+1)/5+1, 0) {
		fmt.Printf(" %.0f", c)
	}
	fmt.Println()

	top := idx.TopN(0, 1, 0, last+1, 3)
	fmt.Println("top-3 pages by total latency (topN):")
	for _, g := range top {
		fmt.Printf("  %-18s sum=%.0fms  p95≈%.1fms  uniq-countries≈%.0f\n",
			g.DimValue, g.Aggs[1], g.Aggs[5], g.Aggs[4])
	}

	filtered := idx.TimeseriesWhere(0, last+1, (last+1)/3+1, 0, 0, top[0].DimValue)
	fmt.Printf("events for %s only (filtered):", top[0].DimValue)
	for _, c := range filtered {
		fmt.Printf(" %.0f", c)
	}
	fmt.Println()

	// Cross-check: both implementations agree on every aggregate.
	a := idx.QueryTimeRange(0, last+1)
	b := leg.QueryTimeRange(0, last+1)
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("I²-Oak and I²-legacy disagree on aggregate %d: %v vs %v", i, a[i], b[i])
		}
	}
	fmt.Println("\nI²-Oak and I²-legacy agree on all aggregates ✓")

	// The lifecycle finale (§6): the full index is reorganized into an
	// immutable segment and the I² is disposed, returning its off-heap
	// blocks to the pool.
	seg, err := idx.Persist()
	if err != nil {
		log.Fatal(err)
	}
	idx.Close()
	fmt.Printf("\npersisted segment: %d rows, %.1f MB flat arrays\n",
		seg.Len(), float64(seg.SizeBytes())/(1<<20))
	segTop := seg.TopN(0, 1, 0, last+1, 1)
	fmt.Printf("segment still answers queries after dispose: top page = %s\n",
		segTop[0].DimValue)
}
