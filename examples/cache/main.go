// Cache runs a read-mostly concurrent workload (the 95% get / 5% put mix
// of Fig. 4d) against an Oak map used as a large in-process object cache,
// and contrasts its heap behaviour with a mutex-guarded Go map holding
// the same data on-heap. It prints throughput, hit rate, GC cycles, and
// the bytes the garbage collector must scan in each design — the
// motivation for off-heap allocation in one screen of output.
//
//	go run ./examples/cache
package main

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oakmap"
)

const (
	entries   = 200_000
	valueSize = 512
	workers   = 4
	duration  = 2 * time.Second
)

func makeValue(i uint64) []byte {
	v := make([]byte, valueSize)
	for j := range v {
		v[j] = byte(i + uint64(j))
	}
	return v
}

type counters struct {
	ops, hits atomic.Int64
}

func workload(get func(uint64) bool, put func(uint64, []byte)) *counters {
	c := new(counters)
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 17))
			val := makeValue(seed)
			ops, hits := int64(0), int64(0)
			for time.Now().Before(deadline) {
				for i := 0; i < 1024; i++ {
					k := rng.Uint64() % (entries * 2) // 50% misses by key space
					if rng.Uint64()%100 < 5 {
						put(k, val)
					} else if get(k) {
						hits++
					}
					ops++
				}
			}
			c.ops.Add(ops)
			c.hits.Add(hits)
		}(uint64(w + 1))
	}
	wg.Wait()
	return c
}

func gcStats() (numGC uint32, heapMB float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.NumGC, float64(ms.HeapAlloc) / (1 << 20)
}

func main() {
	// --- Oak cache: values live off-heap; the GC sees a handful of
	// pointer-free blocks no matter how many entries exist.
	oak := oakmap.New[uint64, []byte](
		oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 16 << 20},
	)
	defer oak.Close()
	zc := oak.ZC()
	for i := uint64(0); i < entries; i++ {
		if err := zc.Put(i, makeValue(i)); err != nil {
			panic(err)
		}
	}
	runtime.GC()
	gc0, _ := gcStats()
	start := time.Now()
	oakC := workload(
		func(k uint64) bool {
			buf := zc.Get(k)
			if buf == nil {
				return false
			}
			return buf.Read(func([]byte) error { return nil }) == nil
		},
		func(k uint64, v []byte) { zc.Put(k, v) },
	)
	oakElapsed := time.Since(start)
	gc1, oakHeap := gcStats()
	fmt.Printf("Oak cache:    %6.0f Kops/s, %4.1f%% hits, %2d GCs, %6.1f MB scannable heap (+%5.1f MB off-heap)\n",
		float64(oakC.ops.Load())/oakElapsed.Seconds()/1000,
		100*float64(oakC.hits.Load())/float64(oakC.ops.Load()),
		gc1-gc0, oakHeap-float64(oak.Footprint())/(1<<20),
		float64(oak.Footprint())/(1<<20))

	// --- On-heap cache: every entry is a distinct object the GC must
	// track; under churn this shows up as GC cycles and latency.
	onheap := struct {
		sync.RWMutex
		m map[uint64][]byte
	}{m: make(map[uint64][]byte, entries)}
	for i := uint64(0); i < entries; i++ {
		onheap.m[i] = makeValue(i)
	}
	runtime.GC()
	gc0, _ = gcStats()
	start = time.Now()
	heapC := workload(
		func(k uint64) bool {
			onheap.RLock()
			_, ok := onheap.m[k]
			onheap.RUnlock()
			return ok
		},
		func(k uint64, v []byte) {
			onheap.Lock()
			onheap.m[k] = append([]byte(nil), v...)
			onheap.Unlock()
		},
	)
	heapElapsed := time.Since(start)
	gc1, heapHeap := gcStats()
	fmt.Printf("On-heap map:  %6.0f Kops/s, %4.1f%% hits, %2d GCs, %6.1f MB scannable heap\n",
		float64(heapC.ops.Load())/heapElapsed.Seconds()/1000,
		100*float64(heapC.hits.Load())/float64(heapC.ops.Load()),
		gc1-gc0, heapHeap)

	// Note: the Go map is unordered and cannot serve the range scans an
	// ordered cache needs; Oak gives ordering for free.
	lo, hi := uint64(1000), uint64(1010)
	fmt.Printf("Oak bonus — range [1000,1010): %d entries (Go map cannot do this)\n",
		oak.SubMap(&lo, &hi).Len())
}
