// Timeseries stores variable-size event records keyed by (timestamp,
// sequence) and serves the two access patterns real-time monitoring
// needs: "tail the most recent N events" via Oak's fast descending
// scans (§4.2) and windowed range scans via sub-maps. It also shows
// variable-size values being resized in place with the ZC compute API.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"math/rand/v2"

	"oakmap"
)

// record is a variable-size log event.
type record struct {
	Level   uint8
	Message string
}

type recordSerializer struct{}

func (recordSerializer) SizeOf(r record) int { return 1 + len(r.Message) }
func (recordSerializer) Serialize(r record, buf []byte) {
	buf[0] = r.Level
	copy(buf[1:], r.Message)
}
func (recordSerializer) Deserialize(buf []byte) record {
	return record{Level: buf[0], Message: string(buf[1:])}
}

func main() {
	m := oakmap.New[uint64, record](
		oakmap.Uint64Serializer{}, recordSerializer{},
		&oakmap.Options{BlockSize: 4 << 20},
	)
	defer m.Close()
	zc := m.ZC()

	// Ingest 100k events with timestamps in the key's high bits and a
	// sequence number below, so keys are unique and time-ordered.
	rng := rand.New(rand.NewPCG(7, 8))
	levels := []string{"DEBUG", "INFO", "WARN", "ERROR"}
	const events = 100_000
	for i := 0; i < events; i++ {
		ts := uint64(i / 10)              // 10 events per tick
		key := ts<<20 | uint64(i%(1<<20)) // ts | seq
		lvl := uint8(rng.Uint64() % 4)
		msg := fmt.Sprintf("%s event #%d from host-%02d",
			levels[lvl], i, rng.Uint64()%16)
		if err := zc.Put(key, record{Level: lvl, Message: msg}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("ingested %d events, footprint %.1f MB, %d chunks\n",
		m.Len(), float64(m.Footprint())/(1<<20), m.Stats().Chunks)

	// --- Tail the log: the 5 most recent events, newest first. On a
	// skiplist this costs one O(log n) lookup per event; Oak pops them
	// from the chunk's descending stack.
	fmt.Println("\nmost recent events:")
	n := 0
	zc.DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		v.Read(func(b []byte) error {
			fmt.Printf("  %s\n", b[1:])
			return nil
		})
		n++
		return n < 5
	})

	// --- Windowed scan: all events of ticks [500, 502).
	lo, hi := uint64(500)<<20, uint64(502)<<20
	window := m.SubMap(&lo, &hi)
	fmt.Printf("\nwindow [tick 500, 502) holds %d events\n", window.Len())

	// Count errors in the window without deserializing messages.
	errCount := 0
	window.ZC().AscendStream(func(k, v *oakmap.OakRBuffer) bool {
		lvl, _ := v.ByteAt(0)
		if lvl == 3 {
			errCount++
		}
		return true
	})
	fmt.Printf("errors in window: %d\n", errCount)

	// --- In-place value editing with resize: redact ERROR messages.
	// The compute lambda is atomic; Resize moves the value within the
	// arena when it grows or shrinks.
	redacted := 0
	var errKeys []uint64
	m.Range(&lo, &hi, func(k uint64, r record) bool {
		if r.Level == 3 {
			errKeys = append(errKeys, k)
		}
		return true
	})
	for _, k := range errKeys {
		ok, err := zc.ComputeIfPresent(k, func(w oakmap.OakWBuffer) error {
			if err := w.Resize(1 + len("[redacted]")); err != nil {
				return err
			}
			copy(w.Bytes()[1:], "[redacted]")
			return nil
		})
		if err != nil {
			panic(err)
		}
		if ok {
			redacted++
		}
	}
	fmt.Printf("redacted %d error messages in place\n", redacted)

	if len(errKeys) > 0 {
		r, _ := m.Get(errKeys[0])
		fmt.Printf("first redacted record now reads: %q\n", r.Message)
	}

	// --- Retention: drop everything before tick 9000 and report the
	// reclaimed space (freed value bytes return to Oak's free list).
	before := m.LiveBytes()
	cutoff := uint64(9000) << 20
	var victims []uint64
	m.Range(nil, &cutoff, func(k uint64, _ record) bool {
		victims = append(victims, k)
		return true
	})
	for _, k := range victims {
		zc.Remove(k)
	}
	fmt.Printf("\nretention dropped %d events; live bytes %.1f MB → %.1f MB\n",
		len(victims), float64(before)/(1<<20), float64(m.LiveBytes())/(1<<20))
	if k, ok := m.FirstKey(); ok {
		fmt.Printf("oldest remaining tick: %d\n", k>>20)
	}
}
