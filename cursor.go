package oakmap

import "oakmap/internal/core"

// Iterator is a pull-style zero-copy scan: the Go rendering of the
// iterators behind the paper's keySet()/entrySet() views. Obtain one
// from ZeroCopyMap.Iterator; advance with Next. Iterators are not safe
// for concurrent use by multiple goroutines (create one per goroutine),
// but the map may be mutated concurrently — the usual non-atomic scan
// guarantees apply.
type Iterator[K, V any] struct {
	cur    *core.Cursor
	m      *Map[K, V]
	stream bool
	kb, vb OakRBuffer // reused when stream is true
}

// Iterator creates a pull iterator over from ≤ key < to (nil bounds are
// open), ascending or descending. With stream=true the iterator reuses
// one pair of buffer views across all entries (the paper's stream scan
// semantics: do not retain the views).
func (z ZeroCopyMap[K, V]) Iterator(from, to *K, descending, stream bool) *Iterator[K, V] {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	it := &Iterator[K, V]{
		cur:    z.m.core.NewCursor(lo, hi, descending),
		m:      z.m,
		stream: stream,
	}
	it.kb.m = z.m.core
	it.vb.m = z.m.core
	return it
}

// Next returns views of the next entry, or ok=false at the end.
func (it *Iterator[K, V]) Next() (key, value *OakRBuffer, ok bool) {
	kr, h, ok := it.cur.Next()
	if !ok {
		return nil, nil, false
	}
	if it.stream {
		it.kb.keyRef, it.kb.h = kr, h
		it.vb.h = h
		return &it.kb, &it.vb, true
	}
	return &OakRBuffer{m: it.m.core, keyRef: kr, h: h},
		&OakRBuffer{m: it.m.core, h: h}, true
}

// NextEntry returns the next entry deserialized (a convenience for
// legacy-style consumption of a pull iterator). Entries whose value was
// deleted between the cursor step and the read are skipped.
func (it *Iterator[K, V]) NextEntry() (k K, v V, ok bool) {
	for {
		kr, h, cok := it.cur.Next()
		if !cok {
			return k, v, false
		}
		// Read the key under an epoch pin, validated against the entry's
		// handle; if the mapping vanished since the cursor step, skip it
		// like a deleted value.
		if it.m.core.ReadKey(kr, h, func(b []byte) error {
			k = it.m.keySer.Deserialize(b)
			return nil
		}) != nil {
			continue
		}
		got := false
		it.m.core.ReadValue(h, func(b []byte) error {
			v = it.m.valSer.Deserialize(b)
			got = true
			return nil
		})
		if got {
			return k, v, true
		}
	}
}
