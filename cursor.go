package oakmap

// Iterator is a pull-style zero-copy scan: the Go rendering of the
// iterators behind the paper's keySet()/entrySet() views. Obtain one
// from ZeroCopyMap.Iterator; advance with Next. Iterators are not safe
// for concurrent use by multiple goroutines (create one per goroutine),
// but the map may be mutated concurrently — the usual non-atomic scan
// guarantees apply. On a sharded map the iterator pulls from the k-way
// merge cursor, so entries arrive in global key order.
type Iterator[K, V any] struct {
	cur    entryCursor
	m      *Map[K, V]
	stream bool
	kb, vb OakRBuffer // reused when stream is true
}

// Iterator creates a pull iterator over from ≤ key < to (nil bounds are
// open), ascending or descending. With stream=true the iterator reuses
// one pair of buffer views across all entries (the paper's stream scan
// semantics: do not retain the views).
func (z ZeroCopyMap[K, V]) Iterator(from, to *K, descending, stream bool) *Iterator[K, V] {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	return &Iterator[K, V]{
		cur:    z.m.be.NewCursor(lo, hi, descending),
		m:      z.m,
		stream: stream,
	}
}

// Next returns views of the next entry, or ok=false at the end. Stream
// key views read the cursor's owned key copy, valid until the next Next.
func (it *Iterator[K, V]) Next() (key, value *OakRBuffer, ok bool) {
	src, kbytes, kr, h, ok := it.cur.Next()
	if !ok {
		return nil, nil, false
	}
	if it.stream {
		it.kb.view = kbytes
		it.vb.m, it.vb.h = src, h
		return &it.kb, &it.vb, true
	}
	return &OakRBuffer{m: src, keyRef: kr, h: h},
		&OakRBuffer{m: src, h: h}, true
}

// NextEntry returns the next entry deserialized (a convenience for
// legacy-style consumption of a pull iterator). Entries whose value was
// deleted between the cursor step and the read are skipped.
func (it *Iterator[K, V]) NextEntry() (k K, v V, ok bool) {
	for {
		src, kbytes, _, h, cok := it.cur.Next()
		if !cok {
			return k, v, false
		}
		got := false
		src.ReadValue(h, func(b []byte) error {
			v = it.m.valSer.Deserialize(b)
			got = true
			return nil
		})
		if !got {
			continue // deleted between the cursor step and the read
		}
		k = it.m.keySer.Deserialize(kbytes)
		return k, v, true
	}
}
