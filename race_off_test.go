//go:build !race

package oakmap_test

// raceEnabled mirrors the race detector's presence (see race_on_test.go).
const raceEnabled = false
