package oakmap

import (
	"oakmap/internal/core"
	"oakmap/sharded"
)

// backend is the seam between the generic facade and the storage engine:
// a plain single core map, or a hash-sharded collection of them
// (Options.Shards). Everything the facade needs routes through here, so
// the public API is identical either way.
//
// Point operations resolve their owning core map once via ShardFor and
// then speak the core protocol directly — for multi-step operations
// (compute-then-insert loops) the resolution is done once per public
// call, which is correct because routing is a pure function of the key.
//
// Scans yield (src, key, keyRef, h): src is the core map the entry lives
// in, and key is a slice valid for the duration of the callback — arena
// bytes under the scan's epoch pin for the plain backend, the merge
// cursor's owned copy for the sharded one. Retainable views must go
// through (src, keyRef, h), which re-validate under src's pin on every
// read.
type backend interface {
	// ShardFor returns the core map owning key (the single map when
	// unsharded — no hashing on that path).
	ShardFor(key []byte) *core.Map
	// Shards returns the underlying core maps, index-stable; length 1
	// when unsharded. For stats rollup and quiescing only.
	Shards() []*core.Map

	Ascend(lo, hi []byte, yield scanFunc)
	Descend(lo, hi []byte, yield scanFunc)
	NewCursor(lo, hi []byte, desc bool) entryCursor

	First() (*core.Map, uint64, core.ValueHandle, bool)
	Last() (*core.Map, uint64, core.ValueHandle, bool)
	Floor(k []byte) (*core.Map, uint64, core.ValueHandle, bool)
	Ceiling(k []byte) (*core.Map, uint64, core.ValueHandle, bool)
	Lower(k []byte) (*core.Map, uint64, core.ValueHandle, bool)
	Higher(k []byte) (*core.Map, uint64, core.ValueHandle, bool)

	// Snapshot acquires a stabilized point-in-time view of the whole
	// backend (all shards, consistent with atomic batches); ApplyBatch
	// installs ops all-or-nothing. Both speak serialized keys/values —
	// the generic wrappers live on Map.Snapshot / Map.ApplyBatch.
	Snapshot() beSnapshot
	ApplyBatch(ops []core.BatchOp) error

	Close()
	Quiesce() bool
}

// beSnapshot is a backend point-in-time view. Get appends the frozen
// value to dst; Cursor scans the frozen view in key order. Close
// releases the retention horizon — exactly once, enforced by the facade.
type beSnapshot interface {
	Get(key, dst []byte) ([]byte, bool)
	Cursor(lo, hi []byte, desc bool) beSnapCursor
	Close()
}

// beSnapCursor pulls frozen entries; key and val are owned by the
// cursor and valid until the following Next call.
type beSnapCursor interface {
	Next() (key, val []byte, ok bool)
}

// scanFunc is the backend scan callback; see the backend contract for
// the lifetime of key.
type scanFunc = func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool

// entryCursor is a pull scan over the backend. key is valid until the
// next Next call (both implementations hand out an owned on-heap copy,
// never pinned arena bytes).
type entryCursor interface {
	Next() (src *core.Map, key []byte, keyRef uint64, h core.ValueHandle, ok bool)
}

// --- plain backend: one core map ---

type plainBackend struct {
	c *core.Map
}

func (b plainBackend) ShardFor([]byte) *core.Map { return b.c }
func (b plainBackend) Shards() []*core.Map       { return []*core.Map{b.c} }

func (b plainBackend) Ascend(lo, hi []byte, yield scanFunc) {
	b.c.Ascend(lo, hi, func(keyRef uint64, h core.ValueHandle) bool {
		return yield(b.c, b.c.KeyBytes(keyRef), keyRef, h)
	})
}

func (b plainBackend) Descend(lo, hi []byte, yield scanFunc) {
	b.c.Descend(lo, hi, func(keyRef uint64, h core.ValueHandle) bool {
		return yield(b.c, b.c.KeyBytes(keyRef), keyRef, h)
	})
}

func (b plainBackend) NewCursor(lo, hi []byte, desc bool) entryCursor {
	return &plainCursor{c: b.c, cur: b.c.NewCursor(lo, hi, desc)}
}

func (b plainBackend) First() (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.First()
	return b.c, kr, h, ok
}
func (b plainBackend) Last() (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.Last()
	return b.c, kr, h, ok
}
func (b plainBackend) Floor(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.Floor(k)
	return b.c, kr, h, ok
}
func (b plainBackend) Ceiling(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.Ceiling(k)
	return b.c, kr, h, ok
}
func (b plainBackend) Lower(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.Lower(k)
	return b.c, kr, h, ok
}
func (b plainBackend) Higher(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	kr, h, ok := b.c.Higher(k)
	return b.c, kr, h, ok
}

func (b plainBackend) Snapshot() beSnapshot {
	s := b.c.BeginSnapshot()
	b.c.StabilizeSnapshot(s)
	return &plainSnapshot{c: b.c, ver: s}
}

func (b plainBackend) ApplyBatch(ops []core.BatchOp) error { return b.c.ApplyBatch(ops) }

func (b plainBackend) Close()        { b.c.Close() }
func (b plainBackend) Quiesce() bool { return b.c.QuiesceReclaim() }

// plainSnapshot adapts one core map's snapshot protocol to the backend
// view shape.
type plainSnapshot struct {
	c   *core.Map
	ver uint64
}

func (s *plainSnapshot) Get(key, dst []byte) ([]byte, bool) {
	return s.c.SnapGet(s.ver, key, dst)
}

func (s *plainSnapshot) Cursor(lo, hi []byte, desc bool) beSnapCursor {
	return s.c.NewSnapCursor(s.ver, lo, hi, desc)
}

func (s *plainSnapshot) Close() { s.c.EndSnapshot(s.ver) }

// plainCursor adapts core.Cursor to the entryCursor shape: the key handed
// out is the cursor's owned resume copy, like the merged cursor's.
type plainCursor struct {
	c   *core.Map
	cur *core.Cursor
}

func (p *plainCursor) Next() (*core.Map, []byte, uint64, core.ValueHandle, bool) {
	kr, h, ok := p.cur.Next()
	if !ok {
		return nil, nil, 0, 0, false
	}
	return p.c, p.cur.Key(), kr, h, true
}

// --- sharded backend: hash-partitioned core maps with merged scans ---

type shardedBackend struct {
	s *sharded.Map
}

func (b shardedBackend) ShardFor(key []byte) *core.Map { return b.s.ShardFor(key) }
func (b shardedBackend) Shards() []*core.Map           { return b.s.Shards() }

func (b shardedBackend) Ascend(lo, hi []byte, yield scanFunc) {
	b.s.Ascend(lo, hi, sharded.EntryFunc(yield))
}

func (b shardedBackend) Descend(lo, hi []byte, yield scanFunc) {
	b.s.Descend(lo, hi, sharded.EntryFunc(yield))
}

func (b shardedBackend) NewCursor(lo, hi []byte, desc bool) entryCursor {
	return b.s.NewCursor(lo, hi, desc)
}

func (b shardedBackend) First() (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.First()
	return e.Src, e.KeyRef, e.Handle, ok
}
func (b shardedBackend) Last() (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.Last()
	return e.Src, e.KeyRef, e.Handle, ok
}
func (b shardedBackend) Floor(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.Floor(k)
	return e.Src, e.KeyRef, e.Handle, ok
}
func (b shardedBackend) Ceiling(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.Ceiling(k)
	return e.Src, e.KeyRef, e.Handle, ok
}
func (b shardedBackend) Lower(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.Lower(k)
	return e.Src, e.KeyRef, e.Handle, ok
}
func (b shardedBackend) Higher(k []byte) (*core.Map, uint64, core.ValueHandle, bool) {
	e, ok := b.s.Higher(k)
	return e.Src, e.KeyRef, e.Handle, ok
}

func (b shardedBackend) Snapshot() beSnapshot {
	return shardedSnapshot{sn: b.s.Snapshot()}
}

func (b shardedBackend) ApplyBatch(ops []core.BatchOp) error { return b.s.ApplyBatch(ops) }

func (b shardedBackend) Close()        { b.s.Close() }
func (b shardedBackend) Quiesce() bool { return b.s.Quiesce() }

// shardedSnapshot adapts the cross-shard version-vector snapshot.
type shardedSnapshot struct{ sn *sharded.Snapshot }

func (s shardedSnapshot) Get(key, dst []byte) ([]byte, bool) { return s.sn.Get(key, dst) }

func (s shardedSnapshot) Cursor(lo, hi []byte, desc bool) beSnapCursor {
	return s.sn.NewCursor(lo, hi, desc)
}

func (s shardedSnapshot) Close() { s.sn.Close() }
