package oakmap

import (
	"bytes"
	"testing"
)

// TestCopyDetachesFromLiveValue: a Copy made from a fresh view keeps
// its bytes through later updates, deletes, and reclamation — it is a
// snapshot, not a facade.
func TestCopyDetachesFromLiveValue(t *testing.T) {
	_, zc := bufferMap(t)
	val := []byte("original-value")
	zc.Put(1, val)

	view := zc.Get(1)
	snap, err := view.Copy()
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}

	zc.Put(1, []byte("replaced"))
	if err := zc.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}

	// The live view now fails; the snapshot still serves the old bytes.
	if _, err := view.Bytes(); err == nil {
		t.Fatal("live view survived deletion")
	}
	got, err := snap.Bytes()
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("snapshot Bytes = %q, %v; want %q", got, err, val)
	}
	n, err := snap.Len()
	if err != nil || n != len(val) {
		t.Fatalf("snapshot Len = %d, %v", n, err)
	}
	b, err := snap.ByteAt(0)
	if err != nil || b != 'o' {
		t.Fatalf("snapshot ByteAt(0) = %q, %v", b, err)
	}

	// Copy of a copy is the same immutable snapshot.
	again, err := snap.Copy()
	if err != nil {
		t.Fatalf("Copy of copy: %v", err)
	}
	if again != snap {
		t.Fatal("copying a snapshot should return the snapshot itself")
	}
}

// TestCopyDuringStreamScan is the use case Copy exists for: keeping a
// key/value pair found during a stream scan, whose views are otherwise
// invalid the moment the callback returns.
func TestCopyDuringStreamScan(t *testing.T) {
	_, zc := bufferMap(t)
	for i := uint64(0); i < 50; i++ {
		zc.Put(i, []byte{byte(i), byte(i + 1)})
	}

	var kept []*OakRBuffer
	zc.AscendStream(nil, nil, func(k, v *OakRBuffer) bool {
		u, err := k.Uint64At(0)
		if err != nil {
			t.Fatalf("key read: %v", err)
		}
		if u%10 == 0 {
			snap, err := v.Copy() // the sanctioned retain
			if err != nil {
				t.Fatalf("Copy at key %d: %v", u, err)
			}
			kept = append(kept, snap)
		}
		return true
	})

	if len(kept) != 5 {
		t.Fatalf("kept %d snapshots, want 5", len(kept))
	}
	for i, snap := range kept {
		want := []byte{byte(i * 10), byte(i*10 + 1)}
		got, err := snap.Bytes()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("snapshot %d = %x, %v; want %x", i, got, err, want)
		}
	}
}

// TestCopyEmptyValue: an empty value still yields a valid detached
// snapshot, not a view that falls through to the (dead) live path.
func TestCopyEmptyValue(t *testing.T) {
	_, zc := bufferMap(t)
	zc.Put(3, nil)

	snap, err := zc.Get(3).Copy()
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if err := zc.Remove(3); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	got, err := snap.Bytes()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot Bytes = %x, %v", got, err)
	}
}
