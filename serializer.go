package oakmap

import "encoding/binary"

// Serializer converts application objects to and from Oak's off-heap
// buffer representation (§2.1). Users of Map[K,V] supply one serializer
// for keys and one for values; insertions use SizeOf to reserve space,
// then Serialize to write the object directly into Oak's internal memory,
// avoiding intermediate copies.
type Serializer[T any] interface {
	// SizeOf returns the number of bytes Serialize will write for t.
	SizeOf(t T) int
	// Serialize writes t into buf, which has exactly SizeOf(t) bytes.
	Serialize(t T, buf []byte)
	// Deserialize reconstructs an object from its serialized form. It
	// must not retain buf.
	Deserialize(buf []byte) T
}

// BytesSerializer is the identity serializer for []byte keys or values.
// Deserialize copies, so the result does not alias off-heap memory.
type BytesSerializer struct{}

// SizeOf implements Serializer.
func (BytesSerializer) SizeOf(b []byte) int { return len(b) }

// Serialize implements Serializer.
func (BytesSerializer) Serialize(b []byte, buf []byte) { copy(buf, b) }

// Deserialize implements Serializer.
func (BytesSerializer) Deserialize(buf []byte) []byte {
	return append([]byte(nil), buf...)
}

// StringSerializer serializes strings as raw bytes; the byte order of the
// serialized form matches the natural string order, so the default
// comparator works unchanged.
type StringSerializer struct{}

// SizeOf implements Serializer.
func (StringSerializer) SizeOf(s string) int { return len(s) }

// Serialize implements Serializer.
func (StringSerializer) Serialize(s string, buf []byte) { copy(buf, s) }

// Deserialize implements Serializer.
func (StringSerializer) Deserialize(buf []byte) string { return string(buf) }

// Uint64Serializer serializes uint64 big-endian, which preserves numeric
// order under the default bytes comparator.
type Uint64Serializer struct{}

// SizeOf implements Serializer.
func (Uint64Serializer) SizeOf(uint64) int { return 8 }

// Serialize implements Serializer.
func (Uint64Serializer) Serialize(v uint64, buf []byte) {
	binary.BigEndian.PutUint64(buf, v)
}

// Deserialize implements Serializer.
func (Uint64Serializer) Deserialize(buf []byte) uint64 {
	return binary.BigEndian.Uint64(buf)
}

// Int64Serializer serializes int64 with a sign-bias (x ^ minInt64) so the
// big-endian bytes sort in numeric order under the default comparator.
type Int64Serializer struct{}

// SizeOf implements Serializer.
func (Int64Serializer) SizeOf(int64) int { return 8 }

// Serialize implements Serializer.
func (Int64Serializer) Serialize(v int64, buf []byte) {
	binary.BigEndian.PutUint64(buf, uint64(v)^(1<<63))
}

// Deserialize implements Serializer.
func (Int64Serializer) Deserialize(buf []byte) int64 {
	return int64(binary.BigEndian.Uint64(buf) ^ (1 << 63))
}
