package oakmap

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

func newUintMap(t testing.TB) *Map[uint64, string] {
	t.Helper()
	m := New[uint64, string](Uint64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20})
	t.Cleanup(m.Close)
	return m
}

func TestLegacyRoundTrip(t *testing.T) {
	m := newUintMap(t)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map Get returned a value")
	}
	if _, _, err := m.Put(1, "one"); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(1); !ok || v != "one" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	prev, replaced, err := m.Put(1, "uno")
	if err != nil || !replaced || prev != "one" {
		t.Fatalf("Put returned %q, %v, %v", prev, replaced, err)
	}
	prev, removed, err := m.Remove(1)
	if err != nil || !removed || prev != "uno" {
		t.Fatalf("Remove returned %q, %v, %v", prev, removed, err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestLegacyPutIfAbsent(t *testing.T) {
	m := newUintMap(t)
	if _, inserted, _ := m.PutIfAbsent(5, "a"); !inserted {
		t.Fatal("first PutIfAbsent should insert")
	}
	existing, inserted, _ := m.PutIfAbsent(5, "b")
	if inserted || existing != "a" {
		t.Fatalf("second PutIfAbsent = %q, %v", existing, inserted)
	}
}

func TestLegacyComputeAndMerge(t *testing.T) {
	m := newUintMap(t)
	if ok, _ := m.ComputeIfPresent(9, func(s string) string { return s + "!" }); ok {
		t.Fatal("ComputeIfPresent on absent key")
	}
	m.Put(9, "hi")
	if ok, _ := m.ComputeIfPresent(9, func(s string) string { return s + "!" }); !ok {
		t.Fatal("ComputeIfPresent failed")
	}
	if v, _ := m.Get(9); v != "hi!" {
		t.Fatalf("value = %q", v)
	}
	m.Merge(10, "init", func(s string) string { return s + "+" })
	m.Merge(10, "init", func(s string) string { return s + "+" })
	if v, _ := m.Get(10); v != "init+" {
		t.Fatalf("merged value = %q", v)
	}
}

func TestZCGetView(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	if buf := zc.Get(1); buf != nil {
		t.Fatal("ZC Get on empty map")
	}
	zc.Put(1, "hello")
	buf := zc.Get(1)
	if buf == nil {
		t.Fatal("ZC Get returned nil")
	}
	b, err := buf.Bytes()
	if err != nil || string(b) != "hello" {
		t.Fatalf("buffer = %q, %v", b, err)
	}
	// The view reads through to in-place updates.
	zc.ComputeIfPresent(1, func(w OakWBuffer) error {
		w.Bytes()[0] = 'H'
		return nil
	})
	b, _ = buf.Bytes()
	if string(b) != "Hello" {
		t.Fatalf("view after compute = %q", b)
	}
	// After removal the view fails with ErrConcurrentModification.
	zc.Remove(1)
	if _, err := buf.Bytes(); err != ErrConcurrentModification {
		t.Fatalf("read after remove: %v", err)
	}
}

func TestZCPutIfAbsentComputeIfPresent(t *testing.T) {
	m := New[uint64, uint64](Uint64Serializer{}, Uint64Serializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	for i := 0; i < 5; i++ {
		err := zc.PutIfAbsentComputeIfPresent(7, 1, func(w OakWBuffer) error {
			w.PutUint64At(0, w.Uint64At(0)+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := m.Get(7); v != 5 {
		t.Fatalf("counter = %d; want 5", v)
	}
}

func TestZCScans(t *testing.T) {
	m := newUintMap(t)
	zc := m.ZC()
	const n = 500
	for _, i := range rand.Perm(n) {
		zc.Put(uint64(i), fmt.Sprintf("v%04d", i))
	}
	var keys []uint64
	zc.Ascend(nil, nil, func(k, v *OakRBuffer) bool {
		kv, err := k.Uint64At(0)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, kv)
		return true
	})
	if len(keys) != n {
		t.Fatalf("ascend yielded %d", len(keys))
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	// Stream descending matches reversed ascending.
	var dkeys []uint64
	zc.DescendStream(nil, nil, func(k, v *OakRBuffer) bool {
		kv, _ := k.Uint64At(0)
		dkeys = append(dkeys, kv)
		return true
	})
	if len(dkeys) != n {
		t.Fatalf("descend yielded %d", len(dkeys))
	}
	for i, k := range dkeys {
		if k != uint64(n-1-i) {
			t.Fatalf("dkeys[%d] = %d", i, k)
		}
	}
}

func TestSubMap(t *testing.T) {
	m := newUintMap(t)
	for i := 0; i < 100; i++ {
		m.ZC().Put(uint64(i), "x")
	}
	lo, hi := uint64(10), uint64(20)
	sm := m.SubMap(&lo, &hi)
	if sm.Len() != 10 {
		t.Fatalf("SubMap len = %d", sm.Len())
	}
	count := 0
	sm.ZC().DescendStream(func(k, v *OakRBuffer) bool { count++; return true })
	if count != 10 {
		t.Fatalf("submap descend count = %d", count)
	}
	if m.HeadMap(10).Len() != 10 || m.TailMap(90).Len() != 10 {
		t.Fatal("HeadMap/TailMap lengths wrong")
	}
}

func TestNavigationKeys(t *testing.T) {
	m := newUintMap(t)
	for i := 0; i < 100; i += 10 {
		m.ZC().Put(uint64(i), "x")
	}
	check := func(name string, got uint64, ok bool, want uint64, wantOK bool) {
		t.Helper()
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("%s = %d, %v; want %d, %v", name, got, ok, want, wantOK)
		}
	}
	k, ok := m.FirstKey()
	check("FirstKey", k, ok, 0, true)
	k, ok = m.LastKey()
	check("LastKey", k, ok, 90, true)
	k, ok = m.FloorKey(35)
	check("FloorKey(35)", k, ok, 30, true)
	k, ok = m.CeilingKey(35)
	check("CeilingKey(35)", k, ok, 40, true)
	k, ok = m.LowerKey(30)
	check("LowerKey(30)", k, ok, 20, true)
	k, ok = m.HigherKey(30)
	check("HigherKey(30)", k, ok, 40, true)
	_, ok = m.LowerKey(0)
	check("LowerKey(0)", 0, ok, 0, false)
}

func TestStringKeys(t *testing.T) {
	m := New[string, []byte](StringSerializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	words := []string{"pear", "apple", "fig", "banana", "cherry", "date", "elderberry"}
	for _, w := range words {
		m.ZC().Put(w, []byte(w))
	}
	var got []string
	m.Range(nil, nil, func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"apple", "banana", "cherry", "date", "elderberry", "fig", "pear"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v; want %v", got, want)
		}
	}
}

func TestInt64OrderPreserved(t *testing.T) {
	m := New[int64, string](Int64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	vals := []int64{-100, -1, 0, 1, 100, -50, 50}
	for _, v := range vals {
		m.ZC().Put(v, "x")
	}
	var got []int64
	m.Range(nil, nil, func(k int64, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int64{-100, -50, -1, 0, 1, 50, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v; want %v", got, want)
		}
	}
}

func TestVariableSizeValues(t *testing.T) {
	m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	rng := rand.New(rand.NewPCG(1, 2))
	sizes := make(map[uint64]int)
	for i := 0; i < 500; i++ {
		k := uint64(i)
		n := 1 + int(rng.Uint64()%4000)
		v := make([]byte, n)
		for j := range v {
			v[j] = byte(k)
		}
		sizes[k] = n
		if err := m.ZC().Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, n := range sizes {
		v, ok := m.Get(k)
		if !ok || len(v) != n {
			t.Fatalf("key %d: len=%d ok=%v; want %d", k, len(v), ok, n)
		}
		if v[0] != byte(k) || v[n-1] != byte(k) {
			t.Fatalf("key %d: content corrupted", k)
		}
	}
}

func TestConcurrentLegacyAndZC(t *testing.T) {
	m := New[uint64, uint64](Uint64Serializer{}, Uint64Serializer{},
		&Options{ChunkCapacity: 64, BlockSize: 1 << 20})
	defer m.Close()
	const keys = 256
	const perG = 3000
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			zc := m.ZC()
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % keys
				switch rng.Uint64() % 5 {
				case 0:
					m.Put(k, k*2)
				case 1:
					zc.PutIfAbsentComputeIfPresent(k, 1, func(w OakWBuffer) error {
						w.PutUint64At(0, w.Uint64At(0)+1)
						return nil
					})
				case 2:
					zc.Remove(k)
				case 3:
					m.Get(k)
				default:
					cnt := 0
					zc.AscendStream(nil, nil, func(k, v *OakRBuffer) bool {
						cnt++
						return cnt < 64
					})
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-churn sanity: every scanned key is readable and sorted.
	var prev uint64
	first := true
	m.Range(nil, nil, func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violation %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
}

func TestStatsAndFootprint(t *testing.T) {
	m := newUintMap(t)
	for i := 0; i < 2000; i++ {
		m.ZC().Put(uint64(i), fmt.Sprintf("value-%d", i))
	}
	st := m.Stats()
	if st.Len != 2000 || st.Chunks < 2 || st.Rebalances == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Footprint <= 0 || st.LiveBytes <= 0 || st.Footprint < st.LiveBytes {
		t.Fatalf("footprint accounting broken: %+v", st)
	}
}

func TestEmptyKeysAndValues(t *testing.T) {
	m := New[string, []byte](StringSerializer{}, BytesSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	// Empty value.
	if err := zc.Put("k", nil); err != nil {
		t.Fatalf("put empty value: %v", err)
	}
	v, ok := m.Get("k")
	if !ok || len(v) != 0 {
		t.Fatalf("empty value round trip: %v %v", v, ok)
	}
	// Empty key (sorts before everything).
	if err := zc.Put("", []byte("root")); err != nil {
		t.Fatalf("put empty key: %v", err)
	}
	if k, ok := m.FirstKey(); !ok || k != "" {
		t.Fatalf("FirstKey = %q %v", k, ok)
	}
	// Grow an empty value in place.
	okc, err := zc.ComputeIfPresent("k", func(w OakWBuffer) error {
		return w.Set([]byte("grown"))
	})
	if err != nil || !okc {
		t.Fatalf("compute on empty value: %v %v", okc, err)
	}
	if v, _ := m.Get("k"); string(v) != "grown" {
		t.Fatalf("value = %q", v)
	}
	// Shrink back to empty.
	zc.ComputeIfPresent("k", func(w OakWBuffer) error { return w.Resize(0) })
	if v, _ := m.Get("k"); len(v) != 0 {
		t.Fatalf("value after shrink = %q", v)
	}
	if ok := func() bool { _, ok := m.Get(""); return ok }(); !ok {
		t.Fatal("empty key lost")
	}
	if err := zc.Remove(""); err != nil {
		t.Fatal(err)
	}
}

func TestContainsKey(t *testing.T) {
	m := newUintMap(t)
	if m.ContainsKey(1) {
		t.Fatal("empty map contains key")
	}
	m.ZC().Put(1, "x")
	if !m.ContainsKey(1) {
		t.Fatal("ContainsKey after put")
	}
	m.ZC().Remove(1)
	if m.ContainsKey(1) {
		t.Fatal("ContainsKey after remove")
	}
}

func TestPollFirstLast(t *testing.T) {
	m := newUintMap(t)
	if _, _, ok, _ := m.PollFirst(); ok {
		t.Fatal("PollFirst on empty map")
	}
	for i := 0; i < 10; i++ {
		m.ZC().Put(uint64(i), fmt.Sprintf("v%d", i))
	}
	k, v, ok, err := m.PollFirst()
	if err != nil || !ok || k != 0 || v != "v0" {
		t.Fatalf("PollFirst = %d %q %v %v", k, v, ok, err)
	}
	k, v, ok, err = m.PollLast()
	if err != nil || !ok || k != 9 || v != "v9" {
		t.Fatalf("PollLast = %d %q %v %v", k, v, ok, err)
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestConcurrentPollersDrainDistinct: concurrent PollFirst calls form a
// work queue — every entry is handed to exactly one poller.
func TestConcurrentPollersDrainDistinct(t *testing.T) {
	m := newUintMap(t)
	const n = 2000
	for i := 0; i < n; i++ {
		m.ZC().Put(uint64(i), "job")
	}
	var mu sync.Mutex
	seen := map[uint64]int{}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k, _, ok, err := m.PollFirst()
				if err != nil {
					t.Errorf("poll: %v", err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				seen[k]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("drained %d distinct; want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d polled %d times", k, c)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after drain", m.Len())
	}
}

func TestFacadeClosedErrors(t *testing.T) {
	m := New[uint64, string](Uint64Serializer{}, StringSerializer{},
		&Options{ChunkCapacity: 32, BlockSize: 1 << 20})
	m.ZC().Put(1, "x")
	m.Close()
	if err := m.ZC().Put(2, "y"); err == nil {
		t.Fatal("ZC Put after close should error")
	}
	if _, _, err := m.Put(3, "z"); err == nil {
		t.Fatal("legacy Put after close should error")
	}
	if err := m.ZC().Remove(1); err == nil {
		t.Fatal("Remove after close should error")
	}
	m.Close() // idempotent
}
