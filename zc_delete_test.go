package oakmap

import "testing"

// TestZeroCopyDelete covers the presence-reporting remove: Delete is
// Remove plus the "was it there" bit, still without copying the old
// value out (the network DEL path counts removals but never reads them).
func TestZeroCopyDelete(t *testing.T) {
	for _, shards := range []int{0, 3} {
		m := New[uint64, []byte](Uint64Serializer{}, BytesSerializer{},
			&Options{ChunkCapacity: 32, BlockSize: 1 << 20, Shards: shards})
		zc := m.ZC()

		if err := zc.Put(7, []byte("x")); err != nil {
			t.Fatal(err)
		}
		ok, err := zc.Delete(7)
		if err != nil || !ok {
			t.Fatalf("shards=%d: Delete(present) = %v, %v; want true, nil", shards, ok, err)
		}
		ok, err = zc.Delete(7)
		if err != nil || ok {
			t.Fatalf("shards=%d: Delete(absent) = %v, %v; want false, nil", shards, ok, err)
		}
		if m.Len() != 0 {
			t.Fatalf("shards=%d: Len = %d after deletes", shards, m.Len())
		}
		m.Close()
	}
}
