package oakmap

import "oakmap/internal/core"

// Zero-copy scans (§2.2). Two flavours are provided, as in the paper:
//
//   - Set-style scans (Ascend/Descend) create a fresh ephemeral
//     OakRBuffer pair per yielded entry — the view objects may be
//     retained by the callback.
//   - Stream-style scans (AscendStream/DescendStream) reuse ONE key view
//     and ONE value view for the entire scan, eliminating per-entry
//     allocation. The views' contents change on every step, so callbacks
//     must not retain them — the paper's documented non-standard
//     semantics for the stream API.
//
// All scans are non-atomic: concurrently inserted or removed keys may or
// may not be observed, but a key present throughout the scan is yielded
// exactly once. On a sharded map the per-shard streams are merged back
// into one globally ordered sequence; the same guarantees hold globally.

// Ascend scans mappings with from ≤ key < to in ascending order (nil
// bounds are open), creating fresh buffer views per entry.
func (z ZeroCopyMap[K, V]) Ascend(from, to *K, f func(key, value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		return f(&OakRBuffer{m: src, keyRef: keyRef, h: h},
			&OakRBuffer{m: src, h: h})
	})
}

// Descend scans mappings with from ≤ key < to in descending order using
// Oak's chunk-stack descending iterator (§4.2).
func (z ZeroCopyMap[K, V]) Descend(from, to *K, f func(key, value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	z.m.be.Descend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		return f(&OakRBuffer{m: src, keyRef: keyRef, h: h},
			&OakRBuffer{m: src, h: h})
	})
}

// AscendStream is Ascend with the stream API: the same two view objects
// are re-filled for every entry.
//
// Stream key views read the scan's own key slice directly (no handle
// validation): the backend guarantees those bytes for exactly the
// callback's duration — the plain scan's epoch pin keeps arena key bytes
// alive, and the merged scan hands out its cursor-owned copy — so a key
// read never spuriously fails when the entry is removed concurrently
// mid-callback. (Value views still fail with ErrConcurrentModification
// after a delete — the value's space is released under its own lock
// protocol, not the scan pin.)
func (z ZeroCopyMap[K, V]) AscendStream(from, to *K, f func(key, value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	kb := &OakRBuffer{}
	vb := &OakRBuffer{}
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		kb.view = key
		vb.m, vb.h = src, h
		return f(kb, vb)
	})
}

// DescendStream is Descend with the stream API.
func (z ZeroCopyMap[K, V]) DescendStream(from, to *K, f func(key, value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	kb := &OakRBuffer{}
	vb := &OakRBuffer{}
	z.m.be.Descend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		kb.view = key // no handle: see AscendStream
		vb.m, vb.h = src, h
		return f(kb, vb)
	})
}

// Keys scans keys only (ascending), with fresh views.
func (z ZeroCopyMap[K, V]) Keys(from, to *K, f func(key *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		return f(&OakRBuffer{m: src, keyRef: keyRef, h: h})
	})
}

// Values scans values only (ascending), with fresh views.
func (z ZeroCopyMap[K, V]) Values(from, to *K, f func(value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		return f(&OakRBuffer{m: src, h: h})
	})
}

// KeysStream is Keys with the stream API: one reused key view.
func (z ZeroCopyMap[K, V]) KeysStream(from, to *K, f func(key *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	kb := &OakRBuffer{}
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		kb.view = key // no handle: see AscendStream
		return f(kb)
	})
}

// ValuesStream is Values with the stream API: one reused value view.
func (z ZeroCopyMap[K, V]) ValuesStream(from, to *K, f func(value *OakRBuffer) bool) {
	lo, hi := z.m.boundBytes(from), z.m.boundBytes(to)
	vb := &OakRBuffer{}
	z.m.be.Ascend(lo, hi, func(src *core.Map, key []byte, keyRef uint64, h core.ValueHandle) bool {
		vb.m, vb.h = src, h
		return f(vb)
	})
}

// SubMap is a restricted view of a map covering from ≤ key < to (the
// ConcurrentNavigableMap subMap). A nil bound is open.
type SubMap[K, V any] struct {
	m        *Map[K, V]
	from, to *K
}

// SubMap returns a view restricted to [from, to).
func (m *Map[K, V]) SubMap(from, to *K) SubMap[K, V] {
	return SubMap[K, V]{m: m, from: from, to: to}
}

// HeadMap returns a view of keys < to.
func (m *Map[K, V]) HeadMap(to K) SubMap[K, V] { return SubMap[K, V]{m: m, to: &to} }

// TailMap returns a view of keys ≥ from.
func (m *Map[K, V]) TailMap(from K) SubMap[K, V] { return SubMap[K, V]{m: m, from: &from} }

// Range iterates the sub-map ascending with deserialized entries.
func (s SubMap[K, V]) Range(f func(k K, v V) bool) { s.m.Range(s.from, s.to, f) }

// RangeDescending iterates the sub-map descending.
func (s SubMap[K, V]) RangeDescending(f func(k K, v V) bool) {
	s.m.RangeDescending(s.from, s.to, f)
}

// Len counts the sub-map's entries (O(n) over the range).
func (s SubMap[K, V]) Len() int {
	n := 0
	s.m.Range(s.from, s.to, func(K, V) bool { n++; return true })
	return n
}

// ZC returns the zero-copy view of the sub-map's range.
func (s SubMap[K, V]) ZC() ZeroCopySubMap[K, V] {
	return ZeroCopySubMap[K, V]{z: s.m.ZC(), from: s.from, to: s.to}
}

// ZeroCopySubMap offers the zero-copy scans over a restricted range.
type ZeroCopySubMap[K, V any] struct {
	z        ZeroCopyMap[K, V]
	from, to *K
}

// Ascend scans the range ascending with fresh views.
func (s ZeroCopySubMap[K, V]) Ascend(f func(key, value *OakRBuffer) bool) {
	s.z.Ascend(s.from, s.to, f)
}

// Descend scans the range descending with fresh views.
func (s ZeroCopySubMap[K, V]) Descend(f func(key, value *OakRBuffer) bool) {
	s.z.Descend(s.from, s.to, f)
}

// AscendStream scans the range ascending with reused views.
func (s ZeroCopySubMap[K, V]) AscendStream(f func(key, value *OakRBuffer) bool) {
	s.z.AscendStream(s.from, s.to, f)
}

// DescendStream scans the range descending with reused views.
func (s ZeroCopySubMap[K, V]) DescendStream(f func(key, value *OakRBuffer) bool) {
	s.z.DescendStream(s.from, s.to, f)
}
