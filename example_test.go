package oakmap_test

import (
	"fmt"

	"oakmap"
)

// The examples below appear in godoc and run under `go test`.

func ExampleNew() {
	m := oakmap.New[string, string](
		oakmap.StringSerializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()

	m.Put("greeting", "hello")
	v, ok := m.Get("greeting")
	fmt.Println(v, ok)
	// Output: hello true
}

func ExampleZeroCopyMap_Get() {
	m := oakmap.New[string, string](
		oakmap.StringSerializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()

	zc.Put("k", "off-heap bytes")
	buf := zc.Get("k")
	buf.Read(func(b []byte) error {
		fmt.Printf("%s\n", b)
		return nil
	})
	// Output: off-heap bytes
}

func ExampleZeroCopyMap_ComputeIfPresent() {
	m := oakmap.New[string, []byte](
		oakmap.StringSerializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()

	zc.Put("counter", []byte{0, 0, 0, 0, 0, 0, 0, 0})
	// The lambda runs atomically, exactly once, on the off-heap value.
	zc.ComputeIfPresent("counter", func(w oakmap.OakWBuffer) error {
		w.PutUint64At(0, w.Uint64At(0)+1)
		return nil
	})
	buf := zc.Get("counter")
	v, _ := buf.Uint64At(0)
	fmt.Println(v)
	// Output: 1
}

func ExampleZeroCopyMap_PutIfAbsentComputeIfPresent() {
	m := oakmap.New[string, []byte](
		oakmap.StringSerializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()

	// Upsert-style aggregation: insert 1 on first sight, increment after.
	for i := 0; i < 3; i++ {
		zc.PutIfAbsentComputeIfPresent("hits", []byte{1}, func(w oakmap.OakWBuffer) error {
			w.Bytes()[0]++
			return nil
		})
	}
	buf := zc.Get("hits")
	b, _ := buf.Bytes()
	fmt.Println(b[0])
	// Output: 3
}

func ExampleZeroCopyMap_DescendStream() {
	m := oakmap.New[uint64, string](
		oakmap.Uint64Serializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	for i := uint64(1); i <= 5; i++ {
		zc.Put(i, fmt.Sprintf("v%d", i))
	}
	// Stream scans reuse one view pair: no per-entry allocation.
	zc.DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		key, _ := k.Uint64At(0)
		fmt.Print(key, " ")
		return true
	})
	fmt.Println()
	// Output: 5 4 3 2 1
}

func ExampleMap_SubMap() {
	m := oakmap.New[uint64, string](
		oakmap.Uint64Serializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	for i := uint64(0); i < 10; i++ {
		m.ZC().Put(i, "x")
	}
	lo, hi := uint64(3), uint64(7)
	fmt.Println(m.SubMap(&lo, &hi).Len())
	// Output: 4
}

func ExampleMap_Merge() {
	m := oakmap.New[string, uint64](
		oakmap.StringSerializer{}, oakmap.Uint64Serializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()

	add := func(v uint64) func(uint64) uint64 {
		return func(old uint64) uint64 { return old + v }
	}
	m.Merge("total", 10, add(10)) // absent → insert 10
	m.Merge("total", 5, add(5))   // present → 10+5
	v, _ := m.Get("total")
	fmt.Println(v)
	// Output: 15
}

func ExampleZeroCopyMap_Iterator() {
	m := oakmap.New[uint64, string](
		oakmap.Uint64Serializer{}, oakmap.StringSerializer{},
		&oakmap.Options{BlockSize: 1 << 20})
	defer m.Close()
	zc := m.ZC()
	for i := uint64(0); i < 3; i++ {
		zc.Put(i, fmt.Sprintf("v%d", i))
	}
	it := zc.Iterator(nil, nil, false, false)
	for {
		k, v, ok := it.NextEntry()
		if !ok {
			break
		}
		_ = k
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: v0 v1 v2
}
