// Shard-scaling benchmarks for the hash-partitioned front-end: the same
// zipfian point-op mix run against 1, 4, and 16 shards at 1–32
// goroutines, plus the merged full scan. Results are recorded in
// bench_output_sharded.txt and discussed in EXPERIMENTS.md — note that
// on a single-CPU host the contention relief sharding buys cannot turn
// into wall-clock speedup; the interesting single-core signals are the
// routing overhead (1 shard vs plain) and the merge overhead per shard.
package oakmap_test

import (
	"fmt"
	mrand "math/rand" // v1: home of rand.Zipf
	"sync/atomic"
	"testing"

	"oakmap"
)

const (
	shardBenchKeys    = 50_000
	shardBenchValSize = 128
	shardBenchZipfS   = 1.2
)

func newShardedBench(b *testing.B, shards int) *oakmap.Map[uint64, []byte] {
	b.Helper()
	m := oakmap.New[uint64, []byte](oakmap.Uint64Serializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{BlockSize: 8 << 20, Shards: shards})
	val := make([]byte, shardBenchValSize)
	zcm := m.ZC()
	for k := uint64(0); k < shardBenchKeys; k++ {
		if err := zcm.Put(k, val); err != nil {
			b.Fatalf("preload: %v", err)
		}
	}
	return m
}

// BenchmarkShardScalingZipf is the headline grid: a zipfian mix of 80%
// zero-copy gets, 15% puts, and 5% in-place computes (the hottest keys
// absorb most of the computes — the worst case for a single map's value
// write locks, the best case for sharding).
func BenchmarkShardScalingZipf(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		for _, gs := range []int{1, 4, 32} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, gs), func(b *testing.B) {
				m := newShardedBench(b, shards)
				defer m.Close()
				zc := m.ZC()
				val := make([]byte, shardBenchValSize)
				var seedCtr atomic.Int64
				b.SetParallelism(gs) // × GOMAXPROCS workers
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					seed := seedCtr.Add(1)
					rng := mrand.New(mrand.NewSource(seed))
					zg := mrand.NewZipf(rng, shardBenchZipfS, 1, shardBenchKeys-1)
					for pb.Next() {
						k := zg.Uint64()
						switch rng.Intn(20) {
						case 0: // 5%: atomic in-place compute on a hot key
							zc.ComputeIfPresent(k, func(w oakmap.OakWBuffer) error {
								w.PutUint64At(0, w.Uint64At(0)+1)
								return nil
							})
						case 1, 2, 3: // 15%: put
							zc.Put(k, val)
						default: // 80%: zero-copy get
							if buf := zc.Get(k); buf != nil {
								buf.Read(func([]byte) error { return nil })
							}
						}
					}
				})
			})
		}
	}
}

// BenchmarkShardedScan measures the k-way merge tax: one full ascending
// stream scan over the same data as the point-op grid, per shard count.
// ns/entry is the metric that matters; with 1 shard the backend drives
// the core scan directly (no merge layer).
func BenchmarkShardedScan(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := newShardedBench(b, shards)
			defer m.Close()
			zc := m.ZC()
			b.ReportAllocs()
			b.ResetTimer()
			entries := 0
			for i := 0; i < b.N; i++ {
				zc.AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
					entries++
					return true
				})
			}
			b.StopTimer()
			if entries > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(entries), "ns/entry")
			}
		})
	}
}
