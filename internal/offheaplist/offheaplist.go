// Package offheaplist implements the paper's "SkipList-OffHeap" baseline
// (§5.1): a concurrent skiplist over intermediate cell objects, where
// each cell references a key buffer and a value buffer allocated in
// off-heap arenas through Oak's memory manager. It isolates the effect
// of off-heap allocation from Oak's other design choices (chunk layout,
// descending scans, ZC API). The design mirrors off-heap support in
// production systems such as HBase.
package offheaplist

import (
	"bytes"
	"errors"

	"oakmap/internal/arena"
	"oakmap/internal/skiplist"
	"oakmap/internal/vheader"
)

// ErrConcurrentModification mirrors core.ErrConcurrentModification.
var ErrConcurrentModification = errors.New("offheaplist: value concurrently deleted")

// cell is the on-heap intermediate object: one per mapping, pointing at
// the off-heap key and value. This per-entry object (plus the skiplist
// node) is exactly the metadata overhead Oak's chunks amortize away.
type cell struct {
	keyRef arena.Ref
	handle uint64 // vheader index; data ref lives in the header table
}

// Map is an off-heap skiplist map over []byte keys and values.
type Map struct {
	list    *skiplist.List[*cell]
	alloc   *arena.Allocator
	headers *vheader.Table
}

// New creates an empty map drawing blocks from pool (nil = shared pool).
func New(pool *arena.Pool) *Map {
	if pool == nil {
		pool = arena.DefaultPool()
	}
	return &Map{
		list:    skiplist.New[*cell](bytes.Compare),
		alloc:   arena.NewAllocator(pool),
		headers: vheader.NewTable(),
	}
}

// Len returns the number of mappings.
func (m *Map) Len() int { return m.list.Len() }

// Footprint returns the off-heap bytes held by the map.
func (m *Map) Footprint() int64 { return m.alloc.Footprint() }

// Close releases the off-heap blocks.
func (m *Map) Close() { m.alloc.Close() }

func (m *Map) newCell(key, val []byte) (*cell, error) {
	kr, err := m.alloc.Write(key)
	if err != nil {
		return nil, err
	}
	vr, err := m.alloc.Write(val)
	if err != nil {
		return nil, err
	}
	h := m.headers.Alloc()
	m.headers.StoreData(h, uint64(vr))
	return &cell{keyRef: kr, handle: h}, nil
}

// setValue replaces c's value in place (same size) or via realloc.
func (m *Map) setValue(c *cell, val []byte) (bool, error) {
	if !m.headers.TryWriteLock(c.handle) {
		return false, nil
	}
	defer m.headers.WriteUnlock(c.handle)
	old := arena.Ref(m.headers.LoadData(c.handle))
	if old.Len() == len(val) {
		copy(m.alloc.Bytes(old), val)
		return true, nil
	}
	nref, err := m.alloc.Write(val)
	if err != nil {
		return false, err
	}
	m.headers.StoreData(c.handle, uint64(nref))
	m.alloc.Free(old)
	return true, nil
}

// Put maps key to val.
func (m *Map) Put(key, val []byte) error {
	for {
		if c, ok := m.list.Get(key); ok {
			ok2, err := m.setValue(c, val)
			if err != nil {
				return err
			}
			if ok2 {
				return nil
			}
			// Cell's value was deleted under us; fall through to insert.
		}
		nc, err := m.newCell(key, val)
		if err != nil {
			return err
		}
		if m.list.PutIfAbsent(m.alloc.Bytes(nc.keyRef), nc) {
			return nil
		}
		// Raced with another insert; retry updating in place.
		m.discard(nc)
	}
}

// discard reclaims a never-published cell.
func (m *Map) discard(c *cell) {
	if m.headers.TryDelete(c.handle) {
		ref := arena.Ref(m.headers.LoadData(c.handle))
		m.headers.StoreData(c.handle, 0)
		m.alloc.Free(ref)
	}
	m.alloc.Free(c.keyRef)
}

// PutIfAbsent inserts key→val iff absent.
func (m *Map) PutIfAbsent(key, val []byte) (bool, error) {
	if c, ok := m.list.Get(key); ok && !m.headers.IsDeleted(c.handle) {
		return false, nil
	}
	nc, err := m.newCell(key, val)
	if err != nil {
		return false, err
	}
	if m.list.PutIfAbsent(m.alloc.Bytes(nc.keyRef), nc) {
		return true, nil
	}
	m.discard(nc)
	return false, nil
}

// Read runs f on the value mapped to key under its read lock.
func (m *Map) Read(key []byte, f func([]byte) error) error {
	c, ok := m.list.Get(key)
	if !ok {
		return ErrConcurrentModification
	}
	return m.readCell(c, f)
}

func (m *Map) readCell(c *cell, f func([]byte) error) error {
	if !m.headers.TryReadLock(c.handle) {
		return ErrConcurrentModification
	}
	defer m.headers.ReadUnlock(c.handle)
	ref := arena.Ref(m.headers.LoadData(c.handle))
	return f(m.alloc.Bytes(ref))
}

// Contains reports whether key maps to a live value.
func (m *Map) Contains(key []byte) bool {
	c, ok := m.list.Get(key)
	return ok && !m.headers.IsDeleted(c.handle)
}

// GetCopy returns a copy of the value (legacy-style access).
func (m *Map) GetCopy(key []byte, dst []byte) ([]byte, bool) {
	var out []byte
	err := m.Read(key, func(b []byte) error {
		out = append(dst[:0], b...)
		return nil
	})
	if err != nil {
		return nil, false
	}
	return out, true
}

// ComputeIfPresent applies f to the value in place under the write lock.
func (m *Map) ComputeIfPresent(key []byte, f func([]byte)) bool {
	c, ok := m.list.Get(key)
	if !ok {
		return false
	}
	if !m.headers.TryWriteLock(c.handle) {
		return false
	}
	ref := arena.Ref(m.headers.LoadData(c.handle))
	f(m.alloc.Bytes(ref))
	m.headers.WriteUnlock(c.handle)
	return true
}

// Remove deletes the mapping for key.
func (m *Map) Remove(key []byte) bool {
	c, ok := m.list.Remove(key)
	if !ok {
		return false
	}
	if m.headers.TryDelete(c.handle) {
		ref := arena.Ref(m.headers.LoadData(c.handle))
		m.headers.StoreData(c.handle, 0)
		m.alloc.Free(ref)
		// Key space is retained (same safe-default policy as core).
		return true
	}
	return false
}

// Ascend scans ascending over [from, to) with read-locked value access.
func (m *Map) Ascend(from, to []byte, f func(key []byte, val []byte) bool) {
	m.list.Ascend(from, to, func(k []byte, c *cell) bool {
		keep := true
		err := m.readCell(c, func(v []byte) error {
			keep = f(k, v)
			return nil
		})
		if err != nil {
			return true // deleted mid-scan: skip
		}
		return keep
	})
}

// Descend scans descending; like ConcurrentSkipListMap it performs one
// fresh lookup per step (the behaviour Fig. 4f measures).
func (m *Map) Descend(from, to []byte, f func(key []byte, val []byte) bool) {
	m.list.Descend(from, to, func(k []byte, c *cell) bool {
		keep := true
		err := m.readCell(c, func(v []byte) error {
			keep = f(k, v)
			return nil
		})
		if err != nil {
			return true
		}
		return keep
	})
}
