package offheaplist

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"oakmap/internal/arena"
)

func newMap(t testing.TB) *Map {
	t.Helper()
	m := New(arena.NewPool(1<<20, 0))
	t.Cleanup(m.Close)
	return m
}

func k(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestPutGetRemove(t *testing.T) {
	m := newMap(t)
	if m.Contains(k(1)) {
		t.Fatal("empty contains")
	}
	if err := m.Put(k(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok := m.GetCopy(k(1), nil)
	if !ok || string(v) != "one" {
		t.Fatalf("GetCopy = %q %v", v, ok)
	}
	m.Put(k(1), []byte("uno!"))
	v, _ = m.GetCopy(k(1), nil)
	if string(v) != "uno!" {
		t.Fatalf("after overwrite: %q", v)
	}
	if !m.Remove(k(1)) {
		t.Fatal("Remove")
	}
	if m.Contains(k(1)) {
		t.Fatal("contains after remove")
	}
	if m.Remove(k(1)) {
		t.Fatal("double remove")
	}
}

func TestPutIfAbsent(t *testing.T) {
	m := newMap(t)
	if ok, _ := m.PutIfAbsent(k(1), []byte("a")); !ok {
		t.Fatal("first putIfAbsent")
	}
	if ok, _ := m.PutIfAbsent(k(1), []byte("b")); ok {
		t.Fatal("second putIfAbsent")
	}
	v, _ := m.GetCopy(k(1), nil)
	if string(v) != "a" {
		t.Fatalf("value = %q", v)
	}
}

func TestComputeInPlace(t *testing.T) {
	m := newMap(t)
	m.Put(k(1), make([]byte, 8))
	for i := 0; i < 10; i++ {
		if !m.ComputeIfPresent(k(1), func(b []byte) {
			binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+1)
		}) {
			t.Fatal("compute failed")
		}
	}
	v, _ := m.GetCopy(k(1), nil)
	if binary.BigEndian.Uint64(v) != 10 {
		t.Fatal("counter wrong")
	}
}

func TestScans(t *testing.T) {
	m := newMap(t)
	const n = 200
	for _, i := range rand.Perm(n) {
		m.Put(k(i), []byte(fmt.Sprintf("v%d", i)))
	}
	var asc []int
	m.Ascend(nil, nil, func(key, val []byte) bool {
		asc = append(asc, int(binary.BigEndian.Uint64(key)))
		return true
	})
	if len(asc) != n {
		t.Fatalf("asc len %d", len(asc))
	}
	var desc []int
	m.Descend(nil, nil, func(key, val []byte) bool {
		desc = append(desc, int(binary.BigEndian.Uint64(key)))
		return true
	})
	for i := range asc {
		if asc[i] != i || desc[i] != n-1-i {
			t.Fatalf("scan order broken at %d", i)
		}
	}
}

func TestConcurrent(t *testing.T) {
	m := newMap(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 3))
			for i := 0; i < 3000; i++ {
				kk := k(int(rng.Uint64() % 300))
				switch rng.Uint64() % 5 {
				case 0, 1:
					m.Put(kk, []byte("vvvvvvvv"))
				case 2:
					m.Remove(kk)
				case 3:
					m.ComputeIfPresent(kk, func(b []byte) { b[0] = 'x' })
				default:
					m.GetCopy(kk, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	prev := -1
	m.Ascend(nil, nil, func(key, val []byte) bool {
		ki := int(binary.BigEndian.Uint64(key))
		if ki <= prev {
			t.Fatalf("order violation")
		}
		prev = ki
		return true
	})
}

func TestFootprint(t *testing.T) {
	m := newMap(t)
	for i := 0; i < 500; i++ {
		m.Put(k(i), make([]byte, 100))
	}
	if m.Footprint() <= 0 {
		t.Fatal("footprint")
	}
	if m.Len() != 500 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestReadErrors(t *testing.T) {
	m := newMap(t)
	if err := m.Read(k(1), func([]byte) error { return nil }); err != ErrConcurrentModification {
		t.Fatalf("Read absent = %v", err)
	}
	if _, ok := m.GetCopy(k(1), nil); ok {
		t.Fatal("GetCopy absent")
	}
	if m.ComputeIfPresent(k(1), func([]byte) {}) {
		t.Fatal("compute absent")
	}
	// GetCopy reuses dst capacity.
	m.Put(k(2), []byte("abc"))
	dst := make([]byte, 0, 16)
	out, ok := m.GetCopy(k(2), dst)
	if !ok || string(out) != "abc" || &out[0] != &dst[:1][0] {
		t.Fatal("GetCopy did not reuse dst")
	}
}

func TestValueResizeRealloc(t *testing.T) {
	m := newMap(t)
	m.Put(k(1), []byte("short"))
	m.Put(k(1), []byte("a-much-longer-value-now"))
	v, _ := m.GetCopy(k(1), nil)
	if string(v) != "a-much-longer-value-now" {
		t.Fatalf("resized value = %q", v)
	}
	m.Put(k(1), []byte("s"))
	if v, _ := m.GetCopy(k(1), nil); string(v) != "s" {
		t.Fatalf("shrunk value = %q", v)
	}
}

func TestBoundedScans(t *testing.T) {
	m := newMap(t)
	for i := 0; i < 50; i++ {
		m.Put(k(i), []byte{byte(i)})
	}
	var got []int
	m.Ascend(k(10), k(15), func(key, _ []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(key)))
		return true
	})
	if fmt.Sprint(got) != "[10 11 12 13 14]" {
		t.Fatalf("bounded ascend = %v", got)
	}
	got = got[:0]
	m.Descend(k(10), k(15), func(key, _ []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(key)))
		return true
	})
	if fmt.Sprint(got) != "[14 13 12 11 10]" {
		t.Fatalf("bounded descend = %v", got)
	}
}
