package server

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// scanSnapAll drives a snapshot-pinned scan to exhaustion, returning
// the collected key→value pairs and how many batches it took.
func scanSnapAll(t *testing.T, cl *Client, count int) (map[string]string, int) {
	t.Helper()
	got := make(map[string]string)
	cursor := "0"
	batches := 0
	args := []string{"SCAN", "0", "SNAP", "COUNT", fmt.Sprint(count)}
	for {
		r := do(t, cl, args...)
		if r.Kind != ReplyArray || len(r.Elems) != 2 {
			t.Fatalf("SCAN SNAP reply shape: %s", r)
		}
		batches++
		pairs := r.Elems[1]
		if pairs.Kind != ReplyArray || len(pairs.Elems)%2 != 0 {
			t.Fatalf("SCAN SNAP pairs shape: %s", pairs)
		}
		for i := 0; i < len(pairs.Elems); i += 2 {
			k := string(pairs.Elems[i].Str)
			if _, dup := got[k]; dup {
				t.Fatalf("key %q yielded twice", k)
			}
			got[k] = string(pairs.Elems[i+1].Str)
		}
		cursor = string(r.Elems[0].Str)
		if cursor == "0" {
			return got, batches
		}
		args = []string{"SCAN", cursor, "COUNT", fmt.Sprint(count)}
	}
}

func TestScanSnapFrozenAcrossBatches(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, addr := newTestServer(t, shards, Config{})
			cl := dialT(t, addr)

			const n = 40
			want := make(map[string]string, n)
			for i := 0; i < n; i++ {
				k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)
				doOK(t, cl, "SET", k, v)
				want[k] = v
			}

			// First batch pins the snapshot...
			r := do(t, cl, "SCAN", "0", "SNAP", "COUNT", "7")
			cursor := string(r.Elems[0].Str)
			if !strings.HasPrefix(cursor, "s") {
				t.Fatalf("want snapshot cursor, got %q", cursor)
			}
			got := make(map[string]string)
			for i := 0; i < len(r.Elems[1].Elems); i += 2 {
				got[string(r.Elems[1].Elems[i].Str)] = string(r.Elems[1].Elems[i+1].Str)
			}

			// ...then the map churns: overwrites, deletes, inserts.
			for i := 0; i < n; i += 2 {
				doOK(t, cl, "SET", fmt.Sprintf("k%02d", i), "mutated")
			}
			doInt(t, cl, 1, "DEL", "k11")
			doOK(t, cl, "SET", "k99", "inserted-late")

			// The remaining batches still see the frozen view.
			for cursor != "0" {
				r = do(t, cl, "SCAN", cursor, "COUNT", "7")
				for i := 0; i < len(r.Elems[1].Elems); i += 2 {
					k := string(r.Elems[1].Elems[i].Str)
					if _, dup := got[k]; dup {
						t.Fatalf("key %q yielded twice", k)
					}
					got[k] = string(r.Elems[1].Elems[i+1].Str)
				}
				cursor = string(r.Elems[0].Str)
			}
			if len(got) != n {
				t.Fatalf("snapshot scan saw %d keys, want %d", len(got), n)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %q = %q, want frozen %q", k, got[k], v)
				}
			}

			// Exhaustion released the pinned snapshot.
			if c := s.snaps.count(); c != 0 {
				t.Fatalf("%d snapshot cursors still open", c)
			}
			if st := s.m.Stats(); st.OpenSnapshots != 0 || st.RetainedBytes != 0 {
				t.Fatalf("retained state after scan: OpenSnapshots=%d RetainedBytes=%d",
					st.OpenSnapshots, st.RetainedBytes)
			}
		})
	}
}

// TestMSetAtomicUnderSnapScan: concurrent MSETs flip a group of keys
// between generations; every snapshot-pinned scan must see one
// generation across the whole group — MSET is all-or-nothing.
func TestMSetAtomicUnderSnapScan(t *testing.T) {
	_, addr := newTestServer(t, 4, Config{})
	cl := dialT(t, addr)
	wcl := dialT(t, addr)

	keys := []string{"a", "b", "c", "d", "e", "f"}
	mset := func(gen int) {
		args := []string{"MSET"}
		for _, k := range keys {
			args = append(args, k, fmt.Sprintf("gen-%d", gen))
		}
		doOK(t, wcl, args...)
	}
	mset(0)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			mset(gen)
		}
	}()
	for round := 0; round < 60; round++ {
		got, _ := scanSnapAll(t, cl, 4)
		if len(got) != len(keys) {
			t.Fatalf("round %d: saw %d keys, want %d", round, len(got), len(keys))
		}
		var ref string
		for _, k := range keys {
			v, ok := got[k]
			if !ok {
				t.Fatalf("round %d: key %q missing", round, k)
			}
			if ref == "" {
				ref = v
			} else if v != ref {
				t.Fatalf("round %d: torn MSET: %q vs %q (%v)", round, v, ref, got)
			}
		}
	}
	close(stop)
	<-done
}

func TestScanSnapCursorErrors(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{SnapScanMax: 1})
	cl := dialT(t, addr)

	for i := 0; i < 10; i++ {
		doOK(t, cl, "SET", fmt.Sprintf("k%02d", i), "v")
	}

	// SNAP is only valid on a fresh cursor.
	doErr(t, cl, "SCAN", "kfoo", "SNAP")
	// Unknown snapshot cursor.
	doErr(t, cl, "SCAN", "s99999")
	// Malformed snapshot cursor.
	doErr(t, cl, "SCAN", "sxyz")

	// Capacity: one unfinished snap scan occupies the only slot.
	r := do(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")
	cursor := string(r.Elems[0].Str)
	if !strings.HasPrefix(cursor, "s") {
		t.Fatalf("want snapshot cursor, got %q", cursor)
	}
	doErr(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")

	// Finishing the scan frees the slot.
	for cursor != "0" {
		r = do(t, cl, "SCAN", cursor, "COUNT", "5")
		cursor = string(r.Elems[0].Str)
	}
	if c := s.snaps.count(); c != 0 {
		t.Fatalf("%d snapshot cursors open after exhaustion", c)
	}
	r = do(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")
	if r.Kind == ReplyError {
		t.Fatalf("slot not released: %s", r)
	}
}

func TestScanSnapTTLReap(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{SnapScanTTL: 20 * time.Millisecond})
	cl := dialT(t, addr)
	for i := 0; i < 10; i++ {
		doOK(t, cl, "SET", fmt.Sprintf("k%02d", i), "v")
	}
	r := do(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")
	cursor := string(r.Elems[0].Str)
	time.Sleep(50 * time.Millisecond)
	// The next registry operation reaps the expired entry; a fresh SNAP
	// create is one such operation.
	r2 := do(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")
	if r2.Kind == ReplyError {
		t.Fatalf("fresh snap scan failed: %s", r2)
	}
	// The abandoned cursor is gone.
	doErr(t, cl, "SCAN", cursor, "COUNT", "3")
	// Drain the live one so cleanup sees zero.
	c2 := string(r2.Elems[0].Str)
	for c2 != "0" {
		r2 = do(t, cl, "SCAN", c2, "COUNT", "5")
		c2 = string(r2.Elems[0].Str)
	}
	if got := s.snaps.count(); got != 0 {
		t.Fatalf("snap cursors open: %d", got)
	}
}

// TestSnapCursorConcurrentExhaust: two connections present the same
// SNAP cursor; one exhausts it while the other is still mid-batch. The
// exhaustion must not tear down the frozen view under the active
// reader — the snapshot closes only when the last batch releases.
func TestSnapCursorConcurrentExhaust(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	doOK(t, cl, "SET", "k", "v")

	id, err := s.snaps.create(s.m, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sn, ok := s.snaps.acquire(id) // connection A, mid-batch
	if !ok {
		t.Fatal("acquire A failed")
	}
	if _, ok := s.snaps.acquire(id); !ok { // connection B
		t.Fatal("acquire B failed")
	}
	s.snaps.release(id, true) // B exhausts the scan

	// A's frozen view must still be open and readable.
	if st := s.m.Stats(); st.OpenSnapshots != 1 {
		t.Fatalf("snapshot closed under an active reader: OpenSnapshots=%d", st.OpenSnapshots)
	}
	if _, present := sn.GetRaw([]byte("k"), nil); !present {
		t.Fatal("frozen view unreadable after concurrent exhaustion")
	}
	// The dead cursor refuses new batches.
	if _, ok := s.snaps.acquire(id); ok {
		t.Fatal("acquire succeeded on an exhausted cursor")
	}
	// A's release is the last one out: it closes the snapshot.
	s.snaps.release(id, false)
	if st := s.m.Stats(); st.OpenSnapshots != 0 {
		t.Fatalf("OpenSnapshots=%d after last release", st.OpenSnapshots)
	}
	if c := s.snaps.count(); c != 0 {
		t.Fatalf("%d cursors still registered", c)
	}
}

// TestScanSnapTTLReapWithoutTraffic: an abandoned SNAP cursor must be
// reaped by the background ticker even if no further SNAP command ever
// arrives — otherwise it pins the reclaim horizon indefinitely.
func TestScanSnapTTLReapWithoutTraffic(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{SnapScanTTL: 20 * time.Millisecond})
	cl := dialT(t, addr)
	for i := 0; i < 10; i++ {
		doOK(t, cl, "SET", fmt.Sprintf("k%02d", i), "v")
	}
	r := do(t, cl, "SCAN", "0", "SNAP", "COUNT", "3")
	if !strings.HasPrefix(string(r.Elems[0].Str), "s") {
		t.Fatalf("want snapshot cursor, got %q", r.Elems[0].Str)
	}
	// Abandon the cursor; issue nothing else. The ticker must sweep it.
	deadline := time.Now().Add(3 * time.Second)
	for s.snaps.count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned cursor not reaped: %d open", s.snaps.count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.m.Stats(); st.OpenSnapshots != 0 || st.RetainedBytes != 0 {
		t.Fatalf("pinned state after reap: OpenSnapshots=%d RetainedBytes=%d",
			st.OpenSnapshots, st.RetainedBytes)
	}
}
