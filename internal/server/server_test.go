package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"testing"
	"time"

	"oakmap"
	"oakmap/internal/faultpoint"
)

// newTestServer starts a server over a fresh map on a loopback listener
// and returns it with its dial address. Shutdown and map close are
// wired into cleanup; tests that call Shutdown themselves simply make
// the cleanup's call a no-op drain of zero connections.
func newTestServer(t *testing.T, shards int, cfg Config) (*Server, string) {
	t.Helper()
	m := oakmap.New[[]byte, []byte](oakmap.BytesSerializer{}, oakmap.BytesSerializer{},
		&oakmap.Options{ChunkCapacity: 64, BlockSize: 1 << 20, Shards: shards})
	t.Cleanup(m.Close)

	cfg.Logger = log.New(io.Discard, "", 0) // expected panics stay quiet
	s := New(m, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// do runs one command and fails the test on transport errors; the reply
// (including -ERR replies) is returned for shape assertions.
func do(t *testing.T, cl *Client, args ...string) Reply {
	t.Helper()
	r, err := cl.DoStrings(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

func doOK(t *testing.T, cl *Client, args ...string) {
	t.Helper()
	if r := do(t, cl, args...); !r.IsOK() {
		t.Fatalf("%v: want +OK, got %s", args, r)
	}
}

func doInt(t *testing.T, cl *Client, want int64, args ...string) {
	t.Helper()
	if r := do(t, cl, args...); r.Kind != ReplyInt || r.Int != want {
		t.Fatalf("%v: want :%d, got %s", args, want, r)
	}
}

func doBulk(t *testing.T, cl *Client, want string, args ...string) {
	t.Helper()
	if r := do(t, cl, args...); r.Kind != ReplyBulk || string(r.Str) != want {
		t.Fatalf("%v: want $%q, got %s", args, want, r)
	}
}

func doNil(t *testing.T, cl *Client, args ...string) {
	t.Helper()
	if r := do(t, cl, args...); r.Kind != ReplyNil {
		t.Fatalf("%v: want nil, got %s", args, r)
	}
}

func doErr(t *testing.T, cl *Client, args ...string) {
	t.Helper()
	if r := do(t, cl, args...); r.Kind != ReplyError {
		t.Fatalf("%v: want error reply, got %s", args, r)
	}
}

func TestServerCommands(t *testing.T) {
	_, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)

	if r := do(t, cl, "PING"); r.Kind != ReplySimple || string(r.Str) != "PONG" {
		t.Fatalf("PING: %s", r)
	}
	doBulk(t, cl, "echo", "PING", "echo")

	doOK(t, cl, "SET", "a", "1")
	doOK(t, cl, "SET", "b", "2")
	doBulk(t, cl, "1", "GET", "a")
	doNil(t, cl, "GET", "missing")

	doInt(t, cl, 0, "SETNX", "a", "overwrite")
	doBulk(t, cl, "1", "GET", "a") // SETNX must not have overwritten
	doInt(t, cl, 1, "SETNX", "c", "3")

	doInt(t, cl, 2, "EXISTS", "a", "b", "missing")
	doInt(t, cl, 1, "DEL", "b", "missing")
	doInt(t, cl, 0, "EXISTS", "b")

	doOK(t, cl, "MSET", "x", "10", "y", "20")
	r := do(t, cl, "MGET", "x", "missing", "y")
	if r.Kind != ReplyArray || len(r.Elems) != 3 {
		t.Fatalf("MGET: %s", r)
	}
	if string(r.Elems[0].Str) != "10" || r.Elems[1].Kind != ReplyNil || string(r.Elems[2].Str) != "20" {
		t.Fatalf("MGET elems: %s", r)
	}

	doInt(t, cl, 4, "DBSIZE") // a, c, x, y

	if r := do(t, cl, "INFO"); r.Kind != ReplyBulk || !bytes.Contains(r.Str, []byte("keys:4")) {
		t.Fatalf("INFO: %s", r)
	}

	// Errors are per-command replies, not connection state.
	doErr(t, cl, "NOSUCH", "x")
	doErr(t, cl, "SET", "only-key")
	doErr(t, cl, "MSET", "odd", "1", "stray")
	doBulk(t, cl, "1", "GET", "a") // connection still healthy
}

func TestServerCaseInsensitive(t *testing.T) {
	_, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	doOK(t, cl, "set", "k", "v")
	doBulk(t, cl, "v", "gEt", "k")
	doInt(t, cl, 1, "Del", "k")
}

func TestServerBinaryValues(t *testing.T) {
	_, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	key := []byte{0, 1, '\r', '\n', 0xFF}
	val := append(bytes.Repeat([]byte{0xAB}, 1000), "\r\n$-1\r\n"...)
	r, err := cl.Do([]byte("SET"), key, val)
	if err != nil || !r.IsOK() {
		t.Fatalf("binary SET: %s %v", r, err)
	}
	r, err = cl.Do([]byte("GET"), key)
	if err != nil || r.Kind != ReplyBulk || !bytes.Equal(r.Str, val) {
		t.Fatalf("binary GET mismatch")
	}
}

func TestServerPipelining(t *testing.T) {
	_, addr := newTestServer(t, 2, Config{})
	cl := dialT(t, addr)

	const n = 500
	for i := 0; i < n; i++ {
		cl.SendStrings("SET", fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r, err := cl.Recv()
		if err != nil || !r.IsOK() {
			t.Fatalf("pipelined SET %d: %s %v", i, r, err)
		}
	}
	for i := 0; i < n; i++ {
		cl.SendStrings("GET", fmt.Sprintf("k%04d", i))
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r, err := cl.Recv()
		if err != nil || r.Kind != ReplyBulk || string(r.Str) != fmt.Sprintf("v%d", i) {
			t.Fatalf("pipelined GET %d: %s %v", i, r, err)
		}
	}
}

func TestServerScanPagination(t *testing.T) {
	// 4 shards so pagination crosses the loser-tree merge.
	_, addr := newTestServer(t, 4, Config{})
	cl := dialT(t, addr)

	const n = 300
	for i := 0; i < n; i++ {
		doOK(t, cl, "SET", fmt.Sprintf("key%05d", i), "v")
	}

	var keys []string
	cursor := "0"
	pages := 0
	for {
		r := do(t, cl, "SCAN", cursor, "COUNT", "37")
		if r.Kind != ReplyArray || len(r.Elems) != 2 {
			t.Fatalf("SCAN: %s", r)
		}
		for _, el := range r.Elems[1].Elems {
			keys = append(keys, string(el.Str))
		}
		pages++
		cursor = string(r.Elems[0].Str)
		if cursor == "0" {
			break
		}
	}
	if pages < n/37 {
		t.Fatalf("expected pagination, got %d pages", pages)
	}
	if len(keys) != n {
		t.Fatalf("scan returned %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if want := fmt.Sprintf("key%05d", i); k != want {
			t.Fatalf("key[%d] = %q, want %q (global order across shards)", i, k, want)
		}
	}

	// END bounds the range: keys < key00200.
	r := do(t, cl, "SCAN", "0", "COUNT", "4096", "END", "key00200")
	if r.Kind != ReplyArray {
		t.Fatalf("SCAN END: %s", r)
	}
	got := r.Elems[1].Elems
	if len(got) != 200 {
		t.Fatalf("bounded scan returned %d keys, want 200", len(got))
	}
	if string(got[len(got)-1].Str) != "key00199" {
		t.Fatalf("last bounded key %q", got[len(got)-1].Str)
	}

	// Invalid cursor is an error reply, not a close.
	doErr(t, cl, "SCAN", "bogus")
	doOK(t, cl, "SET", "still-alive", "v")
}

func TestServerScanEmptyMap(t *testing.T) {
	_, addr := newTestServer(t, 3, Config{})
	cl := dialT(t, addr)
	r := do(t, cl, "SCAN", "0")
	if r.Kind != ReplyArray || len(r.Elems) != 2 {
		t.Fatalf("SCAN: %s", r)
	}
	if string(r.Elems[0].Str) != "0" || len(r.Elems[1].Elems) != 0 {
		t.Fatalf("empty map scan: %s", r)
	}
}

func TestServerOverload(t *testing.T) {
	_, addr := newTestServer(t, 0, Config{MaxConns: 1})
	keep := dialT(t, addr)
	doOK(t, keep, "SET", "k", "v") // slot taken for sure

	over := dialT(t, addr)
	r, err := over.DoStrings("PING")
	if err != nil || r.Kind != ReplyError || !bytes.Contains(r.Str, []byte("max number of clients")) {
		t.Fatalf("overload: want clean -ERR, got %s %v", r, err)
	}
	// The refused connection is closed server-side.
	over.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := over.Recv(); err == nil {
		t.Fatal("refused connection should be closed")
	}
	// The in-pool connection is unaffected; closing it frees the slot.
	doBulk(t, keep, "v", "GET", "k")
	keep.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		next, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		next.Conn().SetReadDeadline(time.Now().Add(time.Second))
		r, err := next.DoStrings("PING")
		next.Close()
		if err == nil && r.Kind == ReplySimple {
			return // slot released
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released after client close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{ReadTimeout: 80 * time.Millisecond})
	cl := dialT(t, addr)
	doOK(t, cl, "SET", "k", "v")
	// Idle past the limit: the server closes the connection.
	cl.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cl.Recv(); err == nil {
		t.Fatal("idle connection should have been closed")
	}
	if got := s.metrics.timeouts.Load(); got == 0 {
		t.Fatal("idle close should be counted as a timeout")
	}
}

func TestServerQuit(t *testing.T) {
	_, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	doOK(t, cl, "QUIT")
	if _, err := cl.Recv(); err == nil {
		t.Fatal("connection should close after QUIT")
	}
}

func TestServerShutdownCommand(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	doOK(t, cl, "SHUTDOWN")
	select {
	case <-s.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("SHUTDOWN did not signal ShutdownRequested")
	}
}

func TestServerProtocolErrorCloses(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	// A malformed frame gets an error reply, then the connection closes.
	if _, err := cl.Conn().Write([]byte("*1\r\n:999\r\n")); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Recv()
	if err != nil || r.Kind != ReplyError {
		t.Fatalf("want protocol error reply, got %s %v", r, err)
	}
	if _, err := cl.Recv(); err == nil {
		t.Fatal("connection should close after a protocol error")
	}
	if s.metrics.protoErrors.Load() == 0 {
		t.Fatal("protocol error not counted")
	}
}

// TestServerPanicIsolation proves a panicking handler costs exactly its
// connection: the panic is recovered, counted, and the server keeps
// serving other clients from a healthy pool.
func TestServerPanicIsolation(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{MaxConns: 4})
	FpHandle.Arm(faultpoint.Hook{Decide: func(hit int64) bool {
		panic("chaos: injected handler panic")
	}})
	defer FpHandle.Disarm()

	victim := dialT(t, addr)
	victim.SendStrings("GET", "k")
	if err := victim.Flush(); err != nil {
		t.Fatal(err)
	}
	victim.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := victim.Recv(); err == nil {
		t.Fatal("panicked handler should close its connection")
	}
	FpHandle.Disarm()

	if got := s.metrics.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	healthy := dialT(t, addr)
	doOK(t, healthy, "SET", "alive", "yes")
	doBulk(t, healthy, "yes", "GET", "alive")
}

// TestServerKillClientMidPipeline is the leak-gate chaos test: clients
// are killed abruptly mid-pipeline (half-written frames, unread replies)
// while others churn keys; afterwards a drain must find zero leaked key
// bytes on every shard — no abandoned connection may pin map state.
func TestServerKillClientMidPipeline(t *testing.T) {
	s, addr := newTestServer(t, 4, Config{WriteTimeout: time.Second})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				cl, err := Dial(addr, 2*time.Second)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				for i := 0; i < 50; i++ {
					k := fmt.Sprintf("w%dk%d", w, i)
					cl.SendStrings("SET", k, "some-value")
					cl.SendStrings("GET", k)
					cl.SendStrings("DEL", k)
				}
				cl.Flush()
				// Half the rounds: also leave a torn frame on the wire,
				// then vanish without reading a single reply.
				if round%2 == 0 {
					cl.Conn().Write([]byte("*3\r\n$3\r\nSET\r\n$5\r\nhel"))
				}
				cl.Close()
			}
		}(w)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats := s.Shutdown(ctx)
	if !stats.Quiesced {
		t.Fatal("limbo did not drain after churn")
	}
	if len(stats.ShardKeyLeakBytes) != 4 {
		t.Fatalf("expected 4 shard leak entries, got %d", len(stats.ShardKeyLeakBytes))
	}
	for i, b := range stats.ShardKeyLeakBytes {
		if b != 0 {
			t.Errorf("shard %d leaked %d key bytes after drain", i, b)
		}
	}
	if !stats.Clean() {
		t.Fatal("drain not clean")
	}
}

// TestServerGracefulDrain: Shutdown lets in-flight pipelines finish,
// wakes parked readers, and reports the drain split.
func TestServerGracefulDrain(t *testing.T) {
	s, addr := newTestServer(t, 2, Config{})

	// Three parked clients with no in-flight work.
	parked := make([]*Client, 3)
	for i := range parked {
		parked[i] = dialT(t, addr)
		doOK(t, parked[i], "SET", fmt.Sprintf("p%d", i), "v")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats := s.Shutdown(ctx)
	if stats.ConnsForced != 0 {
		t.Fatalf("graceful drain forced %d connections", stats.ConnsForced)
	}
	if stats.ConnsDrained != len(parked) {
		t.Fatalf("drained %d connections, want %d", stats.ConnsDrained, len(parked))
	}
	if !stats.Clean() {
		t.Fatalf("drain not clean: %+v", stats)
	}
	if stats.Commands == 0 {
		t.Fatal("command total missing from drain stats")
	}
	// Parked clients see their connections closed.
	for _, cl := range parked {
		cl.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := cl.Recv(); err == nil {
			t.Fatal("drained connection should be closed")
		}
	}
}

// TestServerDrainMidFrame: a client stuck mid-frame cannot block the
// drain — the deadline poke wakes its read, the handler exits, and the
// leak gate stays clean either way the accounting falls.
func TestServerDrainMidFrame(t *testing.T) {
	s, addr := newTestServer(t, 0, Config{})
	cl := dialT(t, addr)
	// Half-written frame: the handler is mid-ReadCommand and cannot
	// reach a flush boundary on its own.
	if _, err := cl.Conn().Write([]byte("*2\r\n$3\r\nSET\r\n$5\r\nhe")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler enter the read

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	stats := s.Shutdown(ctx)
	if stats.ConnsDrained+stats.ConnsForced != 1 {
		t.Fatalf("drain accounting: %+v", stats)
	}
	if !stats.Clean() {
		t.Fatalf("drain not clean: %+v", stats)
	}
}
