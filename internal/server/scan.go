package server

import (
	"bytes"
	"fmt"
	"time"

	"oakmap"
)

// execScan implements the ordered range scan:
//
//	SCAN cursor [COUNT n] [END hi]
//
// Unlike Redis's hash-bucket SCAN, oak's keyspace is ordered, so the
// cursor walks it in global key order (on a sharded map: merged across
// shards). cursor is "0" to start; every reply carries the cursor for
// the next batch ("0" when the range is exhausted). Cursors are opaque
// to clients: internally they encode "resume strictly after key K", so
// a batch boundary never skips or repeats keys even while writers
// churn. END bounds the scan to keys < hi, which makes SCAN a paged
// range query. Replies are [next-cursor, [key, ...]]; values are
// fetched with MGET (or per-key GET) so a scan moves only the bytes the
// client asked for.
func (s *Server) execScan(w *respWriter, args [][]byte) {
	if len(args) < 2 {
		w.writeError("wrong number of arguments for 'scan' command")
		return
	}
	var after []byte
	switch cur := args[1]; {
	case len(cur) == 1 && cur[0] == '0':
		// fresh scan
	case len(cur) > 1 && cur[0] == 'k':
		after = cur[1:]
	default:
		w.writeError("invalid cursor")
		return
	}
	count := s.cfg.ScanDefaultCount
	var hi *[]byte
	for i := 2; i < len(args); i += 2 {
		if i+1 >= len(args) {
			w.writeError("syntax error")
			return
		}
		switch {
		case eqFold(args[i], "COUNT"):
			n, err := parseLen(args[i+1])
			if err != nil || n <= 0 {
				w.writeError("value is not an integer or out of range")
				return
			}
			if n > s.cfg.ScanMaxCount {
				n = s.cfg.ScanMaxCount
			}
			count = n
		case eqFold(args[i], "END"):
			end := args[i+1]
			hi = &end
		default:
			w.writeError("syntax error")
			return
		}
	}

	// Collect up to count keys into one owned buffer (offs marks the
	// boundaries). The stream view's bytes are only valid inside the
	// callback, so each key is copied out exactly once, here.
	var (
		buf      []byte
		offs     = []int{0}
		from     *[]byte
		firstDup = false // first yielded key may equal the resume key
	)
	if after != nil {
		a := after
		from = &a
		firstDup = true
	}
	n := 0
	s.zc.KeysStream(from, hi, func(key *oakmap.OakRBuffer) bool {
		if firstDup {
			firstDup = false
			eq := false
			key.Read(func(b []byte) error { eq = bytes.Equal(b, after); return nil })
			if eq {
				return true // resume key itself: already delivered last batch
			}
		}
		out, err := key.AppendTo(buf)
		if err != nil {
			return true // deleted mid-yield: skip
		}
		buf = out
		offs = append(offs, len(buf))
		n++
		return n < count
	})

	exhausted := n < count
	w.writeArrayHeader(2)
	if exhausted || n == 0 {
		w.writeBulkString("0")
	} else {
		last := buf[offs[n-1]:offs[n]]
		w.writeBulkHeader(1 + len(last))
		w.bw.WriteByte('k')
		w.bw.Write(last)
		w.bw.WriteString("\r\n")
	}
	w.writeArrayHeader(n)
	for i := 0; i < n; i++ {
		w.writeBulk(buf[offs[i]:offs[i+1]])
	}
}

// execInfo renders the INFO text: server totals, then the map rollup
// and the per-shard leak/imbalance signals — the same numbers the
// /metrics endpoint exports, in human-readable form.
func (s *Server) execInfo(w *respWriter) {
	var b bytes.Buffer
	m := &s.metrics
	fmt.Fprintf(&b, "# Server\r\n")
	fmt.Fprintf(&b, "uptime_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
	fmt.Fprintf(&b, "connected_clients:%d\r\n", m.conns.Load())
	fmt.Fprintf(&b, "total_connections_received:%d\r\n", m.connsTotal.Load())
	fmt.Fprintf(&b, "rejected_connections:%d\r\n", m.rejected.Load())
	fmt.Fprintf(&b, "handler_panics:%d\r\n", m.panics.Load())
	var total int64
	for c := cmdKind(0); c < numCmds; c++ {
		total += m.cmds[c].Load()
	}
	fmt.Fprintf(&b, "total_commands_processed:%d\r\n", total)

	st := s.m.Stats()
	fmt.Fprintf(&b, "# Keyspace\r\n")
	fmt.Fprintf(&b, "keys:%d\r\n", st.Len)
	fmt.Fprintf(&b, "shards:%d\r\n", st.Shards)
	fmt.Fprintf(&b, "offheap_footprint_bytes:%d\r\n", st.Footprint)
	fmt.Fprintf(&b, "offheap_live_bytes:%d\r\n", st.LiveBytes)
	fmt.Fprintf(&b, "chunks:%d\r\n", st.Chunks)
	fmt.Fprintf(&b, "rebalances:%d\r\n", st.Rebalances)
	fmt.Fprintf(&b, "epoch:%d\r\n", st.Epoch)
	fmt.Fprintf(&b, "limbo_bytes:%d\r\n", st.LimboBytes)
	fmt.Fprintf(&b, "key_leak_bytes:%d\r\n", st.KeyLeakBytes)
	for i, ss := range s.m.ShardStats() {
		fmt.Fprintf(&b, "shard%d:keys=%d,key_leak_bytes=%d,rebalances=%d\r\n",
			i, ss.Len, ss.KeyLeakBytes, ss.Rebalances)
	}
	w.writeBulk(b.Bytes())
}
