package server

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"oakmap"
)

// execScan implements the ordered range scan:
//
//	SCAN cursor [COUNT n] [END hi] [SNAP]
//
// Unlike Redis's hash-bucket SCAN, oak's keyspace is ordered, so the
// cursor walks it in global key order (on a sharded map: merged across
// shards). cursor is "0" to start; every reply carries the cursor for
// the next batch ("0" when the range is exhausted). Cursors are opaque
// to clients: internally they encode "resume strictly after key K", so
// a batch boundary never skips or repeats keys even while writers
// churn. END bounds the scan to keys < hi, which makes SCAN a paged
// range query. Replies are [next-cursor, [key, ...]]; values are
// fetched with MGET (or per-key GET) so a scan moves only the bytes the
// client asked for.
//
// SNAP (valid only with the fresh "0" cursor) pins a server-side
// snapshot for the scan's whole lifetime: every batch reads the same
// frozen view, so the paged result is an atomic picture of the map —
// no entry mutated, inserted or deleted after the first batch ever
// shows up. Because the values are frozen too, SNAP batches return
// flat [key, value, key, value, ...] pairs (a live MGET would read
// newer state). The pinned view is released when the scan exhausts,
// or reaped after Config.SnapScanTTL without a batch; a reply of "0"
// or an "expired" error both mean the snapshot is gone.
func (s *Server) execScan(w *respWriter, args [][]byte) {
	if len(args) < 2 {
		w.writeError("wrong number of arguments for 'scan' command")
		return
	}
	var (
		after  []byte
		snapID uint64
		haveID bool
	)
	switch cur := args[1]; {
	case len(cur) == 1 && cur[0] == '0':
		// fresh scan
	case len(cur) > 1 && cur[0] == 'k':
		after = cur[1:]
	case len(cur) > 1 && cur[0] == 's':
		// "s<id>" (first continuation) or "s<id>k<key>" (resume after key).
		i := 1
		for i < len(cur) && cur[i] >= '0' && cur[i] <= '9' {
			snapID = snapID*10 + uint64(cur[i]-'0')
			i++
		}
		if i == 1 {
			w.writeError("invalid cursor")
			return
		}
		haveID = true
		if i < len(cur) {
			if cur[i] != 'k' {
				w.writeError("invalid cursor")
				return
			}
			after = cur[i+1:]
		}
	default:
		w.writeError("invalid cursor")
		return
	}
	count := s.cfg.ScanDefaultCount
	var hi *[]byte
	wantSnap := false
	for i := 2; i < len(args); {
		switch {
		case eqFold(args[i], "COUNT"):
			if i+1 >= len(args) {
				w.writeError("syntax error")
				return
			}
			n, err := parseLen(args[i+1])
			if err != nil || n <= 0 {
				w.writeError("value is not an integer or out of range")
				return
			}
			if n > s.cfg.ScanMaxCount {
				n = s.cfg.ScanMaxCount
			}
			count = n
			i += 2
		case eqFold(args[i], "END"):
			if i+1 >= len(args) {
				w.writeError("syntax error")
				return
			}
			end := args[i+1]
			hi = &end
			i += 2
		case eqFold(args[i], "SNAP"):
			wantSnap = true
			i++
		default:
			w.writeError("syntax error")
			return
		}
	}
	if wantSnap {
		if haveID || after != nil {
			w.writeError("SNAP is only valid with cursor 0")
			return
		}
		id, err := s.snaps.create(s.m, s.cfg.SnapScanMax, s.cfg.SnapScanTTL)
		if err != nil {
			w.writeError(err.Error())
			return
		}
		snapID, haveID = id, true
	}
	if haveID {
		s.execScanSnap(w, snapID, after, hi, count)
		return
	}

	// Collect up to count keys into one owned buffer (offs marks the
	// boundaries). The stream view's bytes are only valid inside the
	// callback, so each key is copied out exactly once, here.
	var (
		buf      []byte
		offs     = []int{0}
		from     *[]byte
		firstDup = false // first yielded key may equal the resume key
	)
	if after != nil {
		a := after
		from = &a
		firstDup = true
	}
	n := 0
	s.zc.KeysStream(from, hi, func(key *oakmap.OakRBuffer) bool {
		if firstDup {
			firstDup = false
			eq := false
			key.Read(func(b []byte) error { eq = bytes.Equal(b, after); return nil })
			if eq {
				return true // resume key itself: already delivered last batch
			}
		}
		out, err := key.AppendTo(buf)
		if err != nil {
			return true // deleted mid-yield: skip
		}
		buf = out
		offs = append(offs, len(buf))
		n++
		return n < count
	})

	exhausted := n < count
	w.writeArrayHeader(2)
	if exhausted || n == 0 {
		w.writeBulkString("0")
	} else {
		last := buf[offs[n-1]:offs[n]]
		w.writeBulkHeader(1 + len(last))
		w.bw.WriteByte('k')
		w.bw.Write(last)
		w.bw.WriteString("\r\n")
	}
	w.writeArrayHeader(n)
	for i := 0; i < n; i++ {
		w.writeBulk(buf[offs[i]:offs[i+1]])
	}
}

// execScanSnap serves one batch of a snapshot-pinned scan from the
// pinned frozen view, returning flat key/value pairs.
func (s *Server) execScanSnap(w *respWriter, id uint64, after []byte, hi *[]byte, count int) {
	sn, ok := s.snaps.acquire(id)
	if !ok {
		w.writeError("snapshot cursor expired or unknown")
		return
	}
	var (
		buf      []byte
		offs     = []int{0} // interleaved key/value boundaries
		lo       []byte
		hiB      []byte
		firstDup = false
	)
	if after != nil {
		lo = after
		firstDup = true // lo is inclusive; the resume key went out last batch
	}
	if hi != nil {
		hiB = *hi
	}
	n := 0
	sn.AscendRaw(lo, hiB, func(key, val []byte) bool {
		if firstDup {
			firstDup = false
			if bytes.Equal(key, after) {
				return true
			}
		}
		buf = append(buf, key...)
		offs = append(offs, len(buf))
		buf = append(buf, val...)
		offs = append(offs, len(buf))
		n++
		return n < count
	})
	exhausted := n < count
	s.snaps.release(id, exhausted)

	w.writeArrayHeader(2)
	if exhausted {
		w.writeBulkString("0")
	} else {
		// Next cursor: "s<id>k<lastkey>".
		last := buf[offs[2*n-2] : offs[2*n-1]]
		idb := strconv.AppendUint(w.scratch[:0], id, 10)
		w.writeBulkHeader(1 + len(idb) + 1 + len(last))
		w.bw.WriteByte('s')
		w.bw.Write(idb)
		w.bw.WriteByte('k')
		w.bw.Write(last)
		w.bw.WriteString("\r\n")
		w.scratch = idb[:0]
	}
	w.writeArrayHeader(2 * n)
	for i := 0; i < 2*n; i++ {
		w.writeBulk(buf[offs[i]:offs[i+1]])
	}
}

// snapCursors is the server-side registry of snapshot-pinned scans.
// Each entry holds one open map snapshot; entries are reaped when a
// scan exhausts its range, when no batch arrives within the TTL (a
// background ticker, started lazily by the first SNAP scan, sweeps
// even if no further SNAP command ever arrives), and unconditionally
// at Shutdown — an abandoned client must not pin the map's reclaim
// horizon forever.
//
// Lock-order contract, verified by oak-vet/lockorder: the registry lock
// is outermost — create() calls Snapshot() (shard ratchet, MVCC locks)
// while holding mu, so no map-internal path may ever call back into the
// registry.
//
//oak:lock-order server.snapCursors.mu sharded.Map.verMu
//oak:lock-order server.snapCursors.mu core.mvccState.mu
type snapCursors struct {
	mu   sync.Mutex
	next uint64                 //oak:guarded-by mu
	open map[uint64]*snapCursor //oak:guarded-by mu
	stop chan struct{}          //oak:guarded-by mu — non-nil once the reaper ticker is running
}

// snapCursor's mutable fields are guarded by the owning registry's
// snapCursors.mu. sn itself is deliberately unguarded: it is written
// once before the entry is published into open, read only under mu
// while the entry is live, and Close()d only after the entry has been
// removed from open — by the sole goroutine that removed it — so the
// closer owns it exclusively and may call Close outside the lock
// (Close walks the map's MVCC state and must not nest under mu from
// the release path, where a handler is on the hot path).
type snapCursor struct {
	sn   *oakmap.Snapshot[[]byte, []byte]
	used time.Time //oak:guarded-by snapCursors.mu
	busy int       //oak:guarded-by snapCursors.mu — batches currently reading; reaping skips busy entries
	// dead marks an exhausted entry whose snapshot cannot be closed yet:
	// another connection presenting the same cursor may still be
	// mid-scan on it (busy > 0). The last releaser of a dead entry
	// performs the Close; acquire refuses dead entries, so busy never
	// rises again once dead is set and the drain-to-zero close fires
	// exactly once.
	dead bool //oak:guarded-by snapCursors.mu
}

var errTooManySnaps = errors.New("too many open snapshot cursors")

func (r *snapCursors) create(m *oakmap.Map[[]byte, []byte], max int, ttl time.Duration) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reapLocked(ttl)
	if r.open == nil {
		r.open = make(map[uint64]*snapCursor)
	}
	if len(r.open) >= max {
		return 0, errTooManySnaps
	}
	if r.stop == nil && ttl > 0 {
		r.stop = make(chan struct{})
		go r.reapLoop(ttl, r.stop)
	}
	r.next++
	id := r.next
	// Snapshot() stabilizes under the registry lock; acquisition is
	// short (it never waits on other snapshots, only in-flight writes).
	r.open[id] = &snapCursor{sn: m.Snapshot(), used: time.Now()}
	return id, nil
}

// acquire pins entry id for one batch (reaping skips it while busy).
func (r *snapCursors) acquire(id uint64) (*oakmap.Snapshot[[]byte, []byte], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.open[id]
	if !ok || e.dead {
		return nil, false
	}
	e.busy++
	return e.sn, true
}

// release ends a batch; done additionally marks the entry dead (the
// scan exhausted its range). The snapshot is closed by whichever
// release drains a dead entry's busy count to zero — never while a
// concurrent batch is still reading the frozen view.
func (r *snapCursors) release(id uint64, done bool) {
	r.mu.Lock()
	e, ok := r.open[id]
	var closeNow bool
	if ok {
		e.busy--
		e.used = time.Now()
		if done {
			e.dead = true
		}
		if e.dead && e.busy == 0 {
			delete(r.open, id)
			closeNow = true
		}
	}
	r.mu.Unlock()
	if closeNow {
		e.sn.Close()
	}
}

// reapLoop sweeps expired entries until stop closes (Shutdown), so TTL
// expiry does not depend on any future SNAP command arriving.
func (r *snapCursors) reapLoop(ttl time.Duration, stop <-chan struct{}) {
	iv := ttl / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.mu.Lock()
			r.reapLocked(ttl)
			r.mu.Unlock()
		case <-stop:
			return
		}
	}
}

func (r *snapCursors) reapLocked(ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	cut := time.Now().Add(-ttl)
	for id, e := range r.open {
		if e.busy == 0 && e.used.Before(cut) {
			delete(r.open, id)
			e.sn.Close()
		}
	}
}

// closeAll releases every pinned snapshot and stops the reaper
// (Shutdown path — handlers have already drained, so no entry is busy).
func (r *snapCursors) closeAll() {
	r.mu.Lock()
	entries := make([]*snapCursor, 0, len(r.open))
	for id, e := range r.open {
		entries = append(entries, e)
		delete(r.open, id)
	}
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.sn.Close()
	}
}

func (r *snapCursors) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// execInfo renders the INFO text: server totals, then the map rollup
// and the per-shard leak/imbalance signals — the same numbers the
// /metrics endpoint exports, in human-readable form.
func (s *Server) execInfo(w *respWriter) {
	var b bytes.Buffer
	m := &s.metrics
	fmt.Fprintf(&b, "# Server\r\n")
	fmt.Fprintf(&b, "uptime_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
	fmt.Fprintf(&b, "connected_clients:%d\r\n", m.conns.Load())
	fmt.Fprintf(&b, "total_connections_received:%d\r\n", m.connsTotal.Load())
	fmt.Fprintf(&b, "rejected_connections:%d\r\n", m.rejected.Load())
	fmt.Fprintf(&b, "handler_panics:%d\r\n", m.panics.Load())
	var total int64
	for c := cmdKind(0); c < numCmds; c++ {
		total += m.cmds[c].Load()
	}
	fmt.Fprintf(&b, "total_commands_processed:%d\r\n", total)

	st := s.m.Stats()
	fmt.Fprintf(&b, "# Keyspace\r\n")
	fmt.Fprintf(&b, "keys:%d\r\n", st.Len)
	fmt.Fprintf(&b, "shards:%d\r\n", st.Shards)
	fmt.Fprintf(&b, "offheap_footprint_bytes:%d\r\n", st.Footprint)
	fmt.Fprintf(&b, "offheap_live_bytes:%d\r\n", st.LiveBytes)
	fmt.Fprintf(&b, "chunks:%d\r\n", st.Chunks)
	fmt.Fprintf(&b, "rebalances:%d\r\n", st.Rebalances)
	fmt.Fprintf(&b, "epoch:%d\r\n", st.Epoch)
	fmt.Fprintf(&b, "limbo_bytes:%d\r\n", st.LimboBytes)
	fmt.Fprintf(&b, "key_leak_bytes:%d\r\n", st.KeyLeakBytes)
	fmt.Fprintf(&b, "# MVCC\r\n")
	fmt.Fprintf(&b, "open_snapshots:%d\r\n", st.OpenSnapshots)
	fmt.Fprintf(&b, "snap_scan_cursors:%d\r\n", s.snaps.count())
	fmt.Fprintf(&b, "retained_bytes:%d\r\n", st.RetainedBytes)
	fmt.Fprintf(&b, "retained_spans:%d\r\n", st.RetainedSpans)
	fmt.Fprintf(&b, "horizon_lag:%d\r\n", st.HorizonLag)
	for i, ss := range s.m.ShardStats() {
		fmt.Fprintf(&b, "shard%d:keys=%d,key_leak_bytes=%d,rebalances=%d\r\n",
			i, ss.Len, ss.KeyLeakBytes, ss.Rebalances)
	}
	w.writeBulk(b.Bytes())
}
