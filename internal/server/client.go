package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// Client is a minimal pipelining RESP client, shared by the server
// tests and oak-stress's -net mode. It is synchronous and single-owner:
// Send buffers commands, Flush writes them, Recv reads one reply —
// callers interleave them to pipeline (N Sends, Flush, N Recvs). Not
// safe for concurrent use; each worker owns one Client.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	w    *respWriter
}

// Dial connects to an oak-server (or any RESP2 server) at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
	c.w = newRespWriter(conn)
	c.bw = c.w.bw
	return c
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Conn exposes the underlying connection (tests set deadlines or
// close it mid-pipeline on purpose).
func (c *Client) Conn() net.Conn { return c.conn }

// Send buffers one command frame.
func (c *Client) Send(args ...[]byte) {
	c.w.writeArrayHeader(len(args))
	for _, a := range args {
		c.w.writeBulk(a)
	}
}

// SendStrings is Send for string arguments.
func (c *Client) SendStrings(args ...string) {
	c.w.writeArrayHeader(len(args))
	for _, a := range args {
		c.w.writeBulkString(a)
	}
}

// Flush writes every buffered command to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// ReplyKind discriminates Reply.
type ReplyKind byte

const (
	ReplySimple ReplyKind = '+'
	ReplyError  ReplyKind = '-'
	ReplyInt    ReplyKind = ':'
	ReplyBulk   ReplyKind = '$'
	ReplyArray  ReplyKind = '*'
	ReplyNil    ReplyKind = '0' // nil bulk or nil array
)

// Reply is one parsed server reply. Bulk/Simple/Error payloads are in
// Str (owned, safe to retain); arrays nest in Elems.
type Reply struct {
	Kind  ReplyKind
	Str   []byte
	Int   int64
	Elems []Reply
}

// IsOK reports a "+OK" reply.
func (r Reply) IsOK() bool { return r.Kind == ReplySimple && string(r.Str) == "OK" }

// Recv reads one reply (blocking).
func (c *Client) Recv() (Reply, error) { return readReply(c.br, 0) }

// Do sends one command, flushes, and reads its reply.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	c.Send(args...)
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// DoStrings is Do for string arguments.
func (c *Client) DoStrings(args ...string) (Reply, error) {
	c.SendStrings(args...)
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// maxReplyDepth bounds nested arrays; the protocol we speak never nests
// past 2, so anything deeper is a framing bug, not data.
const maxReplyDepth = 8

func readReply(br *bufio.Reader, depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, protoErrf("reply nesting too deep")
	}
	kind, err := br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := readReplyLine(br)
	if err != nil {
		return Reply{}, err
	}
	switch kind {
	case '+', '-':
		return Reply{Kind: ReplyKind(kind), Str: append([]byte(nil), line...)}, nil
	case ':':
		n, err := parseLen(line)
		if err != nil {
			return Reply{}, protoErrf("bad integer reply")
		}
		return Reply{Kind: ReplyInt, Int: int64(n)}, nil
	case '$':
		n, err := parseLen(line)
		if err != nil || n > DefaultMaxBulk {
			return Reply{}, protoErrf("bad bulk length")
		}
		if n < 0 {
			return Reply{Kind: ReplyNil}, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return Reply{}, err
		}
		var crlf [2]byte
		if _, err := io.ReadFull(br, crlf[:]); err != nil {
			return Reply{}, err
		}
		if crlf != [2]byte{'\r', '\n'} {
			return Reply{}, protoErrf("missing CRLF after bulk")
		}
		return Reply{Kind: ReplyBulk, Str: payload}, nil
	case '*':
		n, err := parseLen(line)
		if err != nil || n > 1<<20 {
			return Reply{}, protoErrf("bad array length")
		}
		if n < 0 {
			return Reply{Kind: ReplyNil}, nil
		}
		out := Reply{Kind: ReplyArray, Elems: make([]Reply, 0, n)}
		for i := 0; i < n; i++ {
			el, err := readReply(br, depth+1)
			if err != nil {
				return Reply{}, err
			}
			out.Elems = append(out.Elems, el)
		}
		return out, nil
	default:
		return Reply{}, protoErrf("bad reply type %q", kind)
	}
}

func readReplyLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("malformed reply line")
	}
	return line[:len(line)-2], nil
}

// String renders a reply for test failure messages.
func (r Reply) String() string {
	switch r.Kind {
	case ReplySimple:
		return "+" + string(r.Str)
	case ReplyError:
		return "-" + string(r.Str)
	case ReplyInt:
		return fmt.Sprintf(":%d", r.Int)
	case ReplyBulk:
		return fmt.Sprintf("$%q", r.Str)
	case ReplyNil:
		return "(nil)"
	case ReplyArray:
		return fmt.Sprintf("*%v", r.Elems)
	}
	return "?"
}
