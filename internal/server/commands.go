package server

import (
	"fmt"

	"oakmap"
)

// lookupCmd resolves a verb case-insensitively without allocating: the
// verb set is small enough that an unrolled ASCII-upper comparison
// beats a map[string] lookup plus the []byte→string conversion.
func lookupCmd(verb []byte) cmdKind {
	switch len(verb) {
	case 3:
		if eqFold(verb, "GET") {
			return cmdGet
		}
		if eqFold(verb, "SET") {
			return cmdSet
		}
		if eqFold(verb, "DEL") {
			return cmdDel
		}
	case 4:
		switch {
		case eqFold(verb, "MGET"):
			return cmdMGet
		case eqFold(verb, "MSET"):
			return cmdMSet
		case eqFold(verb, "SCAN"):
			return cmdScan
		case eqFold(verb, "PING"):
			return cmdPing
		case eqFold(verb, "INFO"):
			return cmdInfo
		case eqFold(verb, "QUIT"):
			return cmdOther // handled specially in execute
		}
	case 5:
		if eqFold(verb, "SETNX") {
			return cmdSetNX
		}
	case 6:
		switch {
		case eqFold(verb, "EXISTS"):
			return cmdExists
		case eqFold(verb, "DBSIZE"):
			return cmdDBSize
		}
	case 8:
		if eqFold(verb, "SHUTDOWN") {
			return cmdShutdown
		}
	}
	return cmdOther
}

// eqFold compares a received verb against an upper-case ASCII pattern.
func eqFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// execute runs one command and buffers its reply. It returns a non-nil
// error only when the connection should close after the buffered reply
// is flushed (QUIT, SHUTDOWN); command failures are RESP error replies,
// not Go errors — a pipelined batch keeps executing past them.
func (s *Server) execute(w *respWriter, args [][]byte) error {
	FpHandle.Fire()
	verb := args[0]
	if eqFold(verb, "QUIT") {
		w.writeSimple("OK")
		return errCloseConn
	}
	kind := lookupCmd(verb)
	start := s.metrics.observe(kind)
	defer s.metrics.done(kind, start)

	switch kind {
	case cmdGet:
		if !s.arity(w, args, 2, 2) {
			return nil
		}
		s.writeValue(w, args[1])

	case cmdSet:
		if !s.arity(w, args, 3, 3) {
			return nil
		}
		if err := s.zc.Put(args[1], args[2]); err != nil {
			w.writeError(err.Error())
			return nil
		}
		w.writeSimple("OK")

	case cmdSetNX:
		if !s.arity(w, args, 3, 3) {
			return nil
		}
		ins, err := s.zc.PutIfAbsent(args[1], args[2])
		if err != nil {
			w.writeError(err.Error())
			return nil
		}
		w.writeInt(boolInt(ins))

	case cmdDel:
		if !s.arity(w, args, 2, -1) {
			return nil
		}
		var n int64
		for _, k := range args[1:] {
			removed, err := s.zc.Delete(k)
			if err != nil {
				w.writeError(err.Error())
				return nil
			}
			n += boolInt(removed)
		}
		w.writeInt(n)

	case cmdExists:
		if !s.arity(w, args, 2, -1) {
			return nil
		}
		var n int64
		for _, k := range args[1:] {
			n += boolInt(s.m.ContainsKey(k))
		}
		w.writeInt(n)

	case cmdMGet:
		if !s.arity(w, args, 2, -1) {
			return nil
		}
		w.writeArrayHeader(len(args) - 1)
		for _, k := range args[1:] {
			s.writeValue(w, k)
		}

	case cmdMSet:
		if len(args) < 3 || len(args)%2 != 1 {
			w.writeError("wrong number of arguments for 'mset' command")
			return nil
		}
		// Atomic, unlike Redis: the whole batch becomes visible at once.
		// A concurrent reader, scan or snapshot observes either all of
		// these writes or none — across shards too — and an allocation
		// failure rolls the entire batch back (no partial MSET).
		ops := make([]oakmap.Op[[]byte, []byte], 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			ops = append(ops, oakmap.Op[[]byte, []byte]{Key: args[i], Value: args[i+1]})
		}
		if err := s.m.ApplyBatch(ops); err != nil {
			w.writeError(err.Error())
			return nil
		}
		w.writeSimple("OK")

	case cmdScan:
		s.execScan(w, args)

	case cmdDBSize:
		if !s.arity(w, args, 1, 1) {
			return nil
		}
		w.writeInt(int64(s.m.Len()))

	case cmdPing:
		if !s.arity(w, args, 1, 2) {
			return nil
		}
		if len(args) == 2 {
			w.writeBulk(args[1])
		} else {
			w.writeSimple("PONG")
		}

	case cmdInfo:
		s.execInfo(w)

	case cmdShutdown:
		// Acknowledge, request the drain, and close this connection; the
		// embedding process owns the actual Shutdown sequence (so the
		// command and SIGTERM share one code path).
		w.writeSimple("OK")
		s.shutdownOnce.Do(func() { close(s.shutdownCh) })
		return errCloseConn

	default:
		if eqFold(verb, "COMMAND") {
			// redis-cli sends COMMAND DOCS on connect; an empty array
			// keeps it quiet without implementing introspection.
			w.writeArrayHeader(0)
			return nil
		}
		w.writeError(fmt.Sprintf("unknown command '%.32s'", verb))
	}
	return nil
}

// writeValue buffers the value mapped to k as a bulk reply (nil bulk
// when absent). The read path is the zero-copy one: the value bytes are
// copied exactly once, off-heap → reply buffer, under the view's
// deletion check; a concurrent delete between lookup and read reports
// absent, never torn bytes.
func (s *Server) writeValue(w *respWriter, k []byte) {
	buf := s.zc.Get(k)
	if buf == nil {
		w.writeNil()
		return
	}
	out, err := buf.AppendTo(w.scratch[:0])
	if err != nil {
		// Deleted between Get and read: absent.
		w.writeNil()
		return
	}
	w.scratch = out[:0] // keep the (possibly grown) backing array
	w.writeBulk(out)
}

// arity checks len(args) against [min, max] (max < 0 = unbounded) and
// reports the Redis-style arity error itself.
func (s *Server) arity(w *respWriter, args [][]byte, min, max int) bool {
	if len(args) < min || (max > 0 && len(args) > max) {
		w.writeError(fmt.Sprintf("wrong number of arguments for '%.32s' command", args[0]))
		return false
	}
	return true
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
