package server

import (
	"sync/atomic"
	"time"

	"oakmap/internal/telemetry"
)

// cmdKind indexes the verb set for per-command counters and latency
// histograms. parse failures and unknown verbs land on cmdOther.
type cmdKind uint8

const (
	cmdGet cmdKind = iota
	cmdSet
	cmdSetNX
	cmdDel
	cmdExists
	cmdMGet
	cmdMSet
	cmdScan
	cmdDBSize
	cmdPing
	cmdInfo
	cmdShutdown
	cmdOther
	numCmds
)

var cmdNames = [numCmds]string{
	"get", "set", "setnx", "del", "exists", "mget", "mset",
	"scan", "dbsize", "ping", "info", "shutdown", "other",
}

func (c cmdKind) String() string { return cmdNames[c] }

// cmdSampleMask makes command latency a 1-in-64 sampled measurement,
// the same shift the map's hot ops use (telemetry.DefaultSampleShift):
// the sharded counter's Add return is per-stripe monotonic, which is
// exactly what the 1-in-N test needs.
const cmdSampleMask = 1<<telemetry.DefaultSampleShift - 1

// metrics aggregates the server's observable state. Counters are the
// sharded telemetry kind (many handler goroutines bump them); gauges
// are registered on the map's Telemetry scope at construction so the
// existing /metrics exporter carries the oak_server_* family without
// the exporter learning anything server-specific.
type metrics struct {
	conns       atomic.Int64 // currently served connections
	connsTotal  atomic.Int64 // accepted over the server's lifetime
	rejected    atomic.Int64 // turned away at the MaxConns gate
	panics      atomic.Int64 // handler panics recovered
	timeouts    atomic.Int64 // connections dropped on read/write deadlines
	protoErrors atomic.Int64 // connections dropped on framing violations

	cmds    [numCmds]telemetry.Counter
	cmdHist [numCmds]telemetry.AtomicHist

	pipeline telemetry.AtomicHist // commands per flushed batch
}

// depthUnit maps a pipeline depth onto the latency histogram's bucket
// layout: depth d is observed as d×100ns, so the log-bucketed quantiles
// read back as depths after dividing the unit out (≤~41% relative
// error, plenty for a batching-behavior signal).
const depthUnit = 100 * time.Nanosecond

func (m *metrics) observeDepth(depth int) {
	m.pipeline.Observe(time.Duration(depth) * depthUnit)
}

func depthOf(d time.Duration) float64 { return float64(d) / float64(depthUnit) }

// observe counts one command and, on the sampled subset, returns a
// non-zero start time for latency recording via done.
func (m *metrics) observe(c cmdKind) time.Time {
	n := m.cmds[c].Add(1)
	if uint64(n)&cmdSampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

func (m *metrics) done(c cmdKind, start time.Time) {
	if !start.IsZero() {
		m.cmdHist[c].Observe(time.Since(start))
	}
}

// register exposes the server family on the map's telemetry scope.
// Histograms surface as quantile gauges computed from the sampled
// AtomicHist at scrape time — the same machinery as Telemetry.Summary.
func (s *Server) registerMetrics() {
	t := s.cfg.Telemetry
	if t == nil {
		return
	}
	m := &s.metrics
	t.RegisterGauge("oak_server_connections", false, func() float64 { return float64(m.conns.Load()) })
	t.RegisterGauge("oak_server_connections_total", true, func() float64 { return float64(m.connsTotal.Load()) })
	t.RegisterGauge("oak_server_rejected_total", true, func() float64 { return float64(m.rejected.Load()) })
	t.RegisterGauge("oak_server_panics_total", true, func() float64 { return float64(m.panics.Load()) })
	t.RegisterGauge("oak_server_timeouts_total", true, func() float64 { return float64(m.timeouts.Load()) })
	t.RegisterGauge("oak_server_proto_errors_total", true, func() float64 { return float64(m.protoErrors.Load()) })
	t.RegisterGauge("oak_server_snap_cursors", false, func() float64 { return float64(s.snaps.count()) })

	for c := cmdKind(0); c < numCmds; c++ {
		c := c
		t.RegisterGauge(`oak_server_commands_total{cmd="`+c.String()+`"}`, true,
			func() float64 { return float64(m.cmds[c].Load()) })
		for _, q := range []struct {
			label string
			f     float64
		}{{"0.5", 0.50}, {"0.99", 0.99}} {
			q := q
			t.RegisterGauge(`oak_server_cmd_latency_seconds{cmd="`+c.String()+`",quantile="`+q.label+`"}`, false,
				func() float64 { return m.cmdHist[c].Snapshot().Quantile(q.f).Seconds() })
		}
	}

	t.RegisterGauge(`oak_server_pipeline_depth{quantile="0.5"}`, false,
		func() float64 { return depthOf(m.pipeline.Snapshot().Quantile(0.50)) })
	t.RegisterGauge(`oak_server_pipeline_depth{quantile="0.99"}`, false,
		func() float64 { return depthOf(m.pipeline.Snapshot().Quantile(0.99)) })
	t.RegisterGauge("oak_server_pipeline_batches_total", true,
		func() float64 { return float64(m.pipeline.Snapshot().Count) })
}
