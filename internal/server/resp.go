// Package server is oak-server's engine: a pipelined RESP2-subset TCP
// front-end over an oakmap.Map[[]byte, []byte]. The protocol layer in
// this file frames commands and replies; server.go owns connections,
// limits and the drain sequence; commands.go executes the verb set.
//
// The wire format is the Redis serialization protocol, version 2,
// restricted to what a key-value map needs: clients send commands as
// arrays of bulk strings (or inline, space-separated lines — the
// redis-cli convenience form), the server answers with simple strings,
// errors, integers, bulk strings and arrays. Everything is
// length-prefixed, so a reader never scans payload bytes for
// terminators and pipelining falls out naturally: the reader consumes
// frames back to back and the writer batches replies until the input
// buffer runs dry.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. Violations are protocol errors: the server reports
// them with a -ERR reply and closes the connection, like Redis, because
// after a malformed frame the stream offset can no longer be trusted.
const (
	// DefaultMaxArgs bounds the argument count of one command frame.
	DefaultMaxArgs = 1024
	// DefaultMaxBulk bounds one bulk-string payload (keys and values).
	DefaultMaxBulk = 8 << 20
	// maxInlineLine bounds an inline command line.
	maxInlineLine = 64 << 10
)

// errProtocol marks malformed frames. A handler that sees one reports
// it to the client and closes the connection — resynchronizing on a
// corrupt length-prefixed stream is not possible.
type errProtocol struct{ msg string }

func (e *errProtocol) Error() string { return "Protocol error: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &errProtocol{msg: fmt.Sprintf(format, args...)}
}

// IsProtocolError reports whether err is a framing violation (as
// opposed to an I/O error or timeout).
func IsProtocolError(err error) bool {
	var pe *errProtocol
	return errors.As(err, &pe)
}

// respReader frames pipelined commands off one connection. The [][]byte
// it returns is owned by the reader: both the outer slice and each
// argument's backing array are reused by the next ReadCommand, so
// handlers must finish (or copy) before reading the next frame —
// exactly the lifetime a synchronous command loop provides.
type respReader struct {
	br      *bufio.Reader
	maxArgs int
	maxBulk int

	args   [][]byte // reused frame: args[i] aliases argBuf regions
	argBuf []byte   // one backing buffer for all of a frame's arguments
}

func newRespReader(r io.Reader, maxArgs, maxBulk int) *respReader {
	if maxArgs <= 0 {
		maxArgs = DefaultMaxArgs
	}
	if maxBulk <= 0 {
		maxBulk = DefaultMaxBulk
	}
	return &respReader{
		br:      bufio.NewReaderSize(r, 64<<10),
		maxArgs: maxArgs,
		maxBulk: maxBulk,
	}
}

// buffered reports whether at least one byte of a further frame is
// already in memory — the pipelining signal: while true, replies stay
// buffered; when false, the writer flushes before the reader blocks.
func (r *respReader) buffered() bool { return r.br.Buffered() > 0 }

// readLine reads one CRLF-terminated line (without the terminator),
// bounded by maxInlineLine. Bare LF is tolerated for inline commands
// typed through netcat; RESP frames always carry the full CRLF.
func (r *respReader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, protoErrf("line too long")
		}
		return nil, err
	}
	if len(line) > maxInlineLine {
		return nil, protoErrf("line too long")
	}
	// Strip \n and an optional preceding \r.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// ReadCommand reads one command frame: a RESP array of bulk strings, or
// an inline command line. The returned arguments are valid until the
// next ReadCommand call.
func (r *respReader) ReadCommand() ([][]byte, error) {
	first, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if first != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		return r.readInline()
	}
	header, err := r.readLine()
	if err != nil {
		return nil, err
	}
	n, err := parseLen(header)
	if err != nil {
		return nil, protoErrf("invalid multibulk length")
	}
	if n < 0 {
		return nil, protoErrf("invalid multibulk length")
	}
	if n == 0 {
		return r.args[:0], nil // empty frame: caller skips it
	}
	if n > r.maxArgs {
		return nil, protoErrf("too many arguments (%d > %d)", n, r.maxArgs)
	}
	if cap(r.args) < n {
		r.args = make([][]byte, n)
	}
	args := r.args[:n]
	r.argBuf = r.argBuf[:0]
	offs := make([]int, 0, 2*n) // start/end offsets into argBuf (it may move while growing)
	for i := 0; i < n; i++ {
		marker, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if marker != '$' {
			return nil, protoErrf("expected '$', got %q", marker)
		}
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		blen, err := parseLen(line)
		if err != nil || blen < 0 {
			return nil, protoErrf("invalid bulk length")
		}
		if blen > r.maxBulk {
			return nil, protoErrf("bulk string too large (%d > %d)", blen, r.maxBulk)
		}
		start := len(r.argBuf)
		if cap(r.argBuf)-start < blen {
			grown := make([]byte, start, start+blen+256)
			copy(grown, r.argBuf)
			r.argBuf = grown
		}
		r.argBuf = r.argBuf[:start+blen]
		if _, err := io.ReadFull(r.br, r.argBuf[start:]); err != nil {
			return nil, err
		}
		if err := r.expectCRLF(); err != nil {
			return nil, err
		}
		offs = append(offs, start, start+blen)
	}
	for i := 0; i < n; i++ {
		args[i] = r.argBuf[offs[2*i]:offs[2*i+1]]
	}
	return args, nil
}

// readInline parses a space-separated command line (no quoting — enough
// for PING/INFO/SHUTDOWN typed by hand; binary-safe traffic uses
// arrays). An empty line yields an empty frame the caller skips.
func (r *respReader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	args := r.args[:0]
	r.argBuf = append(r.argBuf[:0], line...) // own the bytes: the bufio slice dies on the next read
	buf := r.argBuf
	for i := 0; i < len(buf); {
		for i < len(buf) && (buf[i] == ' ' || buf[i] == '\t') {
			i++
		}
		start := i
		for i < len(buf) && buf[i] != ' ' && buf[i] != '\t' {
			i++
		}
		if i > start {
			if len(args) == r.maxArgs {
				return nil, protoErrf("too many arguments (> %d)", r.maxArgs)
			}
			args = append(args, buf[start:i])
		}
	}
	r.args = args[:cap(args)]
	return args, nil
}

func (r *respReader) expectCRLF() error {
	cr, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	lf, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	if cr != '\r' || lf != '\n' {
		return protoErrf("expected CRLF after bulk payload")
	}
	return nil
}

// parseLen parses a RESP length field: plain decimal digits with an
// optional leading '-' (for the -1 nil sentinel). strconv.Atoi would
// accept "+5" and "05"; Redis does not, and neither do we.
func parseLen(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errors.New("empty length")
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if i == len(b) {
			return 0, errors.New("bare minus")
		}
	}
	if b[i] == '0' && len(b)-i > 1 {
		return 0, errors.New("leading zero")
	}
	n := 0
	for ; i < len(b); i++ {
		d := b[i]
		if d < '0' || d > '9' {
			return 0, errors.New("not a digit")
		}
		if n > (1<<31-1)/10 {
			return 0, errors.New("length overflow")
		}
		n = n*10 + int(d-'0')
	}
	if neg {
		return -n, nil
	}
	return n, nil
}

// respWriter buffers replies for one connection. Nothing reaches the
// socket until Flush — the handler flushes when the read side runs out
// of buffered frames (end of pipeline) or when MaxPipeline replies have
// accumulated, so a deep pipeline costs one syscall per batch, not per
// command.
type respWriter struct {
	bw      *bufio.Writer
	scratch []byte   // reused copy-out target for off-heap values
	ints    [24]byte // integer formatting; separate from scratch so a
	// buffered value copy is never clobbered by its own length header
}

func newRespWriter(w io.Writer) *respWriter {
	return &respWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

func (w *respWriter) Flush() error { return w.bw.Flush() }

func (w *respWriter) writeSimple(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeError(msg string) {
	w.bw.WriteString("-ERR ")
	w.bw.WriteString(msg)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeInt(n int64) {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(w.ints[:0], n, 10))
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeNil() { w.bw.WriteString("$-1\r\n") }

func (w *respWriter) writeBulk(b []byte) {
	w.writeBulkHeader(len(b))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeBulkString(s string) {
	w.writeBulkHeader(len(s))
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeBulkHeader(n int) {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.ints[:0], int64(n), 10))
	w.bw.WriteString("\r\n")
}

func (w *respWriter) writeArrayHeader(n int) {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(w.ints[:0], int64(n), 10))
	w.bw.WriteString("\r\n")
}
