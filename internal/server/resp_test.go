package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func reader(s string) *respReader { return newRespReader(strings.NewReader(s), 0, 0) }

func mustRead(t *testing.T, r *respReader) [][]byte {
	t.Helper()
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand: %v", err)
	}
	return args
}

func argsEq(args [][]byte, want ...string) bool {
	if len(args) != len(want) {
		return false
	}
	for i := range args {
		if string(args[i]) != want[i] {
			return false
		}
	}
	return true
}

func TestReadCommandArray(t *testing.T) {
	r := reader("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	if args := mustRead(t, r); !argsEq(args, "SET", "k", "hello") {
		t.Fatalf("got %q", args)
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("want EOF after single frame, got %v", err)
	}
}

func TestReadCommandEmptyBulk(t *testing.T) {
	r := reader("*2\r\n$3\r\nGET\r\n$0\r\n\r\n")
	if args := mustRead(t, r); !argsEq(args, "GET", "") {
		t.Fatalf("got %q", args)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	r := reader("*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n")
	if args := mustRead(t, r); !argsEq(args, "PING") {
		t.Fatalf("got %q", args)
	}
	// strings.Reader delivers everything on the first fill, so the second
	// frame is already in memory — buffered() is the pipelining signal.
	if !r.buffered() {
		t.Fatal("second frame should still be buffered")
	}
	if args := mustRead(t, r); !argsEq(args, "GET", "a") {
		t.Fatalf("got %q", args)
	}
	if r.buffered() {
		t.Fatal("no further frames should be buffered")
	}
}

// The reader reuses its frame across calls — a handler that retained
// args past the next ReadCommand would see them rewritten. This test
// pins the aliasing contract (and documents it) rather than fighting it.
func TestReadCommandReusesFrame(t *testing.T) {
	r := reader("*2\r\n$3\r\nSET\r\n$3\r\naaa\r\n*2\r\n$3\r\nGET\r\n$3\r\nbbb\r\n")
	first := mustRead(t, r)
	keep := first[1] // aliases r.argBuf
	second := mustRead(t, r)
	if !argsEq(second, "GET", "bbb") {
		t.Fatalf("got %q", second)
	}
	if string(keep) == "aaa" {
		t.Fatal("expected first frame's backing bytes to be reused (contract change?)")
	}
}

func TestReadInline(t *testing.T) {
	r := reader("PING\r\n  SET   key  val \r\nquit\n")
	if args := mustRead(t, r); !argsEq(args, "PING") {
		t.Fatalf("got %q", args)
	}
	if args := mustRead(t, r); !argsEq(args, "SET", "key", "val") {
		t.Fatalf("got %q", args)
	}
	// Bare LF (netcat convenience) is tolerated for inline commands.
	if args := mustRead(t, r); !argsEq(args, "quit") {
		t.Fatalf("got %q", args)
	}
}

func TestReadInlineEmptyLine(t *testing.T) {
	r := reader("\r\nPING\r\n")
	if args := mustRead(t, r); len(args) != 0 {
		t.Fatalf("empty line should yield an empty frame, got %q", args)
	}
	if args := mustRead(t, r); !argsEq(args, "PING") {
		t.Fatalf("got %q", args)
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := map[string]string{
		"negative multibulk": "*-1\r\n",
		"plus-sign length":   "*+2\r\n$3\r\nGET\r\n$1\r\na\r\n",
		"leading-zero bulk":  "*1\r\n$04\r\nPING\r\n",
		"overflow length":    "*1\r\n$99999999999999999999\r\n",
		"negative bulk":      "*1\r\n$-1\r\n",
		"wrong marker":       "*1\r\n:123\r\n",
		"missing CRLF":       "*1\r\n$4\r\nPINGxx",
		"oversized bulk":     "*1\r\n$9000000\r\n",
		"too many args":      "*2000\r\n",
	}
	for name, in := range cases {
		r := reader(in)
		_, err := r.ReadCommand()
		if err == nil || !IsProtocolError(err) {
			t.Errorf("%s: want protocol error, got %v", name, err)
		}
	}
}

func TestReadCommandTruncated(t *testing.T) {
	// Truncation is an I/O condition (the peer died), not a protocol
	// error — the handler closes quietly instead of replying.
	for _, in := range []string{"*2\r\n$3\r\nGET\r\n", "*1\r\n$5\r\nhel", "*3\r\n"} {
		r := reader(in)
		_, err := r.ReadCommand()
		if err == nil || IsProtocolError(err) {
			t.Errorf("%q: want io error, got %v", in, err)
		}
	}
}

func TestReadCommandRespectsLimits(t *testing.T) {
	r := newRespReader(strings.NewReader("*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n"), 2, 0)
	if _, err := r.ReadCommand(); !IsProtocolError(err) {
		t.Fatalf("maxArgs=2 should reject a 3-arg frame, got %v", err)
	}
	r = newRespReader(strings.NewReader("*1\r\n$5\r\nhello\r\n"), 0, 4)
	if _, err := r.ReadCommand(); !IsProtocolError(err) {
		t.Fatalf("maxBulk=4 should reject a 5-byte bulk, got %v", err)
	}
}

func TestParseLen(t *testing.T) {
	good := map[string]int{"0": 0, "5": 5, "123": 123, "-1": -1, "2147483647": 1<<31 - 1}
	for in, want := range good {
		if n, err := parseLen([]byte(in)); err != nil || n != want {
			t.Errorf("parseLen(%q) = %d, %v; want %d", in, n, err, want)
		}
	}
	for _, in := range []string{"", "-", "+5", "05", "1e3", " 1", "99999999999999999999"} {
		if _, err := parseLen([]byte(in)); err == nil {
			t.Errorf("parseLen(%q) should fail", in)
		}
	}
}

func TestWriterFrames(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf)
	w.writeSimple("OK")
	w.writeError("boom")
	w.writeInt(-42)
	w.writeNil()
	w.writeBulk([]byte("hi"))
	w.writeBulkString("")
	w.writeArrayHeader(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$-1\r\n$2\r\nhi\r\n$0\r\n\r\n*2\r\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

// Regression: the integer-formatting buffer must not alias scratch. A
// value copied into scratch and passed to writeBulk would otherwise be
// clobbered by its own length header.
func TestWriterScratchNotClobbered(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf)
	w.scratch = append(w.scratch[:0], "precious-value"...)
	out := w.scratch
	w.writeBulk(out)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := "$14\r\nprecious-value\r\n"; buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

// FuzzRESPParse drives the frame reader with arbitrary bytes under small
// limits: it must never panic, never allocate past its limits, and
// always terminate (every iteration ends in a frame or an error).
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\na\r\n*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("PING\r\nSET a b\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n"))     // truncated frame
	f.Add([]byte("*1\r\n$5\r\nhel"))         // truncated payload
	f.Add([]byte("*1\r\n$99999999\r\n"))     // oversized bulk
	f.Add([]byte("*99999999\r\n"))           // oversized multibulk
	f.Add([]byte("*-1\r\n"))                 // negative multibulk
	f.Add([]byte("*1\r\n$-1\r\n"))           // negative bulk
	f.Add([]byte("*0\r\n*0\r\nPING\r\n"))    // empty frames then inline
	f.Add([]byte("$5\r\nhello\r\n"))         // reply-typed frame as input
	f.Add(bytes.Repeat([]byte{'*'}, 1024))   // marker spam
	f.Add([]byte("*1\r\n$3\r\nabc\nxx\r\n")) // corrupt terminator

	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data), 16, 1024)
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				// From a pure byte stream only three error classes are
				// legitimate: a framing violation, clean EOF, or EOF
				// mid-frame. Anything else is a reader bug.
				if !IsProtocolError(err) && !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(args) > 16 {
				t.Fatalf("frame exceeds maxArgs: %d", len(args))
			}
			for _, a := range args {
				if len(a) > 1024 {
					t.Fatalf("arg exceeds maxBulk: %d", len(a))
				}
			}
		}
	})
}
