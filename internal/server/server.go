package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oakmap"
	"oakmap/internal/faultpoint"
)

// FpHandle is hit once per executed command, before dispatch. Chaos
// tests arm it with panicking or pausing hooks to prove the handler's
// isolation: a panic mid-command must cost exactly that connection,
// never the server or a map pin.
var FpHandle = faultpoint.New("server/handle")

// Config sizes a Server. The zero value serves on :6379 with the
// defaults noted per field.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":6379").
	Addr string
	// MaxConns bounds concurrently served connections (the handler
	// goroutine pool). Accepts beyond it are answered with an overload
	// error and closed. Default 1024.
	MaxConns int
	// MaxPipeline bounds replies buffered before a forced flush — the
	// max-inflight limit that keeps one greedy pipeliner from growing
	// the reply buffer without bound. Default 128.
	MaxPipeline int
	// ReadTimeout is the idle limit: a connection with no complete
	// command for this long is closed. 0 means no idle limit.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply flush; a slow client that cannot
	// drain its replies within it is closed. Default 10s.
	WriteTimeout time.Duration
	// MaxArgs and MaxBulkBytes bound command frames (defaults
	// DefaultMaxArgs / DefaultMaxBulk).
	MaxArgs      int
	MaxBulkBytes int
	// ScanDefaultCount and ScanMaxCount bound SCAN batch sizes
	// (defaults 10 and 4096, Redis-compatible).
	ScanDefaultCount int
	ScanMaxCount     int
	// SnapScanMax bounds concurrently open snapshot-pinned scans
	// (SCAN ... SNAP); each pins the map's reclaim horizon until it
	// exhausts or expires. Default 64.
	SnapScanMax int
	// SnapScanTTL reaps a snapshot-pinned scan that goes this long
	// without a batch (an abandoned client must not pin retained
	// versions forever). Default 60s.
	SnapScanTTL time.Duration
	// Telemetry, when non-nil, registers the oak_server_* gauge family
	// on the scope (normally the same scope the map exports through).
	Telemetry *oakmap.Telemetry
	// Logger receives connection-level diagnostics (panics, protocol
	// errors). Default: log to stderr with an "oak-server: " prefix.
	Logger *log.Logger
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = ":6379"
	}
	if out.MaxConns <= 0 {
		out.MaxConns = 1024
	}
	if out.MaxPipeline <= 0 {
		out.MaxPipeline = 128
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.ScanDefaultCount <= 0 {
		out.ScanDefaultCount = 10
	}
	if out.ScanMaxCount <= 0 {
		out.ScanMaxCount = 4096
	}
	if out.SnapScanMax <= 0 {
		out.SnapScanMax = 64
	}
	if out.SnapScanTTL <= 0 {
		out.SnapScanTTL = 60 * time.Second
	}
	if out.Logger == nil {
		out.Logger = log.New(os.Stderr, "oak-server: ", log.LstdFlags)
	}
	return out
}

// Server is a pipelined RESP2-subset front-end over one
// oakmap.Map[[]byte, []byte]. Create with New, run with Serve or
// ListenAndServe, stop with Shutdown. The server borrows the map: it
// never closes it, so an embedding process can keep using the map (or
// hand it to another server) after drain.
type Server struct {
	cfg   Config
	m     *oakmap.Map[[]byte, []byte]
	zc    oakmap.ZeroCopyMap[[]byte, []byte]
	start time.Time

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}

	sem      chan struct{} // MaxConns handler slots
	draining atomic.Bool
	wg       sync.WaitGroup

	shutdownOnce sync.Once
	shutdownCh   chan struct{} // closed when a SHUTDOWN command arrives

	snaps   snapCursors // snapshot-pinned SCAN registry
	metrics metrics
}

// New builds a Server over m. The map must have been created with
// byte-slice serializers whose serialized form is the identity (the
// server speaks raw keys and values).
func New(m *oakmap.Map[[]byte, []byte], cfg Config) *Server {
	s := &Server{
		cfg:        cfg.withDefaults(),
		m:          m,
		zc:         m.ZC(),
		start:      time.Now(),
		conns:      make(map[net.Conn]struct{}),
		shutdownCh: make(chan struct{}),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConns)
	s.registerMetrics()
	return s
}

// ShutdownRequested is closed when a client issues SHUTDOWN; the
// embedding process should then call Shutdown (the command itself only
// requests the drain — the owner of the process decides the sequence).
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// ErrServerClosed is returned by Serve after Shutdown stops the
// listener, mirroring net/http.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on cfg.Addr and calls Serve.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listen address once Serve has been called
// (useful with ":0" test listeners).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown. Each accepted
// connection gets a handler goroutine from the bounded pool; accepts
// beyond MaxConns are answered with an overload error and closed
// immediately, so a connection storm degrades loudly instead of
// queueing silently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Pool exhausted: refuse loudly. The write gets a short
			// deadline — an overloaded server must not block on a slow
			// victim of its own overload.
			s.metrics.rejected.Add(1)
			c.SetWriteDeadline(time.Now().Add(time.Second))
			fmt.Fprintf(c, "-ERR max number of clients reached\r\n")
			c.Close()
			continue
		}
		s.metrics.connsTotal.Add(1)
		s.metrics.conns.Add(1)
		s.trackConn(c, true)
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
	s.mu.Unlock()
}

// errCloseConn is returned by command execution to request an orderly
// connection close after the current reply (QUIT, SHUTDOWN).
var errCloseConn = errors.New("server: close connection")

// handle runs one connection's command loop. It is panic-isolated: a
// panic anywhere in parsing or execution closes this connection (after
// a best-effort error reply) and is counted, but the server and the
// map outlive it. No map pin is ever held across loop iterations —
// every command's reads pin and unpin within the command — so a killed
// or panicked connection cannot stall epoch reclamation.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.metrics.panics.Add(1)
			s.cfg.Logger.Printf("panic on %s (connection closed, server continues): %v", c.RemoteAddr(), p)
		}
		s.trackConn(c, false)
		c.Close()
		s.metrics.conns.Add(-1)
		<-s.sem
	}()

	r := newRespReader(c, s.cfg.MaxArgs, s.cfg.MaxBulkBytes)
	w := newRespWriter(c)
	depth := 0 // replies buffered since the last flush

	flush := func() bool {
		if depth == 0 {
			return true
		}
		s.metrics.observeDepth(depth)
		depth = 0
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := w.Flush(); err != nil {
			s.metrics.timeouts.Add(1)
			return false
		}
		return true
	}

	for {
		if !r.buffered() {
			// End of a pipeline: everything parsed so far is answered in
			// one write, then the reader may block for the next batch.
			if !flush() {
				return
			}
			if s.draining.Load() {
				return // in-flight work done; drain takes the connection
			}
			if s.cfg.ReadTimeout > 0 {
				c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
			} else {
				// Parked forever is fine — Shutdown pokes blocked readers
				// by moving the deadline to now.
				c.SetReadDeadline(time.Time{})
			}
		}
		args, err := r.ReadCommand()
		if err != nil {
			switch {
			case IsProtocolError(err):
				s.metrics.protoErrors.Add(1)
				w.writeError(err.Error())
				depth++ // the error reply itself, so flush has work to do
				flush()
			case isTimeout(err):
				if !s.draining.Load() {
					s.metrics.timeouts.Add(1)
				}
				// Either the drain poke or a genuinely idle client;
				// both end the connection.
			}
			return
		}
		if len(args) == 0 {
			continue // empty inline line
		}
		depth++
		if err := s.execute(w, args); err != nil {
			flush()
			return
		}
		if depth >= s.cfg.MaxPipeline {
			if !flush() {
				return
			}
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// DrainStats reports what Shutdown observed. The leak-gate fields are
// the server's parting invariant check: after a full drain and
// reclamation quiesce, no shard may retain dead key space.
type DrainStats struct {
	// ConnsDrained is how many connections finished their in-flight
	// pipelines during the drain; ConnsForced were still open when the
	// context expired and were closed hard.
	ConnsDrained int
	ConnsForced  int
	// Quiesced reports whether every shard's reclamation limbo drained.
	Quiesced bool
	// ShardKeyLeakBytes is KeyLeakBytes per shard after the quiesce;
	// all-zero on a clean drain.
	ShardKeyLeakBytes []int64
	// Commands is the total commands served over the server's lifetime.
	Commands int64
}

// Clean reports whether the drain left nothing behind: limbo drained
// and zero leaked key bytes on every shard.
func (d DrainStats) Clean() bool {
	if !d.Quiesced {
		return false
	}
	for _, b := range d.ShardKeyLeakBytes {
		if b != 0 {
			return false
		}
	}
	return true
}

// Shutdown drains the server: stop accepting, interrupt parked readers,
// let every handler finish the pipeline it already read, then quiesce
// the map's reclamation and snapshot the leak gate. Connections still
// running when ctx expires are closed forcibly (their handlers still
// recover and release cleanly). Safe to call once; Serve returns
// ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) DrainStats {
	s.draining.Store(true)
	s.mu.Lock()
	active := len(s.conns)
	if s.ln != nil {
		s.ln.Close()
	}
	// Poke every parked reader: moving the read deadline into the past
	// wakes blocked Reads with a timeout, which the handler loop treats
	// as "drain reached me". Handlers mid-pipeline are untouched — they
	// notice draining at their next flush boundary.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()

	var stats DrainStats
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: close the stragglers hard and wait them out
		// (the handlers' deferred cleanup is unconditional).
		s.mu.Lock()
		stats.ConnsForced = len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	stats.ConnsDrained = active - stats.ConnsForced

	// Release every snapshot-pinned scan before quiescing: an open
	// snapshot pins retained versions and the reclaim horizon, which
	// would make the quiesce (and the leak gate) report a dirty drain.
	s.snaps.closeAll()

	stats.Quiesced = s.m.Quiesce()
	for _, ss := range s.m.ShardStats() {
		stats.ShardKeyLeakBytes = append(stats.ShardKeyLeakBytes, ss.KeyLeakBytes)
	}
	for c := cmdKind(0); c < numCmds; c++ {
		stats.Commands += s.metrics.cmds[c].Load()
	}
	return stats
}
