package bench

import (
	"math"
	"sync"
	"time"
)

// Histogram is a lock-cheap log-bucketed latency histogram used to
// quantify the paper's §1 motivation — GC-induced "unpredictable
// performance" — as tail percentiles. Buckets grow geometrically from
// 100ns to ~100s (2 buckets per octave), giving ≤~41% relative error at
// the tails, plenty for GC-pause-sized effects.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]uint64
	count   uint64
	min     time.Duration
	max     time.Duration
}

const histBase = 100 * time.Nanosecond

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	b := int(math.Log2(float64(d)/float64(histBase)) * 2)
	if b < 0 {
		b = 0
	}
	if b >= len(Histogram{}.buckets) {
		b = len(Histogram{}.buckets) - 1
	}
	return b
}

// bucketUpper returns the representative upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(2, float64(i+1)/2))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	defer other.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if other.count > 0 {
		if h.count == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}
