package bench

import "oakmap/internal/telemetry"

// Histogram was promoted to internal/telemetry so the bench harness and
// the always-on telemetry layer share one bucket layout (100ns base,
// 2 buckets/octave, 64 buckets). The alias keeps every existing bench
// call site — Record/Merge/Count/Quantile/Max — and the CSV/table
// output byte-identical.
type Histogram = telemetry.Histogram
