package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"oakmap"
	"oakmap/internal/arena"
)

func smallOak() *OakTarget {
	return NewOak(&oakmap.Options{ChunkCapacity: 256, BlockSize: 1 << 20}, false)
}

func targetsForTest(t *testing.T) []Target {
	t.Helper()
	ts := []Target{
		smallOak(),
		NewOak(&oakmap.Options{ChunkCapacity: 256, BlockSize: 1 << 20}, true),
		NewOnHeap(),
		NewOffHeap(arena.NewPool(1<<20, 0)),
		NewBTree(arena.NewPool(1<<20, 0)),
	}
	t.Cleanup(func() {
		for _, tt := range ts {
			tt.Close()
		}
	})
	return ts
}

func TestKeyEncoderOrder(t *testing.T) {
	enc := NewKeyEncoder(32)
	a := enc.Encode(make([]byte, 32), 5)
	b := enc.Encode(make([]byte, 32), 6)
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("key encoding not order-preserving")
	}
	if len(a) != 32 {
		t.Fatalf("key size %d", len(a))
	}
	if len(NewKeyEncoder(4).Encode(make([]byte, 8), 1)) != 8 {
		t.Fatal("encoder must clamp to minimum 8 bytes")
	}
}

// TestTargetConformance drives every target through the same script and
// checks identical observable behaviour.
func TestTargetConformance(t *testing.T) {
	for _, target := range targetsForTest(t) {
		t.Run(target.Name(), func(t *testing.T) {
			enc := NewKeyEncoder(16)
			kb := make([]byte, 16)
			val := MakeValue(64, 42)

			if target.Get(enc.Encode(kb, 1)) {
				t.Fatal("get on empty")
			}
			if !target.PutIfAbsent(enc.Encode(kb, 1), val) {
				t.Fatal("first putIfAbsent")
			}
			if target.PutIfAbsent(enc.Encode(kb, 1), val) {
				t.Fatal("second putIfAbsent")
			}
			if !target.Get(enc.Encode(kb, 1)) {
				t.Fatal("get after put")
			}
			out, ok := target.GetCopy(enc.Encode(kb, 1), nil)
			if !ok || len(out) != 64 {
				t.Fatalf("GetCopy = %d bytes, %v", len(out), ok)
			}
			if !target.Compute(enc.Encode(kb, 1)) {
				t.Fatal("compute on present key")
			}
			out2, _ := target.GetCopy(enc.Encode(kb, 1), nil)
			if bytes.Equal(out, out2) {
				t.Fatal("compute did not change the value")
			}
			for i := 2; i <= 20; i++ {
				target.Put(enc.Encode(kb, uint64(i)), val)
			}
			if n := target.Scan(enc.Encode(kb, 5), 10, false); n != 10 {
				t.Fatalf("Scan visited %d", n)
			}
			if n := target.ScanDesc(enc.Encode(kb, 11), 5, false); n != 5 {
				t.Fatalf("ScanDesc visited %d", n)
			}
			target.Remove(enc.Encode(kb, 1))
			if target.Get(enc.Encode(kb, 1)) {
				t.Fatal("get after remove")
			}
			if target.Len() != 19 {
				t.Fatalf("Len = %d; want 19", target.Len())
			}
		})
	}
}

func TestIngestAndRun(t *testing.T) {
	cfg := Config{Threads: 2, KeyRange: 2000, KeySize: 16, ValueSize: 64,
		OpsPerThread: 2000, Seed: 3}
	for _, target := range targetsForTest(t) {
		res := Ingest(target, cfg)
		if res.Ops != 1000 { // 50% of the range
			t.Fatalf("%s: ingest ops = %d", target.Name(), res.Ops)
		}
		if res.KopsPerSec <= 0 || res.FinalSize != 1000 {
			t.Fatalf("%s: bad ingest result %+v", target.Name(), res)
		}
		r := Run(target, cfg, Mix95Get5Put)
		if r.Ops != 2*2000 {
			t.Fatalf("%s: run ops = %d", target.Name(), r.Ops)
		}
		if r.KopsPerSec <= 0 {
			t.Fatalf("%s: zero throughput", target.Name())
		}
	}
}

func TestRunScanMix(t *testing.T) {
	target := smallOak()
	defer target.Close()
	cfg := Config{Threads: 2, KeyRange: 3000, KeySize: 16, ValueSize: 32,
		OpsPerThread: 20, Seed: 5}
	Warm(target, cfg)
	for _, mix := range []Mix{MixScanAsc, MixScanAscStr, MixScanDesc, MixScanDescSt} {
		mix.ScanLen = 200
		r := Run(target, cfg, mix)
		if r.Ops != 40 {
			t.Fatalf("%s: ops = %d", mix.Name, r.Ops)
		}
	}
}

func TestDurationMode(t *testing.T) {
	target := smallOak()
	defer target.Close()
	cfg := Config{Threads: 2, KeyRange: 1000, KeySize: 16, ValueSize: 32,
		Duration: 50e6, Seed: 9} // 50ms
	Warm(target, cfg)
	r := Run(target, cfg, MixGet)
	if r.Ops == 0 {
		t.Fatal("duration mode made no progress")
	}
	if r.Seconds < 0.04 {
		t.Fatalf("run finished too early: %.3fs", r.Seconds)
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	res := []Result{{Scenario: "4a-put", Target: "Oak", Threads: 4,
		FinalSize: 100, KopsPerSec: 1234.5}}
	if err := WriteCSV(&buf, res, "12g", "20g"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Scenario,Bench,") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "4a-put,Oak,12g,20g,4,100,1.234500") {
		t.Fatalf("bad row: %q", out)
	}
	buf.Reset()
	if err := WriteTable(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Oak") {
		t.Fatal("table missing target")
	}
}

func TestWithMemoryLimit(t *testing.T) {
	ran := false
	WithMemoryLimit(1<<30, func() { ran = true })
	if !ran {
		t.Fatal("callback not run")
	}
}

func TestZipfDistribution(t *testing.T) {
	cfg := Config{KeyRange: 1000, ZipfS: 1.5, Seed: 1}.withDefaults()
	next := cfg.keyChooser(3)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		k := next()
		if k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Skewed: key 0 must be far hotter than the median key.
	if counts[0] < 2000 {
		t.Fatalf("zipf head count = %d; distribution not skewed", counts[0])
	}
	// Uniform for comparison.
	cfg.ZipfS = 0
	next = cfg.keyChooser(3)
	counts = map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[next()]++
	}
	if counts[0] > 100 {
		t.Fatalf("uniform head count = %d; too hot", counts[0])
	}
}

func TestRunMedian(t *testing.T) {
	target := smallOak()
	defer target.Close()
	cfg := Config{Threads: 1, KeyRange: 500, KeySize: 16, ValueSize: 32,
		OpsPerThread: 500, Seed: 2}
	Warm(target, cfg)
	r := RunMedian(target, cfg, MixGet, 3)
	if r.Ops != 500 || r.KopsPerSec <= 0 {
		t.Fatalf("median result %+v", r)
	}
}

func TestRunZipfMix(t *testing.T) {
	target := smallOak()
	defer target.Close()
	cfg := Config{Threads: 2, KeyRange: 2000, KeySize: 16, ValueSize: 64,
		OpsPerThread: 2000, Seed: 4, ZipfS: 1.2}
	Warm(target, cfg)
	r := Run(target, cfg, Mix95Get5Put)
	if r.Ops != 4000 {
		t.Fatalf("zipf run ops = %d", r.Ops)
	}
}

func TestWritePlotData(t *testing.T) {
	dir := t.TempDir()
	res := []Result{
		{Scenario: "4a-put", Target: "Oak", Threads: 1, KopsPerSec: 100},
		{Scenario: "4a-put", Target: "Oak", Threads: 2, KopsPerSec: 180},
		{Scenario: "4a-put", Target: "SkipList-OnHeap", Threads: 1, KopsPerSec: 50},
		{Scenario: "weird/name:x", Target: "Oak", Threads: 1, KopsPerSec: 1},
	}
	if err := WritePlotData(dir, res); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dir + "/4a-put.dat")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "# Oak") || !strings.Contains(s, "# SkipList-OnHeap") {
		t.Fatalf("missing target blocks:\n%s", s)
	}
	if !strings.Contains(s, "2 180.000") {
		t.Fatalf("missing data row:\n%s", s)
	}
	if _, err := os.Stat(dir + "/weird_name_x.dat"); err != nil {
		t.Fatalf("sanitized filename missing: %v", err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 300*time.Microsecond || p50 > 900*time.Microsecond {
		t.Fatalf("p50 = %v; want ≈500µs within bucket error", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatal("p99 < p50")
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Quantile(0) != time.Microsecond {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != time.Millisecond {
		t.Fatalf("q1 = %v", h.Quantile(1))
	}
	// Merge doubles the counts and keeps extremes.
	h2 := &Histogram{}
	h2.Record(time.Nanosecond)
	h2.Record(10 * time.Second)
	h.Merge(h2)
	if h.Count() != 1002 || h.Quantile(0) != time.Nanosecond || h.Max() != 10*time.Second {
		t.Fatalf("merge broke extremes: %d %v %v", h.Count(), h.Quantile(0), h.Max())
	}
}

func TestRunWithLatencySampling(t *testing.T) {
	target := smallOak()
	defer target.Close()
	cfg := Config{Threads: 2, KeyRange: 1000, KeySize: 16, ValueSize: 64,
		OpsPerThread: 5000, Seed: 6, SampleLatency: true}
	Warm(target, cfg)
	r := Run(target, cfg, Mix95Get5Put)
	if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 || r.PMax < r.P999 {
		t.Fatalf("latency percentiles not monotone: %v %v %v %v",
			r.P50, r.P99, r.P999, r.PMax)
	}
}
