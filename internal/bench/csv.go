package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"text/tabwriter"
)

// WriteCSV emits results in the artifact's summary.csv layout
// (Appendix A.6): Scenario, Bench, Heap size, Direct Mem, #Threads,
// Final Size, Throughput (Mops/sec, matching the artifact's convention).
func WriteCSV(w io.Writer, results []Result, heapLimit, directLimit string) error {
	if _, err := fmt.Fprintln(w, "Scenario,Bench,Heap size,Direct Mem,#Threads,Final Size,Throughput"); err != nil {
		return err
	}
	for _, r := range results {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%.6f\n",
			r.Scenario, r.Target, heapLimit, directLimit, r.Threads,
			r.FinalSize, r.KopsPerSec/1000); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders results as an aligned human-readable table; latency
// percentile columns appear when any result carries samples.
func WriteTable(w io.Writer, results []Result) error {
	withLatency := false
	for _, r := range results {
		if r.P99 > 0 {
			withLatency = true
			break
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "SCENARIO\tBENCH\tTHREADS\tOPS\tKOPS/S\tSIZE\tOFFHEAP(MB)\tHEAP(MB)\tGC\tALLOC/OP"
	if withLatency {
		header += "\tP50\tP99\tP99.9\tMAX"
	}
	fmt.Fprintln(tw, header)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%d\t%.1f\t%.1f\t%d\t%.0f",
			r.Scenario, r.Target, r.Threads, r.Ops, r.KopsPerSec,
			r.FinalSize, float64(r.OffHeapBytes)/(1<<20),
			float64(r.HeapBytes)/(1<<20), r.NumGC, r.AllocPerOp)
		if withLatency {
			fmt.Fprintf(tw, "\t%v\t%v\t%v\t%v", r.P50, r.P99, r.P999, r.PMax)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WithMemoryLimit runs f under a soft Go heap limit (the stand-in for
// the JVM's -Xmx budget in Figs. 3 and 5b) and restores the previous
// limit afterwards.
func WithMemoryLimit(limit int64, f func()) {
	prev := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prev)
	f()
}

// WritePlotData writes per-scenario gnuplot-friendly data files to dir —
// the analogue of the artifact's generate.py (§A.8). Each scenario gets
// a <scenario>.dat file with one block per target: "# target" followed
// by "threads kops" rows, separable in gnuplot via `index`.
func WritePlotData(dir string, results []Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byScenario := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, ok := byScenario[r.Scenario]; !ok {
			order = append(order, r.Scenario)
		}
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	for _, scenario := range order {
		rows := byScenario[scenario]
		byTarget := map[string][]Result{}
		var torder []string
		for _, r := range rows {
			if _, ok := byTarget[r.Target]; !ok {
				torder = append(torder, r.Target)
			}
			byTarget[r.Target] = append(byTarget[r.Target], r)
		}
		name := filepath.Join(dir, sanitizeFile(scenario)+".dat")
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		for i, target := range torder {
			if i > 0 {
				fmt.Fprintln(f) // blank lines separate gnuplot indexes
				fmt.Fprintln(f)
			}
			fmt.Fprintf(f, "# %s\n", target)
			fmt.Fprintln(f, "# threads kops_per_sec final_size offheap_mb")
			for _, r := range byTarget[target] {
				fmt.Fprintf(f, "%d %.3f %d %.1f\n",
					r.Threads, r.KopsPerSec, r.FinalSize,
					float64(r.OffHeapBytes)/(1<<20))
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeFile keeps scenario names filesystem-safe.
func sanitizeFile(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
