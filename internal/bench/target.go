// Package bench is the repository's synchrobench equivalent (§5.1): it
// generates the paper's uniform-key workloads, runs an ingestion stage
// followed by a timed sustained stage over 1..N worker threads, and
// reports throughput together with GC and memory statistics. The
// cmd/oak-bench and cmd/druid-bench binaries drive it to regenerate the
// paper's figures; bench_test.go wires it into testing.B.
package bench

import (
	"encoding/binary"
	"sync/atomic"

	"oakmap"
	"oakmap/internal/arena"
	"oakmap/internal/btree"
	"oakmap/internal/offheaplist"
	"oakmap/internal/skiplist"
)

// Target abstracts one compared solution (§5.1): Oak (ZC or legacy API),
// SkipList-OnHeap, or SkipList-OffHeap.
type Target interface {
	Name() string
	// PutIfAbsent inserts if absent (ingestion stage).
	PutIfAbsent(key, val []byte) bool
	// Put maps key to val (ZC-style: no old value returned).
	Put(key, val []byte)
	// Get touches the value of key (zero-copy access where supported).
	Get(key []byte) bool
	// GetCopy materializes a copy of the value (legacy API access).
	GetCopy(key, dst []byte) ([]byte, bool)
	// Compute modifies 8 bytes of the value in place (Fig. 4b).
	Compute(key []byte) bool
	// Remove deletes key.
	Remove(key []byte)
	// Scan visits up to n entries ascending from key, touching each
	// value; stream selects the allocation-free stream API if any.
	Scan(from []byte, n int, stream bool) int
	// ScanDesc visits up to n entries descending from key (exclusive).
	ScanDesc(from []byte, n int, stream bool) int
	Len() int
	OffHeapBytes() int64
	Close()
}

// touch folds a few bytes of a value so reads cannot be optimized away.
func touch(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0] ^ b[len(b)-1]
}

// sink receives touched bytes; exported via Sink to defeat dead-code
// elimination in benchmarks. Atomic: workers on many goroutines fold
// into it concurrently.
var sink atomic.Uint64

// fold records a value access in the sink.
func fold(b []byte) { sink.Add(uint64(touch(b)) + 1) }

// Sink returns the accumulated sink value.
func Sink() uint64 { return sink.Load() }

// --- Oak targets ---

// OakTarget drives an Oak map; CopyAPI selects the legacy get path
// ("Oak-Copy" in Fig. 4c).
type OakTarget struct {
	m       *oakmap.Map[[]byte, []byte]
	zc      oakmap.ZeroCopyMap[[]byte, []byte]
	copyAPI bool
}

// NewOak creates an Oak target. opts may be nil for paper defaults.
func NewOak(opts *oakmap.Options, copyAPI bool) *OakTarget {
	m := oakmap.New[[]byte, []byte](oakmap.BytesSerializer{}, oakmap.BytesSerializer{}, opts)
	return &OakTarget{m: m, zc: m.ZC(), copyAPI: copyAPI}
}

// Name implements Target.
func (t *OakTarget) Name() string {
	if t.copyAPI {
		return "Oak-Copy"
	}
	return "Oak"
}

// PutIfAbsent implements Target.
func (t *OakTarget) PutIfAbsent(key, val []byte) bool {
	ok, err := t.zc.PutIfAbsent(key, val)
	return ok && err == nil
}

// Put implements Target.
func (t *OakTarget) Put(key, val []byte) { _ = t.zc.Put(key, val) }

// Get implements Target.
func (t *OakTarget) Get(key []byte) bool {
	if t.copyAPI {
		v, ok := t.m.Get(key)
		if ok {
			fold(v)
		}
		return ok
	}
	buf := t.zc.Get(key)
	if buf == nil {
		return false
	}
	err := buf.Read(func(b []byte) error {
		fold(b)
		return nil
	})
	return err == nil
}

// GetCopy implements Target.
func (t *OakTarget) GetCopy(key, dst []byte) ([]byte, bool) {
	buf := t.zc.Get(key)
	if buf == nil {
		return nil, false
	}
	out, err := buf.AppendTo(dst[:0])
	if err != nil {
		return nil, false
	}
	return out, true
}

// Compute implements Target: atomic in-place update of 8 bytes.
func (t *OakTarget) Compute(key []byte) bool {
	ok, _ := t.zc.ComputeIfPresent(key, func(w oakmap.OakWBuffer) error {
		b := w.Bytes()
		if len(b) >= 8 {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		}
		return nil
	})
	return ok
}

// Remove implements Target.
func (t *OakTarget) Remove(key []byte) { _ = t.zc.Remove(key) }

// Scan implements Target.
func (t *OakTarget) Scan(from []byte, n int, stream bool) int {
	count := 0
	visit := func(k, v *oakmap.OakRBuffer) bool {
		v.Read(func(b []byte) error {
			fold(b)
			return nil
		})
		count++
		return count < n
	}
	if stream {
		t.zc.AscendStream(&from, nil, visit)
	} else {
		t.zc.Ascend(&from, nil, visit)
	}
	return count
}

// ScanDesc implements Target.
func (t *OakTarget) ScanDesc(from []byte, n int, stream bool) int {
	count := 0
	visit := func(k, v *oakmap.OakRBuffer) bool {
		v.Read(func(b []byte) error {
			fold(b)
			return nil
		})
		count++
		return count < n
	}
	if stream {
		t.zc.DescendStream(nil, &from, visit)
	} else {
		t.zc.Descend(nil, &from, visit)
	}
	return count
}

// Len implements Target.
func (t *OakTarget) Len() int { return t.m.Len() }

// OffHeapBytes implements Target.
func (t *OakTarget) OffHeapBytes() int64 { return t.m.Footprint() }

// Close implements Target.
func (t *OakTarget) Close() { t.m.Close() }

// Map exposes the underlying Oak map (for stats in experiments).
func (t *OakTarget) Map() *oakmap.Map[[]byte, []byte] { return t.m }

// --- SkipList-OnHeap target ---

// OnHeapTarget is the JDK-ConcurrentSkipListMap stand-in: every key and
// value is an ordinary heap object, merge/compute is non-atomic, and
// descending scans re-look-up each step.
type OnHeapTarget struct {
	l *skiplist.List[[]byte]
}

// NewOnHeap creates a SkipList-OnHeap target.
func NewOnHeap() *OnHeapTarget {
	return &OnHeapTarget{l: skiplist.New[[]byte](nil)}
}

// Name implements Target.
func (t *OnHeapTarget) Name() string { return "SkipList-OnHeap" }

// PutIfAbsent implements Target. Key and value are copied to fresh heap
// objects, as a Java map would hold fresh objects per entry.
func (t *OnHeapTarget) PutIfAbsent(key, val []byte) bool {
	return t.l.PutIfAbsent(append([]byte(nil), key...), append([]byte(nil), val...))
}

// Put implements Target.
func (t *OnHeapTarget) Put(key, val []byte) {
	t.l.Put(append([]byte(nil), key...), append([]byte(nil), val...))
}

// Get implements Target.
func (t *OnHeapTarget) Get(key []byte) bool {
	v, ok := t.l.Get(key)
	if ok {
		fold(v)
	}
	return ok
}

// GetCopy implements Target.
func (t *OnHeapTarget) GetCopy(key, dst []byte) ([]byte, bool) {
	v, ok := t.l.Get(key)
	if !ok {
		return nil, false
	}
	return append(dst[:0], v...), true
}

// Compute implements Target: the skiplist's non-atomic in-place update
// (Java merge semantics — mutate the referenced array directly).
func (t *OnHeapTarget) Compute(key []byte) bool {
	v, ok := t.l.Get(key)
	if !ok {
		return false
	}
	if len(v) >= 8 {
		binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+1)
	}
	return true
}

// Remove implements Target.
func (t *OnHeapTarget) Remove(key []byte) { t.l.Remove(key) }

// Scan implements Target (stream flag is meaningless on-heap).
func (t *OnHeapTarget) Scan(from []byte, n int, _ bool) int {
	count := 0
	t.l.Ascend(from, nil, func(k []byte, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// ScanDesc implements Target: one fresh lookup per step, as in Java.
func (t *OnHeapTarget) ScanDesc(from []byte, n int, _ bool) int {
	count := 0
	t.l.Descend(nil, from, func(k []byte, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// Len implements Target.
func (t *OnHeapTarget) Len() int { return t.l.Len() }

// OffHeapBytes implements Target.
func (t *OnHeapTarget) OffHeapBytes() int64 { return 0 }

// Close implements Target.
func (t *OnHeapTarget) Close() {}

// --- SkipList-OffHeap target ---

// OffHeapTarget wraps the offheaplist baseline.
type OffHeapTarget struct {
	m *offheaplist.Map
}

// NewOffHeap creates a SkipList-OffHeap target; pool nil = shared pool.
func NewOffHeap(pool *arena.Pool) *OffHeapTarget {
	return &OffHeapTarget{m: offheaplist.New(pool)}
}

// Name implements Target.
func (t *OffHeapTarget) Name() string { return "SkipList-OffHeap" }

// PutIfAbsent implements Target.
func (t *OffHeapTarget) PutIfAbsent(key, val []byte) bool {
	ok, err := t.m.PutIfAbsent(key, val)
	return ok && err == nil
}

// Put implements Target.
func (t *OffHeapTarget) Put(key, val []byte) { _ = t.m.Put(key, val) }

// Get implements Target.
func (t *OffHeapTarget) Get(key []byte) bool {
	err := t.m.Read(key, func(b []byte) error {
		fold(b)
		return nil
	})
	return err == nil
}

// GetCopy implements Target.
func (t *OffHeapTarget) GetCopy(key, dst []byte) ([]byte, bool) {
	return t.m.GetCopy(key, dst)
}

// Compute implements Target.
func (t *OffHeapTarget) Compute(key []byte) bool {
	return t.m.ComputeIfPresent(key, func(b []byte) {
		if len(b) >= 8 {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		}
	})
}

// Remove implements Target.
func (t *OffHeapTarget) Remove(key []byte) { t.m.Remove(key) }

// Scan implements Target.
func (t *OffHeapTarget) Scan(from []byte, n int, _ bool) int {
	count := 0
	t.m.Ascend(from, nil, func(k, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// ScanDesc implements Target.
func (t *OffHeapTarget) ScanDesc(from []byte, n int, _ bool) int {
	count := 0
	t.m.Descend(nil, from, func(k, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// Len implements Target.
func (t *OffHeapTarget) Len() int { return t.m.Len() }

// OffHeapBytes implements Target.
func (t *OffHeapTarget) OffHeapBytes() int64 { return t.m.Footprint() }

// Close implements Target.
func (t *OffHeapTarget) Close() { t.m.Close() }

// --- BTree-OffHeap target (the MapDB stand-in) ---

// BTreeTarget wraps the off-heap B+ tree baseline of §1.2/§5.1.
type BTreeTarget struct {
	m *btree.Map
}

// NewBTree creates a BTree-OffHeap target; pool nil = shared pool.
func NewBTree(pool *arena.Pool) *BTreeTarget {
	return &BTreeTarget{m: btree.New(pool)}
}

// Name implements Target.
func (t *BTreeTarget) Name() string { return "BTree-OffHeap" }

// PutIfAbsent implements Target.
func (t *BTreeTarget) PutIfAbsent(key, val []byte) bool {
	ok, err := t.m.PutIfAbsent(key, val)
	return ok && err == nil
}

// Put implements Target.
func (t *BTreeTarget) Put(key, val []byte) { _ = t.m.Put(key, val) }

// Get implements Target.
func (t *BTreeTarget) Get(key []byte) bool {
	ok, _ := t.m.Read(key, func(b []byte) error {
		fold(b)
		return nil
	})
	return ok
}

// GetCopy implements Target.
func (t *BTreeTarget) GetCopy(key, dst []byte) ([]byte, bool) {
	return t.m.GetCopy(key, dst)
}

// Compute implements Target.
func (t *BTreeTarget) Compute(key []byte) bool {
	return t.m.Compute(key, func(b []byte) {
		if len(b) >= 8 {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		}
	})
}

// Remove implements Target.
func (t *BTreeTarget) Remove(key []byte) { t.m.Remove(key) }

// Scan implements Target.
func (t *BTreeTarget) Scan(from []byte, n int, _ bool) int {
	count := 0
	t.m.Ascend(from, func(k, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// ScanDesc implements Target.
func (t *BTreeTarget) ScanDesc(from []byte, n int, _ bool) int {
	count := 0
	t.m.Descend(from, func(k, v []byte) bool {
		fold(v)
		count++
		return count < n
	})
	return count
}

// Len implements Target.
func (t *BTreeTarget) Len() int { return t.m.Len() }

// OffHeapBytes implements Target.
func (t *BTreeTarget) OffHeapBytes() int64 { return t.m.Footprint() }

// Close implements Target.
func (t *BTreeTarget) Close() { t.m.Close() }
