package bench

import (
	"encoding/binary"
	mrand "math/rand"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes an experiment's data shape and execution envelope,
// mirroring the synchrobench parameters of §5.1 / Appendix A.7.
type Config struct {
	Threads   int
	KeyRange  int // keys are sampled uniformly from [0, KeyRange)
	KeySize   int // serialized key size (paper: 100B)
	ValueSize int // serialized value size (paper: 1KB)
	// Duration bounds the sustained stage; if OpsPerThread > 0 it takes
	// precedence (deterministic work, used by testing.B).
	Duration     time.Duration
	OpsPerThread int64
	// WarmFraction is the share of the key range pre-populated by the
	// single-threaded ingestion stage (paper: 50%).
	WarmFraction float64
	Seed         uint64
	// ZipfS, when > 1, draws keys from a Zipf distribution with skew s
	// instead of uniformly (synchrobench's skewed workloads). Hot keys
	// stress Oak's per-value concurrency control.
	ZipfS float64
	// SampleLatency records one op latency out of every 64 into a
	// histogram, filling the result's P50/P99/P999/PMax fields — the
	// probe for GC-induced tail latency (§1's "unpredictable
	// performance").
	SampleLatency bool
}

// keyChooser returns a per-goroutine key sampler for the configured
// distribution.
func (c Config) keyChooser(seed uint64) func() uint64 {
	if c.ZipfS > 1 {
		z := mrand.NewZipf(mrand.New(mrand.NewSource(int64(seed))),
			c.ZipfS, 1, uint64(c.KeyRange-1))
		return z.Uint64
	}
	rng := rand.New(rand.NewPCG(c.Seed, seed))
	return func() uint64 { return rng.Uint64() % uint64(c.KeyRange) }
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 100000
	}
	if c.KeySize < 8 {
		c.KeySize = 8
	}
	if c.ValueSize < 8 {
		c.ValueSize = 8
	}
	if c.Duration <= 0 && c.OpsPerThread <= 0 {
		c.Duration = time.Second
	}
	if c.WarmFraction <= 0 {
		c.WarmFraction = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Mix is an operation mix for the sustained stage. Percentages must sum
// to at most 100; the remainder is gets.
type Mix struct {
	Name       string
	PutPct     int
	ComputePct int
	RemovePct  int
	ScanPct    int
	ScanLen    int
	Descending bool
	Stream     bool
	CopyGet    bool // use the legacy copying get
}

// Standard mixes, one per panel of Fig. 4.
var (
	MixPut        = Mix{Name: "put", PutPct: 100}
	MixCompute    = Mix{Name: "computeIfPresent", ComputePct: 100}
	MixGet        = Mix{Name: "get-zc"}
	MixGetCopy    = Mix{Name: "get-copy", CopyGet: true}
	Mix95Get5Put  = Mix{Name: "95get-5put", PutPct: 5}
	MixScanAsc    = Mix{Name: "ascend-10k", ScanPct: 100, ScanLen: 10000}
	MixScanAscStr = Mix{Name: "ascend-10k-stream", ScanPct: 100, ScanLen: 10000, Stream: true}
	MixScanDesc   = Mix{Name: "descend-10k", ScanPct: 100, ScanLen: 10000, Descending: true}
	MixScanDescSt = Mix{Name: "descend-10k-stream", ScanPct: 100, ScanLen: 10000, Descending: true, Stream: true}
)

// Result is one measured data point (one row of summary.csv).
type Result struct {
	Scenario     string
	Target       string
	Threads      int
	Ops          int64
	Seconds      float64
	KopsPerSec   float64
	FinalSize    int
	OffHeapBytes int64
	HeapBytes    uint64 // HeapAlloc after the run
	NumGC        uint32 // GC cycles during the run
	AllocPerOp   float64
	// Latency percentiles (only when Config.SampleLatency is set).
	P50, P99, P999, PMax time.Duration
}

// KeyEncoder writes the i-th key of the space into a fixed-size buffer:
// an 8-byte big-endian index followed by deterministic padding, giving
// the paper's 100-byte keys with a total order equal to integer order.
type KeyEncoder struct{ size int }

// NewKeyEncoder creates an encoder for keys of the given size (≥ 8).
func NewKeyEncoder(size int) KeyEncoder {
	if size < 8 {
		size = 8
	}
	return KeyEncoder{size: size}
}

// Encode writes key i into dst (len ≥ size) and returns dst[:size].
func (e KeyEncoder) Encode(dst []byte, i uint64) []byte {
	dst = dst[:e.size]
	binary.BigEndian.PutUint64(dst, i)
	for j := 8; j < e.size; j++ {
		dst[j] = byte(j)
	}
	return dst
}

// MakeValue builds a deterministic value of the given size whose first 8
// bytes form a counter field (mutated by the compute workload).
func MakeValue(size int, seed uint64) []byte {
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, seed)
	for j := 8; j < size; j++ {
		v[j] = byte(seed + uint64(j))
	}
	return v
}

// Ingest runs the paper's ingestion stage: a single thread populates the
// map with WarmFraction of the key range via putIfAbsent, measured.
func Ingest(t Target, cfg Config) Result {
	cfg = cfg.withDefaults()
	enc := NewKeyEncoder(cfg.KeySize)
	keyBuf := make([]byte, cfg.KeySize)
	val := MakeValue(cfg.ValueSize, cfg.Seed)
	n := int64(float64(cfg.KeyRange) * cfg.WarmFraction)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	perm := rng.Perm(cfg.KeyRange)

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	var done int64
	for _, idx := range perm {
		if done >= n {
			break
		}
		t.PutIfAbsent(enc.Encode(keyBuf, uint64(idx)), val)
		done++
	}
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	return Result{
		Scenario:     "ingest",
		Target:       t.Name(),
		Threads:      1,
		Ops:          done,
		Seconds:      elapsed.Seconds(),
		KopsPerSec:   float64(done) / elapsed.Seconds() / 1000,
		FinalSize:    t.Len(),
		OffHeapBytes: t.OffHeapBytes(),
		HeapBytes:    msAfter.HeapAlloc,
		NumGC:        msAfter.NumGC - msBefore.NumGC,
		AllocPerOp:   float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(max64(done, 1)),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Run executes the sustained stage: Threads symmetric workers apply the
// mix to uniformly random keys until the duration (or per-thread op
// budget) expires.
func Run(t Target, cfg Config, mix Mix) Result {
	cfg = cfg.withDefaults()
	enc := NewKeyEncoder(cfg.KeySize)
	stop := make(chan struct{})
	var totalOps atomic.Int64
	hist := &Histogram{}
	var wg sync.WaitGroup

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	for g := 0; g < cfg.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(g)+7))
			nextKey := cfg.keyChooser(uint64(g) + 7)
			keyBuf := make([]byte, cfg.KeySize)
			valBuf := MakeValue(cfg.ValueSize, uint64(g))
			cpBuf := make([]byte, 0, cfg.ValueSize)
			local := &Histogram{}
			ops := int64(0)
			for {
				if cfg.OpsPerThread > 0 {
					if ops >= cfg.OpsPerThread {
						break
					}
				} else if ops&0x3ff == 0 {
					select {
					case <-stop:
						totalOps.Add(ops)
						hist.Merge(local)
						return
					default:
					}
				}
				k := enc.Encode(keyBuf, nextKey())
				var opStart time.Time
				sample := cfg.SampleLatency && ops&63 == 0
				if sample {
					opStart = time.Now()
				}
				p := int(rng.Uint64() % 100)
				switch {
				case p < mix.PutPct:
					t.Put(k, valBuf)
				case p < mix.PutPct+mix.ComputePct:
					t.Compute(k)
				case p < mix.PutPct+mix.ComputePct+mix.RemovePct:
					t.Remove(k)
				case p < mix.PutPct+mix.ComputePct+mix.RemovePct+mix.ScanPct:
					if mix.Descending {
						t.ScanDesc(k, mix.ScanLen, mix.Stream)
					} else {
						t.Scan(k, mix.ScanLen, mix.Stream)
					}
				default:
					if mix.CopyGet {
						cpBuf, _ = ensureGetCopy(t, k, cpBuf)
					} else {
						t.Get(k)
					}
				}
				if sample {
					local.Record(time.Since(opStart))
				}
				ops++
			}
			totalOps.Add(ops)
			hist.Merge(local)
		}(g)
	}
	if cfg.OpsPerThread <= 0 {
		time.Sleep(cfg.Duration)
		close(stop)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	ops := totalOps.Load()
	res := Result{
		Scenario:     mix.Name,
		Target:       t.Name(),
		Threads:      cfg.Threads,
		Ops:          ops,
		Seconds:      elapsed.Seconds(),
		KopsPerSec:   float64(ops) / elapsed.Seconds() / 1000,
		FinalSize:    t.Len(),
		OffHeapBytes: t.OffHeapBytes(),
		HeapBytes:    msAfter.HeapAlloc,
		NumGC:        msAfter.NumGC - msBefore.NumGC,
		AllocPerOp:   float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(max64(ops, 1)),
	}
	if cfg.SampleLatency && hist.Count() > 0 {
		res.P50 = hist.Quantile(0.50)
		res.P99 = hist.Quantile(0.99)
		res.P999 = hist.Quantile(0.999)
		res.PMax = hist.Max()
	}
	return res
}

func ensureGetCopy(t Target, k, buf []byte) ([]byte, bool) {
	out, ok := t.GetCopy(k, buf)
	if ok {
		fold(out)
		return out, true
	}
	return buf, false
}

// RunMedian runs the sustained stage iterations times and returns the
// run with the median throughput — the artifact's methodology ("Every
// data point is the median of 3 runs").
func RunMedian(t Target, cfg Config, mix Mix, iterations int) Result {
	if iterations <= 1 {
		return Run(t, cfg, mix)
	}
	results := make([]Result, iterations)
	for i := range results {
		results[i] = Run(t, cfg, mix)
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].KopsPerSec < results[j].KopsPerSec
	})
	return results[iterations/2]
}

// Warm populates the map for the sustained stage without measuring.
func Warm(t Target, cfg Config) {
	cfg = cfg.withDefaults()
	enc := NewKeyEncoder(cfg.KeySize)
	keyBuf := make([]byte, cfg.KeySize)
	val := MakeValue(cfg.ValueSize, cfg.Seed)
	n := int(float64(cfg.KeyRange) * cfg.WarmFraction)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	for _, idx := range rng.Perm(cfg.KeyRange)[:n] {
		t.PutIfAbsent(enc.Encode(keyBuf, uint64(idx)), val)
	}
}
