package chunk

// DescIter is the paper's intra-chunk descending iterator (§4.2, Fig. 2).
// It walks the ascending entries list one "bypass" at a time, saving the
// traversed entries on a stack and popping them in reverse. Between
// bypasses it steps one cell back in the sorted prefix, so a descending
// scan costs O(1) amortized lookups per chunk instead of one O(log N)
// lookup per key as in skiplists.
type DescIter struct {
	c         *Chunk
	stack     []int32
	anchorPos int   // prefix position where the last refill started
	stopEntry int32 // entry at which the next refill walk stops
	done      bool  // the head run has been performed
}

// NewDescIter creates a descending iterator over entries with key < hi
// (nil hi = no upper bound). The iterator yields raw entry indexes; the
// caller filters ⊥/deleted values and applies the lower bound.
func (c *Chunk) NewDescIter(hi []byte) *DescIter {
	it := &DescIter{c: c, stopEntry: none}
	var p int
	if hi == nil {
		p = c.sorted - 1
	} else {
		p = int(c.prefixFloor(hi, false))
	}
	it.anchorPos = p
	var start int32
	if p < 0 {
		start = c.head.Load()
		it.done = true // the initial run already starts at the list head
	} else {
		start = int32(p)
	}
	for cur := start; cur != none; cur = c.NextEntry(cur) {
		if hi != nil && c.cmp(c.keyAt(cur), hi) >= 0 {
			break
		}
		it.stack = append(it.stack, cur)
	}
	it.stopEntry = start
	return it
}

// Next returns the next entry index in descending key order, or -1 when
// the chunk is exhausted.
func (it *DescIter) Next() int32 {
	for {
		if n := len(it.stack); n > 0 {
			e := it.stack[n-1]
			it.stack = it.stack[:n-1]
			return e
		}
		if it.done {
			return none
		}
		it.anchorPos--
		var start int32
		if it.anchorPos < 0 {
			start = it.c.head.Load()
			it.done = true
		} else {
			start = int32(it.anchorPos)
		}
		for cur := start; cur != none && cur != it.stopEntry; cur = it.c.NextEntry(cur) {
			it.stack = append(it.stack, cur)
		}
		it.stopEntry = start
	}
}
