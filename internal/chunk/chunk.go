// Package chunk implements Oak's chunk objects (§3.1, §4.1): large blocks
// of contiguous key ranges holding an entries array whose prefix is
// sorted and whose suffix is filled on demand, with new entries linked
// into an ascending singly-linked list through "bypasses".
//
// A chunk entry refers to an off-heap key (an arena.Ref) and to a value
// handle (a vheader index). Entries are allocated with fetch-and-add,
// linked with CAS, and never physically unlinked; rebalancing replaces
// whole chunks. Update operations synchronize with the rebalancer through
// publish/unpublish; read-only operations (lookUp, scans) proceed during
// rebalances without aborting, exactly as in the paper.
package chunk

import (
	"runtime"
	"sync"
	"sync/atomic"

	"oakmap/internal/arena"
	"oakmap/internal/faultpoint"
)

// Fault-injection points (no-ops unless a test arms them).
var (
	// FpLinkCAS simulates losing the entry-link CAS race in
	// PutIfAbsentInList: when it fires, the linker re-scans as if a
	// concurrent insert had won, exercising the retry path that natural
	// scheduling hits only under heavy same-range contention.
	FpLinkCAS = faultpoint.New("chunk/link-cas")
	// FpPublishFail makes Publish fail as if the chunk had just frozen,
	// driving callers through their relocate-and-retry (and value
	// discard) paths without a real rebalance.
	FpPublishFail = faultpoint.New("chunk/publish-fail")
)

// Comparator orders serialized keys (bytes.Compare semantics).
type Comparator func(a, b []byte) int

// DefaultCapacity is the paper's configuration of 4K entries per chunk.
const DefaultCapacity = 4096

// none marks the absence of an entry index (the end of the linked list).
const none = int32(-1)

// Status reports the outcome of chunk update methods.
type Status int

const (
	// OK means the operation succeeded.
	OK Status = iota
	// Exists means an entry with the same key was already linked.
	Exists
	// Full means the entries array is exhausted; caller must rebalance.
	Full
	// Frozen means the chunk is being rebalanced; caller must retry.
	Frozen
)

// entry is one slot of the entries array. keyRef is written once before
// the entry becomes reachable. valRef holds the value handle (0 = ⊥) and
// is the CAS target of Algorithms 2 and 3. next links the ascending
// entries list.
type entry struct {
	keyRef atomic.Uint64
	valRef atomic.Uint64
	next   atomic.Int32
}

// Chunk holds a contiguous key range of the map.
type Chunk struct {
	// minKey is the chunk's minimal key, invariant for its lifespan
	// (§3.1). nil acts as -infinity (the head sentinel chunk).
	minKey []byte

	entries  []entry
	sorted   int          // length of the sorted prefix
	nextFree atomic.Int32 // next unallocated entry slot
	head     atomic.Int32 // first entry of the ascending list

	next       atomic.Pointer[Chunk] // successor in the chunk list
	replacedBy atomic.Pointer[Chunk] // forwarding after rebalance

	frozen    atomic.Bool
	published atomic.Int32
	live      atomic.Int32 // heuristic count of entries with live values

	// RebalanceMu serializes rebalances of this chunk; the map's
	// rebalancer acquires it in list order to avoid deadlock.
	RebalanceMu sync.Mutex

	alloc *arena.Allocator
	cmp   Comparator
}

// New creates an empty chunk covering keys ≥ minKey.
func New(minKey []byte, capacity int, alloc *arena.Allocator, cmp Comparator) *Chunk {
	c := &Chunk{
		minKey:  minKey,
		entries: make([]entry, capacity),
		alloc:   alloc,
		cmp:     cmp,
	}
	c.head.Store(none)
	return c
}

// Pair is a (key reference, value handle) tuple produced by Gather and
// consumed by NewSorted during rebalance.
type Pair struct {
	KeyRef    uint64
	ValHandle uint64
}

// NewSorted creates a chunk whose sorted prefix is pre-filled with pairs
// (which must be in ascending key order — RB3). This is how the
// rebalancer builds replacement chunks: the full prefix is sorted, so it
// can be binary-searched, and the linked-list successor of each prefix
// entry is the ensuing array entry (§4.1).
func NewSorted(minKey []byte, capacity int, alloc *arena.Allocator, cmp Comparator, pairs []Pair) *Chunk {
	if len(pairs) > capacity {
		panic("chunk: sorted prefix exceeds capacity")
	}
	c := New(minKey, capacity, alloc, cmp)
	for i, p := range pairs {
		e := &c.entries[i]
		e.keyRef.Store(p.KeyRef)
		e.valRef.Store(p.ValHandle)
		if i+1 < len(pairs) {
			e.next.Store(int32(i + 1))
		} else {
			e.next.Store(none)
		}
	}
	c.sorted = len(pairs)
	c.nextFree.Store(int32(len(pairs)))
	c.live.Store(int32(len(pairs)))
	if len(pairs) > 0 {
		c.head.Store(0)
	}
	return c
}

// MinKey returns the chunk's minimal key (nil = -infinity).
func (c *Chunk) MinKey() []byte { return c.minKey }

// Capacity returns the size of the entries array.
func (c *Chunk) Capacity() int { return len(c.entries) }

// SortedCount returns the length of the sorted prefix.
func (c *Chunk) SortedCount() int { return c.sorted }

// Allocated returns the number of allocated entry slots.
func (c *Chunk) Allocated() int { return int(c.nextFree.Load()) }

// Next returns the successor chunk in the list (nil at the end).
func (c *Chunk) Next() *Chunk { return c.next.Load() }

// SetNext stores the successor pointer (used while building chains).
func (c *Chunk) SetNext(n *Chunk) { c.next.Store(n) }

// ReplacedBy returns the chunk's replacement if it was rebalanced away.
func (c *Chunk) ReplacedBy() *Chunk { return c.replacedBy.Load() }

// SetReplacedBy publishes the chunk's replacement; traversals forward
// through it.
func (c *Chunk) SetReplacedBy(n *Chunk) { c.replacedBy.Store(n) }

// Forward follows replacedBy pointers to the live chunk covering the same
// range start.
func Forward(c *Chunk) *Chunk {
	for {
		r := c.replacedBy.Load()
		if r == nil {
			return c
		}
		c = r
	}
}

// keyAt returns the serialized key of entry ei.
func (c *Chunk) keyAt(ei int32) []byte {
	return c.alloc.Bytes(arena.Ref(c.entries[ei].keyRef.Load()))
}

// Key returns the serialized key bytes of entry ei.
func (c *Chunk) Key(ei int32) []byte { return c.keyAt(ei) }

// KeyRef returns the packed key reference of entry ei.
func (c *Chunk) KeyRef(ei int32) uint64 { return c.entries[ei].keyRef.Load() }

// ValHandle returns the value handle of entry ei (0 = ⊥).
func (c *Chunk) ValHandle(ei int32) uint64 { return c.entries[ei].valRef.Load() }

// CASValHandle performs the value-reference CAS of Algorithms 2 and 3.
func (c *Chunk) CASValHandle(ei int32, old, new uint64) bool {
	return c.entries[ei].valRef.CompareAndSwap(old, new)
}

// IncLive / DecLive maintain the heuristic live-entry counter used by
// the rebalance trigger policy (merge when under-used, §4.1). The
// counter is approximate: values deleted but not yet unlinked still
// count until the next rebalance.
func (c *Chunk) IncLive() { c.live.Add(1) }

// DecLive decrements the live-entry counter.
func (c *Chunk) DecLive() { c.live.Add(-1) }

// Live returns the heuristic live-entry count.
func (c *Chunk) Live() int { return int(c.live.Load()) }

// Head returns the first entry of the ascending list, or -1.
func (c *Chunk) Head() int32 { return c.head.Load() }

// NextEntry returns the list successor of ei, or -1.
func (c *Chunk) NextEntry(ei int32) int32 { return c.entries[ei].next.Load() }

// prefixFloor returns the largest sorted-prefix index whose key is < key
// (strict) or ≤ key (when orEqual), or -1. The prefix is sorted, so this
// is a binary search (§4.1).
func (c *Chunk) prefixFloor(key []byte, orEqual bool) int32 {
	lo, hi := 0, c.sorted-1
	res := int32(-1)
	for lo <= hi {
		mid := (lo + hi) / 2
		cv := c.cmp(c.keyAt(int32(mid)), key)
		if cv < 0 || (orEqual && cv == 0) {
			res = int32(mid)
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return res
}

// LookUp searches for an entry holding key: binary search on the sorted
// prefix, then a walk of the entries linked list (§4.1). It returns the
// entry index or -1. LookUp proceeds concurrently with rebalances.
func (c *Chunk) LookUp(key []byte) int32 {
	cur := c.prefixFloor(key, true)
	if cur < 0 {
		cur = c.head.Load()
	}
	for cur != none {
		cv := c.cmp(c.keyAt(cur), key)
		if cv == 0 {
			return cur
		}
		if cv > 0 {
			return none
		}
		cur = c.entries[cur].next.Load()
	}
	return none
}

// FirstGE returns the first linked entry with key ≥ bound, or -1. A nil
// bound returns the list head. Used by ascending scans.
func (c *Chunk) FirstGE(bound []byte) int32 {
	if bound == nil {
		return c.head.Load()
	}
	cur := c.prefixFloor(bound, false)
	if cur < 0 {
		cur = c.head.Load()
	} else {
		// cur's key is < bound; its successors may still be < bound.
	}
	for cur != none && c.cmp(c.keyAt(cur), bound) < 0 {
		cur = c.entries[cur].next.Load()
	}
	return cur
}

// AllocateEntry claims a fresh entry slot referring to keyRef using
// fetch-and-add (§4.1). It returns Full when the array is exhausted and
// Frozen during a rebalance; on OK the entry has ⊥ value and is not yet
// linked.
func (c *Chunk) AllocateEntry(keyRef uint64) (int32, Status) {
	if c.frozen.Load() {
		return none, Frozen
	}
	idx := c.nextFree.Add(1) - 1
	if int(idx) >= len(c.entries) {
		// Leave nextFree past the end; concurrent allocators also fail.
		return none, Full
	}
	e := &c.entries[idx]
	e.next.Store(none)
	e.valRef.Store(0)
	e.keyRef.Store(keyRef)
	return idx, OK
}

// PutIfAbsentInList links an allocated entry into the ascending entries
// list with CAS, preserving the at-most-one-entry-per-key invariant
// (§4.1). If an entry with the same key is already linked, that entry's
// index is returned with status Exists and ei remains unlinked (the
// rebalancer eventually reclaims it). Returns Frozen during a rebalance.
func (c *Chunk) PutIfAbsentInList(ei int32) (int32, Status) {
	key := c.keyAt(ei)
	for {
		if c.frozen.Load() {
			return none, Frozen
		}
		// Locate pred/succ with key(pred) < key ≤ key(succ).
		pred := c.prefixFloor(key, false)
		var cur int32
		if pred < 0 {
			cur = c.head.Load()
		} else {
			cur = c.entries[pred].next.Load()
		}
		for cur != none {
			cv := c.cmp(c.keyAt(cur), key)
			if cv >= 0 {
				if cv == 0 {
					return cur, Exists
				}
				break
			}
			pred = cur
			cur = c.entries[cur].next.Load()
		}
		c.entries[ei].next.Store(cur)
		if c.frozen.Load() {
			return none, Frozen
		}
		if FpLinkCAS.Fire() {
			continue // injected lost race: re-scan from the prefix floor
		}
		var ok bool
		if pred < 0 {
			ok = c.head.CompareAndSwap(cur, ei)
		} else {
			ok = c.entries[pred].next.CompareAndSwap(cur, ei)
		}
		if ok {
			return ei, OK
		}
		// Lost the race; re-scan from the prefix floor.
	}
}

// Publish announces an imminent entry-level update (a valRef CAS) to the
// rebalancer (§4.1). It fails iff the chunk is frozen.
func (c *Chunk) Publish() bool {
	c.published.Add(1)
	if c.frozen.Load() || FpPublishFail.Fire() {
		c.published.Add(-1)
		return false
	}
	return true
}

// Unpublish clears the announcement made by Publish.
func (c *Chunk) Unpublish() {
	c.published.Add(-1)
}

// Freeze marks the chunk as being rebalanced and waits for all published
// updates to drain. After Freeze returns, no valRef can change: every
// update path either published earlier (now drained) or will observe
// frozen and retry on the replacement chunk.
func (c *Chunk) Freeze() {
	c.frozen.Store(true)
	for spins := 0; c.published.Load() != 0; spins++ {
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

// IsFrozen reports whether the chunk is frozen.
func (c *Chunk) IsFrozen() bool { return c.frozen.Load() }

// Gather walks the (frozen) entries list and returns the live pairs —
// entries whose value handle is non-⊥ — in ascending key order. Per the
// paper (§4.4), the rebalancer does not check the deleted bit: a deleted-
// but-still-referenced value migrates and is filtered by readers.
// It also returns the key references of dead linked entries (valRef ⊥)
// so the map can recycle their key storage.
func (c *Chunk) Gather() (live []Pair, deadKeys []uint64) {
	live = make([]Pair, 0, c.Allocated())
	for cur := c.head.Load(); cur != none; cur = c.entries[cur].next.Load() {
		e := &c.entries[cur]
		if v := e.valRef.Load(); v != 0 {
			live = append(live, Pair{KeyRef: e.keyRef.Load(), ValHandle: v})
		} else {
			deadKeys = append(deadKeys, e.keyRef.Load())
		}
	}
	return live, deadKeys
}

// InRange reports whether key belongs to this chunk's range given the
// successor's minKey (key ≥ c.minKey, and key < next.minKey).
func (c *Chunk) InRange(key []byte) bool {
	if c.minKey != nil && c.cmp(key, c.minKey) < 0 {
		return false
	}
	if n := c.next.Load(); n != nil && n.minKey != nil && c.cmp(key, n.minKey) >= 0 {
		return false
	}
	return true
}
