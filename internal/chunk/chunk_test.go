package chunk

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"oakmap/internal/arena"
)

type fixture struct {
	alloc *arena.Allocator
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	a := arena.NewAllocator(arena.NewPool(1<<20, 0))
	t.Cleanup(a.Close)
	return &fixture{alloc: a}
}

func (f *fixture) keyRef(t testing.TB, i int) uint64 {
	t.Helper()
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	r, err := f.alloc.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	return uint64(r)
}

func kb(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func keyOf(c *Chunk, ei int32) int {
	return int(binary.BigEndian.Uint64(c.Key(ei)))
}

// insert links key i with value handle h.
func insert(t testing.TB, f *fixture, c *Chunk, i int, h uint64) int32 {
	t.Helper()
	ei, st := c.AllocateEntry(f.keyRef(t, i))
	if st != OK {
		t.Fatalf("AllocateEntry(%d): status %v", i, st)
	}
	lei, st := c.PutIfAbsentInList(ei)
	if st == Exists {
		return lei
	}
	if st != OK {
		t.Fatalf("PutIfAbsentInList(%d): status %v", i, st)
	}
	if !c.CASValHandle(lei, 0, h) {
		t.Fatalf("CASValHandle(%d) failed", i)
	}
	return lei
}

func TestEmptyChunkLookup(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 16, f.alloc, bytes.Compare)
	if c.LookUp(kb(5)) != -1 {
		t.Fatal("LookUp on empty chunk")
	}
	if c.Head() != -1 {
		t.Fatal("Head on empty chunk")
	}
	if c.FirstGE(kb(0)) != -1 {
		t.Fatal("FirstGE on empty chunk")
	}
}

func TestInsertAndLookup(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 64, f.alloc, bytes.Compare)
	order := []int{50, 10, 30, 20, 40, 60, 5}
	for i, k := range order {
		insert(t, f, c, k, uint64(i+1))
	}
	for i, k := range order {
		ei := c.LookUp(kb(k))
		if ei < 0 {
			t.Fatalf("LookUp(%d) = -1", k)
		}
		if c.ValHandle(ei) != uint64(i+1) {
			t.Fatalf("LookUp(%d): wrong handle", k)
		}
	}
	if c.LookUp(kb(35)) != -1 {
		t.Fatal("LookUp of absent key")
	}
	// The list is ascending.
	var got []int
	for cur := c.Head(); cur != -1; cur = c.NextEntry(cur) {
		got = append(got, keyOf(c, cur))
	}
	if !sort.IntsAreSorted(got) || len(got) != len(order) {
		t.Fatalf("list = %v", got)
	}
}

func TestDuplicateInsertReturnsExisting(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 64, f.alloc, bytes.Compare)
	first := insert(t, f, c, 7, 1)
	ei, st := c.AllocateEntry(f.keyRef(t, 7))
	if st != OK {
		t.Fatal("allocate")
	}
	lei, st := c.PutIfAbsentInList(ei)
	if st != Exists || lei != first {
		t.Fatalf("duplicate insert: %d, %v; want %d, Exists", lei, st, first)
	}
}

func TestAllocateEntryFull(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 4, f.alloc, bytes.Compare)
	for i := 0; i < 4; i++ {
		if _, st := c.AllocateEntry(f.keyRef(t, i)); st != OK {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, st := c.AllocateEntry(f.keyRef(t, 9)); st != Full {
		t.Fatalf("expected Full, got %v", st)
	}
}

func TestFrozenRejectsUpdates(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 16, f.alloc, bytes.Compare)
	ei, _ := c.AllocateEntry(f.keyRef(t, 1))
	c.Freeze()
	if !c.IsFrozen() {
		t.Fatal("IsFrozen")
	}
	if _, st := c.AllocateEntry(f.keyRef(t, 2)); st != Frozen {
		t.Fatal("AllocateEntry on frozen chunk")
	}
	if _, st := c.PutIfAbsentInList(ei); st != Frozen {
		t.Fatal("PutIfAbsentInList on frozen chunk")
	}
	if c.Publish() {
		t.Fatal("Publish on frozen chunk")
	}
	// Lookups still proceed (readers never block).
	if c.LookUp(kb(1)) != -1 {
		// entry 1 was never linked, so LookUp must miss; the point is
		// it did not panic or spin.
		t.Fatal("unexpected lookup hit")
	}
}

func TestFreezeWaitsForPublished(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 16, f.alloc, bytes.Compare)
	if !c.Publish() {
		t.Fatal("publish")
	}
	done := make(chan struct{})
	go func() {
		c.Freeze()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Freeze returned while an update was published")
	default:
	}
	c.Unpublish()
	<-done
}

func TestNewSortedLayout(t *testing.T) {
	f := newFixture(t)
	var pairs []Pair
	for i := 0; i < 10; i++ {
		pairs = append(pairs, Pair{KeyRef: f.keyRef(t, i*2), ValHandle: uint64(i + 1)})
	}
	c := NewSorted(kb(0), 32, f.alloc, bytes.Compare, pairs)
	if c.SortedCount() != 10 || c.Allocated() != 10 {
		t.Fatalf("prefix = %d, allocated = %d", c.SortedCount(), c.Allocated())
	}
	// Binary search works on all prefix keys.
	for i := 0; i < 10; i++ {
		if ei := c.LookUp(kb(i * 2)); ei < 0 || c.ValHandle(ei) != uint64(i+1) {
			t.Fatalf("LookUp(%d) failed", i*2)
		}
	}
	// New inserts link through bypasses.
	insert(t, f, c, 7, 99)
	var got []int
	for cur := c.Head(); cur != -1; cur = c.NextEntry(cur) {
		got = append(got, keyOf(c, cur))
	}
	if !sort.IntsAreSorted(got) || len(got) != 11 {
		t.Fatalf("list after bypass insert = %v", got)
	}
}

func TestGather(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 64, f.alloc, bytes.Compare)
	for i := 0; i < 10; i++ {
		insert(t, f, c, i, uint64(i+1))
	}
	// Kill entries 3 and 7 (valRef → ⊥), as finalizeRemove would.
	for _, k := range []int{3, 7} {
		ei := c.LookUp(kb(k))
		if !c.CASValHandle(ei, uint64(k+1), 0) {
			t.Fatal("CAS to ⊥")
		}
	}
	c.Freeze()
	live, dead := c.Gather()
	if len(live) != 8 {
		t.Fatalf("live = %d", len(live))
	}
	if len(dead) != 2 {
		t.Fatalf("dead = %d", len(dead))
	}
	// RB3: gathered pairs are sorted.
	for i := 1; i < len(live); i++ {
		a := f.alloc.Bytes(arena.Ref(live[i-1].KeyRef))
		b := f.alloc.Bytes(arena.Ref(live[i].KeyRef))
		if bytes.Compare(a, b) >= 0 {
			t.Fatal("gather not sorted")
		}
	}
}

func TestInRange(t *testing.T) {
	f := newFixture(t)
	c1 := New(kb(10), 16, f.alloc, bytes.Compare)
	c2 := New(kb(20), 16, f.alloc, bytes.Compare)
	c1.SetNext(c2)
	if !c1.InRange(kb(10)) || !c1.InRange(kb(19)) {
		t.Fatal("InRange false negative")
	}
	if c1.InRange(kb(9)) || c1.InRange(kb(20)) {
		t.Fatal("InRange false positive")
	}
	head := New(nil, 16, f.alloc, bytes.Compare)
	head.SetNext(c1)
	if !head.InRange(kb(0)) || head.InRange(kb(10)) {
		t.Fatal("head InRange")
	}
}

func TestForward(t *testing.T) {
	f := newFixture(t)
	a := New(nil, 16, f.alloc, bytes.Compare)
	b := New(nil, 16, f.alloc, bytes.Compare)
	c := New(nil, 16, f.alloc, bytes.Compare)
	if Forward(a) != a {
		t.Fatal("Forward of live chunk")
	}
	a.SetReplacedBy(b)
	b.SetReplacedBy(c)
	if Forward(a) != c {
		t.Fatal("Forward chain")
	}
}

func TestDescIterFullChunk(t *testing.T) {
	f := newFixture(t)
	// Reproduce the paper's Fig. 2: prefix [2,5,6,9] with bypasses
	// 3,4 after 2; 7,8 after 6.
	var pairs []Pair
	for _, k := range []int{2, 5, 6, 9} {
		pairs = append(pairs, Pair{KeyRef: f.keyRef(t, k), ValHandle: uint64(k)})
	}
	c := NewSorted(nil, 32, f.alloc, bytes.Compare, pairs)
	for _, k := range []int{3, 4, 7, 8} {
		insert(t, f, c, k, uint64(k))
	}
	it := c.NewDescIter(nil)
	var got []int
	for ei := it.Next(); ei != -1; ei = it.Next() {
		got = append(got, keyOf(c, ei))
	}
	want := []int{9, 8, 7, 6, 5, 4, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("desc = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("desc = %v; want %v", got, want)
		}
	}
}

func TestDescIterBound(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 64, f.alloc, bytes.Compare)
	for i := 0; i < 20; i++ {
		insert(t, f, c, i, uint64(i+1))
	}
	it := c.NewDescIter(kb(10)) // keys < 10
	var got []int
	for ei := it.Next(); ei != -1; ei = it.Next() {
		got = append(got, keyOf(c, ei))
	}
	if len(got) != 10 || got[0] != 9 || got[9] != 0 {
		t.Fatalf("bounded desc = %v", got)
	}
}

func TestDescIterEmpty(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 16, f.alloc, bytes.Compare)
	if c.NewDescIter(nil).Next() != -1 {
		t.Fatal("desc on empty chunk")
	}
	insert(t, f, c, 5, 1)
	if c.NewDescIter(kb(5)).Next() != -1 {
		t.Fatal("desc with bound below all keys")
	}
}

// Property: for any insertion set, DescIter yields exactly the reverse
// of the ascending list.
func TestDescIterReversesProperty(t *testing.T) {
	f := func(seed uint64, prefixN, bypassN uint8) bool {
		fx := arena.NewAllocator(arena.NewPool(1<<20, 0))
		defer fx.Close()
		rng := rand.New(rand.NewPCG(seed, 1))
		used := map[int]bool{}
		var prefixKeys []int
		for len(prefixKeys) < int(prefixN%20)+1 {
			k := int(rng.Uint64() % 1000)
			if !used[k] {
				used[k] = true
				prefixKeys = append(prefixKeys, k)
			}
		}
		sort.Ints(prefixKeys)
		var pairs []Pair
		for _, k := range prefixKeys {
			b := kb(k)
			r, _ := fx.Write(b)
			pairs = append(pairs, Pair{KeyRef: uint64(r), ValHandle: uint64(k) + 1})
		}
		c := NewSorted(nil, 256, fx, bytes.Compare, pairs)
		for i := 0; i < int(bypassN); i++ {
			k := int(rng.Uint64() % 1000)
			if used[k] {
				continue
			}
			used[k] = true
			r, _ := fx.Write(kb(k))
			ei, st := c.AllocateEntry(uint64(r))
			if st != OK {
				return false
			}
			lei, st := c.PutIfAbsentInList(ei)
			if st != OK {
				return false
			}
			c.CASValHandle(lei, 0, uint64(k)+1)
		}
		var asc []int
		for cur := c.Head(); cur != -1; cur = c.NextEntry(cur) {
			asc = append(asc, keyOf(c, cur))
		}
		it := c.NewDescIter(nil)
		var desc []int
		for ei := it.Next(); ei != -1; ei = it.Next() {
			desc = append(desc, keyOf(c, ei))
		}
		if len(asc) != len(desc) {
			return false
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertUniqueness: racing inserts of overlapping key sets
// preserve the at-most-one-entry-per-key invariant.
func TestConcurrentInsertUniqueness(t *testing.T) {
	f := newFixture(t)
	c := New(nil, 4096, f.alloc, bytes.Compare)
	const keys = 300
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				ei, st := c.AllocateEntry(f.keyRef(t, k))
				if st != OK {
					t.Error("alloc failed")
					return
				}
				lei, st := c.PutIfAbsentInList(ei)
				if st == OK {
					c.CASValHandle(lei, 0, uint64(g+1))
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[int]bool{}
	count := 0
	prev := -1
	for cur := c.Head(); cur != -1; cur = c.NextEntry(cur) {
		k := keyOf(c, cur)
		if seen[k] {
			t.Fatalf("key %d linked twice", k)
		}
		if k <= prev {
			t.Fatalf("order violation at %d", k)
		}
		seen[k] = true
		prev = k
		count++
	}
	if count != keys {
		t.Fatalf("linked %d keys; want %d", count, keys)
	}
}

// TestDescIterDuringConcurrentInserts: a descending iterator must stay
// sorted-descending and terminate while writers add bypass entries.
func TestDescIterDuringConcurrentInserts(t *testing.T) {
	f := newFixture(t)
	var pairs []Pair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, Pair{KeyRef: f.keyRef(t, i*10), ValHandle: uint64(i + 1)})
	}
	c := NewSorted(nil, 4096, f.alloc, bytes.Compare, pairs)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewPCG(1, 2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int(rng.Uint64()%640) + 1
			if k%10 == 0 {
				continue
			}
			ei, st := c.AllocateEntry(f.keyRef(t, k))
			if st != OK {
				return // full: enough churn generated
			}
			if lei, st := c.PutIfAbsentInList(ei); st == OK {
				c.CASValHandle(lei, 0, uint64(k))
			}
		}
	}()
	for round := 0; round < 200; round++ {
		it := c.NewDescIter(nil)
		prev := -1
		steps := 0
		for ei := it.Next(); ei != -1; ei = it.Next() {
			k := keyOf(c, ei)
			if prev != -1 && k >= prev {
				t.Fatalf("descending order violation: %d after %d", k, prev)
			}
			prev = k
			steps++
			if steps > 10000 {
				t.Fatal("descending iterator failed to terminate")
			}
		}
		// The 64 stable prefix keys must always appear.
		if steps < 64 {
			t.Fatalf("round %d: saw only %d entries", round, steps)
		}
	}
	close(stop)
	<-done
}
