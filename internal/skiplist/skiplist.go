// Package skiplist provides a concurrent ordered map over []byte keys.
//
// It plays two roles in this repository, both mandated by the paper:
//
//  1. It is the "SkipList-OnHeap" baseline of §5 — the stand-in for the
//     JDK ConcurrentSkipListMap. Like Java's map it keeps every key and
//     value as an ordinary heap object, supports get/put/putIfAbsent/
//     remove, a *non-atomic* merge/computeIfPresent, and implements
//     descending iteration by issuing a fresh lookup per key (which is
//     exactly the O(S·logN) behaviour Fig. 4f punishes).
//
//  2. It is Oak's on-heap chunk index (§3.1), mapping chunk minKeys to
//     chunk objects with floor/lower queries and lazy updates.
//
// The algorithm is the optimistic lazy skiplist of Herlihy & Shavit
// (ch. 14), with wait-free reads: traversals never lock; inserts and
// removes lock only the affected predecessors and validate before
// linking. Values are replaced with CAS, so pure value updates are
// lock-free.
package skiplist

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Comparator orders keys; it must behave like bytes.Compare.
type Comparator func(a, b []byte) int

const (
	maxLevel = 24 // supports billions of entries at p = 1/2
	pBits    = 1  // level promotion probability 1/2 (one bit per level)
)

type node[V any] struct {
	key         []byte
	val         atomic.Pointer[V]
	next        []atomic.Pointer[node[V]]
	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
}

func (n *node[V]) topLevel() int { return len(n.next) - 1 }

// List is a concurrent ordered map from []byte keys to values of type V.
// The zero value is not usable; create instances with New.
type List[V any] struct {
	head *node[V] // sentinel; key == nil sorts below every key
	cmp  Comparator
	size atomic.Int64
}

// New creates an empty list ordered by cmp (nil means bytes.Compare).
func New[V any](cmp Comparator) *List[V] {
	if cmp == nil {
		cmp = bytes.Compare
	}
	h := &node[V]{next: make([]atomic.Pointer[node[V]], maxLevel+1)}
	h.fullyLinked.Store(true)
	return &List[V]{head: h, cmp: cmp}
}

// Len returns the number of live entries. Under concurrent updates the
// value is approximate, like Java's ConcurrentSkipListMap.size().
func (l *List[V]) Len() int { return int(l.size.Load()) }

func randomLevel() int {
	lvl := 0
	for lvl < maxLevel && rand.Uint64()&((1<<pBits)-1) == 0 {
		lvl++
	}
	return lvl
}

// find locates key, filling preds/succs per level. It returns the level
// at which a node with the key was found, or -1.
func (l *List[V]) find(key []byte, preds, succs *[maxLevel + 1]*node[V]) int {
	found := -1
	pred := l.head
	for lvl := maxLevel; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr != nil && l.cmp(curr.key, key) < 0 {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		if found < 0 && curr != nil && l.cmp(curr.key, key) == 0 {
			found = lvl
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
	return found
}

// findNode returns the live node holding key, or nil. Wait-free.
func (l *List[V]) findNode(key []byte) *node[V] {
	pred := l.head
	for lvl := maxLevel; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr != nil && l.cmp(curr.key, key) < 0 {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		if curr != nil && l.cmp(curr.key, key) == 0 {
			if curr.fullyLinked.Load() && !curr.marked.Load() {
				return curr
			}
			return nil
		}
	}
	return nil
}

// Get returns the value mapped to key.
func (l *List[V]) Get(key []byte) (V, bool) {
	if n := l.findNode(key); n != nil {
		return *n.val.Load(), true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (l *List[V]) Contains(key []byte) bool {
	return l.findNode(key) != nil
}

// Put maps key to v, returning the previous value if the key was present.
// The key slice is retained; callers must not mutate it afterwards.
func (l *List[V]) Put(key []byte, v V) (old V, replaced bool) {
	for {
		if n, inserted := l.insert(key, v); inserted {
			var zero V
			return zero, false
		} else if n != nil {
			oldp := n.val.Swap(&v)
			return *oldp, true
		}
		// Raced with a removal or a half-linked insert: retry.
	}
}

// PutIfAbsent inserts key→v if absent, reporting whether it inserted.
func (l *List[V]) PutIfAbsent(key []byte, v V) bool {
	for {
		n, inserted := l.insert(key, v)
		if inserted {
			return true
		}
		if n != nil {
			return false
		}
	}
}

// insert attempts to add key→v. Returns (nil, true) on insertion,
// (existing, false) if a live node holds the key, and (nil, false) if the
// operation must be retried.
func (l *List[V]) insert(key []byte, v V) (*node[V], bool) {
	var preds, succs [maxLevel + 1]*node[V]
	topLevel := randomLevel()
	for {
		found := l.find(key, &preds, &succs)
		if found >= 0 {
			n := succs[found]
			if n.marked.Load() {
				continue // being removed; retry the find
			}
			for !n.fullyLinked.Load() {
				if n.marked.Load() {
					break
				}
			}
			if n.marked.Load() {
				continue
			}
			return n, false
		}
		// Lock predecessors bottom-up and validate.
		var prevPred *node[V]
		valid := true
		highestLocked := -1
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred, succ := preds[lvl], succs[lvl]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lvl
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[lvl].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		n := &node[V]{key: key, next: make([]atomic.Pointer[node[V]], topLevel+1)}
		n.val.Store(&v)
		for lvl := 0; lvl <= topLevel; lvl++ {
			n.next[lvl].Store(succs[lvl])
		}
		for lvl := 0; lvl <= topLevel; lvl++ {
			preds[lvl].next[lvl].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highestLocked)
		l.size.Add(1)
		return nil, true
	}
}

func unlockPreds[V any](preds *[maxLevel + 1]*node[V], highest int) {
	var prev *node[V]
	for lvl := 0; lvl <= highest; lvl++ {
		if preds[lvl] != prev {
			preds[lvl].mu.Unlock()
			prev = preds[lvl]
		}
	}
}

// Remove deletes key, returning its value if it was present.
func (l *List[V]) Remove(key []byte) (V, bool) {
	var zero V
	var preds, succs [maxLevel + 1]*node[V]
	var victim *node[V]
	isMarked := false
	topLevel := -1
	for {
		found := l.find(key, &preds, &succs)
		if found >= 0 {
			victim = succs[found]
		}
		if !isMarked {
			if found < 0 || !victim.fullyLinked.Load() ||
				victim.marked.Load() || victim.topLevel() != found {
				return zero, false
			}
			topLevel = victim.topLevel()
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return zero, false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		var prevPred *node[V]
		valid := true
		highestLocked := -1
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred := preds[lvl]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lvl
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[lvl].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		for lvl := topLevel; lvl >= 0; lvl-- {
			preds[lvl].next[lvl].Store(victim.next[lvl].Load())
		}
		old := *victim.val.Load()
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		l.size.Add(-1)
		return old, true
	}
}

// ComputeIfPresent applies f to the current value of key and stores the
// result. Like Java's ConcurrentSkipListMap, this is NOT atomic in place:
// f may run multiple times under contention, and concurrent readers can
// observe the old value while f runs. Returns false if key is absent.
func (l *List[V]) ComputeIfPresent(key []byte, f func(V) V) bool {
	for {
		n := l.findNode(key)
		if n == nil {
			return false
		}
		oldp := n.val.Load()
		nv := f(*oldp)
		if n.val.CompareAndSwap(oldp, &nv) {
			return true
		}
		if n.marked.Load() {
			return false
		}
	}
}

// Merge is the Java-map merge used by the Fig. 4b baseline: if key is
// absent it inserts init, otherwise it remaps the existing value with f.
// Non-atomic in the same sense as ComputeIfPresent.
func (l *List[V]) Merge(key []byte, init V, f func(V) V) {
	for {
		if l.ComputeIfPresent(key, f) {
			return
		}
		if l.PutIfAbsent(key, init) {
			return
		}
	}
}
