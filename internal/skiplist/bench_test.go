package skiplist

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
)

func benchList(n int) *List[int] {
	l := New[int](nil)
	for _, i := range rand.Perm(n) {
		l.Put(key(i), i)
	}
	return l
}

func BenchmarkGet(b *testing.B) {
	l := benchList(100000)
	kb := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(kb, uint64(i%100000))
		l.Get(kb)
	}
}

func BenchmarkPutOverwrite(b *testing.B) {
	l := benchList(100000)
	kb := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(kb, uint64(i%100000))
		l.Put(kb, i)
	}
}

func BenchmarkInsertFresh(b *testing.B) {
	l := New[int](nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Put(key(i), i)
	}
}

func BenchmarkAscend1000(b *testing.B) {
	l := benchList(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l.Ascend(key(i%50000), nil, func([]byte, int) bool {
			n++
			return n < 1000
		})
	}
}

// BenchmarkDescend1000 shows the per-key-lookup cost Fig. 4f punishes.
func BenchmarkDescend1000(b *testing.B) {
	l := benchList(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l.Descend(nil, key(i%50000+50000), func([]byte, int) bool {
			n++
			return n < 1000
		})
	}
}

func BenchmarkFloor(b *testing.B) {
	l := benchList(100000)
	kb := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(kb, uint64(i%100000))
		l.Floor(kb)
	}
}
