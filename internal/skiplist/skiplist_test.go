package skiplist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func keyInt(b []byte) int { return int(binary.BigEndian.Uint64(b)) }

func TestEmpty(t *testing.T) {
	l := New[string](nil)
	if l.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	if _, ok := l.Get(key(1)); ok {
		t.Fatal("Get on empty")
	}
	if _, ok := l.First(); ok {
		t.Fatal("First on empty")
	}
	if _, ok := l.Last(); ok {
		t.Fatal("Last on empty")
	}
	if _, ok := l.Remove(key(1)); ok {
		t.Fatal("Remove on empty")
	}
}

func TestPutGetRemove(t *testing.T) {
	l := New[string](nil)
	if _, replaced := l.Put(key(1), "a"); replaced {
		t.Fatal("first Put replaced")
	}
	if v, ok := l.Get(key(1)); !ok || v != "a" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	old, replaced := l.Put(key(1), "b")
	if !replaced || old != "a" {
		t.Fatalf("Put returned %q %v", old, replaced)
	}
	v, ok := l.Remove(key(1))
	if !ok || v != "b" {
		t.Fatalf("Remove = %q %v", v, ok)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestPutIfAbsent(t *testing.T) {
	l := New[int](nil)
	if !l.PutIfAbsent(key(1), 10) {
		t.Fatal("first PutIfAbsent")
	}
	if l.PutIfAbsent(key(1), 20) {
		t.Fatal("second PutIfAbsent succeeded")
	}
	if v, _ := l.Get(key(1)); v != 10 {
		t.Fatalf("value = %d", v)
	}
}

// TestAgainstReferenceModel drives the skiplist and a Go map with the
// same random operations and compares results.
func TestAgainstReferenceModel(t *testing.T) {
	l := New[int](nil)
	ref := map[int]int{}
	rng := rand.New(rand.NewPCG(42, 43))
	for i := 0; i < 20000; i++ {
		k := int(rng.Uint64() % 500)
		switch rng.Uint64() % 4 {
		case 0, 1:
			old, replaced := l.Put(key(k), i)
			refOld, refHad := ref[k]
			if replaced != refHad || (refHad && old != refOld) {
				t.Fatalf("Put(%d) mismatch: (%d,%v) vs (%d,%v)", k, old, replaced, refOld, refHad)
			}
			ref[k] = i
		case 2:
			old, removed := l.Remove(key(k))
			refOld, refHad := ref[k]
			if removed != refHad || (refHad && old != refOld) {
				t.Fatalf("Remove(%d) mismatch", k)
			}
			delete(ref, k)
		default:
			v, ok := l.Get(key(k))
			refV, refHad := ref[k]
			if ok != refHad || (refHad && v != refV) {
				t.Fatalf("Get(%d) mismatch: (%d,%v) vs (%d,%v)", k, v, ok, refV, refHad)
			}
		}
	}
	if l.Len() != len(ref) {
		t.Fatalf("Len %d != %d", l.Len(), len(ref))
	}
	// Final ascending scan matches the sorted reference.
	var want []int
	for k := range ref {
		want = append(want, k)
	}
	sort.Ints(want)
	var got []int
	l.Ascend(nil, nil, func(k []byte, v int) bool {
		got = append(got, keyInt(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d; want %d", i, got[i], want[i])
		}
	}
}

func TestNavigation(t *testing.T) {
	l := New[int](nil)
	for i := 0; i < 100; i += 10 {
		l.Put(key(i), i)
	}
	if e, ok := l.Floor(key(35)); !ok || keyInt(e.Key) != 30 {
		t.Fatal("Floor(35)")
	}
	if e, ok := l.Floor(key(30)); !ok || keyInt(e.Key) != 30 {
		t.Fatal("Floor(30)")
	}
	if e, ok := l.Lower(key(30)); !ok || keyInt(e.Key) != 20 {
		t.Fatal("Lower(30)")
	}
	if e, ok := l.Ceiling(key(35)); !ok || keyInt(e.Key) != 40 {
		t.Fatal("Ceiling(35)")
	}
	if e, ok := l.First(); !ok || keyInt(e.Key) != 0 {
		t.Fatal("First")
	}
	if e, ok := l.Last(); !ok || keyInt(e.Key) != 90 {
		t.Fatal("Last")
	}
	if _, ok := l.Lower(key(0)); ok {
		t.Fatal("Lower(0) should be empty")
	}
	if _, ok := l.Ceiling(key(91)); ok {
		t.Fatal("Ceiling(91) should be empty")
	}
}

func TestAscendDescendBounds(t *testing.T) {
	l := New[int](nil)
	for i := 0; i < 50; i++ {
		l.Put(key(i), i)
	}
	var got []int
	l.Ascend(key(10), key(15), func(k []byte, v int) bool {
		got = append(got, keyInt(k))
		return true
	})
	if fmt.Sprint(got) != "[10 11 12 13 14]" {
		t.Fatalf("Ascend = %v", got)
	}
	got = got[:0]
	l.Descend(key(10), key(15), func(k []byte, v int) bool {
		got = append(got, keyInt(k))
		return true
	})
	if fmt.Sprint(got) != "[14 13 12 11 10]" {
		t.Fatalf("Descend = %v", got)
	}
	// Early termination.
	n := 0
	l.Ascend(nil, nil, func(k []byte, v int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMergeAndComputeIfPresent(t *testing.T) {
	l := New[int](nil)
	l.Merge(key(1), 100, func(v int) int { return v + 1 })
	if v, _ := l.Get(key(1)); v != 100 {
		t.Fatalf("merge-insert = %d", v)
	}
	l.Merge(key(1), 100, func(v int) int { return v + 1 })
	if v, _ := l.Get(key(1)); v != 101 {
		t.Fatalf("merge-update = %d", v)
	}
	if l.ComputeIfPresent(key(2), func(v int) int { return v }) {
		t.Fatal("ComputeIfPresent on absent key")
	}
}

func TestCustomComparator(t *testing.T) {
	// Reverse ordering.
	l := New[int](func(a, b []byte) int { return bytes.Compare(b, a) })
	for i := 0; i < 10; i++ {
		l.Put(key(i), i)
	}
	var got []int
	l.Ascend(nil, nil, func(k []byte, v int) bool {
		got = append(got, keyInt(k))
		return true
	})
	for i := range got {
		if got[i] != 9-i {
			t.Fatalf("reverse order broken: %v", got)
		}
	}
}

func TestConcurrentInsertDisjoint(t *testing.T) {
	l := New[int](nil)
	const perG = 2000
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Put(key(g*perG+i), i)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != perG*goroutines {
		t.Fatalf("Len = %d", l.Len())
	}
	prev := -1
	count := 0
	l.Ascend(nil, nil, func(k []byte, v int) bool {
		ki := keyInt(k)
		if ki <= prev {
			t.Fatalf("order violation at %d", ki)
		}
		prev = ki
		count++
		return true
	})
	if count != perG*goroutines {
		t.Fatalf("scan count = %d", count)
	}
}

func TestConcurrentPutIfAbsentOneWinner(t *testing.T) {
	l := New[int](nil)
	const keys = 300
	const goroutines = 8
	var winners [keys]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				if l.PutIfAbsent(key(k), g) {
					mu.Lock()
					winners[k]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if winners[k] != 1 {
			t.Fatalf("key %d: %d winners", k, winners[k])
		}
	}
}

func TestConcurrentMixedChurn(t *testing.T) {
	l := New[int](nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 5000; i++ {
				k := int(rng.Uint64() % 400)
				switch rng.Uint64() % 6 {
				case 0, 1:
					l.Put(key(k), i)
				case 2:
					l.Remove(key(k))
				case 3:
					l.Merge(key(k), 0, func(v int) int { return v + 1 })
				case 4:
					n := 0
					l.Ascend(nil, nil, func([]byte, int) bool { n++; return n < 50 })
				default:
					l.Get(key(k))
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiescent invariant: strictly ascending scan, count == Len.
	prev := -1
	count := 0
	l.Ascend(nil, nil, func(k []byte, v int) bool {
		ki := keyInt(k)
		if ki <= prev {
			t.Fatalf("order violation: %d after %d", ki, prev)
		}
		prev = ki
		count++
		return true
	})
	if count != l.Len() {
		t.Fatalf("count %d != Len %d", count, l.Len())
	}
}

// Property: descending scan is the exact reverse of ascending for any
// key set.
func TestDescendReversesAscendProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		l := New[bool](nil)
		for _, k := range keys {
			l.Put(key(int(k)), true)
		}
		var asc, desc []int
		l.Ascend(nil, nil, func(k []byte, _ bool) bool {
			asc = append(asc, keyInt(k))
			return true
		})
		l.Descend(nil, nil, func(k []byte, _ bool) bool {
			desc = append(desc, keyInt(k))
			return true
		})
		if len(asc) != len(desc) {
			return false
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Floor/Ceiling agree with a sorted-slice oracle.
func TestFloorCeilingProperty(t *testing.T) {
	f := func(keys []uint8, probe uint8) bool {
		l := New[bool](nil)
		set := map[int]bool{}
		for _, k := range keys {
			l.Put(key(int(k)), true)
			set[int(k)] = true
		}
		var sorted []int
		for k := range set {
			sorted = append(sorted, k)
		}
		sort.Ints(sorted)
		p := int(probe)
		// Oracle.
		wantFloor, haveFloor := -1, false
		wantCeil, haveCeil := -1, false
		for _, k := range sorted {
			if k <= p {
				wantFloor, haveFloor = k, true
			}
			if k >= p && !haveCeil {
				wantCeil, haveCeil = k, true
			}
		}
		gotF, okF := l.Floor(key(p))
		gotC, okC := l.Ceiling(key(p))
		if okF != haveFloor || okC != haveCeil {
			return false
		}
		if haveFloor && keyInt(gotF.Key) != wantFloor {
			return false
		}
		if haveCeil && keyInt(gotC.Key) != wantCeil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
