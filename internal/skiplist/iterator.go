package skiplist

// Navigation and iteration. Ascending scans ride the level-0 links.
// Descending scans deliberately issue a fresh O(log N) lookup per step —
// that is how ConcurrentSkipListMap implements descending iteration, and
// it is the behaviour Oak's chunk-based descending scan beats in Fig. 4f.

// Entry is a key/value pair returned by navigation queries.
type Entry[V any] struct {
	Key   []byte
	Value V
}

// First returns the smallest entry.
func (l *List[V]) First() (Entry[V], bool) {
	for {
		n := l.head.next[0].Load()
		for n != nil && n.marked.Load() {
			n = n.next[0].Load()
		}
		if n == nil {
			return Entry[V]{}, false
		}
		if n.fullyLinked.Load() {
			return Entry[V]{n.key, *n.val.Load()}, true
		}
	}
}

// Last returns the greatest entry.
func (l *List[V]) Last() (Entry[V], bool) {
	pred := l.head
	for lvl := maxLevel; lvl >= 0; lvl-- {
		for {
			curr := pred.next[lvl].Load()
			if curr == nil {
				break
			}
			pred = curr
		}
	}
	if pred == l.head {
		return Entry[V]{}, false
	}
	if pred.marked.Load() || !pred.fullyLinked.Load() {
		// Rare race with removal of the last node; restart via Lower of
		// a key greater than everything is impossible, so just rescan.
		return l.Last()
	}
	return Entry[V]{pred.key, *pred.val.Load()}, true
}

// Floor returns the greatest entry with key ≤ k.
func (l *List[V]) Floor(k []byte) (Entry[V], bool) {
	for {
		var preds, succs [maxLevel + 1]*node[V]
		found := l.find(k, &preds, &succs)
		if found >= 0 {
			n := succs[found]
			if n.fullyLinked.Load() && !n.marked.Load() {
				return Entry[V]{n.key, *n.val.Load()}, true
			}
			continue
		}
		n := preds[0]
		if n == l.head {
			return Entry[V]{}, false
		}
		if !n.marked.Load() && n.fullyLinked.Load() {
			return Entry[V]{n.key, *n.val.Load()}, true
		}
		// pred was concurrently removed; retry.
	}
}

// Lower returns the greatest entry with key strictly < k.
func (l *List[V]) Lower(k []byte) (Entry[V], bool) {
	for {
		var preds, succs [maxLevel + 1]*node[V]
		l.find(k, &preds, &succs)
		n := preds[0]
		if n == l.head {
			return Entry[V]{}, false
		}
		if !n.marked.Load() && n.fullyLinked.Load() {
			return Entry[V]{n.key, *n.val.Load()}, true
		}
	}
}

// Ceiling returns the smallest entry with key ≥ k.
func (l *List[V]) Ceiling(k []byte) (Entry[V], bool) {
	for {
		var preds, succs [maxLevel + 1]*node[V]
		l.find(k, &preds, &succs)
		n := succs[0]
		for n != nil && n.marked.Load() {
			n = n.next[0].Load()
		}
		if n == nil {
			return Entry[V]{}, false
		}
		if n.fullyLinked.Load() {
			return Entry[V]{n.key, *n.val.Load()}, true
		}
	}
}

// Ascend calls yield for each entry with from ≤ key < to, in ascending
// order, until yield returns false. A nil from starts at the beginning; a
// nil to means no upper bound. The scan is non-atomic (§1.1): entries
// inserted or removed concurrently may or may not be observed.
func (l *List[V]) Ascend(from, to []byte, yield func(key []byte, v V) bool) {
	var n *node[V]
	if from == nil {
		n = l.head.next[0].Load()
	} else {
		var preds, succs [maxLevel + 1]*node[V]
		l.find(from, &preds, &succs)
		n = succs[0]
	}
	for n != nil {
		if to != nil && l.cmp(n.key, to) >= 0 {
			return
		}
		if !n.marked.Load() && n.fullyLinked.Load() {
			if !yield(n.key, *n.val.Load()) {
				return
			}
		}
		n = n.next[0].Load()
	}
}

// Descend calls yield for each entry with from ≤ key < to in descending
// order. Each step performs a fresh lookup (Lower), reproducing the
// skiplist descending-scan cost model the paper measures.
func (l *List[V]) Descend(from, to []byte, yield func(key []byte, v V) bool) {
	var e Entry[V]
	var ok bool
	if to == nil {
		e, ok = l.Last()
	} else {
		e, ok = l.Lower(to)
	}
	for ok {
		if from != nil && l.cmp(e.Key, from) < 0 {
			return
		}
		if !yield(e.Key, e.Value) {
			return
		}
		e, ok = l.Lower(e.Key)
	}
}
