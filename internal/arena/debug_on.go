//go:build arenadebug

package arena

import (
	"fmt"
	"sort"
	"sync"
)

// DebugChecks reports whether the arenadebug double-free detector is
// compiled in.
const DebugChecks = true

// debugTracker is the arenadebug double-free / overlapping-free
// detector. It mirrors the allocator's free set as sorted, disjoint
// per-block interval lists: noteFree records a range and panics if it
// overlaps a range that is already free (a double free, or a free of a
// ref overlapping another freed ref); noteAlloc removes the carved
// range when free space is reused. Split remainders privately held
// between a pop and their re-park stay recorded — a Free overlapping
// them overlapped parked free space an instant earlier, so the panic is
// still a true positive.
//
// The tracker costs O(log spans) per operation plus a global lock, so
// it is compiled in only under the arenadebug build tag (used by the
// race CI leg and the chaos suite).
type debugTracker struct {
	mu      sync.Mutex
	byBlock map[int][]debugSpan
}

// debugSpan is a free interval [off, end) within one block.
type debugSpan struct{ off, end int }

func (t *debugTracker) noteFree(block, offset, length int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byBlock == nil {
		t.byBlock = make(map[int][]debugSpan)
	}
	spans := t.byBlock[block]
	end := offset + length
	// First recorded interval ending after offset; intervals are
	// disjoint and sorted, so it is the only overlap candidate besides
	// being the insertion point.
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > offset })
	if i < len(spans) && spans[i].off < end {
		panic(fmt.Sprintf(
			"arena: double/overlapping free of b%d+%d:%d — range overlaps free span b%d+%d:%d",
			block, offset, length, block, spans[i].off, spans[i].end-spans[i].off))
	}
	spans = append(spans, debugSpan{})
	copy(spans[i+1:], spans[i:])
	spans[i] = debugSpan{off: offset, end: end}
	t.byBlock[block] = spans
}

func (t *debugTracker) noteAlloc(block, offset, length int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := t.byBlock[block]
	end := offset + length
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > offset })
	if i == len(spans) || spans[i].off >= end {
		return // nothing recorded for this range
	}
	// Remove or trim every recorded interval overlapping [offset, end).
	// (A coalesced span may cover several recorded fragments.)
	out := make([]debugSpan, 0, len(spans)+1)
	out = append(out, spans[:i]...)
	for ; i < len(spans); i++ {
		s := spans[i]
		if s.off >= end {
			out = append(out, spans[i:]...)
			break
		}
		if s.off < offset {
			out = append(out, debugSpan{off: s.off, end: offset})
		}
		if s.end > end {
			out = append(out, debugSpan{off: end, end: s.end})
		}
	}
	t.byBlock[block] = out
}

func (t *debugTracker) reset() {
	t.mu.Lock()
	t.byBlock = nil
	t.mu.Unlock()
}
