package arena

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkAllocFixed(b *testing.B) {
	a := NewAllocator(NewPool(64<<20, 0))
	defer a.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Alloc(128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocFreeChurn(b *testing.B) {
	a := NewAllocator(NewPool(16<<20, 0))
	defer a.Close()
	live := make([]Ref, 0, 1024)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) == cap(live) {
			idx := int(rng.Uint64() % uint64(len(live)))
			a.Free(live[idx])
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		n := 16 + int(rng.Uint64()%512)
		r, err := a.Alloc(n)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, r)
	}
}

func BenchmarkBytesAccess(b *testing.B) {
	a := NewAllocator(NewPool(1<<20, 0))
	defer a.Close()
	r, _ := a.Alloc(256)
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		buf := a.Bytes(r)
		sink ^= buf[0]
	}
	_ = sink
}

func BenchmarkRefPack(b *testing.B) {
	var sink Ref
	for i := 0; i < b.N; i++ {
		sink = MakeRef(i%MaxBlocks, i&0x3ffffff, 128)
	}
	_ = sink
}
