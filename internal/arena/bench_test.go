package arena

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

func BenchmarkAllocFixed(b *testing.B) {
	a := NewAllocator(NewPool(64<<20, 0))
	defer a.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Alloc(128); err != nil {
			b.Fatal(err)
		}
	}
}

// churnSizes spreads requests over every size class plus the large list.
var churnSizes = [...]int{24, 64, 100, 128, 200, 512, 1000, 2048, 4096, 9000}

// BenchmarkAllocFreeChurn is the single-goroutine churn: a bounded live
// set, random frees, mixed sizes — the steady state of a map under
// put/remove load.
func BenchmarkAllocFreeChurn(b *testing.B) {
	for _, mode := range []Mode{ModeSizeClass, ModeFirstFit} {
		b.Run(mode.String(), func(b *testing.B) {
			a := NewAllocator(NewPool(1<<20, 0))
			defer a.Close()
			a.SetMode(mode)
			live := make([]Ref, 0, 1024)
			rng := rand.New(rand.NewPCG(1, 2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(live) == cap(live) {
					idx := int(rng.Uint64() % uint64(len(live)))
					a.Free(live[idx])
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				n := churnSizes[rng.Uint64()%uint64(len(churnSizes))]
				r, err := a.Alloc(n)
				if err != nil {
					b.Fatal(err)
				}
				live = append(live, r)
			}
		})
	}
}

// BenchmarkChurnParallel is the contention benchmark behind the
// size-class redesign: G goroutines churn mixed-size alloc/free against
// one allocator. The flat first-fit baseline serializes every operation
// on one mutex and pays an O(free spans) scan per alloc; the size-class
// allocator pops per-class LIFOs under per-class locks.
func BenchmarkChurnParallel(b *testing.B) {
	for _, mode := range []Mode{ModeSizeClass, ModeFirstFit} {
		for _, workers := range []int{1, 2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/g=%d", mode, workers), func(b *testing.B) {
				a := NewAllocator(NewPool(1<<20, 0))
				defer a.Close()
				a.SetMode(mode)
				// Warm the free structures into churn steady state.
				warm := make([]Ref, 0, 2048)
				rng := rand.New(rand.NewPCG(7, 9))
				for i := 0; i < cap(warm); i++ {
					r, err := a.Alloc(churnSizes[rng.Uint64()%uint64(len(churnSizes))])
					if err != nil {
						b.Fatal(err)
					}
					warm = append(warm, r)
				}
				for _, r := range warm {
					a.Free(r)
				}
				perG := b.N/workers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rng := rand.New(rand.NewPCG(uint64(g), 0xbe9c))
						live := make([]Ref, 0, 256)
						for i := 0; i < perG; i++ {
							if len(live) == cap(live) {
								idx := int(rng.Uint64() % uint64(len(live)))
								a.Free(live[idx])
								live[idx] = live[len(live)-1]
								live = live[:len(live)-1]
							}
							n := churnSizes[rng.Uint64()%uint64(len(churnSizes))]
							r, err := a.Alloc(n)
							if err != nil {
								b.Error(err)
								return
							}
							live = append(live, r)
						}
						for _, r := range live {
							a.Free(r)
						}
					}(g)
				}
				wg.Wait()
				b.StopTimer()
				st := a.Stats()
				b.ReportMetric(float64(st.Footprint)/(1<<20), "footprintMB")
			})
		}
	}
}

// BenchmarkFootprintChurn measures footprint-over-time: sustained churn
// with periodic Compact (as rebalances do), reporting final footprint
// and fragmentation so regressions in reuse show up as metric drift,
// not just ns/op.
func BenchmarkFootprintChurn(b *testing.B) {
	for _, mode := range []Mode{ModeSizeClass, ModeFirstFit, ModeBump} {
		b.Run(mode.String(), func(b *testing.B) {
			a := NewAllocator(NewPool(1<<20, 0))
			defer a.Close()
			a.SetMode(mode)
			rng := rand.New(rand.NewPCG(3, 5))
			live := make([]Ref, 0, 512)
			for i := 0; i < b.N; i++ {
				if len(live) == cap(live) {
					idx := int(rng.Uint64() % uint64(len(live)))
					a.Free(live[idx])
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				r, err := a.Alloc(churnSizes[rng.Uint64()%uint64(len(churnSizes))])
				if err != nil {
					b.Fatal(err)
				}
				live = append(live, r)
				if i%8192 == 8191 {
					a.Compact()
				}
			}
			st := a.Stats()
			b.ReportMetric(float64(st.Footprint)/(1<<20), "footprintMB")
			b.ReportMetric(st.Fragmentation, "frag")
		})
	}
}

func BenchmarkBytesAccess(b *testing.B) {
	a := NewAllocator(NewPool(1<<20, 0))
	defer a.Close()
	r, _ := a.Alloc(256)
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		buf := a.Bytes(r)
		sink ^= buf[0]
	}
	_ = sink
}

func BenchmarkRefPack(b *testing.B) {
	var sink Ref
	for i := 0; i < b.N; i++ {
		sink = MakeRef(i%MaxBlocks, i&0x3ffffff, 128)
	}
	_ = sink
}
