package arena

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"oakmap/internal/faultpoint"
)

func TestRefPackRoundTrip(t *testing.T) {
	f := func(block uint16, offset, length uint32) bool {
		b := int(block) % MaxBlocks
		o := int(offset) % MaxBlockSize
		l := int(length) % (MaxAllocSize + 1)
		r := MakeRef(b, o, l)
		return r.Block() == b && r.Offset() == o && r.Len() == l && !r.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefNil(t *testing.T) {
	if !NilRef.IsNil() {
		t.Fatal("NilRef must be nil")
	}
	if MakeRef(0, 0, 0).IsNil() {
		t.Fatal("block 0 / offset 0 / length 0 must be distinct from nil")
	}
	if NilRef.String() != "ref(nil)" {
		t.Fatalf("String = %q", NilRef.String())
	}
}

func TestRefOutOfRangePanics(t *testing.T) {
	for _, tc := range []struct{ b, o, l int }{
		{MaxBlocks, 0, 0},
		{-1, 0, 0},
		{0, MaxBlockSize, 0},
		{0, -1, 0},
		{0, 0, MaxAllocSize + 1},
		{0, 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeRef(%d,%d,%d) did not panic", tc.b, tc.o, tc.l)
				}
			}()
			MakeRef(tc.b, tc.o, tc.l)
		}()
	}
}

func TestAllocatorBasic(t *testing.T) {
	p := NewPool(4096, 0)
	a := NewAllocator(p)
	defer a.Close()
	r1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 100 {
		t.Fatalf("len = %d", r1.Len())
	}
	b := a.Bytes(r1)
	if len(b) != 100 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	for i := range b {
		b[i] = 0xAB
	}
	// A second allocation must not overlap the first.
	r2, _ := a.Alloc(50)
	b2 := a.Bytes(r2)
	for i := range b2 {
		b2[i] = 0xCD
	}
	for i, v := range a.Bytes(r1) {
		if v != 0xAB {
			t.Fatalf("overlap at %d: %x", i, v)
		}
	}
}

func TestAllocatorWrite(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	data := []byte("hello world")
	r, err := a.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes(r)) != "hello world" {
		t.Fatal("Write content mismatch")
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(NewPool(1024, 0))
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) should fail")
	}
	if _, err := a.Alloc(2048); err != ErrTooLarge {
		t.Fatal("oversized alloc should fail with ErrTooLarge")
	}
	a.Close()
	if _, err := a.Alloc(8); err != ErrClosed {
		t.Fatalf("alloc after close: %v", err)
	}
	a.Close() // double close is a no-op
}

func TestAllocatorGrowsBlocks(t *testing.T) {
	p := NewPool(1024, 0)
	a := NewAllocator(p)
	defer a.Close()
	refs := make([]Ref, 0, 100)
	for i := 0; i < 100; i++ {
		r, err := a.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	st := a.Stats()
	if st.Blocks < 10 {
		t.Fatalf("expected ≥10 blocks, got %d", st.Blocks)
	}
	if st.Footprint != int64(st.Blocks)*1024 {
		t.Fatalf("footprint %d != blocks×1024", st.Footprint)
	}
	// All refs remain valid and distinct.
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatal("duplicate ref")
		}
		seen[r] = true
		_ = a.Bytes(r)
	}
}

func TestFirstFitReuse(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	a.Alloc(64) // keep the bump pointer moving
	live := a.LiveBytes()
	a.Free(r1)
	if a.LiveBytes() != live-64 {
		t.Fatalf("LiveBytes after free = %d", a.LiveBytes())
	}
	// The freed span is reused first-fit.
	r3, _ := a.Alloc(64)
	if r3.Block() != r1.Block() || r3.Offset() != r1.Offset() {
		t.Fatalf("first-fit did not reuse: %v vs %v", r3, r1)
	}
	// A smaller allocation splits the span.
	a.Free(r3)
	r4, _ := a.Alloc(32)
	if r4.Offset() != r1.Offset() {
		t.Fatalf("split head misplaced: %v", r4)
	}
	r5, _ := a.Alloc(24)
	if r5.Offset() != r1.Offset()+32 {
		t.Fatalf("split tail misplaced: %v", r5)
	}
}

func TestBumpOnlyMode(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	a.SetFirstFit(false)
	r1, _ := a.Alloc(64)
	a.Free(r1)
	r2, _ := a.Alloc(64)
	if r2.Offset() == r1.Offset() && r2.Block() == r1.Block() {
		t.Fatal("bump-only mode must not reuse freed spans")
	}
	if a.Stats().FreeSpans != 0 {
		t.Fatal("bump-only mode must not keep a free list")
	}
}

func TestCompactCoalesces(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	var refs []Ref
	for i := 0; i < 8; i++ {
		r, _ := a.Alloc(32)
		refs = append(refs, r)
	}
	for _, r := range refs {
		a.Free(r)
	}
	if spans := a.Compact(); spans != 1 {
		t.Fatalf("Compact left %d spans; want 1 contiguous span", spans)
	}
}

func TestPoolRecycling(t *testing.T) {
	p := NewPool(1024, 0)
	a1 := NewAllocator(p)
	for i := 0; i < 10; i++ {
		a1.Alloc(512)
	}
	created := p.Stats().BlocksCreated
	a1.Close()
	if p.Stats().BlocksLoaned != 0 {
		t.Fatal("blocks not returned on Close")
	}
	a2 := NewAllocator(p)
	defer a2.Close()
	for i := 0; i < 10; i++ {
		a2.Alloc(512)
	}
	if p.Stats().BlocksCreated != created {
		t.Fatalf("pool created new blocks (%d → %d) instead of recycling",
			created, p.Stats().BlocksCreated)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(1024, 2048) // at most 2 blocks
	a := NewAllocator(p)
	defer a.Close()
	a.Alloc(1024)
	a.Alloc(1024)
	if _, err := a.Alloc(1024); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestConcurrentAllocNoOverlap(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	const goroutines = 8
	const perG = 500
	var mu sync.Mutex
	all := make([]Ref, 0, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			local := make([]Ref, 0, perG)
			for i := 0; i < perG; i++ {
				n := 1 + int(rng.Uint64()%200)
				r, err := a.Alloc(n)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				// Stamp the region with the goroutine id; verify later.
				b := a.Bytes(r)
				for j := range b {
					b[j] = byte(g)
				}
				local = append(local, r)
				if rng.Uint64()%4 == 0 && len(local) > 0 {
					victim := int(rng.Uint64() % uint64(len(local)))
					a.Free(local[victim])
					local[victim] = local[len(local)-1]
					local = local[:len(local)-1]
				}
			}
			mu.Lock()
			for _, r := range local {
				all = append(all, r)
				// Verify the stamp survived: no other goroutine got
				// overlapping memory.
				for _, v := range a.Bytes(r) {
					if v != byte(g) {
						t.Errorf("stamp clobbered: got %d want %d", v, g)
						break
					}
				}
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	// Live refs must be pairwise disjoint.
	type spanKey struct{ b, o int }
	used := map[spanKey]bool{}
	for _, r := range all {
		for off := r.Offset(); off < r.End(); off += 8 {
			k := spanKey{r.Block(), off &^ 7}
			if used[k] {
				t.Fatalf("overlapping live allocations at %v", k)
			}
			used[k] = true
		}
	}
}

func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator(NewPool(1<<14, 0))
		defer a.Close()
		var live []Ref
		var expect int64
		for _, op := range ops {
			n := int(op%512) + 1
			if op%3 == 0 && len(live) > 0 {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(r)
				expect -= int64(align8(r.Len()))
			} else {
				r, err := a.Alloc(n)
				if err != nil {
					return false
				}
				live = append(live, r)
				expect += int64(align8(n))
			}
		}
		return a.LiveBytes() == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPoolSingleton(t *testing.T) {
	if DefaultPool() != DefaultPool() {
		t.Fatal("DefaultPool must be a singleton")
	}
	if DefaultPool().BlockSize() != DefaultBlockSize {
		t.Fatal("DefaultPool block size mismatch")
	}
}

// TestZeroLengthFreeNoLeak pins the free-list span leak: Free of a
// zero-length ref used to append a span{length: 0} that no allocation
// could ever pop, growing the free list without bound under empty-value
// churn. The old allocator fails this with FreeSpans == 10000.
func TestZeroLengthFreeNoLeak(t *testing.T) {
	for _, mode := range []Mode{ModeSizeClass, ModeFirstFit} {
		t.Run(mode.String(), func(t *testing.T) {
			a := NewAllocator(NewPool(4096, 0))
			defer a.Close()
			a.SetMode(mode)
			base := a.Stats().FreeSpans
			for i := 0; i < 10000; i++ {
				r, err := a.Alloc(0)
				if err != nil {
					t.Fatal(err)
				}
				a.Free(r)
			}
			if spans := a.Stats().FreeSpans; spans > base {
				t.Fatalf("free list grew by %d degenerate spans freeing empty values", spans-base)
			}
			if a.LiveBytes() != 0 {
				t.Fatalf("LiveBytes = %d", a.LiveBytes())
			}
		})
	}
}

func TestClassMath(t *testing.T) {
	for _, tc := range []struct{ n, floor, ceil int }{
		{8, 0, 0},
		{16, 1, 1},
		{24, 1, 2},
		{64, 3, 3},
		{104, 3, 4},
		{4096, 9, 9},
		{4104, 9, -1}, // above maxClassSize: no ceil class
		{8191, 9, -1},
	} {
		if got := floorClass(tc.n); got != tc.floor {
			t.Errorf("floorClass(%d) = %d, want %d", tc.n, got, tc.floor)
		}
		if tc.ceil >= 0 {
			if got := ceilClass(tc.n); got != tc.ceil {
				t.Errorf("ceilClass(%d) = %d, want %d", tc.n, got, tc.ceil)
			}
		}
	}
	for c := 0; c < numClasses; c++ {
		if classSize(c) != 8<<c {
			t.Fatalf("classSize(%d) = %d", c, classSize(c))
		}
	}
}

// TestFragmentationReuse: interleaved small frees followed by a larger
// allocation must reuse the coalesced space instead of growing a new
// block. The rescue path (Compact-and-retry before growth) makes this
// automatic — Footprint stays flat.
func TestFragmentationReuse(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	var refs []Ref
	for i := 0; i < 64; i++ { // fills the 4096B block exactly
		r, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	// Free in an interleaved order so no two consecutive frees coalesce
	// trivially on insert.
	for i := 0; i < 64; i += 2 {
		a.Free(refs[i])
	}
	for i := 1; i < 64; i += 2 {
		a.Free(refs[i])
	}
	before := a.Stats().Footprint
	r, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Footprint; got != before {
		t.Fatalf("footprint grew %d → %d: large alloc did not reuse coalesced space", before, got)
	}
	if r.Len() != 1024 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestLargeSpanCoalescing: adjacent large frees must merge on insert
// (address-ordered coalescing), firing the arena/coalesce point.
func TestLargeSpanCoalescing(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	FpCoalesce.Arm(faultpoint.Never()) // count hits without firing
	defer FpCoalesce.Disarm()
	r1, _ := a.Alloc(8192)
	r2, _ := a.Alloc(8192)
	r3, _ := a.Alloc(8192)
	a.Free(r1)
	a.Free(r3) // not adjacent to r1: no merge yet
	st := a.Stats()
	if st.LargeSpans != 2 {
		t.Fatalf("LargeSpans = %d, want 2 before middle free", st.LargeSpans)
	}
	a.Free(r2) // bridges r1 and r3: both merges happen
	st = a.Stats()
	if st.LargeSpans != 1 {
		t.Fatalf("LargeSpans = %d, want 1 after coalescing", st.LargeSpans)
	}
	if st.LargeBytes != 3*8192 {
		t.Fatalf("LargeBytes = %d", st.LargeBytes)
	}
	if FpCoalesce.Hits() < 2 {
		t.Fatalf("coalesce point hit %d times, want ≥2", FpCoalesce.Hits())
	}
	// The merged span serves one big allocation.
	r, err := a.Alloc(3 * 8192)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offset() != r1.Offset() {
		t.Fatalf("merged span not reused: %v vs %v", r, r1)
	}
}

// TestLargeCarveMigratesToClass: carving a large span below largeMin
// must move the remainder onto a size class (arena/class-migrate).
func TestLargeCarveMigratesToClass(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	FpClassMigrate.Arm(faultpoint.Never())
	defer FpClassMigrate.Disarm()
	r, _ := a.Alloc(8192)
	a.Alloc(8) // keep the bump pointer off the freed range
	a.Free(r)
	// 8192 - 4104 = 4088 < largeMin: the remainder must leave the list.
	if _, err := a.Alloc(4104); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.LargeSpans != 0 {
		t.Fatalf("LargeSpans = %d, want 0 after carve-below-largeMin", st.LargeSpans)
	}
	if st.Classes[floorClass(4088)].Spans != 1 {
		t.Fatalf("remainder not migrated to class: %+v", st.Classes)
	}
	if FpClassMigrate.Hits() != 1 {
		t.Fatalf("class-migrate hits = %d", FpClassMigrate.Hits())
	}
}

func TestSizeClassStats(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	r2, _ := a.Alloc(64)
	r3, _ := a.Alloc(200)
	a.Free(r1)
	a.Free(r2)
	a.Free(r3)
	st := a.Stats()
	if st.Mode != ModeSizeClass {
		t.Fatalf("mode = %v", st.Mode)
	}
	if c := st.Classes[floorClass(64)]; c.Spans != 2 || c.Bytes != 128 || c.Size != 64 {
		t.Fatalf("64B class stats: %+v", c)
	}
	if c := st.Classes[floorClass(align8(200))]; c.Spans != 1 || c.Bytes != int64(align8(200)) {
		t.Fatalf("200B class stats: %+v", c)
	}
	if st.FreeSpans != 3 {
		t.Fatalf("FreeSpans = %d", st.FreeSpans)
	}
	wantFree := int64(128 + align8(200))
	if st.Fragmentation <= 0 || st.Fragmentation != float64(wantFree)/float64(st.Footprint) {
		t.Fatalf("Fragmentation = %v (free %d, footprint %d)", st.Fragmentation, wantFree, st.Footprint)
	}
}

// TestModeSwitchMigratesSpans: spans parked under one strategy must
// remain reusable after switching strategies.
func TestModeSwitchMigratesSpans(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	a.Alloc(64)
	a.Free(r1)
	a.SetMode(ModeFirstFit)
	r2, _ := a.Alloc(64)
	if r2.Offset() != r1.Offset() || r2.Block() != r1.Block() {
		t.Fatalf("span lost switching to first-fit: %v vs %v", r2, r1)
	}
	a.Free(r2)
	a.SetMode(ModeSizeClass)
	r3, _ := a.Alloc(64)
	if r3.Offset() != r1.Offset() || r3.Block() != r1.Block() {
		t.Fatalf("span lost switching back to size-class: %v vs %v", r3, r1)
	}
}

// TestRescueExactFit: a freed span whose length is not a power of two
// parks below its ceil class; when the pool is exhausted, the rescue
// scan must still find and reuse it (regression for segregated-fit
// missing exact fits the flat scan would have found).
func TestRescueExactFit(t *testing.T) {
	p := NewPool(1024, 1024) // a single block, ever
	a := NewAllocator(p)
	defer a.Close()
	var refs []Ref
	for i := 0; i < 9; i++ { // 9 × 104 rounded bytes fill the block
		r, err := a.Alloc(100) // rounded to 104: floor class 64, ceil 128
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	// Free alternating refs: non-adjacent, so coalescing cannot build a
	// ≥128B span — only the floor-class scan can find these exact fits.
	for i := 0; i < len(refs); i += 2 {
		a.Free(refs[i])
	}
	r, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("alloc after freeing exact-fit spans: %v", err)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestPoolRetentionCap(t *testing.T) {
	p := NewPool(1024, 0)
	p.SetMaxRetainedBlocks(2)
	a := NewAllocator(p)
	for i := 0; i < 5; i++ {
		if _, err := a.Alloc(1024); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	st := p.Stats()
	if st.BlocksRetained != 2 {
		t.Fatalf("BlocksRetained = %d, want 2", st.BlocksRetained)
	}
	if st.BytesRetained != 2048 {
		t.Fatalf("BytesRetained = %d", st.BytesRetained)
	}
	if st.BlocksDropped != 3 {
		t.Fatalf("BlocksDropped = %d, want 3", st.BlocksDropped)
	}
	if st.BytesCapacity != 2048 {
		t.Fatalf("BytesCapacity = %d: dropped blocks must leave the budget", st.BytesCapacity)
	}
	// The freed budget is available again under a maxBytes cap.
	p2 := NewPool(1024, 3072)
	p2.SetMaxRetainedBlocks(1)
	a2 := NewAllocator(p2)
	a2.Alloc(1024)
	a2.Alloc(1024)
	a2.Alloc(1024)
	a2.Close() // retains 1, drops 2
	a3 := NewAllocator(p2)
	defer a3.Close()
	for i := 0; i < 3; i++ {
		if _, err := a3.Alloc(1024); err != nil {
			t.Fatalf("alloc %d after drop: %v", i, err)
		}
	}
	// Shrinking the cap trims the retained list immediately.
	p3 := NewPool(1024, 0)
	a4 := NewAllocator(p3)
	for i := 0; i < 4; i++ {
		a4.Alloc(1024)
	}
	a4.Close()
	p3.SetMaxRetainedBlocks(1)
	if st := p3.Stats(); st.BlocksRetained != 1 || st.BlocksDropped != 3 {
		t.Fatalf("after trim: %+v", st)
	}
}

// TestConcurrentClassChurn is the seeded alloc/free stress over every
// size class (8B through large spans), with scheduling jitter on the
// new coalesce/class-migrate fault points so the windows they guard are
// exercised; region stamps verify no two live allocations ever overlap.
func TestConcurrentClassChurn(t *testing.T) {
	for _, name := range []string{"arena/coalesce", "arena/class-migrate"} {
		jitter := faultpoint.Hook{Decide: func(hit int64) bool {
			if hit%16 == 0 {
				runtime.Gosched()
			}
			return false
		}}
		if err := faultpoint.Arm(name, jitter); err != nil {
			t.Fatal(err)
		}
	}
	defer faultpoint.DisarmAll()
	a := NewAllocator(NewPool(1<<20, 0))
	defer a.Close()
	sizes := []int{1, 8, 17, 64, 100, 500, 1000, 4000, 5000, 9000, 20000}
	const goroutines = 8
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xc0ffee))
			type live struct {
				ref   Ref
				stamp byte
			}
			var locals []live
			for i := 0; i < perG; i++ {
				n := sizes[rng.Uint64()%uint64(len(sizes))]
				r, err := a.Alloc(n)
				if err != nil {
					t.Errorf("alloc(%d): %v", n, err)
					return
				}
				stamp := byte(g)<<4 | byte(i&0xf)
				b := a.Bytes(r)
				for j := range b {
					b[j] = stamp
				}
				locals = append(locals, live{r, stamp})
				if rng.Uint64()%3 == 0 && len(locals) > 0 {
					v := int(rng.Uint64() % uint64(len(locals)))
					for j, x := range a.Bytes(locals[v].ref) {
						if x != locals[v].stamp {
							t.Errorf("g%d: stamp clobbered at +%d: %x != %x", g, j, x, locals[v].stamp)
							return
						}
					}
					a.Free(locals[v].ref)
					locals[v] = locals[len(locals)-1]
					locals = locals[:len(locals)-1]
				}
			}
			for _, l := range locals {
				for j, x := range a.Bytes(l.ref) {
					if x != l.stamp {
						t.Errorf("g%d: final stamp clobbered at +%d", g, j)
						return
					}
				}
				a.Free(l.ref)
			}
		}(g)
	}
	wg.Wait()
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", a.LiveBytes())
	}
	// And the freed space coalesces back down.
	spans := a.Compact()
	st := a.Stats()
	if spans != st.FreeSpans {
		t.Fatalf("Compact reported %d spans, stats say %d", spans, st.FreeSpans)
	}
}

func TestZeroLengthAllocation(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.IsNil() || r.Len() != 0 {
		t.Fatalf("zero alloc ref = %v", r)
	}
	if b := a.Bytes(r); len(b) != 0 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	a.Free(r) // must not corrupt accounting
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	// Zero allocs interleave safely with real ones.
	r1, _ := a.Alloc(16)
	r0, _ := a.Alloc(0)
	r2, _ := a.Alloc(16)
	if r1 == r2 || r0.Len() != 0 {
		t.Fatal("interleaved zero alloc broke layout")
	}
}
