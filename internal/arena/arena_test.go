package arena

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestRefPackRoundTrip(t *testing.T) {
	f := func(block uint16, offset, length uint32) bool {
		b := int(block) % MaxBlocks
		o := int(offset) % MaxBlockSize
		l := int(length) % (MaxAllocSize + 1)
		r := MakeRef(b, o, l)
		return r.Block() == b && r.Offset() == o && r.Len() == l && !r.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefNil(t *testing.T) {
	if !NilRef.IsNil() {
		t.Fatal("NilRef must be nil")
	}
	if MakeRef(0, 0, 0).IsNil() {
		t.Fatal("block 0 / offset 0 / length 0 must be distinct from nil")
	}
	if NilRef.String() != "ref(nil)" {
		t.Fatalf("String = %q", NilRef.String())
	}
}

func TestRefOutOfRangePanics(t *testing.T) {
	for _, tc := range []struct{ b, o, l int }{
		{MaxBlocks, 0, 0},
		{-1, 0, 0},
		{0, MaxBlockSize, 0},
		{0, -1, 0},
		{0, 0, MaxAllocSize + 1},
		{0, 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeRef(%d,%d,%d) did not panic", tc.b, tc.o, tc.l)
				}
			}()
			MakeRef(tc.b, tc.o, tc.l)
		}()
	}
}

func TestAllocatorBasic(t *testing.T) {
	p := NewPool(4096, 0)
	a := NewAllocator(p)
	defer a.Close()
	r1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 100 {
		t.Fatalf("len = %d", r1.Len())
	}
	b := a.Bytes(r1)
	if len(b) != 100 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	for i := range b {
		b[i] = 0xAB
	}
	// A second allocation must not overlap the first.
	r2, _ := a.Alloc(50)
	b2 := a.Bytes(r2)
	for i := range b2 {
		b2[i] = 0xCD
	}
	for i, v := range a.Bytes(r1) {
		if v != 0xAB {
			t.Fatalf("overlap at %d: %x", i, v)
		}
	}
}

func TestAllocatorWrite(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	data := []byte("hello world")
	r, err := a.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes(r)) != "hello world" {
		t.Fatal("Write content mismatch")
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(NewPool(1024, 0))
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) should fail")
	}
	if _, err := a.Alloc(2048); err != ErrTooLarge {
		t.Fatal("oversized alloc should fail with ErrTooLarge")
	}
	a.Close()
	if _, err := a.Alloc(8); err != ErrClosed {
		t.Fatalf("alloc after close: %v", err)
	}
	a.Close() // double close is a no-op
}

func TestAllocatorGrowsBlocks(t *testing.T) {
	p := NewPool(1024, 0)
	a := NewAllocator(p)
	defer a.Close()
	refs := make([]Ref, 0, 100)
	for i := 0; i < 100; i++ {
		r, err := a.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	st := a.Stats()
	if st.Blocks < 10 {
		t.Fatalf("expected ≥10 blocks, got %d", st.Blocks)
	}
	if st.Footprint != int64(st.Blocks)*1024 {
		t.Fatalf("footprint %d != blocks×1024", st.Footprint)
	}
	// All refs remain valid and distinct.
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatal("duplicate ref")
		}
		seen[r] = true
		_ = a.Bytes(r)
	}
}

func TestFirstFitReuse(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	a.Alloc(64) // keep the bump pointer moving
	live := a.LiveBytes()
	a.Free(r1)
	if a.LiveBytes() != live-64 {
		t.Fatalf("LiveBytes after free = %d", a.LiveBytes())
	}
	// The freed span is reused first-fit.
	r3, _ := a.Alloc(64)
	if r3.Block() != r1.Block() || r3.Offset() != r1.Offset() {
		t.Fatalf("first-fit did not reuse: %v vs %v", r3, r1)
	}
	// A smaller allocation splits the span.
	a.Free(r3)
	r4, _ := a.Alloc(32)
	if r4.Offset() != r1.Offset() {
		t.Fatalf("split head misplaced: %v", r4)
	}
	r5, _ := a.Alloc(24)
	if r5.Offset() != r1.Offset()+32 {
		t.Fatalf("split tail misplaced: %v", r5)
	}
}

func TestBumpOnlyMode(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	a.SetFirstFit(false)
	r1, _ := a.Alloc(64)
	a.Free(r1)
	r2, _ := a.Alloc(64)
	if r2.Offset() == r1.Offset() && r2.Block() == r1.Block() {
		t.Fatal("bump-only mode must not reuse freed spans")
	}
	if a.Stats().FreeSpans != 0 {
		t.Fatal("bump-only mode must not keep a free list")
	}
}

func TestCompactCoalesces(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	var refs []Ref
	for i := 0; i < 8; i++ {
		r, _ := a.Alloc(32)
		refs = append(refs, r)
	}
	for _, r := range refs {
		a.Free(r)
	}
	if spans := a.Compact(); spans != 1 {
		t.Fatalf("Compact left %d spans; want 1 contiguous span", spans)
	}
}

func TestPoolRecycling(t *testing.T) {
	p := NewPool(1024, 0)
	a1 := NewAllocator(p)
	for i := 0; i < 10; i++ {
		a1.Alloc(512)
	}
	created := p.Stats().BlocksCreated
	a1.Close()
	if p.Stats().BlocksLoaned != 0 {
		t.Fatal("blocks not returned on Close")
	}
	a2 := NewAllocator(p)
	defer a2.Close()
	for i := 0; i < 10; i++ {
		a2.Alloc(512)
	}
	if p.Stats().BlocksCreated != created {
		t.Fatalf("pool created new blocks (%d → %d) instead of recycling",
			created, p.Stats().BlocksCreated)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(1024, 2048) // at most 2 blocks
	a := NewAllocator(p)
	defer a.Close()
	a.Alloc(1024)
	a.Alloc(1024)
	if _, err := a.Alloc(1024); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestConcurrentAllocNoOverlap(t *testing.T) {
	a := NewAllocator(NewPool(1<<16, 0))
	defer a.Close()
	const goroutines = 8
	const perG = 500
	var mu sync.Mutex
	all := make([]Ref, 0, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			local := make([]Ref, 0, perG)
			for i := 0; i < perG; i++ {
				n := 1 + int(rng.Uint64()%200)
				r, err := a.Alloc(n)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				// Stamp the region with the goroutine id; verify later.
				b := a.Bytes(r)
				for j := range b {
					b[j] = byte(g)
				}
				local = append(local, r)
				if rng.Uint64()%4 == 0 && len(local) > 0 {
					victim := int(rng.Uint64() % uint64(len(local)))
					a.Free(local[victim])
					local[victim] = local[len(local)-1]
					local = local[:len(local)-1]
				}
			}
			mu.Lock()
			for _, r := range local {
				all = append(all, r)
				// Verify the stamp survived: no other goroutine got
				// overlapping memory.
				for _, v := range a.Bytes(r) {
					if v != byte(g) {
						t.Errorf("stamp clobbered: got %d want %d", v, g)
						break
					}
				}
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	// Live refs must be pairwise disjoint.
	type spanKey struct{ b, o int }
	used := map[spanKey]bool{}
	for _, r := range all {
		for off := r.Offset(); off < r.End(); off += 8 {
			k := spanKey{r.Block(), off &^ 7}
			if used[k] {
				t.Fatalf("overlapping live allocations at %v", k)
			}
			used[k] = true
		}
	}
}

func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator(NewPool(1<<14, 0))
		defer a.Close()
		var live []Ref
		var expect int64
		for _, op := range ops {
			n := int(op%512) + 1
			if op%3 == 0 && len(live) > 0 {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(r)
				expect -= int64(align8(r.Len()))
			} else {
				r, err := a.Alloc(n)
				if err != nil {
					return false
				}
				live = append(live, r)
				expect += int64(align8(n))
			}
		}
		return a.LiveBytes() == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPoolSingleton(t *testing.T) {
	if DefaultPool() != DefaultPool() {
		t.Fatal("DefaultPool must be a singleton")
	}
	if DefaultPool().BlockSize() != DefaultBlockSize {
		t.Fatal("DefaultPool block size mismatch")
	}
}

func TestZeroLengthAllocation(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.IsNil() || r.Len() != 0 {
		t.Fatalf("zero alloc ref = %v", r)
	}
	if b := a.Bytes(r); len(b) != 0 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	a.Free(r) // must not corrupt accounting
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	// Zero allocs interleave safely with real ones.
	r1, _ := a.Alloc(16)
	r0, _ := a.Alloc(0)
	r2, _ := a.Alloc(16)
	if r1 == r2 || r0.Len() != 0 {
		t.Fatal("interleaved zero alloc broke layout")
	}
}
