package arena

import (
	"math/bits"
	"sort"
	"sync"

	"oakmap/internal/telemetry"
)

// Size-class layout (ModeSizeClass, the default). Classes are powers of
// two from 8B (the alignment quantum) to 4KiB; a free span of length L <
// largeMin is parked on the class of its floor power of two, so every
// span in class c is at least classSize(c) bytes and a pop from any
// class ≥ ceilClass(r) is guaranteed to fit a request of r bytes without
// scanning. Spans of largeMin bytes or more live on a single
// address-ordered list that coalesces adjacent spans on insert — the
// only place coalescing is needed eagerly, because large spans are what
// rebalances and big-value churn produce and re-request.
const (
	minClassShift = 3  // 8 B
	maxClassShift = 12 // 4 KiB — largest segregated class
	numClasses    = maxClassShift - minClassShift + 1
	maxClassSize  = 1 << maxClassShift
	// largeMin is the smallest span length kept on the large list.
	largeMin = maxClassSize << 1
)

// classSize returns the lower-bound span length of class c.
func classSize(c int) int { return 1 << (minClassShift + c) }

// floorClass maps a span length in [8, largeMin) to the class that holds
// it: the largest class whose size does not exceed n.
func floorClass(n int) int {
	c := bits.Len(uint(n)) - 1 - minClassShift
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// ceilClass maps a request of rounded size n ≤ maxClassSize to the
// smallest class every span of which is guaranteed to fit it.
func ceilClass(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	return bits.Len(uint(n-1)) - minClassShift
}

// classList is one size class's LIFO of free spans. Each class has its
// own lock, so concurrent Alloc/Free traffic in different classes never
// serializes; the trailing pad keeps neighboring classes on separate
// cache lines.
type classList struct {
	mu    sync.Mutex
	spans []span //oak:guarded-by mu
	bytes int64  //oak:guarded-by mu
	_     [24]byte
}

// setClassBit / clearClassBit maintain the occupancy bitmap consulted by
// classAlloc to skip empty classes without taking their locks. Both are
// called with the class's lock held, so the bit tracks emptiness
// exactly. (CAS loops rather than atomic Or/And: those methods postdate
// this module's go directive.)
func (a *Allocator) setClassBit(c int) {
	for {
		old := a.classBits.Load()
		if old&(1<<c) != 0 || a.classBits.CompareAndSwap(old, old|1<<c) {
			return
		}
	}
}

func (a *Allocator) clearClassBit(c int) {
	for {
		old := a.classBits.Load()
		if old&(1<<c) == 0 || a.classBits.CompareAndSwap(old, old&^(1<<c)) {
			return
		}
	}
}

// classPush parks a span of length in [8, largeMin) on its floor class.
func (a *Allocator) classPush(s span) {
	c := floorClass(s.length)
	cl := &a.classes[c]
	cl.mu.Lock()
	if a.closed.Load() {
		cl.mu.Unlock()
		return
	}
	cl.spans = append(cl.spans, s)
	cl.bytes += int64(s.length)
	if len(cl.spans) == 1 {
		a.setClassBit(c)
	}
	cl.mu.Unlock()
}

// reinsert routes a span (a free, a split remainder, or a migrated large
// tail) to its home structure in size-class mode.
func (a *Allocator) reinsert(s span) {
	if s.length >= largeMin {
		a.largeInsert(s)
	} else {
		a.classPush(s)
	}
}

// migrateSpan parks a span that is changing lists — a split remainder
// re-parked after a pop, or a large tail carved below largeMin — firing
// the fault point and the flight-recorder event that track free-list
// class migrations.
func (a *Allocator) migrateSpan(s span) {
	FpClassMigrate.Fire()
	a.tel.Load().Event(telemetry.EvClassMigrate, uint64(s.length), 0, 0)
	a.reinsert(s)
}

// classAlloc serves a request of rounded size ≤ maxClassSize from the
// segregated classes: pop from the smallest non-empty class that
// guarantees a fit, carve the head, and route the remainder back. The
// hot case (free span of the exact class) is one lock, one pop.
func (a *Allocator) classAlloc(n, rounded int) (Ref, bool) {
	start := ceilClass(rounded)
	for {
		avail := a.classBits.Load() &^ (uint32(1)<<start - 1)
		if avail == 0 {
			return NilRef, false
		}
		c := bits.TrailingZeros32(avail)
		cl := &a.classes[c]
		cl.mu.Lock()
		m := len(cl.spans)
		if m == 0 {
			// Raced with the pop that emptied the class; its bit is
			// already clear (or about to be) — retry on a fresh view.
			cl.mu.Unlock()
			continue
		}
		s := cl.spans[m-1]
		cl.spans = cl.spans[:m-1]
		cl.bytes -= int64(s.length)
		if m == 1 {
			a.clearClassBit(c)
		}
		cl.mu.Unlock()
		a.dbg.noteAlloc(s.block, s.offset, rounded)
		if rest := s.length - rounded; rest >= 8 {
			a.migrateSpan(span{block: s.block, offset: s.offset + rounded, length: rest})
		}
		return MakeRef(s.block, s.offset, n), true
	}
}

// spanBefore orders spans by address (block, then offset).
func spanBefore(x, y span) bool {
	if x.block != y.block {
		return x.block < y.block
	}
	return x.offset < y.offset
}

// largeInsert adds s (length ≥ largeMin) to the sorted large list,
// merging with an adjacent predecessor and/or successor — address-
// ordered coalescing, so fragmentation among large spans heals on free
// rather than waiting for Compact.
func (a *Allocator) largeInsert(s span) {
	a.largeMu.Lock()
	defer a.largeMu.Unlock()
	if a.closed.Load() {
		return
	}
	i := sort.Search(len(a.large), func(i int) bool { return spanBefore(s, a.large[i]) })
	a.largeBytes += int64(s.length)
	if i > 0 {
		p := &a.large[i-1]
		if p.block == s.block && p.offset+p.length == s.offset {
			FpCoalesce.Fire()
			p.length += s.length
			if i < len(a.large) {
				n := a.large[i]
				if n.block == p.block && p.offset+p.length == n.offset {
					FpCoalesce.Fire()
					p.length += n.length
					a.large = append(a.large[:i], a.large[i+1:]...)
				}
			}
			return
		}
	}
	if i < len(a.large) {
		n := &a.large[i]
		if n.block == s.block && s.offset+s.length == n.offset {
			FpCoalesce.Fire()
			n.offset = s.offset
			n.length += s.length
			return
		}
	}
	a.large = append(a.large, span{})
	copy(a.large[i+1:], a.large[i:])
	a.large[i] = s
}

// largeAlloc serves a request from the large list, first-fit in address
// order (lowest-address span that fits — the policy that keeps high
// addresses free to coalesce). A span carved below largeMin migrates to
// a size class.
func (a *Allocator) largeAlloc(n, rounded int) (Ref, bool) {
	a.largeMu.Lock()
	if len(a.large) > 0 {
		FpFreeListScan.Fire()
	}
	for i := range a.large {
		s := a.large[i]
		if s.length < rounded {
			continue
		}
		rest := span{block: s.block, offset: s.offset + rounded, length: s.length - rounded}
		var migrate span
		if rest.length >= largeMin {
			a.large[i] = rest
			a.largeBytes -= int64(rounded)
		} else {
			a.large = append(a.large[:i], a.large[i+1:]...)
			a.largeBytes -= int64(s.length)
			if rest.length >= 8 {
				migrate = rest
			}
		}
		a.largeMu.Unlock()
		a.dbg.noteAlloc(s.block, s.offset, rounded)
		if migrate.length > 0 {
			// migrate.length < largeMin, so migrateSpan's reinsert is the
			// same classPush this site always performed.
			a.migrateSpan(migrate)
		}
		return MakeRef(s.block, s.offset, n), true
	}
	a.largeMu.Unlock()
	return NilRef, false
}

// flatAlloc is the paper-faithful first-fit scan (ModeFirstFit): one
// lock, O(free spans) — kept verbatim for the ablation comparison.
func (a *Allocator) flatAlloc(n, rounded int) (Ref, bool) {
	a.flatMu.Lock()
	if len(a.flat) > 0 {
		FpFreeListScan.Fire()
	}
	for i := range a.flat {
		s := &a.flat[i]
		if s.length >= rounded {
			ref := MakeRef(s.block, s.offset, n)
			a.dbg.noteAlloc(s.block, s.offset, rounded)
			s.offset += rounded
			s.length -= rounded
			if s.length == 0 {
				last := len(a.flat) - 1
				a.flat[i] = a.flat[last]
				a.flat = a.flat[:last]
			}
			a.flatMu.Unlock()
			return ref, true
		}
	}
	a.flatMu.Unlock()
	return NilRef, false
}

// flatPush appends a span to the flat first-fit list.
func (a *Allocator) flatPush(s span) {
	a.flatMu.Lock()
	if !a.closed.Load() {
		a.flat = append(a.flat, s)
	}
	a.flatMu.Unlock()
}

// classScan is the rescue path's first-fit scan of the floor class: a
// span whose length lies in [rounded, classSize(ceilClass)) is parked
// there, invisible to classAlloc's guaranteed-fit search, yet it may fit
// this exact request. O(class spans), taken only when bump allocation
// would otherwise grow a new block.
func (a *Allocator) classScan(n, rounded int) (Ref, bool) {
	if rounded >= largeMin {
		return NilRef, false
	}
	c := floorClass(rounded)
	cl := &a.classes[c]
	cl.mu.Lock()
	for i := range cl.spans {
		s := cl.spans[i]
		if s.length < rounded {
			continue
		}
		last := len(cl.spans) - 1
		cl.spans[i] = cl.spans[last]
		cl.spans = cl.spans[:last]
		cl.bytes -= int64(s.length)
		if last == 0 {
			a.clearClassBit(c)
		}
		cl.mu.Unlock()
		a.dbg.noteAlloc(s.block, s.offset, rounded)
		if rest := s.length - rounded; rest >= 8 {
			a.migrateSpan(span{block: s.block, offset: s.offset + rounded, length: rest})
		}
		return MakeRef(s.block, s.offset, n), true
	}
	cl.mu.Unlock()
	return NilRef, false
}

// rescueAlloc is the can't-bump slow path (size-class mode): scan the
// floor class for an exact fit, then coalesce everything and retry the
// classes — adjacent small fragments may assemble into a fitting span.
// Caller must not hold bumpMu (Compact takes migrateMu).
func (a *Allocator) rescueAlloc(n, rounded int) (Ref, bool) {
	if ref, ok := a.classScan(n, rounded); ok {
		return ref, true
	}
	a.Compact()
	if rounded <= maxClassSize {
		if ref, ok := a.classAlloc(n, rounded); ok {
			return ref, true
		}
	}
	if ref, ok := a.largeAlloc(n, rounded); ok {
		return ref, true
	}
	return a.classScan(n, rounded)
}

// drainAll removes and returns every parked span from every structure.
// The debug tracker is deliberately untouched: drained spans are still
// free, just privately held by the caller (Compact, SetMode, Close).
func (a *Allocator) drainAll() []span {
	var out []span
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		out = append(out, cl.spans...)
		cl.spans = nil
		cl.bytes = 0
		a.clearClassBit(c)
		cl.mu.Unlock()
	}
	a.largeMu.Lock()
	out = append(out, a.large...)
	a.large = nil
	a.largeBytes = 0
	a.largeMu.Unlock()
	a.flatMu.Lock()
	out = append(out, a.flat...)
	a.flat = nil
	a.flatMu.Unlock()
	return out
}
