package arena

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"oakmap/internal/faultpoint"
	"oakmap/internal/telemetry"
)

// Allocation errors.
var (
	ErrTooLarge  = errors.New("arena: allocation exceeds block size")
	ErrClosed    = errors.New("arena: allocator closed")
	ErrExhausted = errors.New("arena: allocator out of blocks")
	// ErrInjected is returned by Alloc when the arena/alloc-fail fault
	// point fires; it never occurs outside fault-injection runs.
	ErrInjected = errors.New("arena: injected allocation failure")
)

// Fault-injection points (no-ops unless a test arms them).
var (
	// FpAllocFail makes Alloc fail with ErrInjected, exercising the
	// callers' allocation-error unwind paths (key release, value
	// discard) that real workloads reach only at memory exhaustion.
	FpAllocFail = faultpoint.New("arena/alloc-fail")
	// FpFreeListScan is hit at the start of every linear free-list scan
	// (the flat first-fit list in ModeFirstFit, the large-span list in
	// ModeSizeClass), under that list's lock: a pausing hook widens the
	// lock hold to force free-list contention.
	FpFreeListScan = faultpoint.New("arena/freelist-scan")
	// FpCoalesce is hit each time two adjacent free spans merge (large-
	// list insert and Compact), under the owning lock: pausing here
	// stretches the coalescing window against concurrent alloc/free.
	FpCoalesce = faultpoint.New("arena/coalesce")
	// FpClassMigrate is hit when a span changes lists: a split remainder
	// re-parked after a pop, or a large span carved below largeMin moving
	// to a size class. The span is privately held at that instant, so a
	// pause here strands it from every allocation path — the window where
	// concurrent allocs must fall through to other spans or the bump
	// pointer rather than spin.
	FpClassMigrate = faultpoint.New("arena/class-migrate")
)

// Mode selects the allocator's free-space management strategy.
type Mode int32

const (
	// ModeSizeClass (the default) parks freed spans on segregated
	// power-of-two size-class LIFOs with per-class locks, plus one
	// address-ordered coalescing list for spans ≥ largeMin. Alloc and
	// Free are O(1) off the hot path and traffic in different classes
	// never shares a lock.
	ModeSizeClass Mode = iota
	// ModeFirstFit is the paper-faithful flat first-fit free list under
	// a single lock (§3.2), kept for ablation comparisons.
	ModeFirstFit
	// ModeBump disables reuse entirely: freed spans are dropped and only
	// accounting is updated.
	ModeBump
)

// String renders the mode for benchmarks and logs.
func (m Mode) String() string {
	switch m {
	case ModeSizeClass:
		return "size-class"
	case ModeFirstFit:
		return "first-fit"
	case ModeBump:
		return "bump-only"
	default:
		return "unknown"
	}
}

// span is a free range inside a block, kept on one of the allocator's
// free structures.
type span struct {
	block  int
	offset int
	length int
}

// Allocator carves variable-size ranges out of pool blocks on behalf of
// a single map instance. It is the paper's per-instance memory manager,
// rebuilt around segregated size-class free lists: fresh space comes
// from a bump pointer in the current block, freed space is parked per
// size class (or on the flat first-fit list of §3.2 in the ablation
// mode) and reused on the next fitting allocation.
//
// All methods are safe for concurrent use. Reads through Bytes take no
// locks: the block table is a fixed-size array of atomic pointers, so a
// Ref obtained from Alloc can be dereferenced by any goroutine. Close
// requires the same quiescence the Ref contract already imposes: any
// operation in flight at Close may produce a ref into a released block.
type Allocator struct {
	pool *Pool

	// blocks is an append-only table of blocks owned by this allocator.
	// Slots are published with atomic stores so Bytes can read without
	// locking.
	blocks    [MaxBlocks]atomic.Pointer[block]
	numBlocks atomic.Int32

	modeWord atomic.Int32
	closed   atomic.Bool

	// Bump state: the current block and its bump offset.
	bumpMu sync.Mutex
	cur    int //oak:guarded-by bumpMu — index of the block being bump-allocated
	top    int //oak:guarded-by bumpMu — bump offset in the current block

	// Size-class free lists (ModeSizeClass). classBits is the occupancy
	// bitmap: bit c set iff classes[c] is non-empty.
	classes   [numClasses]classList
	classBits atomic.Uint32

	// Large-span list (ModeSizeClass): sorted by address, coalescing.
	largeMu    sync.Mutex
	large      []span //oak:guarded-by largeMu
	largeBytes int64  //oak:guarded-by largeMu

	// Flat first-fit list (ModeFirstFit), unordered.
	flatMu sync.Mutex
	flat   []span //oak:guarded-by flatMu

	// migrateMu serializes whole-structure reshuffles (SetMode, Compact,
	// Close) against each other; Alloc/Free never take it.
	migrateMu sync.Mutex

	// dbg is the arenadebug double-free detector; a no-op without the
	// build tag.
	dbg debugTracker

	// reclaimer, when set, receives spans from Retire instead of their
	// being freed immediately (epoch-based deferred reclamation).
	reclaimer atomic.Pointer[reclaimerBox]

	// Accounting counters are sharded (telemetry.Counter): every worker
	// bumps them on every Alloc/Free, and the old single atomic words
	// were the allocator's last all-threads shared cache lines. Reads
	// (Stats, LiveBytes) merge the stripes — a weak snapshot, fine for
	// accounting.
	allocated telemetry.Counter // live bytes handed out
	freed     telemetry.Counter // bytes returned via Free
	requests  telemetry.Counter // number of Alloc calls

	// tel, when set, receives block-grow/class-migrate events and
	// Compact/rescue durations.
	tel atomic.Pointer[telemetry.Recorder]
}

// NewAllocator creates an allocator drawing from pool, in ModeSizeClass.
func NewAllocator(pool *Pool) *Allocator {
	return &Allocator{pool: pool, cur: -1}
}

// loadMode returns the current strategy.
func (a *Allocator) loadMode() Mode { return Mode(a.modeWord.Load()) }

// SetTelemetry attaches a recorder: block growth and free-list class
// migrations become flight-recorder events, Compact and the rescue path
// are timed. Safe to call concurrently with live operations; nil
// detaches.
func (a *Allocator) SetTelemetry(r *telemetry.Recorder) {
	a.tel.Store(r)
}

// SetMode switches the free-space strategy, migrating any parked spans
// into the new structure (dropping them for ModeBump). Intended for
// setup and ablation runs, not hot-path flipping.
func (a *Allocator) SetMode(m Mode) {
	a.migrateMu.Lock()
	defer a.migrateMu.Unlock()
	if Mode(a.modeWord.Swap(int32(m))) == m {
		return
	}
	spans := a.drainAll()
	switch m {
	case ModeSizeClass:
		for _, s := range spans {
			a.reinsert(s)
		}
	case ModeFirstFit:
		for _, s := range spans {
			a.flatPush(s)
		}
	case ModeBump:
		// Reuse disabled: parked spans are dropped (they are already
		// counted as freed).
	}
}

// SetFirstFit is the legacy ablation switch: on selects the paper's flat
// first-fit list, off disables reuse (pure bump allocation). New code
// should use SetMode.
func (a *Allocator) SetFirstFit(on bool) {
	if on {
		a.SetMode(ModeFirstFit)
	} else {
		a.SetMode(ModeBump)
	}
}

// align8 rounds n up to a multiple of 8. Allocations are 8-byte aligned
// to keep value headers and numeric fields naturally aligned and to bound
// fragmentation from odd-sized keys.
func align8(n int) int { return (n + 7) &^ 7 }

// Alloc reserves n bytes and returns a reference to them. The returned
// range has exactly length n; internally the reservation is rounded up to
// 8 bytes. Alloc never returns memory that overlaps a live allocation.
func (a *Allocator) Alloc(n int) (Ref, error) {
	if n < 0 {
		return NilRef, errors.New("arena: negative allocation size")
	}
	if n == 0 {
		// Zero-length objects (empty keys/values) occupy no space but
		// need a valid, non-nil reference.
		a.bumpMu.Lock()
		if a.closed.Load() {
			a.bumpMu.Unlock()
			return NilRef, ErrClosed
		}
		if a.cur < 0 {
			if err := a.growLocked(); err != nil {
				a.bumpMu.Unlock()
				return NilRef, err
			}
		}
		ref := MakeRef(a.cur, a.top, 0)
		a.bumpMu.Unlock()
		return ref, nil
	}
	if n > a.pool.blockSize || n > MaxAllocSize {
		return NilRef, ErrTooLarge
	}
	if FpAllocFail.Fire() {
		return NilRef, ErrInjected
	}
	rounded := align8(n)
	a.requests.Add(1)
	if a.closed.Load() {
		return NilRef, ErrClosed
	}
	switch a.loadMode() {
	case ModeSizeClass:
		if rounded <= maxClassSize {
			if ref, ok := a.classAlloc(n, rounded); ok {
				a.allocated.Add(int64(rounded))
				return ref, nil
			}
		}
		if ref, ok := a.largeAlloc(n, rounded); ok {
			a.allocated.Add(int64(rounded))
			return ref, nil
		}
	case ModeFirstFit:
		if ref, ok := a.flatAlloc(n, rounded); ok {
			a.allocated.Add(int64(rounded))
			return ref, nil
		}
	}
	// Bump path. Before a growth would acquire a fresh block, the
	// size-class mode gets one rescue pass (floor-class scan, then
	// coalesce-and-retry): exact-fit spans hiding below their ceil class
	// and coalescible fragments must be reused before the footprint
	// grows — and before exhaustion is declared.
	rescued := false
	for {
		a.bumpMu.Lock()
		if a.closed.Load() {
			a.bumpMu.Unlock()
			return NilRef, ErrClosed
		}
		if a.cur < 0 || a.top+rounded > a.pool.blockSize {
			if !rescued && a.loadMode() == ModeSizeClass {
				rescued = true
				a.bumpMu.Unlock()
				tick := a.tel.Load().Span(telemetry.OpArenaRescue)
				ref, ok := a.rescueAlloc(n, rounded)
				tick.Done()
				if ok {
					a.allocated.Add(int64(rounded))
					return ref, nil
				}
				continue
			}
			if err := a.growLocked(); err != nil {
				a.bumpMu.Unlock()
				return NilRef, err
			}
		}
		ref := MakeRef(a.cur, a.top, n)
		a.top += rounded
		a.bumpMu.Unlock()
		a.allocated.Add(int64(rounded))
		return ref, nil
	}
}

// growLocked acquires a fresh block from the pool. Caller holds a.bumpMu
// (never any list lock, so the leftover insert below cannot deadlock).
func (a *Allocator) growLocked() error {
	idx := int(a.numBlocks.Load())
	if idx >= MaxBlocks {
		return ErrExhausted
	}
	// The remainder of the current block, if any, joins the free
	// structures so it is not stranded.
	if a.cur >= 0 {
		if rest := a.pool.blockSize - a.top; rest >= 8 {
			leftover := span{block: a.cur, offset: a.top, length: rest}
			switch a.loadMode() {
			case ModeSizeClass:
				a.dbg.noteFree(leftover.block, leftover.offset, leftover.length)
				a.reinsert(leftover)
			case ModeFirstFit:
				a.dbg.noteFree(leftover.block, leftover.offset, leftover.length)
				a.flatPush(leftover)
			}
		}
	}
	b, err := a.pool.acquire()
	if err != nil {
		return err
	}
	a.blocks[idx].Store(b)
	a.numBlocks.Store(int32(idx + 1))
	a.cur = idx
	a.top = 0
	a.tel.Load().Event(telemetry.EvBlockGrow, uint64(idx+1), uint64(a.pool.blockSize), 0)
	return nil
}

// Reclaimer defers span frees until no concurrent reader can still
// hold a reference (in Oak: the epoch domain's limbo lists). RetireSpan
// takes ownership of the span and must eventually route it back to
// Free on the same allocator.
type Reclaimer interface {
	RetireSpan(ref Ref)
}

// reclaimerBox wraps the interface so it fits an atomic.Pointer.
type reclaimerBox struct{ r Reclaimer }

// SetReclaimer installs the deferred-reclamation sink used by Retire.
// Intended for map construction; may be reset to nil in tests.
func (a *Allocator) SetReclaimer(r Reclaimer) {
	if r == nil {
		a.reclaimer.Store(nil)
		return
	}
	a.reclaimer.Store(&reclaimerBox{r: r})
}

// Retire hands a span whose last reference was just unlinked to the
// deferred-reclamation sink; the span returns to the free structures
// only after the reclaimer's grace period elapses, so readers that
// still hold the ref under an epoch pin remain safe. Without a
// reclaimer installed, Retire degrades to an immediate Free (the caller
// must then guarantee quiescence itself, as with Free).
func (a *Allocator) Retire(ref Ref) {
	if ref.IsNil() {
		return
	}
	if box := a.reclaimer.Load(); box != nil {
		box.r.RetireSpan(ref)
		return
	}
	a.Free(ref)
}

// Free returns the range behind ref to the free structures. The caller
// must guarantee no live reader can still dereference ref (in Oak this
// is established by the value-header locking protocol, or by routing
// the span through Retire and the epoch grace period first).
func (a *Allocator) Free(ref Ref) {
	if ref.IsNil() {
		return
	}
	rounded := align8(ref.Len())
	a.freed.Add(int64(rounded))
	a.allocated.Add(int64(-rounded))
	// A zero-length ref owns no bytes: parking it would add a degenerate
	// span that no allocation can ever pop (it used to leak one free-list
	// slot per empty-value free). Mirrors growLocked's rest >= 8 guard.
	if rounded == 0 || a.closed.Load() {
		return
	}
	a.dbg.noteFree(ref.Block(), ref.Offset(), rounded)
	s := span{block: ref.Block(), offset: ref.Offset(), length: rounded}
	switch a.loadMode() {
	case ModeSizeClass:
		a.reinsert(s)
	case ModeFirstFit:
		a.flatPush(s)
	case ModeBump:
		// Reuse disabled: accounting only.
	}
}

// Bytes returns the byte range behind ref. The slice aliases the block's
// storage: writes through it are visible to every reader of the same ref.
// Bytes performs no synchronization; Oak's value headers provide it.
func (a *Allocator) Bytes(ref Ref) []byte {
	b := a.blocks[ref.Block()].Load()
	return b.buf[ref.Offset():ref.End():ref.End()]
}

// Write copies data into a freshly allocated range and returns its ref.
func (a *Allocator) Write(data []byte) (Ref, error) {
	ref, err := a.Alloc(len(data))
	if err != nil {
		return NilRef, err
	}
	copy(a.Bytes(ref), data)
	return ref, nil
}

// ClassStats is one size class's occupancy snapshot.
type ClassStats struct {
	Size  int   // class lower-bound span length in bytes
	Spans int   // spans parked on this class
	Bytes int64 // bytes parked on this class
}

// Stats is a snapshot of the allocator's accounting.
type Stats struct {
	LiveBytes    int64 // currently allocated (rounded) bytes
	FreedBytes   int64 // cumulative bytes freed
	Footprint    int64 // bytes of blocks held from the pool
	Blocks       int
	AllocCalls   int64
	FreeSpans    int   // spans across every free structure
	FreeCapacity int64 // bytes reusable: free structures + bump tail

	Mode       Mode
	Classes    [numClasses]ClassStats // per-class occupancy (ModeSizeClass)
	LargeSpans int                    // spans on the large coalescing list
	LargeBytes int64
	// Fragmentation is the fraction of the footprint parked on free
	// structures: bytes that are held from the pool and freed but only
	// reusable for fitting sizes. 0 means every held byte is either live
	// or in the contiguous bump tail.
	Fragmentation float64
}

// Stats returns a snapshot of the allocator state. The paper highlights
// cheap RAM-footprint estimation (§1.1); Footprint is that estimate.
func (a *Allocator) Stats() Stats {
	st := Stats{
		LiveBytes:  a.allocated.Load(),
		FreedBytes: a.freed.Load(),
		Footprint:  int64(a.numBlocks.Load()) * int64(a.pool.blockSize),
		Blocks:     int(a.numBlocks.Load()),
		AllocCalls: a.requests.Load(),
		Mode:       a.loadMode(),
	}
	var listBytes int64
	for c := range a.classes {
		cl := &a.classes[c]
		cl.mu.Lock()
		st.Classes[c] = ClassStats{Size: classSize(c), Spans: len(cl.spans), Bytes: cl.bytes}
		st.FreeSpans += len(cl.spans)
		listBytes += cl.bytes
		cl.mu.Unlock()
	}
	a.largeMu.Lock()
	st.LargeSpans = len(a.large)
	st.LargeBytes = a.largeBytes
	st.FreeSpans += len(a.large)
	listBytes += a.largeBytes
	a.largeMu.Unlock()
	a.flatMu.Lock()
	st.FreeSpans += len(a.flat)
	for _, s := range a.flat {
		listBytes += int64(s.length)
	}
	a.flatMu.Unlock()
	st.FreeCapacity = listBytes
	a.bumpMu.Lock()
	if a.cur >= 0 {
		st.FreeCapacity += int64(a.pool.blockSize - a.top)
	}
	a.bumpMu.Unlock()
	if st.Footprint > 0 {
		st.Fragmentation = float64(listBytes) / float64(st.Footprint)
	}
	return st
}

// Footprint returns the total off-heap bytes held from the pool.
func (a *Allocator) Footprint() int64 {
	return int64(a.numBlocks.Load()) * int64(a.pool.blockSize)
}

// LiveBytes returns the number of live allocated bytes.
func (a *Allocator) LiveBytes() int64 { return a.allocated.Load() }

// Compact drains every free structure, coalesces adjacent spans in
// address order, and re-parks the result. Oak calls this
// opportunistically after rebalances (which free many adjacent keys and
// values); it is also exercised directly by tests. Returns the number of
// spans after coalescing.
func (a *Allocator) Compact() int {
	a.migrateMu.Lock()
	defer a.migrateMu.Unlock()
	mode := a.loadMode()
	if mode == ModeBump || a.closed.Load() {
		return 0
	}
	tick := a.tel.Load().Span(telemetry.OpArenaCompact)
	defer tick.Done()
	spans := a.drainAll()
	if len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spanBefore(spans[i], spans[j]) })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.block == last.block && s.offset == last.offset+last.length {
			FpCoalesce.Fire()
			last.length += s.length
		} else {
			out = append(out, s)
		}
	}
	for _, s := range out {
		if mode == ModeSizeClass {
			a.reinsert(s)
		} else {
			a.flatPush(s)
		}
	}
	return len(out)
}

// Close releases every block back to the pool. Any Ref obtained from this
// allocator is invalid afterwards; subsequent Allocs fail with ErrClosed.
func (a *Allocator) Close() {
	a.migrateMu.Lock()
	if a.closed.Swap(true) {
		a.migrateMu.Unlock()
		return
	}
	a.drainAll()
	a.dbg.reset()
	a.bumpMu.Lock()
	a.cur = -1
	a.top = 0
	a.bumpMu.Unlock()
	n := int(a.numBlocks.Load())
	blocks := make([]*block, 0, n)
	for i := 0; i < n; i++ {
		if b := a.blocks[i].Load(); b != nil {
			blocks = append(blocks, b)
		}
	}
	a.migrateMu.Unlock()
	for _, b := range blocks {
		a.pool.release(b)
	}
}
