package arena

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"oakmap/internal/faultpoint"
)

// Allocation errors.
var (
	ErrTooLarge  = errors.New("arena: allocation exceeds block size")
	ErrClosed    = errors.New("arena: allocator closed")
	ErrExhausted = errors.New("arena: allocator out of blocks")
	// ErrInjected is returned by Alloc when the arena/alloc-fail fault
	// point fires; it never occurs outside fault-injection runs.
	ErrInjected = errors.New("arena: injected allocation failure")
)

// Fault-injection points (no-ops unless a test arms them).
var (
	// FpAllocFail makes Alloc fail with ErrInjected, exercising the
	// callers' allocation-error unwind paths (key release, value
	// discard) that real workloads reach only at memory exhaustion.
	FpAllocFail = faultpoint.New("arena/alloc-fail")
	// FpFreeListScan is hit at the start of every first-fit free-list
	// scan, under the allocator lock: a pausing hook widens the lock
	// hold to force free-list contention.
	FpFreeListScan = faultpoint.New("arena/freelist-scan")
)

// span is a free range inside a block, kept on the allocator's free list.
type span struct {
	block  int
	offset int
	length int
}

// Allocator carves variable-size ranges out of pool blocks on behalf of a
// single map instance. It is the paper's per-instance memory manager:
// fresh space comes from a bump pointer in the current block, freed space
// goes onto a flat free list that is searched first-fit (§3.2).
//
// All methods are safe for concurrent use. Reads through Bytes take no
// locks: the block table is a fixed-size array of atomic pointers, so a
// Ref obtained from Alloc can be dereferenced by any goroutine.
type Allocator struct {
	pool *Pool

	// blocks is an append-only table of blocks owned by this allocator.
	// Slots are published with atomic stores so Bytes can read without
	// locking.
	blocks    [MaxBlocks]atomic.Pointer[block]
	numBlocks atomic.Int32

	mu       sync.Mutex
	cur      int // index of the block being bump-allocated
	top      int // bump offset in the current block
	closed   bool
	freeList []span // first-fit free list, unordered
	firstFit bool   // when false, freed spans are dropped (ablation mode)

	allocated atomic.Int64 // live bytes handed out
	freed     atomic.Int64 // bytes returned via Free
	requests  atomic.Int64 // number of Alloc calls
}

// NewAllocator creates an allocator drawing from pool. The free list is
// enabled by default; SetFirstFit(false) turns the allocator into a pure
// bump allocator (used by the allocator ablation benchmark).
func NewAllocator(pool *Pool) *Allocator {
	return &Allocator{pool: pool, cur: -1, firstFit: true}
}

// SetFirstFit toggles reuse of freed spans. With reuse disabled, Free
// only updates accounting.
func (a *Allocator) SetFirstFit(on bool) {
	a.mu.Lock()
	a.firstFit = on
	if !on {
		a.freeList = nil
	}
	a.mu.Unlock()
}

// align8 rounds n up to a multiple of 8. Allocations are 8-byte aligned
// to keep value headers and numeric fields naturally aligned and to bound
// fragmentation from odd-sized keys.
func align8(n int) int { return (n + 7) &^ 7 }

// Alloc reserves n bytes and returns a reference to them. The returned
// range has exactly length n; internally the reservation is rounded up to
// 8 bytes. Alloc never returns memory that overlaps a live allocation.
func (a *Allocator) Alloc(n int) (Ref, error) {
	if n < 0 {
		return NilRef, errors.New("arena: negative allocation size")
	}
	if n == 0 {
		// Zero-length objects (empty keys/values) occupy no space but
		// need a valid, non-nil reference.
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			return NilRef, ErrClosed
		}
		if a.cur < 0 {
			if err := a.growLocked(); err != nil {
				a.mu.Unlock()
				return NilRef, err
			}
		}
		ref := MakeRef(a.cur, a.top, 0)
		a.mu.Unlock()
		return ref, nil
	}
	if n > a.pool.blockSize || n > MaxAllocSize {
		return NilRef, ErrTooLarge
	}
	if FpAllocFail.Fire() {
		return NilRef, ErrInjected
	}
	rounded := align8(n)
	a.requests.Add(1)

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return NilRef, ErrClosed
	}
	// First fit: scan the flat free list for the first span that fits.
	if a.firstFit {
		if len(a.freeList) > 0 {
			FpFreeListScan.Fire()
		}
		for i := range a.freeList {
			s := &a.freeList[i]
			if s.length >= rounded {
				ref := MakeRef(s.block, s.offset, n)
				s.offset += rounded
				s.length -= rounded
				if s.length == 0 {
					last := len(a.freeList) - 1
					a.freeList[i] = a.freeList[last]
					a.freeList = a.freeList[:last]
				}
				a.mu.Unlock()
				a.allocated.Add(int64(rounded))
				return ref, nil
			}
		}
	}
	// Bump path.
	if a.cur < 0 || a.top+rounded > a.pool.blockSize {
		if err := a.growLocked(); err != nil {
			a.mu.Unlock()
			return NilRef, err
		}
	}
	ref := MakeRef(a.cur, a.top, n)
	a.top += rounded
	a.mu.Unlock()
	a.allocated.Add(int64(rounded))
	return ref, nil
}

// growLocked acquires a fresh block from the pool. Caller holds a.mu.
func (a *Allocator) growLocked() error {
	idx := int(a.numBlocks.Load())
	if idx >= MaxBlocks {
		return ErrExhausted
	}
	// The remainder of the current block, if any, joins the free list so
	// it is not stranded.
	if a.cur >= 0 && a.firstFit {
		if rest := a.pool.blockSize - a.top; rest >= 8 {
			a.freeList = append(a.freeList, span{block: a.cur, offset: a.top, length: rest})
		}
	}
	b, err := a.pool.acquire()
	if err != nil {
		return err
	}
	a.blocks[idx].Store(b)
	a.numBlocks.Store(int32(idx + 1))
	a.cur = idx
	a.top = 0
	return nil
}

// Free returns the range behind ref to the free list. The caller must
// guarantee no live reader can still dereference ref (in Oak this is
// established by the value-header locking protocol).
func (a *Allocator) Free(ref Ref) {
	if ref.IsNil() {
		return
	}
	rounded := align8(ref.Len())
	a.freed.Add(int64(rounded))
	a.allocated.Add(int64(-rounded))
	a.mu.Lock()
	if !a.closed && a.firstFit {
		a.freeList = append(a.freeList, span{block: ref.Block(), offset: ref.Offset(), length: rounded})
	}
	a.mu.Unlock()
}

// Bytes returns the byte range behind ref. The slice aliases the block's
// storage: writes through it are visible to every reader of the same ref.
// Bytes performs no synchronization; Oak's value headers provide it.
func (a *Allocator) Bytes(ref Ref) []byte {
	b := a.blocks[ref.Block()].Load()
	return b.buf[ref.Offset():ref.End():ref.End()]
}

// Write copies data into a freshly allocated range and returns its ref.
func (a *Allocator) Write(data []byte) (Ref, error) {
	ref, err := a.Alloc(len(data))
	if err != nil {
		return NilRef, err
	}
	copy(a.Bytes(ref), data)
	return ref, nil
}

// Stats is a snapshot of the allocator's accounting.
type Stats struct {
	LiveBytes    int64 // currently allocated (rounded) bytes
	FreedBytes   int64 // cumulative bytes freed
	Footprint    int64 // bytes of blocks held from the pool
	Blocks       int
	AllocCalls   int64
	FreeSpans    int
	FreeCapacity int64 // bytes available on the free list
}

// Stats returns a snapshot of the allocator state. The paper highlights
// cheap RAM-footprint estimation (§1.1); Footprint is that estimate.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	spans := len(a.freeList)
	var freeCap int64
	for _, s := range a.freeList {
		freeCap += int64(s.length)
	}
	if a.cur >= 0 {
		freeCap += int64(a.pool.blockSize - a.top)
	}
	a.mu.Unlock()
	return Stats{
		LiveBytes:    a.allocated.Load(),
		FreedBytes:   a.freed.Load(),
		Footprint:    int64(a.numBlocks.Load()) * int64(a.pool.blockSize),
		Blocks:       int(a.numBlocks.Load()),
		AllocCalls:   a.requests.Load(),
		FreeSpans:    spans,
		FreeCapacity: freeCap,
	}
}

// Footprint returns the total off-heap bytes held from the pool.
func (a *Allocator) Footprint() int64 {
	return int64(a.numBlocks.Load()) * int64(a.pool.blockSize)
}

// LiveBytes returns the number of live allocated bytes.
func (a *Allocator) LiveBytes() int64 { return a.allocated.Load() }

// Compact coalesces adjacent spans on the free list. Oak calls this
// opportunistically after rebalances; it is also exercised directly by
// tests. Returns the number of spans after coalescing.
func (a *Allocator) Compact() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.freeList) < 2 {
		return len(a.freeList)
	}
	sort.Slice(a.freeList, func(i, j int) bool {
		if a.freeList[i].block != a.freeList[j].block {
			return a.freeList[i].block < a.freeList[j].block
		}
		return a.freeList[i].offset < a.freeList[j].offset
	})
	out := a.freeList[:1]
	for _, s := range a.freeList[1:] {
		last := &out[len(out)-1]
		if s.block == last.block && s.offset == last.offset+last.length {
			last.length += s.length
		} else {
			out = append(out, s)
		}
	}
	a.freeList = out
	return len(a.freeList)
}

// Close releases every block back to the pool. Any Ref obtained from this
// allocator is invalid afterwards; subsequent Allocs fail with ErrClosed.
func (a *Allocator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.freeList = nil
	n := int(a.numBlocks.Load())
	blocks := make([]*block, 0, n)
	for i := 0; i < n; i++ {
		if b := a.blocks[i].Load(); b != nil {
			blocks = append(blocks, b)
		}
	}
	a.mu.Unlock()
	for _, b := range blocks {
		a.pool.release(b)
	}
}
