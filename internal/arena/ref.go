// Package arena implements Oak's off-heap memory substrate: a pool of
// large pointer-free byte slabs ("blocks"), a per-map allocator with
// segregated size-class free lists (with the paper's flat first-fit
// list available as an ablation mode), and packed 64-bit references
// into the slabs.
//
// In the paper, keys and values are allocated in off-heap arenas obtained
// via direct ByteBuffers so that the JVM garbage collector never scans
// them. The Go equivalent of that property is a large []byte: it is a
// single allocation with no interior pointers, so the Go GC treats it as
// one opaque object regardless of how many keys and values live inside
// it. The pool pre-allocates such blocks and shares them between map
// instances, exactly like the paper's shared arena pool (§3.2).
package arena

import "fmt"

// Ref is a packed reference to a byte range inside an allocator's blocks.
// Layout (from the most significant bit down):
//
//	block+1 : 10 bits (0 means the nil reference)
//	offset  : 27 bits (blocks of up to 128 MiB — fits the paper's 100MB)
//	length  : 27 bits (objects of up to 128 MiB-1)
//
// The all-zero value is NilRef, the paper's ⊥ reference. Encoding
// block+1 rather than block keeps block 0/offset 0/length 0 distinct
// from ⊥. With 1023 blocks of 100MB, one map addresses ~100GB of
// off-heap data, matching the paper's largest experiments.
type Ref uint64

const (
	blockBits  = 10
	offsetBits = 27
	lengthBits = 27

	// MaxBlocks is the maximum number of blocks a single allocator can
	// own (the block field encodes block+1, so one encoding is spent on
	// the nil reference).
	MaxBlocks = 1<<blockBits - 1
	// MaxBlockSize is the largest supported block size.
	MaxBlockSize = 1 << offsetBits
	// MaxAllocSize is the largest single allocation representable.
	MaxAllocSize = 1<<lengthBits - 1

	offsetMask = 1<<offsetBits - 1
	lengthMask = 1<<lengthBits - 1
)

// NilRef is the null reference (the paper's ⊥).
const NilRef Ref = 0

// MakeRef packs a block index, byte offset and length into a Ref.
// It panics if any component is out of range; callers validate sizes
// before allocating.
func MakeRef(block, offset, length int) Ref {
	if block < 0 || block >= MaxBlocks {
		panic(fmt.Sprintf("arena: block %d out of range", block))
	}
	if offset < 0 || offset >= MaxBlockSize {
		panic(fmt.Sprintf("arena: offset %d out of range", offset))
	}
	if length < 0 || length > MaxAllocSize {
		panic(fmt.Sprintf("arena: length %d out of range", length))
	}
	return Ref(uint64(block+1)<<(offsetBits+lengthBits) |
		uint64(offset)<<lengthBits |
		uint64(length))
}

// IsNil reports whether r is the nil reference.
func (r Ref) IsNil() bool { return r == NilRef }

// Block returns the block index the reference points into.
func (r Ref) Block() int { return int(uint64(r)>>(offsetBits+lengthBits)) - 1 }

// Offset returns the byte offset within the block.
func (r Ref) Offset() int { return int(uint64(r) >> lengthBits & offsetMask) }

// Len returns the length in bytes of the referenced range.
func (r Ref) Len() int { return int(uint64(r) & lengthMask) }

// End returns Offset()+Len(), the exclusive end of the range.
func (r Ref) End() int { return r.Offset() + r.Len() }

// String renders the reference for debugging.
func (r Ref) String() string {
	if r.IsNil() {
		return "ref(nil)"
	}
	return fmt.Sprintf("ref(b%d+%d:%d)", r.Block(), r.Offset(), r.Len())
}
