//go:build arenadebug

package arena

import (
	"strings"
	"testing"
)

// mustPanicWith runs f and asserts it panics with a message containing
// want.
func mustPanicWith(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	f()
}

func TestDebugDoubleFreePanics(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r, _ := a.Alloc(64)
	a.Alloc(64) // keep the bump tail away from the freed span
	a.Free(r)
	mustPanicWith(t, "double/overlapping free", func() { a.Free(r) })
}

func TestDebugOverlappingFreePanics(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r, _ := a.Alloc(128)
	a.Alloc(64)
	a.Free(r)
	// A ref inside the freed range — the detector must name both ranges.
	inner := MakeRef(r.Block(), r.Offset()+32, 16)
	mustPanicWith(t, "overlaps free span", func() { a.Free(inner) })
}

func TestDebugReuseClearsTracking(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	a.Alloc(64)
	a.Free(r1)
	r2, _ := a.Alloc(64) // pops the freed span: range is live again
	if r2.Offset() != r1.Offset() {
		t.Fatalf("expected reuse: %v vs %v", r2, r1)
	}
	a.Free(r2) // must NOT panic — the range was reallocated in between
}

func TestDebugSplitRemainderTracked(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r, _ := a.Alloc(128)
	a.Alloc(64)
	a.Free(r)
	head, _ := a.Alloc(32) // carves the head; remainder re-parked
	if head.Offset() != r.Offset() {
		t.Fatalf("expected head carve: %v vs %v", head, r)
	}
	// Freeing a ref overlapping the still-free remainder must panic.
	overlap := MakeRef(r.Block(), r.Offset()+64, 32)
	mustPanicWith(t, "overlaps free span", func() { a.Free(overlap) })
}

func TestDebugCompactKeepsTracking(t *testing.T) {
	a := NewAllocator(NewPool(4096, 0))
	defer a.Close()
	r1, _ := a.Alloc(64)
	r2, _ := a.Alloc(64)
	a.Alloc(64)
	a.Free(r1)
	a.Free(r2)
	a.Compact() // merges the two spans; tracking must survive
	mustPanicWith(t, "double/overlapping free", func() { a.Free(r1) })
	// Popping the merged span clears both fragments.
	r3, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Offset() != r1.Offset() {
		t.Fatalf("merged span not reused: %v", r3)
	}
	a.Free(r3) // no panic: the whole range is live again
}

func TestDebugChecksFlag(t *testing.T) {
	if !DebugChecks {
		t.Fatal("DebugChecks must be true under the arenadebug tag")
	}
}
