package arena

import (
	"errors"
	"sync"
	"sync/atomic"

	"oakmap/internal/telemetry"
)

// DefaultBlockSize matches the paper's default arena size of 100 MB.
// Benchmarks and tests typically configure smaller blocks.
const DefaultBlockSize = 100 << 20

// ErrPoolExhausted is returned when the pool's block budget is spent.
var ErrPoolExhausted = errors.New("arena: block pool exhausted")

// block is one large pointer-free slab. Blocks are pre-zeroed on first
// creation and recycled between allocators through the pool; recycled
// blocks are not re-zeroed (allocators fully overwrite what they hand
// out).
type block struct {
	buf []byte
}

// Pool is a shared pool of off-heap blocks, the analogue of the paper's
// shared pool of pre-allocated arenas (§3.2). Multiple Oak instances draw
// blocks from one pool and return them when the instance is closed.
type Pool struct {
	blockSize int
	maxBytes  int64 // 0 = unlimited

	mu          sync.Mutex
	free        []*block
	maxRetained int // max free blocks kept for reuse; negative = unlimited

	created  atomic.Int64 // blocks ever created
	loaned   atomic.Int64 // blocks currently held by allocators
	capacity atomic.Int64 // total bytes in existence (free + loaned)
	dropped  atomic.Int64 // blocks released past the retention cap

	// tel, when set, receives block retain/drop flight-recorder events.
	tel atomic.Pointer[telemetry.Recorder]
}

// SetTelemetry attaches a recorder for block retain/drop events. Safe
// to call concurrently; nil detaches.
func (p *Pool) SetTelemetry(r *telemetry.Recorder) {
	p.tel.Store(r)
}

// NewPool creates a pool producing blocks of blockSize bytes. maxBytes
// bounds the total bytes the pool will ever create (0 means unbounded).
// Released blocks are retained for reuse without limit by default; see
// SetMaxRetainedBlocks.
func NewPool(blockSize int, maxBytes int64) *Pool {
	if blockSize <= 0 || blockSize > MaxBlockSize {
		panic("arena: invalid block size")
	}
	return &Pool{blockSize: blockSize, maxBytes: maxBytes, maxRetained: -1}
}

// SetMaxRetainedBlocks caps how many released blocks the pool keeps for
// reuse; blocks released past the cap are dropped for the GC to reclaim,
// so a transient footprint spike does not pin peak RAM forever. Negative
// n restores the default unlimited retention. If the pool currently
// retains more than n blocks, the excess is dropped immediately.
func (p *Pool) SetMaxRetainedBlocks(n int) {
	p.mu.Lock()
	p.maxRetained = n
	var excess int
	if n >= 0 && len(p.free) > n {
		excess = len(p.free) - n
		for i := n; i < len(p.free); i++ {
			p.free[i] = nil
		}
		p.free = p.free[:n]
	}
	p.mu.Unlock()
	if excess > 0 {
		p.capacity.Add(-int64(excess) * int64(p.blockSize))
		p.dropped.Add(int64(excess))
	}
}

// BlockSize returns the size in bytes of blocks this pool produces.
func (p *Pool) BlockSize() int { return p.blockSize }

// acquire hands out a block, recycling a freed one when available.
func (p *Pool) acquire() (*block, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.loaned.Add(1)
		return b, nil
	}
	if p.maxBytes > 0 && p.capacity.Load()+int64(p.blockSize) > p.maxBytes {
		p.mu.Unlock()
		return nil, ErrPoolExhausted
	}
	p.capacity.Add(int64(p.blockSize))
	p.created.Add(1)
	p.mu.Unlock()
	// Allocate outside the lock: creating 100MB is the slow path.
	b := &block{buf: make([]byte, p.blockSize)}
	p.loaned.Add(1)
	return b, nil
}

// release returns a block to the pool for reuse by other allocators.
// Blocks past the retention cap are dropped instead of retained.
func (p *Pool) release(b *block) {
	p.loaned.Add(-1)
	p.mu.Lock()
	if p.maxRetained >= 0 && len(p.free) >= p.maxRetained {
		retained := len(p.free)
		p.mu.Unlock()
		p.capacity.Add(-int64(p.blockSize))
		p.dropped.Add(1)
		p.tel.Load().Event(telemetry.EvBlockDrop, uint64(retained), 0, 0)
		return
	}
	p.free = append(p.free, b)
	retained := len(p.free)
	p.mu.Unlock()
	p.tel.Load().Event(telemetry.EvBlockRetain, uint64(retained), 0, 0)
}

// Stats reports pool-level accounting.
type PoolStats struct {
	BlockSize      int
	BlocksCreated  int64
	BlocksLoaned   int64
	BytesCapacity  int64
	BlocksRetained int   // free blocks currently held for reuse
	BytesRetained  int64 // bytes of those free blocks
	BlocksDropped  int64 // blocks released past the retention cap
}

// Stats returns a snapshot of the pool's accounting counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	retained := len(p.free)
	p.mu.Unlock()
	return PoolStats{
		BlockSize:      p.blockSize,
		BlocksCreated:  p.created.Load(),
		BlocksLoaned:   p.loaned.Load(),
		BytesCapacity:  p.capacity.Load(),
		BlocksRetained: retained,
		BytesRetained:  int64(retained) * int64(p.blockSize),
		BlocksDropped:  p.dropped.Load(),
	}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide shared pool with DefaultBlockSize
// blocks, created on first use.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewPool(DefaultBlockSize, 0)
	})
	return defaultPool
}
