package arena

import (
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize matches the paper's default arena size of 100 MB.
// Benchmarks and tests typically configure smaller blocks.
const DefaultBlockSize = 100 << 20

// ErrPoolExhausted is returned when the pool's block budget is spent.
var ErrPoolExhausted = errors.New("arena: block pool exhausted")

// block is one large pointer-free slab. Blocks are pre-zeroed on first
// creation and recycled between allocators through the pool; recycled
// blocks are not re-zeroed (allocators fully overwrite what they hand
// out).
type block struct {
	buf []byte
}

// Pool is a shared pool of off-heap blocks, the analogue of the paper's
// shared pool of pre-allocated arenas (§3.2). Multiple Oak instances draw
// blocks from one pool and return them when the instance is closed.
type Pool struct {
	blockSize int
	maxBytes  int64 // 0 = unlimited

	mu   sync.Mutex
	free []*block

	created  atomic.Int64 // blocks ever created
	loaned   atomic.Int64 // blocks currently held by allocators
	capacity atomic.Int64 // total bytes in existence (free + loaned)
}

// NewPool creates a pool producing blocks of blockSize bytes. maxBytes
// bounds the total bytes the pool will ever create (0 means unbounded).
func NewPool(blockSize int, maxBytes int64) *Pool {
	if blockSize <= 0 || blockSize > MaxBlockSize {
		panic("arena: invalid block size")
	}
	return &Pool{blockSize: blockSize, maxBytes: maxBytes}
}

// BlockSize returns the size in bytes of blocks this pool produces.
func (p *Pool) BlockSize() int { return p.blockSize }

// acquire hands out a block, recycling a freed one when available.
func (p *Pool) acquire() (*block, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.loaned.Add(1)
		return b, nil
	}
	if p.maxBytes > 0 && p.capacity.Load()+int64(p.blockSize) > p.maxBytes {
		p.mu.Unlock()
		return nil, ErrPoolExhausted
	}
	p.capacity.Add(int64(p.blockSize))
	p.created.Add(1)
	p.mu.Unlock()
	// Allocate outside the lock: creating 100MB is the slow path.
	b := &block{buf: make([]byte, p.blockSize)}
	p.loaned.Add(1)
	return b, nil
}

// release returns a block to the pool for reuse by other allocators.
func (p *Pool) release(b *block) {
	p.loaned.Add(-1)
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Stats reports pool-level accounting.
type PoolStats struct {
	BlockSize     int
	BlocksCreated int64
	BlocksLoaned  int64
	BytesCapacity int64
}

// Stats returns a snapshot of the pool's accounting counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		BlockSize:     p.blockSize,
		BlocksCreated: p.created.Load(),
		BlocksLoaned:  p.loaned.Load(),
		BytesCapacity: p.capacity.Load(),
	}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide shared pool with DefaultBlockSize
// blocks, created on first use.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewPool(DefaultBlockSize, 0)
	})
	return defaultPool
}
