//go:build !arenadebug

package arena

// DebugChecks reports whether the arenadebug double-free detector is
// compiled in. Build with -tags arenadebug to enable it.
const DebugChecks = false

// debugTracker is compiled out without the arenadebug build tag; see
// debug_on.go for the real detector. The methods are empty so the
// compiler erases the call sites from the hot paths.
type debugTracker struct{}

func (debugTracker) noteFree(block, offset, length int)  {}
func (debugTracker) noteAlloc(block, offset, length int) {}
func (debugTracker) reset()                              {}
