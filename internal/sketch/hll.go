// Package sketch provides compact, fixed-size data sketches for
// approximate aggregation, standing in for the DataSketches library that
// Druid's rollup indexes embed in their values (§6: "Complex aggregates
// (e.g., unique count and quantiles) are embodied through sketches").
//
// Both sketches here have constant-size binary states designed to live
// inside Oak values and be updated in place through the ZC compute API:
// HLL for unique counts and a P² estimator for quantiles.
package sketch

import (
	"encoding/binary"
	"math"
)

// HLL is a HyperLogLog unique-count sketch with 2^p registers of one
// byte each. It estimates set cardinality with a standard error of
// roughly 1.04/sqrt(2^p).
type HLL struct {
	p    uint8
	regs []byte
}

// NewHLL creates a sketch with 2^p registers; p must be in [4, 16].
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 16 {
		panic("sketch: HLL precision out of range [4,16]")
	}
	return &HLL{p: p, regs: make([]byte, 1<<p)}
}

// HLLStateSize returns the serialized size of an HLL with precision p.
func HLLStateSize(p uint8) int { return 1 + (1 << p) }

// Hash64 is a splitmix64-style avalanche, good enough to feed HLL.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashBytes hashes a byte string (FNV-1a 64 followed by avalanche).
func HashBytes(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return Hash64(h)
}

// Add inserts a pre-hashed item.
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - h.p)
	rest := hash<<h.p | 1<<(uint64(h.p)-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the estimated number of distinct items added.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction (linear counting).
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into h (register-wise max). Panics on precision
// mismatch.
func (h *HLL) Merge(other *HLL) {
	if h.p != other.p {
		panic("sketch: HLL precision mismatch")
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// AppendState serializes the sketch: [p u8][registers...].
func (h *HLL) AppendState(dst []byte) []byte {
	dst = append(dst, h.p)
	return append(dst, h.regs...)
}

// HLLFromState deserializes a sketch (copying the state).
func HLLFromState(state []byte) *HLL {
	p := state[0]
	h := NewHLL(p)
	copy(h.regs, state[1:1+(1<<p)])
	return h
}

// HLLAddInPlace updates a serialized HLL state in situ — the operation
// Druid's rollup performs inside putIfAbsentComputeIfPresent, without
// materializing the sketch on-heap.
func HLLAddInPlace(state []byte, hash uint64) {
	p := state[0]
	regs := state[1 : 1+(1<<p)]
	idx := hash >> (64 - p)
	rest := hash<<p | 1<<(uint64(p)-1)
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > regs[idx] {
		regs[idx] = rank
	}
}

// HLLEstimateState estimates cardinality directly from a serialized
// state without copying.
func HLLEstimateState(state []byte) float64 {
	p := state[0]
	h := HLL{p: p, regs: state[1 : 1+(1<<p)]}
	return h.Estimate()
}

// KMV is a k-minimum-values sketch: an alternative distinct-count
// estimator with a simple mergeable state, used in tests to cross-check
// HLL behaviour.
type KMV struct {
	k    int
	vals []uint64 // sorted ascending, at most k
}

// NewKMV creates a sketch keeping the k smallest hash values.
func NewKMV(k int) *KMV {
	if k < 8 {
		panic("sketch: KMV k too small")
	}
	return &KMV{k: k}
}

// Add inserts a pre-hashed item.
func (s *KMV) Add(hash uint64) {
	// Binary search insert position.
	lo, hi := 0, len(s.vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.vals[mid] < hash {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.vals) && s.vals[lo] == hash {
		return // duplicate
	}
	if len(s.vals) == s.k {
		if lo == s.k {
			return // larger than all retained values
		}
		s.vals = s.vals[:s.k-1]
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[lo+1:], s.vals[lo:])
	s.vals[lo] = hash
}

// Estimate returns the estimated distinct count.
func (s *KMV) Estimate() float64 {
	if len(s.vals) < s.k {
		return float64(len(s.vals)) // exact below k
	}
	kth := float64(s.vals[s.k-1]) / float64(math.MaxUint64)
	return float64(s.k-1) / kth
}

// AppendState serializes as [k u32][n u32][vals...].
func (s *KMV) AppendState(dst []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.k))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.vals)))
	dst = append(dst, hdr[:]...)
	for _, v := range s.vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// KMVFromState deserializes a KMV sketch.
func KMVFromState(state []byte) *KMV {
	k := int(binary.LittleEndian.Uint32(state[0:]))
	n := int(binary.LittleEndian.Uint32(state[4:]))
	s := &KMV{k: k, vals: make([]uint64, n)}
	for i := 0; i < n; i++ {
		s.vals[i] = binary.LittleEndian.Uint64(state[8+8*i:])
	}
	return s
}
