package sketch

import (
	"encoding/binary"
	"math"
)

// P2 is the P² ("P-square") streaming quantile estimator of Jain &
// Chlamtac: it tracks one target quantile with five markers and O(1)
// state, which makes it ideal for in-place updates inside Oak values.
type P2 struct {
	q       float64    // target quantile in (0, 1)
	n       int64      // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired positions
	incr    [5]float64 // desired-position increments
}

// P2StateSize is the serialized size of a P² estimator.
const P2StateSize = 8 + 8 + 5*8*3

// NewP2 creates an estimator for quantile q (e.g. 0.5, 0.99).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic("sketch: quantile out of (0,1)")
	}
	p := &P2{q: q}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add inserts an observation.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		// Insertion sort into the initial heights.
		i := p.n
		for i > 0 && p.heights[i-1] > x {
			p.heights[i] = p.heights[i-1]
			i--
		}
		p.heights[i] = x
		p.n++
		if p.n == 5 {
			for j := 0; j < 5; j++ {
				p.pos[j] = float64(j + 1)
				p.want[j] = 1 + 4*p.incr[j]
			}
		}
		return
	}
	p.n++
	// Find the cell k containing x and adjust extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.incr[i]
	}
	// Adjust interior markers with parabolic (or linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := sign(d)
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

func sign(x float64) float64 {
	if x >= 0 {
		return 1
	}
	return -1
}

func (p *P2) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Estimate returns the current quantile estimate.
func (p *P2) Estimate() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		// Exact small-sample quantile.
		idx := int(p.q * float64(p.n))
		if idx >= int(p.n) {
			idx = int(p.n) - 1
		}
		return p.heights[idx]
	}
	return p.heights[2]
}

// Count returns the number of observations.
func (p *P2) Count() int64 { return p.n }

// AppendState serializes the estimator.
func (p *P2) AppendState(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.q))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], uint64(p.n))
	dst = append(dst, b[:]...)
	for _, arr := range [][5]float64{p.heights, p.pos, p.want} {
		for _, v := range arr {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// loadState fills p from a serialized state without allocating.
func (p *P2) loadState(state []byte) {
	p.q = math.Float64frombits(binary.LittleEndian.Uint64(state[0:]))
	p.n = int64(binary.LittleEndian.Uint64(state[8:]))
	off := 16
	for _, arr := range []*[5]float64{&p.heights, &p.pos, &p.want} {
		for i := 0; i < 5; i++ {
			arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(state[off:]))
			off += 8
		}
	}
	p.incr = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
}

// storeState serializes p over state (len ≥ P2StateSize).
func (p *P2) storeState(state []byte) {
	binary.LittleEndian.PutUint64(state[0:], math.Float64bits(p.q))
	binary.LittleEndian.PutUint64(state[8:], uint64(p.n))
	off := 16
	for _, arr := range [][5]float64{p.heights, p.pos, p.want} {
		for i := 0; i < 5; i++ {
			binary.LittleEndian.PutUint64(state[off:], math.Float64bits(arr[i]))
			off += 8
		}
	}
}

// P2FromState deserializes an estimator.
func P2FromState(state []byte) *P2 {
	p := &P2{}
	p.loadState(state)
	return p
}

// P2AddInPlace updates a serialized P² state in situ (deserialize into a
// stack value, add, re-serialize over the same bytes, no heap
// allocation). The state size is constant, so the in-place contract of
// Oak's compute holds.
func P2AddInPlace(state []byte, x float64) {
	var p P2
	p.loadState(state)
	p.Add(x)
	p.storeState(state)
}

// P2EstimateState reads the estimate directly from a serialized state.
func P2EstimateState(state []byte) float64 {
	return P2FromState(state).Estimate()
}
