package sketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h := NewHLL(11) // ~2.3% standard error
		for i := 0; i < n; i++ {
			h.Add(Hash64(uint64(i)))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.10 {
			t.Fatalf("n=%d: estimate %.0f, relative error %.3f > 10%%", n, est, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(10)
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			h.Add(Hash64(uint64(i)))
		}
	}
	est := h.Estimate()
	if est < 80 || est > 130 {
		t.Fatalf("estimate %.0f for 100 distinct items added 50×", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(10), NewHLL(10)
	for i := 0; i < 5000; i++ {
		a.Add(Hash64(uint64(i)))
		b.Add(Hash64(uint64(i + 2500))) // half overlapping
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-7500)/7500 > 0.10 {
		t.Fatalf("merged estimate %.0f; want ≈7500", est)
	}
}

func TestHLLStateRoundTrip(t *testing.T) {
	f := func(items []uint64) bool {
		h := NewHLL(8)
		for _, it := range items {
			h.Add(Hash64(it))
		}
		state := h.AppendState(nil)
		if len(state) != HLLStateSize(8) {
			return false
		}
		h2 := HLLFromState(state)
		return h2.Estimate() == h.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHLLInPlaceMatchesObject(t *testing.T) {
	h := NewHLL(9)
	state := NewHLL(9).AppendState(nil)
	for i := 0; i < 10000; i++ {
		hash := Hash64(uint64(i) * 7)
		h.Add(hash)
		HLLAddInPlace(state, hash)
	}
	if got, want := HLLEstimateState(state), h.Estimate(); got != want {
		t.Fatalf("in-place estimate %.1f != object estimate %.1f", got, want)
	}
}

func TestHLLPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{3, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHLL(%d) did not panic", p)
				}
			}()
			NewHLL(p)
		}()
	}
}

func TestHashBytesSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := HashBytes([]byte{byte(i), byte(i >> 8)})
		if seen[h] {
			t.Fatal("hash collision in trivial input set")
		}
		seen[h] = true
	}
}

func TestKMVAccuracy(t *testing.T) {
	s := NewKMV(256)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Add(Hash64(uint64(i)))
	}
	est := s.Estimate()
	if math.Abs(est-n)/n > 0.15 {
		t.Fatalf("KMV estimate %.0f; want ≈%d", est, n)
	}
}

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 40; i++ {
		s.Add(Hash64(uint64(i)))
		s.Add(Hash64(uint64(i))) // duplicates ignored
	}
	if s.Estimate() != 40 {
		t.Fatalf("estimate %.0f; want exactly 40", s.Estimate())
	}
}

func TestKMVStateRoundTrip(t *testing.T) {
	s := NewKMV(32)
	for i := 0; i < 100; i++ {
		s.Add(Hash64(uint64(i)))
	}
	s2 := KMVFromState(s.AppendState(nil))
	if s2.Estimate() != s.Estimate() {
		t.Fatal("round trip changed estimate")
	}
}

func TestP2Median(t *testing.T) {
	p := NewP2(0.5)
	rng := rand.New(rand.NewPCG(1, 2))
	var all []float64
	for i := 0; i < 50000; i++ {
		x := rng.NormFloat64()*10 + 100
		p.Add(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	exact := all[len(all)/2]
	if math.Abs(p.Estimate()-exact) > 1.0 {
		t.Fatalf("P2 median %.2f vs exact %.2f", p.Estimate(), exact)
	}
}

func TestP2TailQuantile(t *testing.T) {
	p := NewP2(0.99)
	rng := rand.New(rand.NewPCG(3, 4))
	var all []float64
	for i := 0; i < 100000; i++ {
		x := rng.ExpFloat64() * 50
		p.Add(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	exact := all[int(0.99*float64(len(all)))]
	if math.Abs(p.Estimate()-exact)/exact > 0.15 {
		t.Fatalf("P2 p99 %.2f vs exact %.2f", p.Estimate(), exact)
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if !math.IsNaN(p.Estimate()) {
		t.Fatal("empty estimator should return NaN")
	}
	p.Add(7)
	if p.Estimate() != 7 {
		t.Fatalf("single sample estimate %.1f", p.Estimate())
	}
	p.Add(1)
	p.Add(9)
	if e := p.Estimate(); e != 7 {
		t.Fatalf("3-sample median %.1f; want 7", e)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d", p.Count())
	}
}

func TestP2StateRoundTripAndInPlace(t *testing.T) {
	p := NewP2(0.9)
	state := NewP2(0.9).AppendState(nil)
	if len(state) != P2StateSize {
		t.Fatalf("state size %d != %d", len(state), P2StateSize)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 1000
		p.Add(x)
		P2AddInPlace(state, x)
	}
	if got, want := P2EstimateState(state), p.Estimate(); got != want {
		t.Fatalf("in-place %.3f != object %.3f", got, want)
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}
