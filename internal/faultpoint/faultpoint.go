// Package faultpoint provides named, deterministic fault-injection
// points for concurrency testing. Production code declares points at the
// places where the algorithm's hard cases live (allocation failure, CAS
// retry, rebalance windows) and consults them inline:
//
//	if fpAllocFail.Fire() {
//		return NilRef, ErrInjected
//	}
//
// When no hook is armed, Fire is a single atomic pointer load — cheap
// enough to leave in hot paths permanently. Tests arm points with hooks
// that decide per hit whether the fault fires: always, on the Nth hit,
// every Nth hit, with a seeded probability (reproducible runs), or via a
// Gate that blocks the hitting goroutine until the test releases it —
// the primitive for scripting cross-goroutine interleavings (pause a
// rebalancer mid-split, run a scan, resume).
//
// Points register themselves in a global registry by name, so harnesses
// outside the declaring package (cmd/oak-stress, CI smoke jobs) can arm
// them with faultpoint.Arm and read hit/fire counters with Counters.
// The registry is global state: tests that arm points must not run in
// parallel with each other and should disarm in a cleanup.
package faultpoint

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hook decides, per hit, whether the fault fires. Decide receives the
// 1-based hit ordinal (counted while this hook is armed) and returns
// true to fire. Decide may block (see Gate) to control interleavings; it
// runs on the hitting goroutine, possibly under locks held by the
// instrumented code, so it must not touch the instrumented structure.
type Hook struct {
	Decide func(hit int64) bool
}

// Point is a named fault-injection site.
type Point struct {
	name  string
	hook  atomic.Pointer[Hook]
	hits  atomic.Int64 // hits observed while a hook was armed
	fires atomic.Int64 // hits on which the fault fired
}

var registry struct {
	mu     sync.Mutex
	points map[string]*Point
}

// New declares a point and registers it under name. It is intended for
// package-level var initialization; declaring the same name twice
// panics (it would split the counters).
func New(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.points == nil {
		registry.points = make(map[string]*Point)
	}
	if _, dup := registry.points[name]; dup {
		panic("faultpoint: duplicate point " + name)
	}
	p := &Point{name: name}
	registry.points[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fire reports whether the fault fires at this hit. With no hook armed
// it costs one atomic load and returns false. Pause-style sites ignore
// the result; branch-style sites divert on true.
//
// Fire must stay within the compiler's inlining budget (check with
// -gcflags=-m): the disarmed fast path is compiled into the map's hot
// paths, so the nil test has to happen at the call site, not behind a
// call. fireSlow re-loads the hook for that reason — passing it as an
// argument pushes Fire's inline cost over the budget.
func (p *Point) Fire() bool {
	if p.hook.Load() == nil {
		return false
	}
	return p.fireSlow()
}

//go:noinline
func (p *Point) fireSlow() bool {
	h := p.hook.Load()
	if h == nil { // disarmed between the loads
		return false
	}
	n := p.hits.Add(1)
	if h.Decide == nil || !h.Decide(n) {
		return false
	}
	p.fires.Add(1)
	return true
}

// Enabled reports whether a hook is armed.
func (p *Point) Enabled() bool { return p.hook.Load() != nil }

// Arm installs h and resets the point's counters. Passing a zero-value
// Hook (nil Decide) counts hits without ever firing — useful to measure
// how often a site is reached.
func (p *Point) Arm(h Hook) {
	p.hits.Store(0)
	p.fires.Store(0)
	p.hook.Store(&h)
}

// Disarm removes the hook; counters are preserved for inspection.
// Goroutines already blocked inside a Gate hook are not released —
// open the gate as well.
func (p *Point) Disarm() { p.hook.Store(nil) }

// Hits returns the number of hits observed since the last Arm.
func (p *Point) Hits() int64 { return p.hits.Load() }

// Fires returns the number of fired hits since the last Arm.
func (p *Point) Fires() int64 { return p.fires.Load() }

// Lookup returns the point registered under name.
func Lookup(name string) (*Point, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	p, ok := registry.points[name]
	return p, ok
}

// Arm installs h on the point registered under name.
func Arm(name string, h Hook) error {
	p, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("faultpoint: unknown point %q", name)
	}
	p.Arm(h)
	return nil
}

// DisarmAll removes the hooks from every registered point.
func DisarmAll() {
	for _, p := range all() {
		p.Disarm()
	}
}

// Counts is a counter snapshot of one point.
type Counts struct {
	Hits, Fires int64
	Armed       bool
}

// Counters returns a snapshot of every registered point's counters,
// keyed by point name.
func Counters() map[string]Counts {
	out := make(map[string]Counts)
	for _, p := range all() {
		out[p.name] = Counts{Hits: p.Hits(), Fires: p.Fires(), Armed: p.Enabled()}
	}
	return out
}

// Names returns the registered point names, sorted.
func Names() []string {
	ps := all()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	sort.Strings(names)
	return names
}

func all() []*Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	ps := make([]*Point, 0, len(registry.points))
	for _, p := range registry.points {
		ps = append(ps, p)
	}
	return ps
}

// Canned hooks.

// Always fires on every hit.
func Always() Hook {
	return Hook{Decide: func(int64) bool { return true }}
}

// Never observes hits without firing (reach measurement).
func Never() Hook { return Hook{} }

// OnHit fires on exactly the nth hit (1-based).
func OnHit(n int64) Hook {
	return Hook{Decide: func(hit int64) bool { return hit == n }}
}

// Every fires on every nth hit.
func Every(n int64) Hook {
	return Hook{Decide: func(hit int64) bool { return hit%n == 0 }}
}

// WithProb fires each hit with probability p, drawn from a PRNG seeded
// with seed: runs with the same seed and a deterministic schedule
// reproduce the same firing pattern.
func WithProb(p float64, seed uint64) Hook {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, 0xfa017))
	return Hook{Decide: func(int64) bool {
		mu.Lock()
		fired := rng.Float64() < p
		mu.Unlock()
		return fired
	}}
}

// Delayed wraps h, sleeping d before each decision — a blunt instrument
// for widening race windows under load (use Gate for exact schedules).
func Delayed(d time.Duration, h Hook) Hook {
	return Hook{Decide: func(hit int64) bool {
		time.Sleep(d)
		if h.Decide == nil {
			return false
		}
		return h.Decide(hit)
	}}
}

// Gate blocks goroutines that hit its hook until the test opens it —
// the pause/resume primitive for deterministic interleaving control.
//
//	g := faultpoint.NewGate()
//	point.Arm(g.Hook(1))          // pause the 1st hitter
//	go m.rebalance(c)             // runs until it hits the point
//	g.WaitArrival(time.Second)    // rebalancer is now parked mid-window
//	...                           // interfere: reads, scans, other ops
//	g.Open()                      // release it
type Gate struct {
	release  chan struct{}
	arrivals chan struct{}
	once     sync.Once
}

// NewGate returns a closed gate.
func NewGate() *Gate {
	return &Gate{
		release:  make(chan struct{}),
		arrivals: make(chan struct{}, 1024),
	}
}

// Hook returns a hook that blocks the nth hitter (and every later one)
// at the gate until Open; earlier hits pass through. The hook never
// fires the fault — pausing is its only effect — so it suits both
// pause-style and branch-style sites.
func (g *Gate) Hook(n int64) Hook {
	return Hook{Decide: func(hit int64) bool {
		if hit < n {
			return false
		}
		select {
		case g.arrivals <- struct{}{}:
		default:
		}
		<-g.release
		return false
	}}
}

// WaitArrival blocks until a goroutine parks at the gate, or the
// timeout elapses; it reports whether an arrival was observed. Each
// arrival is consumed once.
func (g *Gate) WaitArrival(timeout time.Duration) bool {
	select {
	case <-g.arrivals:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Open releases all current and future hitters. Idempotent.
func (g *Gate) Open() { g.once.Do(func() { close(g.release) }) }
