package faultpoint

import (
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNoop(t *testing.T) {
	p := New("test/noop")
	for i := 0; i < 100; i++ {
		if p.Fire() {
			t.Fatal("disarmed point fired")
		}
	}
	if p.Hits() != 0 {
		t.Fatalf("disarmed point counted %d hits", p.Hits())
	}
}

func TestCannedHooks(t *testing.T) {
	p := New("test/canned")

	p.Arm(Always())
	if !p.Fire() || !p.Fire() {
		t.Fatal("Always did not fire")
	}
	if p.Hits() != 2 || p.Fires() != 2 {
		t.Fatalf("counters = %d/%d; want 2/2", p.Hits(), p.Fires())
	}

	p.Arm(Never())
	p.Fire()
	p.Fire()
	if p.Hits() != 2 || p.Fires() != 0 {
		t.Fatalf("Never: counters = %d/%d; want 2/0", p.Hits(), p.Fires())
	}

	p.Arm(OnHit(3))
	got := []bool{p.Fire(), p.Fire(), p.Fire(), p.Fire()}
	want := []bool{false, false, true, false}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("OnHit(3) hit %d = %v; want %v", i+1, got[i], want[i])
		}
	}

	p.Arm(Every(2))
	fires := 0
	for i := 0; i < 10; i++ {
		if p.Fire() {
			fires++
		}
	}
	if fires != 5 {
		t.Fatalf("Every(2) fired %d of 10; want 5", fires)
	}

	p.Disarm()
	if p.Enabled() {
		t.Fatal("still enabled after Disarm")
	}
	if p.Fire() {
		t.Fatal("fired after Disarm")
	}
}

func TestWithProbIsSeeded(t *testing.T) {
	run := func(seed uint64) []bool {
		p, _ := Lookup("test/prob")
		if p == nil {
			p = New("test/prob")
		}
		p.Arm(WithProb(0.5, seed))
		defer p.Disarm()
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Fire()
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different firing pattern")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit pattern (suspicious)")
	}
}

func TestGatePauseResume(t *testing.T) {
	p := New("test/gate")
	g := NewGate()
	p.Arm(g.Hook(2)) // second hitter parks
	defer p.Disarm()

	if p.Fire() {
		t.Fatal("gate hook fired")
	}

	released := make(chan struct{})
	go func() {
		p.Fire() // parks until Open
		close(released)
	}()
	if !g.WaitArrival(5 * time.Second) {
		t.Fatal("no arrival at gate")
	}
	select {
	case <-released:
		t.Fatal("goroutine passed a closed gate")
	case <-time.After(20 * time.Millisecond):
	}
	g.Open()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutine not released by Open")
	}
	g.Open() // idempotent
	p.Fire() // open gate: passes straight through
}

func TestRegistryArmAndCounters(t *testing.T) {
	p := New("test/registry")
	if err := Arm("test/registry", Always()); err != nil {
		t.Fatal(err)
	}
	p.Fire()
	cs := Counters()
	c, ok := cs["test/registry"]
	if !ok || c.Hits != 1 || c.Fires != 1 || !c.Armed {
		t.Fatalf("Counters() = %+v, %v", c, ok)
	}
	if err := Arm("test/nonexistent", Always()); err == nil {
		t.Fatal("Arm of unknown point succeeded")
	}
	DisarmAll()
	if p.Enabled() {
		t.Fatal("DisarmAll left point armed")
	}
	found := false
	for _, n := range Names() {
		if n == "test/registry" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing registered point")
	}
}

func TestConcurrentFire(t *testing.T) {
	p := New("test/concurrent")
	p.Arm(Every(3))
	defer p.Disarm()
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 3000; i++ {
				if p.Fire() {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if p.Hits() != 24000 {
		t.Fatalf("hits = %d; want 24000", p.Hits())
	}
	if int64(total) != p.Fires() || total != 8000 {
		t.Fatalf("fires = %d (returned %d); want 8000", p.Fires(), total)
	}
}
