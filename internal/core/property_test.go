package core

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"oakmap/internal/arena"
)

// refModel is a sequential oracle for the map semantics.
type refModel map[string]string

// TestOpSequenceProperty drives the map and the oracle with identical
// random operation sequences and compares every observable result. Runs
// with a tiny chunk capacity so rebalances, splits and merges happen
// constantly.
func TestOpSequenceProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		m := New(&Options{ChunkCapacity: 16, Pool: arena.NewPool(1<<20, 0)})
		defer m.Close()
		ref := refModel{}
		rng := rand.New(rand.NewPCG(seed, 99))
		for _, op := range opsRaw {
			k := ik(int(rng.Uint64() % 64))
			ks := string(k)
			switch op % 7 {
			case 0, 1:
				v := iv(int(op))
				if err := m.Put(k, v); err != nil {
					return false
				}
				ref[ks] = string(v)
			case 2:
				v := iv(int(op) + 1000)
				ok, err := m.PutIfAbsent(k, v)
				if err != nil {
					return false
				}
				_, had := ref[ks]
				if ok == had {
					return false // inserted iff absent
				}
				if !had {
					ref[ks] = string(v)
				}
			case 3:
				ok, err := m.Remove(k)
				if err != nil {
					return false
				}
				_, had := ref[ks]
				if ok != had {
					return false
				}
				delete(ref, ks)
			case 4:
				ok, err := m.ComputeIfPresent(k, func(w *WBuffer) error {
					b := w.Bytes()
					for i := range b {
						b[i] = 'C'
					}
					return nil
				})
				if err != nil {
					return false
				}
				old, had := ref[ks]
				if ok != had {
					return false
				}
				if had {
					ref[ks] = string(bytes.Repeat([]byte{'C'}, len(old)))
				}
			case 5:
				got, ok := getString2(m, k)
				want, had := ref[ks]
				if ok != had || (had && got != want) {
					return false
				}
			default:
				// Scan equality against the sorted oracle.
				var gotKeys []string
				m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
					gotKeys = append(gotKeys, string(m.KeyBytes(kr)))
					return true
				})
				var wantKeys []string
				for kk := range ref {
					wantKeys = append(wantKeys, kk)
				}
				sort.Strings(wantKeys)
				if len(gotKeys) != len(wantKeys) {
					return false
				}
				for i := range gotKeys {
					if gotKeys[i] != wantKeys[i] {
						return false
					}
				}
			}
		}
		return m.Len() == len(ref)
	}
	cfg := &quick.Config{MaxCount: 60, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func getString2(m *Map, k []byte) (string, bool) {
	h, ok := m.Get(k)
	if !ok {
		return "", false
	}
	b, err := m.CopyValue(h, nil)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// TestScanBoundsProperty: for random bounds, Ascend [lo,hi) equals the
// oracle filter, and Descend equals its reverse.
func TestScanBoundsProperty(t *testing.T) {
	m := newTestMap(t, 16)
	present := map[int]bool{}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 400; i++ {
		k := int(rng.Uint64() % 1000)
		m.Put(ik(k), iv(k))
		present[k] = true
	}
	var sorted []int
	for k := range present {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)

	f := func(a, b uint16) bool {
		lo, hi := int(a)%1100, int(b)%1100
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []int
		for _, k := range sorted {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		var asc []int
		m.Ascend(ik(lo), ik(hi), func(kr uint64, h ValueHandle) bool {
			asc = append(asc, kint(m, kr))
			return true
		})
		var desc []int
		m.Descend(ik(lo), ik(hi), func(kr uint64, h ValueHandle) bool {
			desc = append(desc, kint(m, kr))
			return true
		})
		if len(asc) != len(want) || len(desc) != len(want) {
			return false
		}
		for i := range want {
			if asc[i] != want[i] || desc[i] != want[len(want)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func kint(m *Map, kr uint64) int {
	b := m.KeyBytes(kr)
	n := 0
	for _, c := range b {
		n = n<<8 | int(c)
	}
	return n
}

// TestNavigationProperty checks Floor/Ceiling/Lower/Higher against the
// sorted oracle for random probes.
func TestNavigationProperty(t *testing.T) {
	m := newTestMap(t, 16)
	present := map[int]bool{}
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 300; i++ {
		k := int(rng.Uint64() % 800)
		m.Put(ik(k), iv(k))
		present[k] = true
	}
	var sorted []int
	for k := range present {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)

	f := func(probeRaw uint16) bool {
		p := int(probeRaw) % 900
		floor, ceil, lower, higher := -1, -1, -1, -1
		for _, k := range sorted {
			if k <= p {
				floor = k
			}
			if k < p {
				lower = k
			}
			if k >= p && ceil < 0 {
				ceil = k
			}
			if k > p && higher < 0 {
				higher = k
			}
		}
		check := func(got uint64, ok bool, want int) bool {
			if (want >= 0) != ok {
				return false
			}
			return !ok || kint(m, got) == want
		}
		kr, _, ok := m.Floor(ik(p))
		if !check(kr, ok, floor) {
			return false
		}
		kr, _, ok = m.Ceiling(ik(p))
		if !check(kr, ok, ceil) {
			return false
		}
		kr, _, ok = m.Lower(ik(p))
		if !check(kr, ok, lower) {
			return false
		}
		kr, _, ok = m.Higher(ik(p))
		return check(kr, ok, higher)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolExhaustionMidStream: when the block pool runs dry, operations
// fail with an error and the map stays consistent and readable.
func TestPoolExhaustionMidStream(t *testing.T) {
	pool := arena.NewPool(1<<16, 1<<17) // two 64KiB blocks only
	m := New(&Options{ChunkCapacity: 64, Pool: pool})
	defer m.Close()
	var inserted []int
	var failedAt = -1
	for i := 0; i < 10000; i++ {
		err := m.Put(ik(i), bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			failedAt = i
			break
		}
		inserted = append(inserted, i)
	}
	if failedAt < 0 {
		t.Fatal("expected pool exhaustion")
	}
	// Everything inserted before the failure is still intact.
	for _, i := range inserted {
		h, ok := m.Get(ik(i))
		if !ok {
			t.Fatalf("key %d lost after exhaustion", i)
		}
		m.ReadValue(h, func(b []byte) error {
			if len(b) != 100 || b[0] != byte(i) {
				t.Fatalf("key %d corrupted", i)
			}
			return nil
		})
	}
	// Removing makes room again (first-fit reuse).
	for _, i := range inserted[:len(inserted)/2] {
		if ok, _ := m.Remove(ik(i)); !ok {
			t.Fatalf("remove %d", i)
		}
	}
	if err := m.Put(ik(99999), bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatalf("put after freeing space: %v", err)
	}
}

// TestLargeValueRejected: a value exceeding the block size fails cleanly.
func TestLargeValueRejected(t *testing.T) {
	m := New(&Options{ChunkCapacity: 64, Pool: arena.NewPool(1<<16, 0)})
	defer m.Close()
	if err := m.Put(ik(1), make([]byte, 1<<17)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if m.Len() != 0 {
		t.Fatal("failed put changed the size")
	}
	// The failed put may leave a linked entry holding just the key (the
	// value allocation failed after linking); it must be reused by the
	// next insert of the same key rather than duplicated.
	if m.LiveBytes() > 8 {
		t.Fatalf("LiveBytes = %d after failed put; want ≤ one key", m.LiveBytes())
	}
	if err := m.Put(ik(1), []byte("ok")); err != nil {
		t.Fatalf("reinsert after failed put: %v", err)
	}
	if got, _ := getString(t, m, ik(1)); got != "ok" {
		t.Fatalf("value after reinsert = %q", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after reinsert", m.Len())
	}
}

// TestRebalanceMergesEmptyChunks: removing a whole key range lets
// subsequent rebalances merge its chunks away.
func TestRebalanceMergesEmptyChunks(t *testing.T) {
	m := newTestMap(t, 32)
	const n = 4000
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	peak := m.NumChunks()
	for i := 0; i < n; i++ {
		m.Remove(ik(i))
	}
	// Churn a small window to trigger rebalances over the empty regions.
	for round := 0; round < 300; round++ {
		for i := 0; i < 40; i++ {
			mustPut(t, m, ik(i), iv(round))
		}
		for i := 0; i < 40; i++ {
			m.Remove(ik(i))
		}
	}
	if got := m.NumChunks(); got >= peak {
		t.Fatalf("chunks did not shrink: peak %d, now %d", peak, got)
	}
}

// TestIndexConsistencyAfterManyRebalances: locate every key through the
// index after heavy split/merge churn.
func TestIndexConsistencyAfterManyRebalances(t *testing.T) {
	m := newTestMap(t, 16)
	rng := rand.New(rand.NewPCG(11, 12))
	live := map[int]bool{}
	for i := 0; i < 20000; i++ {
		k := int(rng.Uint64() % 3000)
		if rng.Uint64()%3 == 0 {
			m.Remove(ik(k))
			delete(live, k)
		} else {
			mustPut(t, m, ik(k), iv(k))
			live[k] = true
		}
	}
	for k := range live {
		if _, ok := m.Get(ik(k)); !ok {
			t.Fatalf("live key %d unreachable", k)
		}
	}
	for k := 0; k < 3000; k++ {
		if !live[k] {
			if _, ok := m.Get(ik(k)); ok {
				t.Fatalf("dead key %d reachable", k)
			}
		}
	}
	if m.Len() != len(live) {
		t.Fatalf("Len %d != %d", m.Len(), len(live))
	}
}

// TestConcurrentScanDuringRebalance runs full scans while writers force
// constant splits, asserting RB1: keys present throughout are always
// reported, in order, exactly once.
func TestConcurrentScanDuringRebalance(t *testing.T) {
	m := newTestMap(t, 16)
	// Stable residents: every scan must see all of them.
	const residents = 500
	for i := 0; i < residents; i++ {
		mustPut(t, m, ik(i*10), iv(i))
	}
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewPCG(21, 22))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int(rng.Uint64()%residents)*10 + 1 + int(rng.Uint64()%9)
			if rng.Uint64()%2 == 0 {
				m.Put(ik(k), iv(k))
			} else {
				m.Remove(ik(k))
			}
		}
	}()
	for round := 0; round < 50; round++ {
		seen := map[int]int{}
		prev := -1
		m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
			k := kint(m, kr)
			if k <= prev {
				t.Fatalf("scan order violation: %d after %d", k, prev)
			}
			prev = k
			seen[k]++
			return true
		})
		for i := 0; i < residents; i++ {
			if seen[i*10] != 1 {
				t.Fatalf("round %d: resident %d seen %d times", round, i*10, seen[i*10])
			}
		}
	}
	close(stop)
}

// TestScanRB2NeverResurrects (RB2): keys removed before a scan starts
// and never re-inserted must not appear in the scan, even while
// rebalances churn the chunk list.
func TestScanRB2NeverResurrects(t *testing.T) {
	m := newTestMap(t, 16)
	const n = 600
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	// Remove every third key before any scanning starts.
	removed := map[int]bool{}
	for i := 0; i < n; i += 3 {
		if ok, _ := m.Remove(ik(i)); !ok {
			t.Fatalf("remove %d", i)
		}
		removed[i] = true
	}
	stop := make(chan struct{})
	go func() {
		// Churn only keys ≥ n (never the removed ones) to force
		// rebalances that carry dead entries around.
		rng := rand.New(rand.NewPCG(3, 4))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := n + int(rng.Uint64()%500)
			if rng.Uint64()%2 == 0 {
				m.Put(ik(k), iv(k))
			} else {
				m.Remove(ik(k))
			}
		}
	}()
	for round := 0; round < 60; round++ {
		m.Ascend(nil, ik(n), func(kr uint64, h ValueHandle) bool {
			k := kint(m, kr)
			if removed[k] {
				t.Errorf("round %d: removed key %d resurrected in scan", round, k)
				return false
			}
			return true
		})
		m.Descend(nil, ik(n), func(kr uint64, h ValueHandle) bool {
			k := kint(m, kr)
			if removed[k] {
				t.Errorf("round %d: removed key %d resurrected in descend", round, k)
				return false
			}
			return true
		})
	}
	close(stop)
}
