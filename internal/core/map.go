// Package core implements the Oak algorithm (§4) over serialized []byte
// keys and values: a linked list of chunks indexed by a skiplist of
// minKeys, with keys and values allocated off-heap (in arena blocks) and
// all metadata on-heap (§3.1).
//
// The package operates below (de)serialization: the public generic API in
// package oakmap wraps it. Values are identified by handles — indexes
// into a vheader.Table whose headers carry the concurrency-control word
// and the value's current data reference (§3.3).
package core

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"

	"oakmap/internal/arena"
	"oakmap/internal/chunk"
	"oakmap/internal/epoch"
	"oakmap/internal/skiplist"
	"oakmap/internal/telemetry"
	"oakmap/internal/vheader"
)

// Comparator orders serialized keys; nil means bytes.Compare.
type Comparator = chunk.Comparator

// Errors returned by map operations.
var (
	// ErrConcurrentModification is returned when a buffer view observes
	// that its mapping was deleted — the Go analogue of the paper's
	// ConcurrentModificationException for reads of removed values.
	ErrConcurrentModification = errors.New("oak: value concurrently deleted")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("oak: map closed")
)

// Options configures a core map.
type Options struct {
	// ChunkCapacity is the entries-array size per chunk (paper: 4096).
	ChunkCapacity int
	// RebalanceRatio triggers a rebalance when the unsorted suffix
	// exceeds ratio × max(sortedPrefix, ChunkCapacity/8). The paper uses
	// 0.5 ("whenever the unsorted linked list exceeds half of the sorted
	// prefix").
	RebalanceRatio float64
	// Pool supplies off-heap blocks; nil uses arena.DefaultPool().
	Pool *arena.Pool
	// Comparator orders keys; nil means bytes.Compare.
	Comparator Comparator
	// DisableFirstFit turns off free-space reuse entirely (allocator
	// ablation: pure bump allocation).
	DisableFirstFit bool
	// FlatFreeList selects the paper-faithful flat first-fit free list
	// (§3.2) instead of the default segregated size-class allocator
	// (allocator ablation). Ignored when DisableFirstFit is set.
	FlatFreeList bool
	// ReclaimHeaders selects the generation-based reclaiming header
	// table (the paper's epoch extension, §3.3) instead of the default
	// append-only table: value headers are recycled once their mapping
	// is removed, bounding header space by the peak live-value count.
	// Recycling is deferred through the map's epoch domain, so a stale
	// handle held by a reader is never re-issued within that reader's
	// pinned critical section.
	ReclaimHeaders bool
	// DisableKeyReclaim turns off the epoch-based reclamation of dead
	// key space during rebalance (ablation / paper-faithful baseline).
	// By default dead keys are retired through the epoch domain and
	// their space is reused after the grace period; with this option
	// set they are retained forever and accounted in KeyLeakBytes.
	DisableKeyReclaim bool
	// Telemetry, when non-nil, receives op-latency samples, structural
	// events, and span timings from the map and its allocator/epoch
	// domain. Nil (the default) disables all recording; the residual
	// cost is a nil check per instrumented site.
	Telemetry *telemetry.Recorder
}

func (o *Options) withDefaults() Options {
	v := Options{}
	if o != nil {
		v = *o
	}
	if v.ChunkCapacity <= 0 {
		v.ChunkCapacity = chunk.DefaultCapacity
	}
	if v.RebalanceRatio <= 0 {
		v.RebalanceRatio = 0.5
	}
	if v.Pool == nil {
		v.Pool = arena.DefaultPool()
	}
	if v.Comparator == nil {
		v.Comparator = bytes.Compare
	}
	return v
}

// Map is the core Oak KV-map over serialized keys and values.
type Map struct {
	opts    Options
	cmp     Comparator
	alloc   *arena.Allocator
	headers vheader.HeaderTable
	reclaim *epoch.Domain
	index   *skiplist.List[*chunk.Chunk]
	head    atomic.Pointer[chunk.Chunk]
	closed  atomic.Bool

	// tel is the optional telemetry recorder (nil = disabled); set once
	// at construction, so instrumented paths read it without atomics.
	tel *telemetry.Recorder

	// mvcc is the map's version clock, snapshot registry, and retained-
	// version store (see mvcc.go).
	mvcc mvccState

	// size/rebalances/keyLeak are sharded counters: size moves on every
	// put/remove from every worker, and a single atomic word was the
	// map's hottest shared cache line after the chunk metadata itself.
	size       telemetry.Counter
	rebalances telemetry.Counter // total rebalance operations performed
	keyLeak    telemetry.Counter // bytes of dead keys not reclaimed
}

// Retired-resource kinds routed through the epoch domain.
const (
	retiredSpan   uint8 = iota // an arena span (key or value space)
	retiredHeader              // a value-header handle to recycle
)

// New creates an empty map.
func New(o *Options) *Map {
	opts := o.withDefaults()
	var headers vheader.HeaderTable
	if opts.ReclaimHeaders {
		headers = vheader.NewReclaimingTable()
	} else {
		headers = vheader.NewTable()
	}
	m := &Map{
		opts:    opts,
		cmp:     opts.Comparator,
		alloc:   arena.NewAllocator(opts.Pool),
		headers: headers,
		index:   skiplist.New[*chunk.Chunk](skiplist.Comparator(opts.Comparator)),
		tel:     opts.Telemetry,
	}
	m.mvcc.init()
	m.alloc.SetTelemetry(opts.Telemetry)
	m.reclaim = epoch.NewDomain(func(items []epoch.Retired) {
		for _, r := range items {
			switch r.Kind {
			case retiredSpan:
				m.alloc.Free(arena.Ref(r.Val))
			case retiredHeader:
				m.headers.Release(r.Val)
			}
		}
	})
	m.reclaim.SetTelemetry(opts.Telemetry)
	m.alloc.SetReclaimer(spanRetirer{d: m.reclaim})
	if opts.DisableFirstFit {
		m.alloc.SetMode(arena.ModeBump)
	} else if opts.FlatFreeList {
		m.alloc.SetMode(arena.ModeFirstFit)
	}
	// The head sentinel chunk has minKey nil (-infinity) and is a real
	// data chunk; it is replaced, never removed, by rebalances.
	m.head.Store(chunk.New(nil, opts.ChunkCapacity, m.alloc, m.cmp))
	return m
}

// spanRetirer adapts the epoch domain to arena.Reclaimer: spans handed
// to Allocator.Retire enter the limbo list and come back to
// Allocator.Free once their grace period elapses.
type spanRetirer struct{ d *epoch.Domain }

func (s spanRetirer) RetireSpan(ref arena.Ref) {
	s.d.Retire(epoch.Retired{Kind: retiredSpan, Val: uint64(ref)}, int64(ref.Len()))
}

// retireHeader defers a header-slot recycle until no pinned reader can
// still validate the stale handle. The default append-only table never
// recycles slots, so its (no-op) Release runs immediately.
func (m *Map) retireHeader(h ValueHandle) {
	if !m.opts.ReclaimHeaders {
		m.headers.Release(uint64(h))
		return
	}
	m.reclaim.Retire(epoch.Retired{Kind: retiredHeader, Val: uint64(h)}, 0)
}

// ReclaimStats exposes the epoch domain's snapshot: current epoch,
// pinned readers, and limbo depth.
func (m *Map) ReclaimStats() epoch.Stats { return m.reclaim.Stats() }

// QuiesceReclaim drains the deferred-reclamation limbo by cycling the
// epoch; it reports whether the limbo emptied (false means a reader
// stayed pinned throughout). Useful before footprint assertions and at
// orderly shutdown.
func (m *Map) QuiesceReclaim() bool { return m.reclaim.Quiesce() }

// Len returns the number of live key-value pairs. Under concurrency the
// value is linearizable only in quiescent states, like size() in Java's
// concurrent maps.
func (m *Map) Len() int { return int(m.size.Load()) }

// Footprint returns the total off-heap bytes held by the map's allocator.
// The paper highlights cheap RAM-footprint estimation as a first-class
// feature (§1.1).
func (m *Map) Footprint() int64 { return m.alloc.Footprint() }

// LiveBytes returns the currently allocated off-heap bytes (keys, values,
// and free-list slack excluded).
func (m *Map) LiveBytes() int64 { return m.alloc.LiveBytes() }

// ArenaStats exposes the allocator's accounting snapshot.
func (m *Map) ArenaStats() arena.Stats { return m.alloc.Stats() }

// Rebalances returns the number of chunk rebalances performed.
func (m *Map) Rebalances() int64 { return m.rebalances.Load() }

// HeaderCount returns the number of value-header slots materialized.
// With the default table this grows with every insertion ever made;
// with ReclaimHeaders it is bounded by the peak number of live values.
func (m *Map) HeaderCount() uint64 { return m.headers.Count() }

// NumChunks counts the chunks currently in the list.
func (m *Map) NumChunks() int {
	n := 0
	for c := m.head.Load(); c != nil; c = chunk.Forward(c).Next() {
		n++
	}
	return n
}

// Close releases all off-heap blocks back to the pool. The map must not
// be used afterwards.
func (m *Map) Close() {
	if m.closed.CompareAndSwap(false, true) {
		// Best-effort limbo drain so accounting is clean before the
		// blocks go back to the pool; a reader still pinned just means
		// its spans are dropped with the blocks.
		m.reclaim.Quiesce()
		m.alloc.Close()
	}
}

// locateChunk returns the chunk whose range includes key (§3.1): it
// queries the (possibly outdated) index and completes with a partial
// traversal of the chunk linked list.
func (m *Map) locateChunk(key []byte) *chunk.Chunk {
	var c *chunk.Chunk
	if e, ok := m.index.Floor(key); ok {
		c = e.Value
	} else {
		c = m.head.Load()
	}
	c = chunk.Forward(c)
	for {
		n := c.Next()
		if n == nil {
			return c
		}
		n = chunk.Forward(n)
		if nk := n.MinKey(); nk != nil && m.cmp(key, nk) >= 0 {
			c = n
			continue
		}
		return c
	}
}

// lastChunk returns the final chunk in the list (for unbounded
// descending scans).
func (m *Map) lastChunk() *chunk.Chunk {
	var c *chunk.Chunk
	if e, ok := m.index.Last(); ok {
		c = chunk.Forward(e.Value)
	} else {
		c = chunk.Forward(m.head.Load())
	}
	for {
		n := c.Next()
		if n == nil {
			return c
		}
		c = chunk.Forward(n)
	}
}

// prevChunk returns the chunk preceding (in key order) a chunk whose
// minKey is given, or nil when minKey is nil (the head chunk has no
// predecessor). As in the paper's descending scan, it queries the index
// for the greatest minKey strictly smaller than the current one and
// walks forward as needed.
func (m *Map) prevChunk(minKey []byte) *chunk.Chunk {
	if minKey == nil {
		return nil
	}
	var c *chunk.Chunk
	if e, ok := m.index.Lower(minKey); ok {
		c = chunk.Forward(e.Value)
	} else {
		c = chunk.Forward(m.head.Load())
	}
	for {
		n := c.Next()
		if n == nil {
			return c
		}
		n = chunk.Forward(n)
		if nk := n.MinKey(); nk == nil || m.cmp(nk, minKey) < 0 {
			c = n
			continue
		}
		return c
	}
}

// retryPause yields the processor on long retry chains (e.g. while a
// rebalance is in flight on a hot chunk).
func retryPause(attempt int) {
	if attempt > 4 {
		runtime.Gosched()
	}
}

// OccupancyStats summarizes the chunk population — the observability
// counterpart of the paper's data-organization claims (§3.1): how full
// the sorted prefixes are, how long the unsorted suffixes have grown.
type OccupancyStats struct {
	Chunks         int
	Entries        int // allocated entry slots across chunks
	Sorted         int // entries in sorted prefixes
	Live           int // heuristic live entries
	MinLive        int
	MaxLive        int
	AvgUtilization float64 // live entries / total capacity
}

// Occupancy walks the chunk list and returns its population statistics.
func (m *Map) Occupancy() OccupancyStats {
	st := OccupancyStats{MinLive: int(^uint(0) >> 1)}
	capTotal := 0
	for c := m.head.Load(); c != nil; {
		c = chunk.Forward(c)
		st.Chunks++
		st.Entries += c.Allocated()
		st.Sorted += c.SortedCount()
		live := c.Live()
		st.Live += live
		if live < st.MinLive {
			st.MinLive = live
		}
		if live > st.MaxLive {
			st.MaxLive = live
		}
		capTotal += c.Capacity()
		c = c.Next()
	}
	if st.Chunks == 0 {
		st.MinLive = 0
	}
	if capTotal > 0 {
		st.AvgUtilization = float64(st.Live) / float64(capTotal)
	}
	return st
}
