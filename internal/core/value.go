package core

import (
	"oakmap/internal/arena"
	"oakmap/internal/faultpoint"
)

// Fault-injection points on the value-header protocol (no-ops unless a
// test arms them).
var (
	// fpHeaderLock is hit with the value's write lock held (valuePut /
	// valueCompute): a pausing hook stretches the critical section so
	// concurrent readers and writers pile up on the header spinlock.
	fpHeaderLock = faultpoint.New("core/header-lock")
	// fpDeletedBit is hit between setting a value's deleted bit and
	// releasing its data space: in this window the handle must read as
	// deleted everywhere while the entry still references it.
	fpDeletedBit = faultpoint.New("core/deleted-bit")
)

// ValueHandle identifies a value: an index into the map's header table.
// Handles are never reused (§3.3), so they double as ABA-free tokens on
// the remove path (§4.4). Handle 0 is ⊥.
type ValueHandle uint64

// KeyBytes returns the serialized key behind a key reference. Keys are
// immutable, so no locking is required (§2.1) — but with key
// reclamation the caller must hold an epoch pin (all internal scan and
// lookup paths do); external view reads go through ReadKey instead.
func (m *Map) KeyBytes(keyRef uint64) []byte {
	return m.alloc.Bytes(arena.Ref(keyRef))
}

// ReadKey runs f on the serialized key behind keyRef under an epoch
// pin, so the key's space cannot be recycled mid-read. h is the entry's
// value handle at view-creation time: a live (non-deleted) handle
// proves the entry — and therefore its key — has not been gathered as
// dead by any rebalance, so the bytes are authentic. Once the mapping
// has been deleted the read fails with ErrConcurrentModification
// rather than returning possibly-recycled bytes. h may be 0 when the
// caller is already pinned and owns the liveness argument itself.
func (m *Map) ReadKey(keyRef uint64, h ValueHandle, f func([]byte) error) error {
	g := m.reclaim.Pin()
	defer g.Unpin()
	if h != 0 && m.IsDeleted(h) {
		return ErrConcurrentModification
	}
	return f(m.KeyBytes(keyRef))
}

// CopyKey appends the serialized key behind keyRef to dst under an
// epoch pin, validated against the entry's value handle like ReadKey.
// The returned slice is an owned on-heap copy, safe to hold and compare
// after the call — the building block for cross-shard navigation
// queries, which must order candidate keys from several maps outside
// any single map's pin.
func (m *Map) CopyKey(keyRef uint64, h ValueHandle, dst []byte) ([]byte, error) {
	err := m.ReadKey(keyRef, h, func(b []byte) error {
		dst = append(dst, b...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// IsDeleted reports whether the value behind h is deleted.
func (m *Map) IsDeleted(h ValueHandle) bool {
	return m.headers.IsDeleted(uint64(h))
}

// ReadValue runs f on the value's current serialized bytes under the
// value's read lock (one atomic acquisition per call — the paper's
// method-call-granularity concurrency control, §2.2). It returns
// ErrConcurrentModification if the value was deleted. f must not retain
// the slice beyond the call.
//
// A batch-flagged version word (the MVCC slow path, one extra atomic
// load on the fast path) routes through the pending-batch registry so
// the caller observes the batch all-or-nothing: its pre-state before
// commit, its post-state after.
func (m *Map) ReadValue(h ValueHandle, f func([]byte) error) error {
	if !m.headers.TryReadLock(uint64(h)) {
		return ErrConcurrentModification
	}
	defer m.headers.ReadUnlock(uint64(h))
	if v := m.headers.LoadVersion(uint64(h)); v&verFlagMask != 0 {
		return m.readFlagged(h, v, f)
	}
	ref := arena.Ref(m.headers.LoadData(uint64(h)))
	return f(m.alloc.Bytes(ref))
}

// ValueLen returns the value's current length in bytes, or an error if
// the value is deleted.
func (m *Map) ValueLen(h ValueHandle) (int, error) {
	n := -1
	err := m.ReadValue(h, func(b []byte) error { n = len(b); return nil })
	return n, err
}

// CopyValue appends the value's bytes to dst and returns the result.
func (m *Map) CopyValue(h ValueHandle, dst []byte) ([]byte, error) {
	err := m.ReadValue(h, func(b []byte) error {
		dst = append(dst, b...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// valuePut implements v.put(val) (§3.3): replace the value's contents
// atomically. Returns false iff the value is deleted. If the new content
// has a different size, the buffer is reallocated and the old space is
// freed (the paper's "return to the free list upon ... value resize").
//
// MVCC: the write stamps the clock's current version. The version must
// be loaded BEFORE the retention gate, and BeginSnapshot raises the
// floor BEFORE its clock ratchet; together the two orders cover every
// interleaving with a snapshot S: if newVer ≤ S the snapshot sees this
// write and the pre-image is not needed, and if newVer > S the clock
// load observed the ratchet, so the later gate load is guaranteed to
// observe the raised floor and retain. When some open snapshot can see
// the old version, the in-place path is disabled (copy-on-write: the
// old span's bytes must survive) and the superseded span is retained
// instead of retired. key is the serialized key for the retained-chain
// index; nil means the value was never visible and retention never
// applies.
func (m *Map) valuePut(key []byte, h ValueHandle, vw ValueWriter) (bool, error) {
	oldVer, ok := m.lockStable(h)
	if !ok {
		return false, nil
	}
	defer m.headers.WriteUnlock(uint64(h))
	fpHeaderLock.Fire()
	newVer := m.mvcc.clock.Load()
	retain := key != nil && oldVer < m.mvcc.retainFloor.Load()
	old := arena.Ref(m.headers.LoadData(uint64(h)))
	if old.Len() == vw.N && !retain {
		vw.Write(m.alloc.Bytes(old))
		m.headers.StoreVersion(uint64(h), newVer)
		return true, nil
	}
	nref, err := m.alloc.Alloc(vw.N)
	if err != nil {
		return false, err
	}
	vw.Write(m.alloc.Bytes(nref))
	m.headers.StoreData(uint64(h), uint64(nref))
	m.headers.StoreVersion(uint64(h), newVer)
	// The write lock excludes in-protocol readers, but the old span is
	// retired (not freed) so any path that loaded the ref under an
	// epoch pin stays safe until the grace period elapses — or retained,
	// if an open snapshot can still see version oldVer.
	m.retireOrRetain(key, old, oldVer, newVer)
	return true, nil
}

// valueCompute implements v.compute(func) (§3.3): run the user's update
// lambda on the value in place, atomically, exactly once. Returns false
// iff the value is deleted.
//
// MVCC: when an open snapshot can see the current version, the span is
// privatized first (copy-on-write) so the lambda's in-place mutation
// cannot destroy snapshot-visible bytes; the pre-image is retained.
func (m *Map) valueCompute(key []byte, h ValueHandle, f func(*WBuffer) error) (bool, error) {
	oldVer, ok := m.lockStable(h)
	if !ok {
		return false, nil
	}
	defer m.headers.WriteUnlock(uint64(h))
	fpHeaderLock.Fire()
	newVer := m.mvcc.clock.Load()
	if key != nil && oldVer < m.mvcc.retainFloor.Load() {
		old := arena.Ref(m.headers.LoadData(uint64(h)))
		nref, err := m.alloc.Alloc(old.Len())
		if err != nil {
			return false, err
		}
		copy(m.alloc.Bytes(nref), m.alloc.Bytes(old))
		m.headers.StoreData(uint64(h), uint64(nref))
		m.retireOrRetain(key, old, oldVer, newVer)
	}
	m.headers.StoreVersion(uint64(h), newVer)
	w := WBuffer{m: m, h: h}
	if err := f(&w); err != nil {
		return false, err
	}
	return true, nil
}

// valueRemove implements v.remove() (§3.3): atomically mark the value
// deleted. Returns false iff it was already deleted. On success the data
// space returns to the free list; the header is retained (default
// reclamation policy, §3.3) or recycled later via Release.
//
// MVCC: the delete happens at the clock's current version; if an open
// snapshot can see the removed value, its span is retained (the
// snapshot resolves the key through the retained chain — the deleted
// header carries no data).
func (m *Map) valueRemove(key []byte, h ValueHandle) bool {
	oldVer, ok := m.lockStable(h)
	if !ok {
		return false
	}
	delVer := m.mvcc.clock.Load()
	// Privatize the data reference while still holding the write lock,
	// and only then set the deleted bit (which releases the lock). The
	// order is load-bearing under header reclamation: the moment the
	// deleted bit is visible, a concurrent insert over the same entry may
	// Release this header and recycle its slot, so the header must not be
	// touched after DeleteLocked. (Found by the deleted-bit fault window:
	// the previous set-bit-then-privatize order let the remover clobber a
	// recycled slot's data word and free another value's space.)
	ref := arena.Ref(m.headers.LoadData(uint64(h)))
	m.headers.StoreData(uint64(h), 0)
	// The protecting lock is the header's word-level write lock taken by
	// lockStable above — a vheader spinlock, not a sync.Mutex, so the
	// lockguard walker cannot see it.
	m.headers.DeleteLocked(uint64(h)) //oak:allow lockguard header write-lock held via lockStable
	fpDeletedBit.Fire()
	m.retireOrRetain(key, ref, oldVer, delVer)
	return true
}

// ValueWriter produces a value's serialized form directly inside Oak's
// off-heap memory, realizing the paper's "create the binary
// representation of the object directly into Oak's internal memory"
// (§2.1): N is the serialized size, Write fills a buffer of exactly N
// bytes.
type ValueWriter struct {
	N     int
	Write func([]byte)
}

// BytesValue adapts an already-serialized value to a ValueWriter.
func BytesValue(val []byte) ValueWriter {
	return ValueWriter{N: len(val), Write: func(dst []byte) { copy(dst, val) }}
}

// allocValue allocates a fresh value (header + off-heap data), fills it
// via vw, stamps the version word with ver, and returns its handle. The
// header is unpublished, so the stores need no lock.
func (m *Map) allocValue(vw ValueWriter, ver uint64) (ValueHandle, error) {
	ref, err := m.alloc.Alloc(vw.N)
	if err != nil {
		return 0, err
	}
	vw.Write(m.alloc.Bytes(ref))
	h := m.headers.Alloc()
	m.headers.StoreData(h, uint64(ref))
	m.headers.StoreVersion(h, ver)
	return ValueHandle(h), nil
}

// WBuffer is the paper's OakWBuffer: a writable view of a value, valid
// only inside an update lambda, while the value's write lock is held. It
// supports in-place mutation and resizing.
type WBuffer struct {
	m *Map
	h ValueHandle
}

// Bytes returns the value's current writable contents. The slice is
// invalidated by Resize.
func (w *WBuffer) Bytes() []byte {
	ref := arena.Ref(w.m.headers.LoadData(uint64(w.h)))
	return w.m.alloc.Bytes(ref)
}

// Len returns the value's current length.
func (w *WBuffer) Len() int {
	return arena.Ref(w.m.headers.LoadData(uint64(w.h))).Len()
}

// Resize changes the value's length to n, preserving the common prefix.
// Growth beyond the current allocation moves the value to fresh space and
// frees the old buffer — the paper's in-situ update that "extends the
// value's memory allocation if its code so requires" (§2.2).
func (w *WBuffer) Resize(n int) error {
	old := arena.Ref(w.m.headers.LoadData(uint64(w.h)))
	if old.Len() == n {
		return nil
	}
	nref, err := w.m.alloc.Alloc(n)
	if err != nil {
		return err
	}
	nb := w.m.alloc.Bytes(nref)
	copy(nb, w.m.alloc.Bytes(old))
	for i := old.Len(); i < n; i++ {
		nb[i] = 0
	}
	w.m.headers.StoreData(uint64(w.h), uint64(nref))
	w.m.alloc.Retire(old)
	return nil
}

// Set replaces the value's contents with val (resizing as needed).
func (w *WBuffer) Set(val []byte) error {
	if err := w.Resize(len(val)); err != nil {
		return err
	}
	copy(w.Bytes(), val)
	return nil
}
