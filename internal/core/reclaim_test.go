package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func newReclaimMap(t testing.TB) *Map {
	t.Helper()
	m := New(&Options{ChunkCapacity: 64, Pool: testPool(t), ReclaimHeaders: true})
	t.Cleanup(m.Close)
	return m
}

// TestReclaimHeadersSemantics re-runs the core semantic checks with the
// reclaiming header table: behaviour must be indistinguishable.
func TestReclaimHeadersSemantics(t *testing.T) {
	m := newReclaimMap(t)
	mustPut(t, m, ik(1), []byte("one"))
	if got, _ := getString(t, m, ik(1)); got != "one" {
		t.Fatal("get after put")
	}
	if ok, _ := m.Remove(ik(1)); !ok {
		t.Fatal("remove")
	}
	if _, ok := m.Get(ik(1)); ok {
		t.Fatal("get after remove")
	}
	mustPut(t, m, ik(1), []byte("two"))
	if got, _ := getString(t, m, ik(1)); got != "two" {
		t.Fatal("reinsert after remove")
	}
	ok, err := m.PutIfAbsent(ik(1), []byte("x"))
	if err != nil || ok {
		t.Fatal("putIfAbsent on present key")
	}
}

// TestReclaimHeadersBounded: insert/remove churn on a fixed key set must
// not grow the header table without bound — the point of the paper's
// epoch extension.
func TestReclaimHeadersBounded(t *testing.T) {
	m := newReclaimMap(t)
	const keys = 64
	for round := 0; round < 200; round++ {
		for k := 0; k < keys; k++ {
			mustPut(t, m, ik(k), iv(round))
		}
		for k := 0; k < keys; k++ {
			if ok, _ := m.Remove(ik(k)); !ok {
				t.Fatalf("remove round %d key %d", round, k)
			}
		}
	}
	// 200 rounds × 64 keys = 12800 values ever created; the default
	// table would hold 12800 headers. Reclaiming must stay near the peak
	// live count.
	if n := m.HeaderCount(); n > 1024 {
		t.Fatalf("HeaderCount = %d; reclaiming not effective", n)
	}
	// Contrast with the default policy.
	d := newTestMap(t, 64)
	for round := 0; round < 20; round++ {
		for k := 0; k < keys; k++ {
			mustPut(t, d, ik(k), iv(round))
		}
		for k := 0; k < keys; k++ {
			d.Remove(ik(k))
		}
	}
	if n := d.HeaderCount(); n < 20*keys {
		t.Fatalf("default table HeaderCount = %d; expected unbounded growth", n)
	}
}

// TestReclaimHeadersStaleView: an OakRBuffer-style read of a removed
// value whose header slot was recycled must fail, never read the new
// occupant's bytes.
func TestReclaimHeadersStaleView(t *testing.T) {
	m := newReclaimMap(t)
	mustPut(t, m, ik(1), []byte("AAAA"))
	h, ok := m.Get(ik(1))
	if !ok {
		t.Fatal("get")
	}
	m.Remove(ik(1))
	// Force slot reuse by inserting another value.
	mustPut(t, m, ik(2), []byte("BBBB"))
	err := m.ReadValue(h, func(b []byte) error {
		t.Fatalf("stale view read bytes %q", b)
		return nil
	})
	if err != ErrConcurrentModification {
		t.Fatalf("stale view error = %v", err)
	}
}

// TestReclaimHeadersConcurrentChurn mirrors the mixed churn test with
// header reclamation on, under the race detector in CI.
func TestReclaimHeadersConcurrentChurn(t *testing.T) {
	m := newReclaimMap(t)
	const keyRange = 512
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xfeed))
			for i := 0; i < 4000; i++ {
				k := ik(int(rng.Uint64() % keyRange))
				switch rng.Uint64() % 6 {
				case 0, 1, 2:
					if err := m.Put(k, iv(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 3:
					m.Remove(k)
				case 4:
					m.ComputeIfPresent(k, func(w *WBuffer) error {
						b := w.Bytes()
						if len(b) > 0 {
							b[0]++
						}
						return nil
					})
				default:
					if h, ok := m.Get(k); ok {
						m.ReadValue(h, func([]byte) error { return nil })
					}
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	// Quiescent validation.
	count := 0
	var prev []byte
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		key := m.KeyBytes(kr)
		if prev != nil && m.cmp(prev, key) >= 0 {
			t.Fatal("order violation")
		}
		prev = append(prev[:0], key...)
		count++
		return true
	})
	if count != m.Len() {
		t.Fatalf("scan %d != len %d", count, m.Len())
	}
	if n := m.HeaderCount(); n > 8*4000 {
		t.Fatalf("HeaderCount = %d; reclamation ineffective", n)
	}
}

// TestConcurrentResizeVsReaders targets the resize protocol (§2.2): a
// value's data reference may move mid-read. Writers resize values to
// random lengths, encoding the length into every byte; readers must
// always observe a self-consistent (length, content) pair, never a torn
// mix of two incarnations.
func TestConcurrentResizeVsReaders(t *testing.T) {
	for _, reclaim := range []bool{false, true} {
		name := "default"
		if reclaim {
			name = "reclaim"
		}
		t.Run(name, func(t *testing.T) {
			m := New(&Options{ChunkCapacity: 64, Pool: testPool(t), ReclaimHeaders: reclaim})
			defer m.Close()
			const keys = 8
			encode := func(n int) []byte {
				b := make([]byte, n)
				for i := range b {
					b[i] = byte(n)
				}
				return b
			}
			for k := 0; k < keys; k++ {
				mustPut(t, m, ik(k), encode(10))
			}
			stop := make(chan struct{})
			var writers, readers sync.WaitGroup
			for w := 0; w < 2; w++ {
				writers.Add(1)
				go func(seed uint64) {
					defer writers.Done()
					rng := rand.New(rand.NewPCG(seed, 0x5e5))
					for i := 0; i < 4000; i++ {
						k := ik(int(rng.Uint64() % keys))
						n := 1 + int(rng.Uint64()%800)
						m.ComputeIfPresent(k, func(wb *WBuffer) error {
							return wb.Set(encode(n))
						})
					}
				}(uint64(w + 1))
			}
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(seed uint64) {
					defer readers.Done()
					rng := rand.New(rand.NewPCG(seed, 0xead))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := ik(int(rng.Uint64() % keys))
						h, ok := m.Get(k)
						if !ok {
							continue
						}
						m.ReadValue(h, func(b []byte) error {
							want := byte(len(b))
							for i, c := range b {
								if c != want {
									t.Errorf("torn read at %d: byte %x, len %d", i, c, len(b))
									return nil
								}
							}
							return nil
						})
					}
				}(uint64(r + 10))
			}
			// Readers run for the writers' whole lifetime, then stop.
			writers.Wait()
			close(stop)
			readers.Wait()
		})
	}
}
