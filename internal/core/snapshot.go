package core

import (
	"sort"

	"oakmap/internal/arena"
)

// Snapshot read path. A snapshot is a version S from BeginSnapshot
// (stabilized via StabilizeSnapshot): reads resolve every key to the
// newest version ≤ S. The current value answers when its stamp is ≤ S;
// otherwise the key's retained chain (pre-images kept by copy-on-write
// retention, mvcc.go) holds the version the snapshot sees — or nothing,
// in which case the key was absent at S.

// snapReadCurrent outcomes.
const (
	snapFound  = iota // the current value is the snapshot's version
	snapAbsent        // definitively absent at S (no chain consult needed)
	snapOlder         // current version is newer than S: consult the chain
)

// SnapGet resolves key in the frozen view of snapshot s, appending the
// visible value to dst. ok reports whether the key was present at s.
func (m *Map) SnapGet(s uint64, key, dst []byte) ([]byte, bool) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	c := m.locateChunk(key)
	if ei := c.LookUp(key); ei >= 0 {
		if h := ValueHandle(c.ValHandle(ei)); h != 0 {
			out, st := m.snapReadCurrent(s, h, dst)
			switch st {
			case snapFound:
				return out, true
			case snapAbsent:
				return nil, false
			}
		}
	}
	return m.retainedAt(s, key, dst)
}

// snapReadCurrent resolves handle h against snapshot s using only the
// header's current state: the value's bytes are appended to dst when its
// stamp decides the read. Batch-flagged versions resolve through the
// pending registry — a flagged-but-undecided batch always has base > s
// (StabilizeSnapshot waited out batches with base ≤ s), so its pre-state
// is what s sees. The caller need not hold an epoch pin: every byte read
// happens under the header's read lock, which also blocks the batch
// finalizer from handing off the pre-image span mid-read.
func (m *Map) snapReadCurrent(s uint64, h ValueHandle, dst []byte) ([]byte, int) {
	if !m.headers.TryReadLock(uint64(h)) {
		return nil, snapOlder // deleted now; the chain knows the past
	}
	defer m.headers.ReadUnlock(uint64(h))
	v := m.headers.LoadVersion(uint64(h))
	if v&verFlagMask == 0 {
		if v <= s {
			ref := arena.Ref(m.headers.LoadData(uint64(h)))
			return append(dst, m.alloc.Bytes(ref)...), snapFound
		}
		return nil, snapOlder
	}
	base := v & verBaseMask
	for {
		bi := m.lookupBatch(base)
		if bi == nil {
			// Finalized between the version load and the lookup; the read
			// lock pins further finalization, so this settles immediately.
			v = m.headers.LoadVersion(uint64(h))
			if v&verFlagMask != 0 {
				continue
			}
			if v <= s {
				ref := arena.Ref(m.headers.LoadData(uint64(h)))
				return append(dst, m.alloc.Bytes(ref)...), snapFound
			}
			return nil, snapOlder
		}
		committed := bi.desc.state.Load() == batchCommitted
		if v&verTombBit != 0 {
			// Tombstone: the data in place is the pre-delete value.
			if committed && base <= s {
				return nil, snapAbsent
			}
			rec := bi.lookup(h)
			if rec != nil && rec.oldVer <= s {
				ref := arena.Ref(m.headers.LoadData(uint64(h)))
				return append(dst, m.alloc.Bytes(ref)...), snapFound
			}
			return nil, snapOlder
		}
		if committed && base <= s {
			ref := arena.Ref(m.headers.LoadData(uint64(h)))
			return append(dst, m.alloc.Bytes(ref)...), snapFound
		}
		// Uncommitted, or committed after s: the pre-image decides.
		rec := bi.lookup(h)
		if rec == nil || !rec.hadOld {
			return nil, snapOlder // fresh insert the snapshot cannot see
		}
		if rec.oldVer <= s {
			return append(dst, m.alloc.Bytes(rec.oldRef)...), snapFound
		}
		return nil, snapOlder
	}
}

// retainedAt appends the retained pre-image visible to snapshot s for
// key, if any. The caller must hold an epoch pin: the chain entry is
// copied out under the registry lock (serializing with the sweep's
// unlink), and the pin then keeps the span's bytes mapped even if a
// concurrent snapshot close retires it.
func (m *Map) retainedAt(s uint64, key, dst []byte) ([]byte, bool) {
	st := &m.mvcc
	st.mu.Lock()
	var ref arena.Ref
	found := false
	if chain := st.byKey[string(key)]; chain != nil {
		// Newest entry with ver ≤ s < super (entries are ver-ascending).
		for i := len(chain.entries) - 1; i >= 0; i-- {
			e := chain.entries[i]
			if e.ver <= s {
				if e.super > s {
					ref, found = e.ref, true
				}
				break
			}
		}
	}
	st.mu.Unlock()
	if !found {
		return nil, false
	}
	return append(dst, m.alloc.Bytes(ref)...), true
}

// nextRetainedKey copies into dst the retained-store key adjacent to a
// scan position: ascending, the smallest key after `last` (or ≥ lo when
// last is nil) and below hi; descending, the largest key before `last`
// (or below hi when last is nil) and ≥ lo. The result is a position
// candidate only — whether the chain actually holds a version visible
// to the snapshot is decided at resolve time.
func (m *Map) nextRetainedKey(last []byte, desc bool, lo, hi, dst []byte) ([]byte, bool) {
	st := &m.mvcc
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.keys)
	if desc {
		// Largest index with key < bound (last, else hi; nil = +inf).
		i := n
		if b := last; b == nil {
			b = hi
			if b != nil {
				i = sort.Search(n, func(i int) bool { return m.cmp(st.keys[i], b) >= 0 })
			}
		} else {
			i = sort.Search(n, func(i int) bool { return m.cmp(st.keys[i], b) >= 0 })
		}
		if i == 0 {
			return nil, false
		}
		k := st.keys[i-1]
		if lo != nil && m.cmp(k, lo) < 0 {
			return nil, false
		}
		return append(dst, k...), true
	}
	// Ascending: smallest key > last (or ≥ lo when last is nil).
	var i int
	if last != nil {
		i = sort.Search(n, func(i int) bool { return m.cmp(st.keys[i], last) > 0 })
	} else if lo != nil {
		i = sort.Search(n, func(i int) bool { return m.cmp(st.keys[i], lo) >= 0 })
	}
	if i >= n {
		return nil, false
	}
	k := st.keys[i]
	if hi != nil && m.cmp(k, hi) >= 0 {
		return nil, false
	}
	return append(dst, k...), true
}

// SnapCursor iterates the frozen view of a snapshot in key order: a
// two-way merge of the live structure (whose entries resolve through
// snapReadCurrent) and the retained store (which alone knows keys that
// were deleted after the snapshot was taken). Keys and values returned
// by Next are cursor-owned copies, valid until the following Next.
type SnapCursor struct {
	m    *Map
	s    uint64
	desc bool
	lo   []byte
	hi   []byte
	done bool

	cur       *Cursor
	structKey []byte // structure-side head (aliases keyBuf); nil = unloaded
	structH   ValueHandle
	structEOF bool

	// last is the watermark: every key ≤ last (≥ for desc) has been
	// fully processed. It advances per candidate examined — not per
	// yield — so keys that resolve to "absent at S" cannot loop, and
	// concurrent retains behind the watermark are correctly ignored
	// (their versions are > S: invisible anyway).
	last []byte

	keyBuf, valBuf, chainBuf, lastBuf []byte
}

// NewSnapCursor creates a cursor over snapshot s for lo ≤ key < hi (nil
// bounds are open); desc reverses the order. The snapshot must be
// stabilized and stay open for the cursor's lifetime.
func (m *Map) NewSnapCursor(s uint64, lo, hi []byte, desc bool) *SnapCursor {
	return &SnapCursor{
		m: m, s: s, desc: desc, lo: lo, hi: hi,
		cur: m.NewCursor(lo, hi, desc),
	}
}

// Next returns the snapshot view's next entry, or ok=false at the end.
func (c *SnapCursor) Next() (key, val []byte, ok bool) {
	m := c.m
	for !c.done {
		if c.structKey == nil && !c.structEOF {
			if _, h, ok := c.cur.Next(); ok {
				c.keyBuf = append(c.keyBuf[:0], c.cur.Key()...)
				c.structKey = c.keyBuf
				c.structH = h
			} else {
				c.structEOF = true
			}
		}
		// The chain head is queried live each step: the retained store
		// mutates under the scan, and a fixed iteration could miss keys
		// retained (by concurrent deletes) ahead of the watermark.
		chKey, chOK := m.nextRetainedKey(c.last, c.desc, c.lo, c.hi, c.chainBuf[:0])
		if chOK {
			c.chainBuf = chKey
		}
		var cand []byte
		fromStruct := false
		switch {
		case c.structKey == nil && !chOK:
			c.done = true
			return nil, nil, false
		case c.structKey == nil:
			cand = chKey
		case !chOK:
			cand, fromStruct = c.structKey, true
		default:
			d := m.cmp(c.structKey, chKey)
			if c.desc {
				d = -d
			}
			// Ties consume the structure side; the chain key then falls
			// behind the watermark and is skipped next round.
			if d <= 0 {
				cand, fromStruct = c.structKey, true
			} else {
				cand = chKey
			}
		}
		c.lastBuf = append(c.lastBuf[:0], cand...)
		c.last = c.lastBuf
		var out []byte
		found := false
		if fromStruct {
			h := c.structH
			c.structKey = nil // consumed
			var st int
			out, st = m.snapReadCurrent(c.s, h, c.valBuf[:0])
			switch st {
			case snapFound:
				c.valBuf, found = out, true
			case snapOlder:
				out, found = c.chainAt(c.last)
			}
		} else {
			out, found = c.chainAt(cand)
		}
		if found {
			return c.last, out, true
		}
	}
	return nil, nil, false
}

// chainAt resolves the watermark key through the retained chain under a
// pin of its own (Next holds none between steps).
func (c *SnapCursor) chainAt(key []byte) ([]byte, bool) {
	g := c.m.reclaim.Pin()
	defer g.Unpin()
	out, ok := c.m.retainedAt(c.s, key, c.valBuf[:0])
	if ok {
		c.valBuf = out
	}
	return out, ok
}
