package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// takeSnap begins and stabilizes a snapshot, registering cleanup-free
// manual end via the returned func.
func takeSnap(m *Map) (uint64, func()) {
	s := m.BeginSnapshot()
	m.StabilizeSnapshot(s)
	return s, func() { m.EndSnapshot(s) }
}

func snapGetString(t *testing.T, m *Map, s uint64, k []byte) (string, bool) {
	t.Helper()
	v, ok := m.SnapGet(s, k, nil)
	return string(v), ok
}

func TestSnapshotBasicResolution(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("v1"))
	mustPut(t, m, ik(2), []byte("v2"))

	s, end := takeSnap(m)
	defer end()

	// Overwrite, delete, insert after the snapshot.
	mustPut(t, m, ik(1), []byte("v1-new"))
	if ok, _ := m.Remove(ik(2)); !ok {
		t.Fatal("Remove(2) failed")
	}
	mustPut(t, m, ik(3), []byte("v3"))

	if v, ok := snapGetString(t, m, s, ik(1)); !ok || v != "v1" {
		t.Fatalf("snap Get(1) = %q, %v; want v1", v, ok)
	}
	if v, ok := snapGetString(t, m, s, ik(2)); !ok || v != "v2" {
		t.Fatalf("snap Get(2) = %q, %v; want v2", v, ok)
	}
	if _, ok := snapGetString(t, m, s, ik(3)); ok {
		t.Fatal("snap Get(3) visible: inserted after snapshot")
	}
	// Live reads see the new state.
	if v, ok := getString(t, m, ik(1)); !ok || v != "v1-new" {
		t.Fatalf("live Get(1) = %q, %v", v, ok)
	}
	if _, ok := m.Get(ik(2)); ok {
		t.Fatal("live Get(2) should be deleted")
	}
}

func TestSnapshotChainMultipleVersions(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(7), []byte("gen0"))
	s0, end0 := takeSnap(m)
	mustPut(t, m, ik(7), []byte("gen1"))
	s1, end1 := takeSnap(m)
	mustPut(t, m, ik(7), []byte("gen2"))
	s2, end2 := takeSnap(m)
	if ok, _ := m.Remove(ik(7)); !ok {
		t.Fatal("Remove failed")
	}
	s3, end3 := takeSnap(m)

	for _, tc := range []struct {
		s    uint64
		want string
		ok   bool
	}{{s0, "gen0", true}, {s1, "gen1", true}, {s2, "gen2", true}, {s3, "", false}} {
		v, ok := snapGetString(t, m, tc.s, ik(7))
		if ok != tc.ok || v != tc.want {
			t.Fatalf("snap %d Get = %q, %v; want %q, %v", tc.s, v, ok, tc.want, tc.ok)
		}
	}
	end1()
	// s0 and s2 still resolve after a middle snapshot closes.
	if v, ok := snapGetString(t, m, s0, ik(7)); !ok || v != "gen0" {
		t.Fatalf("after end1: snap s0 = %q, %v", v, ok)
	}
	if v, ok := snapGetString(t, m, s2, ik(7)); !ok || v != "gen2" {
		t.Fatalf("after end1: snap s2 = %q, %v", v, ok)
	}
	end0()
	end2()
	end3()
	st := m.MVCCStats()
	if st.RetainedBytes != 0 || st.RetainedSpans != 0 || st.OpenSnapshots != 0 {
		t.Fatalf("retained state after all snapshots closed: %+v", st)
	}
}

func TestSnapshotRetainedBytesDropToZero(t *testing.T) {
	m := newTestMap(t, 64)
	for i := 0; i < 200; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	s, end := takeSnap(m)
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			if _, err := m.Remove(ik(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			mustPut(t, m, ik(i), []byte(fmt.Sprintf("other-%d", i)))
		}
	}
	if st := m.MVCCStats(); st.RetainedBytes == 0 {
		t.Fatal("expected retained bytes while snapshot open")
	}
	// The frozen view still reads the originals.
	for i := 0; i < 200; i += 17 {
		if v, ok := snapGetString(t, m, s, ik(i)); !ok || v != string(iv(i)) {
			t.Fatalf("snap Get(%d) = %q, %v", i, v, ok)
		}
	}
	end()
	st := m.MVCCStats()
	if st.RetainedBytes != 0 || st.RetainedSpans != 0 {
		t.Fatalf("retained bytes/spans nonzero after close: %+v", st)
	}
}

// TestSnapshotFrozenViewUnderChurn is the acceptance-criteria test: a
// scan over an open snapshot observes exactly the frozen state while
// writers churn every key.
func TestSnapshotFrozenViewUnderChurn(t *testing.T) {
	m := newTestMap(t, 64)
	const n = 400
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(i), iv(i))
		want[string(ik(i))] = string(iv(i))
	}
	s, end := takeSnap(m)
	defer end()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for gen := 0; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.IntN(n + 50)
				switch rng.IntN(3) {
				case 0:
					_ = m.Put(ik(i), []byte(fmt.Sprintf("churn-%d-%d", seed, gen)))
				case 1:
					_, _ = m.Remove(ik(i))
				case 2:
					_, _ = m.ComputeIfPresent(ik(i), func(w *WBuffer) error {
						return w.Set([]byte(fmt.Sprintf("compute-%d-%d", seed, gen)))
					})
				}
			}
		}(uint64(w + 1))
	}

	// Repeated full scans + point reads of the frozen view mid-churn.
	for round := 0; round < 5; round++ {
		got := make(map[string]string, n)
		sc := m.NewSnapCursor(s, nil, nil, round%2 == 1)
		prev := []byte(nil)
		for {
			k, v, ok := sc.Next()
			if !ok {
				break
			}
			if prev != nil {
				d := m.cmp(prev, k)
				if round%2 == 1 {
					d = -d
				}
				if d >= 0 {
					t.Fatalf("round %d: keys out of order", round)
				}
			}
			prev = append(prev[:0], k...)
			if _, dup := got[string(k)]; dup {
				t.Fatalf("round %d: duplicate key in snapshot scan", round)
			}
			got[string(k)] = string(v)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: snapshot scan saw %d keys, want %d", round, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("round %d: key %x = %q, want %q", round, k, got[k], v)
			}
		}
		for i := 0; i < n; i += 37 {
			if v, ok := snapGetString(t, m, s, ik(i)); !ok || v != want[string(ik(i))] {
				t.Fatalf("round %d: snap Get(%d) = %q, %v", round, i, v, ok)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestApplyBatchBasic(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("old1"))
	mustPut(t, m, ik(2), []byte("old2"))
	err := m.ApplyBatch([]BatchOp{
		{Key: ik(1), Val: []byte("new1")},
		{Key: ik(2), Delete: true},
		{Key: ik(3), Val: []byte("new3")},
		{Key: ik(4), Delete: true}, // absent delete: no-op
		{Key: ik(3), Val: []byte("new3b")}, // dup: last wins
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := getString(t, m, ik(1)); !ok || v != "new1" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := m.Get(ik(2)); ok {
		t.Fatal("Get(2) should be deleted")
	}
	if v, ok := getString(t, m, ik(3)); !ok || v != "new3b" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

// TestApplyBatchAtomicVisibility hammers readers against batches that
// flip two keys between two consistent states; observing a mixed state
// is a failure.
func TestApplyBatchAtomicVisibility(t *testing.T) {
	m := newTestMap(t, 64)
	kA, kB := ik(100), ik(200)
	mustPut(t, m, kA, []byte("state0"))
	mustPut(t, m, kB, []byte("state0"))

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, okA := func() (string, bool) {
					h, ok := m.Get(kA)
					if !ok {
						return "", false
					}
					b, err := m.CopyValue(h, nil)
					if err != nil {
						return "", false
					}
					return string(b), true
				}()
				b, okB := func() (string, bool) {
					h, ok := m.Get(kB)
					if !ok {
						return "", false
					}
					bb, err := m.CopyValue(h, nil)
					if err != nil {
						return "", false
					}
					return string(bb), true
				}()
				// Reads are not a single atomic pair, so a batch may land
				// between them — but each individual read must return one
				// of the two committed states, never a torn value.
				if okA && a != "state0" && a != "state1" {
					fail.Store(fmt.Sprintf("key A read %q", a))
					return
				}
				if okB && b != "state0" && b != "state1" {
					fail.Store(fmt.Sprintf("key B read %q", b))
					return
				}
				if !okA || !okB {
					fail.Store("key missing during pure-put batches")
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		st := fmt.Sprintf("state%d", i%2)
		if err := m.ApplyBatch([]BatchOp{
			{Key: kA, Val: []byte(st)},
			{Key: kB, Val: []byte(st)},
		}); err != nil {
			t.Fatal(err)
		}
		if fail.Load() != nil {
			break
		}
	}
	close(stop)
	wg.Wait()
	if f := fail.Load(); f != nil {
		t.Fatal(f)
	}
}

// TestApplyBatchSnapshotCut: a snapshot sees all of a batch or none.
func TestApplyBatchSnapshotCut(t *testing.T) {
	m := newTestMap(t, 64)
	keys := [][]byte{ik(1), ik(2), ik(3)}
	for _, k := range keys {
		mustPut(t, m, k, []byte("before"))
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ops := make([]BatchOp, len(keys))
			for j, k := range keys {
				ops[j] = BatchOp{Key: k, Val: []byte(fmt.Sprintf("batch-%d", i))}
			}
			if err := m.ApplyBatch(ops); err != nil {
				panic(err)
			}
		}
	}()
	for round := 0; round < 200; round++ {
		s, end := takeSnap(m)
		var vals []string
		for _, k := range keys {
			v, ok := snapGetString(t, m, s, k)
			if !ok {
				t.Fatalf("round %d: key missing in snapshot", round)
			}
			vals = append(vals, v)
		}
		end()
		for _, v := range vals[1:] {
			if v != vals[0] {
				t.Fatalf("round %d: snapshot saw torn batch: %v", round, vals)
			}
		}
	}
	close(stop)
	<-done
}

// TestBatchConcurrentBatches: concurrent multi-key batches over an
// overlapping key set must not deadlock and must leave one batch's
// state per key set.
func TestBatchConcurrentBatches(t *testing.T) {
	m := newTestMap(t, 64)
	const nk = 16
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for i := 0; i < 100; i++ {
				var ops []BatchOp
				for j := 0; j < 1+rng.IntN(5); j++ {
					k := ik(rng.IntN(nk))
					if rng.IntN(4) == 0 {
						ops = append(ops, BatchOp{Key: k, Delete: true})
					} else {
						ops = append(ops, BatchOp{Key: k, Val: []byte(fmt.Sprintf("w%d-i%d", w, i))})
					}
				}
				if err := m.ApplyBatch(ops); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	// All flags must be cleared: every surviving key reads normally.
	for i := 0; i < nk; i++ {
		if h, ok := m.Get(ik(i)); ok {
			if _, err := m.CopyValue(h, nil); err != nil {
				t.Fatalf("key %d unreadable after batches: %v", i, err)
			}
		}
	}
	if st := m.MVCCStats(); st.RetainedBytes != 0 {
		t.Fatalf("retained bytes with no snapshots: %+v", st)
	}
}

// TestBatchWriterWaits: a normal writer racing a batch must not tear it.
func TestBatchWriterWaits(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("init"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					_ = m.Put(ik(1), []byte(fmt.Sprintf("plain-%d-%d", w, i)))
				} else {
					_ = m.ApplyBatch([]BatchOp{{Key: ik(1), Val: []byte(fmt.Sprintf("batch-%d-%d", w, i))}})
				}
			}
		}(w)
	}
	wg.Wait()
	v, ok := getString(t, m, ik(1))
	if !ok {
		t.Fatal("key vanished")
	}
	if v == "init" {
		t.Fatalf("no write landed: %q", v)
	}
}

func TestSnapshotOverheadStatsAndHorizon(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("x"))
	if st := m.MVCCStats(); st.OpenSnapshots != 0 || st.HorizonLag != 0 {
		t.Fatalf("clean stats: %+v", st)
	}
	s, end := takeSnap(m)
	// The clock ratchets on snapshots and batches (not on plain writes),
	// so a batch moves the horizon past the open snapshot.
	if err := m.ApplyBatch([]BatchOp{{Key: ik(1), Val: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	st := m.MVCCStats()
	if st.OpenSnapshots != 1 {
		t.Fatalf("OpenSnapshots = %d", st.OpenSnapshots)
	}
	if st.HorizonLag == 0 {
		t.Fatal("HorizonLag should be positive: clock moved past the snapshot")
	}
	_ = s
	end()
	if st := m.MVCCStats(); st.OpenSnapshots != 0 || st.HorizonLag != 0 {
		t.Fatalf("stats after close: %+v", st)
	}
}

// TestSnapshotBeginVsOverwriteRace hammers the window the
// floor-before-ratchet ordering in BeginSnapshot closes: a writer that
// loads a post-ratchet clock value must also observe the raised
// retention floor and keep the pre-image the just-begun snapshot
// needs. Same-size values keep the overwrite on the in-place path (the
// destructive one when retention is wrongly skipped); the bug's
// symptom is the key vanishing from a snapshot it was present in.
func TestSnapshotBeginVsOverwriteRace(t *testing.T) {
	m := newTestMap(t, 64)
	key := ik(1)
	val := func(w, gen int) []byte { return []byte(fmt.Sprintf("w%d-gen-%08d", w, gen)) }
	mustPut(t, m, key, val(0, 0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := 1; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Put(key, val(w, gen)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	rounds := 3000
	if testing.Short() {
		rounds = 300
	}
	for i := 0; i < rounds; i++ {
		s, end := takeSnap(m)
		if v, ok := m.SnapGet(s, key, nil); !ok {
			t.Errorf("round %d: key absent at snapshot %d (pre-image lost)", i, s)
		} else if len(v) != len(val(0, 0)) {
			t.Errorf("round %d: torn value %q at snapshot %d", i, v, s)
		}
		end()
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()

	if st := m.MVCCStats(); st.OpenSnapshots != 0 || st.RetainedBytes != 0 {
		t.Fatalf("retained state after close: %+v", st)
	}
}

// TestSnapshotVsBatchPrepareRace hammers the window PrepareBatch's
// pendMu-covered ratchet closes on the plain backend: a snapshot whose
// version exceeds a batch's base must find that batch in the pending
// registry during stabilization and wait out its decision — otherwise
// the batch commits inside the "frozen" view and snapshots read it
// torn (pre-state for some keys, post-state for others).
func TestSnapshotVsBatchPrepareRace(t *testing.T) {
	m := newTestMap(t, 64)
	const nk = 6
	mkops := func(gen int) []BatchOp {
		ops := make([]BatchOp, nk)
		for i := range ops {
			ops[i] = BatchOp{Key: ik(i), Val: []byte(fmt.Sprintf("gen-%08d", gen))}
		}
		return ops
	}
	if err := m.ApplyBatch(mkops(0)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.ApplyBatch(mkops(gen)); err != nil {
				t.Errorf("ApplyBatch: %v", err)
				return
			}
		}
	}()

	rounds := 2000
	if testing.Short() {
		rounds = 200
	}
	for r := 0; r < rounds; r++ {
		s, end := takeSnap(m)
		var ref string
		for i := 0; i < nk; i++ {
			v, ok := m.SnapGet(s, ik(i), nil)
			if !ok {
				t.Errorf("round %d: key %d absent at snapshot %d", r, i, s)
				break
			}
			if ref == "" {
				ref = string(v)
			} else if string(v) != ref {
				t.Errorf("round %d: torn batch at snapshot %d: %q vs %q", r, s, v, ref)
				break
			}
		}
		end()
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotFloorRatchetOrdering pins BeginSnapshot's memory-order
// contract directly: while snapshots are only being opened (the floor
// never drops), an observer that loads the clock and then the floor —
// the same order every writer's retention gate uses — must see
// floor ≥ clock. The pre-fix ordering (ratchet, then floor store)
// violates this in the window a writer could exploit to skip
// copy-on-write retention.
func TestSnapshotFloorRatchetOrdering(t *testing.T) {
	m := newTestMap(t, 64)
	st := &m.mvcc
	first := m.BeginSnapshot() // floor is nonzero from here on

	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := st.clock.Load()
				if f := st.retainFloor.Load(); f < c {
					violations.Add(1)
				}
			}
		}()
	}

	const n = 5000
	snaps := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		snaps = append(snaps, m.BeginSnapshot())
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("floor observed below the clock %d times: a writer could skip retention", v)
	}
	for _, s := range snaps {
		m.EndSnapshot(s)
	}
	m.EndSnapshot(first)
	if st := m.MVCCStats(); st.OpenSnapshots != 0 {
		t.Fatalf("OpenSnapshots = %d after close", st.OpenSnapshots)
	}
}
