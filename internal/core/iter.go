package core

import (
	"oakmap/internal/chunk"
)

// EntryFunc receives a scanned entry: the key's packed reference and the
// value's handle. Returning false stops the scan. The value handle is
// live (non-⊥, not deleted) at yield time; as with all Oak scans the view
// is non-atomic (§1.1).
type EntryFunc func(keyRef uint64, h ValueHandle) bool

// Ascend scans entries with lo ≤ key < hi in ascending order (nil bounds
// are open). It traverses each chunk's entries linked list and hops to
// the next chunk (§4.2). RB1/RB2 hold: keys present for the scan's whole
// duration are reported exactly once; concurrently mutated keys may or
// may not appear.
func (m *Map) Ascend(lo, hi []byte, yield EntryFunc) {
	// The whole scan runs under one epoch pin: every chunk pointer we
	// hold and every key we compare stays valid even if the region is
	// rebalanced mid-scan (the frozen chunks' keys cannot be recycled
	// until we unpin). Long scans therefore delay reclamation; the
	// pull-based Cursor pins per Next call instead.
	g := m.reclaim.Pin()
	defer g.Unpin()
	var c *chunk.Chunk
	if lo == nil {
		c = chunk.Forward(m.head.Load())
	} else {
		c = m.locateChunk(lo)
	}
	ei := c.FirstGE(lo)
	// resume tracks the last visited key so that chunk hops through
	// concurrently rebalanced regions never revisit entries.
	var resume []byte
	for {
		for ei >= 0 {
			key := c.Key(ei)
			if hi != nil && m.cmp(key, hi) >= 0 {
				return
			}
			resume = key
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				if !yield(c.KeyRef(ei), h) {
					return
				}
			}
			ei = c.NextEntry(ei)
		}
		n := c.Next()
		if n == nil {
			return
		}
		next := chunk.Forward(n)
		if next != n && resume != nil {
			// The successor was rebalanced: its replacement may cover
			// ranges we already visited (e.g. after a merge with c's
			// replacement). Re-enter at the first key past resume.
			resume = append([]byte(nil), resume...) // unalias from c
			c = next
			ei = c.FirstGE(resume)
			for ei >= 0 && m.cmp(c.Key(ei), resume) == 0 {
				ei = c.NextEntry(ei)
			}
			continue
		}
		c = next
		ei = c.Head()
	}
}

// Descend scans entries with lo ≤ key < hi in descending order using the
// chunk-local stack iterator (§4.2, Fig. 2), issuing only one chunk
// lookup per exhausted chunk rather than one per key.
func (m *Map) Descend(lo, hi []byte, yield EntryFunc) {
	g := m.reclaim.Pin() // see Ascend
	defer g.Unpin()
	var c *chunk.Chunk
	if hi == nil {
		c = m.lastChunk()
	} else {
		c = m.locateChunk(hi)
	}
	bound := hi
	for c != nil {
		it := c.NewDescIter(bound)
		for {
			ei := it.Next()
			if ei < 0 {
				break
			}
			key := c.Key(ei)
			if lo != nil && m.cmp(key, lo) < 0 {
				return
			}
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				if !yield(c.KeyRef(ei), h) {
					return
				}
			}
		}
		mk := c.MinKey()
		if mk == nil {
			return // the head chunk has no predecessor
		}
		if lo != nil && m.cmp(mk, lo) <= 0 {
			return // everything below is out of range
		}
		// All remaining keys are < c.minKey; that also bounds against
		// duplicates if the predecessor was rebalanced meanwhile.
		bound = append([]byte(nil), mk...)
		c = m.prevChunk(bound)
	}
}

// DescendNaive is the ablation baseline for Fig. 4f's design point: a
// descending scan implemented as a sequence of fresh lookups (one
// O(log n) locate per key), the way skiplists do it.
func (m *Map) DescendNaive(lo, hi []byte, yield EntryFunc) {
	g := m.reclaim.Pin() // see Ascend
	defer g.Unpin()
	keyRef, h, ok := m.lowerEntry(hi)
	for ok {
		key := m.KeyBytes(keyRef)
		if lo != nil && m.cmp(key, lo) < 0 {
			return
		}
		if !yield(keyRef, h) {
			return
		}
		next := append([]byte(nil), key...)
		keyRef, h, ok = m.lowerEntry(next)
	}
}

// lowerEntry finds the greatest live entry with key < bound (nil bound
// means no upper limit).
func (m *Map) lowerEntry(bound []byte) (uint64, ValueHandle, bool) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	var c *chunk.Chunk
	if bound == nil {
		c = m.lastChunk()
	} else {
		c = m.locateChunk(bound)
	}
	b := bound
	for c != nil {
		it := c.NewDescIter(b)
		for {
			ei := it.Next()
			if ei < 0 {
				break
			}
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				return c.KeyRef(ei), h, true
			}
		}
		mk := c.MinKey()
		if mk == nil {
			return 0, 0, false
		}
		b = append([]byte(nil), mk...)
		c = m.prevChunk(b)
	}
	return 0, 0, false
}

// Navigation queries (the ConcurrentNavigableMap surface).

// First returns the smallest live entry.
func (m *Map) First() (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}

// Last returns the greatest live entry.
func (m *Map) Last() (uint64, ValueHandle, bool) {
	return m.lowerEntry(nil)
}

// Lower returns the greatest live entry with key < k.
func (m *Map) Lower(k []byte) (uint64, ValueHandle, bool) {
	return m.lowerEntry(k)
}

// Floor returns the greatest live entry with key ≤ k.
func (m *Map) Floor(k []byte) (uint64, ValueHandle, bool) {
	g := m.reclaim.Pin() // covers the locate+lookup after Get (nested pins are fine)
	defer g.Unpin()
	if h, ok := m.Get(k); ok {
		c := m.locateChunk(k)
		if ei := c.LookUp(k); ei >= 0 {
			return c.KeyRef(ei), h, true
		}
	}
	return m.lowerEntry(k)
}

// Ceiling returns the smallest live entry with key ≥ k.
func (m *Map) Ceiling(k []byte) (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(k, nil, func(kr uint64, h ValueHandle) bool {
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}

// Higher returns the smallest live entry with key > k.
func (m *Map) Higher(k []byte) (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(k, nil, func(kr uint64, h ValueHandle) bool {
		if m.cmp(m.KeyBytes(kr), k) == 0 {
			return true // skip the equal key
		}
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}
