package core

import (
	"time"

	"oakmap/internal/chunk"
	"oakmap/internal/telemetry"
)

// EntryFunc receives a scanned entry: the key's packed reference and the
// value's handle. Returning false stops the scan. The value handle is
// live (non-⊥, not deleted) at yield time; as with all Oak scans the view
// is non-atomic (§1.1).
type EntryFunc func(keyRef uint64, h ValueHandle) bool

// wrapYield instruments a callback scan: every yielded entry counts as
// one scan-Next op, and on the sampled subset the step latency — the
// map's work between the previous yield returning and the next entry
// being produced, excluding the user callback itself — is recorded.
// With telemetry disabled the yield is returned untouched, so scans pay
// nothing.
func (m *Map) wrapYield(yield EntryFunc) EntryFunc {
	r := m.tel
	if r == nil {
		return yield
	}
	var n uint64
	var armed bool
	var from time.Time
	return func(kr uint64, h ValueHandle) bool {
		if armed {
			r.Observe(telemetry.OpScanNext, time.Since(from))
			armed = false
		}
		r.Count(telemetry.OpScanNext)
		n++
		ok := yield(kr, h)
		if r.Sampled(n) {
			from = time.Now()
			armed = true
		}
		return ok
	}
}

// Ascend scans entries with lo ≤ key < hi in ascending order (nil bounds
// are open). It traverses each chunk's entries linked list and hops to
// the next chunk (§4.2). RB1/RB2 hold: keys present for the scan's whole
// duration are reported exactly once; concurrently mutated keys may or
// may not appear.
func (m *Map) Ascend(lo, hi []byte, yield EntryFunc) {
	yield = m.wrapYield(yield)
	// The scan pins the epoch per chunk, not for its whole duration:
	// chunk pointers and keys stay valid while pinned, and at each chunk
	// boundary the pin is cycled and the scan re-enters at the last
	// visited key (the cursor's reposition), so a long scan — or a slow
	// user callback — stalls reclamation by at most one chunk's worth of
	// yields instead of freezing the global epoch (and growing the limbo
	// lists without bound) for the entire traversal. The pull-based
	// Cursor goes further and pins per Next call.
	g := m.reclaim.Pin()
	defer func() { g.Unpin() }()
	var c *chunk.Chunk
	if lo == nil {
		c = chunk.Forward(m.head.Load())
	} else {
		c = m.locateChunk(lo)
	}
	ei := c.FirstGE(lo)
	// resume tracks the last visited key: the re-entry point after a pin
	// cycle, and the guard against revisiting entries when hopping
	// through concurrently rebalanced regions. It aliases c's key space
	// exactly while progressed is true; a chunk boundary copies it into
	// resumeBuf before dropping the pin that keeps those bytes valid.
	var resume, resumeBuf []byte
	progressed := false
	for {
		for ei >= 0 {
			key := c.Key(ei)
			if hi != nil && m.cmp(key, hi) >= 0 {
				return
			}
			resume = key
			progressed = true
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				if !yield(c.KeyRef(ei), h) {
					return
				}
			}
			ei = c.NextEntry(ei)
		}
		n := c.Next()
		if n == nil {
			return
		}
		if progressed {
			// Keys were visited since the last re-entry: cycle the pin
			// and reposition at the first key past resume. Re-locating
			// from the index (rather than trusting c's next pointer,
			// which may go stale the moment the pin drops) also covers
			// any rebalance that runs while unpinned.
			resumeBuf = append(resumeBuf[:0], resume...)
			resume = resumeBuf
			progressed = false
			g.Unpin()
			g = m.reclaim.Pin()
			c = m.locateChunk(resume)
			ei = c.FirstGE(resume)
			for ei >= 0 && m.cmp(c.Key(ei), resume) == 0 {
				ei = c.NextEntry(ei)
			}
			continue
		}
		// No key visited since the last re-entry (empty or fully-dead
		// chunk): hop under the same pin — repositioning by key could
		// not make progress. resume, if set, is already an owned copy.
		next := chunk.Forward(n)
		if next != n && resume != nil {
			// The successor was rebalanced: its replacement may cover
			// ranges we already visited (e.g. after a merge with c's
			// replacement). Re-enter at the first key past resume.
			c = next
			ei = c.FirstGE(resume)
			for ei >= 0 && m.cmp(c.Key(ei), resume) == 0 {
				ei = c.NextEntry(ei)
			}
			continue
		}
		c = next
		ei = c.Head()
	}
}

// Descend scans entries with lo ≤ key < hi in descending order using the
// chunk-local stack iterator (§4.2, Fig. 2), issuing only one chunk
// lookup per exhausted chunk rather than one per key.
func (m *Map) Descend(lo, hi []byte, yield EntryFunc) {
	yield = m.wrapYield(yield)
	// As in Ascend, the pin is cycled at each chunk boundary so a long
	// descending scan stalls reclamation by at most one chunk. The bound
	// is an owned copy by the time the pin drops, and prevChunk re-enters
	// from the index under the fresh pin.
	g := m.reclaim.Pin()
	defer func() { g.Unpin() }()
	var c *chunk.Chunk
	if hi == nil {
		c = m.lastChunk()
	} else {
		c = m.locateChunk(hi)
	}
	bound := hi
	for c != nil {
		it := c.NewDescIter(bound)
		for {
			ei := it.Next()
			if ei < 0 {
				break
			}
			key := c.Key(ei)
			if lo != nil && m.cmp(key, lo) < 0 {
				return
			}
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				if !yield(c.KeyRef(ei), h) {
					return
				}
			}
		}
		mk := c.MinKey()
		if mk == nil {
			return // the head chunk has no predecessor
		}
		if lo != nil && m.cmp(mk, lo) <= 0 {
			return // everything below is out of range
		}
		// All remaining keys are < c.minKey; that also bounds against
		// duplicates if the predecessor was rebalanced meanwhile. The
		// copy must precede the pin cycle — mk aliases c's key space.
		bound = append([]byte(nil), mk...)
		g.Unpin()
		g = m.reclaim.Pin()
		c = m.prevChunk(bound)
	}
}

// DescendNaive is the ablation baseline for Fig. 4f's design point: a
// descending scan implemented as a sequence of fresh lookups (one
// O(log n) locate per key), the way skiplists do it. Each lookup runs
// under its own short epoch pin — also the skiplist way — so the
// baseline neither holds a scan-long pin nor doubles up pins per step.
func (m *Map) DescendNaive(lo, hi []byte, yield EntryFunc) {
	yield = m.wrapYield(yield)
	bound := hi
	var buf []byte
	for {
		stop := true
		func() {
			g := m.reclaim.Pin()
			defer g.Unpin()
			keyRef, h, ok := m.lowerEntryPinned(bound)
			if !ok {
				return
			}
			key := m.KeyBytes(keyRef)
			if lo != nil && m.cmp(key, lo) < 0 {
				return
			}
			// Copy before the pin drops: key aliases arena space.
			buf = append(buf[:0], key...)
			bound = buf
			stop = !yield(keyRef, h)
		}()
		if stop {
			return
		}
	}
}

// lowerEntry finds the greatest live entry with key < bound (nil bound
// means no upper limit).
func (m *Map) lowerEntry(bound []byte) (uint64, ValueHandle, bool) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	return m.lowerEntryPinned(bound)
}

// lowerEntryPinned is lowerEntry's body for internal callers that
// already hold an epoch pin (Floor, DescendNaive), so each public entry
// point pins exactly once.
func (m *Map) lowerEntryPinned(bound []byte) (uint64, ValueHandle, bool) {
	var c *chunk.Chunk
	if bound == nil {
		c = m.lastChunk()
	} else {
		c = m.locateChunk(bound)
	}
	b := bound
	for c != nil {
		it := c.NewDescIter(b)
		for {
			ei := it.Next()
			if ei < 0 {
				break
			}
			h := ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				return c.KeyRef(ei), h, true
			}
		}
		mk := c.MinKey()
		if mk == nil {
			return 0, 0, false
		}
		b = append([]byte(nil), mk...)
		c = m.prevChunk(b)
	}
	return 0, 0, false
}

// Navigation queries (the ConcurrentNavigableMap surface).

// First returns the smallest live entry.
func (m *Map) First() (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}

// Last returns the greatest live entry.
func (m *Map) Last() (uint64, ValueHandle, bool) {
	return m.lowerEntry(nil)
}

// Lower returns the greatest live entry with key < k.
func (m *Map) Lower(k []byte) (uint64, ValueHandle, bool) {
	return m.lowerEntry(k)
}

// Floor returns the greatest live entry with key ≤ k.
func (m *Map) Floor(k []byte) (uint64, ValueHandle, bool) {
	g := m.reclaim.Pin() // one pin covers the exact lookup and the fallback
	defer g.Unpin()
	if h, ok := m.getPinned(k); ok {
		c := m.locateChunk(k)
		if ei := c.LookUp(k); ei >= 0 {
			return c.KeyRef(ei), h, true
		}
	}
	return m.lowerEntryPinned(k)
}

// Ceiling returns the smallest live entry with key ≥ k.
func (m *Map) Ceiling(k []byte) (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(k, nil, func(kr uint64, h ValueHandle) bool {
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}

// Higher returns the smallest live entry with key > k.
func (m *Map) Higher(k []byte) (uint64, ValueHandle, bool) {
	var out uint64
	var oh ValueHandle
	found := false
	m.Ascend(k, nil, func(kr uint64, h ValueHandle) bool {
		if m.cmp(m.KeyBytes(kr), k) == 0 {
			return true // skip the equal key
		}
		out, oh, found = kr, h, true
		return false
	})
	return out, oh, found
}
