package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"oakmap/internal/arena"
	"oakmap/internal/chunk"
)

// Atomic batch updates. A batch installs a set of Put/Delete operations
// so that readers observe either none of them or all of them:
//
//  1. Prepare: the clock ratchets by 2, giving the batch a base version
//     no normal write ever stamps, and the install record is registered
//     in the pending registry.
//  2. Install: each op is applied under its value's write lock, but its
//     version word is stamped base|pending (plus tomb for deletes) and
//     the pre-state is recorded. Readers that hit a flagged word resolve
//     through the registry: pre-state while the batch is undecided,
//     post-state once committed. Normal writers wait out flagged values
//     (lockStable), so no write intervenes between install and
//     finalize.
//  3. Commit: one atomic store of the descriptor's state flips every
//     installed op from invisible to visible at once — the batch's
//     linearization point. (On error, Abort + rollback restores the
//     pre-state instead.)
//  4. Finalize: flags are cleared value by value (tombstones become real
//     deletes), pre-image spans are retired or retained for snapshots,
//     and the registry entry is dropped.
//
// Deadlock freedom: ops within a batch are installed in key order
// (NormalizeBatch) and, in the sharded map, shards are installed in
// index order — a total order over all values any two batches touch, so
// a cyclic install-wait is impossible.

// Batch descriptor states.
const (
	batchPending uint32 = iota
	batchCommitted
	batchAborted
)

// BatchDesc is a batch's shared decision point. In the sharded map one
// descriptor spans every shard's install record, so all shards flip
// together.
type BatchDesc struct {
	// The decision must be readable the instant a waiter wakes:
	// Commit/Abort store state before closing done, and publishorder
	// holds them to it — a close-first order would wake DecideWait
	// callers to a still-pending state word.
	state atomic.Uint32 //oak:publish-before done
	done  chan struct{} // closed when state leaves pending
}

// NewBatchDesc creates a pending batch descriptor.
func NewBatchDesc() *BatchDesc {
	return &BatchDesc{done: make(chan struct{})}
}

// Commit flips the batch visible: the linearization point of the whole
// batch. Exactly one of Commit/Abort may be called, once.
func (d *BatchDesc) Commit() {
	d.state.Store(batchCommitted)
	close(d.done)
}

// Abort marks the batch rolled back. Exactly one of Commit/Abort may be
// called, once.
func (d *BatchDesc) Abort() {
	d.state.Store(batchAborted)
	close(d.done)
}

// batchRec is one installed op's pre-state, kept for reader resolution
// (pre-commit reads see the old value) and finalize/rollback.
type batchRec struct {
	key      []byte // owned copy
	h        ValueHandle
	del      bool      // tombstone (batch delete)
	hadOld   bool      // a committed value existed before the install
	inserted bool      // entry newly inserted by this batch (rollback removes it)
	oldRef   arena.Ref // pre-image span (puts only; tombs leave data in place)
	oldVer   uint64    // pre-image's committed version
}

// BatchInstall is one map's (or shard's) install record for a batch.
// Install methods are driven by a single goroutine; the internal lock
// only guards concurrent reader lookups against record appends.
type BatchInstall struct {
	m    *Map
	desc *BatchDesc
	base uint64

	mu   sync.RWMutex
	recs []batchRec          //oak:guarded-by mu
	byH  map[ValueHandle]int //oak:guarded-by mu
}

// lookup returns the install record for handle h, nil if the batch did
// not touch it (or it was touched as a fresh insert the caller cannot
// have seen).
func (bi *BatchInstall) lookup(h ValueHandle) *batchRec {
	bi.mu.RLock()
	defer bi.mu.RUnlock()
	if i, ok := bi.byH[h]; ok {
		// Taking the address is not a mutation: records are immutable
		// once added, and append never moves a record out from under an
		// extant pointer (the old backing array stays put).
		return &bi.recs[i] //oak:allow lockguard address-of under RLock, record immutable after add
	}
	return nil
}

func (bi *BatchInstall) add(r batchRec) {
	bi.mu.Lock()
	bi.byH[r.h] = len(bi.recs)
	bi.recs = append(bi.recs, r)
	bi.mu.Unlock()
}

// drop removes the most recently added record (a fresh insert whose
// publish CAS failed).
func (bi *BatchInstall) drop(h ValueHandle) {
	bi.mu.Lock()
	if i, ok := bi.byH[h]; ok && i == len(bi.recs)-1 {
		delete(bi.byH, h)
		bi.recs = bi.recs[:i]
	}
	bi.mu.Unlock()
}

// Base returns the batch's base version on this map.
func (bi *BatchInstall) Base() uint64 { return bi.base }

// PrepareBatch allocates a base version for a batch on this map and
// registers its install record. The clock ratchets by 2 so the base is
// never stamped by a normal write — flagged version words therefore
// identify their batch uniquely. desc may be shared across shards.
//
// The clock ratchet and the registry insert happen under one pendMu
// critical section: StabilizeSnapshot scans the registry under pendMu,
// so a snapshot whose version exceeds this base (its BeginSnapshot ran
// after the ratchet here) cannot complete its pending scan until the
// batch is registered — it always finds the batch and waits out its
// decision. Without that atomicity a plain-backend Snapshot could
// stabilize in the gap and watch the batch commit inside its "frozen"
// view. (The sharded path gets the same guarantee from verMu; this
// makes core.ApplyBatch safe on its own.)
func (m *Map) PrepareBatch(desc *BatchDesc) *BatchInstall {
	bi := &BatchInstall{
		m:    m,
		desc: desc,
		byH:  make(map[ValueHandle]int),
	}
	st := &m.mvcc
	st.pendMu.Lock()
	bi.base = st.clock.Add(2) - 1
	st.pending[bi.base] = bi
	st.pendMu.Unlock()
	return bi
}

// unregisterBatch drops the batch from the pending registry — only
// after every installed value's flags are cleared, so readers that hold
// a flagged version word can always resolve it.
func (m *Map) unregisterBatch(bi *BatchInstall) {
	st := &m.mvcc
	st.pendMu.Lock()
	delete(st.pending, bi.base)
	st.pendMu.Unlock()
}

// InstallBatchPut installs one put into the batch: the new value is
// written and published, but stamped base|pending so readers resolve it
// through the batch descriptor. Calls for one batch must be made by a
// single goroutine in key order.
func (m *Map) InstallBatchPut(bi *BatchInstall, key, val []byte) error {
	if m.closed.Load() {
		return ErrClosed
	}
	var keyRef uint64
	defer func() { m.releaseKeyRef(&keyRef) }()
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		out, err := m.batchPutAttempt(bi, key, val, &keyRef)
		if err != nil {
			return err
		}
		if out.full != nil {
			m.rebalance(out.full)
		}
		if out.done {
			if out.grew != nil {
				m.maybeRebalance(out.grew)
			}
			return nil
		}
	}
}

// batchPutAttempt is putAttempt's batch twin: same chunk walk and entry
// linking, but the value is stamped pending and the pre-state recorded.
func (m *Map) batchPutAttempt(bi *BatchInstall, key, val []byte, keyRef *uint64) (putOutcome, error) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	var h ValueHandle
	if ei >= 0 {
		h = ValueHandle(c.ValHandle(ei))
	}

	if h != 0 && !m.IsDeleted(h) {
		// Present: overwrite in place, recording the pre-image. lockStable
		// waits out other batches; ours cannot appear here (one op per key
		// after NormalizeBatch).
		oldVer, ok := m.lockStable(h)
		if !ok {
			return putOutcome{}, nil // deleted concurrently: retry into insert
		}
		old := arena.Ref(m.headers.LoadData(uint64(h)))
		nref, err := m.alloc.Alloc(len(val))
		if err != nil {
			m.headers.WriteUnlock(uint64(h))
			return putOutcome{}, err
		}
		copy(m.alloc.Bytes(nref), val)
		m.headers.StoreData(uint64(h), uint64(nref))
		// Register the record before the flagged stamp becomes loadable
		// (the reader's read lock excludes us until WriteUnlock anyway).
		bi.add(batchRec{
			key:    append([]byte(nil), key...),
			h:      h,
			hadOld: true,
			oldRef: old,
			oldVer: oldVer,
		})
		m.headers.StoreVersion(uint64(h), bi.base|verPendingBit)
		m.headers.WriteUnlock(uint64(h))
		return putOutcome{done: true}, nil
	}

	// Absent: insert a fresh pending value (putAttempt case 2).
	if ei < 0 {
		if *keyRef == 0 {
			ref, err := m.alloc.Write(key)
			if err != nil {
				return putOutcome{}, err
			}
			*keyRef = uint64(ref)
		}
		nei, st := c.AllocateEntry(*keyRef)
		if st == chunk.Full {
			return putOutcome{full: c}, nil
		}
		if st != chunk.OK {
			return putOutcome{}, nil
		}
		lei, st := c.PutIfAbsentInList(nei)
		if st == chunk.Frozen {
			return putOutcome{}, nil
		}
		ei = lei
		if st == chunk.OK {
			*keyRef = 0
		}
		h = ValueHandle(c.ValHandle(ei))
		if h != 0 && !m.IsDeleted(h) {
			return putOutcome{}, nil // racing insert won; retry into case 1
		}
	}

	newH, err := m.allocValue(BytesValue(val), bi.base|verPendingBit)
	if err != nil {
		return putOutcome{}, err
	}
	bi.add(batchRec{
		key:      append([]byte(nil), key...),
		h:        newH,
		inserted: true,
	})
	if !c.Publish() {
		bi.drop(newH)
		m.discardValue(newH)
		return putOutcome{}, nil
	}
	ok := c.CASValHandle(ei, uint64(h), uint64(newH))
	c.Unpublish()
	if !ok {
		bi.drop(newH)
		m.discardValue(newH)
		return putOutcome{}, nil
	}
	if h != 0 {
		m.retireHeader(h)
	}
	m.size.Add(1)
	c.IncLive()
	return putOutcome{done: true, grew: c}, nil
}

// InstallBatchDelete installs one delete into the batch: a present
// value is stamped base|pending|tomb (its data stays in place as the
// pre-image); an absent key is a no-op. Single-goroutine, key order.
func (m *Map) InstallBatchDelete(bi *BatchInstall, key []byte) error {
	if m.closed.Load() {
		return ErrClosed
	}
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		done := func() bool {
			g := m.reclaim.Pin()
			defer g.Unpin()
			c := m.locateChunk(key)
			ei := c.LookUp(key)
			if ei < 0 {
				return true // absent: deleting nothing succeeds
			}
			h := ValueHandle(c.ValHandle(ei))
			if h == 0 || m.IsDeleted(h) {
				return true
			}
			oldVer, ok := m.lockStable(h)
			if !ok {
				return true // deleted concurrently: absent now
			}
			bi.add(batchRec{
				key:    append([]byte(nil), key...),
				h:      h,
				del:    true,
				hadOld: true,
				oldRef: arena.Ref(m.headers.LoadData(uint64(h))),
				oldVer: oldVer,
			})
			m.headers.StoreVersion(uint64(h), bi.base|verPendingBit|verTombBit)
			m.headers.WriteUnlock(uint64(h))
			return true
		}()
		if done {
			return nil
		}
	}
}

// FinalizeBatch clears the pending flags after Commit: puts get their
// committed version stamp, tombstones become real deletes, pre-image
// spans are retired or retained for open snapshots. Must be called
// exactly once after desc.Commit, by the installing goroutine.
func (m *Map) FinalizeBatch(bi *BatchInstall) {
	// Install is over: the single installing goroutine owns recs, and
	// bi.mu only guards reader lookups against appends (none remain).
	for i := range bi.recs { //oak:allow lockguard installer-private after install phase
		rec := &bi.recs[i]
		if rec.del {
			m.finalizeBatchTomb(bi, rec)
		} else {
			m.finalizeBatchPut(bi, rec)
		}
	}
	// Unregister only after every flag is cleared: a reader holding a
	// flagged version word must always find the record.
	m.unregisterBatch(bi)
}

func (m *Map) finalizeBatchPut(bi *BatchInstall, rec *batchRec) {
	// The write lock waits out readers still resolving the flagged word
	// through rec (their read of oldRef must complete before the span is
	// handed off below). Normal writers cannot intervene: they wait for
	// the flags to clear.
	if m.headers.TryWriteLock(uint64(rec.h)) {
		m.headers.StoreVersion(uint64(rec.h), bi.base)
		m.headers.WriteUnlock(uint64(rec.h))
	}
	if rec.hadOld {
		m.retireOrRetain(rec.key, rec.oldRef, rec.oldVer, bi.base)
	}
}

func (m *Map) finalizeBatchTomb(bi *BatchInstall, rec *batchRec) {
	var c *chunk.Chunk
	func() {
		g := m.reclaim.Pin()
		defer g.Unpin()
		c = m.locateChunk(rec.key)
		if !m.headers.TryWriteLock(uint64(rec.h)) {
			return // already deleted (cannot happen: writers wait on flags)
		}
		// Same privatize-then-DeleteLocked order as valueRemove.
		ref := arena.Ref(m.headers.LoadData(uint64(rec.h)))
		m.headers.StoreData(uint64(rec.h), 0)
		m.headers.DeleteLocked(uint64(rec.h))
		m.size.Add(-1)
		c.DecLive()
		m.retireOrRetain(rec.key, ref, rec.oldVer, bi.base)
	}()
	m.finalizeRemove(rec.key, rec.h)
	m.maybeMerge(c)
}

// AbortBatch rolls the install back after desc.Abort: pre-images are
// restored, fresh inserts are removed, and new spans freed. Must be
// called exactly once after desc.Abort, by the installing goroutine.
func (m *Map) AbortBatch(bi *BatchInstall) {
	// Same single-installer ownership argument as FinalizeBatch.
	for i := range bi.recs { //oak:allow lockguard installer-private after install phase
		rec := &bi.recs[i]
		switch {
		case rec.del:
			// Un-stamp the tombstone; the value was never touched.
			if m.headers.TryWriteLock(uint64(rec.h)) {
				m.headers.StoreVersion(uint64(rec.h), rec.oldVer)
				m.headers.WriteUnlock(uint64(rec.h))
			}
		case rec.hadOld:
			// Restore the pre-image and retire the never-visible new span.
			if m.headers.TryWriteLock(uint64(rec.h)) {
				nref := arena.Ref(m.headers.LoadData(uint64(rec.h)))
				m.headers.StoreData(uint64(rec.h), uint64(rec.oldRef))
				m.headers.StoreVersion(uint64(rec.h), rec.oldVer)
				m.headers.WriteUnlock(uint64(rec.h))
				m.alloc.Retire(nref)
			}
		default:
			// Remove the fresh insert entirely; it was never visible.
			m.rollbackInsert(rec)
		}
	}
	m.unregisterBatch(bi)
}

// rollbackInsert deletes a batch-inserted entry that never committed.
func (m *Map) rollbackInsert(rec *batchRec) {
	var c *chunk.Chunk
	func() {
		g := m.reclaim.Pin()
		defer g.Unpin()
		c = m.locateChunk(rec.key)
		if m.valueRemove(nil, rec.h) {
			m.size.Add(-1)
			c.DecLive()
		}
	}()
	m.finalizeRemove(rec.key, rec.h)
	m.maybeMerge(c)
}

// BatchOp is one operation in an atomic batch.
type BatchOp struct {
	Key []byte
	Val []byte // ignored when Delete is set
	// Delete removes Key; deleting an absent key is a no-op.
	Delete bool
}

// NormalizeBatch dedupes ops by key (last one wins) and sorts them by
// cmp — the install order that makes concurrent batches deadlock-free.
// The returned slice is freshly allocated; ops is not modified.
func NormalizeBatch(ops []BatchOp, cmp Comparator) []BatchOp {
	last := make(map[string]int, len(ops))
	for i := range ops {
		last[string(ops[i].Key)] = i
	}
	out := make([]BatchOp, 0, len(last))
	for i := range ops {
		if last[string(ops[i].Key)] == i {
			out = append(out, ops[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return cmp(out[i].Key, out[j].Key) < 0 })
	return out
}

// ApplyBatch applies ops as one atomic batch on this map: readers (and
// snapshots) observe all of them or none. Duplicate keys collapse to
// the last op. On error nothing is applied.
func (m *Map) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	norm := NormalizeBatch(ops, m.cmp)
	desc := NewBatchDesc()
	bi := m.PrepareBatch(desc)
	for _, op := range norm {
		var err error
		if op.Delete {
			err = m.InstallBatchDelete(bi, op.Key)
		} else {
			err = m.InstallBatchPut(bi, op.Key, op.Val)
		}
		if err != nil {
			desc.Abort()
			m.AbortBatch(bi)
			return err
		}
	}
	desc.Commit()
	m.FinalizeBatch(bi)
	return nil
}
