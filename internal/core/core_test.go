package core

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"oakmap/internal/arena"
)

// testPool uses small blocks so tests exercise block growth.
func testPool(t testing.TB) *arena.Pool {
	t.Helper()
	return arena.NewPool(1<<20, 0)
}

func newTestMap(t testing.TB, chunkCap int) *Map {
	t.Helper()
	m := New(&Options{ChunkCapacity: chunkCap, Pool: testPool(t)})
	t.Cleanup(m.Close)
	return m
}

func ik(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func iv(i int) []byte {
	return []byte(fmt.Sprintf("value-%08d", i))
}

func mustPut(t *testing.T, m *Map, k, v []byte) {
	t.Helper()
	if err := m.Put(k, v); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func getString(t *testing.T, m *Map, k []byte) (string, bool) {
	t.Helper()
	h, ok := m.Get(k)
	if !ok {
		return "", false
	}
	b, err := m.CopyValue(h, nil)
	if err != nil {
		return "", false // deleted between Get and read
	}
	return string(b), true
}

func TestPutGetBasic(t *testing.T) {
	m := newTestMap(t, 64)
	if _, ok := m.Get(ik(1)); ok {
		t.Fatal("Get on empty map returned a value")
	}
	mustPut(t, m, ik(1), []byte("one"))
	if got, ok := getString(t, m, ik(1)); !ok || got != "one" {
		t.Fatalf("Get = %q, %v; want one", got, ok)
	}
	mustPut(t, m, ik(1), []byte("uno"))
	if got, _ := getString(t, m, ik(1)); got != "uno" {
		t.Fatalf("Get after overwrite = %q; want uno", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d; want 1", m.Len())
	}
}

func TestPutResizesValue(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("short"))
	long := make([]byte, 3000)
	for i := range long {
		long[i] = byte(i)
	}
	mustPut(t, m, ik(1), long)
	got, _ := getString(t, m, ik(1))
	if got != string(long) {
		t.Fatal("value mismatch after growing put")
	}
	mustPut(t, m, ik(1), []byte("tiny"))
	if got, _ := getString(t, m, ik(1)); got != "tiny" {
		t.Fatalf("value = %q after shrinking put", got)
	}
}

func TestPutIfAbsent(t *testing.T) {
	m := newTestMap(t, 64)
	ok, err := m.PutIfAbsent(ik(7), []byte("a"))
	if err != nil || !ok {
		t.Fatalf("first PutIfAbsent = %v, %v", ok, err)
	}
	ok, err = m.PutIfAbsent(ik(7), []byte("b"))
	if err != nil || ok {
		t.Fatalf("second PutIfAbsent = %v, %v; want false", ok, err)
	}
	if got, _ := getString(t, m, ik(7)); got != "a" {
		t.Fatalf("value = %q; want a", got)
	}
}

func TestRemove(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(3), []byte("x"))
	if ok, _ := m.Remove(ik(3)); !ok {
		t.Fatal("Remove existing returned false")
	}
	if _, ok := m.Get(ik(3)); ok {
		t.Fatal("Get after Remove returned a value")
	}
	if ok, _ := m.Remove(ik(3)); ok {
		t.Fatal("Remove of absent key returned true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d; want 0", m.Len())
	}
	// Reinsert reuses the entry (case 2 of Algorithm 2).
	mustPut(t, m, ik(3), []byte("y"))
	if got, _ := getString(t, m, ik(3)); got != "y" {
		t.Fatalf("value after reinsert = %q; want y", got)
	}
}

func TestComputeIfPresent(t *testing.T) {
	m := newTestMap(t, 64)
	ok, err := m.ComputeIfPresent(ik(5), func(w *WBuffer) error { return nil })
	if err != nil || ok {
		t.Fatalf("ComputeIfPresent on absent key = %v, %v", ok, err)
	}
	mustPut(t, m, ik(5), []byte{0, 0, 0, 0, 0, 0, 0, 1})
	ok, err = m.ComputeIfPresent(ik(5), func(w *WBuffer) error {
		b := w.Bytes()
		binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+41)
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("ComputeIfPresent = %v, %v", ok, err)
	}
	h, _ := m.Get(ik(5))
	buf, _ := m.CopyValue(h, nil)
	if got := binary.BigEndian.Uint64(buf); got != 42 {
		t.Fatalf("counter = %d; want 42", got)
	}
}

func TestComputeResize(t *testing.T) {
	m := newTestMap(t, 64)
	mustPut(t, m, ik(1), []byte("ab"))
	ok, err := m.ComputeIfPresent(ik(1), func(w *WBuffer) error {
		if err := w.Resize(5); err != nil {
			return err
		}
		copy(w.Bytes(), "hello")
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("compute resize = %v, %v", ok, err)
	}
	if got, _ := getString(t, m, ik(1)); got != "hello" {
		t.Fatalf("value = %q; want hello", got)
	}
	// Shrink preserves the prefix.
	m.ComputeIfPresent(ik(1), func(w *WBuffer) error { return w.Resize(2) })
	if got, _ := getString(t, m, ik(1)); got != "he" {
		t.Fatalf("value = %q; want he", got)
	}
}

func TestPutIfAbsentComputeIfPresent(t *testing.T) {
	m := newTestMap(t, 64)
	inc := func(w *WBuffer) error {
		b := w.Bytes()
		binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+1)
		return nil
	}
	init := make([]byte, 8)
	binary.BigEndian.PutUint64(init, 1)
	for i := 0; i < 10; i++ {
		if err := m.PutIfAbsentComputeIfPresent(ik(9), init, inc); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := m.Get(ik(9))
	buf, _ := m.CopyValue(h, nil)
	if got := binary.BigEndian.Uint64(buf); got != 10 {
		t.Fatalf("counter = %d; want 10 (1 insert + 9 computes)", got)
	}
}

// TestManyInsertsAcrossRebalances forces many splits with a tiny chunk.
func TestManyInsertsAcrossRebalances(t *testing.T) {
	m := newTestMap(t, 32)
	const n = 5000
	perm := rand.Perm(n)
	for _, i := range perm {
		mustPut(t, m, ik(i), iv(i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d; want %d", m.Len(), n)
	}
	if m.Rebalances() == 0 {
		t.Fatal("expected rebalances with chunk capacity 32")
	}
	for i := 0; i < n; i++ {
		got, ok := getString(t, m, ik(i))
		if !ok || got != string(iv(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}
	// Ascending scan yields everything in order exactly once.
	var keys []int
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		keys = append(keys, int(binary.BigEndian.Uint64(m.KeyBytes(kr))))
		return true
	})
	if len(keys) != n {
		t.Fatalf("scan yielded %d keys; want %d", len(keys), n)
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatal("ascending scan out of order")
	}
}

func TestDeleteHeavyWithRebalance(t *testing.T) {
	m := newTestMap(t, 32)
	const n = 2000
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	for i := 0; i < n; i += 2 {
		if ok, _ := m.Remove(ik(i)); !ok {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	// Trigger merges by inserting more (rebalances fold in dead entries).
	for i := n; i < n+500; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	for i := 0; i < n; i++ {
		_, ok := m.Get(ik(i))
		if i%2 == 0 && ok {
			t.Fatalf("removed key %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("kept key %d missing", i)
		}
	}
	if want := n/2 + 500; m.Len() != want {
		t.Fatalf("Len = %d; want %d", m.Len(), want)
	}
}

func TestAscendBounds(t *testing.T) {
	m := newTestMap(t, 32)
	for i := 0; i < 100; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	var got []int
	m.Ascend(ik(10), ik(20), func(kr uint64, h ValueHandle) bool {
		got = append(got, int(binary.BigEndian.Uint64(m.KeyBytes(kr))))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("Ascend[10,20) = %v", got)
	}
}

func TestDescend(t *testing.T) {
	m := newTestMap(t, 16) // tiny chunks: descending spans many chunks
	const n = 300
	perm := rand.Perm(n)
	for _, i := range perm {
		mustPut(t, m, ik(i), iv(i))
	}
	var got []int
	m.Descend(nil, nil, func(kr uint64, h ValueHandle) bool {
		got = append(got, int(binary.BigEndian.Uint64(m.KeyBytes(kr))))
		return true
	})
	if len(got) != n {
		t.Fatalf("Descend yielded %d keys; want %d", len(got), n)
	}
	for i, k := range got {
		if k != n-1-i {
			t.Fatalf("Descend[%d] = %d; want %d", i, k, n-1-i)
		}
	}
	// Bounded descending: [50, 75)
	got = got[:0]
	m.Descend(ik(50), ik(75), func(kr uint64, h ValueHandle) bool {
		got = append(got, int(binary.BigEndian.Uint64(m.KeyBytes(kr))))
		return true
	})
	if len(got) != 25 || got[0] != 74 || got[24] != 50 {
		t.Fatalf("Descend[50,75) = %v", got)
	}
}

func TestDescendNaiveMatchesDescend(t *testing.T) {
	m := newTestMap(t, 16)
	for _, i := range rand.Perm(500) {
		mustPut(t, m, ik(i), iv(i))
	}
	collect := func(f func(lo, hi []byte, y EntryFunc)) []int {
		var out []int
		f(ik(100), ik(400), func(kr uint64, h ValueHandle) bool {
			out = append(out, int(binary.BigEndian.Uint64(m.KeyBytes(kr))))
			return true
		})
		return out
	}
	a := collect(m.Descend)
	b := collect(m.DescendNaive)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNavigation(t *testing.T) {
	m := newTestMap(t, 32)
	for i := 0; i < 100; i += 2 { // even keys 0..98
		mustPut(t, m, ik(i), iv(i))
	}
	keyOf := func(kr uint64) int { return int(binary.BigEndian.Uint64(m.KeyBytes(kr))) }

	if kr, _, ok := m.First(); !ok || keyOf(kr) != 0 {
		t.Fatalf("First = %v", ok)
	}
	if kr, _, ok := m.Last(); !ok || keyOf(kr) != 98 {
		t.Fatal("Last mismatch")
	}
	if kr, _, ok := m.Floor(ik(51)); !ok || keyOf(kr) != 50 {
		t.Fatal("Floor(51) != 50")
	}
	if kr, _, ok := m.Floor(ik(50)); !ok || keyOf(kr) != 50 {
		t.Fatal("Floor(50) != 50")
	}
	if kr, _, ok := m.Lower(ik(50)); !ok || keyOf(kr) != 48 {
		t.Fatal("Lower(50) != 48")
	}
	if kr, _, ok := m.Ceiling(ik(51)); !ok || keyOf(kr) != 52 {
		t.Fatal("Ceiling(51) != 52")
	}
	if kr, _, ok := m.Ceiling(ik(50)); !ok || keyOf(kr) != 50 {
		t.Fatal("Ceiling(50) != 50")
	}
	if kr, _, ok := m.Higher(ik(50)); !ok || keyOf(kr) != 52 {
		t.Fatal("Higher(50) != 52")
	}
	if _, _, ok := m.Lower(ik(0)); ok {
		t.Fatal("Lower(0) should be absent")
	}
	if _, _, ok := m.Higher(ik(98)); ok {
		t.Fatal("Higher(98) should be absent")
	}
}

// TestConcurrentComputeAtomicity is the paper's headline semantic claim:
// unlike Java's maps, compute is atomic. N goroutines increment a shared
// off-heap counter; the final value must be exactly N×rounds.
func TestConcurrentComputeAtomicity(t *testing.T) {
	m := newTestMap(t, 128)
	init := make([]byte, 8)
	const goroutines = 8
	const rounds = 2000
	mustPut(t, m, ik(0), init)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ok, err := m.ComputeIfPresent(ik(0), func(w *WBuffer) error {
					b := w.Bytes()
					binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+1)
					return nil
				})
				if err != nil || !ok {
					t.Errorf("compute failed: %v %v", ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	h, _ := m.Get(ik(0))
	buf, _ := m.CopyValue(h, nil)
	if got := binary.BigEndian.Uint64(buf); got != goroutines*rounds {
		t.Fatalf("counter = %d; want %d", got, goroutines*rounds)
	}
}

// TestConcurrentPutIfAbsentOneWinner: for each key, exactly one of the
// racing putIfAbsent calls must win.
func TestConcurrentPutIfAbsentOneWinner(t *testing.T) {
	m := newTestMap(t, 64)
	const keys = 500
	const goroutines = 8
	wins := make([][]int32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wins[g] = make([]int32, keys)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				ok, err := m.PutIfAbsent(ik(k), []byte(fmt.Sprintf("g%d", g)))
				if err != nil {
					t.Errorf("putIfAbsent: %v", err)
					return
				}
				if ok {
					wins[g][k] = 1
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		total := int32(0)
		for g := 0; g < goroutines; g++ {
			total += wins[g][k]
		}
		if total != 1 {
			t.Fatalf("key %d had %d winners", k, total)
		}
		// And the stored value matches some winner.
		got, ok := getString(t, m, ik(k))
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		for g := 0; g < goroutines; g++ {
			if wins[g][k] == 1 && got != fmt.Sprintf("g%d", g) {
				t.Fatalf("key %d: value %q but winner was g%d", k, got, g)
			}
		}
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d; want %d", m.Len(), keys)
	}
}

// TestConcurrentMixedChurn hammers the map with puts, removes, gets and
// scans on overlapping ranges; afterwards a full validation pass checks
// ordering and reachability invariants.
func TestConcurrentMixedChurn(t *testing.T) {
	m := newTestMap(t, 64)
	const keyRange = 2000
	const opsPerG = 5000
	goroutines := 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
			for i := 0; i < opsPerG; i++ {
				k := ik(int(rng.Uint64() % keyRange))
				switch rng.Uint64() % 10 {
				case 0, 1, 2, 3:
					if err := m.Put(k, iv(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 4:
					if _, err := m.Remove(k); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				case 5:
					m.ComputeIfPresent(k, func(w *WBuffer) error {
						b := w.Bytes()
						if len(b) > 0 {
							b[0] = 'Z'
						}
						return nil
					})
				case 6:
					cnt := 0
					m.Ascend(nil, nil, func(uint64, ValueHandle) bool {
						cnt++
						return cnt < 100
					})
				case 7:
					cnt := 0
					m.Descend(nil, nil, func(uint64, ValueHandle) bool {
						cnt++
						return cnt < 100
					})
				default:
					if h, ok := m.Get(k); ok {
						m.ReadValue(h, func([]byte) error { return nil })
					}
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()

	// Quiescent validation: scan is sorted, unique, and Get-consistent.
	var prev []byte
	count := 0
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		key := m.KeyBytes(kr)
		if prev != nil && m.cmp(prev, key) >= 0 {
			t.Fatalf("scan order violation: %x !< %x", prev, key)
		}
		prev = append(prev[:0], key...)
		if _, ok := m.Get(key); !ok {
			t.Fatalf("scanned key %x not gettable", key)
		}
		count++
		return true
	})
	if count != m.Len() {
		t.Fatalf("scan count %d != Len %d", count, m.Len())
	}
}

// TestFootprintAccounting: allocator accounting stays sane under churn.
func TestFootprintAccounting(t *testing.T) {
	m := newTestMap(t, 64)
	for i := 0; i < 1000; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	live := m.LiveBytes()
	if live <= 0 {
		t.Fatal("LiveBytes should be positive")
	}
	if m.Footprint() < live {
		t.Fatalf("Footprint %d < LiveBytes %d", m.Footprint(), live)
	}
	for i := 0; i < 1000; i++ {
		m.Remove(ik(i))
	}
	if after := m.LiveBytes(); after >= live {
		t.Fatalf("LiveBytes after removals %d; want < %d", after, live)
	}
}

func TestClosedMapErrors(t *testing.T) {
	m := New(&Options{ChunkCapacity: 64, Pool: testPool(t)})
	mustPut(t, m, ik(1), iv(1))
	m.Close()
	if err := m.Put(ik(2), iv(2)); err != ErrClosed {
		t.Fatalf("Put after close: %v; want ErrClosed", err)
	}
	if _, err := m.Remove(ik(1)); err != ErrClosed {
		t.Fatalf("Remove after close: %v; want ErrClosed", err)
	}
}

func TestOccupancyStats(t *testing.T) {
	m := newTestMap(t, 64)
	empty := m.Occupancy()
	if empty.Chunks != 1 || empty.Live != 0 || empty.MinLive != 0 {
		t.Fatalf("empty occupancy = %+v", empty)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	st := m.Occupancy()
	if st.Chunks < 2 {
		t.Fatalf("chunks = %d", st.Chunks)
	}
	if st.Live != n {
		t.Fatalf("live = %d; want %d", st.Live, n)
	}
	if st.Entries < st.Sorted || st.Entries < st.Live {
		t.Fatalf("inconsistent occupancy %+v", st)
	}
	if st.AvgUtilization <= 0 || st.AvgUtilization > 1 {
		t.Fatalf("utilization = %v", st.AvgUtilization)
	}
	if st.MinLive > st.MaxLive {
		t.Fatalf("min %d > max %d", st.MinLive, st.MaxLive)
	}
	// Removing everything drives live back toward zero.
	for i := 0; i < n; i++ {
		m.Remove(ik(i))
	}
	if got := m.Occupancy().Live; got != 0 {
		t.Fatalf("live after drain = %d", got)
	}
}

func TestComputeResizeFailureKeepsValue(t *testing.T) {
	m := New(&Options{ChunkCapacity: 64, Pool: arena.NewPool(1<<16, 1<<17)})
	defer m.Close()
	mustPut(t, m, ik(1), []byte("keepme"))
	ok, err := m.ComputeIfPresent(ik(1), func(w *WBuffer) error {
		return w.Resize(1 << 20) // exceeds the block size
	})
	if err == nil {
		t.Fatalf("oversized resize should fail (ok=%v)", ok)
	}
	if got, _ := getString(t, m, ik(1)); got != "keepme" {
		t.Fatalf("value after failed resize = %q", got)
	}
}

func TestCursorAscDesc(t *testing.T) {
	m := newTestMap(t, 16)
	const n = 400
	for _, i := range rand.Perm(n) {
		mustPut(t, m, ik(i), iv(i))
	}
	// Ascending cursor over [50, 350).
	cur := m.NewCursor(ik(50), ik(350), false)
	want := 50
	for {
		kr, h, ok := cur.Next()
		if !ok {
			break
		}
		if h == 0 {
			t.Fatal("cursor yielded ⊥ handle")
		}
		if got := int(binary.BigEndian.Uint64(m.KeyBytes(kr))); got != want {
			t.Fatalf("cursor got %d; want %d", got, want)
		}
		want++
	}
	if want != 350 {
		t.Fatalf("cursor stopped at %d", want)
	}
	if _, _, ok := cur.Next(); ok {
		t.Fatal("exhausted cursor yielded")
	}
	// Descending cursor mirrors it.
	cur = m.NewCursor(ik(50), ik(350), true)
	want = 349
	for {
		kr, _, ok := cur.Next()
		if !ok {
			break
		}
		if got := int(binary.BigEndian.Uint64(m.KeyBytes(kr))); got != want {
			t.Fatalf("desc cursor got %d; want %d", got, want)
		}
		want--
	}
	if want != 49 {
		t.Fatalf("desc cursor stopped at %d", want)
	}
}

func TestCursorSkipsDeleted(t *testing.T) {
	m := newTestMap(t, 16)
	for i := 0; i < 100; i++ {
		mustPut(t, m, ik(i), iv(i))
	}
	for i := 0; i < 100; i += 2 {
		m.Remove(ik(i))
	}
	for _, desc := range []bool{false, true} {
		cur := m.NewCursor(nil, nil, desc)
		count := 0
		for {
			kr, _, ok := cur.Next()
			if !ok {
				break
			}
			if int(binary.BigEndian.Uint64(m.KeyBytes(kr)))%2 == 0 {
				t.Fatalf("cursor (desc=%v) yielded removed key", desc)
			}
			count++
		}
		if count != 50 {
			t.Fatalf("cursor (desc=%v) yielded %d", desc, count)
		}
	}
}

func TestWriterVariants(t *testing.T) {
	m := newTestMap(t, 64)
	payload := []byte("written-directly")
	vw := ValueWriter{N: len(payload), Write: func(dst []byte) { copy(dst, payload) }}
	if err := m.PutWriter(ik(1), vw); err != nil {
		t.Fatal(err)
	}
	if got, _ := getString(t, m, ik(1)); got != string(payload) {
		t.Fatalf("PutWriter value = %q", got)
	}
	ok, err := m.PutIfAbsentWriter(ik(1), vw)
	if err != nil || ok {
		t.Fatalf("PutIfAbsentWriter on present = %v %v", ok, err)
	}
	ok, err = m.PutIfAbsentWriter(ik(2), vw)
	if err != nil || !ok {
		t.Fatalf("PutIfAbsentWriter on absent = %v %v", ok, err)
	}
	calls := 0
	err = m.PutIfAbsentComputeIfPresentWriter(ik(2), vw, func(w *WBuffer) error {
		calls++
		w.Bytes()[0] = 'W'
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("PIACIPWriter compute path: %v calls=%d", err, calls)
	}
	if got, _ := getString(t, m, ik(2)); got[0] != 'W' {
		t.Fatalf("value = %q", got)
	}
	// Misc accessors.
	if h, ok := m.Get(ik(1)); ok {
		n, err := m.ValueLen(h)
		if err != nil || n != len(payload) {
			t.Fatalf("ValueLen = %d %v", n, err)
		}
	}
	if m.ArenaStats().LiveBytes <= 0 {
		t.Fatal("ArenaStats")
	}
	if m.KeyLeakBytes() != 0 {
		t.Fatal("unexpected key leak before any rebalance of dead keys")
	}
}
