package core

// Regression tests for cursor resume across reclamation: a pull cursor
// pins the epoch only inside Next, so between calls the chunk it points
// at can be frozen, replaced, and its dead keys retired and recycled.
// Resuming must re-enter the live chunk list at the exact position —
// even when the key the cursor paused on was itself removed and its
// chunk rebalanced away — with no skipped and no duplicated keys.
// (Before the epoch layer, the descending direction documented exactly
// this anomaly as a known limitation.)

import "testing"

// pauseCursorAt advances cur until it yields key target, collecting the
// visited keys.
func pauseCursorAt(t *testing.T, m *Map, cur *Cursor, target int) []int {
	t.Helper()
	var seen []int
	for {
		kr, _, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor exhausted before reaching key %d (saw %v)", target, seen)
		}
		k := kint(m, kr)
		seen = append(seen, k)
		if k == target {
			return seen
		}
	}
}

// churnRebalance removes keys [lo,hi) and forces the covering chunk to
// rebalance (merging the under-utilized remainder), then cycles the
// epoch so the retired key space is actually freed — the cursor must
// not be depending on those bytes.
func churnRebalance(t *testing.T, m *Map, lo, hi int) {
	t.Helper()
	for k := lo; k < hi; k++ {
		if _, err := m.Remove(ik(k)); err != nil {
			t.Fatalf("remove(%d): %v", k, err)
		}
	}
	m.rebalance(m.locateChunk(ik(lo)))
	if !m.QuiesceReclaim() {
		t.Fatal("limbo failed to drain (unexpected pinned reader)")
	}
	if leak := m.KeyLeakBytes(); leak != 0 {
		t.Fatalf("KeyLeakBytes = %d with default reclamation", leak)
	}
}

// TestCursorResumeDescAfterRemoveAndRebalance pauses a descending cursor
// exactly on a key, removes that key (and its neighbourhood) so the
// chunk is rebalanced and the key's off-heap space reclaimed, then
// resumes: the cursor must continue strictly below the pause key,
// yielding every remaining smaller key exactly once.
func TestCursorResumeDescAfterRemoveAndRebalance(t *testing.T) {
	const n = 48 // keys 0..95 across several 16-entry chunks
	m := newTestMap(t, 16)
	insertInterleaved(t, m, n)

	const pause = 60
	cur := m.NewCursor(nil, nil, true)
	seen := pauseCursorAt(t, m, cur, pause)
	for i, k := range seen {
		if k != 2*n-1-i {
			t.Fatalf("pre-pause descend[%d] = %d; want %d", i, k, 2*n-1-i)
		}
	}

	// Remove the pause key and everything down to 48: the cursor's
	// position key vanishes and its chunk merges away.
	churnRebalance(t, m, 48, pause+1)

	var rest []int
	for {
		kr, _, ok := cur.Next()
		if !ok {
			break
		}
		rest = append(rest, kint(m, kr))
	}
	if len(rest) != 48 {
		t.Fatalf("resume yielded %d keys; want 48 (got %v)", len(rest), rest)
	}
	for i, k := range rest {
		if k != 47-i {
			t.Fatalf("resume descend[%d] = %d; want %d (skip or duplicate)", i, k, 47-i)
		}
	}
}

// TestCursorResumeAscAfterRemoveAndRebalance is the ascending mirror:
// pause on a key, remove a range starting at it, rebalance, resume —
// the cursor must continue at the first surviving key above the pause
// key with no repeats of already-yielded keys.
func TestCursorResumeAscAfterRemoveAndRebalance(t *testing.T) {
	const n = 48
	m := newTestMap(t, 16)
	insertInterleaved(t, m, n)

	const pause = 40
	cur := m.NewCursor(nil, nil, false)
	seen := pauseCursorAt(t, m, cur, pause)
	for i, k := range seen {
		if k != i {
			t.Fatalf("pre-pause ascend[%d] = %d; want %d", i, k, i)
		}
	}

	churnRebalance(t, m, pause, 56)

	var rest []int
	for {
		kr, _, ok := cur.Next()
		if !ok {
			break
		}
		rest = append(rest, kint(m, kr))
	}
	want := 2*n - 56 // keys 56..95
	if len(rest) != want {
		t.Fatalf("resume yielded %d keys; want %d (got %v)", len(rest), want, rest)
	}
	for i, k := range rest {
		if k != 56+i {
			t.Fatalf("resume ascend[%d] = %d; want %d (skip or duplicate)", i, k, 56+i)
		}
	}
}

// TestCursorResumeDescBeforeFirstNext covers the degenerate pause: a
// cursor created but never advanced while its starting chunk is
// rebalanced away must still scan the full (surviving) range.
func TestCursorResumeDescBeforeFirstNext(t *testing.T) {
	const n = 32
	m := newTestMap(t, 16)
	insertInterleaved(t, m, n)

	cur := m.NewCursor(nil, nil, true)
	churnRebalance(t, m, 48, 64) // drop the top chunk's range (keys 48..63)

	var keys []int
	for {
		kr, _, ok := cur.Next()
		if !ok {
			break
		}
		keys = append(keys, kint(m, kr))
	}
	if len(keys) != 48 {
		t.Fatalf("scan yielded %d keys; want 48", len(keys))
	}
	for i, k := range keys {
		if k != 47-i {
			t.Fatalf("descend[%d] = %d; want %d", i, k, 47-i)
		}
	}
}
