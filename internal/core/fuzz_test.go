package core

import (
	"bytes"
	"sort"
	"testing"

	"oakmap/internal/arena"
)

// FuzzOpSequence drives the map and a sequential oracle with an
// arbitrary operation script decoded from fuzz input. Each byte pair is
// one operation: (opcode, key); values are derived from the position.
// Run with `go test -fuzz=FuzzOpSequence ./internal/core` for continuous
// fuzzing; the seed corpus below runs under plain `go test`.
func FuzzOpSequence(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 3, 1})
	f.Add([]byte{0, 5, 0, 6, 4, 5, 3, 5, 0, 5})
	f.Add(bytes.Repeat([]byte{0, 9, 3, 9}, 20)) // insert/remove churn
	f.Add([]byte{5, 0, 0, 0, 5, 0, 3, 0, 5, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		m := New(&Options{ChunkCapacity: 16, Pool: arena.NewPool(1<<20, 0)})
		defer m.Close()
		ref := map[string]string{}
		for i := 0; i+1 < len(script); i += 2 {
			op, kb := script[i], script[i+1]
			k := ik(int(kb) % 48)
			ks := string(k)
			switch op % 6 {
			case 0:
				v := iv(i)
				if err := m.Put(k, v); err != nil {
					t.Fatalf("put: %v", err)
				}
				ref[ks] = string(v)
			case 1:
				v := iv(i + 7)
				ok, err := m.PutIfAbsent(k, v)
				if err != nil {
					t.Fatalf("putIfAbsent: %v", err)
				}
				if _, had := ref[ks]; ok == had {
					t.Fatalf("putIfAbsent(%x) = %v but had=%v", kb, ok, had)
				}
				if ok {
					ref[ks] = string(v)
				}
			case 2:
				ok, err := m.ComputeIfPresent(k, func(w *WBuffer) error {
					return w.Resize(3)
				})
				if err != nil {
					t.Fatalf("compute: %v", err)
				}
				old, had := ref[ks]
				if ok != had {
					t.Fatalf("compute(%x) = %v but had=%v", kb, ok, had)
				}
				if had {
					nv := old
					if len(nv) > 3 {
						nv = nv[:3]
					}
					for len(nv) < 3 {
						nv += "\x00"
					}
					ref[ks] = nv
				}
			case 3:
				ok, err := m.Remove(k)
				if err != nil {
					t.Fatalf("remove: %v", err)
				}
				if _, had := ref[ks]; ok != had {
					t.Fatalf("remove(%x) = %v but had=%v", kb, ok, had)
				}
				delete(ref, ks)
			case 4:
				got, ok := getString2(m, k)
				want, had := ref[ks]
				if ok != had || (had && got != want) {
					t.Fatalf("get(%x) = (%q,%v); want (%q,%v)", kb, got, ok, want, had)
				}
			case 5:
				var keys []string
				m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
					keys = append(keys, string(m.KeyBytes(kr)))
					return true
				})
				if len(keys) != len(ref) {
					t.Fatalf("scan %d keys; oracle has %d", len(keys), len(ref))
				}
				if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
					t.Fatal("scan out of order")
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len = %d; oracle %d", m.Len(), len(ref))
		}
	})
}

// FuzzDescendMatchesAscend checks the descending-scan mechanism against
// the ascending scan for arbitrary insertion orders and bounds.
func FuzzDescendMatchesAscend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(0), uint8(255))
	f.Add([]byte{10, 5, 30, 5, 20}, uint8(5), uint8(25))
	f.Fuzz(func(t *testing.T, keys []byte, loRaw, hiRaw uint8) {
		if len(keys) > 200 {
			keys = keys[:200]
		}
		m := New(&Options{ChunkCapacity: 8, Pool: arena.NewPool(1<<20, 0)})
		defer m.Close()
		for _, kb := range keys {
			if err := m.Put(ik(int(kb)), iv(int(kb))); err != nil {
				t.Fatal(err)
			}
		}
		lo, hi := int(loRaw), int(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		var asc, desc []int
		m.Ascend(ik(lo), ik(hi), func(kr uint64, h ValueHandle) bool {
			asc = append(asc, kint(m, kr))
			return true
		})
		m.Descend(ik(lo), ik(hi), func(kr uint64, h ValueHandle) bool {
			desc = append(desc, kint(m, kr))
			return true
		})
		if len(asc) != len(desc) {
			t.Fatalf("asc %v desc %v", asc, desc)
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				t.Fatalf("mismatch: asc %v desc %v", asc, desc)
			}
		}
	})
}
