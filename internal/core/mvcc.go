package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"oakmap/internal/arena"
	"oakmap/internal/faultpoint"
)

// This file is the MVCC heart of the map: a per-map version clock, the
// open-snapshot registry that ratchets the reclaim horizon, and the
// retained-version store that keeps copy-on-write pre-images alive for
// open snapshots.
//
// Versioning scheme. Every mutation stamps the value header's version
// word with the clock's current value; the clock itself only moves when
// a snapshot or a batch is created:
//
//   - Snapshot: raise retainFloor to S+1, then CAS the clock S → S+1
//     (BeginSnapshot). Writers that loaded the clock before the ratchet
//     stamp ≤ S (inside the snapshot), writers after stamp > S
//     (outside) — and, because the floor is raised before the ratchet
//     is observable, an outside writer is guaranteed to see the raised
//     floor and retain the pre-image the snapshot still needs. A write
//     stamped ≤ S may still be mid-install when Snapshot returns, so
//     snapshot creation waits one epoch grace period (every stamp
//     happens under an epoch pin): after the grace, all ≤ S installs
//     are complete and the view is frozen.
//   - Batch: base = clock.Add(2)-1, under pendMu together with the
//     registry insert (PrepareBatch). The skipped value means no normal
//     write ever stamps a batch's base version — base uniquely
//     identifies the batch in flagged version words.
//
// Version word layout (stored via vheader.StoreVersion):
//
//	bit 63    verPendingBit — installed by a batch, not yet finalized
//	bit 62    verTombBit    — batch delete (pending tombstone)
//	bits 0-61 base version
//
// Flag-free words are plain committed versions; flagged words route
// readers through the pending-batch registry, which resolves them to the
// batch's pre-state before commit and post-state after — that single
// indirection is what makes ApplyBatch all-or-nothing.
const (
	verPendingBit = uint64(1) << 63
	verTombBit    = uint64(1) << 62
	verFlagMask   = verPendingBit | verTombBit
	verBaseMask   = verTombBit - 1
)

// Fault-injection points on the MVCC layer (no-ops unless armed).
var (
	// fpMvccRetain is hit when a superseded value span is about to enter
	// the retained store (instead of being retired): pausing here widens
	// the window between the new version's install and the pre-image
	// becoming findable by snapshot scans.
	fpMvccRetain = faultpoint.New("mvcc/retain")
	// fpMvccHorizon is hit at the start of a horizon sweep (snapshot
	// close recomputing the reclaim horizon and releasing newly invisible
	// retained spans): pausing here holds the horizon back while writers
	// keep retaining against the old floor.
	fpMvccHorizon = faultpoint.New("mvcc/horizon")
)

// retEntry is one retained pre-image: the value's bytes as of version
// ver, superseded (overwritten or deleted) at version super. It is
// visible to a snapshot S iff ver ≤ S < super.
type retEntry struct {
	ver   uint64
	super uint64
	ref   arena.Ref
}

// retChain is a key's retained version chain, entries ascending by ver.
type retChain struct {
	entries []retEntry
}

// mvccState is the per-map MVCC bookkeeping. Hot paths touch only the
// two atomics (clock on every write, retainFloor as the retention gate);
// everything else is cold-path state behind mu.
type mvccState struct {
	// clock may only ratchet under mu (BeginSnapshot's CAS) or pendMu
	// (PrepareBatch's Add) — the PR-8 race was an unlocked ratchet.
	clock atomic.Uint64 //oak:guarded-by mu,pendMu // next write stamps this value; starts at 1
	// retainFloor must be raised before the clock ratchet publishes
	// (see BeginSnapshot), and only Begin/EndSnapshot write it.
	retainFloor atomic.Uint64 //oak:guarded-by mu //oak:publish-before clock // max open snapshot + 1; 0 = none
	openCount   atomic.Int64
	retBytes    atomic.Int64 // bytes held by the retained store
	retSpans    atomic.Int64 // spans held by the retained store

	mu   sync.Mutex
	open []uint64 //oak:guarded-by mu // open snapshot versions, ascending (duplicates allowed)

	// Retained store: chains keyed by an owned copy of the serialized
	// key. Chains are keyed by key bytes (not value handles) because a
	// remove + re-insert swaps the entry's handle while the key's
	// version history must stay one chain. keys mirrors byKey in sorted
	// order for the snapshot scans' ceiling/floor queries.
	byKey map[string]*retChain //oak:guarded-by mu
	keys  [][]byte             //oak:guarded-by mu

	// Pending-batch registry: base version → install record. Readers
	// that hit a flagged version word resolve it here (cold path).
	pendMu  sync.RWMutex
	pending map[uint64]*BatchInstall //oak:guarded-by pendMu
}

func (st *mvccState) init() {
	st.clock.Store(1)
	st.byKey = make(map[string]*retChain)
	st.pending = make(map[uint64]*BatchInstall)
}

// visibleLocked reports whether some open snapshot S satisfies
// ver ≤ S < super. Callers hold st.mu.
func (st *mvccState) visibleLocked(ver, super uint64) bool {
	i := sort.Search(len(st.open), func(i int) bool { return st.open[i] >= ver })
	return i < len(st.open) && st.open[i] < super
}

// lookupBatch resolves a flagged version word's base to its pending
// install record, nil once the batch has finalized.
func (m *Map) lookupBatch(base uint64) *BatchInstall {
	st := &m.mvcc
	st.pendMu.RLock()
	bi := st.pending[base]
	st.pendMu.RUnlock()
	return bi
}

// BeginSnapshot ratchets the version clock and registers an open
// snapshot, returning its version S. The view is not stable until
// StabilizeSnapshot(S) has been called; every BeginSnapshot must be
// paired with exactly one EndSnapshot.
//
// Ordering is load-bearing: the floor is raised BEFORE the clock
// ratchet becomes observable. Writers load the clock first and the
// floor second (valuePut et al.), so a writer that observed a
// post-ratchet clock value (newVer > S — the snapshot must not see its
// write) is guaranteed to also observe floor ≥ S+1 and take the
// copy-on-write retention path for the pre-image S still needs. If the
// ratchet CAS loses to a concurrent batch prepare, the loop re-raises
// the floor for the newer clock value; a transiently too-high floor is
// safe (retireOrRetain re-checks precisely under mu).
func (m *Map) BeginSnapshot() uint64 {
	st := &m.mvcc
	st.mu.Lock()
	var s uint64
	for {
		c := st.clock.Load()
		if st.retainFloor.Load() < c+1 {
			st.retainFloor.Store(c + 1) // only Begin/End write the floor, both under mu
		}
		if st.clock.CompareAndSwap(c, c+1) {
			s = c
			break
		}
	}
	st.open = append(st.open, s) // clock is monotone: append keeps order
	st.openCount.Add(1)
	st.mu.Unlock()
	return s
}

// StabilizeSnapshot makes snapshot S's view immutable: it waits out any
// batch whose base version is ≤ S and still undecided (its commit would
// otherwise flip inside the view), then waits one epoch grace period so
// every writer that stamped a version ≤ S has finished its install.
// Must not be called while holding an epoch pin on this map.
func (m *Map) StabilizeSnapshot(s uint64) {
	st := &m.mvcc
	for {
		var wait *BatchInstall
		st.pendMu.RLock()
		for base, bi := range st.pending {
			if base <= s && bi.desc.state.Load() == batchPending {
				wait = bi
				break
			}
		}
		st.pendMu.RUnlock()
		if wait == nil {
			break
		}
		<-wait.desc.done
	}
	m.reclaim.Grace()
}

// EndSnapshot closes snapshot S: it leaves the open set, the reclaim
// horizon advances, and retained spans no open snapshot can see are
// retired through the epoch domain.
func (m *Map) EndSnapshot(s uint64) {
	st := &m.mvcc
	st.mu.Lock()
	i := sort.Search(len(st.open), func(i int) bool { return st.open[i] >= s })
	if i < len(st.open) && st.open[i] == s {
		st.open = append(st.open[:i], st.open[i+1:]...)
		st.openCount.Add(-1)
	}
	if n := len(st.open); n == 0 {
		st.retainFloor.Store(0)
	} else {
		st.retainFloor.Store(st.open[n-1] + 1)
	}
	m.sweepRetainedLocked()
	st.mu.Unlock()
}

// sweepRetainedLocked drops every retained entry that no open snapshot
// can see, retiring its span through the epoch domain. Called with
// st.mu held (snapshot close — the horizon only advances there).
func (m *Map) sweepRetainedLocked() {
	st := &m.mvcc
	fpMvccHorizon.Fire()
	keptKeys := st.keys[:0]
	for _, key := range st.keys {
		chain := st.byKey[string(key)]
		kept := chain.entries[:0]
		for _, e := range chain.entries {
			if st.visibleLocked(e.ver, e.super) {
				kept = append(kept, e)
				continue
			}
			st.retBytes.Add(-int64(e.ref.Len()))
			st.retSpans.Add(-1)
			m.alloc.Retire(e.ref)
		}
		chain.entries = kept
		if len(kept) == 0 {
			delete(st.byKey, string(key))
			continue
		}
		keptKeys = append(keptKeys, key)
	}
	st.keys = keptKeys
}

// retireOrRetain disposes of a superseded value span: if some open
// snapshot can still see version oldVer (it was overwritten or deleted
// at version super), the span enters the retained store; otherwise it is
// retired through the epoch domain. key nil means the value was never
// visible (a discarded unpublished allocation) and is always retired.
// The fast path is one atomic load: with no open snapshots retainFloor
// is 0 and nothing is ever retained.
func (m *Map) retireOrRetain(key []byte, ref arena.Ref, oldVer, super uint64) {
	if ref == 0 {
		return
	}
	if key == nil || oldVer >= m.mvcc.retainFloor.Load() {
		m.alloc.Retire(ref)
		return
	}
	fpMvccRetain.Fire()
	st := &m.mvcc
	st.mu.Lock()
	// Precise re-check under the registry lock: the floor is a racy gate
	// and may have moved; retaining for a just-closed snapshot would
	// leak until the next sweep — or forever, if it was the last one.
	if !st.visibleLocked(oldVer, super) {
		st.mu.Unlock()
		m.alloc.Retire(ref)
		return
	}
	chain := st.byKey[string(key)]
	if chain == nil {
		owned := append([]byte(nil), key...)
		chain = &retChain{}
		st.byKey[string(owned)] = chain
		i := sort.Search(len(st.keys), func(i int) bool { return m.cmp(st.keys[i], owned) >= 0 })
		st.keys = append(st.keys, nil)
		copy(st.keys[i+1:], st.keys[i:])
		st.keys[i] = owned
	}
	// Entries stay ver-ascending: a later retain's ver is ≥ the earlier
	// retain's super for the same key, but insert defensively.
	e := retEntry{ver: oldVer, super: super, ref: ref}
	j := len(chain.entries)
	for j > 0 && chain.entries[j-1].ver > e.ver {
		j--
	}
	chain.entries = append(chain.entries, retEntry{})
	copy(chain.entries[j+1:], chain.entries[j:])
	chain.entries[j] = e
	st.retBytes.Add(int64(ref.Len()))
	st.retSpans.Add(1)
	st.mu.Unlock()
}

// MVCCStats is the observability snapshot of the MVCC layer.
type MVCCStats struct {
	OpenSnapshots int64  // currently open snapshot views
	RetainedBytes int64  // bytes held by the retained-version store
	RetainedSpans int64  // spans held by the retained-version store
	HorizonLag    uint64 // current version − oldest open snapshot (0 if none)
}

// MVCCStats returns the MVCC layer's counters.
func (m *Map) MVCCStats() MVCCStats {
	st := &m.mvcc
	out := MVCCStats{
		OpenSnapshots: st.openCount.Load(),
		RetainedBytes: st.retBytes.Load(),
		RetainedSpans: st.retSpans.Load(),
	}
	st.mu.Lock()
	if len(st.open) > 0 {
		out.HorizonLag = st.clock.Load() - 1 - st.open[0]
	}
	st.mu.Unlock()
	return out
}

// lockStable acquires h's write lock and waits out any batch-flagged
// version: a pending or unfinalized batch owns the value's next state,
// and a normal write slipping in between install and commit would tear
// the batch's atomicity (readers could observe the overwrite before the
// batch's other keys). Returns the current committed version; ok=false
// iff the value is deleted. May block on the owning batch's decision —
// batches never wait on individual writers, so there is no cycle.
func (m *Map) lockStable(h ValueHandle) (uint64, bool) {
	for spins := 0; ; spins++ {
		if !m.headers.TryWriteLock(uint64(h)) {
			return 0, false
		}
		v := m.headers.LoadVersion(uint64(h))
		if v&verFlagMask == 0 {
			return v, true
		}
		m.headers.WriteUnlock(uint64(h))
		if bi := m.lookupBatch(v & verBaseMask); bi != nil {
			<-bi.desc.done // decided; finalize/rollback clears the flags shortly
		}
		retryPause(spins + 5)
	}
}

// pendingPresent decides key-presence for a batch-flagged handle: the
// batch's pre-state before commit, its post-state after. v is a version
// word previously loaded from h.
func (m *Map) pendingPresent(h ValueHandle, v uint64) bool {
	for {
		bi := m.lookupBatch(v & verBaseMask)
		if bi == nil {
			// Finalized between the version load and the lookup.
			v = m.headers.LoadVersion(uint64(h))
			if v&verFlagMask == 0 {
				return !m.IsDeleted(h)
			}
			continue
		}
		committed := bi.desc.state.Load() == batchCommitted
		if v&verTombBit != 0 {
			return !committed // a pending tombstone is still present
		}
		if committed {
			return true
		}
		rec := bi.lookup(h)
		return rec != nil && rec.hadOld
	}
}

// readFlagged resolves a batch-flagged value under the read lock held by
// the caller: pre-state before commit, post-state after. The read lock
// excludes the finalizer (which needs the write lock), so the install
// record and the pre-image span both outlive this call.
func (m *Map) readFlagged(h ValueHandle, v uint64, f func([]byte) error) error {
	for {
		bi := m.lookupBatch(v & verBaseMask)
		if bi == nil {
			v = m.headers.LoadVersion(uint64(h))
			if v&verFlagMask == 0 {
				ref := arena.Ref(m.headers.LoadData(uint64(h)))
				return f(m.alloc.Bytes(ref))
			}
			continue
		}
		committed := bi.desc.state.Load() == batchCommitted
		if v&verTombBit != 0 {
			if committed {
				return ErrConcurrentModification // deleted at commit
			}
			ref := arena.Ref(m.headers.LoadData(uint64(h))) // pre-delete bytes
			return f(m.alloc.Bytes(ref))
		}
		if committed {
			ref := arena.Ref(m.headers.LoadData(uint64(h)))
			return f(m.alloc.Bytes(ref))
		}
		rec := bi.lookup(h)
		if rec == nil || !rec.hadOld {
			return ErrConcurrentModification // absent before the batch
		}
		return f(m.alloc.Bytes(rec.oldRef))
	}
}
