package core

// Chaos harness: drives the map with the fault-injection points armed
// (internal/faultpoint), forcing the rare interleavings the paper's
// correctness arguments are about — allocation failure mid-operation,
// CAS losses, mid-rebalance readers, deleted-bit races — and validates
// the survivor invariants: no lost updates, no resurrected deletes,
// scans see a consistent frontier, histories stay linearizable.
//
// Every scenario asserts its fault point's hit/fire counters, which is
// what makes the injection demonstrably load-bearing: with the point
// disarmed the exercised path is not reached at all (the counters would
// read zero), so plain stress cannot substitute for these tests.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oakmap/internal/arena"
	"oakmap/internal/chunk"
	"oakmap/internal/epoch"
	"oakmap/internal/faultpoint"
	"oakmap/internal/lincheck"
	"oakmap/internal/vheader"
)

// armAll guards global fault-point state: chaos tests must not run in
// parallel, and every test disarms on exit even on failure.
func disarmOnExit(t *testing.T) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
}

// --- Category: allocation failure (arena/alloc-fail) ---

// TestChaosAllocFailDeterministic injects a single allocation failure
// and checks the operation unwinds cleanly: error surfaced, no state
// change, and the very next attempt succeeds.
func TestChaosAllocFailDeterministic(t *testing.T) {
	disarmOnExit(t)
	m := newTestMap(t, 16)

	arena.FpAllocFail.Arm(faultpoint.OnHit(1))
	err := m.Put(ik(1), []byte("v1"))
	if !errors.Is(err, arena.ErrInjected) {
		t.Fatalf("Put under injected alloc failure: err = %v; want ErrInjected", err)
	}
	if arena.FpAllocFail.Fires() != 1 {
		t.Fatalf("fires = %d; want 1", arena.FpAllocFail.Fires())
	}
	if _, ok := m.Get(ik(1)); ok {
		t.Fatal("failed Put left the key visible")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after failed Put; want 0", m.Len())
	}
	arena.FpAllocFail.Disarm()
	if err := m.Put(ik(1), []byte("v1")); err != nil {
		t.Fatalf("Put after disarm: %v", err)
	}
	if got, _ := getString(t, m, ik(1)); got != "v1" {
		t.Fatalf("Get = %q; want v1", got)
	}
}

// TestChaosAllocFailOracle runs a long operation script with allocation
// failures firing probabilistically (seeded, reproducible) against a
// sequential oracle: a failed operation must behave as a no-op, and the
// map must match the oracle exactly afterwards. This drives the error
// unwind paths (key release, linked-entry-with-⊥-value reuse, value
// resize failure) that real workloads reach only at memory exhaustion.
func TestChaosAllocFailOracle(t *testing.T) {
	disarmOnExit(t)
	m := newTestMap(t, 16)
	oracle := map[string]string{}
	rng := rand.New(rand.NewPCG(2026, 0xa110c))

	arena.FpAllocFail.Arm(faultpoint.WithProb(0.2, 42))
	injected := 0
	for i := 0; i < 4000; i++ {
		k := ik(int(rng.Uint64() % 64))
		ks := string(k)
		switch rng.Uint64() % 5 {
		case 0:
			v := fmt.Sprintf("p-%d", i)
			if err := m.Put(k, []byte(v)); err != nil {
				if !errors.Is(err, arena.ErrInjected) {
					t.Fatalf("put: %v", err)
				}
				injected++
			} else {
				oracle[ks] = v
			}
		case 1:
			v := fmt.Sprintf("a-%d", i)
			ok, err := m.PutIfAbsent(k, []byte(v))
			if err != nil {
				if !errors.Is(err, arena.ErrInjected) {
					t.Fatalf("putIfAbsent: %v", err)
				}
				injected++
				break
			}
			if _, had := oracle[ks]; ok == had {
				t.Fatalf("putIfAbsent(%s) = %v but oracle had=%v", ks, ok, had)
			}
			if ok {
				oracle[ks] = v
			}
		case 2:
			// Compute with a resize so the allocation-failure path inside
			// WBuffer.Resize is reachable; on error the value must be
			// untouched (Resize fails before any mutation).
			nv := fmt.Sprintf("c-%d-%d", i, rng.Uint64()%100)
			ok, err := m.ComputeIfPresent(k, func(w *WBuffer) error {
				return w.Set([]byte(nv))
			})
			if err != nil {
				if !errors.Is(err, arena.ErrInjected) {
					t.Fatalf("compute: %v", err)
				}
				injected++
				break
			}
			if _, had := oracle[ks]; ok != had {
				t.Fatalf("compute(%s) = %v but oracle had=%v", ks, ok, had)
			}
			if ok {
				oracle[ks] = nv
			}
		case 3:
			ok, err := m.Remove(k) // removes never allocate; must not fail
			if err != nil {
				t.Fatalf("remove: %v", err)
			}
			if _, had := oracle[ks]; ok != had {
				t.Fatalf("remove(%s) = %v but oracle had=%v", ks, ok, had)
			}
			delete(oracle, ks)
		case 4:
			got, ok := getString(t, m, k)
			want, had := oracle[ks]
			if ok != had || (had && got != want) {
				t.Fatalf("get(%s) = (%q,%v); oracle (%q,%v)", ks, got, ok, want, had)
			}
		}
	}
	if arena.FpAllocFail.Fires() == 0 || injected == 0 {
		t.Fatalf("alloc-fail never fired (fires=%d, surfaced=%d): injection not load-bearing",
			arena.FpAllocFail.Fires(), injected)
	}
	arena.FpAllocFail.Disarm()

	// Full-state comparison: scan must reproduce the oracle exactly.
	got := map[string]string{}
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		b, err := m.CopyValue(h, nil)
		if err != nil {
			t.Fatalf("read during final scan: %v", err)
		}
		got[string(m.KeyBytes(kr))] = string(b)
		return true
	})
	if len(got) != len(oracle) {
		t.Fatalf("final scan has %d keys; oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("key %x = %q; oracle %q", k, got[k], v)
		}
	}
	t.Logf("alloc-fail: %d injected failures over 4000 ops, state exact", injected)
}

// --- Category: CAS failure (chunk/link-cas, chunk/publish-fail) ---

// TestChaosPublishFailDiscard forces Publish to fail exactly once during
// an insert, driving doPut through the discardValue path (allocate a
// value, fail to publish, reclaim it, retry) that plain stress reaches
// only when a rebalance wins a photo-finish race.
func TestChaosPublishFailDiscard(t *testing.T) {
	disarmOnExit(t)
	m := New(&Options{ChunkCapacity: 16, Pool: testPool(t), ReclaimHeaders: true})
	defer m.Close()

	chunk.FpPublishFail.Arm(faultpoint.OnHit(1))
	if err := m.Put(ik(1), []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if f := chunk.FpPublishFail.Fires(); f != 1 {
		t.Fatalf("publish-fail fires = %d; want 1", f)
	}
	if got, _ := getString(t, m, ik(1)); got != "v1" {
		t.Fatalf("Get = %q; want v1", got)
	}
	// The discarded value's header must have been recycled.
	rt := m.headers.(*vheader.ReclaimingTable)
	if rt.Released() < 1 {
		t.Fatalf("released headers = %d; want ≥1 (discardValue path not taken)", rt.Released())
	}
}

// TestChaosCASFailLinearizability records concurrent multi-key histories
// while the entry-link CAS and Publish are failing with seeded
// probability: every operation internally retries through the loss paths
// and the resulting histories must still be linearizable.
func TestChaosCASFailLinearizability(t *testing.T) {
	disarmOnExit(t)
	const histories = 60
	const threads = 4
	const opsPerThread = 4
	keys := [][]byte{ik(10), ik(42), ik(55)}

	chunk.FpLinkCAS.Arm(faultpoint.WithProb(0.3, 7))
	chunk.FpPublishFail.Arm(faultpoint.WithProb(0.3, 8))

	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t)})
		for i := 0; i < 64; i++ {
			if i == 10 || i == 42 || i == 55 {
				continue
			}
			m.Put(ik(i), iv(i)) // neighbour churn under CAS chaos
		}
		var clock atomic.Uint64
		recs := make([][]lincheck.Op, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 1234))
				for i := 0; i < opsPerThread; i++ {
					kind := lincheck.Kind(rng.Uint64() % 6)
					key := keys[rng.Uint64()%uint64(len(keys))]
					arg := fmt.Sprintf("g%d-%d", g, i)
					recs[g] = append(recs[g], runRecordedOp(t, m, &clock, kind, key, arg))
				}
			}(g)
		}
		wg.Wait()
		var all []lincheck.Op
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("history %d under CAS chaos is not linearizable", h)
		}
		m.Close()
	}
	if chunk.FpLinkCAS.Fires() == 0 || chunk.FpPublishFail.Fires() == 0 {
		t.Fatalf("CAS faults never fired (link-cas=%d publish=%d): not load-bearing",
			chunk.FpLinkCAS.Fires(), chunk.FpPublishFail.Fires())
	}
	t.Logf("CAS chaos: link-cas fired %d, publish-fail fired %d",
		chunk.FpLinkCAS.Fires(), chunk.FpPublishFail.Fires())
}

// --- Category: rebalance windows (core/rebalance-*) ---

// TestChaosRebalanceWindows parks a rebalancer inside each of its three
// danger windows (frozen, split-built, index-stale) and verifies that
// readers — gets, ascending and descending scans — observe the full,
// correct key set throughout, then that the map is intact after the
// rebalance completes. Updates are additionally exercised in the
// index-stale window, where they must recover via ReplacedBy forwarding.
func TestChaosRebalanceWindows(t *testing.T) {
	points := []struct {
		name    string
		point   string
		mutable bool // updates can complete while parked in this window
	}{
		{"freeze", "core/rebalance-freeze", false},
		{"split", "core/rebalance-split", false},
		{"index", "core/rebalance-index", true},
	}
	const n = 64
	for _, tc := range points {
		t.Run(tc.name, func(t *testing.T) {
			disarmOnExit(t)
			m := newTestMap(t, 16)
			for i := 0; i < n; i++ {
				mustPut(t, m, ik(i), iv(i))
			}

			p, ok := faultpoint.Lookup(tc.point)
			if !ok {
				t.Fatalf("unknown point %s", tc.point)
			}
			g := faultpoint.NewGate()
			defer g.Open()
			p.Arm(g.Hook(1))

			target := m.locateChunk(ik(n / 2))
			done := make(chan struct{})
			go func() {
				defer close(done)
				m.rebalance(target)
			}()
			if !g.WaitArrival(10 * time.Second) {
				t.Fatal("rebalancer never reached the window")
			}

			// Mid-window reads: every key must be found with its value.
			for i := 0; i < n; i++ {
				if got, ok := getString(t, m, ik(i)); !ok || got != string(iv(i)) {
					t.Fatalf("mid-%s Get(%d) = (%q,%v)", tc.name, i, got, ok)
				}
			}
			checkFullScans(t, m, n, "mid-"+tc.name)

			if tc.mutable {
				// The chunk chain is already spliced; an overwrite of a key
				// in the rebalanced range must land via forwarding even
				// though the index still points at the retired chunk.
				if err := m.Put(ik(n/2), []byte("updated")); err != nil {
					t.Fatalf("mid-%s Put: %v", tc.name, err)
				}
			}

			g.Open()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("rebalancer did not finish after gate opened")
			}
			p.Disarm()
			if p.Hits() < 1 {
				t.Fatalf("window %s never hit: not load-bearing", tc.point)
			}

			for i := 0; i < n; i++ {
				want := string(iv(i))
				if tc.mutable && i == n/2 {
					want = "updated"
				}
				if got, ok := getString(t, m, ik(i)); !ok || got != want {
					t.Fatalf("post-%s Get(%d) = (%q,%v); want %q", tc.name, i, got, ok, want)
				}
			}
			checkFullScans(t, m, n, "post-"+tc.name)
		})
	}
}

// checkFullScans asserts both scan directions report exactly keys
// 0..n-1, strictly ordered, with no duplicates — the consistent-frontier
// invariant for a key set that is stable during the scan.
func checkFullScans(t *testing.T, m *Map, n int, when string) {
	t.Helper()
	var asc []int
	m.Ascend(nil, nil, func(kr uint64, h ValueHandle) bool {
		asc = append(asc, kint(m, kr))
		return true
	})
	var desc []int
	m.Descend(nil, nil, func(kr uint64, h ValueHandle) bool {
		desc = append(desc, kint(m, kr))
		return true
	})
	if len(asc) != n || len(desc) != n {
		t.Fatalf("%s: scans saw %d asc / %d desc keys; want %d", when, len(asc), len(desc), n)
	}
	for i := 0; i < n; i++ {
		if asc[i] != i {
			t.Fatalf("%s: ascending scan[%d] = %d", when, i, asc[i])
		}
		if desc[i] != n-1-i {
			t.Fatalf("%s: descending scan[%d] = %d", when, i, desc[i])
		}
	}
}

// --- Category: value-header races (core/put-race, core/deleted-bit) ---

// TestChaosPutRemoveRace parks a Put in the window after it has observed
// a live value and before it acts, lets a Remove delete that value, and
// releases the Put: it must take the "value was deleted concurrently"
// retry of Algorithm 2 and re-insert, never resurrecting the old value
// or losing its own.
func TestChaosPutRemoveRace(t *testing.T) {
	disarmOnExit(t)
	m := newTestMap(t, 16)
	k := ik(5)
	mustPut(t, m, k, []byte("old"))

	g := faultpoint.NewGate()
	defer g.Open()
	fpPutRace.Arm(g.Hook(1))

	done := make(chan error, 1)
	go func() {
		done <- m.Put(k, []byte("new"))
	}()
	if !g.WaitArrival(10 * time.Second) {
		t.Fatal("Put never reached the race window")
	}

	if ok, err := m.Remove(k); err != nil || !ok {
		t.Fatalf("Remove = (%v,%v); want (true,nil)", ok, err)
	}
	g.Open()
	if err := <-done; err != nil {
		t.Fatalf("Put: %v", err)
	}
	fpPutRace.Disarm()
	if fpPutRace.Hits() < 1 {
		t.Fatal("put-race window never hit: not load-bearing")
	}

	// The put linearizes after the remove: its value must be present.
	if got, ok := getString(t, m, k); !ok || got != "new" {
		t.Fatalf("Get = (%q,%v); want (new,true)", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d; want 1", m.Len())
	}
}

// TestChaosDeletedBitWindow parks a Remove in the window right after the
// value's deleted bit is set (data already privatized) and, while it is
// parked, runs the operations that race with that window under header
// reclamation: reads must see "absent"/ErrConcurrentModification, and an
// insert over the same entry — which Releases the old header and may
// recycle its slot — must not be corrupted when the remover resumes.
// This is the deterministic regression test for the valueRemove
// privatize-before-delete ordering.
func TestChaosDeletedBitWindow(t *testing.T) {
	disarmOnExit(t)
	m := New(&Options{ChunkCapacity: 16, Pool: testPool(t), ReclaimHeaders: true})
	defer m.Close()
	k := ik(3)
	mustPut(t, m, k, []byte("doomed"))
	h0, ok := m.Get(k)
	if !ok {
		t.Fatal("setup Get failed")
	}

	g := faultpoint.NewGate()
	defer g.Open()
	fpDeletedBit.Arm(g.Hook(1))

	done := make(chan bool, 1)
	go func() {
		ok, err := m.Remove(k)
		if err != nil {
			t.Errorf("Remove: %v", err)
		}
		done <- ok
	}()
	if !g.WaitArrival(10 * time.Second) {
		t.Fatal("Remove never reached the deleted-bit window")
	}

	// Mid-window: the handle is deleted for every observer.
	if _, ok := m.Get(k); ok {
		t.Fatal("Get found a value whose deleted bit is set")
	}
	if _, err := m.CopyValue(h0, nil); !errors.Is(err, ErrConcurrentModification) {
		t.Fatalf("CopyValue on deleted handle: err = %v; want ErrConcurrentModification", err)
	}
	// Insert over the deleted entry: releases the old header. Then churn
	// more inserts so the recycled slot is reallocated while the remover
	// is still parked — the scenario that corrupted state before the
	// privatize-before-delete fix.
	if err := m.Put(k, []byte("phoenix")); err != nil {
		t.Fatalf("Put over deleted value: %v", err)
	}
	for i := 100; i < 108; i++ {
		if _, err := m.PutIfAbsent(ik(i), []byte("filler")); err != nil {
			t.Fatalf("filler insert: %v", err)
		}
	}

	g.Open()
	if removed := <-done; !removed {
		t.Fatal("Remove reported false after setting the deleted bit")
	}
	fpDeletedBit.Disarm()
	if fpDeletedBit.Hits() < 1 {
		t.Fatal("deleted-bit window never hit: not load-bearing")
	}

	// Nothing the resumed remover did may have clobbered live state.
	if got, ok := getString(t, m, k); !ok || got != "phoenix" {
		t.Fatalf("Get = (%q,%v); want (phoenix,true)", got, ok)
	}
	for i := 100; i < 108; i++ {
		if got, ok := getString(t, m, ik(i)); !ok || got != "filler" {
			t.Fatalf("filler key %d = (%q,%v); want (filler,true)", i, got, ok)
		}
	}
}

// TestChaosHeaderLockContention stretches every value write-lock hold
// (valuePut/valueCompute) while readers and writers hammer one key: the
// header spinlock must serialize them without lost updates.
func TestChaosHeaderLockContention(t *testing.T) {
	disarmOnExit(t)
	m := newTestMap(t, 64)
	k := ik(9)
	var buf [8]byte
	mustPut(t, m, k, buf[:])

	fpHeaderLock.Arm(faultpoint.Hook{Decide: func(hit int64) bool {
		if hit%3 == 0 {
			runtime.Gosched() // widen the critical section
		}
		return false
	}})

	const goroutines = 4
	const opsEach = 300
	var wg sync.WaitGroup
	var applied atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				ok, err := m.ComputeIfPresent(k, func(w *WBuffer) error {
					b := w.Bytes()
					binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+1)
					return nil
				})
				if err != nil {
					t.Errorf("compute: %v", err)
					return
				}
				if ok {
					applied.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fpHeaderLock.Disarm()
	if fpHeaderLock.Hits() == 0 {
		t.Fatal("header-lock point never hit")
	}
	h, ok := m.Get(k)
	if !ok {
		t.Fatal("key vanished")
	}
	b, err := m.CopyValue(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(b)); got != applied.Load() {
		t.Fatalf("LOST UPDATE: counter = %d, applied computes = %d", got, applied.Load())
	}
}

// --- The storm: everything at once ---

// TestChaosMixedStorm runs the full mixed workload — put, putIfAbsent,
// remove, get, compute, ascending and descending scans — across
// thousands of keys with every fault category firing (seeded), then
// validates the survivor invariants:
//
//   - no lost updates: counter cells mutated only by atomic computes sum
//     to exactly the number of successful computes;
//   - no resurrected deletes: tombstone keys removed before the storm and
//     never reinserted stay invisible to every scan and lookup;
//   - consistent scan frontier: resident keys (never removed) are seen by
//     every concurrent scan exactly once, in strict key order.
func TestChaosMixedStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short mode")
	}
	disarmOnExit(t)
	const (
		keySpace    = 4096
		counterBase = 1 << 20
		counters    = 8
		workers     = 6
		opsPerW     = 3000
	)
	m := New(&Options{ChunkCapacity: 64, Pool: testPool(t), ReclaimHeaders: true})
	defer m.Close()

	// Seed: residents (k%8==0) stay forever; tombstones (k%8==1) are
	// inserted then removed and must never come back; counters hold
	// 8-byte big-endian values mutated only via compute.
	residents := 0
	for k := 0; k < keySpace; k++ {
		switch k % 8 {
		case 0:
			mustPut(t, m, ik(k), []byte(fmt.Sprintf("r-%d", k)))
			residents++
		case 1:
			mustPut(t, m, ik(k), []byte("tomb"))
			if ok, err := m.Remove(ik(k)); err != nil || !ok {
				t.Fatalf("tombstone remove(%d) = (%v,%v)", k, ok, err)
			}
		}
	}
	for c := 0; c < counters; c++ {
		mustPut(t, m, ik(counterBase+c), make([]byte, 8))
	}

	// Arm the world. Branch faults fire with seeded probability; pause
	// points yield to shake up scheduling.
	gosched := func(every int64) faultpoint.Hook {
		return faultpoint.Hook{Decide: func(hit int64) bool {
			if hit%every == 0 {
				runtime.Gosched()
			}
			return false
		}}
	}
	arena.FpAllocFail.Arm(faultpoint.WithProb(0.001, 101))
	arena.FpFreeListScan.Arm(gosched(13))
	chunk.FpLinkCAS.Arm(faultpoint.WithProb(0.01, 102))
	chunk.FpPublishFail.Arm(faultpoint.WithProb(0.01, 103))
	faultpoint.Arm("core/rebalance-freeze", gosched(2))
	faultpoint.Arm("core/rebalance-split", gosched(2))
	faultpoint.Arm("core/rebalance-index", gosched(2))
	fpHeaderLock.Arm(gosched(7))
	fpDeletedBit.Arm(gosched(5))
	fpPutRace.Arm(gosched(11))
	epoch.FpAdvance.Arm(gosched(3))
	epoch.FpDrain.Arm(gosched(2))

	var computeTotal atomic.Int64
	var injectedErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0x57032))
			for i := 0; i < opsPerW; i++ {
				k := int(rng.Uint64() % keySpace)
				switch rng.Uint64() % 12 {
				case 0, 1, 2: // put (residents only overwritten, tombstones shifted off)
					if k%8 == 1 {
						k++
					}
					v := fmt.Sprintf("v-%d-%d", k, i)
					if err := m.Put(ik(k), []byte(v)); err != nil {
						if !errors.Is(err, arena.ErrInjected) {
							t.Errorf("put: %v", err)
							return
						}
						injectedErrs.Add(1)
					}
				case 3: // putIfAbsent on churn keys
					if k%8 < 2 {
						k += 2
					}
					if _, err := m.PutIfAbsent(ik(k), []byte("pia")); err != nil {
						if !errors.Is(err, arena.ErrInjected) {
							t.Errorf("putIfAbsent: %v", err)
							return
						}
						injectedErrs.Add(1)
					}
				case 4, 5: // remove churn keys (never residents or tombstones)
					if k%8 < 2 {
						k += 2
					}
					if _, err := m.Remove(ik(k)); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				case 6, 7: // atomic counter bump (fixed size: never allocates)
					c := counterBase + int(rng.Uint64()%counters)
					ok, err := m.ComputeIfPresent(ik(c), func(wb *WBuffer) error {
						b := wb.Bytes()
						binary.BigEndian.PutUint64(b, binary.BigEndian.Uint64(b)+1)
						return nil
					})
					if err != nil {
						t.Errorf("compute: %v", err)
						return
					}
					if !ok {
						t.Errorf("LOST COUNTER: %d vanished", c)
						return
					}
					computeTotal.Add(1)
				case 8: // ascending frontier validation
					if !validateFrontier(t, m, keySpace, residents, false) {
						return
					}
				case 9: // descending frontier validation
					if !validateFrontier(t, m, keySpace, residents, true) {
						return
					}
				default: // get
					if h, ok := m.Get(ik(k)); ok {
						if _, err := m.CopyValue(h, nil); err != nil &&
							!errors.Is(err, ErrConcurrentModification) {
							t.Errorf("get read: %v", err)
							return
						}
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	faultpoint.DisarmAll()
	if t.Failed() {
		return
	}

	// Load-bearing check: the branch faults must actually have fired.
	for _, name := range []string{"arena/alloc-fail", "chunk/link-cas", "chunk/publish-fail"} {
		p, _ := faultpoint.Lookup(name)
		if p.Fires() == 0 {
			t.Errorf("%s never fired during the storm", name)
		}
	}

	// Quiescent validation.
	if !validateFrontier(t, m, keySpace, residents, false) ||
		!validateFrontier(t, m, keySpace, residents, true) {
		t.Fatal("final frontier validation failed")
	}
	var sum int64
	for c := 0; c < counters; c++ {
		h, ok := m.Get(ik(counterBase + c))
		if !ok {
			t.Fatalf("counter %d missing at shutdown", c)
		}
		b, err := m.CopyValue(h, nil)
		if err != nil {
			t.Fatalf("counter read: %v", err)
		}
		sum += int64(binary.BigEndian.Uint64(b))
	}
	if sum != computeTotal.Load() {
		t.Fatalf("LOST UPDATES: counters sum to %d; %d computes succeeded",
			sum, computeTotal.Load())
	}
	cs := faultpoint.Counters()
	t.Logf("storm: %d computes, %d injected alloc errors; fires: link-cas=%d publish=%d alloc=%d",
		computeTotal.Load(), injectedErrs.Load(),
		cs["chunk/link-cas"].Fires, cs["chunk/publish-fail"].Fires, cs["arena/alloc-fail"].Fires)
}

// validateFrontier runs one full scan in the given direction and checks
// the storm's stable invariants: strict ordering, each resident key seen
// exactly once, tombstone keys never seen. Reports false (after flagging
// the error on t) on violation.
func validateFrontier(t *testing.T, m *Map, keySpace, residents int, descending bool) bool {
	t.Helper()
	prev := -1
	seenResidents := 0
	ok := true
	check := func(kr uint64, h ValueHandle) bool {
		k := kint(m, kr)
		if prev >= 0 {
			if !descending && k <= prev {
				t.Errorf("ORDER VIOLATION: %d after %d (ascending)", k, prev)
				ok = false
				return false
			}
			if descending && k >= prev {
				t.Errorf("ORDER VIOLATION: %d after %d (descending)", k, prev)
				ok = false
				return false
			}
		}
		prev = k
		if k < keySpace {
			switch k % 8 {
			case 0:
				seenResidents++
			case 1:
				t.Errorf("RESURRECTED DELETE: tombstone key %d visible", k)
				ok = false
				return false
			}
		}
		return true
	}
	if descending {
		m.Descend(nil, nil, check)
	} else {
		m.Ascend(nil, nil, check)
	}
	if ok && seenResidents != residents {
		t.Errorf("FRONTIER VIOLATION: saw %d of %d residents (%s)",
			seenResidents, residents, map[bool]string{true: "desc", false: "asc"}[descending])
		ok = false
	}
	return ok
}

// --- Category: epoch-reclamation windows (epoch/advance, epoch/drain) ---

// TestChaosEpochWindows jitters the scheduler inside the epoch advance
// (slot scan complete, global CAS pending) and inside the limbo drain
// (bucket privatized, frees pending) while a churn-plus-scan storm runs
// with full reclamation (keys by default, headers opted in). Scans that
// overlap stretched grace periods must still see a consistent frontier,
// and after quiescing the limbo must drain with zero retained key space.
func TestChaosEpochWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short mode")
	}
	disarmOnExit(t)
	m := New(&Options{ChunkCapacity: 32, Pool: testPool(t), ReclaimHeaders: true})
	defer m.Close()

	const keySpace = 2048
	residents := 0
	for k := 0; k < keySpace; k += 8 {
		mustPut(t, m, ik(k), []byte("resident"))
		residents++
	}

	gosched := func(every int64) faultpoint.Hook {
		return faultpoint.Hook{Decide: func(hit int64) bool {
			if hit%every == 0 {
				runtime.Gosched()
			}
			return false
		}}
	}
	epoch.FpAdvance.Arm(gosched(1))
	epoch.FpDrain.Arm(gosched(1))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xe90c4))
			for i := 0; i < 4000; i++ {
				k := int(rng.Uint64() % keySpace)
				if k%8 == 0 {
					k++ // residents stay put
				}
				switch rng.Uint64() % 4 {
				case 0, 1:
					if err := m.Put(ik(k), []byte("churn")); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 2:
					if _, err := m.Remove(ik(k)); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				default:
					dir := rng.Uint64()%2 == 0
					prev := -1
					seen := 0
					check := func(kr uint64, h ValueHandle) bool {
						kk := kint(m, kr)
						if prev >= 0 && ((dir && kk >= prev) || (!dir && kk <= prev)) {
							t.Errorf("ORDER VIOLATION: %d after %d", kk, prev)
							return false
						}
						prev = kk
						if kk%8 == 0 {
							seen++
						}
						return true
					}
					if dir {
						m.Descend(nil, nil, check)
					} else {
						m.Ascend(nil, nil, check)
					}
					if seen != residents {
						t.Errorf("FRONTIER VIOLATION: saw %d of %d residents mid-storm", seen, residents)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	faultpoint.DisarmAll()
	if t.Failed() {
		return
	}

	// The injection must have been load-bearing: both windows exercised.
	for _, fp := range []*faultpoint.Point{epoch.FpAdvance, epoch.FpDrain} {
		if fp.Hits() == 0 {
			t.Errorf("%s never hit during the storm", fp.Name())
		}
	}

	// Remove the churn, quiesce, and require full reclamation: the limbo
	// drains and no dead key space is retained.
	for k := 0; k < keySpace; k++ {
		if k%8 == 0 {
			continue
		}
		if _, err := m.Remove(ik(k)); err != nil {
			t.Fatalf("drain remove: %v", err)
		}
	}
	if !m.QuiesceReclaim() {
		t.Fatal("limbo failed to drain with no readers pinned")
	}
	rs := m.ReclaimStats()
	if rs.LimboItems != 0 || rs.LimboBytes != 0 {
		t.Fatalf("limbo not empty after quiesce: %+v", rs)
	}
	if leak := m.KeyLeakBytes(); leak != 0 {
		t.Fatalf("KeyLeakBytes = %d under default reclamation", leak)
	}
}
