package core

import (
	"oakmap/internal/chunk"
	"oakmap/internal/faultpoint"
	"oakmap/internal/telemetry"
)

// fpPutRace is hit after doPut observes a live value and before it acts
// on it (no-op unless a test arms it): a pausing hook holds the put in
// the window where a concurrent remove can set the deleted bit, forcing
// the "value was deleted concurrently: retry" path of Algorithm 2.
var fpPutRace = faultpoint.New("core/put-race")

// Get implements Algorithm 1: locate the chunk, look the key up, and
// return the value's handle if a non-deleted value is present. The
// caller turns the handle into a read-only view (OakRBuffer). The
// lookup runs under an epoch pin: the binary search and list walk
// dereference off-heap key bytes that a concurrent rebalance may have
// retired.
func (m *Map) Get(key []byte) (ValueHandle, bool) {
	tk := m.tel.Op(telemetry.OpGet)
	defer tk.Done()
	g := m.reclaim.Pin()
	defer g.Unpin()
	return m.getPinned(key)
}

// getPinned is Get's body for internal callers that already hold an
// epoch pin (Floor), so each public entry point pins exactly once.
func (m *Map) getPinned(key []byte) (ValueHandle, bool) {
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	if ei < 0 {
		return 0, false
	}
	h := ValueHandle(c.ValHandle(ei))
	if h == 0 || m.IsDeleted(h) {
		return 0, false
	}
	// MVCC slow path: a batch-flagged version word means presence is
	// decided by the owning batch's state (pre-state before commit,
	// post-state after), keeping ApplyBatch all-or-nothing for readers.
	if v := m.headers.LoadVersion(uint64(h)); v&verFlagMask != 0 && !m.pendingPresent(h, v) {
		return 0, false
	}
	return h, true
}

// opKind distinguishes the three insertion operations sharing doPut
// (Algorithm 2).
type opKind int

const (
	opPut opKind = iota
	opPutIfAbsent
	opPutIfAbsentComputeIfPresent
)

// Put maps key to val unconditionally (ZC put: no old value returned).
func (m *Map) Put(key, val []byte) error {
	_, err := m.doPut(key, BytesValue(val), nil, opPut)
	return err
}

// PutWriter is Put with the value serialized directly into off-heap
// memory by vw (§2.1).
func (m *Map) PutWriter(key []byte, vw ValueWriter) error {
	_, err := m.doPut(key, vw, nil, opPut)
	return err
}

// PutIfAbsent maps key to val iff key is absent; reports whether it did.
func (m *Map) PutIfAbsent(key, val []byte) (bool, error) {
	return m.doPut(key, BytesValue(val), nil, opPutIfAbsent)
}

// PutIfAbsentWriter is PutIfAbsent with direct off-heap serialization.
func (m *Map) PutIfAbsentWriter(key []byte, vw ValueWriter) (bool, error) {
	return m.doPut(key, vw, nil, opPutIfAbsent)
}

// PutIfAbsentComputeIfPresent inserts val if key is absent, otherwise
// atomically applies f to the present value in place (§2.2). The lambda
// runs exactly once per successful application.
func (m *Map) PutIfAbsentComputeIfPresent(key, val []byte, f func(*WBuffer) error) error {
	_, err := m.doPut(key, BytesValue(val), f, opPutIfAbsentComputeIfPresent)
	return err
}

// PutIfAbsentComputeIfPresentWriter is PutIfAbsentComputeIfPresent with
// direct off-heap serialization of the initial value.
func (m *Map) PutIfAbsentComputeIfPresentWriter(key []byte, vw ValueWriter, f func(*WBuffer) error) error {
	_, err := m.doPut(key, vw, f, opPutIfAbsentComputeIfPresent)
	return err
}

// doPut is Algorithm 2. It returns true when the operation took effect
// as an insertion or in-place update; PutIfAbsent returns false when the
// key was already present.
func (m *Map) doPut(key []byte, vw ValueWriter, f func(*WBuffer) error, op opKind) (bool, error) {
	if m.closed.Load() {
		return false, ErrClosed
	}
	top := telemetry.OpPut
	if op == opPutIfAbsentComputeIfPresent {
		top = telemetry.OpCompute
	}
	tk := m.tel.Op(top)
	defer tk.Done()
	var keyRef uint64 // allocated at most once across retries
	// If the key allocation ends up unused on any exit path (the entry
	// linking raced with another insert of the same key, or an error
	// occurred), reclaim it: a never-linked key has no readers.
	defer func() { m.releaseKeyRef(&keyRef) }()
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		out, err := m.putAttempt(key, vw, f, op, &keyRef)
		if err != nil {
			return false, err
		}
		// Rebalances run outside the attempt's epoch pin: they retire
		// keys in bulk, and a pinned caller would hold its own garbage.
		if out.full != nil {
			m.rebalance(out.full)
		}
		if out.done {
			if out.grew != nil {
				m.maybeRebalance(out.grew)
			}
			return out.ok, nil
		}
	}
}

// putOutcome carries one doPut attempt's result out of its epoch pin.
type putOutcome struct {
	done bool         // terminal: return ok to the caller
	ok   bool         // the operation took effect
	full *chunk.Chunk // chunk that must be rebalanced before retrying
	grew *chunk.Chunk // on success: chunk to test with maybeRebalance
}

// putAttempt runs one iteration of Algorithm 2 under an epoch pin. The
// pin covers every off-heap key dereference (chunk location, lookup,
// and list linking) so a concurrent rebalance cannot recycle key space
// mid-walk. Anything that triggers a rebalance is reported via the
// outcome and executed by the unpinned caller.
func (m *Map) putAttempt(key []byte, vw ValueWriter, f func(*WBuffer) error, op opKind, keyRef *uint64) (putOutcome, error) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	var h ValueHandle
	if ei >= 0 {
		h = ValueHandle(c.ValHandle(ei))
	}

	if h != 0 && !m.IsDeleted(h) {
		// Case 1: the key is present (lines 19–26).
		fpPutRace.Fire()
		switch op {
		case opPutIfAbsent:
			return putOutcome{done: true, ok: false}, nil
		case opPut:
			ok, err := m.valuePut(key, h, vw)
			if err != nil {
				return putOutcome{}, err
			}
			if ok {
				return putOutcome{done: true, ok: true}, nil
			}
		case opPutIfAbsentComputeIfPresent:
			ok, err := m.valueCompute(key, h, f)
			if err != nil {
				return putOutcome{}, err
			}
			if ok {
				return putOutcome{done: true, ok: true}, nil
			}
		}
		return putOutcome{}, nil // value was deleted concurrently: retry (line 25)
	}

	// Case 2: the key is absent (h = ⊥ or deleted). A removed entry
	// with the same key is reused (§4.3).
	if ei < 0 {
		if *keyRef == 0 {
			ref, err := m.alloc.Write(key)
			if err != nil {
				return putOutcome{}, err
			}
			*keyRef = uint64(ref)
		}
		nei, st := c.AllocateEntry(*keyRef)
		if st == chunk.Full {
			return putOutcome{full: c}, nil
		}
		if st != chunk.OK {
			return putOutcome{}, nil // frozen: retry on the replacement chunk
		}
		lei, st := c.PutIfAbsentInList(nei)
		if st == chunk.Frozen {
			return putOutcome{}, nil
		}
		ei = lei
		if st == chunk.OK {
			*keyRef = 0 // consumed by the linked entry
		}
		// On Exists, ei is the previously linked entry; our
		// allocated entry stays unlinked and the key allocation is
		// kept for a possible retry (freed on return below).
		h = ValueHandle(c.ValHandle(ei))
		if h != 0 && !m.IsDeleted(h) {
			// The racing insert beat us; loop back into case 1.
			return putOutcome{}, nil
		}
	}

	// Fresh inserts are stamped with the current version before the
	// entry CAS publishes them, so a snapshot taken before this write
	// (version ≤ S fails ⇒ resolves older ⇒ absent) never sees it.
	newH, err := m.allocValue(vw, m.mvcc.clock.Load())
	if err != nil {
		return putOutcome{}, err
	}
	if !c.Publish() {
		m.discardValue(newH)
		return putOutcome{}, nil
	}
	ok := c.CASValHandle(ei, uint64(h), uint64(newH))
	c.Unpublish()
	if !ok {
		// A concurrent operation changed the value reference; we
		// cannot linearize before it (see §4.3), so retry.
		m.discardValue(newH)
		return putOutcome{}, nil
	}
	if h != 0 {
		// The deleted predecessor is no longer referenced by the
		// entry; its header slot is retired (a pinned reader may
		// still be validating the stale handle).
		m.retireHeader(h)
	}
	m.size.Add(1)
	c.IncLive()
	return putOutcome{done: true, ok: true, grew: c}, nil
}

// releaseKeyRef frees a key allocation that ended up unused (the entry
// linking raced with another insert of the same key).
func (m *Map) releaseKeyRef(keyRef *uint64) {
	if *keyRef != 0 {
		// The entry that holds this keyRef is allocated but was never
		// linked, so no reader can reference the key: freeing is safe.
		m.freeKey(*keyRef)
		*keyRef = 0
	}
}

// discardValue reclaims a value that was never published: its data
// space, and (under the reclaiming policy) its header slot. The nil key
// marks the span never-visible, so it is retired rather than retained.
func (m *Map) discardValue(h ValueHandle) {
	m.valueRemove(nil, h)
	m.headers.Release(uint64(h))
}

// ComputeIfPresent atomically applies f to the value mapped to key, in
// place. Returns false if the key is absent (Algorithm 3).
func (m *Map) ComputeIfPresent(key []byte, f func(*WBuffer) error) (bool, error) {
	return m.doIfPresent(key, f, opCompute)
}

// Remove deletes the mapping for key, reporting whether a mapping was
// removed (ZC remove: the old value is not returned).
func (m *Map) Remove(key []byte) (bool, error) {
	return m.doIfPresent(key, nil, opRemove)
}

type nonInsertOp int

const (
	opCompute nonInsertOp = iota
	opRemove
)

// doIfPresent is Algorithm 3.
func (m *Map) doIfPresent(key []byte, f func(*WBuffer) error, op nonInsertOp) (bool, error) {
	if m.closed.Load() {
		return false, ErrClosed
	}
	top := telemetry.OpRemove
	if op == opCompute {
		top = telemetry.OpCompute
	}
	tk := m.tel.Op(top)
	defer tk.Done()
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		out, err := m.ifPresentAttempt(key, f, op)
		if err != nil {
			return false, err
		}
		if out.removedFrom != nil {
			// Post-linearization helpers run unpinned: finalizeRemove
			// re-pins per attempt, and maybeMerge may rebalance — which
			// retires keys the caller must not be holding alive.
			m.finalizeRemove(key, out.removedPrev)
			m.maybeMerge(out.removedFrom)
		}
		if out.done {
			return out.ok, nil
		}
	}
}

// ifPresentOutcome carries one doIfPresent attempt's result out of its
// epoch pin.
type ifPresentOutcome struct {
	done        bool
	ok          bool
	removedFrom *chunk.Chunk // a remove linearized in this chunk
	removedPrev ValueHandle  // the removed value's handle
}

// ifPresentAttempt runs one iteration of Algorithm 3 under an epoch
// pin (same rationale as putAttempt). The remove success path defers
// finalizeRemove/maybeMerge to the unpinned caller.
func (m *Map) ifPresentAttempt(key []byte, f func(*WBuffer) error, op nonInsertOp) (ifPresentOutcome, error) {
	g := m.reclaim.Pin()
	defer g.Unpin()
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	if ei < 0 {
		return ifPresentOutcome{done: true}, nil // key not found (line 44)
	}
	h := ValueHandle(c.ValHandle(ei))
	if h == 0 {
		return ifPresentOutcome{done: true}, nil // ⊥ value reference (line 44)
	}
	if !m.IsDeleted(h) {
		// Case 1: value exists and is not deleted.
		if op == opCompute {
			ok, err := m.valueCompute(key, h, f)
			if err != nil {
				return ifPresentOutcome{}, err
			}
			if ok {
				return ifPresentOutcome{done: true, ok: true}, nil // l.p.: successful v.compute (line 46)
			}
		} else {
			if m.valueRemove(key, h) {
				// l.p.: v.remove set the deleted bit (line 48).
				m.size.Add(-1)
				c.DecLive()
				return ifPresentOutcome{done: true, ok: true, removedFrom: c, removedPrev: h}, nil
			}
		}
	}
	// Case 2: the value is deleted — ensure the entry is removed
	// before reporting the key absent (lines 50–55).
	if !c.Publish() {
		return ifPresentOutcome{}, nil
	}
	ok := c.CASValHandle(ei, uint64(h), 0)
	c.Unpublish()
	if !ok {
		return ifPresentOutcome{}, nil
	}
	m.retireHeader(h)
	return ifPresentOutcome{done: true}, nil
}

// finalizeRemove clears the entry's value reference after a successful
// remove — an optimization that lets other operations and the rebalancer
// skip the deleted value (§4.4). prev guards against clobbering a
// concurrent re-insertion; handles are never reused, so the check is
// ABA-free. Each attempt pins the epoch around its chunk walk.
func (m *Map) finalizeRemove(key []byte, prev ValueHandle) {
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		if m.finalizeRemoveAttempt(key, prev) {
			return
		}
	}
}

func (m *Map) finalizeRemoveAttempt(key []byte, prev ValueHandle) bool {
	g := m.reclaim.Pin()
	defer g.Unpin()
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	if ei < 0 {
		return true
	}
	if ValueHandle(c.ValHandle(ei)) != prev {
		return true // key removed or replaced (line 65)
	}
	if !c.Publish() {
		return false
	}
	if c.CASValHandle(ei, uint64(prev), 0) {
		m.retireHeader(prev)
	}
	c.Unpublish()
	return true // CAS failure means someone else advanced the entry
}
