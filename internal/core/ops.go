package core

import (
	"oakmap/internal/chunk"
	"oakmap/internal/faultpoint"
)

// fpPutRace is hit after doPut observes a live value and before it acts
// on it (no-op unless a test arms it): a pausing hook holds the put in
// the window where a concurrent remove can set the deleted bit, forcing
// the "value was deleted concurrently: retry" path of Algorithm 2.
var fpPutRace = faultpoint.New("core/put-race")

// Get implements Algorithm 1: locate the chunk, look the key up, and
// return the value's handle if a non-deleted value is present. The
// caller turns the handle into a read-only view (OakRBuffer).
func (m *Map) Get(key []byte) (ValueHandle, bool) {
	c := m.locateChunk(key)
	ei := c.LookUp(key)
	if ei < 0 {
		return 0, false
	}
	h := ValueHandle(c.ValHandle(ei))
	if h == 0 || m.IsDeleted(h) {
		return 0, false
	}
	return h, true
}

// opKind distinguishes the three insertion operations sharing doPut
// (Algorithm 2).
type opKind int

const (
	opPut opKind = iota
	opPutIfAbsent
	opPutIfAbsentComputeIfPresent
)

// Put maps key to val unconditionally (ZC put: no old value returned).
func (m *Map) Put(key, val []byte) error {
	_, err := m.doPut(key, BytesValue(val), nil, opPut)
	return err
}

// PutWriter is Put with the value serialized directly into off-heap
// memory by vw (§2.1).
func (m *Map) PutWriter(key []byte, vw ValueWriter) error {
	_, err := m.doPut(key, vw, nil, opPut)
	return err
}

// PutIfAbsent maps key to val iff key is absent; reports whether it did.
func (m *Map) PutIfAbsent(key, val []byte) (bool, error) {
	return m.doPut(key, BytesValue(val), nil, opPutIfAbsent)
}

// PutIfAbsentWriter is PutIfAbsent with direct off-heap serialization.
func (m *Map) PutIfAbsentWriter(key []byte, vw ValueWriter) (bool, error) {
	return m.doPut(key, vw, nil, opPutIfAbsent)
}

// PutIfAbsentComputeIfPresent inserts val if key is absent, otherwise
// atomically applies f to the present value in place (§2.2). The lambda
// runs exactly once per successful application.
func (m *Map) PutIfAbsentComputeIfPresent(key, val []byte, f func(*WBuffer) error) error {
	_, err := m.doPut(key, BytesValue(val), f, opPutIfAbsentComputeIfPresent)
	return err
}

// PutIfAbsentComputeIfPresentWriter is PutIfAbsentComputeIfPresent with
// direct off-heap serialization of the initial value.
func (m *Map) PutIfAbsentComputeIfPresentWriter(key []byte, vw ValueWriter, f func(*WBuffer) error) error {
	_, err := m.doPut(key, vw, f, opPutIfAbsentComputeIfPresent)
	return err
}

// doPut is Algorithm 2. It returns true when the operation took effect
// as an insertion or in-place update; PutIfAbsent returns false when the
// key was already present.
func (m *Map) doPut(key []byte, vw ValueWriter, f func(*WBuffer) error, op opKind) (bool, error) {
	if m.closed.Load() {
		return false, ErrClosed
	}
	var keyRef uint64 // allocated at most once across retries
	// If the key allocation ends up unused on any exit path (the entry
	// linking raced with another insert of the same key, or an error
	// occurred), reclaim it: a never-linked key has no readers.
	defer func() { m.releaseKeyRef(&keyRef) }()
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		c := m.locateChunk(key)
		ei := c.LookUp(key)
		var h ValueHandle
		if ei >= 0 {
			h = ValueHandle(c.ValHandle(ei))
		}

		if h != 0 && !m.IsDeleted(h) {
			// Case 1: the key is present (lines 19–26).
			fpPutRace.Fire()
			switch op {
			case opPutIfAbsent:
				return false, nil
			case opPut:
				ok, err := m.valuePut(h, vw)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			case opPutIfAbsentComputeIfPresent:
				ok, err := m.valueCompute(h, f)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			continue // value was deleted concurrently: retry (line 25)
		}

		// Case 2: the key is absent (h = ⊥ or deleted). A removed entry
		// with the same key is reused (§4.3).
		if ei < 0 {
			if keyRef == 0 {
				ref, err := m.alloc.Write(key)
				if err != nil {
					return false, err
				}
				keyRef = uint64(ref)
			}
			nei, st := c.AllocateEntry(keyRef)
			if st == chunk.Full {
				m.rebalance(c)
				continue
			}
			if st != chunk.OK {
				continue // frozen: retry on the replacement chunk
			}
			lei, st := c.PutIfAbsentInList(nei)
			if st == chunk.Frozen {
				continue
			}
			ei = lei
			if st == chunk.OK {
				keyRef = 0 // consumed by the linked entry
			}
			// On Exists, ei is the previously linked entry; our
			// allocated entry stays unlinked and the key allocation is
			// kept for a possible retry (freed on return below).
			h = ValueHandle(c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				// The racing insert beat us; loop back into case 1.
				continue
			}
		}

		newH, err := m.allocValue(vw)
		if err != nil {
			return false, err
		}
		if !c.Publish() {
			m.discardValue(newH)
			continue
		}
		ok := c.CASValHandle(ei, uint64(h), uint64(newH))
		c.Unpublish()
		if !ok {
			// A concurrent operation changed the value reference; we
			// cannot linearize before it (see §4.3), so retry.
			m.discardValue(newH)
			continue
		}
		if h != 0 {
			// The deleted predecessor is no longer referenced by the
			// entry; its header slot can be recycled.
			m.headers.Release(uint64(h))
		}
		m.size.Add(1)
		c.IncLive()
		m.maybeRebalance(c)
		return true, nil
	}
}

// releaseKeyRef frees a key allocation that ended up unused (the entry
// linking raced with another insert of the same key).
func (m *Map) releaseKeyRef(keyRef *uint64) {
	if *keyRef != 0 {
		// The entry that holds this keyRef is allocated but was never
		// linked, so no reader can reference the key: freeing is safe.
		m.freeKey(*keyRef)
		*keyRef = 0
	}
}

// discardValue reclaims a value that was never published: its data
// space, and (under the reclaiming policy) its header slot.
func (m *Map) discardValue(h ValueHandle) {
	m.valueRemove(h)
	m.headers.Release(uint64(h))
}

// ComputeIfPresent atomically applies f to the value mapped to key, in
// place. Returns false if the key is absent (Algorithm 3).
func (m *Map) ComputeIfPresent(key []byte, f func(*WBuffer) error) (bool, error) {
	return m.doIfPresent(key, f, opCompute)
}

// Remove deletes the mapping for key, reporting whether a mapping was
// removed (ZC remove: the old value is not returned).
func (m *Map) Remove(key []byte) (bool, error) {
	return m.doIfPresent(key, nil, opRemove)
}

type nonInsertOp int

const (
	opCompute nonInsertOp = iota
	opRemove
)

// doIfPresent is Algorithm 3.
func (m *Map) doIfPresent(key []byte, f func(*WBuffer) error, op nonInsertOp) (bool, error) {
	if m.closed.Load() {
		return false, ErrClosed
	}
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		c := m.locateChunk(key)
		ei := c.LookUp(key)
		if ei < 0 {
			return false, nil // key not found (line 44)
		}
		h := ValueHandle(c.ValHandle(ei))
		if h == 0 {
			return false, nil // ⊥ value reference (line 44)
		}
		if !m.IsDeleted(h) {
			// Case 1: value exists and is not deleted.
			if op == opCompute {
				ok, err := m.valueCompute(h, f)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil // l.p.: successful v.compute (line 46)
				}
			} else {
				if m.valueRemove(h) {
					// l.p.: v.remove set the deleted bit (line 48).
					m.size.Add(-1)
					c.DecLive()
					m.finalizeRemove(key, h)
					m.maybeMerge(c)
					return true, nil
				}
			}
		}
		// Case 2: the value is deleted — ensure the entry is removed
		// before reporting the key absent (lines 50–55).
		if !c.Publish() {
			continue
		}
		ok := c.CASValHandle(ei, uint64(h), 0)
		c.Unpublish()
		if !ok {
			continue
		}
		m.headers.Release(uint64(h))
		return false, nil
	}
}

// finalizeRemove clears the entry's value reference after a successful
// remove — an optimization that lets other operations and the rebalancer
// skip the deleted value (§4.4). prev guards against clobbering a
// concurrent re-insertion; handles are never reused, so the check is
// ABA-free.
func (m *Map) finalizeRemove(key []byte, prev ValueHandle) {
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		c := m.locateChunk(key)
		ei := c.LookUp(key)
		if ei < 0 {
			return
		}
		if ValueHandle(c.ValHandle(ei)) != prev {
			return // key removed or replaced (line 65)
		}
		if !c.Publish() {
			continue
		}
		if c.CASValHandle(ei, uint64(prev), 0) {
			m.headers.Release(uint64(prev))
		}
		c.Unpublish()
		return // CAS failure means someone else advanced the entry
	}
}
