package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"oakmap/internal/lincheck"
)

// This file records concurrent histories against the real core map and
// checks them with the Wing & Gong-style searcher in internal/lincheck
// (extracted from here so the sharded front-end can reuse it — the
// engine's own self-tests live with the package). The histories target
// the paper's central correctness claim (§4.5): the point operations
// are linearizable.

// runRecordedOp executes one operation against m and returns its record
// with invocation/response timestamps from clock. Operation errors are
// reported through t (none of the recorded kinds should fail unless an
// error-injecting fault point is armed, which recorded histories avoid).
func runRecordedOp(t testing.TB, m *Map, clock *atomic.Uint64, kind lincheck.Kind, key []byte, arg string) lincheck.Op {
	r := lincheck.Op{Key: string(key), Kind: kind, Arg: arg}
	r.Inv = clock.Add(1)
	switch kind {
	case lincheck.Put:
		if err := m.Put(key, []byte(arg)); err != nil {
			t.Errorf("put: %v", err)
		}
	case lincheck.PutIfAbsent:
		ok, err := m.PutIfAbsent(key, []byte(arg))
		if err != nil {
			t.Errorf("putIfAbsent: %v", err)
		}
		r.RetBool = ok
	case lincheck.Remove:
		ok, err := m.Remove(key)
		if err != nil {
			t.Errorf("remove: %v", err)
		}
		r.RetBool = ok
	case lincheck.Get:
		if hd, ok := m.Get(key); ok {
			b, err := m.CopyValue(hd, nil)
			if err == nil {
				r.RetBool = true
				r.RetVal = string(b)
			}
			// A read racing a remove between Get and CopyValue observes
			// "absent": its linearization point is the failed read lock,
			// still within [Inv, Ret].
		}
	case lincheck.Upsert:
		err := m.PutIfAbsentComputeIfPresent(key, []byte(arg),
			func(w *WBuffer) error {
				// Append "|arg", resizing in place — the compute runs
				// atomically exactly once.
				cur := append([]byte(nil), w.Bytes()...)
				return w.Set(append(append(cur, '|'), arg...))
			})
		if err != nil {
			t.Errorf("upsert: %v", err)
		}
	case lincheck.Compute:
		ok, err := m.ComputeIfPresent(key, func(w *WBuffer) error {
			cur := append([]byte(nil), w.Bytes()...)
			return w.Set(append(append(cur, '#'), arg...))
		})
		if err != nil {
			t.Errorf("compute: %v", err)
		}
		r.RetBool = ok
	}
	r.Ret = clock.Add(1)
	return r
}

// TestSingleKeyLinearizability runs many small concurrent histories on
// one key of a real map (tiny chunks, so the key's chunk rebalances under
// the churn of neighbouring keys) and verifies each is linearizable.
func TestSingleKeyLinearizability(t *testing.T) {
	const histories = 150
	const threads = 4
	const opsPerThread = 3
	key := ik(42)

	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t)})
		// Neighbour churn so the target key's chunk splits/merges. The
		// target key itself starts absent (the checker's initial state).
		for i := 0; i < 64; i++ {
			if i == 42 {
				continue
			}
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		recs := make([][]lincheck.Op, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 77))
				for i := 0; i < opsPerThread; i++ {
					kind := lincheck.Kind(rng.Uint64() % 5) // put..upsert
					arg := fmt.Sprintf("g%d-%d", g, i)
					recs[g] = append(recs[g], runRecordedOp(t, m, &clock, kind, key, arg))
				}
			}(g)
		}
		wg.Wait()
		var all []lincheck.Op
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("history %d is not linearizable", h)
		}
		m.Close()
	}
}

// TestMultiKeyLinearizability exercises the multi-key checker: many
// small concurrent histories over a handful of keys, with every modeled
// operation kind including ComputeIfPresent, on a map with tiny chunks
// so the keys' chunks split and merge under neighbour churn.
func TestMultiKeyLinearizability(t *testing.T) {
	const histories = 120
	const threads = 4
	const opsPerThread = 4
	keys := [][]byte{ik(10), ik(42), ik(55)}

	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t)})
		// Neighbour churn so the watched keys' chunks rebalance; watched
		// keys start absent (the checker's initial state).
		for i := 0; i < 64; i++ {
			if i == 10 || i == 42 || i == 55 {
				continue
			}
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		recs := make([][]lincheck.Op, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 99))
				for i := 0; i < opsPerThread; i++ {
					kind := lincheck.Kind(rng.Uint64() % 6)
					key := keys[rng.Uint64()%uint64(len(keys))]
					arg := fmt.Sprintf("g%d-%d", g, i)
					recs[g] = append(recs[g], runRecordedOp(t, m, &clock, kind, key, arg))
				}
			}(g)
		}
		wg.Wait()
		var all []lincheck.Op
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("multi-key history %d is not linearizable", h)
		}
		m.Close()
	}
}

// TestSingleKeyLinearizabilityWithReclaim repeats the check with the
// epoch header-reclamation extension enabled: handle recycling must not
// break linearizability (stale handles must read as deleted, never as
// another incarnation).
func TestSingleKeyLinearizabilityWithReclaim(t *testing.T) {
	const histories = 100
	const threads = 4
	key := ik(7)
	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t), ReclaimHeaders: true})
		var clock atomic.Uint64
		var mu sync.Mutex
		var all []lincheck.Op
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*31+g), 13))
				for i := 0; i < 3; i++ {
					// Bias toward remove/insert churn to force slot reuse.
					var kind lincheck.Kind
					switch rng.Uint64() % 5 {
					case 0, 1:
						kind = lincheck.PutIfAbsent
					case 2, 3:
						kind = lincheck.Remove
					default:
						kind = lincheck.Get
					}
					arg := fmt.Sprintf("g%d-%d", g, i)
					r := runRecordedOp(t, m, &clock, kind, key, arg)
					mu.Lock()
					all = append(all, r)
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if !lincheck.Linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("reclaim history %d is not linearizable", h)
		}
		m.Close()
	}
}
