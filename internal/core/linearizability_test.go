package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// This file checks the paper's central correctness claim (§4.5): the
// point operations are linearizable. We record concurrent histories of
// operations — invocation/response ordering via a global logical clock —
// and then search for a sequential witness (Wing & Gong style): a
// permutation of the operations that (a) respects real-time order and
// (b) is legal for a register with put / putIfAbsent / remove / get /
// compute / upsert semantics.
//
// Histories may span multiple keys. Linearizability is compositional
// (Herlihy & Wing's locality theorem): a history over a collection of
// independent objects is linearizable iff each object's subhistory is.
// Map keys are independent registers, so the checker partitions the
// history by key and runs the single-register search on each part —
// exact, and exponential only in the per-key operation count.

type opKindL int

const (
	lPut opKindL = iota
	lPutIfAbsent
	lRemove
	lGet
	lUpsert  // putIfAbsentComputeIfPresent: insert arg, or append "|"+arg
	lCompute // computeIfPresent: append "#"+arg if present
)

func (k opKindL) String() string {
	return [...]string{"put", "putIfAbsent", "remove", "get", "upsert", "compute"}[k]
}

type opRecord struct {
	key  string // subject key; histories are partitioned on it
	kind opKindL
	arg  string // value written (put/putIfAbsent) or appended (upsert/compute)
	// results
	retBool  bool   // putIfAbsent: inserted; remove: removed; get: found; compute: applied
	retVal   string // get: observed value
	inv, ret uint64 // logical timestamps
}

func (o opRecord) String() string {
	return fmt.Sprintf("%s[%x](%s)=(%v,%q)@[%d,%d]", o.kind, o.key, o.arg, o.retBool, o.retVal, o.inv, o.ret)
}

// regState applies op to a sequential register; returns the new value
// and whether the op's recorded results are legal from state v.
func regApply(v string, present bool, o opRecord) (string, bool, bool) {
	switch o.kind {
	case lPut:
		return o.arg, true, true
	case lPutIfAbsent:
		if present {
			return v, true, !o.retBool
		}
		return o.arg, true, o.retBool
	case lRemove:
		if present {
			return "", false, o.retBool
		}
		return "", false, !o.retBool
	case lGet:
		if present {
			return v, true, o.retBool && o.retVal == v
		}
		return v, false, !o.retBool
	case lUpsert:
		if present {
			return v + "|" + o.arg, true, true
		}
		return o.arg, true, true
	case lCompute:
		if present {
			return v + "#" + o.arg, true, o.retBool
		}
		return v, false, !o.retBool
	}
	return v, present, false
}

// linearizable checks a (possibly multi-key) history: it partitions by
// key and searches each per-key subhistory for a sequential witness.
func linearizable(ops []opRecord) bool {
	byKey := map[string][]opRecord{}
	for _, o := range ops {
		byKey[o.key] = append(byKey[o.key], o)
	}
	for _, sub := range byKey {
		if !linearizableKey(sub) {
			return false
		}
	}
	return true
}

// linearizableKey searches for a sequential witness with memoized DFS
// over (done-set bitmask, register value). Per-key history sizes stay
// ≤ 16 ops.
func linearizableKey(ops []opRecord) bool {
	n := len(ops)
	type memoKey struct {
		mask    int
		val     string
		present bool
	}
	seen := map[memoKey]bool{}
	var dfs func(mask int, val string, present bool) bool
	dfs = func(mask int, val string, present bool) bool {
		if mask == 1<<n-1 {
			return true
		}
		k := memoKey{mask, val, present}
		if seen[k] {
			return false
		}
		seen[k] = true
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			// Real-time constraint: i may be linearized now only if no
			// other undone op returned before i was invoked.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && mask&(1<<j) == 0 && ops[j].ret < ops[i].inv {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nv, np, legal := regApply(val, present, ops[i])
			if legal && dfs(mask|1<<i, nv, np) {
				return true
			}
		}
		return false
	}
	return dfs(0, "", false)
}

// TestLinearizabilityCheckerSelf sanity-checks the checker itself.
func TestLinearizabilityCheckerSelf(t *testing.T) {
	// Legal: put(a) then get=a, sequential.
	ok := linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 2},
		{kind: lGet, retBool: true, retVal: "a", inv: 3, ret: 4},
	})
	if !ok {
		t.Fatal("legal history rejected")
	}
	// Illegal: get observes a value never written.
	ok = linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 2},
		{kind: lGet, retBool: true, retVal: "b", inv: 3, ret: 4},
	})
	if ok {
		t.Fatal("illegal read accepted")
	}
	// Illegal: get misses after a completed put with no removes.
	ok = linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 2},
		{kind: lGet, retBool: false, inv: 3, ret: 4},
	})
	if ok {
		t.Fatal("lost update accepted")
	}
	// Illegal: two putIfAbsent both succeed with no remove between.
	ok = linearizable([]opRecord{
		{kind: lPutIfAbsent, arg: "a", retBool: true, inv: 1, ret: 2},
		{kind: lPutIfAbsent, arg: "b", retBool: true, inv: 3, ret: 4},
	})
	if ok {
		t.Fatal("double putIfAbsent accepted")
	}
	// Legal: overlapping put and get may order either way.
	ok = linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 5},
		{kind: lGet, retBool: false, inv: 2, ret: 3},
	})
	if !ok {
		t.Fatal("overlapping ops over-constrained")
	}
	// Legal: compute applies to the present value; get sees the result.
	ok = linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 2},
		{kind: lCompute, arg: "x", retBool: true, inv: 3, ret: 4},
		{kind: lGet, retBool: true, retVal: "a#x", inv: 5, ret: 6},
	})
	if !ok {
		t.Fatal("legal compute history rejected")
	}
	// Illegal: compute claims success on an absent key.
	ok = linearizable([]opRecord{
		{kind: lRemove, retBool: false, inv: 1, ret: 2},
		{kind: lCompute, arg: "x", retBool: true, inv: 3, ret: 4},
	})
	if ok {
		t.Fatal("compute on absent key accepted")
	}
	// Illegal: compute's effect lost (get sees pre-compute value after
	// a sequential successful compute).
	ok = linearizable([]opRecord{
		{kind: lPut, arg: "a", inv: 1, ret: 2},
		{kind: lCompute, arg: "x", retBool: true, inv: 3, ret: 4},
		{kind: lGet, retBool: true, retVal: "a", inv: 5, ret: 6},
	})
	if ok {
		t.Fatal("lost compute accepted")
	}
	// Multi-key: keys are independent — a put on k1 must not satisfy a
	// get on k2...
	ok = linearizable([]opRecord{
		{key: "k1", kind: lPut, arg: "a", inv: 1, ret: 2},
		{key: "k2", kind: lGet, retBool: true, retVal: "a", inv: 3, ret: 4},
	})
	if ok {
		t.Fatal("cross-key read accepted")
	}
	// ...and per-key legality composes.
	ok = linearizable([]opRecord{
		{key: "k1", kind: lPut, arg: "a", inv: 1, ret: 2},
		{key: "k2", kind: lPut, arg: "b", inv: 1, ret: 2},
		{key: "k2", kind: lGet, retBool: true, retVal: "b", inv: 3, ret: 4},
		{key: "k1", kind: lGet, retBool: true, retVal: "a", inv: 3, ret: 4},
	})
	if !ok {
		t.Fatal("legal multi-key history rejected")
	}
}

// TestSingleKeyLinearizability runs many small concurrent histories on
// one key of a real map (tiny chunks, so the key's chunk rebalances under
// the churn of neighbouring keys) and verifies each is linearizable.
func TestSingleKeyLinearizability(t *testing.T) {
	const histories = 150
	const threads = 4
	const opsPerThread = 3
	key := ik(42)

	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t)})
		// Neighbour churn so the target key's chunk splits/merges. The
		// target key itself starts absent (the checker's initial state).
		for i := 0; i < 64; i++ {
			if i == 42 {
				continue
			}
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		recs := make([][]opRecord, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 77))
				for i := 0; i < opsPerThread; i++ {
					var r opRecord
					r.kind = opKindL(rng.Uint64() % 5)
					r.arg = fmt.Sprintf("g%d-%d", g, i)
					r.inv = clock.Add(1)
					switch r.kind {
					case lPut:
						if err := m.Put(key, []byte(r.arg)); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					case lPutIfAbsent:
						ok, err := m.PutIfAbsent(key, []byte(r.arg))
						if err != nil {
							t.Errorf("putIfAbsent: %v", err)
							return
						}
						r.retBool = ok
					case lRemove:
						ok, err := m.Remove(key)
						if err != nil {
							t.Errorf("remove: %v", err)
							return
						}
						r.retBool = ok
					case lGet:
						if hd, ok := m.Get(key); ok {
							b, err := m.CopyValue(hd, nil)
							if err == nil {
								r.retBool = true
								r.retVal = string(b)
							}
							// A read that raced with a remove between
							// Get and CopyValue observes "absent": its
							// linearization point is the failed read
							// lock, still within [inv, ret].
						}
					case lUpsert:
						tag := r.arg
						err := m.PutIfAbsentComputeIfPresent(key, []byte(tag),
							func(w *WBuffer) error {
								// Append "|tag", resizing in place — the
								// compute runs atomically exactly once.
								cur := append([]byte(nil), w.Bytes()...)
								return w.Set(append(append(cur, '|'), tag...))
							})
						if err != nil {
							t.Errorf("upsert: %v", err)
							return
						}
					}
					r.ret = clock.Add(1)
					recs[g] = append(recs[g], r)
				}
			}(g)
		}
		wg.Wait()
		var all []opRecord
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("history %d is not linearizable", h)
		}
		m.Close()
	}
}

// runRecordedOp executes one operation against m and returns its record
// with invocation/response timestamps from clock. Operation errors are
// reported through t (none of the recorded kinds should fail unless an
// error-injecting fault point is armed, which recorded histories avoid).
func runRecordedOp(t testing.TB, m *Map, clock *atomic.Uint64, kind opKindL, key []byte, arg string) opRecord {
	r := opRecord{key: string(key), kind: kind, arg: arg}
	r.inv = clock.Add(1)
	switch kind {
	case lPut:
		if err := m.Put(key, []byte(arg)); err != nil {
			t.Errorf("put: %v", err)
		}
	case lPutIfAbsent:
		ok, err := m.PutIfAbsent(key, []byte(arg))
		if err != nil {
			t.Errorf("putIfAbsent: %v", err)
		}
		r.retBool = ok
	case lRemove:
		ok, err := m.Remove(key)
		if err != nil {
			t.Errorf("remove: %v", err)
		}
		r.retBool = ok
	case lGet:
		if hd, ok := m.Get(key); ok {
			b, err := m.CopyValue(hd, nil)
			if err == nil {
				r.retBool = true
				r.retVal = string(b)
			}
			// A read racing a remove between Get and CopyValue observes
			// "absent": its linearization point is the failed read lock,
			// still within [inv, ret].
		}
	case lUpsert:
		err := m.PutIfAbsentComputeIfPresent(key, []byte(arg),
			func(w *WBuffer) error {
				cur := append([]byte(nil), w.Bytes()...)
				return w.Set(append(append(cur, '|'), arg...))
			})
		if err != nil {
			t.Errorf("upsert: %v", err)
		}
	case lCompute:
		ok, err := m.ComputeIfPresent(key, func(w *WBuffer) error {
			cur := append([]byte(nil), w.Bytes()...)
			return w.Set(append(append(cur, '#'), arg...))
		})
		if err != nil {
			t.Errorf("compute: %v", err)
		}
		r.retBool = ok
	}
	r.ret = clock.Add(1)
	return r
}

// TestMultiKeyLinearizability exercises the generalized checker: many
// small concurrent histories over a handful of keys, with every modeled
// operation kind including ComputeIfPresent, on a map with tiny chunks
// so the keys' chunks split and merge under neighbour churn.
func TestMultiKeyLinearizability(t *testing.T) {
	const histories = 120
	const threads = 4
	const opsPerThread = 4
	keys := [][]byte{ik(10), ik(42), ik(55)}

	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t)})
		// Neighbour churn so the watched keys' chunks rebalance; watched
		// keys start absent (the checker's initial state).
		for i := 0; i < 64; i++ {
			if i == 10 || i == 42 || i == 55 {
				continue
			}
			m.Put(ik(i), iv(i))
		}
		var clock atomic.Uint64
		recs := make([][]opRecord, threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*threads+g), 99))
				for i := 0; i < opsPerThread; i++ {
					kind := opKindL(rng.Uint64() % 6)
					key := keys[rng.Uint64()%uint64(len(keys))]
					arg := fmt.Sprintf("g%d-%d", g, i)
					recs[g] = append(recs[g], runRecordedOp(t, m, &clock, kind, key, arg))
				}
			}(g)
		}
		wg.Wait()
		var all []opRecord
		for _, rs := range recs {
			all = append(all, rs...)
		}
		if !linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("multi-key history %d is not linearizable", h)
		}
		m.Close()
	}
}

// TestSingleKeyLinearizabilityWithReclaim repeats the check with the
// epoch header-reclamation extension enabled: handle recycling must not
// break linearizability (stale handles must read as deleted, never as
// another incarnation).
func TestSingleKeyLinearizabilityWithReclaim(t *testing.T) {
	const histories = 100
	const threads = 4
	key := ik(7)
	for h := 0; h < histories; h++ {
		m := New(&Options{ChunkCapacity: 16, Pool: testPool(t), ReclaimHeaders: true})
		var clock atomic.Uint64
		var mu sync.Mutex
		var all []opRecord
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(h*31+g), 13))
				for i := 0; i < 3; i++ {
					var r opRecord
					// Bias toward remove/insert churn to force slot reuse.
					switch rng.Uint64() % 5 {
					case 0, 1:
						r.kind = lPutIfAbsent
					case 2, 3:
						r.kind = lRemove
					default:
						r.kind = lGet
					}
					r.arg = fmt.Sprintf("g%d-%d", g, i)
					r.inv = clock.Add(1)
					switch r.kind {
					case lPutIfAbsent:
						ok, _ := m.PutIfAbsent(key, []byte(r.arg))
						r.retBool = ok
					case lRemove:
						ok, _ := m.Remove(key)
						r.retBool = ok
					case lGet:
						if hd, ok := m.Get(key); ok {
							b, err := m.CopyValue(hd, nil)
							if err == nil {
								r.retBool = true
								r.retVal = string(b)
							}
						}
					}
					r.ret = clock.Add(1)
					mu.Lock()
					all = append(all, r)
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if !linearizable(all) {
			for _, o := range all {
				t.Logf("  %v", o)
			}
			t.Fatalf("reclaim history %d is not linearizable", h)
		}
		m.Close()
	}
}
