package core

// Regression tests for the descending scan (§4.4): the per-bypass stack
// iterator walks a chunk whose sorted prefix is interleaved with
// unsorted, linked-in suffix entries, and the cross-chunk walk resumes
// through prevChunk. Neither had coverage under concurrent rebalances:
// a split replaces the chunk mid-scan, a merge can make prevChunk land
// on a chunk whose range was already visited. These tests force both.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oakmap/internal/faultpoint"
)

// insertInterleaved fills m with even keys 0..2n-2 in ascending order
// (building sorted prefixes via rebalances), then odd keys in descending
// order so they land in the unsorted suffixes as bypass entries — the
// layout the per-bypass stack exists for.
func insertInterleaved(t *testing.T, m *Map, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustPut(t, m, ik(2*i), iv(2*i))
	}
	for i := n - 1; i >= 0; i-- {
		mustPut(t, m, ik(2*i+1), iv(2*i+1))
	}
}

// TestDescendDuringRebalanceWindows parks a rebalancer inside each
// danger window and runs full and bounded descending scans over chunks
// with populated unsorted suffixes: the per-bypass stack must yield
// every key exactly once, in strictly descending order, from frozen and
// forwarded chunks alike.
func TestDescendDuringRebalanceWindows(t *testing.T) {
	const n = 48 // keys 0..95
	for _, window := range []string{
		"core/rebalance-freeze", "core/rebalance-split", "core/rebalance-index",
	} {
		t.Run(window, func(t *testing.T) {
			t.Cleanup(faultpoint.DisarmAll)
			m := newTestMap(t, 16)
			insertInterleaved(t, m, n)

			p, ok := faultpoint.Lookup(window)
			if !ok {
				t.Fatalf("unknown point %s", window)
			}
			g := faultpoint.NewGate()
			defer g.Open()
			p.Arm(g.Hook(1))

			done := make(chan struct{})
			go func() {
				defer close(done)
				m.rebalance(m.locateChunk(ik(n))) // a middle chunk
			}()
			if !g.WaitArrival(10 * time.Second) {
				t.Fatal("rebalancer never reached the window")
			}

			// Full descending scan mid-window.
			var keys []int
			m.Descend(nil, nil, func(kr uint64, h ValueHandle) bool {
				keys = append(keys, kint(m, kr))
				return true
			})
			if len(keys) != 2*n {
				t.Fatalf("mid-window descend saw %d keys; want %d", len(keys), 2*n)
			}
			for i, k := range keys {
				if k != 2*n-1-i {
					t.Fatalf("mid-window descend[%d] = %d; want %d", i, k, 2*n-1-i)
				}
			}
			// Bounded scan straddling the rebalanced chunk's range.
			var bounded []int
			m.Descend(ik(n-10), ik(n+10), func(kr uint64, h ValueHandle) bool {
				bounded = append(bounded, kint(m, kr))
				return true
			})
			if len(bounded) != 20 {
				t.Fatalf("bounded descend saw %d keys; want 20", len(bounded))
			}
			for i, k := range bounded {
				if k != n+9-i {
					t.Fatalf("bounded descend[%d] = %d; want %d", i, k, n+9-i)
				}
			}

			g.Open()
			<-done
			if p.Hits() < 1 {
				t.Fatalf("window %s never hit", window)
			}
		})
	}
}

// TestDescendDuringConcurrentSplits runs descending scanners against a
// mutator that keeps forcing splits and merges (insert waves into the
// unsorted suffixes, then mass removals) while a fixed resident key set
// stays put: every scan must report the residents exactly once, in
// strictly descending order, regardless of which chunks were split,
// merged, or forwarded underneath it.
func TestDescendDuringConcurrentSplits(t *testing.T) {
	const residents = 128 // keys 0,8,16,... stay for the whole test
	const scanners = 3
	m := newTestMap(t, 32)
	for i := 0; i < residents; i++ {
		mustPut(t, m, ik(i*8), iv(i*8))
	}

	var stop atomic.Bool
	var mutWG, scanWG sync.WaitGroup

	// Mutator: waves of churn inserts between the residents (odd offsets
	// land as bypass entries), then removals to trigger merges.
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for wave := 0; !stop.Load(); wave++ {
			for i := 0; i < residents; i++ {
				for off := 1; off < 8; off += 2 {
					if err := m.Put(ik(i*8+off), iv(wave)); err != nil {
						t.Errorf("churn put: %v", err)
						return
					}
				}
			}
			for i := 0; i < residents; i++ {
				for off := 1; off < 8; off += 2 {
					if _, err := m.Remove(ik(i*8 + off)); err != nil {
						t.Errorf("churn remove: %v", err)
						return
					}
				}
			}
		}
	}()

	rebalancesBefore := m.Rebalances()
	for s := 0; s < scanners; s++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for iter := 0; iter < 60; iter++ {
				prev := -1
				seen := 0
				okScan := true
				m.Descend(nil, nil, func(kr uint64, h ValueHandle) bool {
					k := kint(m, kr)
					if prev >= 0 && k >= prev {
						t.Errorf("descend order violation: %d after %d", k, prev)
						okScan = false
						return false
					}
					prev = k
					if k%8 == 0 {
						seen++
					}
					return true
				})
				if okScan && seen != residents {
					t.Errorf("descend iter %d saw %d of %d residents", iter, seen, residents)
					return
				}
			}
		}()
	}

	// The scanners bound the test duration (60 iterations each); the
	// mutator churns until they finish.
	scanWG.Wait()
	stop.Store(true)
	mutWG.Wait()

	if m.Rebalances() == rebalancesBefore {
		t.Fatal("no rebalances happened during the scan storm: test not load-bearing")
	}
}
