package core

import (
	"context"
	"runtime/pprof"

	"oakmap/internal/arena"
	"oakmap/internal/chunk"
	"oakmap/internal/faultpoint"
	"oakmap/internal/telemetry"
)

// Fault-injection pause points marking the rebalance danger windows
// (no-ops unless a test arms them). All three are hit with the chunk
// locks held, so a gate hook parks the rebalancer mid-operation while
// readers — which never block on rebalances — are let loose on it.
var (
	// fpRebalanceFreeze: the chunk is frozen (updates bounce) but still
	// the only copy of its range — readers must serve from frozen data.
	fpRebalanceFreeze = faultpoint.New("core/rebalance-freeze")
	// fpRebalanceSplit: replacement chunks are built and chained but not
	// yet published — the retired chunk is still the visible one.
	fpRebalanceSplit = faultpoint.New("core/rebalance-split")
	// fpRebalanceIndex: the new chain is spliced and forwarding is up,
	// but the minKey index still points at retired chunks — lookups must
	// recover via ReplacedBy forwarding.
	fpRebalanceIndex = faultpoint.New("core/rebalance-index")
)

// maybeRebalance applies the paper's trigger policy after an insertion:
// rebalance when the unsorted suffix of the entries array outgrows the
// sorted prefix by the configured ratio (§5.1: "whenever the unsorted
// linked list exceeds half of the sorted prefix").
func (m *Map) maybeRebalance(c *chunk.Chunk) {
	if m.shouldRebalance(c) {
		m.rebalance(c)
	}
}

// maybeMerge applies the under-utilization trigger after a removal: a
// chunk whose live count dropped below capacity/8 is rebalanced, which
// merges it with its successor (§4.1: rebalance "merges chunks when they
// are under-used"). The head chunk with no successor is left alone — an
// empty map needs one chunk anyway.
func (m *Map) maybeMerge(c *chunk.Chunk) {
	c = chunk.Forward(c)
	if c.Next() == nil {
		return
	}
	if c.Live() > 0 && c.Live() >= c.Capacity()/8 {
		return
	}
	if c.Allocated() == 0 && c.Live() <= 0 {
		// Fresh empty chunk produced by a recent merge: leave it; a
		// rebalance would just recreate it.
		return
	}
	m.rebalance(c)
}

func (m *Map) shouldRebalance(c *chunk.Chunk) bool {
	alloc := c.Allocated()
	if alloc >= c.Capacity() {
		return true
	}
	sorted := c.SortedCount()
	base := sorted
	if min := c.Capacity() / 8; base < min {
		base = min // fresh/empty chunks tolerate a small unsorted run
	}
	return alloc-sorted > int(m.opts.RebalanceRatio*float64(base))
}

// rebalance replaces chunk c (and possibly its successor, when merging)
// with freshly built chunks whose prefixes are fully sorted (§4.1). The
// rebalancer:
//
//  1. locates and locks c's predecessor, then c (in list order, so
//     concurrent rebalances cannot deadlock), validating liveness after
//     each acquisition;
//  2. freezes c, draining published updates — after which no entry's
//     value reference can change;
//  3. gathers the live entries in ascending order (RB3) and optionally
//     freezes and gathers the successor for a merge;
//  4. builds replacement chunks of at most capacity/2 live entries each,
//     links them, points the retired chunks' replacedBy at the new chain,
//     and splices the chain in place of the retired chunks;
//  5. updates the minKey index (lazily consistent: traversals forward
//     through replacedBy until the index catches up).
//
// The guarantees RB1–RB3 hold: frozen chunks retain their data for
// concurrent readers, the new chain covers exactly the retired range, and
// gathered sequences are sorted and deduplicated by construction.
func (m *Map) rebalance(c *chunk.Chunk) {
	for attempt := 0; ; attempt++ {
		retryPause(attempt)
		c = chunk.Forward(c)
		if c.ReplacedBy() != nil {
			return
		}

		// Locate the predecessor (nil when c is the head chunk).
		var pred *chunk.Chunk
		if m.head.Load() != c {
			p, ok := m.findPred(c)
			if !ok {
				continue // c was retired or moved; re-resolve
			}
			pred = p
		}

		// Lock in list order: pred, then c.
		if pred != nil {
			pred.RebalanceMu.Lock()
		}
		c.RebalanceMu.Lock()
		valid := c.ReplacedBy() == nil
		if pred == nil {
			valid = valid && m.head.Load() == c
		} else {
			valid = valid && pred.ReplacedBy() == nil && pred.Next() == c
		}
		if !valid {
			c.RebalanceMu.Unlock()
			if pred != nil {
				pred.RebalanceMu.Unlock()
			}
			continue
		}

		m.rebalanceLocked(pred, c)

		c.RebalanceMu.Unlock()
		if pred != nil {
			pred.RebalanceMu.Unlock()
		}
		// Rebalances retire keys in bulk; attempt a drain now that the
		// chunk locks are dropped (rebalance runs unpinned, so only
		// other readers can hold the epoch back).
		m.reclaim.TryAdvance()
		return
	}
}

// rebalanceLocked performs steps 2–5 with pred (optional) and c locked.
// With telemetry attached it wraps the work in an OpRebalance span,
// begin/end flight-recorder events, and a pprof label so CPU profiles
// attribute rebalance work to the background activity rather than to
// whichever operation tripped the trigger.
func (m *Map) rebalanceLocked(pred, c *chunk.Chunk) {
	if m.tel == nil {
		m.rebalanceBody(pred, c)
		return
	}
	tick := m.tel.Span(telemetry.OpRebalance)
	m.tel.Event(telemetry.EvRebalanceBegin, uint64(c.Live()), 0, 0)
	var retired, produced, migrated int
	pprof.Do(context.Background(), pprof.Labels("oak", "rebalance"), func(context.Context) {
		retired, produced, migrated = m.rebalanceBody(pred, c)
	})
	tick.Done()
	m.tel.Event(telemetry.EvRebalanceEnd, uint64(retired), uint64(produced), uint64(migrated))
}

// rebalanceBody is rebalanceLocked's uninstrumented work; it reports
// the chunks retired, the chunks produced, and the live entries
// migrated into the replacement chain.
func (m *Map) rebalanceBody(pred, c *chunk.Chunk) (retired, produced, migrated int) {
	m.rebalances.Add(1)

	c.Freeze()
	fpRebalanceFreeze.Fire()
	live, deadKeys := c.Gather()

	// Merge policy: when c is under-utilized, absorb the successor.
	// Holding c's lock keeps c.Next() stable (a successor's rebalance
	// must lock its predecessor — c — first).
	last := c // last retired chunk
	second := (*chunk.Chunk)(nil)
	if len(live) < c.Capacity()/4 {
		if n := c.Next(); n != nil && n.ReplacedBy() == nil {
			n.RebalanceMu.Lock()
			if n.ReplacedBy() == nil && c.Next() == n {
				n.Freeze()
				live2, dk2 := n.Gather()
				live = append(live, live2...)
				deadKeys = append(deadKeys, dk2...)
				second = n
				last = n
			} else {
				n.RebalanceMu.Unlock()
				second = nil
			}
		}
	}

	// Build the replacement chain: chunks of at most capacity/2 entries,
	// leaving headroom for future inserts.
	per := c.Capacity() / 2
	if per < 1 {
		per = 1
	}
	var outs []*chunk.Chunk
	for i := 0; i < len(live); i += per {
		end := i + per
		if end > len(live) {
			end = len(live)
		}
		part := live[i:end]
		var minKey []byte
		if i == 0 {
			minKey = c.MinKey() // the first replacement inherits c's range start
		} else {
			// Later replacements are keyed by their first entry. Clone
			// to the heap: chunk metadata must not alias arena space.
			kb := m.alloc.Bytes(arena.Ref(part[0].KeyRef))
			minKey = append([]byte(nil), kb...)
		}
		outs = append(outs, chunk.NewSorted(minKey, c.Capacity(), m.alloc, m.cmp, part))
	}
	if len(outs) == 0 {
		// Everything is dead: the range still needs a (now empty) chunk.
		outs = append(outs, chunk.New(c.MinKey(), c.Capacity(), m.alloc, m.cmp))
	}

	// Chain the replacements and attach the tail.
	tail := last.Next()
	for i := 0; i+1 < len(outs); i++ {
		outs[i].SetNext(outs[i+1])
	}
	outs[len(outs)-1].SetNext(tail)

	fpRebalanceSplit.Fire()

	// Publish forwarding, then splice. Readers holding retired chunks
	// keep reading their frozen data; re-located operations forward.
	c.SetReplacedBy(outs[0])
	if second != nil {
		second.SetReplacedBy(outs[0])
	}
	if pred == nil {
		m.head.Store(outs[0])
	} else {
		pred.SetNext(outs[0])
	}

	fpRebalanceIndex.Fire()

	// Index maintenance (lazy, but done eagerly here): re-point c's
	// minKey, add the new split keys, drop a merged successor's key.
	if k := outs[0].MinKey(); k != nil {
		m.index.Put(k, outs[0])
	}
	for _, o := range outs[1:] {
		m.index.Put(o.MinKey(), o)
	}
	if second != nil {
		if k := second.MinKey(); k != nil {
			// Only remove if the merged key did not become a split key.
			owned := false
			for _, o := range outs {
				if o.MinKey() != nil && m.cmp(o.MinKey(), k) == 0 {
					owned = true
					break
				}
			}
			if !owned {
				m.index.Remove(k)
			}
		}
		second.RebalanceMu.Unlock()
	}

	// Retire dead keys through the epoch domain: the retired chunks are
	// already unlinked (forwarding is up), so no scan that pins after
	// this point can reach them, and scans pinned before it keep the
	// key bytes alive until they unpin. The dropped chunks' entry
	// arrays themselves are on-heap and go to the GC with the chunk
	// objects. With DisableKeyReclaim the dead space is retained and
	// accounted instead (ablation baseline).
	if m.opts.DisableKeyReclaim {
		var leaked int64
		for _, kr := range deadKeys {
			leaked += int64(arena.Ref(kr).Len())
		}
		m.keyLeak.Add(leaked)
	} else {
		for _, kr := range deadKeys {
			m.alloc.Retire(arena.Ref(kr))
		}
	}
	m.alloc.Compact()
	retired = 1
	if second != nil {
		retired = 2
	}
	return retired, len(outs), len(live)
}

// freeKey returns a key's off-heap space to the allocator immediately
// (only for keys that were never linked: no reader can hold them).
func (m *Map) freeKey(keyRef uint64) {
	m.alloc.Free(arena.Ref(keyRef))
}

// KeyLeakBytes reports the cumulative bytes of dead keys retained. With
// the default epoch reclamation this must stay zero — it is asserted as
// an invariant by the leak-gate tests; it only grows when
// DisableKeyReclaim opts back into the paper's leaky baseline.
func (m *Map) KeyLeakBytes() int64 { return m.keyLeak.Load() }

// findPred walks the live chunk list to find the chunk whose next pointer
// is exactly c. Returns false if c is no longer in the list.
func (m *Map) findPred(c *chunk.Chunk) (*chunk.Chunk, bool) {
	cur := m.head.Load()
	for cur != nil {
		cur = chunk.Forward(cur)
		n := cur.Next()
		if n == c {
			return cur, true
		}
		if n == nil {
			return nil, false
		}
		// Overshoot check: once the walk passes c's range, c is gone.
		if ck := c.MinKey(); ck != nil {
			if nk := chunk.Forward(n).MinKey(); nk != nil && m.cmp(nk, ck) > 0 {
				return nil, false
			}
		}
		cur = n
	}
	return nil, false
}
