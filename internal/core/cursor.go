package core

import "oakmap/internal/chunk"

// Cursor is a pull-based scan over the map — the engine behind the
// facade's iterator Sets (§2.2). Unlike the callback scans (Ascend /
// Descend), a Cursor can be advanced lazily, interleaved with other
// work, or merged with other cursors. It provides the same non-atomic
// guarantees: keys present for the cursor's whole lifetime are yielded
// exactly once, in order.
type Cursor struct {
	m    *Map
	desc bool
	done bool

	lo, hi []byte

	// ascending state
	c      *chunk.Chunk
	ei     int32
	resume []byte

	// descending state
	it    *chunk.DescIter
	bound []byte
}

// NewCursor creates a cursor over lo ≤ key < hi (nil bounds are open).
// When desc is true the cursor yields entries in descending order using
// the chunk-stack mechanism of §4.2.
func (m *Map) NewCursor(lo, hi []byte, desc bool) *Cursor {
	cur := &Cursor{m: m, desc: desc, lo: lo, hi: hi}
	if desc {
		if hi == nil {
			cur.c = m.lastChunk()
		} else {
			cur.c = m.locateChunk(hi)
		}
		cur.bound = hi
		cur.it = cur.c.NewDescIter(cur.bound)
	} else {
		if lo == nil {
			cur.c = chunk.Forward(m.head.Load())
		} else {
			cur.c = m.locateChunk(lo)
		}
		cur.ei = cur.c.FirstGE(lo)
	}
	return cur
}

// Next returns the next live entry, or ok=false when the range is
// exhausted. The returned handle is live (non-⊥, not deleted) at yield
// time.
func (cur *Cursor) Next() (keyRef uint64, h ValueHandle, ok bool) {
	if cur.done {
		return 0, 0, false
	}
	if cur.desc {
		return cur.nextDesc()
	}
	return cur.nextAsc()
}

func (cur *Cursor) nextAsc() (uint64, ValueHandle, bool) {
	m := cur.m
	for {
		for cur.ei >= 0 {
			key := cur.c.Key(cur.ei)
			if cur.hi != nil && m.cmp(key, cur.hi) >= 0 {
				cur.done = true
				return 0, 0, false
			}
			cur.resume = key
			h := ValueHandle(cur.c.ValHandle(cur.ei))
			kr := cur.c.KeyRef(cur.ei)
			cur.ei = cur.c.NextEntry(cur.ei)
			if h != 0 && !m.IsDeleted(h) {
				return kr, h, true
			}
		}
		n := cur.c.Next()
		if n == nil {
			cur.done = true
			return 0, 0, false
		}
		next := chunk.Forward(n)
		if next != n && cur.resume != nil {
			// Rebalanced successor: re-enter past the last visited key
			// to avoid re-yielding merged ranges (same as Ascend).
			cur.resume = append([]byte(nil), cur.resume...)
			cur.c = next
			cur.ei = cur.c.FirstGE(cur.resume)
			for cur.ei >= 0 && m.cmp(cur.c.Key(cur.ei), cur.resume) == 0 {
				cur.ei = cur.c.NextEntry(cur.ei)
			}
			continue
		}
		cur.c = next
		cur.ei = cur.c.Head()
	}
}

func (cur *Cursor) nextDesc() (uint64, ValueHandle, bool) {
	m := cur.m
	for {
		for {
			ei := cur.it.Next()
			if ei < 0 {
				break
			}
			key := cur.c.Key(ei)
			if cur.lo != nil && m.cmp(key, cur.lo) < 0 {
				cur.done = true
				return 0, 0, false
			}
			h := ValueHandle(cur.c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				return cur.c.KeyRef(ei), h, true
			}
		}
		mk := cur.c.MinKey()
		if mk == nil {
			cur.done = true
			return 0, 0, false
		}
		if cur.lo != nil && m.cmp(mk, cur.lo) <= 0 {
			cur.done = true
			return 0, 0, false
		}
		cur.bound = append([]byte(nil), mk...)
		cur.c = m.prevChunk(cur.bound)
		if cur.c == nil {
			cur.done = true
			return 0, 0, false
		}
		cur.it = cur.c.NewDescIter(cur.bound)
	}
}
