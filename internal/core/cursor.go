package core

import (
	"oakmap/internal/chunk"
	"oakmap/internal/telemetry"
)

// Cursor is a pull-based scan over the map — the engine behind the
// facade's iterator Sets (§2.2). Unlike the callback scans (Ascend /
// Descend), a Cursor can be advanced lazily, interleaved with other
// work, or merged with other cursors. It provides the same non-atomic
// guarantees: keys present for the cursor's whole lifetime are yielded
// exactly once, in order.
//
// Each Next call pins the epoch for its own duration only, so a parked
// cursor never stalls reclamation. The price is that the chunk position
// held between calls can go stale: if the chunk was rebalanced while
// the cursor was unpinned, Next re-enters the live chunk list at the
// cursor's own copy of the last visited key — in both directions — so
// a pause spanning removals and rebalances resumes at the exact
// position with no skipped or duplicated keys.
type Cursor struct {
	m    *Map
	desc bool
	done bool

	lo, hi []byte

	// resume is a cursor-owned copy of the last visited key (never an
	// alias of arena bytes — those may be recycled while unpinned).
	resume []byte

	// ascending state
	c  *chunk.Chunk
	ei int32

	// descending state
	it    *chunk.DescIter
	bound []byte
}

// NewCursor creates a cursor over lo ≤ key < hi (nil bounds are open).
// When desc is true the cursor yields entries in descending order using
// the chunk-stack mechanism of §4.2.
func (m *Map) NewCursor(lo, hi []byte, desc bool) *Cursor {
	g := m.reclaim.Pin()
	defer g.Unpin()
	cur := &Cursor{m: m, desc: desc, lo: lo, hi: hi}
	if desc {
		cur.repositionDesc()
	} else {
		cur.repositionAsc()
	}
	return cur
}

// repositionAsc (re-)enters the live chunk list for an ascending scan:
// at the first key past resume when set, else at lo. Must run pinned.
func (cur *Cursor) repositionAsc() {
	m := cur.m
	start := cur.resume
	if start == nil {
		start = cur.lo
	}
	if start == nil {
		cur.c = chunk.Forward(m.head.Load())
	} else {
		cur.c = m.locateChunk(start)
	}
	cur.ei = cur.c.FirstGE(start)
	if cur.resume != nil {
		// The resume key itself was already yielded (or visited); skip it.
		for cur.ei >= 0 && m.cmp(cur.c.Key(cur.ei), cur.resume) == 0 {
			cur.ei = cur.c.NextEntry(cur.ei)
		}
	}
}

// repositionDesc (re-)enters the live chunk list for a descending scan
// with the exclusive upper bound at resume when set, else at hi. Every
// key < resume is still unvisited, so re-entry is exact even if the
// resume key was removed and its chunk merged away. Must run pinned.
func (cur *Cursor) repositionDesc() {
	m := cur.m
	b := cur.resume
	if b == nil {
		b = cur.hi
	}
	if b == nil {
		cur.c = m.lastChunk()
	} else {
		cur.c = m.locateChunk(b)
	}
	cur.bound = b
	cur.it = cur.c.NewDescIter(b)
}

// Key returns the cursor's owned copy of the last key Next yielded (or
// visited). The slice lives on-heap — never in arena space — so it stays
// readable while the cursor is parked, but it is reused by the following
// Next call: callers that keep it across steps must copy. It is the hook
// merged multi-shard scans are built on: a k-way merge can compare the
// heads of several cursors without holding any epoch pin.
func (cur *Cursor) Key() []byte { return cur.resume }

// Next returns the next live entry, or ok=false when the range is
// exhausted. The returned handle is live (non-⊥, not deleted) at yield
// time; the keyRef is guaranteed valid only until the next Next call
// unless the caller re-validates under its own pin (see Map.ReadKey).
func (cur *Cursor) Next() (keyRef uint64, h ValueHandle, ok bool) {
	if cur.done {
		return 0, 0, false
	}
	tk := cur.m.tel.Op(telemetry.OpScanNext)
	defer tk.Done()
	g := cur.m.reclaim.Pin()
	defer g.Unpin()
	if cur.c.ReplacedBy() != nil {
		// The chunk was rebalanced while the cursor was unpinned: its
		// key space may already be recycled. Re-enter from the index.
		if cur.desc {
			cur.repositionDesc()
		} else {
			cur.repositionAsc()
		}
	}
	if cur.desc {
		return cur.nextDesc()
	}
	return cur.nextAsc()
}

func (cur *Cursor) nextAsc() (uint64, ValueHandle, bool) {
	m := cur.m
	for {
		for cur.ei >= 0 {
			key := cur.c.Key(cur.ei)
			if cur.hi != nil && m.cmp(key, cur.hi) >= 0 {
				cur.done = true
				return 0, 0, false
			}
			cur.resume = append(cur.resume[:0], key...)
			h := ValueHandle(cur.c.ValHandle(cur.ei))
			kr := cur.c.KeyRef(cur.ei)
			cur.ei = cur.c.NextEntry(cur.ei)
			if h != 0 && !m.IsDeleted(h) {
				return kr, h, true
			}
		}
		n := cur.c.Next()
		if n == nil {
			cur.done = true
			return 0, 0, false
		}
		next := chunk.Forward(n)
		if next != n && cur.resume != nil {
			// Rebalanced successor: re-enter past the last visited key
			// to avoid re-yielding merged ranges (same as Ascend).
			cur.c = next
			cur.ei = cur.c.FirstGE(cur.resume)
			for cur.ei >= 0 && m.cmp(cur.c.Key(cur.ei), cur.resume) == 0 {
				cur.ei = cur.c.NextEntry(cur.ei)
			}
			continue
		}
		cur.c = next
		cur.ei = cur.c.Head()
	}
}

func (cur *Cursor) nextDesc() (uint64, ValueHandle, bool) {
	m := cur.m
	for {
		for {
			ei := cur.it.Next()
			if ei < 0 {
				break
			}
			key := cur.c.Key(ei)
			if cur.lo != nil && m.cmp(key, cur.lo) < 0 {
				cur.done = true
				return 0, 0, false
			}
			cur.resume = append(cur.resume[:0], key...)
			h := ValueHandle(cur.c.ValHandle(ei))
			if h != 0 && !m.IsDeleted(h) {
				return cur.c.KeyRef(ei), h, true
			}
		}
		mk := cur.c.MinKey()
		if mk == nil {
			cur.done = true
			return 0, 0, false
		}
		if cur.lo != nil && m.cmp(mk, cur.lo) <= 0 {
			cur.done = true
			return 0, 0, false
		}
		cur.bound = append([]byte(nil), mk...)
		cur.c = m.prevChunk(cur.bound)
		if cur.c == nil {
			cur.done = true
			return 0, 0, false
		}
		cur.it = cur.c.NewDescIter(cur.bound)
	}
}
