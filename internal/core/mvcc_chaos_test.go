package core

// Chaos scenarios for the MVCC layer: snapshots killed mid-scan while
// the retain and horizon fault points stretch the windows the
// implementation's arguments are about — a pre-image entering the
// retained store just as its snapshot dies, and a horizon sweep racing
// writers that still retain against the old floor.

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"oakmap/internal/faultpoint"
)

// TestChaosSnapshotKilledMidScan abandons snapshot scans partway —
// EndSnapshot fires while the cursor still has entries to yield — under
// delete-heavy churn, with mvcc/retain and mvcc/horizon armed to pause
// inside the retention and sweep windows. Survivor invariants: the
// partial scans stay strictly ordered, nothing panics, and once every
// snapshot is closed the retained store drains to exactly zero.
func TestChaosSnapshotKilledMidScan(t *testing.T) {
	disarmOnExit(t)
	m := newTestMap(t, 16)

	const keySpace = 512
	for i := 0; i < keySpace; i++ {
		mustPut(t, m, ik(i), iv(i))
	}

	// Pause inside the two windows, probabilistically: retain is hit on
	// the writer side (superseded span entering the retained store),
	// horizon on the closer side (sweep while writers race the floor).
	fpMvccRetain.Arm(faultpoint.Delayed(100*time.Microsecond, faultpoint.WithProb(0.2, 0xA11CE)))
	fpMvccHorizon.Arm(faultpoint.Delayed(200*time.Microsecond, faultpoint.WithProb(0.5, 0xB0B)))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xDEAD))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int(rng.Uint64N(keySpace))
				if rng.Uint64N(100) < 40 {
					m.Remove(ik(k))
				} else {
					m.Put(ik(k), iv(i))
				}
			}
		}(uint64(w + 1))
	}

	rng := rand.New(rand.NewPCG(7, 0xFEED))
	for round := 0; round < 40; round++ {
		s := m.BeginSnapshot()
		m.StabilizeSnapshot(s)
		cur := m.NewSnapCursor(s, nil, nil, false)
		steps := int(rng.Uint64N(keySpace/2)) + 1
		var prev []byte
		for i := 0; i < steps; i++ {
			key, _, ok := cur.Next()
			if !ok {
				break
			}
			if prev != nil && bytes.Compare(prev, key) >= 0 {
				t.Fatalf("round %d: killed scan went out of order: %x after %x", round, key, prev)
			}
			prev = append(prev[:0], key...)
		}
		// The kill: the snapshot dies with the cursor mid-flight.
		m.EndSnapshot(s)
	}
	close(stop)
	wg.Wait()

	if fpMvccRetain.Fires() == 0 || fpMvccHorizon.Fires() == 0 {
		t.Fatalf("chaos not exercised: retain fired %d, horizon fired %d",
			fpMvccRetain.Fires(), fpMvccHorizon.Fires())
	}
	st := m.MVCCStats()
	if st.OpenSnapshots != 0 || st.RetainedBytes != 0 || st.RetainedSpans != 0 || st.HorizonLag != 0 {
		t.Fatalf("retained store did not drain after the last close: %+v", st)
	}
	t.Logf("killed 40 scans: retain fired %d, horizon fired %d",
		fpMvccRetain.Fires(), fpMvccHorizon.Fires())
}
