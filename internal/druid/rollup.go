package druid

import (
	"encoding/binary"
	"math"

	"oakmap/internal/sketch"
)

// rowLayout maps a schema's aggregators onto a flat, fixed-size byte
// row. Fixed size is what makes the I²-Oak write path a pure in-place
// compute: every ingest mutates the row without resizing it.
type rowLayout struct {
	specs   []AggregatorSpec
	offsets []int
	size    int
	tmpl    []byte // cached identity row
}

func newRowLayout(specs []AggregatorSpec) *rowLayout {
	l := &rowLayout{}
	for _, s := range specs {
		s = s.normalized()
		l.specs = append(l.specs, s)
		l.offsets = append(l.offsets, l.size)
		l.size += s.stateSize()
	}
	return l
}

// zeroRow builds the identity-element row: counts and sums at 0, min at
// +Inf, max at -Inf, fresh sketches.
func (l *rowLayout) zeroRow() []byte {
	buf := make([]byte, 0, l.size)
	for _, s := range l.specs {
		switch s.Kind {
		case AggCount:
			buf = append(buf, make([]byte, 8)...)
		case AggSum:
			buf = appendFloat(buf, 0)
		case AggMin:
			buf = appendFloat(buf, math.Inf(1))
		case AggMax:
			buf = appendFloat(buf, math.Inf(-1))
		case AggUniqueHLL:
			buf = sketch.NewHLL(s.HLLPrecision).AppendState(buf)
		case AggQuantileP2:
			buf = sketch.NewP2(s.Quantile).AppendState(buf)
		}
	}
	return buf
}

// zeroTemplate returns a shared immutable identity row (callers copy).
func (l *rowLayout) zeroTemplate() []byte {
	if l.tmpl == nil {
		l.tmpl = l.zeroRow()
	}
	return l.tmpl
}

func putU64(buf []byte, v uint64) {
	binary.LittleEndian.PutUint64(buf, v)
}

func appendFloat(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func getFloat(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

func putFloat(buf []byte, v float64) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
}

// update folds one tuple into the row, in place. This is the body of the
// paper's "atomic update of multiple aggregates within a single lambda".
func (l *rowLayout) update(row []byte, t Tuple) {
	for i, s := range l.specs {
		st := row[l.offsets[i]:]
		switch s.Kind {
		case AggCount:
			binary.LittleEndian.PutUint64(st, binary.LittleEndian.Uint64(st)+1)
		case AggSum:
			putFloat(st, getFloat(st)+t.Metrics[s.Metric])
		case AggMin:
			if v := t.Metrics[s.Metric]; v < getFloat(st) {
				putFloat(st, v)
			}
		case AggMax:
			if v := t.Metrics[s.Metric]; v > getFloat(st) {
				putFloat(st, v)
			}
		case AggUniqueHLL:
			sketch.HLLAddInPlace(st[:sketch.HLLStateSize(s.HLLPrecision)],
				sketch.HashBytes([]byte(t.Dims[s.Dim])))
		case AggQuantileP2:
			sketch.P2AddInPlace(st[:sketch.P2StateSize], t.Metrics[s.Metric])
		}
	}
}

// read extracts aggregator i's current scalar readout from a row:
// counts and sums directly, min/max directly, sketch estimates for
// sketches.
func (l *rowLayout) read(row []byte, i int) float64 {
	s := l.specs[i]
	st := row[l.offsets[i]:]
	switch s.Kind {
	case AggCount:
		return float64(binary.LittleEndian.Uint64(st))
	case AggSum, AggMin, AggMax:
		return getFloat(st)
	case AggUniqueHLL:
		return sketch.HLLEstimateState(st[:sketch.HLLStateSize(s.HLLPrecision)])
	case AggQuantileP2:
		return sketch.P2EstimateState(st[:sketch.P2StateSize])
	}
	return math.NaN()
}

// readAll extracts all aggregator readouts.
func (l *rowLayout) readAll(row []byte) []float64 {
	out := make([]float64, len(l.specs))
	for i := range l.specs {
		out[i] = l.read(row, i)
	}
	return out
}

// mergeRows folds row b into row a (used by range queries that combine
// per-key rows into one result).
func (l *rowLayout) mergeRows(a, b []byte) {
	for i, s := range l.specs {
		sa, sb := a[l.offsets[i]:], b[l.offsets[i]:]
		switch s.Kind {
		case AggCount:
			binary.LittleEndian.PutUint64(sa,
				binary.LittleEndian.Uint64(sa)+binary.LittleEndian.Uint64(sb))
		case AggSum:
			putFloat(sa, getFloat(sa)+getFloat(sb))
		case AggMin:
			if getFloat(sb) < getFloat(sa) {
				putFloat(sa, getFloat(sb))
			}
		case AggMax:
			if getFloat(sb) > getFloat(sa) {
				putFloat(sa, getFloat(sb))
			}
		case AggUniqueHLL:
			n := sketch.HLLStateSize(s.HLLPrecision)
			ha := sketch.HLLFromState(sa[:n])
			ha.Merge(sketch.HLLFromState(sb[:n]))
			copy(sa[:n], ha.AppendState(nil))
		case AggQuantileP2:
			// P² states are not mergeable in general; range queries over
			// quantile aggregators approximate by keeping the row with
			// more observations.
			pa := sketch.P2FromState(sa[:sketch.P2StateSize])
			pb := sketch.P2FromState(sb[:sketch.P2StateSize])
			if pb.Count() > pa.Count() {
				copy(sa[:sketch.P2StateSize], sb[:sketch.P2StateSize])
			}
		}
	}
}
