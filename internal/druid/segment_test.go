package druid

import "testing"

func TestPersistLifecycle(t *testing.T) {
	oak, leg, tuples := seedIndexes(t)

	segOak, err := oak.Persist()
	if err != nil {
		t.Fatal(err)
	}
	segLeg, err := leg.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if segOak.Len() != oak.Cardinality() || segLeg.Len() != leg.Cardinality() {
		t.Fatalf("segment rows %d/%d vs cardinality %d/%d",
			segOak.Len(), segLeg.Len(), oak.Cardinality(), leg.Cardinality())
	}
	if segOak.SourceRows() != int64(len(tuples)) {
		t.Fatalf("SourceRows = %d", segOak.SourceRows())
	}
	if segOak.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}

	// Segments answer the same queries as the live index, identically.
	for _, pair := range [][2]interface {
		GroupBy(dim int, t1, t2 int64) []GroupResult
	}{{oak, segOak}, {leg, segLeg}, {segOak, segLeg}} {
		a := pair[0].GroupBy(0, 0, 50)
		b := pair[1].GroupBy(0, 0, 50)
		if len(a) != len(b) {
			t.Fatalf("group counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].DimValue != b[i].DimValue {
				t.Fatalf("group %d: %q vs %q", i, a[i].DimValue, b[i].DimValue)
			}
			for j := range a[i].Aggs {
				if a[i].Aggs[j] != b[i].Aggs[j] {
					t.Fatalf("group %q agg %d: %v vs %v",
						a[i].DimValue, j, a[i].Aggs[j], b[i].Aggs[j])
				}
			}
		}
	}

	// Point lookups.
	want, ok := oak.Get(10, []string{"site-2", "user-1"})
	if !ok {
		t.Fatal("index Get")
	}
	got, ok := segOak.Get(10, []string{"site-2", "user-1"})
	if !ok {
		t.Fatal("segment Get")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment Get agg %d: %v vs %v", i, got[i], want[i])
		}
	}
	if _, ok := segOak.Get(10, []string{"site-2", "never-seen"}); ok {
		t.Fatal("segment Get hit an unseen dimension value")
	}
	if _, ok := segOak.Get(9999, []string{"site-2", "user-1"}); ok {
		t.Fatal("segment Get hit a missing timestamp")
	}

	// Timeseries and time-range parity with the live index.
	a := oak.Timeseries(0, 50, 10, 0)
	b := segOak.Timeseries(0, 50, 10, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeseries bucket %d: %v vs %v", i, a[i], b[i])
		}
	}
	qa := oak.QueryTimeRange(5, 45)
	qb := segOak.QueryTimeRange(5, 45)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("range agg %d: %v vs %v", i, qa[i], qb[i])
		}
	}
	top := segOak.TopN(0, 1, 0, 50, 1)
	if len(top) != 1 || top[0].DimValue != "site-4" {
		t.Fatalf("segment TopN = %+v", top)
	}

	// The lifecycle's point: dispose the index; the segment lives on.
	oak.Close()
	if g := segOak.GroupBy(0, 0, 50); len(g) != 5 {
		t.Fatal("segment unusable after index Close")
	}
}

func TestPersistPlainIndexFails(t *testing.T) {
	schema := querySchema()
	schema.Rollup = false
	oak, _ := NewIndex(schema, testOpts())
	defer oak.Close()
	if _, err := oak.Persist(); err != ErrNotRollup {
		t.Fatalf("Persist on plain index: %v", err)
	}
	leg, _ := NewLegacyIndex(schema)
	if _, err := leg.Persist(); err != ErrNotRollup {
		t.Fatalf("legacy Persist on plain index: %v", err)
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	oak, _ := NewIndex(querySchema(), testOpts())
	defer oak.Close()
	seg, err := oak.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != 0 {
		t.Fatalf("empty segment rows = %d", seg.Len())
	}
	if _, ok := seg.Get(0, []string{"a", "b"}); ok {
		t.Fatal("Get on empty segment")
	}
	if out := seg.Timeseries(0, 10, 5, 0); len(out) != 2 || out[0] != 0 {
		t.Fatalf("empty timeseries = %v", out)
	}
}
