package druid

import (
	"math"
	"sync"
	"testing"
)

// TestQueryAtomicUnderIngest: queries scan a map snapshot, so a result
// is an atomic picture of the index. The ingester alternates strictly
// between two dimension values, keeping their counts within 1 of each
// other at every instant; a query that mixed row states from different
// instants (the old live stream scan) would routinely observe the
// early-scanned group far behind the late-scanned one.
func TestQueryAtomicUnderIngest(t *testing.T) {
	schema := Schema{
		Dimensions:  []string{"d"},
		Metrics:     []string{"m"},
		Aggregators: []AggregatorSpec{{Kind: AggCount}},
		Rollup:      true,
	}
	idx, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Strict alternation: after any prefix, |count(a)-count(b)| ≤ 1.
			dim := "a"
			if i%2 == 1 {
				dim = "b"
			}
			if err := idx.Ingest(Tuple{Timestamp: 5, Dims: []string{dim}, Metrics: []float64{1}}); err != nil {
				panic(err)
			}
		}
	}()

	for round := 0; round < 200; round++ {
		groups := idx.GroupBy(0, 0, 100)
		counts := map[string]float64{}
		for _, g := range groups {
			counts[g.DimValue] = g.Aggs[0]
		}
		if math.Abs(counts["a"]-counts["b"]) > 1 {
			t.Fatalf("round %d: non-atomic query: count(a)=%v count(b)=%v",
				round, counts["a"], counts["b"])
		}
		// Timeseries rides the same snapshot-scanned path: the single
		// bucket's count must equal the groupBy total of a later (hence
		// no smaller) snapshot.
		total := counts["a"] + counts["b"]
		ts := idx.Timeseries(0, 100, 100, 0)
		if len(ts) != 1 || ts[0] < total {
			t.Fatalf("round %d: timeseries %v went backwards vs groupBy total %v", round, ts, total)
		}
	}
	close(stop)
	wg.Wait()

	// No snapshot leaked from the query path.
	if st := idx.oak.Stats(); st.OpenSnapshots != 0 || st.RetainedBytes != 0 {
		t.Fatalf("query path leaked snapshot state: OpenSnapshots=%d RetainedBytes=%d",
			st.OpenSnapshots, st.RetainedBytes)
	}
}
