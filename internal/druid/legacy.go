package druid

import (
	"math"
	"sync"
	"sync/atomic"

	"oakmap/internal/sketch"
	"oakmap/internal/skiplist"
)

// legacyRow is the on-heap aggregate object of I²-legacy: one Go object
// per indexed key, holding boxed aggregator states — the per-row object
// population whose GC cost the paper's Fig. 5 measures. Updates are
// synchronized with a per-row mutex, as in Druid's OnheapIncrementalIndex
// aggregators.
type legacyRow struct {
	mu     sync.Mutex
	counts []uint64
	floats []float64
	hlls   []*sketch.HLL
	p2s    []*sketch.P2
}

// LegacyIndex is I²-legacy: the baseline incremental index over an
// on-heap concurrent skiplist with per-row aggregate objects.
type LegacyIndex struct {
	schema Schema
	dicts  []*Dictionary
	list   *skiplist.List[*legacyRow]

	rows     atomic.Int64
	rawBytes atomic.Int64
	rowID    atomic.Uint64
	// slot mapping per aggregator kind, mirroring rowLayout's order
	countSlot, floatSlot, hllSlot, p2Slot []int
}

// NewLegacyIndex creates an I²-legacy for the given schema.
func NewLegacyIndex(schema Schema) (*LegacyIndex, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	x := &LegacyIndex{schema: schema, list: skiplist.New[*legacyRow](nil)}
	for range schema.Dimensions {
		x.dicts = append(x.dicts, NewDictionary())
	}
	var nc, nf, nh, np int
	for _, a := range schema.Aggregators {
		switch a.Kind {
		case AggCount:
			x.countSlot = append(x.countSlot, nc)
			nc++
			x.floatSlot = append(x.floatSlot, -1)
			x.hllSlot = append(x.hllSlot, -1)
			x.p2Slot = append(x.p2Slot, -1)
		case AggSum, AggMin, AggMax:
			x.floatSlot = append(x.floatSlot, nf)
			nf++
			x.countSlot = append(x.countSlot, -1)
			x.hllSlot = append(x.hllSlot, -1)
			x.p2Slot = append(x.p2Slot, -1)
		case AggUniqueHLL:
			x.hllSlot = append(x.hllSlot, nh)
			nh++
			x.countSlot = append(x.countSlot, -1)
			x.floatSlot = append(x.floatSlot, -1)
			x.p2Slot = append(x.p2Slot, -1)
		case AggQuantileP2:
			x.p2Slot = append(x.p2Slot, np)
			np++
			x.countSlot = append(x.countSlot, -1)
			x.floatSlot = append(x.floatSlot, -1)
			x.hllSlot = append(x.hllSlot, -1)
		}
	}
	return x, nil
}

func (x *LegacyIndex) newRow() *legacyRow {
	r := &legacyRow{}
	for _, a := range x.schema.Aggregators {
		a = a.normalized()
		switch a.Kind {
		case AggCount:
			r.counts = append(r.counts, 0)
		case AggSum:
			r.floats = append(r.floats, 0)
		case AggMin:
			r.floats = append(r.floats, math.Inf(1))
		case AggMax:
			r.floats = append(r.floats, math.Inf(-1))
		case AggUniqueHLL:
			r.hlls = append(r.hlls, sketch.NewHLL(a.HLLPrecision))
		case AggQuantileP2:
			r.p2s = append(r.p2s, sketch.NewP2(a.Quantile))
		}
	}
	return r
}

func (x *LegacyIndex) updateRow(r *legacyRow, t Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, a := range x.schema.Aggregators {
		switch a.Kind {
		case AggCount:
			r.counts[x.countSlot[i]]++
		case AggSum:
			r.floats[x.floatSlot[i]] += t.Metrics[a.Metric]
		case AggMin:
			if v := t.Metrics[a.Metric]; v < r.floats[x.floatSlot[i]] {
				r.floats[x.floatSlot[i]] = v
			}
		case AggMax:
			if v := t.Metrics[a.Metric]; v > r.floats[x.floatSlot[i]] {
				r.floats[x.floatSlot[i]] = v
			}
		case AggUniqueHLL:
			r.hlls[x.hllSlot[i]].Add(sketch.HashBytes([]byte(t.Dims[a.Dim])))
		case AggQuantileP2:
			r.p2s[x.p2Slot[i]].Add(t.Metrics[a.Metric])
		}
	}
}

func (x *LegacyIndex) encode(t Tuple, rowID uint64) []byte {
	key := make([]byte, keySize(len(x.schema.Dimensions), !x.schema.Rollup))
	codes := make([]uint32, len(t.Dims))
	for i, d := range t.Dims {
		codes[i] = x.dicts[i].Code(d)
	}
	encodeKey(key, t.Timestamp, codes, rowID, !x.schema.Rollup)
	return key
}

// Ingest absorbs one tuple.
func (x *LegacyIndex) Ingest(t Tuple) error {
	x.rows.Add(1)
	x.rawBytes.Add(int64(t.RawSize()))
	if !x.schema.Rollup {
		key := x.encode(t, x.rowID.Add(1))
		r := x.newRow()
		r.floats = append([]float64(nil), t.Metrics...)
		x.list.Put(key, r)
		return nil
	}
	key := x.encode(t, 0)
	for {
		if r, ok := x.list.Get(key); ok {
			x.updateRow(r, t)
			return nil
		}
		r := x.newRow()
		x.updateRow(r, t)
		if x.list.PutIfAbsent(key, r) {
			return nil
		}
	}
}

// Rows returns the number of ingested tuples.
func (x *LegacyIndex) Rows() int64 { return x.rows.Load() }

// RawBytes returns the cumulative raw size of ingested tuples.
func (x *LegacyIndex) RawBytes() int64 { return x.rawBytes.Load() }

// Cardinality returns the number of distinct keys indexed.
func (x *LegacyIndex) Cardinality() int { return x.list.Len() }

// StoredDataBytes returns the inherent size of the indexed data (same
// formula as Index.StoredDataBytes, so Fig. 5c compares both against the
// identical baseline).
func (x *LegacyIndex) StoredDataBytes() int64 {
	per := int64(keySize(len(x.schema.Dimensions), !x.schema.Rollup))
	if x.schema.Rollup {
		per += int64(newRowLayout(x.schema.Aggregators).size)
	} else {
		per += int64(8 * len(x.schema.Metrics))
	}
	return per * int64(x.Cardinality())
}

// Get returns the aggregate readouts for an exact key.
func (x *LegacyIndex) Get(ts int64, dims []string) ([]float64, bool) {
	if !x.schema.Rollup {
		return nil, false
	}
	key := x.encode(Tuple{Timestamp: ts, Dims: dims}, 0)
	r, ok := x.list.Get(key)
	if !ok {
		return nil, false
	}
	return x.readRow(r), true
}

func (x *LegacyIndex) readRow(r *legacyRow) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(x.schema.Aggregators))
	for i, a := range x.schema.Aggregators {
		switch a.Kind {
		case AggCount:
			out[i] = float64(r.counts[x.countSlot[i]])
		case AggSum, AggMin, AggMax:
			out[i] = r.floats[x.floatSlot[i]]
		case AggUniqueHLL:
			out[i] = r.hlls[x.hllSlot[i]].Estimate()
		case AggQuantileP2:
			out[i] = r.p2s[x.p2Slot[i]].Estimate()
		}
	}
	return out
}

// RecentKeys returns up to n most-recent keys' timestamps in descending
// order. Like ConcurrentSkipListMap, the descending walk re-looks-up
// every step.
func (x *LegacyIndex) RecentKeys(n int) []int64 {
	out := make([]int64, 0, n)
	x.list.Descend(nil, nil, func(k []byte, _ *legacyRow) bool {
		out = append(out, decodeKeyTime(k))
		return len(out) < n
	})
	return out
}

// Close is a no-op: I²-legacy's memory is reclaimed by the Go GC. That
// asymmetry with Index.Close is the point of the case study.
func (x *LegacyIndex) Close() {}
