package druid

import (
	"fmt"
	"math"
	"testing"
)

// querySchema: counts and sums only, so query results are exact and the
// two implementations must agree bit-for-bit.
func querySchema() Schema {
	return Schema{
		Dimensions: []string{"site", "user"},
		Metrics:    []string{"m"},
		Aggregators: []AggregatorSpec{
			{Kind: AggCount},
			{Kind: AggSum, Metric: 0},
			{Kind: AggMax, Metric: 0},
		},
		Rollup: true,
	}
}

// seedIndexes ingests a deterministic stream into both implementations
// and returns them plus a brute-force oracle keyed by (site, bucketed?).
func seedIndexes(t *testing.T) (*Index, *LegacyIndex, []Tuple) {
	t.Helper()
	schema := querySchema()
	oak, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oak.Close)
	leg, err := NewLegacyIndex(schema)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []Tuple
	for ts := int64(0); ts < 50; ts++ {
		for s := 0; s < 5; s++ {
			for u := 0; u < 3; u++ {
				tu := Tuple{
					Timestamp: ts,
					Dims:      []string{fmt.Sprintf("site-%d", s), fmt.Sprintf("user-%d", u)},
					Metrics:   []float64{float64(s*10 + u)},
				}
				tuples = append(tuples, tu)
				if err := oak.Ingest(tu); err != nil {
					t.Fatal(err)
				}
				if err := leg.Ingest(tu); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return oak, leg, tuples
}

func TestGroupByAgainstOracle(t *testing.T) {
	oak, leg, tuples := seedIndexes(t)
	t1, t2 := int64(10), int64(30)

	// Brute-force oracle.
	wantCount := map[string]float64{}
	wantSum := map[string]float64{}
	wantMax := map[string]float64{}
	for _, tu := range tuples {
		if tu.Timestamp < t1 || tu.Timestamp >= t2 {
			continue
		}
		s := tu.Dims[0]
		wantCount[s]++
		wantSum[s] += tu.Metrics[0]
		if tu.Metrics[0] > wantMax[s] || wantCount[s] == 1 {
			wantMax[s] = math.Max(wantMax[s], tu.Metrics[0])
		}
	}

	for _, idx := range []interface {
		GroupBy(dim int, t1, t2 int64) []GroupResult
	}{oak, leg} {
		groups := idx.GroupBy(0, t1, t2)
		if len(groups) != len(wantCount) {
			t.Fatalf("groups = %d; want %d", len(groups), len(wantCount))
		}
		for _, g := range groups {
			if g.Aggs[0] != wantCount[g.DimValue] {
				t.Fatalf("%s count = %v; want %v", g.DimValue, g.Aggs[0], wantCount[g.DimValue])
			}
			if math.Abs(g.Aggs[1]-wantSum[g.DimValue]) > 1e-9 {
				t.Fatalf("%s sum = %v; want %v", g.DimValue, g.Aggs[1], wantSum[g.DimValue])
			}
			if g.Aggs[2] != wantMax[g.DimValue] {
				t.Fatalf("%s max = %v; want %v", g.DimValue, g.Aggs[2], wantMax[g.DimValue])
			}
		}
	}
}

func TestGroupByImplementationsAgree(t *testing.T) {
	oak, leg, _ := seedIndexes(t)
	for dim := 0; dim < 2; dim++ {
		a := oak.GroupBy(dim, 0, 50)
		b := leg.GroupBy(dim, 0, 50)
		if len(a) != len(b) {
			t.Fatalf("dim %d: %d vs %d groups", dim, len(a), len(b))
		}
		for i := range a {
			if a[i].DimValue != b[i].DimValue {
				t.Fatalf("dim %d group %d: %q vs %q", dim, i, a[i].DimValue, b[i].DimValue)
			}
			for j := range a[i].Aggs {
				if a[i].Aggs[j] != b[i].Aggs[j] {
					t.Fatalf("dim %d group %q agg %d: %v vs %v",
						dim, a[i].DimValue, j, a[i].Aggs[j], b[i].Aggs[j])
				}
			}
		}
	}
}

func TestTopN(t *testing.T) {
	oak, leg, _ := seedIndexes(t)
	// By sum of metric m, site-4 has the largest values (s*10+u).
	for _, idx := range []interface {
		TopN(dim, agg int, t1, t2 int64, k int) []GroupResult
	}{oak, leg} {
		top := idx.TopN(0, 1, 0, 50, 2)
		if len(top) != 2 {
			t.Fatalf("topN returned %d", len(top))
		}
		if top[0].DimValue != "site-4" || top[1].DimValue != "site-3" {
			t.Fatalf("topN order = %q, %q", top[0].DimValue, top[1].DimValue)
		}
		if top[0].Aggs[1] < top[1].Aggs[1] {
			t.Fatal("topN not sorted by aggregate")
		}
	}
	// k beyond the group count returns everything.
	if got := oak.TopN(0, 1, 0, 50, 100); len(got) != 5 {
		t.Fatalf("topN with large k = %d groups", len(got))
	}
}

func TestTimeseries(t *testing.T) {
	oak, leg, _ := seedIndexes(t)
	// 50 ticks, 15 tuples per tick; buckets of 10 → counts of 150 each.
	for _, idx := range []interface {
		Timeseries(t1, t2, bucket int64, agg int) []float64
	}{oak, leg} {
		counts := idx.Timeseries(0, 50, 10, 0)
		if len(counts) != 5 {
			t.Fatalf("buckets = %d", len(counts))
		}
		for i, c := range counts {
			if c != 150 {
				t.Fatalf("bucket %d count = %v; want 150", i, c)
			}
		}
	}
	// Empty range and zero bucket are safe.
	if out := oak.Timeseries(10, 10, 5, 0); out != nil {
		t.Fatal("empty range should return nil")
	}
	if out := oak.Timeseries(0, 50, 0, 0); out != nil {
		t.Fatal("zero bucket should return nil")
	}
	// A bucket with no data reads the identity (count 0): window
	// [45,55) holds ticks 45–49 (75 tuples), [55,65) holds none.
	sparse := oak.Timeseries(45, 65, 10, 0)
	if len(sparse) != 2 || sparse[0] != 75 || sparse[1] != 0 {
		t.Fatalf("sparse timeseries = %v; want [75 0]", sparse)
	}
}

func TestLegacyQueryTimeRangeParity(t *testing.T) {
	oak, leg, _ := seedIndexes(t)
	a := oak.QueryTimeRange(5, 25)
	b := leg.QueryTimeRange(5, 25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agg %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQueriesOnPlainIndexReturnNil(t *testing.T) {
	schema := querySchema()
	schema.Rollup = false
	oak, _ := NewIndex(schema, testOpts())
	defer oak.Close()
	leg, _ := NewLegacyIndex(schema)
	if oak.GroupBy(0, 0, 10) != nil || leg.GroupBy(0, 0, 10) != nil {
		t.Fatal("plain index GroupBy must return nil")
	}
	if oak.Timeseries(0, 10, 1, 0) != nil || leg.Timeseries(0, 10, 1, 0) != nil {
		t.Fatal("plain index Timeseries must return nil")
	}
}

// TestQueriesDuringIngest exercises §6's headline property: the index
// absorbs new data while serving queries in parallel. Aggregate readouts
// must be monotone (counts only grow) and never torn.
func TestQueriesDuringIngest(t *testing.T) {
	schema := querySchema()
	idx, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		gen := NewTupleGen(99, 3, []int{8, 20}, 1)
		for i := 0; i < 30000; i++ {
			if err := idx.Ingest(gen.Next()); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	var prevCount float64
	for {
		select {
		case <-done:
			// Final consistency: total count equals rows ingested.
			out := idx.QueryTimeRange(-1<<62, 1<<62)
			if int64(out[0]) != idx.Rows() {
				t.Fatalf("final count %v != rows %d", out[0], idx.Rows())
			}
			return
		default:
		}
		out := idx.QueryTimeRange(-1<<62, 1<<62)
		if out[0] < prevCount {
			t.Fatalf("count went backwards: %v < %v", out[0], prevCount)
		}
		prevCount = out[0]
		idx.TopN(0, 1, 0, 1<<30, 3)
		idx.Timeseries(0, 1000, 100, 0)
	}
}

func TestFilteredQueries(t *testing.T) {
	oak, leg, tuples := seedIndexes(t)
	seg, err := oak.Persist()
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: per-bucket counts restricted to site-2.
	want := make([]float64, 5)
	for _, tu := range tuples {
		if tu.Dims[0] == "site-2" {
			want[tu.Timestamp/10]++
		}
	}
	type filterable interface {
		TimeseriesWhere(t1, t2, bucket int64, agg, whereDim int, whereValue string) []float64
	}
	for _, idx := range []filterable{oak, leg, seg} {
		got := idx.TimeseriesWhere(0, 50, 10, 0, 0, "site-2")
		if len(got) != len(want) {
			t.Fatalf("buckets = %d", len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bucket %d = %v; want %v", i, got[i], want[i])
			}
		}
		// Unknown filter values match nothing.
		empty := idx.TimeseriesWhere(0, 50, 10, 0, 0, "site-nope")
		for i := range empty {
			if empty[i] != 0 {
				t.Fatalf("unknown filter bucket %d = %v", i, empty[i])
			}
		}
	}
	// GroupBy users within site-3: 3 users, 50 ticks each.
	for _, g := range [][]GroupResult{
		oak.GroupByWhere(1, 0, 50, 0, "site-3"),
		leg.GroupByWhere(1, 0, 50, 0, "site-3"),
		seg.GroupByWhere(1, 0, 50, 0, "site-3"),
	} {
		if len(g) != 3 {
			t.Fatalf("filtered groups = %d", len(g))
		}
		for _, gr := range g {
			if gr.Aggs[0] != 50 {
				t.Fatalf("group %q count = %v; want 50", gr.DimValue, gr.Aggs[0])
			}
		}
	}
}
