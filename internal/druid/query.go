package druid

import (
	"sort"
)

// Query layer: the three query families Druid serves from an incremental
// index while it ingests (§6 "a data structure that absorbs new data
// while serving queries in parallel"): timeseries (per-bucket
// aggregates), groupBy (aggregates per dimension value), and topN (the k
// heaviest dimension values by some aggregate). The I²-Oak read path
// streams over Oak buffers without materializing rows; the legacy path
// walks the skiplist.

// GroupResult holds one group's aggregate readouts.
type GroupResult struct {
	DimValue string
	Aggs     []float64
}

// rowVisitor abstracts the two indexes' range-scan machinery.
type rowVisitor func(t1, t2 int64, visit func(key []byte, row []byte))

// groupBy accumulates rows per code of dimension dim.
func groupBy(layout *rowLayout, scan rowVisitor, lookup func(uint32) (string, bool),
	dim int, t1, t2 int64) []GroupResult {
	acc := map[uint32][]byte{}
	scan(t1, t2, func(key []byte, row []byte) {
		code := decodeKeyDim(key, dim)
		g, ok := acc[code]
		if !ok {
			g = layout.zeroRow()
			acc[code] = g
		}
		layout.mergeRows(g, row)
	})
	out := make([]GroupResult, 0, len(acc))
	for code, g := range acc {
		name, _ := lookup(code)
		out = append(out, GroupResult{DimValue: name, Aggs: layout.readAll(g)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DimValue < out[j].DimValue })
	return out
}

// topN returns the k groups with the greatest readout of aggregator agg.
func topN(groups []GroupResult, agg, k int) []GroupResult {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Aggs[agg] != groups[j].Aggs[agg] {
			return groups[i].Aggs[agg] > groups[j].Aggs[agg]
		}
		return groups[i].DimValue < groups[j].DimValue
	})
	if len(groups) > k {
		groups = groups[:k]
	}
	return groups
}

// timeseries buckets [t1, t2) into windows of width bucket and returns
// aggregator agg's readout per window.
func timeseries(layout *rowLayout, scan rowVisitor, t1, t2, bucket int64, agg int) []float64 {
	if bucket <= 0 || t2 <= t1 {
		return nil
	}
	n := int((t2 - t1 + bucket - 1) / bucket)
	accs := make([][]byte, n)
	scan(t1, t2, func(key []byte, row []byte) {
		ts := decodeKeyTime(key)
		idx := int((ts - t1) / bucket)
		if idx < 0 || idx >= n {
			return
		}
		if accs[idx] == nil {
			accs[idx] = layout.zeroRow()
		}
		layout.mergeRows(accs[idx], row)
	})
	out := make([]float64, n)
	for i, a := range accs {
		if a == nil {
			a = layout.zeroRow()
		}
		out[i] = layout.read(a, agg)
	}
	return out
}

// scanRange is Index's rowVisitor, served from a map snapshot: the
// whole scan reads one frozen, mutually consistent view, so a groupBy,
// timeseries or segment persist is an atomic picture of the index even
// while ingestion continues. (The previous stream scan could mix row
// states from different instants — a tuple ingested mid-query might
// count in one bucket's aggregate and not another's.) key and row are
// owned by the snapshot cursor and valid only during the callback.
func (x *Index) scanRange(t1, t2 int64, visit func(key []byte, row []byte)) {
	lo := make([]byte, keySize(len(x.schema.Dimensions), false))
	hi := make([]byte, keySize(len(x.schema.Dimensions), false))
	encodeKey(lo, t1, make([]uint32, len(x.schema.Dimensions)), 0, false)
	encodeKey(hi, t2, make([]uint32, len(x.schema.Dimensions)), 0, false)
	sn := x.oak.Snapshot()
	defer sn.Close()
	sn.AscendRaw(lo, hi, func(key, row []byte) bool {
		visit(key, row)
		return true
	})
}

// GroupBy aggregates all rows with t1 ≤ timestamp < t2 per value of
// dimension dim, returning groups sorted by dimension value.
func (x *Index) GroupBy(dim int, t1, t2 int64) []GroupResult {
	if !x.schema.Rollup {
		return nil
	}
	return groupBy(x.layout, x.scanRange, x.dicts[dim].Lookup, dim, t1, t2)
}

// TopN returns the k values of dimension dim with the greatest readout
// of aggregator agg over [t1, t2).
func (x *Index) TopN(dim, agg int, t1, t2 int64, k int) []GroupResult {
	return topN(x.GroupBy(dim, t1, t2), agg, k)
}

// Timeseries buckets [t1, t2) into fixed windows and reads aggregator
// agg per window.
func (x *Index) Timeseries(t1, t2, bucket int64, agg int) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	return timeseries(x.layout, x.scanRange, t1, t2, bucket, agg)
}

// Legacy equivalents. The legacy index materializes each row into a flat
// state via the same layout so that query results are bit-identical with
// I²-Oak for identical input.

func (x *LegacyIndex) layout() *rowLayout { return newRowLayout(x.schema.Aggregators) }

func (x *LegacyIndex) scanRange(layout *rowLayout, t1, t2 int64, visit func(key []byte, row []byte)) {
	lo := make([]byte, keySize(len(x.schema.Dimensions), false))
	hi := make([]byte, keySize(len(x.schema.Dimensions), false))
	encodeKey(lo, t1, make([]uint32, len(x.schema.Dimensions)), 0, false)
	encodeKey(hi, t2, make([]uint32, len(x.schema.Dimensions)), 0, false)
	row := make([]byte, layout.size)
	x.list.Ascend(lo, hi, func(k []byte, r *legacyRow) bool {
		x.serializeRow(layout, r, row)
		visit(k, row)
		return true
	})
}

// serializeRow flattens a legacy row into the layout's binary form.
func (x *LegacyIndex) serializeRow(layout *rowLayout, r *legacyRow, dst []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(dst, layout.zeroTemplate())
	for i, a := range x.schema.Aggregators {
		st := dst[layout.offsets[i]:]
		switch a.Kind {
		case AggCount:
			putU64(st, r.counts[x.countSlot[i]])
		case AggSum, AggMin, AggMax:
			putFloat(st, r.floats[x.floatSlot[i]])
		case AggUniqueHLL:
			copy(st, r.hlls[x.hllSlot[i]].AppendState(nil))
		case AggQuantileP2:
			copy(st, r.p2s[x.p2Slot[i]].AppendState(nil))
		}
	}
}

// GroupBy aggregates per dimension value over [t1, t2).
func (x *LegacyIndex) GroupBy(dim int, t1, t2 int64) []GroupResult {
	if !x.schema.Rollup {
		return nil
	}
	layout := x.layout()
	scan := func(t1, t2 int64, visit func([]byte, []byte)) {
		x.scanRange(layout, t1, t2, visit)
	}
	return groupBy(layout, scan, x.dicts[dim].Lookup, dim, t1, t2)
}

// TopN returns the k heaviest dimension values by aggregator agg.
func (x *LegacyIndex) TopN(dim, agg int, t1, t2 int64, k int) []GroupResult {
	return topN(x.GroupBy(dim, t1, t2), agg, k)
}

// Timeseries buckets [t1, t2) and reads aggregator agg per window.
func (x *LegacyIndex) Timeseries(t1, t2, bucket int64, agg int) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	layout := x.layout()
	scan := func(t1, t2 int64, visit func([]byte, []byte)) {
		x.scanRange(layout, t1, t2, visit)
	}
	return timeseries(layout, scan, t1, t2, bucket, agg)
}

// QueryTimeRange for the legacy index (parity with Index.QueryTimeRange).
func (x *LegacyIndex) QueryTimeRange(t1, t2 int64) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	layout := x.layout()
	acc := layout.zeroRow()
	x.scanRange(layout, t1, t2, func(_ []byte, row []byte) {
		layout.mergeRows(acc, row)
	})
	return layout.readAll(acc)
}

// Filtered queries (Druid's dimension filter spec): restrict a query to
// rows whose dimension filterDim equals filterValue. Filtering happens
// on dictionary codes read straight from the serialized keys, so no
// strings are materialized during the scan.

// whereVisitor wraps a rowVisitor with a dimension-equality filter.
func whereVisitor(scan rowVisitor, dim int, code uint32, ok bool) rowVisitor {
	return func(t1, t2 int64, visit func(key []byte, row []byte)) {
		if !ok {
			return // the value was never ingested: nothing matches
		}
		scan(t1, t2, func(key []byte, row []byte) {
			if decodeKeyDim(key, dim) == code {
				visit(key, row)
			}
		})
	}
}

// TimeseriesWhere is Timeseries restricted to rows whose dimension
// whereDim equals whereValue.
func (x *Index) TimeseriesWhere(t1, t2, bucket int64, agg, whereDim int, whereValue string) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	code, ok := x.dicts[whereDim].lookupCode(whereValue)
	return timeseries(x.layout, whereVisitor(x.scanRange, whereDim, code, ok), t1, t2, bucket, agg)
}

// GroupByWhere is GroupBy over dim restricted by a filter on whereDim.
func (x *Index) GroupByWhere(dim int, t1, t2 int64, whereDim int, whereValue string) []GroupResult {
	if !x.schema.Rollup {
		return nil
	}
	code, ok := x.dicts[whereDim].lookupCode(whereValue)
	return groupBy(x.layout, whereVisitor(x.scanRange, whereDim, code, ok),
		x.dicts[dim].Lookup, dim, t1, t2)
}

// TimeseriesWhere for the legacy index.
func (x *LegacyIndex) TimeseriesWhere(t1, t2, bucket int64, agg, whereDim int, whereValue string) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	layout := x.layout()
	scan := func(t1, t2 int64, visit func([]byte, []byte)) {
		x.scanRange(layout, t1, t2, visit)
	}
	code, ok := x.dicts[whereDim].lookupCode(whereValue)
	return timeseries(layout, whereVisitor(scan, whereDim, code, ok), t1, t2, bucket, agg)
}

// GroupByWhere for the legacy index.
func (x *LegacyIndex) GroupByWhere(dim int, t1, t2 int64, whereDim int, whereValue string) []GroupResult {
	if !x.schema.Rollup {
		return nil
	}
	layout := x.layout()
	scan := func(t1, t2 int64, visit func([]byte, []byte)) {
		x.scanRange(layout, t1, t2, visit)
	}
	code, ok := x.dicts[whereDim].lookupCode(whereValue)
	return groupBy(layout, whereVisitor(scan, whereDim, code, ok), x.dicts[dim].Lookup, dim, t1, t2)
}

// TimeseriesWhere for frozen segments.
func (s *Segment) TimeseriesWhere(t1, t2, bucket int64, agg, whereDim int, whereValue string) []float64 {
	code, ok := s.dicts[whereDim].lookupCode(whereValue)
	return timeseries(s.layout, whereVisitor(s.scanRange, whereDim, code, ok), t1, t2, bucket, agg)
}

// GroupByWhere for frozen segments.
func (s *Segment) GroupByWhere(dim int, t1, t2 int64, whereDim int, whereValue string) []GroupResult {
	code, ok := s.dicts[whereDim].lookupCode(whereValue)
	return groupBy(s.layout, whereVisitor(s.scanRange, whereDim, code, ok),
		s.dicts[dim].Lookup, dim, t1, t2)
}
