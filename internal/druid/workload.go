package druid

import (
	"fmt"
	"math/rand/v2"
)

// TupleGen generates the synthetic tuple stream of §6's evaluation: the
// primary dimension is a monotonically advancing timestamp (so the
// workload is spatially local), secondary dimensions draw from bounded
// string vocabularies, and metrics are random floats. Rollup density is
// controlled by how many tuples share a timestamp bucket.
type TupleGen struct {
	rng        *rand.Rand
	ts         int64
	perBucket  int // tuples sharing each timestamp
	inBucket   int
	dimCards   []int // vocabulary size per secondary dimension
	numMetrics int
}

// NewTupleGen creates a generator. dimCards gives the vocabulary size of
// each secondary dimension; perBucket ≥ 1 controls rollup density.
func NewTupleGen(seed uint64, perBucket int, dimCards []int, numMetrics int) *TupleGen {
	if perBucket < 1 {
		perBucket = 1
	}
	return &TupleGen{
		rng:        rand.New(rand.NewPCG(seed, seed^0xabcdef)),
		perBucket:  perBucket,
		dimCards:   dimCards,
		numMetrics: numMetrics,
	}
}

// Next produces the next tuple.
func (g *TupleGen) Next() Tuple {
	if g.inBucket == g.perBucket {
		g.inBucket = 0
		g.ts++
	}
	g.inBucket++
	t := Tuple{
		Timestamp: g.ts,
		Dims:      make([]string, len(g.dimCards)),
		Metrics:   make([]float64, g.numMetrics),
	}
	for i, card := range g.dimCards {
		t.Dims[i] = fmt.Sprintf("dim%d-val%06d", i, int(g.rng.Uint64())%card)
	}
	for i := range t.Metrics {
		t.Metrics[i] = g.rng.Float64() * 1000
	}
	return t
}

// DefaultSchema returns the rollup schema used by the Fig. 5 experiments:
// two string dimensions, two metrics, and the paper's aggregate mix of
// plain counters plus sketches (count, sum, min, max, unique, p50).
func DefaultSchema(rollup bool) Schema {
	return Schema{
		Dimensions: []string{"site", "user"},
		Metrics:    []string{"latency", "bytes"},
		Aggregators: []AggregatorSpec{
			{Kind: AggCount},
			{Kind: AggSum, Metric: 0},
			{Kind: AggMin, Metric: 0},
			{Kind: AggMax, Metric: 0},
			{Kind: AggSum, Metric: 1},
			{Kind: AggUniqueHLL, Dim: 1, HLLPrecision: 9},
			{Kind: AggQuantileP2, Metric: 0, Quantile: 0.5},
		},
		Rollup: rollup,
	}
}
