package druid

import (
	"sync/atomic"

	"oakmap"
)

// Index is I²-Oak: the incremental index backed by an Oak map through its
// public zero-copy API, exactly as the paper's Druid prototype wires it
// (§6): the write path uses PutIfAbsentComputeIfPresent to update all of
// a row's aggregates atomically in one lambda; the read path is a
// lightweight facade over Oak buffers.
type Index struct {
	schema   Schema
	layout   *rowLayout // nil for plain indexes
	zeroTmpl []byte     // immutable identity row
	dicts    []*Dictionary
	oak      *oakmap.Map[[]byte, Tuple]
	zc       oakmap.ZeroCopyMap[[]byte, Tuple]

	rows     atomic.Int64 // ingested tuples
	rawBytes atomic.Int64 // raw data volume (Fig. 5c baseline)
	rowID    atomic.Uint64
}

// rowSerializer is the adaptation layer's value serializer (§6: "We
// implement an adaptation layer that controls the internal data layout
// and provides Oak with the appropriate lambda functions for
// serialization, deserialization, and in-situ compute"). Serializing a
// Tuple writes the identity row directly into Oak's off-heap buffer and
// folds the tuple in — no intermediate on-heap row is materialized.
type rowSerializer struct {
	x *Index
}

// SizeOf implements oakmap.Serializer.
func (s rowSerializer) SizeOf(t Tuple) int {
	if s.x.schema.Rollup {
		return s.x.layout.size
	}
	return 8 * len(t.Metrics)
}

// Serialize implements oakmap.Serializer.
func (s rowSerializer) Serialize(t Tuple, dst []byte) {
	if s.x.schema.Rollup {
		copy(dst, s.x.zeroTmpl)
		s.x.layout.update(dst, t)
		return
	}
	for i, m := range t.Metrics {
		putFloat(dst[8*i:], m)
	}
}

// Deserialize implements oakmap.Serializer. Rollup rows are aggregate
// states, not tuples, so there is no inverse mapping; the read path goes
// through the ZC buffers and rowLayout instead. Deserialize exists only
// to satisfy the interface and returns the zero Tuple.
func (s rowSerializer) Deserialize([]byte) Tuple { return Tuple{} }

// IndexOptions tunes the underlying Oak map.
type IndexOptions struct {
	ChunkCapacity int
	BlockSize     int
}

// NewIndex creates an I²-Oak for the given schema.
func NewIndex(schema Schema, opts *IndexOptions) (*Index, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	var o oakmap.Options
	if opts != nil {
		o.ChunkCapacity = opts.ChunkCapacity
		o.BlockSize = opts.BlockSize
	}
	idx := &Index{schema: schema}
	if schema.Rollup {
		idx.layout = newRowLayout(schema.Aggregators)
		idx.zeroTmpl = idx.layout.zeroRow()
	}
	idx.oak = oakmap.New[[]byte, Tuple](oakmap.BytesSerializer{}, rowSerializer{idx}, &o)
	idx.zc = idx.oak.ZC()
	for range schema.Dimensions {
		idx.dicts = append(idx.dicts, NewDictionary())
	}
	return idx, nil
}

// encode produces the tuple's index key.
func (x *Index) encode(t Tuple, rowID uint64) []byte {
	key := make([]byte, keySize(len(x.schema.Dimensions), !x.schema.Rollup))
	codes := make([]uint32, len(t.Dims))
	for i, d := range t.Dims {
		codes[i] = x.dicts[i].Code(d)
	}
	encodeKey(key, t.Timestamp, codes, rowID, !x.schema.Rollup)
	return key
}

// Ingest absorbs one tuple: for rollup indexes it creates the row if the
// key is absent or updates all aggregates in situ otherwise; for plain
// indexes it appends a raw row under a fresh row id.
func (x *Index) Ingest(t Tuple) error {
	x.rows.Add(1)
	x.rawBytes.Add(int64(t.RawSize()))
	if !x.schema.Rollup {
		key := x.encode(t, x.rowID.Add(1))
		return x.zc.Put(key, t)
	}
	key := x.encode(t, 0)
	return x.zc.PutIfAbsentComputeIfPresent(key, t, func(w oakmap.OakWBuffer) error {
		x.layout.update(w.Bytes(), t)
		return nil
	})
}

// Rows returns the number of ingested tuples.
func (x *Index) Rows() int64 { return x.rows.Load() }

// RawBytes returns the cumulative raw size of ingested tuples.
func (x *Index) RawBytes() int64 { return x.rawBytes.Load() }

// Cardinality returns the number of distinct keys currently indexed.
func (x *Index) Cardinality() int { return x.oak.Len() }

// OffHeapBytes returns the index's off-heap footprint.
func (x *Index) OffHeapBytes() int64 { return x.oak.Footprint() }

// StoredDataBytes returns the inherent size of the indexed data — the
// serialized keys plus row states, with no data-structure overhead. This
// is the "raw data" baseline of Fig. 5c: everything above it is metadata
// overhead (Oak's index and chunks, the dictionaries, heap headroom).
func (x *Index) StoredDataBytes() int64 {
	per := int64(keySize(len(x.schema.Dimensions), !x.schema.Rollup))
	if x.schema.Rollup {
		per += int64(x.layout.size)
	} else {
		per += int64(8 * len(x.schema.Metrics))
	}
	return per * int64(x.Cardinality())
}

// Get returns the aggregate readouts for an exact (timestamp, dims) key
// of a rollup index.
func (x *Index) Get(ts int64, dims []string) ([]float64, bool) {
	if !x.schema.Rollup {
		return nil, false
	}
	key := x.encode(Tuple{Timestamp: ts, Dims: dims}, 0)
	buf := x.zc.Get(key)
	if buf == nil {
		return nil, false
	}
	var out []float64
	err := buf.Read(func(row []byte) error {
		out = x.layout.readAll(row)
		return nil
	})
	if err != nil {
		return nil, false
	}
	return out, true
}

// QueryTimeRange combines all rollup rows with t1 ≤ timestamp < t2 into a
// single aggregate readout, streaming over Oak buffers without
// materializing rows (the I²-Oak read path).
func (x *Index) QueryTimeRange(t1, t2 int64) []float64 {
	if !x.schema.Rollup {
		return nil
	}
	acc := x.layout.zeroRow()
	lo := make([]byte, keySize(len(x.schema.Dimensions), false))
	hi := make([]byte, keySize(len(x.schema.Dimensions), false))
	encodeKey(lo, t1, make([]uint32, len(x.schema.Dimensions)), 0, false)
	encodeKey(hi, t2, make([]uint32, len(x.schema.Dimensions)), 0, false)
	x.zc.AscendStream(&lo, &hi, func(k, v *oakmap.OakRBuffer) bool {
		v.Read(func(row []byte) error {
			x.layout.mergeRows(acc, row)
			return nil
		})
		return true
	})
	return x.layout.readAll(acc)
}

// RecentKeys returns up to n most-recent keys' timestamps in descending
// time order — the Druid-style "latest data" query that exercises Oak's
// descending scans.
func (x *Index) RecentKeys(n int) []int64 {
	out := make([]int64, 0, n)
	x.zc.DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		k.Read(func(kb []byte) error {
			out = append(out, decodeKeyTime(kb))
			return nil
		})
		return len(out) < n
	})
	return out
}

// DimValue resolves a dimension codeword back to its string.
func (x *Index) DimValue(dim int, code uint32) (string, bool) {
	return x.dicts[dim].Lookup(code)
}

// Close releases the index's off-heap memory.
func (x *Index) Close() { x.oak.Close() }
