package druid

import (
	"bytes"
	"strings"
	"testing"
)

func TestSegmentSerializationRoundTrip(t *testing.T) {
	oak, _, _ := seedIndexes(t)
	seg, err := oak.Persist()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := seg.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes; buffer has %d", n, buf.Len())
	}
	back, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != seg.Len() || back.SourceRows() != seg.SourceRows() {
		t.Fatalf("row counts: %d/%d vs %d/%d",
			back.Len(), back.SourceRows(), seg.Len(), seg.SourceRows())
	}
	// Queries agree bit-for-bit.
	a := seg.GroupBy(0, 0, 50)
	b := back.GroupBy(0, 0, 50)
	if len(a) != len(b) {
		t.Fatalf("groups %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].DimValue != b[i].DimValue {
			t.Fatalf("group %d: %q vs %q", i, a[i].DimValue, b[i].DimValue)
		}
		for j := range a[i].Aggs {
			if a[i].Aggs[j] != b[i].Aggs[j] {
				t.Fatalf("group %q agg %d: %v vs %v",
					a[i].DimValue, j, a[i].Aggs[j], b[i].Aggs[j])
			}
		}
	}
	// Point lookup through the re-minted dictionaries.
	want, ok1 := seg.Get(7, []string{"site-1", "user-2"})
	got, ok2 := back.Get(7, []string{"site-1", "user-2"})
	if ok1 != ok2 {
		t.Fatalf("Get presence: %v vs %v", ok1, ok2)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Get agg %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestReadSegmentRejectsGarbage(t *testing.T) {
	for _, input := range []string{
		"",
		"NOTMAGIC",
		segmentMagic, // truncated after magic
		segmentMagic + strings.Repeat("\xff", 16),
	} {
		if _, err := ReadSegment(strings.NewReader(input)); err == nil {
			t.Fatalf("garbage %q accepted", input)
		}
	}
}

func TestBrokerMergesLiveAndSegments(t *testing.T) {
	schema := querySchema()
	// Three sources with disjoint time ranges: two frozen, one live.
	mkIndex := func(t1, t2 int64) *Index {
		idx, err := NewIndex(schema, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		for ts := t1; ts < t2; ts++ {
			for s := 0; s < 3; s++ {
				idx.Ingest(Tuple{
					Timestamp: ts,
					Dims:      []string{sname(s), "user-0"},
					Metrics:   []float64{float64(s + 1)},
				})
			}
		}
		return idx
	}
	old1 := mkIndex(0, 10)
	seg1, _ := old1.Persist()
	old1.Close()
	old2 := mkIndex(10, 20)
	seg2, _ := old2.Persist()
	old2.Close()
	live := mkIndex(20, 30)
	t.Cleanup(live.Close)

	broker, err := NewBroker(schema, seg1, seg2, live)
	if err != nil {
		t.Fatal(err)
	}
	// Full-range count: 30 ticks × 3 sites.
	out := broker.QueryTimeRange(0, 30)
	if out[0] != 90 {
		t.Fatalf("broker count = %v; want 90", out[0])
	}
	// Sum: per tick 1+2+3 = 6 → 180 total.
	if out[1] != 180 {
		t.Fatalf("broker sum = %v; want 180", out[1])
	}
	// Max across sources.
	if out[2] != 3 {
		t.Fatalf("broker max = %v; want 3", out[2])
	}
	// A range spanning the segment/live boundary.
	out = broker.QueryTimeRange(5, 25)
	if out[0] != 60 {
		t.Fatalf("boundary count = %v; want 60", out[0])
	}
	// GroupBy merges per-site counts across sources.
	groups := broker.GroupBy(0, 0, 30)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, g := range groups {
		if g.Aggs[0] != 30 {
			t.Fatalf("group %q count = %v; want 30", g.DimValue, g.Aggs[0])
		}
	}
	// Timeseries across the boundary: bucket of 10 → 30 counts each.
	ts := broker.Timeseries(0, 30, 10, 0)
	if len(ts) != 3 || ts[0] != 30 || ts[1] != 30 || ts[2] != 30 {
		t.Fatalf("broker timeseries = %v", ts)
	}
	// TopN by sum: site-2 ingests metric 3 per tick.
	top := broker.TopN(0, 1, 0, 30, 1)
	if len(top) != 1 || top[0].DimValue != "site-2" {
		t.Fatalf("broker topN = %+v", top)
	}
}

func sname(s int) string {
	return "site-" + string(rune('0'+s))
}

func TestBrokerValidation(t *testing.T) {
	bad := querySchema()
	bad.Rollup = false
	if _, err := NewBroker(bad); err != ErrNotRollup {
		t.Fatalf("plain-schema broker: %v", err)
	}
	bad = Schema{Metrics: []string{"m"}, Aggregators: []AggregatorSpec{{Kind: AggSum, Metric: 9}}, Rollup: true}
	if _, err := NewBroker(bad); err == nil {
		t.Fatal("invalid schema accepted")
	}
}
