package druid

import (
	"math"
	"sync"
	"testing"
)

func testOpts() *IndexOptions {
	return &IndexOptions{ChunkCapacity: 256, BlockSize: 1 << 20}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Code("apple")
	b := d.Code("banana")
	if a == b {
		t.Fatal("distinct strings share a code")
	}
	if d.Code("apple") != a {
		t.Fatal("code not stable")
	}
	if s, ok := d.Lookup(a); !ok || s != "apple" {
		t.Fatal("lookup failed")
	}
	if _, ok := d.Lookup(999); ok {
		t.Fatal("lookup of unknown code")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	var wg sync.WaitGroup
	codes := make([][]uint32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		codes[g] = make([]uint32, 100)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				codes[g][i] = d.Code(string(rune('a' + i%26)))
			}
		}(g)
	}
	wg.Wait()
	// All goroutines must have observed identical codes per string.
	for g := 1; g < 8; g++ {
		for i := 0; i < 100; i++ {
			if codes[g][i] != codes[0][i] {
				t.Fatalf("g%d saw different code for item %d", g, i)
			}
		}
	}
	if d.Len() != 26 {
		t.Fatalf("Len = %d; want 26", d.Len())
	}
}

func TestKeyEncodingOrder(t *testing.T) {
	k1 := make([]byte, keySize(2, false))
	k2 := make([]byte, keySize(2, false))
	encodeKey(k1, -5, []uint32{1, 2}, 0, false)
	encodeKey(k2, 3, []uint32{1, 2}, 0, false)
	if string(k1) >= string(k2) {
		t.Fatal("negative timestamp must sort before positive")
	}
	if decodeKeyTime(k1) != -5 || decodeKeyTime(k2) != 3 {
		t.Fatal("timestamp round trip")
	}
	if decodeKeyDim(k1, 0) != 1 || decodeKeyDim(k1, 1) != 2 {
		t.Fatal("dim code round trip")
	}
}

func TestSchemaValidation(t *testing.T) {
	s := DefaultSchema(true)
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	bad := Schema{Metrics: []string{"m"}, Aggregators: []AggregatorSpec{{Kind: AggSum, Metric: 5}}}
	if err := bad.validate(); err == nil {
		t.Fatal("expected validation error for out-of-range metric")
	}
	if _, err := NewIndex(bad, testOpts()); err == nil {
		t.Fatal("NewIndex accepted bad schema")
	}
	if _, err := NewLegacyIndex(bad); err == nil {
		t.Fatal("NewLegacyIndex accepted bad schema")
	}
}

// TestRollupAgreement ingests the same stream into I²-Oak and I²-legacy
// and checks that every aggregate readout matches (sketches included:
// both sides run the identical sketch algorithms).
func TestRollupAgreement(t *testing.T) {
	schema := DefaultSchema(true)
	oakIdx, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer oakIdx.Close()
	legIdx, err := NewLegacyIndex(schema)
	if err != nil {
		t.Fatal(err)
	}

	gen := NewTupleGen(7, 5, []int{20, 100}, 2)
	var tuples []Tuple
	for i := 0; i < 5000; i++ {
		tu := gen.Next()
		tuples = append(tuples, tu)
		if err := oakIdx.Ingest(tu); err != nil {
			t.Fatal(err)
		}
		if err := legIdx.Ingest(tu); err != nil {
			t.Fatal(err)
		}
	}
	if oakIdx.Cardinality() != legIdx.Cardinality() {
		t.Fatalf("cardinality %d vs %d", oakIdx.Cardinality(), legIdx.Cardinality())
	}
	if oakIdx.Rows() != 5000 || legIdx.Rows() != 5000 {
		t.Fatal("row counts")
	}
	checked := 0
	for _, tu := range tuples {
		a, ok1 := oakIdx.Get(tu.Timestamp, tu.Dims)
		b, ok2 := legIdx.Get(tu.Timestamp, tu.Dims)
		if !ok1 || !ok2 {
			t.Fatalf("lookup failed: %v %v", ok1, ok2)
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("aggregate %d mismatch: %v vs %v", i, a[i], b[i])
			}
		}
		checked++
		if checked > 500 {
			break
		}
	}
}

// TestRollupCorrectness checks the aggregates against exact values for a
// deterministic stream.
func TestRollupCorrectness(t *testing.T) {
	schema := Schema{
		Dimensions: []string{"d"},
		Metrics:    []string{"m"},
		Aggregators: []AggregatorSpec{
			{Kind: AggCount},
			{Kind: AggSum, Metric: 0},
			{Kind: AggMin, Metric: 0},
			{Kind: AggMax, Metric: 0},
		},
		Rollup: true,
	}
	idx, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i := 1; i <= 100; i++ {
		idx.Ingest(Tuple{Timestamp: 42, Dims: []string{"x"}, Metrics: []float64{float64(i)}})
	}
	got, ok := idx.Get(42, []string{"x"})
	if !ok {
		t.Fatal("key missing")
	}
	want := []float64{100, 5050, 1, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("agg %d = %v; want %v", i, got[i], want[i])
		}
	}
}

func TestPlainIndexKeepsAllRows(t *testing.T) {
	schema := DefaultSchema(false)
	idx, err := NewIndex(schema, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	// Identical tuples must NOT roll up in a plain index.
	tu := Tuple{Timestamp: 1, Dims: []string{"a", "b"}, Metrics: []float64{1, 2}}
	for i := 0; i < 50; i++ {
		idx.Ingest(tu)
	}
	if idx.Cardinality() != 50 {
		t.Fatalf("plain index cardinality = %d; want 50", idx.Cardinality())
	}
	leg, _ := NewLegacyIndex(schema)
	for i := 0; i < 50; i++ {
		leg.Ingest(tu)
	}
	if leg.Cardinality() != 50 {
		t.Fatalf("legacy plain cardinality = %d", leg.Cardinality())
	}
}

func TestQueryTimeRange(t *testing.T) {
	schema := Schema{
		Dimensions:  []string{"d"},
		Metrics:     []string{"m"},
		Aggregators: []AggregatorSpec{{Kind: AggCount}, {Kind: AggSum, Metric: 0}},
		Rollup:      true,
	}
	idx, _ := NewIndex(schema, testOpts())
	defer idx.Close()
	for ts := int64(0); ts < 100; ts++ {
		idx.Ingest(Tuple{Timestamp: ts, Dims: []string{"x"}, Metrics: []float64{1}})
		idx.Ingest(Tuple{Timestamp: ts, Dims: []string{"y"}, Metrics: []float64{2}})
	}
	out := idx.QueryTimeRange(10, 20)
	if out[0] != 20 { // 10 timestamps × 2 dims
		t.Fatalf("range count = %v; want 20", out[0])
	}
	if out[1] != 30 { // 10×(1+2)
		t.Fatalf("range sum = %v; want 30", out[1])
	}
}

func TestRecentKeysDescending(t *testing.T) {
	schema := DefaultSchema(true)
	idx, _ := NewIndex(schema, testOpts())
	defer idx.Close()
	leg, _ := NewLegacyIndex(schema)
	gen := NewTupleGen(1, 3, []int{10, 10}, 2)
	for i := 0; i < 3000; i++ {
		tu := gen.Next()
		idx.Ingest(tu)
		leg.Ingest(tu)
	}
	a := idx.RecentKeys(100)
	b := leg.RecentKeys(100)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := 1; i < len(a); i++ {
		if a[i] > a[i-1] {
			t.Fatal("oak recent keys not descending")
		}
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recent key %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConcurrentIngest(t *testing.T) {
	schema := DefaultSchema(true)
	idx, _ := NewIndex(schema, testOpts())
	defer idx.Close()
	var wg sync.WaitGroup
	const perG = 3000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := NewTupleGen(uint64(g+1), 4, []int{15, 50}, 2)
			for i := 0; i < perG; i++ {
				if err := idx.Ingest(gen.Next()); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if idx.Rows() != 4*perG {
		t.Fatalf("rows = %d", idx.Rows())
	}
	// The total count across all rows must equal the number of tuples
	// (no lost updates): compute via full time-range query.
	out := idx.QueryTimeRange(-1<<62, 1<<62)
	if int64(out[0]) != 4*perG {
		t.Fatalf("aggregated count %v != %d tuples", out[0], 4*perG)
	}
}

func TestMemoryAccounting(t *testing.T) {
	idx, _ := NewIndex(DefaultSchema(true), testOpts())
	defer idx.Close()
	gen := NewTupleGen(2, 2, []int{10, 10}, 2)
	for i := 0; i < 1000; i++ {
		idx.Ingest(gen.Next())
	}
	if idx.RawBytes() <= 0 || idx.OffHeapBytes() <= 0 {
		t.Fatal("accounting not populated")
	}
	if v, ok := idx.DimValue(0, 0); !ok || v == "" {
		t.Fatal("dim value lookup failed")
	}
}

func BenchmarkOakIngest(b *testing.B) {
	idx, _ := NewIndex(DefaultSchema(true), &IndexOptions{BlockSize: 8 << 20})
	defer idx.Close()
	gen := NewTupleGen(1, 4, []int{1000, 100000}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Ingest(gen.Next())
	}
}

func BenchmarkQueryTimeRange(b *testing.B) {
	idx, _ := NewIndex(DefaultSchema(true), &IndexOptions{BlockSize: 8 << 20})
	defer idx.Close()
	gen := NewTupleGen(1, 4, []int{100, 1000}, 2)
	for i := 0; i < 50000; i++ {
		idx.Ingest(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.QueryTimeRange(1000, 2000)
	}
}

func BenchmarkSegmentVsIndexScan(b *testing.B) {
	idx, _ := NewIndex(querySchema(), &IndexOptions{BlockSize: 8 << 20})
	defer idx.Close()
	gen := NewTupleGen(1, 4, []int{100, 1000}, 1)
	for i := 0; i < 50000; i++ {
		idx.Ingest(gen.Next())
	}
	seg, _ := idx.Persist()
	b.Run("live-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.GroupBy(0, 0, 1<<40)
		}
	})
	b.Run("frozen-segment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seg.GroupBy(0, 0, 1<<40)
		}
	})
}
