// Package druid re-implements the component the paper's case study (§6)
// re-implements: Druid's Incremental Index (I²) — the in-memory data
// structure that absorbs new data while serving queries in parallel.
//
// An I² maps multi-dimensional keys (timestamp + dictionary-encoded
// string dimensions) to values. In a *rollup* index the value is a row
// of materialized aggregates (counters, sums, min/max, and sketches for
// unique counts and quantiles); in a *plain* index the value is the raw
// tuple and keys are disambiguated with a row id. Two implementations
// are provided:
//
//   - Index (I²-Oak): the adaptation layer over oakmap's ZC API. The
//     write path uses PutIfAbsentComputeIfPresent to update all
//     aggregates of a row atomically in a single lambda, off-heap.
//   - LegacyIndex (I²-legacy): the JDK-style baseline — a concurrent
//     skiplist holding one on-heap aggregate object per row.
package druid

import (
	"encoding/binary"
	"fmt"

	"oakmap/internal/sketch"
)

// AggKind enumerates rollup aggregator types.
type AggKind int

// Aggregator kinds. Count needs no input metric; Sum/Min/Max aggregate
// one metric; UniqueHLL sketches one dimension; QuantileP2 sketches one
// metric.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggUniqueHLL
	AggQuantileP2
)

// AggregatorSpec describes one materialized aggregate of a rollup row.
type AggregatorSpec struct {
	Kind AggKind
	// Metric is the input metric index for Sum/Min/Max/QuantileP2.
	Metric int
	// Dim is the input dimension index for UniqueHLL.
	Dim int
	// HLLPrecision configures UniqueHLL (default 9 → 512B state).
	HLLPrecision uint8
	// Quantile configures QuantileP2 (default 0.5).
	Quantile float64
}

func (a AggregatorSpec) normalized() AggregatorSpec {
	if a.Kind == AggUniqueHLL && a.HLLPrecision == 0 {
		a.HLLPrecision = 9
	}
	if a.Kind == AggQuantileP2 && a.Quantile == 0 {
		a.Quantile = 0.5
	}
	return a
}

// stateSize returns the serialized size of the aggregator's state.
func (a AggregatorSpec) stateSize() int {
	switch a.Kind {
	case AggCount, AggSum, AggMin, AggMax:
		return 8
	case AggUniqueHLL:
		return sketch.HLLStateSize(a.HLLPrecision)
	case AggQuantileP2:
		return sketch.P2StateSize
	default:
		panic(fmt.Sprintf("druid: unknown aggregator kind %d", a.Kind))
	}
}

// Schema describes an index's dimensions, metrics and (for rollup
// indexes) aggregators.
type Schema struct {
	Dimensions  []string // dimension names; values are strings
	Metrics     []string // metric names; values are float64
	Aggregators []AggregatorSpec
	// Rollup selects the index mode: rollup (aggregate rows) or plain
	// (raw rows with a row-id key suffix).
	Rollup bool
}

func (s *Schema) validate() error {
	for i, a := range s.Aggregators {
		switch a.Kind {
		case AggSum, AggMax, AggMin, AggQuantileP2:
			if a.Metric < 0 || a.Metric >= len(s.Metrics) {
				return fmt.Errorf("druid: aggregator %d references metric %d of %d", i, a.Metric, len(s.Metrics))
			}
		case AggUniqueHLL:
			if a.Dim < 0 || a.Dim >= len(s.Dimensions) {
				return fmt.Errorf("druid: aggregator %d references dim %d of %d", i, a.Dim, len(s.Dimensions))
			}
		case AggCount:
		default:
			return fmt.Errorf("druid: aggregator %d has unknown kind", i)
		}
	}
	return nil
}

// Tuple is one incoming data record.
type Tuple struct {
	Timestamp int64
	Dims      []string
	Metrics   []float64
}

// RawSize estimates the tuple's raw data size in bytes (timestamp +
// dimension strings + metrics), used for Fig. 5c's raw-data baseline.
func (t Tuple) RawSize() int {
	n := 8 + 8*len(t.Metrics)
	for _, d := range t.Dims {
		n += len(d)
	}
	return n
}

// keySize is the encoded key length: biased big-endian timestamp plus one
// 4-byte dictionary code per dimension (plus an 8-byte row id for plain
// indexes). Time is always the primary dimension (§6).
func keySize(numDims int, plain bool) int {
	n := 8 + 4*numDims
	if plain {
		n += 8
	}
	return n
}

// encodeKey writes the tuple's key into dst.
func encodeKey(dst []byte, ts int64, codes []uint32, rowID uint64, plain bool) {
	binary.BigEndian.PutUint64(dst, uint64(ts)^(1<<63)) // order-preserving bias
	off := 8
	for _, c := range codes {
		binary.BigEndian.PutUint32(dst[off:], c)
		off += 4
	}
	if plain {
		binary.BigEndian.PutUint64(dst[off:], rowID)
	}
}

// decodeKeyTime extracts the timestamp from an encoded key.
func decodeKeyTime(key []byte) int64 {
	return int64(binary.BigEndian.Uint64(key) ^ (1 << 63))
}

// decodeKeyDim extracts the i-th dimension code from an encoded key.
func decodeKeyDim(key []byte, i int) uint32 {
	return binary.BigEndian.Uint32(key[8+4*i:])
}
