package druid

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file extends the case study past the paper's cut-off (§6: "the
// data's further lifecycle is beyond the scope of this discussion") with
// the two pieces a deployment needs next: segments that round-trip
// through storage, and a broker that answers queries across the live
// index plus any number of frozen segments — Druid's actual topology.

const segmentMagic = "OAKSEG01"

// WriteTo serializes the segment: header, schema shape, dictionaries,
// then the flat key/row arrays. The format is self-contained: ReadSegment
// rebuilds a queryable segment from it alone.
func (s *Segment) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := &countingWriter{w: bw}
	writeStr := func(str string) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(str)))
		n.Write(b[:])
		io.WriteString(n, str)
	}
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		n.Write(b[:])
	}
	io.WriteString(n, segmentMagic)
	// Schema.
	writeU64(uint64(len(s.schema.Dimensions)))
	for _, d := range s.schema.Dimensions {
		writeStr(d)
	}
	writeU64(uint64(len(s.schema.Metrics)))
	for _, m := range s.schema.Metrics {
		writeStr(m)
	}
	writeU64(uint64(len(s.schema.Aggregators)))
	for _, a := range s.schema.Aggregators {
		a = a.normalized()
		writeU64(uint64(a.Kind))
		writeU64(uint64(a.Metric))
		writeU64(uint64(a.Dim))
		writeU64(uint64(a.HLLPrecision))
		writeU64(binary.LittleEndian.Uint64(floatBytes(a.Quantile)))
	}
	// Dictionaries (code order == slice order, so codes are preserved).
	for _, d := range s.dicts {
		d.mu.RLock()
		writeU64(uint64(len(d.reverse)))
		for _, v := range d.reverse {
			writeStr(v)
		}
		d.mu.RUnlock()
	}
	// Data.
	writeU64(uint64(s.n))
	writeU64(uint64(s.rawRows))
	n.Write(s.keys)
	n.Write(s.rows)
	if err := bw.Flush(); err != nil {
		return n.n, err
	}
	return n.n, n.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func floatBytes(f float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(appendFloat(nil, f)))
	return b[:]
}

// ErrBadSegment reports a malformed serialized segment.
var ErrBadSegment = errors.New("druid: malformed segment")

// ReadSegment deserializes a segment written by WriteTo.
func ReadSegment(r io.Reader) (*Segment, error) {
	br := bufio.NewReader(r)
	readN := func(n int) ([]byte, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
		}
		return b, nil
	}
	readU64 := func() (uint64, error) {
		b, err := readN(8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b), nil
	}
	readStr := func() (string, error) {
		b, err := readN(4)
		if err != nil {
			return "", err
		}
		sb, err := readN(int(binary.LittleEndian.Uint32(b)))
		if err != nil {
			return "", err
		}
		return string(sb), nil
	}

	magic, err := readN(len(segmentMagic))
	if err != nil || string(magic) != segmentMagic {
		return nil, ErrBadSegment
	}
	var schema Schema
	schema.Rollup = true
	nd, err := readU64()
	if err != nil || nd > 1<<16 {
		return nil, ErrBadSegment
	}
	for i := 0; i < int(nd); i++ {
		s, err := readStr()
		if err != nil {
			return nil, err
		}
		schema.Dimensions = append(schema.Dimensions, s)
	}
	nm, err := readU64()
	if err != nil || nm > 1<<16 {
		return nil, ErrBadSegment
	}
	for i := 0; i < int(nm); i++ {
		s, err := readStr()
		if err != nil {
			return nil, err
		}
		schema.Metrics = append(schema.Metrics, s)
	}
	na, err := readU64()
	if err != nil || na > 1<<16 {
		return nil, ErrBadSegment
	}
	for i := 0; i < int(na); i++ {
		var a AggregatorSpec
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		a.Kind = AggKind(v)
		if v, err = readU64(); err != nil {
			return nil, err
		}
		a.Metric = int(v)
		if v, err = readU64(); err != nil {
			return nil, err
		}
		a.Dim = int(v)
		if v, err = readU64(); err != nil {
			return nil, err
		}
		a.HLLPrecision = uint8(v)
		if v, err = readU64(); err != nil {
			return nil, err
		}
		a.Quantile = getFloat(binary.LittleEndian.AppendUint64(nil, v))
		schema.Aggregators = append(schema.Aggregators, a)
	}
	if err := schema.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	seg := &Segment{
		schema: schema,
		layout: newRowLayout(schema.Aggregators),
		keySz:  keySize(len(schema.Dimensions), false),
	}
	seg.rowSz = seg.layout.size
	for range schema.Dimensions {
		d := NewDictionary()
		nv, err := readU64()
		if err != nil || nv > 1<<31 {
			return nil, ErrBadSegment
		}
		for i := 0; i < int(nv); i++ {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			d.Code(s) // codes re-mint in original order
		}
		seg.dicts = append(seg.dicts, d)
	}
	rows, err := readU64()
	if err != nil || rows > 1<<40 {
		return nil, ErrBadSegment
	}
	raw, err := readU64()
	if err != nil {
		return nil, err
	}
	seg.n = int(rows)
	seg.rawRows = int64(raw)
	if seg.keys, err = readN(seg.n * seg.keySz); err != nil {
		return nil, err
	}
	if seg.rows, err = readN(seg.n * seg.rowSz); err != nil {
		return nil, err
	}
	return seg, nil
}

// QuerySource is anything the broker can aggregate over: a live Index, a
// LegacyIndex, or a frozen Segment.
type QuerySource interface {
	GroupBy(dim int, t1, t2 int64) []GroupResult
	Timeseries(t1, t2, bucket int64, agg int) []float64
	QueryTimeRange(t1, t2 int64) []float64
}

// Broker fans a query out over a live index plus historical segments and
// merges the partial results — the Druid broker/historical topology in
// miniature. Scalar aggregates merge exactly; sketch readouts merge
// approximately (estimates are summed, which is correct for disjoint
// time ranges, the normal segment layout).
type Broker struct {
	layout  *rowLayout
	sources []QuerySource
}

// NewBroker creates a broker over sources sharing one schema.
func NewBroker(schema Schema, sources ...QuerySource) (*Broker, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	if !schema.Rollup {
		return nil, ErrNotRollup
	}
	return &Broker{layout: newRowLayout(schema.Aggregators), sources: sources}, nil
}

// mergeScalars folds partial aggregate readouts (count/sum add; min/max
// pick; sketch estimates add — exact for disjoint sources).
func (b *Broker) mergeScalars(acc, part []float64) {
	for i, spec := range b.layout.specs {
		switch spec.Kind {
		case AggCount, AggSum, AggUniqueHLL:
			acc[i] += part[i]
		case AggMin:
			if part[i] < acc[i] {
				acc[i] = part[i]
			}
		case AggMax:
			if part[i] > acc[i] {
				acc[i] = part[i]
			}
		case AggQuantileP2:
			// Quantiles are not mergeable from readouts; keep the part
			// with data (sources covering disjoint ranges rarely clash).
			if part[i] != 0 {
				acc[i] = part[i]
			}
		}
	}
}

func (b *Broker) zeroScalars() []float64 {
	return b.layout.readAll(b.layout.zeroTemplate())
}

// QueryTimeRange merges the time-range aggregate across all sources.
func (b *Broker) QueryTimeRange(t1, t2 int64) []float64 {
	acc := b.zeroScalars()
	for _, s := range b.sources {
		b.mergeScalars(acc, s.QueryTimeRange(t1, t2))
	}
	return acc
}

// Timeseries merges per-bucket aggregates across all sources.
func (b *Broker) Timeseries(t1, t2, bucket int64, agg int) []float64 {
	var out []float64
	for _, s := range b.sources {
		part := s.Timeseries(t1, t2, bucket, agg)
		if out == nil {
			out = make([]float64, len(part))
			zero := b.zeroScalars()
			for i := range out {
				out[i] = zero[agg]
			}
		}
		for i := range part {
			acc := b.zeroScalars()
			acc[agg] = out[i]
			p := b.zeroScalars()
			p[agg] = part[i]
			b.mergeScalars(acc, p)
			out[i] = acc[agg]
		}
	}
	return out
}

// GroupBy merges per-group aggregates across all sources.
func (b *Broker) GroupBy(dim int, t1, t2 int64) []GroupResult {
	merged := map[string][]float64{}
	for _, s := range b.sources {
		for _, g := range s.GroupBy(dim, t1, t2) {
			if acc, ok := merged[g.DimValue]; ok {
				b.mergeScalars(acc, g.Aggs)
			} else {
				acc = b.zeroScalars()
				b.mergeScalars(acc, g.Aggs)
				merged[g.DimValue] = acc
			}
		}
	}
	out := make([]GroupResult, 0, len(merged))
	for name, aggs := range merged {
		out = append(out, GroupResult{DimValue: name, Aggs: aggs})
	}
	sortGroups(out)
	return out
}

// TopN returns the k heaviest groups by aggregator agg across sources.
func (b *Broker) TopN(dim, agg int, t1, t2 int64, k int) []GroupResult {
	return topN(b.GroupBy(dim, t1, t2), agg, k)
}

func sortGroups(gs []GroupResult) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].DimValue < gs[j-1].DimValue; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}
