package druid

import (
	"bytes"
	"errors"
	"sort"
)

// Segment is the immutable artifact an I² turns into when it fills up
// (§6: "Once an I² fills up, its data gets reorganized and persisted,
// and the I² is disposed"). Keys and rows are packed into two flat,
// pointer-free arrays — the same GC-friendly representation Oak uses,
// now sorted and frozen. Segments answer the same query families as the
// live index.
type Segment struct {
	schema  Schema
	layout  *rowLayout
	keySz   int
	rowSz   int
	n       int
	keys    []byte // n × keySz, ascending
	rows    []byte // n × rowSz
	dicts   []*Dictionary
	rawRows int64
}

// ErrNotRollup is returned when persisting a plain index as a rollup
// segment is attempted (plain indexes persist raw rows instead).
var ErrNotRollup = errors.New("druid: segment persistence requires a rollup index")

// Persist freezes the index's current contents into a Segment. The
// caller typically Closes the index afterwards, returning its off-heap
// blocks to the pool — completing the paper's I² lifecycle. Persisting
// concurrently with ingestion yields a consistent-enough snapshot (the
// usual non-atomic scan guarantees).
func (x *Index) Persist() (*Segment, error) {
	if !x.schema.Rollup {
		return nil, ErrNotRollup
	}
	s := &Segment{
		schema:  x.schema,
		layout:  x.layout,
		keySz:   keySize(len(x.schema.Dimensions), false),
		rowSz:   x.layout.size,
		dicts:   x.dicts,
		rawRows: x.Rows(),
	}
	x.scanRange(-1<<62, 1<<62, func(key []byte, row []byte) {
		s.keys = append(s.keys, key...)
		s.rows = append(s.rows, row...)
		s.n++
	})
	return s, nil
}

// Persist freezes a legacy index into the same Segment format, so
// segments from either implementation are interchangeable downstream.
func (x *LegacyIndex) Persist() (*Segment, error) {
	if !x.schema.Rollup {
		return nil, ErrNotRollup
	}
	layout := x.layout()
	s := &Segment{
		schema:  x.schema,
		layout:  layout,
		keySz:   keySize(len(x.schema.Dimensions), false),
		rowSz:   layout.size,
		dicts:   x.dicts,
		rawRows: x.Rows(),
	}
	x.scanRange(layout, -1<<62, 1<<62, func(key []byte, row []byte) {
		s.keys = append(s.keys, key...)
		s.rows = append(s.rows, row...)
		s.n++
	})
	return s, nil
}

// Len returns the number of rows in the segment.
func (s *Segment) Len() int { return s.n }

// SourceRows returns the number of raw tuples the source index ingested.
func (s *Segment) SourceRows() int64 { return s.rawRows }

// SizeBytes returns the segment's flat-array size.
func (s *Segment) SizeBytes() int64 { return int64(len(s.keys) + len(s.rows)) }

func (s *Segment) keyAt(i int) []byte { return s.keys[i*s.keySz : (i+1)*s.keySz] }
func (s *Segment) rowAt(i int) []byte { return s.rows[i*s.rowSz : (i+1)*s.rowSz] }

// search returns the first row index whose key is ≥ key.
func (s *Segment) search(key []byte) int {
	return sort.Search(s.n, func(i int) bool {
		return bytes.Compare(s.keyAt(i), key) >= 0
	})
}

// Get returns the aggregate readouts for an exact (timestamp, dims) key.
func (s *Segment) Get(ts int64, dims []string) ([]float64, bool) {
	key := make([]byte, s.keySz)
	codes := make([]uint32, len(dims))
	for i, d := range dims {
		// Frozen segments never mint new codes: unseen values miss.
		c, ok := s.dicts[i].lookupCode(d)
		if !ok {
			return nil, false
		}
		codes[i] = c
	}
	encodeKey(key, ts, codes, 0, false)
	i := s.search(key)
	if i >= s.n || !bytes.Equal(s.keyAt(i), key) {
		return nil, false
	}
	return s.layout.readAll(s.rowAt(i)), true
}

// scanRange visits rows with t1 ≤ timestamp < t2 (the Segment's
// rowVisitor, shared with the query helpers).
func (s *Segment) scanRange(t1, t2 int64, visit func(key []byte, row []byte)) {
	lo := make([]byte, s.keySz)
	encodeKey(lo, t1, make([]uint32, len(s.schema.Dimensions)), 0, false)
	for i := s.search(lo); i < s.n; i++ {
		k := s.keyAt(i)
		if decodeKeyTime(k) >= t2 {
			return
		}
		visit(k, s.rowAt(i))
	}
}

// GroupBy aggregates per dimension value over [t1, t2).
func (s *Segment) GroupBy(dim int, t1, t2 int64) []GroupResult {
	return groupBy(s.layout, s.scanRange, s.dicts[dim].Lookup, dim, t1, t2)
}

// TopN returns the k heaviest dimension values by aggregator agg.
func (s *Segment) TopN(dim, agg int, t1, t2 int64, k int) []GroupResult {
	return topN(s.GroupBy(dim, t1, t2), agg, k)
}

// Timeseries buckets [t1, t2) and reads aggregator agg per window.
func (s *Segment) Timeseries(t1, t2, bucket int64, agg int) []float64 {
	return timeseries(s.layout, s.scanRange, t1, t2, bucket, agg)
}

// QueryTimeRange combines all rows in [t1, t2) into one readout.
func (s *Segment) QueryTimeRange(t1, t2 int64) []float64 {
	acc := s.layout.zeroRow()
	s.scanRange(t1, t2, func(_ []byte, row []byte) {
		s.layout.mergeRows(acc, row)
	})
	return s.layout.readAll(acc)
}

// lookupCode resolves a string to its existing code without minting.
func (d *Dictionary) lookupCode(s string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.codes[s]
	return c, ok
}
