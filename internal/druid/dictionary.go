package druid

import "sync"

// Dictionary maps variable-size string dimension values to fixed numeric
// codewords, as Druid's I² does to save space (§6: "variable-size (e.g.,
// string) dimensions are mapped to numeric codewords, through auxiliary
// dynamic dictionaries"). Dictionaries stay on-heap in both index
// implementations, like the paper's prototype.
type Dictionary struct {
	mu      sync.RWMutex
	codes   map[string]uint32
	reverse []string
}

// NewDictionary creates an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{codes: make(map[string]uint32)}
}

// Code returns the codeword for s, assigning the next free code on first
// sight. Safe for concurrent use.
func (d *Dictionary) Code(s string) uint32 {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.codes[s]; ok {
		return c
	}
	c = uint32(len(d.reverse))
	d.codes[s] = c
	d.reverse = append(d.reverse, s)
	return c
}

// Lookup returns the string for a codeword.
func (d *Dictionary) Lookup(code uint32) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(code) >= len(d.reverse) {
		return "", false
	}
	return d.reverse[code], true
}

// Len returns the number of distinct values seen.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.reverse)
}
