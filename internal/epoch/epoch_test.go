package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oakmap/internal/faultpoint"
)

// collectDomain returns a domain whose frees append into a recording
// slice guarded by mu.
func collectDomain() (*Domain, func() []Retired) {
	var mu sync.Mutex
	var freed []Retired
	d := NewDomain(func(items []Retired) {
		mu.Lock()
		freed = append(freed, items...)
		mu.Unlock()
	})
	return d, func() []Retired {
		mu.Lock()
		defer mu.Unlock()
		return append([]Retired(nil), freed...)
	}
}

func TestRetireDrainsAfterFullCycle(t *testing.T) {
	d, freed := collectDomain()
	d.Retire(Retired{Kind: 1, Val: 42}, 8)
	if got := len(freed()); got != 0 {
		t.Fatalf("freed %d items before any advance", got)
	}
	// Three advances elapse the grace period for epoch-0 retirements.
	for i := 0; i < buckets; i++ {
		if !d.Advance() {
			t.Fatalf("advance %d failed with no pinned readers", i)
		}
	}
	f := freed()
	if len(f) != 1 || f[0].Val != 42 || f[0].Kind != 1 {
		t.Fatalf("freed = %+v; want the one retired item", f)
	}
	if st := d.Stats(); st.LimboItems != 0 || st.LimboBytes != 0 {
		t.Fatalf("limbo not empty after drain: %+v", st)
	}
}

func TestPinBlocksReclamation(t *testing.T) {
	d, freed := collectDomain()
	g := d.Pin()
	d.Retire(Retired{Val: 7}, 8)
	// The pinned reader blocks the second advance (it stays at epoch 0),
	// so the item retired at epoch 0 can never drain.
	d.TryAdvance() // 0→1 may succeed: the reader is at the current epoch
	for i := 0; i < 5; i++ {
		if d.TryAdvance() {
			t.Fatalf("advance %d succeeded past a reader pinned at epoch 0", i)
		}
	}
	if got := len(freed()); got != 0 {
		t.Fatalf("freed %d items while a guard from the retire epoch was pinned", got)
	}
	g.Unpin()
	if !d.Quiesce() {
		t.Fatal("Quiesce failed after the guard unpinned")
	}
	if got := len(freed()); got != 1 {
		t.Fatalf("freed %d items after quiesce; want 1", got)
	}
}

func TestQuiesceEmptiesLimbo(t *testing.T) {
	d, freed := collectDomain()
	for i := uint64(0); i < 100; i++ {
		d.Retire(Retired{Val: i}, 8)
		if i%3 == 0 {
			d.Advance() // spread retirements across epochs/buckets
		}
	}
	if !d.Quiesce() {
		t.Fatal("Quiesce failed with no readers")
	}
	if got := len(freed()); got != 100 {
		t.Fatalf("freed %d items; want 100", got)
	}
	if st := d.Stats(); st.LimboItems != 0 {
		t.Fatalf("LimboItems = %d after quiesce", st.LimboItems)
	}
}

func TestThresholdTriggersAdvance(t *testing.T) {
	d, freed := collectDomain()
	d.SetLimboThreshold(16)
	// Without any explicit Advance call, sheer retire volume must cycle
	// the epoch and start draining.
	for i := uint64(0); i < 1000; i++ {
		d.Retire(Retired{Val: i}, 8)
	}
	if got := len(freed()); got == 0 {
		t.Fatal("no drains after 1000 retires with threshold 16")
	}
	if st := d.Stats(); st.Advances == 0 {
		t.Fatal("no advances recorded")
	}
}

func TestPinSlotReuseAndNesting(t *testing.T) {
	d, _ := collectDomain()
	g1 := d.Pin()
	g2 := d.Pin() // nested pin must get an independent slot
	if g1.s == g2.s {
		t.Fatal("nested pins shared a slot")
	}
	if st := d.Stats(); st.Pinned != 2 {
		t.Fatalf("Pinned = %d; want 2", st.Pinned)
	}
	g2.Unpin()
	g1.Unpin()
	if st := d.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after unpin; want 0", st.Pinned)
	}
	var zero Guard
	zero.Unpin() // must be a no-op
}

// TestNeverFreeWhileReachable is the core safety property under load:
// concurrent readers "read" resources through a shared table while
// writers unlink and retire them; a freed-while-reachable bug surfaces
// as a read of an item whose free already ran.
func TestNeverFreeWhileReachable(t *testing.T) {
	const items = 1 << 12
	var freedAt [items]atomic.Bool
	d := NewDomain(func(batch []Retired) {
		for _, r := range batch {
			freedAt[r.Val].Store(true)
		}
	})
	d.SetLimboThreshold(32)

	var table [items]atomic.Bool // true = linked (reachable)
	for i := range table {
		table[i].Store(true)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := d.Pin()
				i = (i*31 + 7) % items
				if table[i].Load() { // reachable under the pin...
					if freedAt[i].Load() { // ...must imply not freed
						violations.Add(1)
					}
				}
				g.Unpin()
			}
		}(r)
	}
	for i := 0; i < items; i++ {
		if table[i].CompareAndSwap(true, false) { // unlink
			d.Retire(Retired{Val: uint64(i)}, 8)
		}
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reads of a freed-but-reachable item", v)
	}
	if !d.Quiesce() {
		t.Fatal("final quiesce failed")
	}
	for i := range freedAt {
		if !freedAt[i].Load() {
			t.Fatalf("item %d never freed after quiesce", i)
		}
	}
}

// TestDrainPrecedesPublish pins down the advance ordering that makes
// Retire race-free: the limbo bucket must be privatized while the global
// epoch still reads its pre-advance value. Publishing the new epoch
// first would open a window where a concurrent Retire loads the new
// epoch and appends into the very bucket being drained — freeing the
// resource with zero grace period.
func TestDrainPrecedesPublish(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	d, freed := collectDomain()
	d.Retire(Retired{Val: 1}, 8) // epoch 0 → bucket 0
	if !d.Advance() || !d.Advance() {
		t.Fatal("setup advances failed")
	}
	// global == 2; the next advance drains bucket 0 and publishes 3.
	var epochAtDrain atomic.Uint64
	if err := faultpoint.Arm("epoch/drain", faultpoint.Hook{Decide: func(int64) bool {
		epochAtDrain.Store(d.global.Load())
		return false
	}}); err != nil {
		t.Fatal(err)
	}
	if !d.Advance() {
		t.Fatal("draining advance failed")
	}
	if got := len(freed()); got != 1 {
		t.Fatalf("freed %d items; want 1", got)
	}
	if e := epochAtDrain.Load(); e != 2 {
		t.Fatalf("bucket privatized at global epoch %d; want 2 (drain must precede publish)", e)
	}
}

// TestLateRetireNotFreedByInFlightAdvance parks an advance mid-drain and
// retires a resource into the domain: the late retirement must land in
// the current epoch's bucket, not the one being drained, and must only
// be freed after a full grace cycle.
func TestLateRetireNotFreedByInFlightAdvance(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	d, freed := collectDomain()
	d.Retire(Retired{Val: 1}, 8) // epoch 0 → bucket 0
	if !d.Advance() || !d.Advance() {
		t.Fatal("setup advances failed")
	}
	gate := faultpoint.NewGate()
	if err := faultpoint.Arm("epoch/drain", gate.Hook(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	go func() { done <- d.Advance() }()
	if !gate.WaitArrival(5 * time.Second) {
		t.Fatal("advance never reached the drain point")
	}
	d.Retire(Retired{Val: 2}, 8) // races the in-flight advance
	gate.Open()
	if !<-done {
		t.Fatal("paused advance failed")
	}
	f := freed()
	if len(f) != 1 || f[0].Val != 1 {
		t.Fatalf("freed = %+v; want only the epoch-0 item", f)
	}
	faultpoint.DisarmAll()
	if !d.Quiesce() {
		t.Fatal("quiesce failed")
	}
	if got := len(freed()); got != 2 {
		t.Fatalf("freed %d items after quiesce; want 2", got)
	}
}

// TestPinOverflowWhenSlotsExhausted exhausts every announcement slot and
// checks that further pins land in the overflow counters — still
// blocking reclamation of their epoch — instead of waiting for a slot.
func TestPinOverflowWhenSlotsExhausted(t *testing.T) {
	d, freed := collectDomain()
	const extra = 4
	guards := make([]Guard, slotCount+extra)
	for i := range guards {
		guards[i] = d.Pin()
	}
	over := 0
	for _, g := range guards {
		if g.s == nil {
			over++
		}
	}
	if over != extra {
		t.Fatalf("%d overflow pins; want %d", over, extra)
	}
	if st := d.Stats(); st.Pinned != slotCount+extra {
		t.Fatalf("Pinned = %d; want %d", st.Pinned, slotCount+extra)
	}
	d.Retire(Retired{Val: 9}, 8)
	d.TryAdvance() // 0→1 may succeed: every reader is at the current epoch
	for i := 0; i < 3; i++ {
		if d.TryAdvance() {
			t.Fatalf("advance %d succeeded past overflow readers pinned at epoch 0", i)
		}
	}
	if got := len(freed()); got != 0 {
		t.Fatalf("freed %d items under overflow pins", got)
	}
	for _, g := range guards {
		g.Unpin()
	}
	if st := d.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after unpin; want 0", st.Pinned)
	}
	if !d.Quiesce() {
		t.Fatal("quiesce failed after unpinning")
	}
	if got := len(freed()); got != 1 {
		t.Fatalf("freed %d items after quiesce; want 1", got)
	}
}

// TestNestedPinsBeyondSlotCapacity is the hold-and-wait regression: more
// goroutines than slots each hold one pin and then take a nested one.
// With a blocking slot acquisition this deadlocked permanently (every
// goroutine holds a slot while waiting for another to free one); the
// overflow path must let every nested pin through.
func TestNestedPinsBeyondSlotCapacity(t *testing.T) {
	d, _ := collectDomain()
	const n = slotCount + 8
	var ready, done sync.WaitGroup
	ready.Add(n)
	done.Add(n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			g1 := d.Pin()
			ready.Done()
			<-start // all n outer pins are held before any nested pin
			g2 := d.Pin()
			g2.Unpin()
			g1.Unpin()
		}()
	}
	ready.Wait()
	close(start)
	done.Wait()
	if st := d.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after all unpins; want 0", st.Pinned)
	}
}

func TestFaultPointsFire(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	d, _ := collectDomain()
	if err := faultpoint.Arm("epoch/advance", faultpoint.Never()); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("epoch/drain", faultpoint.Never()); err != nil {
		t.Fatal(err)
	}
	d.Retire(Retired{Val: 1}, 8)
	d.Quiesce()
	cs := faultpoint.Counters()
	if cs["epoch/advance"].Hits == 0 {
		t.Fatal("epoch/advance never hit")
	}
	if cs["epoch/drain"].Hits == 0 {
		t.Fatal("epoch/drain never hit")
	}
}

func TestStatsAccounting(t *testing.T) {
	d, _ := collectDomain()
	d.Retire(Retired{Val: 1}, 100)
	d.Retire(Retired{Val: 2}, 28)
	st := d.Stats()
	if st.LimboItems != 2 || st.LimboBytes != 128 {
		t.Fatalf("limbo stats = %d items / %d bytes; want 2/128", st.LimboItems, st.LimboBytes)
	}
	d.Quiesce()
	st = d.Stats()
	if st.LimboItems != 0 || st.LimboBytes != 0 {
		t.Fatalf("limbo stats after quiesce = %+v", st)
	}
	if st.Epoch == 0 {
		t.Fatal("epoch did not advance")
	}
}
