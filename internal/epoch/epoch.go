// Package epoch implements registration-based epoch reclamation (EBR),
// the generalization of the paper's §3.3 sketch from value headers to
// arbitrary off-heap resources. A Domain maintains a global epoch
// counter and a fixed array of cache-line-padded reader slots. Readers
// Pin() a slot — announcing the epoch they entered at — for the duration
// of a critical section that dereferences off-heap memory. Writers
// Retire resources into per-epoch limbo lists instead of freeing them;
// a retired resource is handed to the domain's free callback only after
// the global epoch has advanced far enough that every reader pinned at
// (or before) the retirement epoch has unpinned.
//
// The grace argument is the classic three-epoch one. A resource is
// unlinked from the shared structure before it is retired, and Retire
// reads the global epoch e after the unlink, so a reader pinned at any
// epoch > e provably pinned after the unlink and cannot reach the
// resource. Retirements at epoch e are drained during the advance
// e+2 → e+3, whose precondition is that every active reader is pinned
// at exactly e+2: readers pinned at e or e+1 are gone (they blocked the
// two previous advances), and readers at e+2 pinned after the unlink.
// Three limbo buckets indexed by epoch mod 3 therefore suffice. The
// bucket is privatized BEFORE the new epoch is published: while the
// global still reads e+2 a concurrent Retire can only append to bucket
// (e+2) mod 3, never to the one being drained, so a late Retire only
// postpones its free by one full cycle — it can never slip into a
// drain and be freed early.
package epoch

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"unsafe"

	"oakmap/internal/faultpoint"
	"oakmap/internal/telemetry"
)

// Fault-injection points on the reclamation engine (no-ops unless a
// test arms them).
var (
	// FpAdvance is hit after the reader scan has verified the minimum
	// pinned epoch and before the advance acts on it (drain, then
	// publish): a pausing hook stretches the window where the
	// verification is stale but the counter has not moved.
	FpAdvance = faultpoint.New("epoch/advance")
	// FpDrain is hit after a limbo bucket has been privatized and before
	// its resources are handed to the free callback: a pausing hook
	// widens the gap between "logically reclaimed" and "actually freed",
	// the window stale readers would hit if the grace computation were
	// wrong.
	FpDrain = faultpoint.New("epoch/drain")
)

const (
	// slotCount bounds the number of readers pinned via fast
	// cache-line-padded slots. Pins are held for the duration of one map
	// operation (or one cursor step), so exhaustion means slotCount
	// simultaneous in-flight operations; beyond it Pin falls back to the
	// per-epoch overflow counters — it never waits for a slot to free,
	// because pins nest (Pin under Pin on the same goroutine is legal
	// and happens whenever a scan callback re-enters the map), and a
	// blocking fallback would let slotCount nested pinners deadlock in
	// hold-and-wait.
	slotCount = 128
	// buckets is the limbo-list ring size; three epochs of separation
	// give the grace guarantee above.
	buckets = 3
	// DefaultLimboThreshold is the retired-item count that triggers an
	// opportunistic advance attempt from Retire.
	DefaultLimboThreshold = 512
)

// Retired is one deferred resource: an opaque caller-defined kind and
// value (in Oak: an arena span ref, or a value-header handle).
type Retired struct {
	Kind uint8
	Val  uint64
}

// slot is one reader announcement cell. word is 0 when free, else
// epoch<<1|1. The padding keeps each slot on its own cache line so
// concurrent pins never false-share.
type slot struct {
	word atomic.Uint64
	_    [56]byte
}

// tryPin claims a free slot at the current global epoch. After
// publishing, it refreshes the announcement if the global moved — a
// stale-low announcement is always safe (it only delays advances) but
// would stall reclamation under pin-heavy loads.
func (s *slot) tryPin(global *atomic.Uint64) bool {
	e := global.Load()
	if !s.word.CompareAndSwap(0, e<<1|1) {
		return false
	}
	for i := 0; i < 4; i++ {
		cur := global.Load()
		if cur == e {
			break
		}
		s.word.Store(cur<<1 | 1)
		e = cur
	}
	return true
}

type limbo struct {
	mu sync.Mutex
	// items must be drained (privatized) before an advance publishes the
	// new epoch — publish-first would let a Retire at the new epoch slip
	// into the draining bucket and be freed with zero grace (the exact
	// ordering bug publishorder's drain-after-publish rule re-proves; see
	// advanceLocked).
	items []Retired //oak:guarded-by mu //oak:publish-before Domain.global
	bytes int64     //oak:guarded-by mu
}

// Domain is one reclamation scope (in Oak: one Map). The free callback
// receives drained batches; it runs on whichever goroutine performed
// the advance and must not call back into Pin/Retire on the same
// domain.
type Domain struct {
	global atomic.Uint64
	count  atomic.Int64 // items across all limbo buckets
	rotor  atomic.Uint32

	slots [slotCount]slot
	limbo [buckets]limbo

	// overflow counts readers that found every slot taken, bucketed by
	// pinned epoch mod buckets. The wheel cannot conflate epochs: a
	// reader k epochs behind blocks every advance until it unpins, so by
	// the time a bucket index repeats (3 epochs) its old occupants are
	// gone. The cold path tolerates the shared cache line.
	overflow [buckets]atomic.Int64

	// advanceMu serializes epoch advances; the slot scan and the CAS on
	// global are only performed under it.
	advanceMu sync.Mutex

	free      func([]Retired)
	threshold atomic.Int64

	// advances/drains are sharded: Retire-triggered TryAdvance calls
	// bump them from many goroutines, and the read side (Stats) is cold.
	advances telemetry.Counter
	drains   telemetry.Counter
	// slotOverflows counts pins that found every slot taken — the §6
	// tail contributor the telemetry layer surfaces: sustained overflow
	// means more concurrent readers than slots, and each one both pays
	// the shared-cache-line cold path and can stall advances one epoch
	// sooner than a slotted reader would.
	slotOverflows telemetry.Counter

	// tel, when set, receives advance/drain durations and structural
	// events. Atomic so SetTelemetry may race with live operations.
	tel atomic.Pointer[telemetry.Recorder]
}

// NewDomain creates a domain whose drained resources are handed to
// free in retirement order.
func NewDomain(free func([]Retired)) *Domain {
	d := &Domain{free: free}
	d.threshold.Store(DefaultLimboThreshold)
	return d
}

// SetTelemetry attaches a recorder: epoch advances and limbo drains are
// timed into it (OpEpochAdvance/OpEpochDrain) and emitted as flight-
// recorder events. Safe to call concurrently with live operations; a
// nil recorder detaches.
func (d *Domain) SetTelemetry(r *telemetry.Recorder) {
	d.tel.Store(r)
}

// SetLimboThreshold overrides the retired-item count at which Retire
// attempts an advance (tests use small values to force drains).
func (d *Domain) SetLimboThreshold(n int) {
	if n < 1 {
		n = 1
	}
	d.threshold.Store(int64(n))
}

// Guard is an active reader registration. It must be released with
// Unpin exactly once; Unpin of the zero Guard is a no-op.
type Guard struct {
	d *Domain
	s *slot  // nil for an overflow registration
	e uint64 // overflow only: the pinned epoch
}

// Pin registers the caller as an active reader at the current epoch and
// returns the guard protecting its critical section: no resource
// retired at (or after) the pinned epoch is freed until Unpin. Pin
// never blocks on other readers, so pins may nest freely (a scan
// callback that re-enters the map pins again on the same goroutine).
//
// Slot affinity is derived from the goroutine's stack address: the
// address of a stack local is stable for the goroutine's lifetime
// (stack growth merely re-homes it), so each goroutine keeps hitting
// the same announcement cell and its cache line stays core-local —
// without any per-pin runtime coordination (sync.Pool's pin/unpin of
// the P costs more than the announcement CAS itself). A neighbor probe
// absorbs most birthday collisions; persistent crowds fall through to
// the rotor scan, and with every slot taken the pin lands in the
// overflow counters instead of waiting.
func (d *Domain) Pin() Guard {
	var anchor byte
	h := uintptr(unsafe.Pointer(&anchor)) * 0x9e3779b97f4a7c15
	s := &d.slots[(h>>57)&(slotCount-1)]
	if s.tryPin(&d.global) {
		return Guard{d: d, s: s}
	}
	s = &d.slots[(h>>57+1)&(slotCount-1)]
	if s.tryPin(&d.global) {
		return Guard{d: d, s: s}
	}
	if s := d.acquireSlot(); s != nil {
		return Guard{d: d, s: s}
	}
	return d.pinOverflow()
}

// acquireSlot scans for a free slot, starting at a rotating position so
// concurrent acquirers spread out. It gives up (nil) after two full
// scans rather than waiting for a slot to free: the caller may already
// hold a pin lower in its stack, and slotCount such callers waiting on
// each other would be a permanent hold-and-wait deadlock. The overflow
// path is the wait-free fallback.
func (d *Domain) acquireSlot() *slot {
	start := d.rotor.Add(1)
	for r := 0; r < 2; r++ {
		if r > 0 {
			runtime.Gosched()
		}
		for j := uint32(0); j < slotCount; j++ {
			s := &d.slots[(start+j)%slotCount]
			if s.word.Load() == 0 && s.tryPin(&d.global) {
				return s
			}
		}
	}
	return nil
}

// pinOverflow registers the caller in the per-epoch overflow counters.
// The announce-then-validate loop makes the registration race-free:
// the increment is globally visible before the validating re-load
// (sync/atomic operations are totally ordered), so if the global still
// reads e, every later advance — whose CAS must follow that load —
// scans the counters after the increment and observes the reader. If
// the global moved, the stale announcement is withdrawn and the pin
// retries at the new epoch; advances are serialized, so the loop
// settles in a step or two. Overflow announcements are not refreshed
// the way slot words are, which can stall an advance one epoch sooner —
// acceptable for a path reached only beyond slotCount concurrent pins.
func (d *Domain) pinOverflow() Guard {
	for {
		e := d.global.Load()
		b := &d.overflow[e%buckets]
		b.Add(1)
		if d.global.Load() == e {
			d.slotOverflows.Inc()
			return Guard{d: d, e: e}
		}
		b.Add(-1)
	}
}

// Unpin releases the registration.
func (g Guard) Unpin() {
	if g.s != nil {
		g.s.word.Store(0)
		return
	}
	if g.d != nil {
		g.d.overflow[g.e%buckets].Add(-1)
	}
}

// Retire defers a resource until the grace period has elapsed. size is
// accounting only (surfaced as LimboBytes). The caller must have
// already unlinked the resource from the shared structure: after Retire
// no new reader may be able to reach it.
func (d *Domain) Retire(r Retired, size int64) {
	e := d.global.Load()
	b := &d.limbo[e%buckets]
	b.mu.Lock()
	b.items = append(b.items, r)
	b.bytes += size
	b.mu.Unlock()
	// Opportunistic advance once the backlog is large. The attempt is
	// amortized (1 in 16 retires) because a reader pinned at an old
	// epoch makes every attempt fail with a full slot scan.
	if c := d.count.Add(1); c >= d.threshold.Load() && c%16 == 0 {
		d.TryAdvance()
	}
}

// TryAdvance attempts one epoch advance without blocking: it fails if
// another advance is in flight or some reader is pinned at an older
// epoch. On success the limbo bucket whose grace period just elapsed is
// drained into the free callback.
func (d *Domain) TryAdvance() bool {
	if !d.advanceMu.TryLock() {
		return false
	}
	defer d.advanceMu.Unlock()
	return d.advanceLocked()
}

// Advance is the blocking-lock variant of TryAdvance, for quiesce paths
// that must not be starved by concurrent opportunistic attempts.
func (d *Domain) Advance() bool {
	d.advanceMu.Lock()
	defer d.advanceMu.Unlock()
	return d.advanceLocked()
}

func (d *Domain) advanceLocked() bool {
	e := d.global.Load()
	for i := range d.slots {
		if w := d.slots[i].word.Load(); w != 0 && w>>1 != e {
			return false // a reader is still pinned at an older epoch
		}
	}
	for i := range d.overflow {
		if uint64(i) != e%buckets && d.overflow[i].Load() != 0 {
			return false // an overflow reader is pinned at an older epoch
		}
	}
	FpAdvance.Fire()
	r := d.tel.Load()
	tick := r.Span(telemetry.OpEpochAdvance)
	// Bucket (e+1) mod 3 holds retirements from epoch e-2, whose grace
	// period elapses with this advance. It MUST be drained before the
	// CAS publishes e+1: while the global still reads e, a concurrent
	// Retire can only append to bucket e mod 3, so the privatization
	// below races with nothing. Publishing first would let a Retire
	// that loads the new epoch slip its item into this bucket between
	// the CAS and the privatization — freeing it with zero grace period
	// while readers pinned at e may still hold references to it.
	d.drainBucket(int((e + 1) % buckets))
	d.global.CompareAndSwap(e, e+1)
	d.advances.Inc()
	tick.Done()
	r.Event(telemetry.EvEpochAdvance, e+1, 0, 0)
	return true
}

func (d *Domain) drainBucket(i int) {
	b := &d.limbo[i]
	b.mu.Lock()
	items := b.items
	bytes := b.bytes
	b.items, b.bytes = nil, 0
	b.mu.Unlock()
	if len(items) == 0 {
		return
	}
	FpDrain.Fire()
	d.count.Add(int64(-len(items)))
	d.drains.Inc()
	r := d.tel.Load()
	tick := r.Span(telemetry.OpEpochDrain)
	if r != nil {
		// The pprof label attributes the free callback's CPU (arena
		// frees, header recycles) to reclamation in profiles instead of
		// smearing it over whichever map operation tripped the advance.
		pprof.Do(context.Background(), pprof.Labels("oak", "epoch-drain"), func(context.Context) {
			d.free(items)
		})
	} else {
		d.free(items)
	}
	tick.Done()
	r.Event(telemetry.EvLimboDrain, uint64(len(items)), uint64(bytes), 0)
}

// Grace blocks until every reader that was pinned when Grace was called
// has unpinned: it drives the global epoch at least two advances past
// the entry value. An advance from e to e+1 succeeds only when every
// pinned reader announces exactly e, so after two successful advances no
// reader pinned at (or before) the entry epoch can remain. The MVCC
// layer uses this as its snapshot barrier — a writer that read the
// version clock before a snapshot ratcheted it did so under a pin, so
// once that pin is gone the writer's stamped install is complete and the
// snapshot's view is stable.
//
// The caller must NOT hold a pin on this domain (it would wait for
// itself). Like Quiesce, Grace can block for as long as some reader
// stays pinned; Oak pins are per-operation/per-step, so the wait is
// bounded by one map operation.
func (d *Domain) Grace() {
	target := d.global.Load() + 2
	for spins := 0; d.global.Load() < target; spins++ {
		if !d.Advance() && spins > 4 {
			runtime.Gosched()
		}
	}
}

// Quiesce drains every limbo bucket by advancing through a full epoch
// cycle. It reports whether the limbo emptied; false means some reader
// stayed pinned at an old epoch throughout.
func (d *Domain) Quiesce() bool {
	for i := 0; i < buckets+1; i++ {
		if d.count.Load() == 0 {
			return true
		}
		if !d.Advance() {
			return d.count.Load() == 0
		}
	}
	return d.count.Load() == 0
}

// Stats is an observability snapshot of the domain.
type Stats struct {
	Epoch      uint64 // current global epoch
	Pinned     int    // readers currently registered
	LimboItems int    // retired resources awaiting their grace period
	LimboBytes int64  // accounted bytes of those resources
	Advances   int64  // successful epoch advances
	Drains     int64  // non-empty bucket drains
	// SlotOverflows counts pins that overflowed the slot array (more
	// concurrent readers than slotCount): each pays the shared-counter
	// cold path and may stall advances one epoch sooner.
	SlotOverflows int64
}

// Stats returns a snapshot (the slot scan makes it O(slotCount)).
func (d *Domain) Stats() Stats {
	st := Stats{
		Epoch:         d.global.Load(),
		Advances:      d.advances.Load(),
		Drains:        d.drains.Load(),
		SlotOverflows: d.slotOverflows.Load(),
	}
	for i := range d.slots {
		if d.slots[i].word.Load() != 0 {
			st.Pinned++
		}
	}
	for i := range d.overflow {
		st.Pinned += int(d.overflow[i].Load())
	}
	for i := range d.limbo {
		b := &d.limbo[i]
		b.mu.Lock()
		st.LimboItems += len(b.items)
		st.LimboBytes += b.bytes
		b.mu.Unlock()
	}
	return st
}
