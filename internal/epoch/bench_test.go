package epoch

import "testing"

func BenchmarkPinUnpinSerial(b *testing.B) {
	d := NewDomain(func([]Retired) {})
	for i := 0; i < b.N; i++ {
		g := d.Pin()
		g.Unpin()
	}
}

func BenchmarkPinUnpinParallel(b *testing.B) {
	d := NewDomain(func([]Retired) {})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := d.Pin()
			g.Unpin()
		}
	})
}
