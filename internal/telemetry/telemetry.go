// Package telemetry is the map's unified observability layer: sharded
// always-on counters (replacing the ad-hoc atomic.Int64s that used to
// live in arena/epoch/core/vheader), sampled op-latency histograms, and
// a lock-free flight recorder for structural events. Everything a
// *Recorder exposes is nil-safe: a nil recorder turns every call into a
// branch on a nil check, so the instrumented hot paths cost one
// predictable compare when telemetry is disabled (the default).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards is the stripe width of a Counter. 32 cache-padded cells
// absorb the write traffic of every goroutine the runtime can keep
// simultaneously in an Add; merging on read is a 32-load sum.
const counterShards = 32

type counterShard struct {
	v atomic.Int64
	_ [56]byte // one shard per cache line, no false sharing
}

// Counter is a lock-free sharded counter: writes go to a stripe picked
// by the caller's stack address (the same affinity trick as epoch.Pin —
// a stack local's address is stable per goroutine, so each goroutine
// keeps hitting the same core-local cache line), reads merge all
// stripes. Unlike the Recorder it is always on: it replaces plain
// atomic.Int64 counters wholesale, trading the exact single-word read
// for contention-free writes.
//
// The zero Counter is ready to use.
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex hashes the caller's stack address into a stripe index.
func shardIndex() int {
	var anchor byte
	h := uintptr(unsafe.Pointer(&anchor)) * 0x9e3779b97f4a7c15
	return int(h>>59) & (counterShards - 1)
}

// Add adds delta and returns the new shard-local value (NOT the merged
// total — callers that sample "1 in N" per shard rely on exactly this).
func (c *Counter) Add(delta int64) int64 {
	return c.shards[shardIndex()].v.Add(delta)
}

// Inc is Add(1).
func (c *Counter) Inc() int64 { return c.Add(1) }

// Load merges all stripes. The per-stripe loads are independent, so a
// read concurrent with writers is a weak snapshot: it includes every
// write that completed before the read began, and some subset of the
// in-flight ones. It can never go backwards between two quiesced reads.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Op identifies one instrumented operation class.
type Op uint8

const (
	// Hot-path ops: counted always, latency-sampled 1 in 2^sampleShift.
	OpGet Op = iota
	OpPut
	OpRemove
	OpCompute
	OpScanNext
	// Rare structural ops: counted and always timed.
	OpRebalance
	OpEpochAdvance
	OpEpochDrain
	OpArenaCompact
	OpArenaRescue
	NumOps // sentinel
)

var opNames = [NumOps]string{
	"get", "put", "remove", "compute", "scan_next",
	"rebalance", "epoch_advance", "epoch_drain", "arena_compact", "arena_rescue",
}

// String returns the op's exporter-facing label value.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "unknown"
}

// DefaultSampleShift makes hot ops time 1 in 64 calls: two time.Now()
// reads (~50ns) amortize to <1ns per op against a few-hundred-ns Get,
// which is what keeps the enabled-telemetry overhead under the 3%
// budget (see bench_output_telemetry.txt).
const DefaultSampleShift = 6

// DefaultEventBuffer is the flight-recorder capacity (events).
const DefaultEventBuffer = 1024

// Config sizes a Recorder. The zero value means defaults.
type Config struct {
	// SampleShift: hot-op latency is recorded 1 in 2^SampleShift calls.
	// 0 means DefaultSampleShift; negative means sample every call.
	SampleShift int
	// EventBuffer is the flight-recorder capacity, rounded up to a
	// power of two. 0 means DefaultEventBuffer.
	EventBuffer int
}

type opRec struct {
	count Counter
	hist  AtomicHist
}

// GaugeKind tells the exporter how to type a registered read-out.
type GaugeKind uint8

const (
	KindGauge GaugeKind = iota
	KindCounter
)

// Gauge is a named read-out registered on a Recorder: the exporter
// calls Read at scrape time. Name may carry Prometheus labels
// (`oak_arena_class_spans{class="64"}`).
type Gauge struct {
	Name string
	Kind GaugeKind
	Read func() float64
}

// Recorder aggregates everything one telemetry scope observes. All
// methods are safe on a nil receiver (no-ops), which is how disabled
// telemetry stays near-free: instrumentation sites call through
// unconditionally.
type Recorder struct {
	sampleMask uint64
	ops        [NumOps]opRec
	ring       *Ring

	mu     sync.Mutex
	gauges map[string]Gauge //oak:guarded-by mu
}

// New creates a Recorder.
func New(cfg Config) *Recorder {
	shift := cfg.SampleShift
	if shift == 0 {
		shift = DefaultSampleShift
	}
	if shift < 0 {
		shift = 0
	}
	buf := cfg.EventBuffer
	if buf <= 0 {
		buf = DefaultEventBuffer
	}
	return &Recorder{
		sampleMask: 1<<uint(shift) - 1,
		ring:       NewRing(buf),
		gauges:     make(map[string]Gauge),
	}
}

// Tick is an in-flight hot-op measurement; the zero Tick (unsampled or
// nil recorder) makes Done a nil check.
type Tick struct {
	r     *Recorder
	start time.Time
	op    Op
}

// Op counts one hot-path operation and, on the sampled subset, starts a
// latency measurement finished by Done. The unsampled path (63 of 64
// calls) is fully inlinable: a nil check, one sharded atomic add, one
// mask test — the time.Now read lives in the outlined sampledTick so it
// doesn't count against this function's inline budget.
func (r *Recorder) Op(op Op) Tick {
	if r == nil {
		return Tick{}
	}
	n := r.ops[op].count.Inc()
	if uint64(n)&r.sampleMask != 0 {
		return Tick{}
	}
	return r.sampledTick(op)
}

// sampledTick is Op's cold path: start the clock on a sampled call.
func (r *Recorder) sampledTick(op Op) Tick {
	return Tick{r: r, op: op, start: time.Now()}
}

// Done finishes a sampled measurement. The zero-Tick path (unsampled or
// disabled) inlines to a nil check, which is what a deferred Done costs
// on 63 of 64 hot ops.
func (t Tick) Done() {
	if t.r != nil {
		t.finish()
	}
}

// finish is Done's cold path: record the sampled latency.
func (t Tick) finish() {
	t.r.ops[t.op].hist.Observe(time.Since(t.start))
}

// Count counts an operation without timing it (used by scan yields that
// time themselves externally).
func (r *Recorder) Count(op Op) {
	if r != nil {
		r.ops[op].count.Inc()
	}
}

// Span starts an always-timed measurement for a rare structural op
// (rebalance, epoch advance/drain, compact, rescue). Finish with Done.
func (r *Recorder) Span(op Op) Tick {
	if r == nil {
		return Tick{}
	}
	r.ops[op].count.Inc()
	return Tick{r: r, op: op, start: time.Now()}
}

// Observe records a latency measured by the caller.
func (r *Recorder) Observe(op Op, d time.Duration) {
	if r != nil {
		r.ops[op].hist.Observe(d)
	}
}

// Sampled reports whether the n-th call of a 1-in-2^SampleShift series
// should be timed — for call sites that manage their own counters.
func (r *Recorder) Sampled(n uint64) bool {
	return r != nil && n&r.sampleMask == 0
}

// Event appends a structural event to the flight recorder.
func (r *Recorder) Event(kind EventKind, a, b, c uint64) {
	if r != nil {
		r.ring.Append(kind, a, b, c)
	}
}

// Events returns the flight recorder's surviving events in sequence
// order (oldest first). Nil recorder → nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.Dump()
}

// EventSeq returns the total number of events ever appended.
func (r *Recorder) EventSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.Seq()
}

// OpStats is a read-side snapshot of one op's counter and histogram.
type OpStats struct {
	Op    Op
	Count uint64 // total operations (exact, not sampled)
	Hist  HistSnapshot
}

// OpSnapshot captures one op.
func (r *Recorder) OpSnapshot(op Op) OpStats {
	if r == nil || op >= NumOps {
		return OpStats{Op: op}
	}
	return OpStats{
		Op:    op,
		Count: uint64(r.ops[op].count.Load()),
		Hist:  r.ops[op].hist.Snapshot(),
	}
}

// Snapshot captures every op.
func (r *Recorder) Snapshot() []OpStats {
	if r == nil {
		return nil
	}
	out := make([]OpStats, 0, NumOps)
	for op := Op(0); op < NumOps; op++ {
		out = append(out, r.OpSnapshot(op))
	}
	return out
}

// RegisterGauge registers (or replaces) a named read-out for the
// exporter. Safe on nil (dropped).
func (r *Recorder) RegisterGauge(name string, kind GaugeKind, read func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = Gauge{Name: name, Kind: kind, Read: read}
	r.mu.Unlock()
}

// Gauges returns the registered read-outs sorted by name.
func (r *Recorder) Gauges() []Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, g)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
