package export

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"oakmap/internal/telemetry"
)

func populated() *telemetry.Recorder {
	r := telemetry.New(telemetry.Config{SampleShift: -1, EventBuffer: 16})
	for i := 0; i < 100; i++ {
		tk := r.Op(telemetry.OpGet)
		tk.Done()
	}
	sp := r.Span(telemetry.OpRebalance)
	time.Sleep(time.Microsecond)
	sp.Done()
	r.RegisterGauge("oak_len", telemetry.KindGauge, func() float64 { return 42 })
	r.RegisterGauge(`oak_arena_class_spans{class="64"}`, telemetry.KindGauge, func() float64 { return 3 })
	r.RegisterGauge(`oak_arena_class_spans{class="128"}`, telemetry.KindGauge, func() float64 { return 1 })
	r.Event(telemetry.EvEpochAdvance, 7, 0, 0)
	return r
}

// TestWriteMetricsFormat checks structural validity of the Prometheus
// text exposition: every non-comment line is `name{labels} value` or
// `name value`, histogram buckets are cumulative and end in +Inf, TYPE
// lines appear once per family and before the family's samples.
func TestWriteMetricsFormat(t *testing.T) {
	r := populated()
	var sb strings.Builder
	if err := WriteMetrics(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	typeSeen := map[string]bool{}
	var prevBucket uint64
	var sawInf bool
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if typeSeen[fields[2]] {
				t.Fatalf("duplicate TYPE for %s", fields[2])
			}
			typeSeen[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line must be `name value`: %q", line)
		}
		base := fields[0]
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			base = base[:i]
		}
		// Histogram sub-series share the family's TYPE line.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typeSeen[strings.TrimSuffix(base, suf)] {
				base = strings.TrimSuffix(base, suf)
				break
			}
		}
		if !typeSeen[base] {
			t.Fatalf("sample %q precedes (or lacks) its TYPE line", line)
		}

		if strings.HasPrefix(line, `oak_op_latency_seconds_bucket{op="get",`) {
			cum, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value %q: %v", fields[1], err)
			}
			if cum < prevBucket {
				t.Fatalf("buckets not cumulative: %d after %d (%q)", cum, prevBucket, line)
			}
			prevBucket = cum
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				if cum != 100 {
					t.Fatalf("+Inf bucket = %d, want 100", cum)
				}
			}
		}
	}
	if !sawInf {
		t.Fatal("get histogram has no +Inf bucket")
	}
	for _, want := range []string{
		`oak_op_latency_seconds_count{op="get"} 100`,
		`oak_ops_total{op="get"} 100`,
		`oak_ops_total{op="rebalance"} 1`,
		"oak_len 42",
		`oak_arena_class_spans{class="64"} 3`,
		"oak_events_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q\n%s", want, out)
		}
	}
	// Labeled family: one TYPE line covers both class samples.
	if strings.Count(out, "# TYPE oak_arena_class_spans ") != 1 {
		t.Fatal("labeled gauge family must get exactly one TYPE line")
	}
}

// TestHandler checks the HTTP surface: status, content type, body.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(populated()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "oak_op_latency_seconds_bucket") {
		t.Fatal("body lacks histogram samples")
	}
}

// TestWriteMetricsDisabled: a nil recorder writes a comment, not samples.
func TestWriteMetricsDisabled(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetrics(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Fatalf("disabled output should be a comment: %q", sb.String())
	}
}

// TestSnapshot checks the expvar JSON view.
func TestSnapshot(t *testing.T) {
	s := Snapshot(populated())
	if s["enabled"] != true {
		t.Fatal("enabled != true")
	}
	ops := s["ops"].(map[string]any)
	get := ops["get"].(map[string]any)
	if get["count"].(uint64) != 100 {
		t.Fatalf("get count = %v", get["count"])
	}
	if Snapshot(nil)["enabled"] != false {
		t.Fatal("nil snapshot should report disabled")
	}
}

// TestSummaryTable: ops with zero count are omitted, non-zero appear.
func TestSummaryTable(t *testing.T) {
	out := SummaryTable(populated())
	if !strings.Contains(out, "get") || !strings.Contains(out, "rebalance") {
		t.Fatalf("summary missing ops:\n%s", out)
	}
	if strings.Contains(out, "arena_compact") {
		t.Fatal("summary includes zero-count op")
	}
	if SummaryTable(nil) != "" {
		t.Fatal("nil summary should be empty")
	}
}
