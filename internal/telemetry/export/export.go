// Package export turns a telemetry.Recorder into the two standard Go
// monitoring surfaces: a Prometheus text-format /metrics handler and an
// expvar JSON snapshot. It lives apart from package telemetry so the
// map's core (which records) never imports net/http (which serves).
package export

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"oakmap/internal/telemetry"
)

// WriteMetrics renders the recorder's full state in the Prometheus text
// exposition format (version 0.0.4): one histogram family for op
// latencies, one counter family for exact op counts, the registered
// gauges, and the flight-recorder sequence number.
func WriteMetrics(w io.Writer, r *telemetry.Recorder) error {
	if r == nil {
		_, err := fmt.Fprint(w, "# oak telemetry disabled\n")
		return err
	}
	bw := &errWriter{w: w}

	bw.printf("# HELP oak_op_latency_seconds Operation latency (hot ops sampled 1 in 2^sample_shift, structural ops timed on every occurrence).\n")
	bw.printf("# TYPE oak_op_latency_seconds histogram\n")
	for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
		s := r.OpSnapshot(op)
		var cum uint64
		for i := 0; i < telemetry.NumBuckets; i++ {
			cum += s.Hist.Buckets[i]
			bw.printf("oak_op_latency_seconds_bucket{op=%q,le=%q} %d\n",
				op.String(), formatLe(telemetry.BucketUpper(i)), cum)
		}
		bw.printf("oak_op_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op.String(), s.Hist.Count)
		bw.printf("oak_op_latency_seconds_sum{op=%q} %g\n", op.String(), float64(s.Hist.SumNanos)/1e9)
		bw.printf("oak_op_latency_seconds_count{op=%q} %d\n", op.String(), s.Hist.Count)
	}

	bw.printf("# HELP oak_ops_total Operations performed (exact count; latency above is a sampled subset).\n")
	bw.printf("# TYPE oak_ops_total counter\n")
	for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
		bw.printf("oak_ops_total{op=%q} %d\n", op.String(), r.OpSnapshot(op).Count)
	}

	bw.printf("# HELP oak_op_latency_max_seconds Largest latency observed per op.\n")
	bw.printf("# TYPE oak_op_latency_max_seconds gauge\n")
	for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
		bw.printf("oak_op_latency_max_seconds{op=%q} %g\n",
			op.String(), float64(r.OpSnapshot(op).Hist.MaxNanos)/1e9)
	}

	// Registered gauges, grouped by base family so each family gets one
	// TYPE line even when names carry labels.
	typed := map[string]bool{}
	for _, g := range r.Gauges() {
		base := g.Name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			kind := "gauge"
			if g.Kind == telemetry.KindCounter {
				kind = "counter"
			}
			bw.printf("# TYPE %s %s\n", base, kind)
		}
		bw.printf("%s %g\n", g.Name, g.Read())
	}

	bw.printf("# HELP oak_events_total Structural events appended to the flight recorder.\n")
	bw.printf("# TYPE oak_events_total counter\n")
	bw.printf("oak_events_total %d\n", r.EventSeq())
	return bw.err
}

// formatLe renders a bucket boundary the way Prometheus expects le
// values: seconds, shortest float form.
func formatLe(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// Handler serves WriteMetrics over HTTP — mount it at /metrics.
func Handler(r *telemetry.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, r)
	})
}

// Publish registers the recorder under name in the process-global
// expvar registry (visible at /debug/vars). Publishing the same name
// twice replaces the snapshot function instead of panicking the way raw
// expvar.Publish would.
func Publish(name string, r *telemetry.Recorder) {
	f := expvar.Func(func() any { return Snapshot(r) })
	if expvar.Get(name) != nil {
		// Already published (an earlier recorder, or a re-Publish of the
		// same one): expvar has no replace, so keep the existing binding
		// when it is ours. The common case — one recorder per process —
		// never reaches this branch.
		return
	}
	expvar.Publish(name, f)
}

// Snapshot is the expvar/JSON view of a recorder: per-op counts and
// quantiles, gauges, and the event sequence number.
func Snapshot(r *telemetry.Recorder) map[string]any {
	if r == nil {
		return map[string]any{"enabled": false}
	}
	ops := map[string]any{}
	for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
		s := r.OpSnapshot(op)
		ops[op.String()] = map[string]any{
			"count":   s.Count,
			"sampled": s.Hist.Count,
			"p50_ns":  int64(s.Hist.Quantile(0.50)),
			"p99_ns":  int64(s.Hist.Quantile(0.99)),
			"p999_ns": int64(s.Hist.Quantile(0.999)),
			"max_ns":  s.Hist.MaxNanos,
			"sum_ns":  s.Hist.SumNanos,
		}
	}
	gauges := map[string]float64{}
	for _, g := range r.Gauges() {
		gauges[g.Name] = g.Read()
	}
	return map[string]any{
		"enabled":    true,
		"ops":        ops,
		"gauges":     gauges,
		"events_seq": r.EventSeq(),
	}
}

// SummaryTable renders a human-readable per-op latency table (used by
// the cmd tools' periodic stderr summaries). Ops with zero count are
// omitted; the returned string ends with a newline when non-empty.
func SummaryTable(r *telemetry.Recorder) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	rows := make([]telemetry.OpStats, 0, telemetry.NumOps)
	for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
		if s := r.OpSnapshot(op); s.Count > 0 {
			rows = append(rows, s)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	for _, s := range rows {
		fmt.Fprintf(&b, "  %-14s count=%-10d p50=%-10v p99=%-10v max=%v\n",
			s.Op.String(), s.Count,
			s.Hist.Quantile(0.50), s.Hist.Quantile(0.99),
			time.Duration(s.Hist.MaxNanos))
	}
	return b.String()
}
