package telemetry

import (
	"sync"
	"testing"
)

// TestRingWraparound fills a ring far past its capacity and checks that
// Dump returns exactly the newest `size` events, oldest first, with
// gap-free sequence numbers and intact payloads.
func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	const total = 100
	for i := uint64(1); i <= total; i++ {
		r.Append(EvEpochAdvance, i, i*2, i*3)
	}
	evs := r.Dump()
	if len(evs) != 16 {
		t.Fatalf("dump returned %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(total - 16 + 1 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.A != wantSeq || ev.B != wantSeq*2 || ev.C != wantSeq*3 {
			t.Fatalf("event %d torn: %+v", i, ev)
		}
		if ev.Kind != EvEpochAdvance {
			t.Fatalf("event %d kind %v", i, ev.Kind)
		}
	}
	if r.Seq() != total {
		t.Fatalf("Seq = %d, want %d", r.Seq(), total)
	}
}

// TestRingSizeRounding: capacities round up to a power of two, min 8.
func TestRingSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {1000, 1024}, {1024, 1024},
	} {
		r := NewRing(tc.in)
		if got := int(r.mask + 1); got != tc.want {
			t.Fatalf("NewRing(%d) size %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingConcurrentDump hammers a small ring from many writers while
// readers dump continuously. Every event a dump returns must be
// internally consistent (payload derived from its seq) and in strictly
// increasing seq order — lapped or in-flight cells are skipped, never
// returned torn.
func TestRingConcurrentDump(t *testing.T) {
	r := NewRing(32)
	const (
		writers = 8
		perG    = 5_000
		readers = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Dump()
				var lastSeq uint64
				for _, ev := range evs {
					if ev.Seq <= lastSeq {
						t.Errorf("dump out of order: %d after %d", ev.Seq, lastSeq)
						return
					}
					lastSeq = ev.Seq
					if ev.A != ev.Seq || ev.B != ev.Seq*2 || ev.C != ev.Seq^0xdead {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; i < perG; i++ {
				// Payload is a pure function of the ticket the writer will
				// draw — but the ticket isn't known before Append. Instead
				// derive it inside Append's contract: every writer stores
				// a=seq via a second Append wrapper below.
				appendSeqDerived(r)
			}
		}()
	}
	wwg.Wait()
	close(stop)
	wg.Wait()

	if r.Seq() != writers*perG {
		t.Fatalf("Seq = %d, want %d", r.Seq(), writers*perG)
	}
	// Quiesced dump: all 32 cells published, none skipped.
	evs := r.Dump()
	if len(evs) != 32 {
		t.Fatalf("quiesced dump returned %d events, want 32", len(evs))
	}
}

// appendSeqDerived appends an event whose payload encodes its own
// sequence number, so concurrent dumps can verify integrity. It mirrors
// Ring.Append but derives a/b/c from the drawn ticket.
func appendSeqDerived(r *Ring) {
	t := r.next.Add(1)
	cl := &r.cells[(t-1)&r.mask]
	cl.marker.Store(t<<1 | 1)
	cl.timeNs.Store(int64(t))
	cl.kind.Store(uint32(EvLimboDrain))
	cl.a.Store(t)
	cl.b.Store(t * 2)
	cl.c.Store(t ^ 0xdead)
	cl.marker.Store(t << 1)
}
