package telemetry

import (
	"sync/atomic"
	"time"
)

// EventKind tags one structural event in the flight recorder.
type EventKind uint8

const (
	EvRebalanceBegin EventKind = iota // a: heuristic live entries in the engaged chunk
	EvRebalanceEnd                    // a: chunks retired, b: chunks produced, c: entries migrated
	EvEpochAdvance                    // a: new epoch
	EvLimboDrain                      // a: items drained, b: bytes drained
	EvBlockGrow                       // a: new block count, b: block size bytes
	EvBlockRetain                     // a: pooled blocks after retain
	EvBlockDrop                       // a: pooled blocks after drop
	EvClassMigrate                    // a: migrated span length in bytes
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"rebalance_begin", "rebalance_end", "epoch_advance", "limbo_drain",
	"block_grow", "block_retain", "block_drop", "class_migrate",
}

// String returns the event kind's exporter-facing name.
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one flight-recorder entry. A, B, C are kind-specific
// arguments (see the EventKind constants).
type Event struct {
	Seq      uint64 // 1-based global sequence number
	UnixNano int64  // wall-clock timestamp
	Kind     EventKind
	A, B, C  uint64
}

// cell is one ring slot. marker is 0 when empty, ticket<<1|1 while a
// writer owns the cell, and ticket<<1 once published; every field is
// atomic so the concurrent Dump required by the flight-recorder tests
// is race-clean without any lock on the write path.
// The payload words must be in place before the even (published) marker
// value becomes visible, or Dump could return a torn event that passes
// its marker re-check. The odd claim store in Append precedes the
// payload by design (it is what invalidates concurrent readers) and is
// suppressed at the site.
type cell struct {
	marker  atomic.Uint64
	timeNs  atomic.Int64  //oak:publish-before marker
	kind    atomic.Uint32 //oak:publish-before marker
	a, b, c atomic.Uint64 //oak:publish-before marker
}

// Ring is a bounded lock-free flight recorder. Writers claim a ticket
// with one atomic add and publish into the ticket's slot; the newest
// `size` events survive, older ones are overwritten. Dump skips cells
// that are mid-write or already lapped — under pathological races
// (two writers exactly one full ring apart interleaving on one cell) an
// event can be dropped from a dump, never garbled: the marker is
// re-checked after the payload loads, seqlock-style.
type Ring struct {
	mask  uint64
	next  atomic.Uint64 // last issued ticket; tickets start at 1
	cells []cell
}

// NewRing creates a ring holding the last `size` events, rounded up to
// a power of two (minimum 8).
func NewRing(size int) *Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), cells: make([]cell, n)}
}

// Append records one event.
func (r *Ring) Append(kind EventKind, a, b, c uint64) {
	t := r.next.Add(1)
	cl := &r.cells[(t-1)&r.mask]
	// Seqlock claim: the odd marker must go first — it is what tells a
	// concurrent Dump the payload is mid-write. Only the closing even
	// store is a publish in the //oak:publish-before sense.
	cl.marker.Store(t<<1 | 1) //oak:allow publishorder seqlock claim store precedes payload by design
	cl.timeNs.Store(time.Now().UnixNano())
	cl.kind.Store(uint32(kind))
	cl.a.Store(a)
	cl.b.Store(b)
	cl.c.Store(c)
	cl.marker.Store(t << 1)
}

// Seq returns the number of events ever appended.
func (r *Ring) Seq() uint64 { return r.next.Load() }

// Dump returns the surviving events oldest-first. It is safe to call
// concurrently with Append (and with other Dumps): cells being written
// or already overwritten are skipped.
func (r *Ring) Dump() []Event {
	hi := r.next.Load()
	size := r.mask + 1
	lo := uint64(1)
	if hi > size {
		lo = hi - size + 1
	}
	out := make([]Event, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		cl := &r.cells[(t-1)&r.mask]
		if cl.marker.Load() != t<<1 {
			continue // unpublished, in-flight, or lapped
		}
		ev := Event{
			Seq:      t,
			UnixNano: cl.timeNs.Load(),
			Kind:     EventKind(cl.kind.Load()),
			A:        cl.a.Load(),
			B:        cl.b.Load(),
			C:        cl.c.Load(),
		}
		if cl.marker.Load() != t<<1 {
			continue // overwritten mid-read; payload may be torn
		}
		out = append(out, ev)
	}
	return out
}
