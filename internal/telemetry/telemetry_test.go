package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCounterHammer drives 64 goroutines through a shared Counter (and a
// shared recorder's sampled histogram) while a reader merges stripes
// concurrently. The final merged value must be exact; intermediate reads
// must be monotone non-decreasing (a weak snapshot never goes backwards
// when every write is an increment).
func TestCounterHammer(t *testing.T) {
	const (
		writers = 64
		perG    = 10_000
	)
	var c Counter
	r := New(Config{SampleShift: 3, EventBuffer: 64})

	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var last int64
		for !stop.Load() {
			v := c.Load()
			if v < last {
				t.Errorf("Counter.Load went backwards: %d after %d", v, last)
				return
			}
			last = v
			// Concurrent snapshots are weak (buckets and count are
			// independent atomics); the merge path just has to be
			// race-clean — the exact invariants are asserted on the
			// quiesced snapshot below.
			_ = r.OpSnapshot(OpGet)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				tk := r.Op(OpGet)
				tk.Done()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	<-readerDone

	if got := c.Load(); got != writers*perG {
		t.Fatalf("Counter.Load = %d, want %d", got, writers*perG)
	}
	s := r.OpSnapshot(OpGet)
	if s.Count != writers*perG {
		t.Fatalf("op count = %d, want %d", s.Count, writers*perG)
	}
	if s.Hist.Count == 0 {
		t.Fatal("sampled histogram recorded nothing")
	}
	if s.Hist.Count > s.Count {
		t.Fatalf("sampled %d > total %d", s.Hist.Count, s.Count)
	}
}

// TestHistogramMergeMatchesSequential checks that merging per-goroutine
// histograms equals one histogram fed everything.
func TestHistogramMergeMatchesSequential(t *testing.T) {
	const parts = 8
	var whole Histogram
	shards := make([]*Histogram, parts)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	d := 50 * time.Nanosecond
	for i := 0; i < 4096; i++ {
		d += time.Duration(i) * time.Microsecond / 7
		whole.Record(d)
		shards[i%parts].Record(d)
	}
	var merged Histogram
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Fatalf("q%.2f: merged %v != whole %v", q, m, w)
		}
	}
	if merged.Max() != whole.Max() {
		t.Fatalf("merged max %v != whole %v", merged.Max(), whole.Max())
	}
}

// TestAtomicHistSnapshotMerge checks HistSnapshot.Merge and that
// MergeSnapshot folds an atomic snapshot into a plain histogram.
func TestAtomicHistSnapshotMerge(t *testing.T) {
	var a, b AtomicHist
	for i := 1; i <= 1000; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Fatalf("merged count %d", merged.Count)
	}
	if merged.MaxNanos != sb.MaxNanos {
		t.Fatalf("merged max %d, want %d", merged.MaxNanos, sb.MaxNanos)
	}
	var h Histogram
	h.MergeSnapshot(sa)
	h.MergeSnapshot(sb)
	if h.Count() != merged.Count {
		t.Fatalf("MergeSnapshot count %d != %d", h.Count(), merged.Count)
	}
}

// TestRecorderNilSafety exercises every Recorder method on nil: none may
// panic and the reads must return zero values.
func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	tk := r.Op(OpGet)
	tk.Done()
	r.Count(OpPut)
	sp := r.Span(OpRebalance)
	sp.Done()
	r.Observe(OpScanNext, time.Second)
	if r.Sampled(0) {
		t.Fatal("nil recorder sampled")
	}
	r.Event(EvEpochAdvance, 1, 2, 3)
	if r.Events() != nil || r.EventSeq() != 0 {
		t.Fatal("nil recorder has events")
	}
	if s := r.OpSnapshot(OpGet); s.Count != 0 || s.Hist.Count != 0 {
		t.Fatal("nil recorder has op stats")
	}
	if r.Snapshot() != nil || r.Gauges() != nil {
		t.Fatal("nil recorder has snapshots")
	}
	r.RegisterGauge("x", KindGauge, func() float64 { return 1 })
}

// TestSampling checks the 1-in-2^shift contract per shard: with shift s,
// a single-goroutine run of n ops must time ~n/2^s of them.
func TestSampling(t *testing.T) {
	r := New(Config{SampleShift: 4})
	const n = 1 << 12
	for i := 0; i < n; i++ {
		tk := r.Op(OpPut)
		tk.Done()
	}
	s := r.OpSnapshot(OpPut)
	if s.Count != n {
		t.Fatalf("count %d", s.Count)
	}
	want := uint64(n >> 4)
	if s.Hist.Count != want {
		t.Fatalf("sampled %d, want %d (single goroutine, one stripe)", s.Hist.Count, want)
	}

	// Negative shift: every call timed.
	r2 := New(Config{SampleShift: -1})
	for i := 0; i < 100; i++ {
		tk := r2.Op(OpGet)
		tk.Done()
	}
	if s2 := r2.OpSnapshot(OpGet); s2.Hist.Count != 100 {
		t.Fatalf("shift<0 sampled %d, want 100", s2.Hist.Count)
	}
}

// TestGaugeRegistry checks replace-on-same-name and sorted enumeration.
func TestGaugeRegistry(t *testing.T) {
	r := New(Config{})
	r.RegisterGauge("b", KindGauge, func() float64 { return 1 })
	r.RegisterGauge("a", KindCounter, func() float64 { return 2 })
	r.RegisterGauge("b", KindGauge, func() float64 { return 3 })
	gs := r.Gauges()
	if len(gs) != 2 || gs[0].Name != "a" || gs[1].Name != "b" {
		t.Fatalf("gauges = %+v", gs)
	}
	if gs[1].Read() != 3 {
		t.Fatal("re-register did not replace")
	}
}
