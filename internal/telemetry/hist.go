package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a lock-cheap log-bucketed latency histogram used to
// quantify the paper's §1 motivation — GC-induced "unpredictable
// performance" — as tail percentiles. Buckets grow geometrically from
// 100ns to ~100s (2 buckets per octave), giving ≤~41% relative error at
// the tails, plenty for GC-pause-sized effects.
//
// Promoted from internal/bench (which keeps a type alias) so the bench
// harness and the always-on telemetry layer share one bucket layout:
// a bench-side Histogram and a recorder-side AtomicHist can be compared
// bucket for bucket.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]uint64 //oak:guarded-by mu
	count   uint64              //oak:guarded-by mu
	min     time.Duration       //oak:guarded-by mu
	max     time.Duration       //oak:guarded-by mu
}

const (
	histBase    = 100 * time.Nanosecond
	histBuckets = 64
)

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	b := int(math.Log2(float64(d)/float64(histBase)) * 2)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the representative upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(2, float64(i+1)/2))
}

// BucketUpper exposes the bucket boundary to exporters so Prometheus
// `le` labels match the internal layout exactly.
func BucketUpper(i int) time.Duration { return bucketUpper(i) }

// NumBuckets is the fixed bucket count shared by Histogram and
// AtomicHist.
const NumBuckets = histBuckets

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Merge folds other into h. It snapshots other under its own lock and
// only then locks h: holding both at once would deadlock against a
// concurrent Merge in the opposite direction (lockorder flagged the
// old nested form as unordered same-class nesting).
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	buckets := other.buckets
	count, min, max := other.count, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range buckets {
		h.buckets[i] += c
	}
	if count > 0 {
		if h.count == 0 || min < h.min {
			h.min = min
		}
		if max > h.max {
			h.max = max
		}
	}
	h.count += count
}

// MergeSnapshot folds a recorder-side snapshot into h — the bridge that
// lets bench reports include latencies recorded by the telemetry layer.
func (h *Histogram) MergeSnapshot(s HistSnapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range s.Buckets {
		h.buckets[i] += c
	}
	if s.Count > 0 {
		m := time.Duration(s.MaxNanos)
		if m > h.max {
			h.max = m
		}
		if h.count == 0 {
			h.min = histBase // the snapshot carries no min; floor estimate
		}
	}
	h.count += s.Count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// AtomicHist is the recorder-side histogram: the same bucket layout as
// Histogram, but every word atomic so concurrent Observe calls from map
// operations never serialize on a mutex. Recording is either sampled
// (hot ops, 1 in 2^sampleShift) or inherently rare (rebalance, epoch
// advance), so unsharded atomics are contention-free in practice.
type AtomicHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// Observe adds one observation.
func (h *AtomicHist) Observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of an AtomicHist. The per-bucket
// loads are independent, so a snapshot taken mid-Observe may be off by
// the in-flight observation — fine for monitoring (Prometheus scrapes
// tolerate this by design).
type HistSnapshot struct {
	Buckets  [histBuckets]uint64
	Count    uint64
	SumNanos int64
	MaxNanos int64
}

// Snapshot copies the histogram's current state.
func (h *AtomicHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sumNs.Load()
	s.MaxNanos = h.maxNs.Load()
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile over the
// snapshot (q in [0,1]).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(s.MaxNanos)
	}
	if q < 0 {
		q = 0
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum > target {
			u := bucketUpper(i)
			if m := time.Duration(s.MaxNanos); u > m && m > 0 {
				u = m
			}
			return u
		}
	}
	return time.Duration(s.MaxNanos)
}

// Merge folds other into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i, c := range other.Buckets {
		s.Buckets[i] += c
	}
	s.Count += other.Count
	s.SumNanos += other.SumNanos
	if other.MaxNanos > s.MaxNanos {
		s.MaxNanos = other.MaxNanos
	}
}
