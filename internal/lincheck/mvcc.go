// MVCC extension to the checker: atomic multi-key batches and snapshot
// reads.
//
// Batches break the per-key partition argument — an ApplyBatch must
// take effect at ONE instant across every key it touches, which the
// per-key register search cannot see (it would happily linearize the
// per-key halves of a batch at different points). Snapshot reads break
// the register model outright: a snapshot Get legitimately returns a
// value that was overwritten long before the read happened, so feeding
// it into the register history as a Get would be flagged as stale.
//
// The model here follows the implementation's own claim: the map state
// is a sequence of atomic write events (point writes and whole
// batches), and a snapshot observes a PREFIX-CLOSED cut of that
// sequence — the state after some prefix of events, never a state that
// includes event i+1 but not i, and never half of a batch. Real time
// bounds which prefixes a given snapshot may observe: every event that
// completed before the snapshot's acquisition began must be inside the
// cut, and no event invoked after acquisition finished may be.
//
// SnapshotsLinearizable checks that model exactly, in polynomial time,
// for histories whose writes are sequential (a single writer thread —
// how the driver tests record them). Concurrent snapshot readers are
// unrestricted. BatchOps additionally projects a batch onto per-key
// register ops sharing one invocation window, so the existing
// Linearizable search can validate a batch's per-key legality against
// concurrent live (non-snapshot) readers.
package lincheck

import (
	"fmt"
	"sort"
)

// Effect is one key's outcome inside an atomic write event.
type Effect struct {
	Val string
	Del bool // true: the event removes the key; Val is ignored
}

// WriteEvent is one atomic state transition: a point Put/Remove (one
// effect) or a whole ApplyBatch (many effects, one linearization
// point). Inv/Ret are logical clock readings taken immediately before
// and after the call.
type WriteEvent struct {
	Effects  map[string]Effect
	Inv, Ret uint64
}

// SnapObs is what one snapshot observed for one key.
type SnapObs struct {
	Found bool
	Val   string
}

// SnapshotRead records one snapshot's acquisition window and the reads
// made through it. Inv/Ret bracket ONLY the Snapshot() call — the
// reads themselves may happen arbitrarily later; a frozen view owes
// consistency to its acquisition instant, not its read instants.
type SnapshotRead struct {
	Inv, Ret uint64
	Obs      map[string]SnapObs
}

// SnapshotsLinearizable verifies every snapshot against the
// prefix-closed cut model. writes must be sequential and in order
// (each event's Ret recorded before the next event's Inv) — the
// function errors out if they overlap rather than silently checking a
// weaker property. It returns nil when every snapshot's observations
// equal the map state after some real-time-admissible prefix of the
// write events, and a diagnostic error naming the first offending
// snapshot otherwise.
func SnapshotsLinearizable(writes []WriteEvent, snaps []SnapshotRead) error {
	for i := 1; i < len(writes); i++ {
		if writes[i-1].Ret >= writes[i].Inv {
			return fmt.Errorf("writes %d and %d overlap ([%d,%d] vs [%d,%d]): the cut model needs a sequential writer",
				i-1, i, writes[i-1].Inv, writes[i-1].Ret, writes[i].Inv, writes[i].Ret)
		}
	}
	for si := range snaps {
		sn := &snaps[si]
		// Admissible prefix lengths: [lo, hi]. Events finished before
		// acquisition began are mandatory; events invoked after it
		// returned are forbidden.
		lo, hi := 0, len(writes)
		for i := range writes {
			if writes[i].Ret < sn.Inv {
				lo = i + 1
			}
			if writes[i].Inv > sn.Ret {
				hi = i
				break
			}
		}
		val := map[string]string{}
		present := map[string]bool{}
		apply := func(w *WriteEvent) {
			for k, e := range w.Effects {
				if e.Del {
					delete(val, k)
					delete(present, k)
				} else {
					val[k] = e.Val
					present[k] = true
				}
			}
		}
		for i := 0; i < lo; i++ {
			apply(&writes[i])
		}
		ok := false
		for p := lo; ; p++ {
			if snapMatches(sn, val, present) {
				ok = true
				break
			}
			if p >= hi {
				break
			}
			apply(&writes[p])
		}
		if !ok {
			return fmt.Errorf("snapshot %d (window [%d,%d], admissible prefixes %d..%d of %d writes): observations %v match no admissible cut",
				si, sn.Inv, sn.Ret, lo, hi, len(writes), sn.Obs)
		}
	}
	return nil
}

// snapMatches reports whether the snapshot's recorded observations are
// exactly the register state for every key it watched.
func snapMatches(sn *SnapshotRead, val map[string]string, present map[string]bool) bool {
	for k, obs := range sn.Obs {
		if present[k] != obs.Found {
			return false
		}
		if obs.Found && val[k] != obs.Val {
			return false
		}
	}
	return true
}

// BatchOps projects an atomic write event onto per-key register
// operations sharing the event's invocation window, for merging into a
// point-op history checked by Linearizable: per key, a batch behaves
// like one unconditional Put or Remove. Keys come out sorted so the
// expansion is deterministic. (This checks per-key legality only —
// cross-key atomicity is SnapshotsLinearizable's job.)
func BatchOps(w WriteEvent) []Op {
	keys := make([]string, 0, len(w.Effects))
	for k := range w.Effects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Op, 0, len(keys))
	for _, k := range keys {
		e := w.Effects[k]
		o := Op{Key: k, Kind: Put, Arg: e.Val, Inv: w.Inv, Ret: w.Ret}
		if e.Del {
			o = Op{Key: k, Kind: BlindRemove, Inv: w.Inv, Ret: w.Ret}
		}
		out = append(out, o)
	}
	return out
}
