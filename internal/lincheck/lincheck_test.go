package lincheck

import (
	"bytes"
	"testing"
)

// TestLinearizabilityCheckerSelf sanity-checks the checker itself
// (moved here from internal/core when the engine was extracted).
func TestLinearizabilityCheckerSelf(t *testing.T) {
	// Legal: put(a) then get=a, sequential.
	ok := Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Kind: Get, RetBool: true, RetVal: "a", Inv: 3, Ret: 4},
	})
	if !ok {
		t.Fatal("legal history rejected")
	}
	// Illegal: get observes a value never written.
	ok = Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Kind: Get, RetBool: true, RetVal: "b", Inv: 3, Ret: 4},
	})
	if ok {
		t.Fatal("illegal read accepted")
	}
	// Illegal: get misses after a completed put with no removes.
	ok = Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Kind: Get, RetBool: false, Inv: 3, Ret: 4},
	})
	if ok {
		t.Fatal("lost update accepted")
	}
	// Illegal: two putIfAbsent both succeed with no remove between.
	ok = Linearizable([]Op{
		{Kind: PutIfAbsent, Arg: "a", RetBool: true, Inv: 1, Ret: 2},
		{Kind: PutIfAbsent, Arg: "b", RetBool: true, Inv: 3, Ret: 4},
	})
	if ok {
		t.Fatal("double putIfAbsent accepted")
	}
	// Legal: overlapping put and get may order either way.
	ok = Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 5},
		{Kind: Get, RetBool: false, Inv: 2, Ret: 3},
	})
	if !ok {
		t.Fatal("overlapping ops over-constrained")
	}
	// Legal: compute applies to the present value; get sees the result.
	ok = Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Kind: Compute, Arg: "x", RetBool: true, Inv: 3, Ret: 4},
		{Kind: Get, RetBool: true, RetVal: "a#x", Inv: 5, Ret: 6},
	})
	if !ok {
		t.Fatal("legal compute history rejected")
	}
	// Illegal: compute claims success on an absent key.
	ok = Linearizable([]Op{
		{Kind: Remove, RetBool: false, Inv: 1, Ret: 2},
		{Kind: Compute, Arg: "x", RetBool: true, Inv: 3, Ret: 4},
	})
	if ok {
		t.Fatal("compute on absent key accepted")
	}
	// Illegal: compute's effect lost (get sees pre-compute value after
	// a sequential successful compute).
	ok = Linearizable([]Op{
		{Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Kind: Compute, Arg: "x", RetBool: true, Inv: 3, Ret: 4},
		{Kind: Get, RetBool: true, RetVal: "a", Inv: 5, Ret: 6},
	})
	if ok {
		t.Fatal("lost compute accepted")
	}
	// Multi-key: keys are independent — a put on k1 must not satisfy a
	// get on k2...
	ok = Linearizable([]Op{
		{Key: "k1", Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Key: "k2", Kind: Get, RetBool: true, RetVal: "a", Inv: 3, Ret: 4},
	})
	if ok {
		t.Fatal("cross-key read accepted")
	}
	// ...and per-key legality composes.
	ok = Linearizable([]Op{
		{Key: "k1", Kind: Put, Arg: "a", Inv: 1, Ret: 2},
		{Key: "k2", Kind: Put, Arg: "b", Inv: 1, Ret: 2},
		{Key: "k2", Kind: Get, RetBool: true, RetVal: "b", Inv: 3, Ret: 4},
		{Key: "k1", Kind: Get, RetBool: true, RetVal: "a", Inv: 3, Ret: 4},
	})
	if !ok {
		t.Fatal("legal multi-key history rejected")
	}
}

// TestLinearizabilityScanModel checks the scan extensions: per-step
// gets merge into the point-op search, and ScanOrdered rejects
// out-of-order and duplicated yields.
func TestLinearizabilityScanModel(t *testing.T) {
	// A scan step observing a value concurrent with the put that wrote
	// it is legal (the step linearizes after the put inside its window).
	ops := []Op{
		{Key: "a", Kind: Put, Arg: "v1", Inv: 1, Ret: 6},
	}
	ops = append(ops, ScanOps([]ScanStep{
		{Key: "a", Val: "v1", Inv: 2, Ret: 5},
	}, nil)...)
	if !Linearizable(ops) {
		t.Fatal("scan step overlapping its writer rejected")
	}
	// A scan step observing a value that was never current is illegal.
	ops = []Op{
		{Key: "a", Kind: Put, Arg: "v1", Inv: 1, Ret: 2},
	}
	ops = append(ops, ScanOps([]ScanStep{
		{Key: "a", Val: "ghost", Inv: 3, Ret: 4},
	}, nil)...)
	if Linearizable(ops) {
		t.Fatal("scan step with phantom value accepted")
	}
	// A scan step observing a value whose remove completed before the
	// step began is illegal (the read window is after the delete).
	ops = []Op{
		{Key: "a", Kind: Put, Arg: "v1", Inv: 1, Ret: 2},
		{Key: "a", Kind: Remove, RetBool: true, Inv: 3, Ret: 4},
	}
	ops = append(ops, ScanOps([]ScanStep{
		{Key: "a", Val: "v1", Inv: 5, Ret: 6},
	}, nil)...)
	if Linearizable(ops) {
		t.Fatal("scan step resurrecting a removed value accepted")
	}
	// Unwatched keys are dropped.
	got := ScanOps([]ScanStep{
		{Key: "w", Val: "x", Inv: 1, Ret: 2},
		{Key: "noise", Val: "y", Inv: 3, Ret: 4},
	}, func(k string) bool { return k == "w" })
	if len(got) != 1 || got[0].Key != "w" {
		t.Fatalf("ScanOps watched filter: got %v", got)
	}

	// Order checking, both directions.
	asc := []ScanStep{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	if i := ScanOrdered(asc, false, bytes.Compare); i != -1 {
		t.Fatalf("sorted ascending scan flagged at %d", i)
	}
	if i := ScanOrdered(asc, true, bytes.Compare); i != 1 {
		t.Fatalf("ascending scan accepted as descending (i=%d)", i)
	}
	dup := []ScanStep{{Key: "a"}, {Key: "b"}, {Key: "b"}}
	if i := ScanOrdered(dup, false, bytes.Compare); i != 2 {
		t.Fatalf("duplicate yield not flagged (i=%d)", i)
	}
	desc := []ScanStep{{Key: "c"}, {Key: "b"}, {Key: "a"}}
	if i := ScanOrdered(desc, true, bytes.Compare); i != -1 {
		t.Fatalf("sorted descending scan flagged at %d", i)
	}
}
