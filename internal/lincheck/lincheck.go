// Package lincheck is the repo's Wing & Gong-style linearizability
// checker, extracted from the core test suite so every map layer — the
// single-map core, the sharded front-end, and whatever sits on top next
// — can verify its concurrent histories against one model.
//
// The checker targets the paper's central correctness claim (§4.5): the
// point operations are linearizable. Callers record concurrent
// histories of operations — invocation/response ordering via a global
// logical clock — and Linearizable searches for a sequential witness: a
// permutation of the operations that (a) respects real-time order and
// (b) is legal for a register with put / putIfAbsent / remove / get /
// compute / upsert semantics.
//
// Histories may span multiple keys. Linearizability is compositional
// (Herlihy & Wing's locality theorem): a history over a collection of
// independent objects is linearizable iff each object's subhistory is.
// Map keys are independent registers, so the checker partitions the
// history by key and runs the single-register search on each part —
// exact, and exponential only in the per-key operation count.
//
// Ordered scans are non-atomic in Oak, so a scan as a whole is not a
// linearizable operation — but each scan step is: every yielded entry
// shows a value that was current at some instant inside that step
// (value reads go through the header read lock). ScanOps converts a
// recorded scan into per-step Get operations so the same register
// search validates what a scan observed, and ScanOrdered checks the
// scan-shape guarantees (globally sorted, duplicate-free) that the
// per-key model cannot see.
package lincheck

import "fmt"

// Kind enumerates the modeled operations.
type Kind int

const (
	Put         Kind = iota // unconditional write
	PutIfAbsent             // insert iff absent; RetBool = inserted
	Remove                  // delete; RetBool = was present
	Get                     // read; RetBool = found, RetVal = value
	Upsert                  // putIfAbsentComputeIfPresent: insert Arg, or append "|"+Arg
	Compute                 // computeIfPresent: append "#"+Arg if present; RetBool = applied
	BlindRemove             // delete with unobserved result (batch projection)
)

func (k Kind) String() string {
	return [...]string{"put", "putIfAbsent", "remove", "get", "upsert", "compute", "blindRemove"}[k]
}

// Op is one recorded operation: what was asked, what came back, and the
// logical invocation/response timestamps bounding when it took effect.
type Op struct {
	Key  string // subject key; histories are partitioned on it
	Kind Kind
	Arg  string // value written (put/putIfAbsent) or appended (upsert/compute)
	// results
	RetBool  bool   // putIfAbsent: inserted; remove: removed; get: found; compute: applied
	RetVal   string // get: observed value
	Inv, Ret uint64 // logical timestamps
}

func (o Op) String() string {
	return fmt.Sprintf("%s[%x](%s)=(%v,%q)@[%d,%d]",
		o.Kind, o.Key, o.Arg, o.RetBool, o.RetVal, o.Inv, o.Ret)
}

// regApply applies op to a sequential register; returns the new value,
// new presence, and whether the op's recorded results are legal from
// state (v, present).
func regApply(v string, present bool, o Op) (string, bool, bool) {
	switch o.Kind {
	case Put:
		return o.Arg, true, true
	case PutIfAbsent:
		if present {
			return v, true, !o.RetBool
		}
		return o.Arg, true, o.RetBool
	case Remove:
		if present {
			return "", false, o.RetBool
		}
		return "", false, !o.RetBool
	case Get:
		if present {
			return v, true, o.RetBool && o.RetVal == v
		}
		return v, false, !o.RetBool
	case Upsert:
		if present {
			return v + "|" + o.Arg, true, true
		}
		return o.Arg, true, true
	case Compute:
		if present {
			return v + "#" + o.Arg, true, o.RetBool
		}
		return v, false, !o.RetBool
	case BlindRemove:
		// A batch delete: the caller never sees whether the key was
		// present, so the op is legal from any state.
		return "", false, true
	}
	return v, present, false
}

// Linearizable checks a (possibly multi-key) history: it partitions by
// key and searches each per-key subhistory for a sequential witness.
func Linearizable(ops []Op) bool {
	byKey := map[string][]Op{}
	for _, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	for _, sub := range byKey {
		if !linearizableKey(sub) {
			return false
		}
	}
	return true
}

// linearizableKey searches for a sequential witness with memoized DFS
// over (done-set bitmask, register value). Per-key history sizes must
// stay small (≤ ~16 ops) — the search is exponential in them.
func linearizableKey(ops []Op) bool {
	n := len(ops)
	type memoKey struct {
		mask    int
		val     string
		present bool
	}
	seen := map[memoKey]bool{}
	var dfs func(mask int, val string, present bool) bool
	dfs = func(mask int, val string, present bool) bool {
		if mask == 1<<n-1 {
			return true
		}
		k := memoKey{mask, val, present}
		if seen[k] {
			return false
		}
		seen[k] = true
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			// Real-time constraint: i may be linearized now only if no
			// other undone op returned before i was invoked.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && mask&(1<<j) == 0 && ops[j].Ret < ops[i].Inv {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nv, np, legal := regApply(val, present, ops[i])
			if legal && dfs(mask|1<<i, nv, np) {
				return true
			}
		}
		return false
	}
	return dfs(0, "", false)
}

// ScanStep is one yielded entry of a recorded ordered scan: the key and
// value observed, and the logical timestamps bracketing the step (Inv
// taken before the merge/iterator produced the entry, Ret after its
// value was read).
type ScanStep struct {
	Key      string
	Val      string
	Inv, Ret uint64
}

// ScanOps converts a scan's steps into per-step Get operations over the
// watched keys (watched == nil watches every key), for merging into a
// point-op history: each step's observation must be a legal read at
// some instant within [Inv, Ret]. Steps on unwatched keys — background
// churn the register model knows nothing about — are dropped.
func ScanOps(steps []ScanStep, watched func(key string) bool) []Op {
	out := make([]Op, 0, len(steps))
	for _, s := range steps {
		if watched != nil && !watched(s.Key) {
			continue
		}
		out = append(out, Op{
			Key:     s.Key,
			Kind:    Get,
			RetBool: true,
			RetVal:  s.Val,
			Inv:     s.Inv,
			Ret:     s.Ret,
		})
	}
	return out
}

// ScanOrdered verifies the scan-shape guarantee the per-key register
// model cannot express: the yielded keys are strictly ordered (so also
// duplicate-free) by cmp, descending when desc is set. It returns the
// index of the first out-of-order step, or -1 when the scan is sound.
func ScanOrdered(steps []ScanStep, desc bool, cmp func(a, b []byte) int) int {
	for i := 1; i < len(steps); i++ {
		c := cmp([]byte(steps[i-1].Key), []byte(steps[i].Key))
		if desc {
			c = -c
		}
		if c >= 0 {
			return i
		}
	}
	return -1
}
