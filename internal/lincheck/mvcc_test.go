package lincheck

import "testing"

// ---- model self-checks -------------------------------------------------

// gen builds a batch event writing val to every listed key.
func gen(inv, ret uint64, val string, keys ...string) WriteEvent {
	eff := map[string]Effect{}
	for _, k := range keys {
		eff[k] = Effect{Val: val}
	}
	return WriteEvent{Effects: eff, Inv: inv, Ret: ret}
}

func obs(pairs ...string) map[string]SnapObs {
	m := map[string]SnapObs{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i]] = SnapObs{Found: true, Val: pairs[i+1]}
	}
	return m
}

func TestSnapshotModelAtomicBatches(t *testing.T) {
	writes := []WriteEvent{
		gen(1, 2, "g1", "a", "b"),
		gen(5, 8, "g2", "a", "b"),
	}
	// A snapshot overlapping the second batch may see either generation
	// whole…
	for _, o := range []map[string]SnapObs{obs("a", "g1", "b", "g1"), obs("a", "g2", "b", "g2")} {
		if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 6, Ret: 7, Obs: o}}); err != nil {
			t.Fatalf("whole generation rejected: %v", err)
		}
	}
	// …but never a torn mix: that cut would include half of batch 2.
	for _, o := range []map[string]SnapObs{obs("a", "g2", "b", "g1"), obs("a", "g1", "b", "g2")} {
		if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 6, Ret: 7, Obs: o}}); err == nil {
			t.Fatalf("torn batch %v accepted", o)
		}
	}
}

func TestSnapshotModelRealTime(t *testing.T) {
	writes := []WriteEvent{
		gen(1, 2, "g1", "a"),
		gen(3, 4, "g2", "a"),
	}
	// Acquired strictly after g2 completed: g1 is no longer admissible.
	if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 5, Ret: 6, Obs: obs("a", "g1")}}); err == nil {
		t.Fatal("stale snapshot accepted despite completed overwrite")
	}
	// Acquired strictly before g2 was invoked: g2 is not admissible yet.
	if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 2, Ret: 2, Obs: obs("a", "g2")}}); err == nil {
		t.Fatal("snapshot from the future accepted")
	}
}

func TestSnapshotModelDelete(t *testing.T) {
	writes := []WriteEvent{
		gen(1, 2, "g1", "a", "b"),
		{Effects: map[string]Effect{"a": {Del: true}, "b": {Val: "g2"}}, Inv: 4, Ret: 5},
	}
	after := map[string]SnapObs{"a": {Found: false}, "b": {Found: true, Val: "g2"}}
	if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 6, Ret: 7, Obs: after}}); err != nil {
		t.Fatalf("post-delete state rejected: %v", err)
	}
	// The delete and the write to b are one event: seeing the delete
	// without b's new value is torn.
	torn := map[string]SnapObs{"a": {Found: false}, "b": {Found: true, Val: "g1"}}
	if err := SnapshotsLinearizable(writes, []SnapshotRead{{Inv: 6, Ret: 7, Obs: torn}}); err == nil {
		t.Fatal("torn delete/write accepted")
	}
}

func TestSnapshotModelRejectsOverlappingWrites(t *testing.T) {
	writes := []WriteEvent{gen(1, 5, "g1", "a"), gen(3, 8, "g2", "a")}
	if err := SnapshotsLinearizable(writes, nil); err == nil {
		t.Fatal("overlapping writes accepted; the model requires a sequential writer")
	}
}

func TestBatchOpsProjection(t *testing.T) {
	w := WriteEvent{
		Effects: map[string]Effect{"b": {Val: "v"}, "a": {Del: true}},
		Inv:     3, Ret: 7,
	}
	ops := BatchOps(w)
	if len(ops) != 2 || ops[0].Key != "a" || ops[1].Key != "b" {
		t.Fatalf("projection not sorted per key: %v", ops)
	}
	if ops[0].Kind != BlindRemove || ops[1].Kind != Put || ops[1].Arg != "v" {
		t.Fatalf("projection kinds wrong: %v", ops)
	}
	for _, o := range ops {
		if o.Inv != 3 || o.Ret != 7 {
			t.Fatalf("projection lost the shared window: %v", o)
		}
	}
	// BlindRemove is legal from either presence state; the register ends
	// absent both ways.
	for _, present := range []bool{true, false} {
		v, p, legal := regApply("x", present, ops[0])
		if !legal || p || v != "" {
			t.Fatalf("blindRemove from present=%v: (%q,%v,%v)", present, v, p, legal)
		}
	}
}
