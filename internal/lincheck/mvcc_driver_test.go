package lincheck

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"oakmap"
)

// These tests record real concurrent histories from the public facade
// — both backends — and check them against the MVCC model: a
// sequential writer issues point writes, deletes and ApplyBatch calls
// while snapshot readers and live readers run concurrently.

func mvccTestMap(t *testing.T, shards int) *oakmap.Map[string, string] {
	t.Helper()
	m := oakmap.New[string, string](oakmap.StringSerializer{}, oakmap.StringSerializer{},
		&oakmap.Options{ChunkCapacity: 64, Shards: shards})
	t.Cleanup(m.Close)
	return m
}

// TestMVCCSnapshotHistories: concurrent snapshot readers against a
// churning writer; every snapshot's observations must equal the map
// state after some admissible prefix of the atomic write events.
func TestMVCCSnapshotHistories(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := mvccTestMap(t, shards)
			keys := []string{"a", "b", "c", "d", "e", "f"}
			var clock atomic.Uint64

			var mu sync.Mutex
			var snaps []SnapshotRead
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// First iterations run unconditionally so a fast writer
					// cannot finish before any snapshot was taken.
					for i := 0; ; i++ {
						if i >= 10 {
							select {
							case <-stop:
								return
							default:
							}
						}
						inv := clock.Add(1)
						sn := m.Snapshot()
						ret := clock.Add(1)
						o := make(map[string]SnapObs, len(keys))
						for _, k := range keys {
							v, ok := sn.Get(k)
							o[k] = SnapObs{Found: ok, Val: v}
						}
						sn.Close()
						mu.Lock()
						snaps = append(snaps, SnapshotRead{Inv: inv, Ret: ret, Obs: o})
						mu.Unlock()
					}
				}()
			}

			var writes []WriteEvent
			record := func(eff map[string]Effect, do func() error) {
				inv := clock.Add(1)
				if err := do(); err != nil {
					t.Fatal(err)
				}
				ret := clock.Add(1)
				writes = append(writes, WriteEvent{Effects: eff, Inv: inv, Ret: ret})
			}
			for i := 0; i < 150; i++ {
				switch i % 4 {
				case 0, 1: // whole-group batch — the torn-read bait
					val := fmt.Sprintf("gen-%d", i)
					ops := make([]oakmap.Op[string, string], len(keys))
					eff := map[string]Effect{}
					for j, k := range keys {
						ops[j] = oakmap.Op[string, string]{Key: k, Value: val}
						eff[k] = Effect{Val: val}
					}
					if i%8 == 0 { // sometimes a delete rides inside the batch
						dk := keys[(i/8)%len(keys)]
						for j := range ops {
							if ops[j].Key == dk {
								ops[j] = oakmap.Op[string, string]{Key: dk, Delete: true}
							}
						}
						eff[dk] = Effect{Del: true}
					}
					record(eff, func() error { return m.ApplyBatch(ops) })
				case 2: // point overwrite
					k, val := keys[i%len(keys)], fmt.Sprintf("pt-%d", i)
					record(map[string]Effect{k: {Val: val}}, func() error {
						_, _, err := m.Put(k, val)
						return err
					})
				default: // point delete
					k := keys[i%len(keys)]
					record(map[string]Effect{k: {Del: true}}, func() error {
						_, _, err := m.Remove(k)
						return err
					})
				}
			}
			close(stop)
			wg.Wait()

			if len(snaps) == 0 {
				t.Fatal("no snapshots recorded")
			}
			if err := SnapshotsLinearizable(writes, snaps); err != nil {
				t.Fatal(err)
			}
			t.Logf("checked %d snapshots against %d write events", len(snaps), len(writes))
		})
	}
}

// TestMVCCBatchLiveReaders: the per-key face of batch atomicity — a
// batch projected through BatchOps is a set of register ops sharing
// one invocation window, and a live (non-snapshot) reader's Gets must
// linearize against them.
func TestMVCCBatchLiveReaders(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := mvccTestMap(t, shards)
			var clock atomic.Uint64

			// A bounded reader: per-key history size feeds an exponential
			// search, so it records exactly 8 Gets on the contended key.
			var getOps []Op
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					inv := clock.Add(1)
					v, ok := m.Get("c")
					ret := clock.Add(1)
					getOps = append(getOps, Op{
						Key: "c", Kind: Get, RetBool: ok, RetVal: v, Inv: inv, Ret: ret,
					})
				}
			}()

			batch := func(eff map[string]Effect) error {
				ops := make([]oakmap.Op[string, string], 0, len(eff))
				for k, e := range eff {
					ops = append(ops, oakmap.Op[string, string]{Key: k, Value: e.Val, Delete: e.Del})
				}
				return m.ApplyBatch(ops)
			}
			events := []struct {
				eff map[string]Effect
				do  func(eff map[string]Effect) error
			}{
				{map[string]Effect{"a": {Val: "g0"}, "b": {Val: "g0"}, "c": {Val: "g0"}}, batch},
				{map[string]Effect{"c": {Val: "p1"}}, func(map[string]Effect) error {
					_, _, err := m.Put("c", "p1")
					return err
				}},
				{map[string]Effect{"a": {Val: "g2"}, "b": {Val: "g2"}, "c": {Del: true}}, batch},
				{map[string]Effect{"c": {Val: "p3"}}, func(map[string]Effect) error {
					_, _, err := m.Put("c", "p3")
					return err
				}},
				{map[string]Effect{"a": {Val: "g4"}, "b": {Val: "g4"}, "c": {Val: "g4"}}, batch},
				{map[string]Effect{"c": {Del: true}}, func(map[string]Effect) error {
					_, _, err := m.Remove("c")
					return err
				}},
			}
			var ops []Op
			for _, e := range events {
				inv := clock.Add(1)
				if err := e.do(e.eff); err != nil {
					t.Fatal(err)
				}
				ret := clock.Add(1)
				ops = append(ops, BatchOps(WriteEvent{Effects: e.eff, Inv: inv, Ret: ret})...)
			}
			wg.Wait()
			ops = append(ops, getOps...)
			if !Linearizable(ops) {
				t.Fatalf("live reads against batch projections not linearizable:\n%v", ops)
			}
		})
	}
}
