// Package btree implements an off-heap B+ tree over []byte keys — the
// stand-in for MapDB's BTreeMap, the "only off-the-shelf data structure
// library" with off-heap allocation the paper could compare against
// (§1.2, §5.1: "at least an order-of-magnitude slower than Oak; we omit
// these results"). Having the baseline in-tree lets the omitted
// comparison be rerun: `oak-bench -btree`.
//
// The design mirrors MapDB's shape rather than a state-of-the-art
// concurrent B-tree: key and value bytes live off-heap via the arena
// allocator; interior and leaf nodes are on-heap; a single
// reader–writer lock serializes updates (MapDB's fine-grained locking
// is dominated by its (de)serialization costs; a global lock reproduces
// the same "does not scale with writers" behaviour with far less code).
// Deletions remove keys from leaves without rebalancing — acceptable for
// the ingest-heavy workloads the evaluation runs.
package btree

import (
	"bytes"
	"sync"

	"oakmap/internal/arena"
)

// order is the maximum number of keys per node.
const order = 64

type node struct {
	leaf     bool
	keys     []arena.Ref // order keys (separators in interior nodes)
	vals     []arena.Ref // leaf only: values, parallel to keys
	children []*node     // interior only: len(keys)+1 children
	next     *node       // leaf only: right sibling
}

// Map is an off-heap B+ tree map.
type Map struct {
	mu    sync.RWMutex
	root  *node
	alloc *arena.Allocator
	size  int
}

// New creates an empty tree drawing blocks from pool (nil = shared).
func New(pool *arena.Pool) *Map {
	if pool == nil {
		pool = arena.DefaultPool()
	}
	return &Map{
		root:  &node{leaf: true},
		alloc: arena.NewAllocator(pool),
	}
}

// Len returns the number of mappings.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Footprint returns the off-heap bytes held.
func (m *Map) Footprint() int64 { return m.alloc.Footprint() }

// Close releases the off-heap blocks.
func (m *Map) Close() { m.alloc.Close() }

func (m *Map) keyBytes(r arena.Ref) []byte { return m.alloc.Bytes(r) }

// findLeaf descends to the leaf that may hold key. Caller holds a lock.
func (m *Map) findLeaf(key []byte) *node {
	n := m.root
	for !n.leaf {
		i := m.upperBound(n, key)
		n = n.children[i]
	}
	return n
}

// upperBound returns the child index to descend into: the number of
// separator keys ≤ key.
func (m *Map) upperBound(n *node, key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(m.keyBytes(n.keys[mid]), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafIndex returns (index, found) of key within leaf n.
func (m *Map) leafIndex(n *node, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(m.keyBytes(n.keys[mid]), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(m.keyBytes(n.keys[lo]), key)
}

// Read runs f on the value mapped to key under the tree's read lock.
func (m *Map) Read(key []byte, f func([]byte) error) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findLeaf(key)
	i, found := m.leafIndex(n, key)
	if !found {
		return false, nil
	}
	return true, f(m.alloc.Bytes(n.vals[i]))
}

// GetCopy returns a copy of the value mapped to key.
func (m *Map) GetCopy(key, dst []byte) ([]byte, bool) {
	var out []byte
	ok, _ := m.Read(key, func(b []byte) error {
		out = append(dst[:0], b...)
		return nil
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// Contains reports whether key is present.
func (m *Map) Contains(key []byte) bool {
	ok, _ := m.Read(key, func([]byte) error { return nil })
	return ok
}

// Put maps key to val.
func (m *Map) Put(key, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.putLocked(key, val, true)
}

// PutIfAbsent inserts iff absent, reporting whether it inserted.
func (m *Map) PutIfAbsent(key, val []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.findLeaf(key)
	if _, found := m.leafIndex(n, key); found {
		return false, nil
	}
	return true, m.putLocked(key, val, false)
}

func (m *Map) putLocked(key, val []byte, overwrite bool) error {
	n := m.findLeaf(key)
	i, found := m.leafIndex(n, key)
	if found {
		if !overwrite {
			return nil
		}
		old := n.vals[i]
		if old.Len() == len(val) {
			copy(m.alloc.Bytes(old), val)
			return nil
		}
		nref, err := m.alloc.Write(val)
		if err != nil {
			return err
		}
		n.vals[i] = nref
		m.alloc.Free(old)
		return nil
	}
	kref, err := m.alloc.Write(key)
	if err != nil {
		return err
	}
	vref, err := m.alloc.Write(val)
	if err != nil {
		return err
	}
	n.keys = append(n.keys, 0)
	n.vals = append(n.vals, 0)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = kref
	n.vals[i] = vref
	m.size++
	if len(n.keys) > order {
		m.splitPath(key)
	}
	return nil
}

// splitPath re-descends from the root splitting any overfull node on the
// way to key. Splitting top-down keeps parents non-full before their
// children split, so a single pass suffices.
func (m *Map) splitPath(key []byte) {
	if len(m.root.keys) > order {
		left := m.root
		mid, right := m.splitNode(left)
		m.root = &node{
			keys:     []arena.Ref{mid},
			children: []*node{left, right},
		}
	}
	n := m.root
	for !n.leaf {
		i := m.upperBound(n, key)
		c := n.children[i]
		if len(c.keys) > order {
			mid, right := m.splitNode(c)
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = mid
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			// Re-decide which side key belongs to.
			if bytes.Compare(m.keyBytes(mid), key) <= 0 {
				c = right
			}
		}
		n = c
	}
}

// splitNode splits n in half, returning the separator and the new right
// sibling.
func (m *Map) splitNode(n *node) (arena.Ref, *node) {
	h := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[h:]...)
		right.vals = append(right.vals, n.vals[h:]...)
		n.keys = n.keys[:h:h]
		n.vals = n.vals[:h:h]
		right.next = n.next
		n.next = right
		return right.keys[0], right
	}
	// Interior: the middle key moves up.
	mid := n.keys[h]
	right.keys = append(right.keys, n.keys[h+1:]...)
	right.children = append(right.children, n.children[h+1:]...)
	n.keys = n.keys[:h:h]
	n.children = n.children[: h+1 : h+1]
	return mid, right
}

// Compute applies f to the value in place under the write lock.
func (m *Map) Compute(key []byte, f func([]byte)) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.findLeaf(key)
	i, found := m.leafIndex(n, key)
	if !found {
		return false
	}
	f(m.alloc.Bytes(n.vals[i]))
	return true
}

// Remove deletes the mapping for key. Leaves may underflow (no
// rebalancing), like MapDB's lazy deletes.
func (m *Map) Remove(key []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.findLeaf(key)
	i, found := m.leafIndex(n, key)
	if !found {
		return false
	}
	m.alloc.Free(n.keys[i])
	m.alloc.Free(n.vals[i])
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	m.size--
	return true
}

// Ascend scans keys ≥ from in ascending order under the read lock.
func (m *Map) Ascend(from []byte, f func(key, val []byte) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n *node
	var i int
	if from == nil {
		n = m.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n = m.findLeaf(from)
		i, _ = m.leafIndex(n, from)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !f(m.keyBytes(n.keys[i]), m.alloc.Bytes(n.vals[i])) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Descend scans keys < to in descending order. Like MapDB (whose leaves
// are singly linked), each step is a fresh root-to-leaf descent.
func (m *Map) Descend(to []byte, f func(key, val []byte) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bound := to
	for {
		k, v, ok := m.lowerLocked(bound)
		if !ok {
			return
		}
		kb := m.keyBytes(k)
		if !f(kb, m.alloc.Bytes(v)) {
			return
		}
		bound = append([]byte(nil), kb...)
	}
}

// lowerLocked finds the greatest key strictly below bound (nil = +inf).
func (m *Map) lowerLocked(bound []byte) (arena.Ref, arena.Ref, bool) {
	n := m.root
	if bound == nil {
		for !n.leaf {
			n = n.children[len(n.children)-1]
		}
		if len(n.keys) == 0 {
			return 0, 0, false
		}
		return n.keys[len(n.keys)-1], n.vals[len(n.keys)-1], true
	}
	// Descend tracking the best (rightmost < bound) candidate subtree.
	var bestLeaf *node
	bestIdx := -1
	for {
		if n.leaf {
			// Keys strictly below bound within this leaf.
			i, _ := m.leafIndex(n, bound)
			if i > 0 {
				bestLeaf, bestIdx = n, i-1
			}
			break
		}
		i := m.upperBound(n, bound)
		// All separators with index < i are < bound... not necessarily
		// useful; candidates live in children[0..i]. Descend into
		// children[i]; if it turns out empty below bound, fall back via
		// the leaf chain is impossible (singly linked), so remember the
		// rightmost key of the left sibling subtree instead.
		if i > 0 {
			// The subtree children[i-1] is entirely < bound: its maximum
			// is a valid fallback.
			c := n.children[i-1]
			for !c.leaf {
				c = c.children[len(c.children)-1]
			}
			if len(c.keys) > 0 {
				bestLeaf, bestIdx = c, len(c.keys)-1
			}
		}
		n = n.children[i]
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	return bestLeaf.keys[bestIdx], bestLeaf.vals[bestIdx], true
}
