package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"oakmap/internal/arena"
)

func newTree(t testing.TB) *Map {
	t.Helper()
	m := New(arena.NewPool(1<<20, 0))
	t.Cleanup(m.Close)
	return m
}

func k(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func kOf(b []byte) int { return int(binary.BigEndian.Uint64(b)) }

func TestEmpty(t *testing.T) {
	m := newTree(t)
	if m.Len() != 0 || m.Contains(k(1)) || m.Remove(k(1)) {
		t.Fatal("empty tree misbehaves")
	}
	count := 0
	m.Ascend(nil, func(_, _ []byte) bool { count++; return true })
	m.Descend(nil, func(_, _ []byte) bool { count++; return true })
	if count != 0 {
		t.Fatal("scan on empty tree")
	}
}

func TestPutGetAcrossSplits(t *testing.T) {
	m := newTree(t)
	const n = 5000 // many levels at order 64
	for _, i := range rand.Perm(n) {
		if err := m.Put(k(i), []byte(fmt.Sprintf("v%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := m.GetCopy(k(i), nil)
		if !ok || string(v) != fmt.Sprintf("v%06d", i) {
			t.Fatalf("Get(%d) = %q %v", i, v, ok)
		}
	}
	// Overwrite with same and different sizes.
	m.Put(k(7), []byte("w000007"))
	m.Put(k(8), []byte("longer-value-here"))
	if v, _ := m.GetCopy(k(7), nil); string(v) != "w000007" {
		t.Fatal("same-size overwrite")
	}
	if v, _ := m.GetCopy(k(8), nil); string(v) != "longer-value-here" {
		t.Fatal("resize overwrite")
	}
}

func TestAscendOrdered(t *testing.T) {
	m := newTree(t)
	const n = 3000
	for _, i := range rand.Perm(n) {
		m.Put(k(i), []byte("x"))
	}
	prev := -1
	count := 0
	m.Ascend(nil, func(key, _ []byte) bool {
		ki := kOf(key)
		if ki <= prev {
			t.Fatalf("order violation at %d", ki)
		}
		prev = ki
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d", count)
	}
	// Bounded start.
	first := -1
	m.Ascend(k(1234), func(key, _ []byte) bool {
		first = kOf(key)
		return false
	})
	if first != 1234 {
		t.Fatalf("Ascend from 1234 started at %d", first)
	}
}

func TestDescend(t *testing.T) {
	m := newTree(t)
	const n = 1000
	for _, i := range rand.Perm(n) {
		m.Put(k(i), []byte("x"))
	}
	want := n - 1
	m.Descend(nil, func(key, _ []byte) bool {
		if kOf(key) != want {
			t.Fatalf("descend got %d; want %d", kOf(key), want)
		}
		want--
		return true
	})
	if want != -1 {
		t.Fatalf("descend stopped at %d", want)
	}
	// Bounded.
	got := []int{}
	m.Descend(k(5), func(key, _ []byte) bool {
		got = append(got, kOf(key))
		return true
	})
	if fmt.Sprint(got) != "[4 3 2 1 0]" {
		t.Fatalf("bounded descend = %v", got)
	}
}

func TestRemoveAndReuse(t *testing.T) {
	m := newTree(t)
	for i := 0; i < 500; i++ {
		m.Put(k(i), bytes.Repeat([]byte{1}, 64))
	}
	live := m.alloc.LiveBytes()
	for i := 0; i < 500; i += 2 {
		if !m.Remove(k(i)) {
			t.Fatalf("remove %d", i)
		}
	}
	if m.Len() != 250 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.alloc.LiveBytes() >= live {
		t.Fatal("removals did not free space")
	}
	for i := 0; i < 500; i++ {
		if m.Contains(k(i)) != (i%2 == 1) {
			t.Fatalf("contains(%d) wrong", i)
		}
	}
}

func TestCompute(t *testing.T) {
	m := newTree(t)
	m.Put(k(1), make([]byte, 8))
	if m.Compute(k(2), func([]byte) {}) {
		t.Fatal("compute on absent key")
	}
	for i := 0; i < 10; i++ {
		m.Compute(k(1), func(b []byte) {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		})
	}
	v, _ := m.GetCopy(k(1), nil)
	if binary.LittleEndian.Uint64(v) != 10 {
		t.Fatal("compute lost updates")
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(arena.NewPool(1<<20, 0))
		defer m.Close()
		ref := map[int]string{}
		for n, op := range ops {
			key := int(op % 256)
			switch op % 3 {
			case 0:
				v := fmt.Sprintf("v%d", n)
				m.Put(k(key), []byte(v))
				ref[key] = v
			case 1:
				got := m.Remove(k(key))
				if _, had := ref[key]; got != had {
					return false
				}
				delete(ref, key)
			default:
				v, ok := m.GetCopy(k(key), nil)
				want, had := ref[key]
				if ok != had || (had && string(v) != want) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		var wantKeys []int
		for kk := range ref {
			wantKeys = append(wantKeys, kk)
		}
		sort.Ints(wantKeys)
		var gotKeys []int
		m.Ascend(nil, func(key, _ []byte) bool {
			gotKeys = append(gotKeys, kOf(key))
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			return false
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	m := newTree(t)
	for i := 0; i < 2000; i++ {
		m.Put(k(i), []byte("stable"))
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewPCG(1, 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := 2000 + int(rng.Uint64()%1000)
			m.Put(k(i), []byte("newkey"))
			m.Remove(k(i))
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 2))
			for i := 0; i < 5000; i++ {
				key := int(rng.Uint64() % 2000)
				v, ok := m.GetCopy(k(key), nil)
				if !ok || string(v) != "stable" {
					t.Errorf("stable key %d = %q %v", key, v, ok)
					return
				}
			}
		}(uint64(r))
	}
	wg.Wait()
	close(stop)
	<-writerDone
}
