package analysis

import (
	"go/ast"
	"go/types"
)

// Named reports whether t (after stripping pointers) is the named type
// pkgPath.name.
func Named(t types.Type, pkgPath, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// Callee resolves the static callee of call, or nil (func values,
// builtins, conversions).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsMethod reports whether call statically invokes a method or
// function named name declared in package pkgPath.
func IsMethod(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsBuiltin reports whether call invokes the builtin named name.
func IsBuiltin(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// IsConversion reports whether call is a type conversion, returning the
// target type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// Parents maps every node in the files to its syntactic parent. It is
// the stand-in for x/tools' astutil.PathEnclosingInterval: analyzers
// walk up from a use site to classify its context.
func Parents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// EnclosingFunc walks parents upward from n and returns the innermost
// enclosing function node (*ast.FuncDecl or *ast.FuncLit), or nil.
func EnclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

// FuncBody returns the body of a FuncDecl or FuncLit node.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// Within reports whether inner is lexically contained in outer's
// position range.
func Within(inner, outer ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}
