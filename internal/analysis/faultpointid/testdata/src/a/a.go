// Package a exercises the faultpointid analyzer: typo'd references,
// duplicate declarations, dead hooks, and non-literal names.
package a

import "oakmap/internal/faultpoint"

var fpAlive = faultpoint.New("a/alive")

var fpDead = faultpoint.New("a/dead") // want `fault point "a/dead" is declared but never consulted with Fire\(\): dead chaos hook`

var fpDup = faultpoint.New("a/alive") // want `fault point "a/alive" declared twice in this package \(previous at .*\): init would panic`

func consult() bool {
	return fpAlive.Fire()
}

func armKnown() {
	_ = faultpoint.Arm("a/alive", faultpoint.Never())
}

func armTypo() {
	_ = faultpoint.Arm("a/typpo", faultpoint.Never()) // want `unknown fault point "a/typpo": no faultpoint\.New declares it \(typo, or the point was removed\)`
}

// jitterSet mirrors the chaos harness idiom: point names kept in a
// []string and armed in a loop. The analyzer cross-checks every
// point-shaped literal in a function that touches Arm/Lookup.
func jitterSet() {
	names := []string{"a/alive", "a/stale"} // want `unknown fault point "a/stale": no faultpoint\.New declares it \(typo, or the point was removed\)`
	for _, n := range names {
		_ = faultpoint.Arm(n, faultpoint.Never())
	}
}

func lookupKnown() {
	if p, ok := faultpoint.Lookup("a/alive"); ok {
		p.Disarm()
	}
}

func newInsideFunc() *faultpoint.Point {
	return faultpoint.New("a/inline") // want `faultpoint\.New\("a/inline"\) inside a function: points must be package-level vars \(second call panics the registry\)`
}

func newDynamic(name string) *faultpoint.Point {
	return faultpoint.New(name) // want `faultpoint\.New argument must be a string literal so the name can be cross-checked`
}
