// Package faultpointid proves the identity of every chaos hook at
// compile time (DESIGN.md §10).
//
// Fault points (internal/faultpoint) are joined by NAME: production
// code declares `var fp = faultpoint.New("pkg/site")` and harnesses arm
// them with `faultpoint.Arm("pkg/site", hook)`. The link is a string,
// so the compiler cannot see it — a typo'd Arm silently arms nothing
// (the chaos leg tests a fault that never fires), a renamed point
// leaves stale references, and a duplicate New panics at init, but
// only on the first binary that links both declarations.
//
// Per package, the analyzer collects:
//
//   - declarations: faultpoint.New(lit) — the name must be a string
//     literal (a computed name cannot be cross-checked, and would also
//     defeat the runtime registry's duplicate panic message);
//   - references: string-literal arguments to faultpoint.Arm and
//     faultpoint.Lookup, plus — because harnesses keep jitter sets in
//     []string / map composites — any string literal containing "/"
//     inside a function that calls Arm or Lookup;
//   - consultations: p.Fire() calls resolved to the declaring var.
//
// The Finish pass then checks module-wide: every reference names a
// declared point, no name is declared twice, and every declared point
// is consulted somewhere (a point that is never Fire()d is a dead
// chaos hook — the window it was supposed to open no longer exists).
package faultpointid

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"oakmap/internal/analysis"
)

// Analyzer is the faultpointid analysis.
var Analyzer = &analysis.Analyzer{
	Name:   "faultpointid",
	Doc:    "cross-check fault-point names: no typo'd Arm/Lookup, no duplicate New, no dead hooks",
	Run:    run,
	Finish: finish,
}

const fpPkg = "oakmap/internal/faultpoint"

// facts is one package's contribution to the module-wide check.
type facts struct {
	pkgPath  string
	declared map[string]token.Pos // New("name") sites
	refs     map[string]token.Pos // Arm/Lookup names (first site each)
	fired    map[string]bool      // declared names consulted via .Fire()
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == fpPkg {
		return nil // the registry implementation
	}
	fs := &facts{
		pkgPath:  pass.Pkg.Path(),
		declared: make(map[string]token.Pos),
		refs:     make(map[string]token.Pos),
		fired:    make(map[string]bool),
	}
	info := pass.TypesInfo

	// Map package-level vars to the point name they were built with,
	// so Fire/Arm method calls can be attributed.
	varName := make(map[types.Object]string)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok || !analysis.IsMethod(info, call, fpPkg, "New") {
						continue
					}
					name, ok := litString(call)
					if !ok {
						pass.Report(call.Pos(), "faultpoint.New argument must be a string literal so the name can be cross-checked")
						continue
					}
					if prev, dup := fs.declared[name]; dup {
						pass.Report(call.Pos(), "fault point %q declared twice in this package (previous at %s): init would panic", name, pass.Fset.Position(prev))
					}
					fs.declared[name] = call.Pos()
					if i < len(vs.Names) {
						if obj := info.Defs[vs.Names[i]]; obj != nil {
							varName[obj] = name
						}
					}
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case analysis.IsMethod(info, call, fpPkg, "New"):
				// Inside a function body: the registry forbids
				// re-registration, so points made outside package var
				// init are almost certainly a bug.
				if insideFunc(f, call) {
					if name, ok := litString(call); ok {
						if _, known := fs.declared[name]; !known {
							pass.Report(call.Pos(), "faultpoint.New(%q) inside a function: points must be package-level vars (second call panics the registry)", name)
						}
					} else {
						pass.Report(call.Pos(), "faultpoint.New argument must be a string literal so the name can be cross-checked")
					}
				}
			case analysis.IsMethod(info, call, fpPkg, "Arm") || analysis.IsMethod(info, call, fpPkg, "Lookup"):
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					// p.Arm(hook) method form: attribute via the var.
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if name, ok := varName[info.Uses[id]]; ok {
							fs.fired[name] = true // armed through the var: clearly alive
							return true
						}
					}
				}
				if len(call.Args) > 0 {
					if name, ok := litStringExpr(call.Args[0]); ok {
						if _, seen := fs.refs[name]; !seen {
							fs.refs[name] = call.Args[0].Pos()
						}
					}
				}
			case analysis.IsMethod(info, call, fpPkg, "Fire"):
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if name, ok := varName[info.Uses[id]]; ok {
							fs.fired[name] = true
						}
					}
				}
			}
			return true
		})
	}

	// Harnesses keep point names in []string jitter sets and
	// map[string]float64 probability tables: inside any function that
	// touches Arm or Lookup, every string literal shaped like a point
	// name ("group/site") counts as a reference.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callsArm := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if analysis.IsMethod(info, c, fpPkg, "Arm") || analysis.IsMethod(info, c, fpPkg, "Lookup") {
						callsArm = true
						return false
					}
				}
				return true
			})
			if !callsArm {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !pointShaped(s) {
					return true
				}
				if _, seen := fs.refs[s]; !seen {
					fs.refs[s] = lit.Pos()
				}
				return true
			})
		}
	}

	pass.ExportFact(fs)
	return nil
}

// litString extracts a call's first argument as a string literal.
func litString(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	return litStringExpr(call.Args[0])
}

func litStringExpr(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// pointShaped matches the "group/site" naming convention, excluding
// path-ish strings.
func pointShaped(s string) bool {
	if strings.Count(s, "/") != 1 || strings.ContainsAny(s, " .%:\\\n\t") {
		return false
	}
	parts := strings.SplitN(s, "/", 2)
	return parts[0] != "" && parts[1] != ""
}

// insideFunc reports whether n sits inside any function body of f.
func insideFunc(f *ast.File, n ast.Node) bool {
	inside := false
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			if analysis.Within(n, fd.Body) {
				inside = true
				break
			}
		}
	}
	return inside
}

// finish cross-checks all packages' facts.
func finish(m *analysis.ModulePass) error {
	declared := make(map[string]token.Pos)
	fired := make(map[string]bool)
	type ref struct {
		name string
		pos  token.Pos
	}
	var refs []ref
	for _, raw := range m.Facts {
		fs := raw.(*facts)
		for name, pos := range fs.declared {
			if prev, dup := declared[name]; dup {
				m.Report(pos, "fault point %q declared in two packages (previous at %s): linking both panics at init", name, m.Fset.Position(prev))
				continue
			}
			declared[name] = pos
		}
		for name := range fs.fired {
			fired[name] = true
		}
		for name, pos := range fs.refs {
			refs = append(refs, ref{name, pos})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].pos < refs[j].pos })
	for _, r := range refs {
		if _, ok := declared[r.name]; !ok {
			m.Report(r.pos, "unknown fault point %q: no faultpoint.New declares it (typo, or the point was removed)", r.name)
		}
	}
	var names []string
	for name := range declared {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !fired[name] {
			m.Report(declared[name], "fault point %q is declared but never consulted with Fire(): dead chaos hook", name)
		}
	}
	return nil
}
