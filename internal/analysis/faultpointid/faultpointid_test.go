package faultpointid_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/faultpointid"
)

func TestFaultPointID(t *testing.T) {
	analysistest.Run(t, faultpointid.Analyzer, filepath.Join("testdata", "src", "a"))
}
