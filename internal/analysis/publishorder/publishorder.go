// Package publishorder enforces //oak:publish-before annotations: a
// store to field X must precede the publishing operation on field Y
// in every function that performs both (DESIGN.md §10).
//
// This is the bug class behind two real incidents in this codebase:
// PR 8's BeginSnapshot raised retainFloor AFTER ratcheting the
// version clock (a concurrent sweep could reclaim versions the new
// snapshot was about to read), and PR 3's epoch advance published the
// new epoch via CAS BEFORE draining the limbo bucket it unblocked
// (a racing Retire could append to a bucket already considered
// drained). Both compile, both pass unit tests, both lose data only
// under a precise interleaving. The annotation turns the ordering
// into a checked contract:
//
//	retainFloor atomic.Uint64 //oak:publish-before clock
//
// declares "any function that publishes clock and touches retainFloor
// must write retainFloor first".
//
// Publish events on Y: mutating atomic calls (Store, Add, Swap,
// CompareAndSwap, Or, And), close(Y) for channel-typed Y, or a plain
// assignment otherwise. Write events on X: mutating atomic calls,
// plain assignments, or a call to a same-package function whose
// transitive summary writes X (the epoch drain helper). Events are
// compared in source order within the function — equivalent to a
// may-written path walk for the codebase's structured flow, and
// deliberately lenient about conditional writes: the CAS-loop idiom
// `if floor.Load() < c+1 { floor.Store(c+1) }` before the publish is
// clean, because SOME program point before the publish writes X.
// What cannot happen is a publish with no preceding X write at all —
// exactly the two incident shapes.
//
// Functions that publish Y without touching X anywhere (PrepareBatch
// ratchets the clock; the floor belongs to Begin/EndSnapshot) are
// outside the contract and skipped. Writes inside go/defer function
// literals don't count as "before" — they run at another time.
package publishorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/lockset"
)

// Analyzer is the publishorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "publishorder",
	Doc:  "flag publishes of an //oak:publish-before target with no preceding write of the declared field",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ls := lockset.Extract(pass)
	if len(ls.Publishes) == 0 {
		return nil
	}
	parents := analysis.Parents(pass.Files)

	// Transitive per-package write summaries: which declared X fields
	// does each function (or anything it statically calls in-package)
	// write?
	writes, callees := summaries(pass, ls, parents)
	closure := transitive(writes, callees)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ls, parents, fd, closure)
		}
	}
	return nil
}

// summaries records, per function object, the declared X fields it
// directly writes and its same-package static callees.
func summaries(pass *analysis.Pass, ls *lockset.Info, parents map[ast.Node]ast.Node) (map[types.Object]map[*types.Var]bool, map[types.Object][]types.Object) {
	writes := make(map[types.Object]map[*types.Var]bool)
	callees := make(map[types.Object][]types.Object)
	xFields := make(map[*types.Var]bool)
	for _, p := range ls.Publishes {
		xFields[p.Field] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pass.TypesInfo.Defs[fd.Name]
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if v := fieldOf(pass.TypesInfo, n); v != nil && xFields[v] && isWriteEvent(pass.TypesInfo, parents, n) {
						if writes[fn] == nil {
							writes[fn] = make(map[*types.Var]bool)
						}
						writes[fn][v] = true
					}
				case *ast.CallExpr:
					if c := analysis.Callee(pass.TypesInfo, n); c != nil && c.Pkg() == pass.Pkg {
						callees[fn] = append(callees[fn], c)
					}
				}
				return true
			})
		}
	}
	return writes, callees
}

func transitive(writes map[types.Object]map[*types.Var]bool, callees map[types.Object][]types.Object) map[types.Object]map[*types.Var]bool {
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, c := range cs {
				for v := range writes[c] {
					if writes[fn] == nil {
						writes[fn] = make(map[*types.Var]bool)
					}
					if !writes[fn][v] {
						writes[fn][v] = true
						changed = true
					}
				}
			}
		}
	}
	return writes
}

// event is one X-write or Y-publish inside a function. An async write
// (inside go, or a deferred literal) proves the function touches X —
// binding it to the contract — but runs at another time, so it never
// satisfies "written before the publish".
type event struct {
	pos     token.Pos
	publish bool
	async   bool
	decl    *lockset.PublishDecl
}

func checkFunc(pass *analysis.Pass, ls *lockset.Info, parents map[ast.Node]ast.Node, fd *ast.FuncDecl, closure map[types.Object]map[*types.Var]bool) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			v := fieldOf(pass.TypesInfo, n)
			if v == nil {
				return true
			}
			for _, d := range ls.Publishes {
				if v == d.Field && isWriteEvent(pass.TypesInfo, parents, n) {
					events = append(events, event{pos: n.Pos(), decl: d, async: deferredOrAsync(parents, n)})
				}
				if v == d.Before && isPublishEvent(pass.TypesInfo, parents, n) && !deferredOrAsync(parents, n) {
					events = append(events, event{pos: n.Pos(), publish: true, decl: d})
				}
			}
		case *ast.CallExpr:
			// A call to a same-package function that (transitively)
			// writes X counts as an X write at the call site.
			c := analysis.Callee(pass.TypesInfo, n)
			if c == nil || deferredOrAsync(parents, n) {
				return true
			}
			for _, d := range ls.Publishes {
				if closure[c][d.Field] {
					events = append(events, event{pos: n.Pos(), decl: d})
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	written := make(map[*lockset.PublishDecl]bool)
	for _, e := range events {
		if !e.publish {
			written[e.decl] = true
		}
	}
	seenWrite := make(map[*lockset.PublishDecl]bool)
	for _, e := range events {
		if !e.publish {
			if !e.async {
				seenWrite[e.decl] = true
			}
			continue
		}
		if !written[e.decl] {
			continue // publish-only function: X is another function's job
		}
		if !seenWrite[e.decl] {
			pass.Report(e.pos, "%s published before %s is written: //oak:publish-before requires the %s write to precede every publish of %s in this function",
				e.decl.BClass, e.decl.Class, e.decl.Class, e.decl.BClass)
		}
	}
}

// fieldOf resolves sel to a struct-field variable, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isWriteEvent reports whether sel is written: a mutating atomic call,
// a plain assignment target, or the operand of close/delete.
func isWriteEvent(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	if atomicMutator(parents, sel) != "" {
		return true
	}
	switch p := parents[sel].(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == sel {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return false
	}
	return false
}

// isPublishEvent reports whether sel is published: a mutating atomic
// call, close() on a channel field, or a plain assignment.
func isPublishEvent(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	if atomicMutator(parents, sel) != "" {
		return true
	}
	if c, ok := parents[sel].(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "close" && len(c.Args) == 1 && c.Args[0] == sel {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	if p, ok := parents[sel].(*ast.AssignStmt); ok {
		for _, l := range p.Lhs {
			if l == sel {
				return true
			}
		}
	}
	return false
}

// atomicMutator returns the mutating atomic method name invoked on
// sel, or "".
func atomicMutator(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) string {
	m, ok := parents[sel].(*ast.SelectorExpr)
	if !ok || m.X != sel {
		return ""
	}
	c, ok := parents[m].(*ast.CallExpr)
	if !ok || c.Fun != m {
		return ""
	}
	switch m.Sel.Name {
	case "Store", "Add", "Swap", "CompareAndSwap", "Or", "And":
		return m.Sel.Name
	}
	return ""
}

// deferredOrAsync reports whether n sits inside a go statement or a
// deferred function literal: those bodies run at another time, so
// their events don't participate in this function's source order.
func deferredOrAsync(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		}
	}
	return false
}
