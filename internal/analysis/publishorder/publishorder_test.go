package publishorder_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/publishorder"
)

func TestPublishorder(t *testing.T) {
	analysistest.Run(t, publishorder.Analyzer, filepath.Join("testdata", "src", "a"))
}
