// Package a exercises publishorder with the three historical
// regression shapes: PR 8's floor-after-ratchet, PR 3's
// drain-after-publish, and the batch descriptor's commit word.
package a

import (
	"sync"
	"sync/atomic"
)

// mvcc mirrors the real mvccState: the retention floor must be raised
// before the snapshot clock ratchets, or a concurrent sweep reclaims
// versions the new snapshot is about to read.
type mvcc struct {
	mu         sync.Mutex
	clock      atomic.Uint64
	retainFloor atomic.Uint64 //oak:publish-before clock
}

// good: the real post-fix BeginSnapshot shape — conditional floor
// raise inside the CAS loop, before the ratchet.
func (m *mvcc) beginSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		c := m.clock.Load()
		if m.retainFloor.Load() < c+1 {
			m.retainFloor.Store(c + 1)
		}
		if m.clock.CompareAndSwap(c, c+1) {
			return c + 1
		}
	}
}

// Seeded regression (PR-8 shape): the clock ratchets FIRST, so a
// sweep between the CAS and the floor store sees the old floor and
// reclaims the snapshot's versions.
func (m *mvcc) beginSnapshotRacy() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		c := m.clock.Load()
		if m.clock.CompareAndSwap(c, c+1) { // want `a.mvcc.clock published before a.mvcc.retainFloor is written`
			m.retainFloor.Store(c + 1)
			return c + 1
		}
	}
}

// good: publish-only functions are outside the contract — the floor
// belongs to begin/end, the ratchet alone is someone else's protocol.
func (m *mvcc) prepareBatch() uint64 {
	return m.clock.Add(2) - 1
}

// epoch mirrors the real Domain: the limbo bucket must drain before
// the global epoch CAS publishes the new epoch, or a racing Retire
// appends to a bucket already considered drained.
type epoch struct {
	global atomic.Uint64
	items  []int //oak:publish-before global
}

func (e *epoch) drainBucket() {
	e.items = e.items[:0]
}

// good: the post-fix advance shape — drain through the helper, then
// publish.
func (e *epoch) advance(cur uint64) bool {
	e.drainBucket()
	return e.global.CompareAndSwap(cur, cur+1)
}

// Seeded regression (PR-3 shape): CAS first, drain after. The write
// reaches the analyzer through the helper's transitive summary.
func (e *epoch) advanceRacy(cur uint64) bool {
	ok := e.global.CompareAndSwap(cur, cur+1) // want `a.epoch.global published before a.epoch.items is written`
	e.drainBucket()
	return ok
}

// desc mirrors BatchDesc: waiters woken by close(done) must observe
// the final state word.
type desc struct {
	state atomic.Uint32 //oak:publish-before done
	done  chan struct{}
}

// good: state is stored before the wakeup publishes it.
func (d *desc) commit() {
	d.state.Store(2)
	close(d.done)
}

// Seeded regression: waiters wake and read a stale state.
func (d *desc) commitRacy() {
	close(d.done) // want `a.desc.done published before a.desc.state is written`
	d.state.Store(2)
}

// bad: a deferred write binds the function to the contract but runs
// only after the publish has already woken the waiters.
func (d *desc) commitDeferred() {
	defer d.state.Store(2)
	close(d.done) // want `a.desc.done published before a.desc.state is written`
}
