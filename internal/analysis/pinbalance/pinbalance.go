// Package pinbalance proves that every epoch pin is released on every
// path — the compile-time form of the EBR discipline from DESIGN.md
// §5.1 (DESIGN.md §10).
//
// A call to (*epoch.Domain).Pin returns a Guard that MUST reach Unpin
// exactly once: a leaked guard wedges its reader slot at an old epoch,
// so the global epoch can never advance past it and every limbo list
// grows without bound — an unbounded memory leak that only shows up
// under sustained load. The analyzer enforces, per acquisition:
//
//   - the Guard is bound to a variable (not discarded or blank);
//   - the Guard does not escape the acquiring function (no store to a
//     field/global/channel, no capture by a goroutine, no return);
//   - the release is either DEFERRED (defer g.Unpin(), or a deferred
//     closure that calls g.Unpin() — the only form that also survives
//     panics), or a conservative walk of the function's structured
//     control flow finds g.Unpin() on every path to every return. In
//     the non-deferred form, any function call inside the pin window
//     is additionally flagged: a panic there unwinds past the Unpin
//     ("defer-or-flag").
//
// The walk understands the codebase's pin-cycling idiom (g.Unpin();
// g = d.Pin() under an existing defer) because deferred protection is
// keyed to the variable, not the call. goto/labels are not traced:
// functions mixing pins with unstructured control flow are flagged and
// should use defer.
//
// The package also enforces the *Pinned naming convention: a function
// whose name ends in "Pinned" asserts "caller already holds a pin", so
// calls to it are only legal inside a function that itself pins (or is
// itself *Pinned).
package pinbalance

import (
	"go/ast"
	"go/types"
	"strings"

	"oakmap/internal/analysis"
)

// Analyzer is the pinbalance analysis.
var Analyzer = &analysis.Analyzer{
	Name: "pinbalance",
	Doc:  "flag epoch.Pin guards that can leak: missing, non-deferred, or path-dependent Unpin",
	Run:  run,
}

const epochPkg = "oakmap/internal/epoch"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == epochPkg {
		return nil // the implementation itself manufactures guards
	}
	parents := analysis.Parents(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPinCall(pass.TypesInfo, call) {
				return true
			}
			checkPin(pass, parents, call)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkPinnedConvention(pass, parents, call)
			return true
		})
	}
	return nil
}

func isPinCall(info *types.Info, call *ast.CallExpr) bool {
	return analysis.IsMethod(info, call, epochPkg, "Pin")
}

func isUnpinCallOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	if !analysis.IsMethod(info, call, epochPkg, "Unpin") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// checkPin verifies one Pin acquisition.
func checkPin(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := analysis.EnclosingFunc(parents, call)
	if fn == nil {
		return // package-level var init: no guard discipline possible
	}

	// The guard must be bound to a variable.
	p := parents[call]
	as, ok := p.(*ast.AssignStmt)
	if !ok {
		if _, isExpr := p.(*ast.ExprStmt); isExpr {
			pass.Report(call.Pos(), "Pin result discarded: the guard can never be released")
		} else {
			pass.Report(call.Pos(), "Pin result must be bound to a local variable so its Unpin is checkable")
		}
		return
	}
	var guard types.Object
	for i, r := range as.Rhs {
		if r != call {
			continue
		}
		if i < len(as.Lhs) {
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if id.Name == "_" {
					pass.Report(call.Pos(), "Pin result assigned to blank: the guard can never be released")
					return
				}
				if obj := info.Defs[id]; obj != nil {
					guard = obj
				} else {
					guard = info.Uses[id]
				}
			}
		}
	}
	if guard == nil {
		pass.Report(call.Pos(), "Pin result must be bound to a local variable so its Unpin is checkable")
		return
	}

	body := analysis.FuncBody(fn)
	if guardEscapes(pass, parents, fn, guard) {
		return // reported inside
	}
	if hasDeferredUnpin(info, body, guard) {
		return // panic-safe on every path, re-pins included
	}

	// No deferred release: require structured all-paths balance and
	// flag panic exposure inside the pin window.
	w := &walker{pass: pass, info: info, guard: guard, pin: call}
	state := w.stmts(body.List, stUnknown)
	if state == stPinned {
		pass.Report(call.Pos(), "missing Unpin: the guard is still pinned when the function ends")
	}
	if w.sawGoto {
		pass.Report(call.Pos(), "pin released through unstructured control flow (goto/label): use defer g.Unpin()")
	}
	for _, risk := range w.panicRisks {
		pass.Report(risk.Pos(), "call inside a pin window without a deferred Unpin: a panic here leaks the pin")
	}
}

// guardEscapes flags guards stored or captured beyond the acquiring
// function.
func guardEscapes(pass *analysis.Pass, parents map[ast.Node]ast.Node, fn ast.Node, guard types.Object) bool {
	escaped := false
	ast.Inspect(analysis.FuncBody(fn), func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != guard {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.ReturnStmt:
			pass.Report(id.Pos(), "epoch guard returned from the acquiring function: release responsibility becomes untrackable")
			escaped = true
		case *ast.SendStmt:
			pass.Report(id.Pos(), "epoch guard sent on a channel: release responsibility becomes untrackable")
			escaped = true
		case *ast.AssignStmt:
			for i, r := range p.Rhs {
				if r != id {
					continue
				}
				if i < len(p.Lhs) {
					switch ast.Unparen(p.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						pass.Report(id.Pos(), "epoch guard stored into memory that outlives the acquiring function")
						escaped = true
					}
				}
			}
		case *ast.CallExpr:
			if _, isGo := parents[p].(*ast.GoStmt); isGo && p.Fun != id {
				pass.Report(id.Pos(), "epoch guard passed to a goroutine: the pin outlives the acquiring frame")
				escaped = true
			}
		}
		// Capture inside a `go func() { ... }` literal.
		for q := parents[id]; q != nil && q != fn; q = parents[q] {
			if lit, ok := q.(*ast.FuncLit); ok {
				if c, ok := parents[lit].(*ast.CallExpr); ok && c.Fun == lit {
					if _, isGo := parents[c].(*ast.GoStmt); isGo {
						pass.Report(id.Pos(), "epoch guard captured by a goroutine: the pin outlives the acquiring frame")
						escaped = true
					}
				}
			}
		}
		return true
	})
	return escaped
}

// hasDeferredUnpin reports whether body registers a deferred release of
// guard: defer g.Unpin(), or a deferred closure whose body calls
// g.Unpin().
func hasDeferredUnpin(info *types.Info, body *ast.BlockStmt, guard types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isUnpinCallOn(info, d.Call, guard) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isUnpinCallOn(info, c, guard) {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}

// Pin-state lattice for the structured walk.
type pinState int

const (
	stUnknown    pinState = iota // before the Pin executes
	stPinned                     // guard held
	stUnpinned                   // guard released
	stTerminated                 // this path returned
)

func join(a, b pinState) pinState {
	if a == stTerminated {
		return b
	}
	if b == stTerminated {
		return a
	}
	if a == b {
		return a
	}
	if a == stPinned || b == stPinned {
		// One live path holds the guard, the other does not: treat the
		// merge as pinned so a missing release downstream is reported.
		return stPinned
	}
	return stUnpinned // unknown ⊔ unpinned: the guard is not held
}

type walker struct {
	pass       *analysis.Pass
	info       *types.Info
	guard      types.Object
	pin        *ast.CallExpr
	sawGoto    bool
	panicRisks []ast.Node // positions reported as token positions by caller
}

// note: walker reports path problems as it finds them; panicRisks
// collect call positions inside the pin window.
func (w *walker) stmts(list []ast.Stmt, state pinState) pinState {
	for _, s := range list {
		state = w.stmt(s, state)
		if state == stTerminated {
			return state
		}
	}
	return state
}

func (w *walker) stmt(s ast.Stmt, state pinState) pinState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if c, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if c == w.pin || (isPinCall(w.info, c) && w.assignsGuard(s)) {
					if state == stPinned {
						w.pass.Report(c.Pos(), "re-pin while the previous guard is still held: the first pin leaks")
					}
					return stPinned
				}
			}
		}
		w.scanCalls(s, state)
		return state
	case *ast.ExprStmt:
		if c, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isUnpinCallOn(w.info, c, w.guard) {
				if state == stUnpinned {
					w.pass.Report(c.Pos(), "double Unpin of the same guard")
				}
				return stUnpinned
			}
		}
		w.scanCalls(s, state)
		return state
	case *ast.ReturnStmt:
		w.scanCalls(s, state)
		if state == stPinned {
			w.pass.Report(s.Pos(), "return while the epoch guard is still pinned: missing Unpin on this path")
		}
		return stTerminated
	case *ast.IfStmt:
		if s.Init != nil {
			state = w.stmt(s.Init, state)
		}
		w.scanCalls(s.Cond, state)
		then := w.stmts(s.Body.List, state)
		els := state
		if s.Else != nil {
			els = w.stmt(s.Else, state)
		}
		return join(then, els)
	case *ast.BlockStmt:
		return w.stmts(s.List, state)
	case *ast.ForStmt:
		if s.Init != nil {
			state = w.stmt(s.Init, state)
		}
		after := w.stmts(s.Body.List, state)
		if after != stTerminated && after != state {
			w.pass.Report(s.Pos(), "pin/unpin imbalance across a loop iteration")
		}
		return state
	case *ast.RangeStmt:
		after := w.stmts(s.Body.List, state)
		if after != stTerminated && after != state {
			w.pass.Report(s.Pos(), "pin/unpin imbalance across a loop iteration")
		}
		return state
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		out := stTerminated
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cc := cc.(type) {
			case *ast.CaseClause:
				stmts = cc.Body
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cc.Body
				if cc.Comm == nil {
					hasDefault = true
				}
			}
			out = join(out, w.stmts(stmts, state))
		}
		if !hasDefault {
			out = join(out, state) // fall-through when no case matches
		}
		return out
	case *ast.DeferStmt:
		return state // deferred releases were handled before the walk
	case *ast.GoStmt:
		w.scanCalls(s, state)
		return state
	case *ast.BranchStmt:
		if s.Tok.String() == "goto" {
			w.sawGoto = true
		}
		return state
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, state)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return state
	case *ast.SendStmt:
		w.scanCalls(s, state)
		return state
	default:
		return state
	}
}

// assignsGuard reports whether the assignment's LHS includes the
// tracked guard variable (the re-pin idiom g = d.Pin()).
func (w *walker) assignsGuard(as *ast.AssignStmt) bool {
	for _, l := range as.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if w.info.Uses[id] == w.guard || w.info.Defs[id] == w.guard {
				return true
			}
		}
	}
	return false
}

// scanCalls records calls made while pinned without deferred
// protection: each is a panic hole through which the pin leaks.
func (w *walker) scanCalls(n ast.Node, state pinState) {
	if state != stPinned || n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		c, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c == w.pin || isUnpinCallOn(w.info, c, w.guard) {
			return true
		}
		if _, isBuiltin := analysis.IsBuiltin(w.info, c); isBuiltin {
			return true
		}
		if _, isConv := analysis.IsConversion(w.info, c); isConv {
			return true
		}
		w.panicRisks = append(w.panicRisks, c)
		return true
	})
}

// checkPinnedConvention enforces that *Pinned-suffixed functions are
// only called from contexts that hold a pin.
func checkPinnedConvention(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Pinned") {
		return
	}
	// Walk outward through the enclosing functions: any of them being
	// *Pinned, or containing a Pin call, satisfies the convention.
	for encl := analysis.EnclosingFunc(parents, call); encl != nil; encl = analysis.EnclosingFunc(parents, encl) {
		if fd, ok := encl.(*ast.FuncDecl); ok {
			if strings.HasSuffix(fd.Name.Name, "Pinned") {
				return
			}
		}
		found := false
		ast.Inspect(analysis.FuncBody(encl), func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isPinCall(pass.TypesInfo, c) {
				found = true
				return false
			}
			return true
		})
		if found {
			return
		}
	}
	pass.Report(call.Pos(), "%s called without a pin in scope: *Pinned functions require the caller to hold an epoch pin", fn.Name())
}
