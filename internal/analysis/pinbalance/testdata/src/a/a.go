// Package a exercises the pinbalance analyzer: leaked, escaped, and
// panic-exposed epoch guards, next to the deferred and pin-cycling
// forms the codebase actually uses.
package a

import "oakmap/internal/epoch"

func cond() bool { return true }

func work() {}

// --- Safe forms: no diagnostics. ---

func deferredOK(d *epoch.Domain) {
	g := d.Pin()
	defer g.Unpin()
	work()
	if cond() {
		return // early return is fine: the defer releases
	}
	work()
}

func deferredClosureOK(d *epoch.Domain) {
	g := d.Pin()
	defer func() {
		g.Unpin()
	}()
	work()
}

// pinCycleOK is the codebase's pin-cycling idiom: the deferred closure
// releases whichever guard is current, so re-pins inside the loop are
// balanced and panic-safe.
func pinCycleOK(d *epoch.Domain) {
	g := d.Pin()
	defer func() { g.Unpin() }()
	for i := 0; i < 8; i++ {
		g.Unpin()
		g = d.Pin()
	}
}

func balancedNoCallsOK(d *epoch.Domain) {
	g := d.Pin()
	g.Unpin()
}

// --- Unreleasable guards. ---

func discarded(d *epoch.Domain) {
	d.Pin() // want `Pin result discarded: the guard can never be released`
}

func blankBound(d *epoch.Domain) {
	_ = d.Pin() // want `Pin result assigned to blank: the guard can never be released`
}

// --- Path-dependent leaks (no defer). ---

func earlyReturnLeak(d *epoch.Domain) int {
	g := d.Pin()
	if cond() { // want `call inside a pin window without a deferred Unpin: a panic here leaks the pin`
		return 1 // want `return while the epoch guard is still pinned: missing Unpin on this path`
	}
	g.Unpin()
	return 0
}

func panicHole(d *epoch.Domain) {
	g := d.Pin()
	work() // want `call inside a pin window without a deferred Unpin: a panic here leaks the pin`
	g.Unpin()
}

func missingUnpin(d *epoch.Domain) {
	g := d.Pin() // want `missing Unpin: the guard is still pinned when the function ends`
	_ = g
}

func doubleUnpin(d *epoch.Domain) {
	g := d.Pin()
	g.Unpin()
	g.Unpin() // want `double Unpin of the same guard`
}

func repinLeak(d *epoch.Domain) {
	g := d.Pin()
	g = d.Pin() // want `re-pin while the previous guard is still held: the first pin leaks`
	g.Unpin()
}

func loopImbalance(d *epoch.Domain) {
	g := d.Pin() // want `missing Unpin: the guard is still pinned when the function ends`
	for i := 0; i < 3; i++ { // want `pin/unpin imbalance across a loop iteration`
		g.Unpin()
	}
}

func viaGoto(d *epoch.Domain) {
	g := d.Pin() // want `pin released through unstructured control flow \(goto/label\): use defer g.Unpin\(\)`
	if cond() { // want `call inside a pin window without a deferred Unpin`
		goto out
	}
	g.Unpin()
	return
out:
	g.Unpin()
}

// --- Escaping guards. ---

func guardReturned(d *epoch.Domain) epoch.Guard {
	g := d.Pin()
	return g // want `epoch guard returned from the acquiring function: release responsibility becomes untrackable`
}

type keeper struct {
	g epoch.Guard
}

func guardStored(d *epoch.Domain, k *keeper) {
	g := d.Pin()
	k.g = g // want `epoch guard stored into memory that outlives the acquiring function`
	k.g.Unpin()
}

func guardSent(d *epoch.Domain, ch chan epoch.Guard) {
	g := d.Pin()
	ch <- g // want `epoch guard sent on a channel: release responsibility becomes untrackable`
}

func guardToGoroutine(d *epoch.Domain) {
	g := d.Pin()
	go func() {
		g.Unpin() // want `epoch guard captured by a goroutine: the pin outlives the acquiring frame`
	}()
}

// --- The *Pinned naming convention. ---

func lowerEntryPinned(d *epoch.Domain) {}

func conventionViolated(d *epoch.Domain) {
	lowerEntryPinned(d) // want `lowerEntryPinned called without a pin in scope: \*Pinned functions require the caller to hold an epoch pin`
}

func conventionOK(d *epoch.Domain) {
	g := d.Pin()
	defer g.Unpin()
	lowerEntryPinned(d)
}

func conventionChainedOK(d *epoch.Domain) func() {
	g := d.Pin()
	defer g.Unpin()
	return func() { lowerEntryPinned(d) }
}
