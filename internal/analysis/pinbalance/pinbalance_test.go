package pinbalance_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/pinbalance"
)

func TestPinBalance(t *testing.T) {
	analysistest.Run(t, pinbalance.Analyzer, filepath.Join("testdata", "src", "a"))
}
