// Package lockset is the shared substrate of oak-vet's concurrency
// analyzers (lockguard, lockorder, publishorder). It parses the
// structural //oak: annotations into typed facts, detects sync.Mutex /
// sync.RWMutex acquisition calls, and names lock and field "classes"
// so the analyzers can agree on identity across packages.
//
// Annotation grammar (one comment may carry several annotations; the
// analysis.Annotations splitter separates them):
//
//	//oak:guarded-by m1[,m2...]   on a struct field: every access to
//	                              the field must hold one of the named
//	                              mutexes. A name is either a sibling
//	                              field of the same struct ("mu") or a
//	                              same-package Type.field path
//	                              ("snapCursors.mu"). Anything else is
//	                              a loud error, not a silent no-op.
//	//oak:publish-before f        on an atomic field X: on every path
//	                              of a function that publishes f (the
//	                              publish word), any write to X must
//	                              happen before the publish. f resolves
//	                              like a guard name.
//	//oak:lock-order A B          package-level declaration: lock class
//	                              A is always acquired before B. Feeds
//	                              the lockorder graph alongside the
//	                              edges observed in code.
//
// Classes are canonical strings "pkgName.Type.field" (package *name*,
// not path — short, unique in this module, stable in diagnostics).
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"oakmap/internal/analysis"
)

// Mode distinguishes how a lock is held.
type Mode int

const (
	ModeNone  Mode = iota
	ModeRead       // RLock held
	ModeWrite      // Lock held
)

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	}
	return "none"
}

// FieldClass canonically names a struct field: pkgName.Type.field.
func FieldClass(pkgName, typeName, fieldName string) string {
	return pkgName + "." + typeName + "." + fieldName
}

// ClassOf returns the canonical class of a field object, or "" if obj
// is not a struct field of a named type. It relies on the field's
// originating package and the declaring named type found by scanning
// that package's scope (struct fields don't link back to their named
// type in go/types, so the annotation tables index by object instead;
// this is a display/meet helper for objects we resolved ourselves).
func ClassOf(pkgName, typeName string, field *types.Var) string {
	return FieldClass(pkgName, typeName, field.Name())
}

// GuardDecl is one //oak:guarded-by annotation, resolved.
type GuardDecl struct {
	Field  *types.Var   // the guarded field
	Class  string       // canonical class of the guarded field
	Guards []*types.Var // mutex field objects that may guard it
	GClass []string     // canonical classes of Guards, same order
	Atomic bool         // field has an atomic type: only mutating ops need the guard
}

// PublishDecl is one //oak:publish-before annotation, resolved:
// stores to Field must precede publishes of Before in any function
// that does both.
type PublishDecl struct {
	Field  *types.Var // X: the field that must be written first
	Class  string
	Before *types.Var // Y: the publish word
	BClass string
}

// OrderDecl is one //oak:lock-order declaration.
type OrderDecl struct {
	Before, After string // canonical lock classes
	Pos           token.Pos
}

// Info is everything lockset extracted from one package.
type Info struct {
	Guards    map[*types.Var]*GuardDecl // guarded field -> decl
	Publishes []*PublishDecl
	Orders    []*OrderDecl
	// MutexClass names every annotated or guard-referenced mutex field.
	MutexClass map[*types.Var]string

	loud bool
}

// Extract parses the structural annotations of one package, silently
// skipping malformed ones. Use ExtractLoud from exactly one analyzer
// per run (lockguard) so each malformed annotation is reported once.
func Extract(pass *analysis.Pass) *Info { return extract(pass, false) }

// ExtractLoud is Extract with malformed annotations reported as
// diagnostics: a misspelled mutex name silently validating nothing
// would be worse than no annotation at all.
func ExtractLoud(pass *analysis.Pass) *Info { return extract(pass, true) }

func extract(pass *analysis.Pass, loud bool) *Info {
	info := &Info{
		Guards:     make(map[*types.Var]*GuardDecl),
		MutexClass: make(map[*types.Var]string),
		loud:       loud,
	}
	// Class every mutex-typed field of every named struct type up
	// front: lockorder tracks acquisition order across all mutexes,
	// annotated or not.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		s, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			if f := s.Field(i); isMutexType(f.Type()) {
				info.MutexClass[f] = FieldClass(pass.Pkg.Name(), name, f.Name())
			}
		}
	}
	for _, f := range pass.Files {
		extractFile(pass, f, info)
	}
	return info
}

func reportf(pass *analysis.Pass, out *Info, pos token.Pos, format string, args ...any) {
	if out.loud {
		pass.Report(pos, format, args...)
	}
}

func extractFile(pass *analysis.Pass, f *ast.File, out *Info) {
	// File-level and decl-level comments may carry //oak:lock-order.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, body := range analysis.Annotations(c.Text) {
				if rest, ok := strings.CutPrefix(body, "lock-order"); ok {
					parseOrder(pass, c.Pos(), rest, out)
				}
			}
		}
	}
	// Struct-field annotations: walk type declarations.
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		extractStruct(pass, ts, st, out)
		return true
	})
}

// fieldAnnotations collects the annotation bodies attached to one
// field: its doc comment and its trailing line comment.
func fieldAnnotations(fld *ast.Field) []string {
	var bodies []string
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			bodies = append(bodies, analysis.Annotations(c.Text)...)
		}
	}
	return bodies
}

func extractStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType, out *Info) {
	pkgName := pass.Pkg.Name()
	typeName := ts.Name.Name
	for _, fld := range st.Fields.List {
		bodies := fieldAnnotations(fld)
		if len(bodies) == 0 {
			continue
		}
		if len(fld.Names) == 0 {
			// Embedded field: annotations would be ambiguous about
			// which promoted name they guard. Reject loudly.
			for _, body := range bodies {
				if strings.HasPrefix(body, "guarded-by") || strings.HasPrefix(body, "publish-before") {
					reportf(pass, out, fld.Pos(), "//oak:%s on an embedded field: name the field explicitly so the guarded object is unambiguous", firstWord(body))
				}
			}
			continue
		}
		for _, name := range fld.Names {
			obj, _ := pass.TypesInfo.Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			for _, body := range bodies {
				switch {
				case strings.HasPrefix(body, "guarded-by"):
					parseGuardedBy(pass, st, pkgName, typeName, obj, fld, body, out)
				case strings.HasPrefix(body, "publish-before"):
					parsePublishBefore(pass, st, pkgName, typeName, obj, fld, body, out)
				}
			}
		}
	}
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// cutLineComment trims a nested line comment ("x int //oak:guarded-by
// mu // explanatory text") off an annotation body.
func cutLineComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func parseGuardedBy(pass *analysis.Pass, st *ast.StructType, pkgName, typeName string, obj *types.Var, fld *ast.Field, body string, out *Info) {
	rest := cutLineComment(strings.TrimPrefix(body, "guarded-by"))
	if rest == "" {
		reportf(pass, out, fld.Pos(), "//oak:guarded-by needs a mutex name (sibling field or Type.field)")
		return
	}
	names := strings.Split(strings.Fields(rest)[0], ",")
	decl := &GuardDecl{
		Field:  obj,
		Class:  FieldClass(pkgName, typeName, obj.Name()),
		Atomic: isAtomicType(obj.Type()),
	}
	for _, gname := range names {
		g, gclass, err := resolveFieldRef(pass, st, pkgName, typeName, gname)
		if err != "" {
			reportf(pass, out, fld.Pos(), "//oak:guarded-by %s: %s", gname, err)
			return
		}
		if !isMutexType(g.Type()) {
			reportf(pass, out, fld.Pos(), "//oak:guarded-by %s: %s is not a sync.Mutex or sync.RWMutex", gname, gclass)
			return
		}
		decl.Guards = append(decl.Guards, g)
		decl.GClass = append(decl.GClass, gclass)
		out.MutexClass[g] = gclass
	}
	out.Guards[obj] = decl
}

func parsePublishBefore(pass *analysis.Pass, st *ast.StructType, pkgName, typeName string, obj *types.Var, fld *ast.Field, body string, out *Info) {
	rest := cutLineComment(strings.TrimPrefix(body, "publish-before"))
	if rest == "" {
		reportf(pass, out, fld.Pos(), "//oak:publish-before needs the publish word's field name")
		return
	}
	bname := strings.Fields(rest)[0]
	b, bclass, err := resolveFieldRef(pass, st, pkgName, typeName, bname)
	if err != "" {
		reportf(pass, out, fld.Pos(), "//oak:publish-before %s: %s", bname, err)
		return
	}
	out.Publishes = append(out.Publishes, &PublishDecl{
		Field:  obj,
		Class:  FieldClass(pkgName, typeName, obj.Name()),
		Before: b,
		BClass: bclass,
	})
}

func parseOrder(pass *analysis.Pass, pos token.Pos, rest string, out *Info) {
	fields := strings.Fields(cutLineComment(rest))
	if len(fields) < 2 {
		reportf(pass, out, pos, "//oak:lock-order needs two lock classes: //oak:lock-order pkg.Type.field pkg.Type.field")
		return
	}
	for _, c := range fields[:2] {
		if strings.Count(c, ".") != 2 {
			reportf(pass, out, pos, "//oak:lock-order %s: lock classes are written pkg.Type.field", c)
			return
		}
	}
	out.Orders = append(out.Orders, &OrderDecl{Before: fields[0], After: fields[1], Pos: pos})
}

// resolveFieldRef resolves a guard/publish target name: either a
// sibling field of st ("mu") or a same-package "Type.field" path. The
// error return is a human-readable reason, "" on success.
func resolveFieldRef(pass *analysis.Pass, st *ast.StructType, pkgName, typeName, name string) (*types.Var, string, string) {
	if ty, fieldName, ok := strings.Cut(name, "."); ok {
		obj := pass.Pkg.Scope().Lookup(ty)
		tn, _ := obj.(*types.TypeName)
		if tn == nil {
			return nil, "", fmt.Sprintf("no type %q in package %s", ty, pkgName)
		}
		v := lookupField(tn.Type(), fieldName)
		if v == nil {
			return nil, "", fmt.Sprintf("type %s.%s has no field %q", pkgName, ty, fieldName)
		}
		return v, FieldClass(pkgName, ty, fieldName), ""
	}
	// Sibling field of the annotated struct.
	for _, fld := range st.Fields.List {
		for _, id := range fld.Names {
			if id.Name == name {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					return v, FieldClass(pkgName, typeName, name), ""
				}
			}
		}
	}
	return nil, "", fmt.Sprintf("no sibling field %q in %s.%s (use Type.field for another struct's mutex)", name, pkgName, typeName)
}

func lookupField(t types.Type, name string) *types.Var {
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// isMutexType reports whether t (possibly behind pointers) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return analysis.Named(t, "sync", "Mutex") || analysis.Named(t, "sync", "RWMutex")
}

// isAtomicType reports whether t is one of sync/atomic's typed words.
func isAtomicType(t types.Type) bool {
	for _, n := range []string{"Uint32", "Uint64", "Int32", "Int64", "Bool", "Pointer", "Value", "Uintptr"} {
		if analysis.Named(t, "sync/atomic", n) {
			return true
		}
	}
	return false
}
