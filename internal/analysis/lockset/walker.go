package lockset

import (
	"go/ast"
	"go/types"
)

// LockOp classifies one call as a mutex operation on a resolved
// mutex object (a struct field, or a local/package variable).
type LockOp struct {
	Field  *types.Var // the mutex operated on
	Method string     // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
}

// Acquires reports whether the op acquires (rather than releases).
func (op *LockOp) Acquires() bool {
	switch op.Method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// Blocking reports whether the acquisition can block. TryLock forms
// never block, so they cannot participate in a deadlock cycle.
func (op *LockOp) Blocking() bool {
	return op.Method == "Lock" || op.Method == "RLock"
}

// AcquireMode is the mode the op grants.
func (op *LockOp) AcquireMode() Mode {
	switch op.Method {
	case "Lock", "TryLock":
		return ModeWrite
	case "RLock", "TryRLock":
		return ModeRead
	}
	return ModeNone
}

// AsLockOp classifies call, or returns nil.
func AsLockOp(info *types.Info, call *ast.CallExpr) *LockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil
	}
	// The callee must be sync's method, not a same-named local one.
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if s, ok := info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	v := resolveVar(info, sel.X)
	if v == nil {
		return nil
	}
	return &LockOp{Field: v, Method: sel.Sel.Name}
}

// resolveVar resolves the variable a receiver expression denotes: the
// field for s.mu / a.classes[c].mu / cl.mu, or the variable for a
// plain identifier.
func resolveVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.StarExpr:
		return resolveVar(info, e.X)
	}
	return nil
}

// Held maps each held mutex to the strongest mode held.
type Held map[*types.Var]Mode

func (h Held) clone() Held {
	c := make(Held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// join intersects two path states: a mutex is held after a merge only
// if both paths hold it, at the weaker of the two modes.
func joinHeld(a, b Held) Held {
	out := make(Held)
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			m := ma
			if mb < m {
				m = mb
			}
			out[k] = m
		}
	}
	return out
}

// Walker drives a conservative lock-state walk over a function body's
// structured control flow. Visit is called for every expression node
// in roughly evaluation order with the held set current at that point;
// analyzers hang their checks off it. The held set passed to Visit
// must not be retained or mutated.
type Walker struct {
	Info  *types.Info
	Visit func(n ast.Node, held Held)

	// SawGoto is set when the walk meets goto: the held sets after it
	// are unreliable and callers may want to soften reports.
	SawGoto bool
}

// terminated marks a path that returned (or branched out of the
// walked region): it contributes nothing to joins.
type pathState struct {
	held Held
	term bool
}

func (w *Walker) Walk(body *ast.BlockStmt, entry Held) {
	if body == nil {
		return
	}
	w.stmts(body.List, pathState{held: entry.clone()})
}

func (w *Walker) stmts(list []ast.Stmt, st pathState) pathState {
	for _, s := range list {
		st = w.stmt(s, st)
		if st.term {
			return st
		}
	}
	return st
}

func joinPath(a, b pathState) pathState {
	if a.term {
		return b
	}
	if b.term {
		return a
	}
	return pathState{held: joinHeld(a.held, b.held)}
}

func (w *Walker) stmt(s ast.Stmt, st pathState) pathState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, st.held)
		if c, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			st.held = w.applyLockOp(c, st.held)
		}
		return st
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		w.scan(s, st.held)
		return st
	case *ast.ReturnStmt:
		w.scan(s, st.held)
		return pathState{term: true}
	case *ast.BranchStmt:
		if s.Tok.String() == "goto" {
			w.SawGoto = true
		}
		// break/continue leave the enclosing loop walk; treating the
		// path as terminated keeps the after-loop join conservative.
		return pathState{term: true}
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		w.scan(s.Cond, st.held)
		// `if !mu.TryLock() { return }` — the fall-through holds mu.
		// `if mu.TryLock() { ... }` — the then-branch holds mu.
		thenEntry, elseEntry := st.held, st.held
		if op, neg := tryLockCond(w.Info, s.Cond); op != nil {
			got := st.held.clone()
			if cur, ok := got[op.Field]; !ok || op.AcquireMode() > cur {
				got[op.Field] = op.AcquireMode()
			}
			if neg {
				elseEntry = got
			} else {
				thenEntry = got
			}
		}
		then := w.stmts(s.Body.List, pathState{held: thenEntry.clone()})
		els := pathState{held: elseEntry.clone()}
		if s.Else != nil {
			els = w.stmt(s.Else, els)
		}
		return joinPath(then, els)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scan(s.Cond, st.held)
		}
		after := w.stmts(s.Body.List, pathState{held: st.held.clone()})
		if s.Post != nil && !after.term {
			after = w.stmt(s.Post, after)
		}
		// A loop body may not run at all: after the loop, only locks
		// held both at entry and at body exit are certainly held.
		return joinPath(pathState{held: st.held}, after)
	case *ast.RangeStmt:
		w.scan(s.X, st.held)
		after := w.stmts(s.Body.List, pathState{held: st.held.clone()})
		return joinPath(pathState{held: st.held}, after)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			if s.Init != nil {
				st = w.stmt(s.Init, st)
			}
			if s.Tag != nil {
				w.scan(s.Tag, st.held)
			}
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		out := pathState{term: true}
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cc := cc.(type) {
			case *ast.CaseClause:
				stmts = cc.Body
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cc.Body
				if cc.Comm == nil {
					hasDefault = true
				}
			}
			out = joinPath(out, w.stmts(stmts, pathState{held: st.held.clone()}))
		}
		if !hasDefault {
			out = joinPath(out, pathState{held: st.held})
		}
		return out
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held to function end — no state
		// change. Deferred closures run with an empty held set (scan's
		// DeferStmt case handles the literal body).
		w.scan(s, st.held)
		return st
	case *ast.GoStmt:
		w.scan(s, st.held)
		return st
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.EmptyStmt:
		return st
	default:
		w.scan(s, st.held)
		return st
	}
}

// applyLockOp updates the held set for a top-level lock/unlock call
// statement. TryLock as a bare statement (result ignored) grants the
// lock unconditionally — matching how the code would behave if it
// ignored the result, and how TryAdvance uses the if-form instead.
func (w *Walker) applyLockOp(c *ast.CallExpr, held Held) Held {
	op := AsLockOp(w.Info, c)
	if op == nil {
		return held
	}
	held = held.clone()
	if op.Acquires() {
		if cur, ok := held[op.Field]; !ok || op.AcquireMode() > cur {
			held[op.Field] = op.AcquireMode()
		}
	} else {
		delete(held, op.Field)
	}
	return held
}

// tryLockCond matches `mu.TryLock()` (neg=false) or `!mu.TryLock()`
// (neg=true) as an if condition.
func tryLockCond(info *types.Info, cond ast.Expr) (op *LockOp, neg bool) {
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "!" {
		neg = true
		e = ast.Unparen(u.X)
	}
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	op = AsLockOp(info, c)
	if op == nil || op.Blocking() || !op.Acquires() {
		return nil, false
	}
	return op, neg
}

// scan visits every expression node under n in source order with the
// current held set. Function literals are walked with the full
// statement walker (their own Lock/Unlock calls update their held
// state): a literal launched by go or defer starts from an empty held
// set, every other literal (immediately invoked, or passed to a
// synchronous caller like sort.Search) inherits the current one.
func (w *Walker) scan(n ast.Node, held Held) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			w.stmts(m.Body.List, pathState{held: held.clone()})
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, pathState{held: Held{}})
				for _, a := range m.Call.Args {
					w.scan(a, held)
				}
				return false
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, pathState{held: Held{}})
				for _, a := range m.Call.Args {
					w.scan(a, held)
				}
				return false
			}
		default:
			if w.Visit != nil && m != nil {
				w.Visit(m, held)
			}
		}
		return true
	})
}
