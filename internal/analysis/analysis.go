// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the module stays dependency-free. It exists to host
// oak-vet (cmd/oak-vet): a suite of analyzers that prove, at compile
// time, the usage disciplines Oak's correctness rests on but Go's type
// system cannot see — zero-copy view lifetimes, epoch pin/unpin
// balance, unsafe.Pointer containment, and fault-point identity
// (DESIGN.md §10).
//
// The shape deliberately mirrors x/tools: an Analyzer owns a Run
// function over a Pass (one type-checked package); diagnostics carry a
// position and message. Two deviations, both forced by the stdlib-only
// constraint and both smaller than they sound:
//
//   - There is no Facts serialization. Cross-package rules (faultpointid
//     needs the module-wide set of declared point names) use an
//     in-process Finish hook instead: the driver runs every package
//     pass first, then calls Finish once with everything the passes
//     exported. oak-vet always analyzes whole programs in one process,
//     so in-memory facts lose nothing.
//
//   - There is no SSA. The escape and balance analyzers work on the
//     typed AST with a conservative path walk. Go's structured control
//     flow (no goto in this codebase) makes the AST form adequate: the
//     analyzers over-approximate (goto/label control flow is flagged,
//     not traced) rather than miss.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //oak:allow <name> suppression annotation.
	Name string

	// Doc is the analyzer's help text: first line is a one-sentence
	// summary, the rest explains the rule and the runtime failure mode
	// it prevents.
	Doc string

	// Run analyzes one package. Diagnostics are reported via
	// pass.Report; module-level facts via pass.ExportFact.
	Run func(pass *Pass) error

	// Finish, if non-nil, runs once per module after every package's
	// Run has completed, receiving all exported facts. It reports
	// cross-package diagnostics (e.g. a fault-point name armed in one
	// package but declared nowhere).
	Finish func(m *ModulePass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	export func(fact any)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Report emits a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact hands a fact to the analyzer's Finish hook.
func (p *Pass) ExportFact(fact any) { p.export(fact) }

// ModulePass is the context for an Analyzer's Finish hook.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Facts    []any // everything the package passes exported, in package load order

	report func(Diagnostic)
}

// Report emits a module-level diagnostic.
func (m *ModulePass) Report(pos token.Pos, format string, args ...any) {
	m.report(Diagnostic{Analyzer: m.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Unit is one loadable package presented to the driver: the fields of
// Pass that depend on the loader. cmd/oak-vet builds Units with
// internal/analysis/load; the analysistest harness builds them from
// testdata sources.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Options tunes a Run.
type Options struct {
	// StrictSuppressions additionally reports, as diagnostics of the
	// pseudo-analyzer "suppress", every //oak: suppression annotation
	// that names an analyzer in this run but did not suppress any of its
	// diagnostics — a stale suppression is a reviewed exception whose
	// underlying finding no longer exists, and keeping it would silently
	// swallow the next, unrelated finding on that line.
	StrictSuppressions bool
}

// Run drives analyzers over units and returns the surviving
// diagnostics sorted by position. Diagnostics on a line carrying (or
// directly below) a matching //oak: suppression annotation are
// dropped; see Suppressed for the annotation grammar.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithOptions(units, analyzers, Options{})
}

// RunWithOptions is Run with explicit Options.
func RunWithOptions(units []*Unit, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	allow := newAllowIndex()
	facts := make(map[*Analyzer][]any)
	for _, u := range units {
		fset = u.Fset
		for _, f := range u.Files {
			allow.addFile(u.Fset, f)
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a := a
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
				export:    func(fact any) { facts[a] = append(facts[a], fact) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", u.Pkg.Path(), a.Name, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Facts:    facts[a],
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Finish(mp); err != nil {
			return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
		}
	}
	if fset != nil {
		diags = allow.filter(fset, diags)
		if opts.StrictSuppressions {
			ran := make(map[string]bool, len(analyzers))
			for _, a := range analyzers {
				ran[a.Name] = true
			}
			diags = append(diags, allow.unused(ran)...)
		}
		// Dedupe: one site can be reported identically from two walks
		// (e.g. a re-pin flagged from both acquisitions' balance checks).
		seen := make(map[Diagnostic]bool, len(diags))
		uniq := diags[:0]
		for _, d := range diags {
			if seen[d] {
				continue
			}
			seen[d] = true
			uniq = append(uniq, d)
		}
		diags = uniq
		sort.Slice(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return diags[i].Message < diags[j].Message
		})
	}
	return diags, nil
}

// Suppression annotations. A comment of the form
//
//	//oak:allow zcescape[,unsafespan...]  [rationale]
//
// on the flagged line, or alone on the line directly above it,
// suppresses those analyzers' diagnostics for that line. Two sugared
// spellings cover the common intents without naming analyzers:
//
//	//oak:zc-view    — this value intentionally holds/propagates a
//	                   zero-copy view; equivalent to //oak:allow zcescape
//	//oak:unsafe-ok  — this unsafe use is deliberate and reviewed;
//	                   equivalent to //oak:allow unsafespan
//
// Unlike //nolint, the annotations are part of the oak vocabulary:
// DESIGN.md §10 requires each one to carry a rationale in the
// surrounding comment or doc.
//
// One comment may carry several //oak: annotations ("x int
// //oak:guarded-by mu //oak:allow lockguard installer-private"): the
// index splits on every "//oak:" marker and evaluates each segment
// independently, so suppressions compose with the structural
// annotations (guarded-by, publish-before, lock-order) that the
// concurrency analyzers consume via Annotations.
type allowEntry struct {
	pos   token.Pos
	names []string        // analyzer names this entry suppresses
	used  map[string]bool // names that actually dropped a diagnostic
}

type allowIndex struct {
	entries []*allowEntry
	// file -> covered line -> entries whose suppression reaches that line
	lines map[string]map[int][]*allowEntry
}

func newAllowIndex() *allowIndex {
	return &allowIndex{lines: make(map[string]map[int][]*allowEntry)}
}

// Annotations splits one comment's text into its //oak: annotation
// bodies, in order. "//oak:guarded-by mu //oak:allow lockguard why"
// yields ["guarded-by mu", "allow lockguard why"]. Non-annotation
// comments yield nil. Shared by the suppression index and by the
// annotation-driven analyzers (lockguard, publishorder, lockorder).
//
// An annotation must START its comment ("//oak:" with no space): doc
// prose that merely mentions the grammar ("suppress with //oak:allow
// ...") and indented code-block examples inside doc comments are not
// annotations.
func Annotations(text string) []string {
	const marker = "//oak:"
	if !strings.HasPrefix(text, marker) {
		return nil
	}
	var out []string
	for {
		text = text[len(marker):]
		j := strings.Index(text, marker)
		if j < 0 {
			out = append(out, strings.TrimSpace(text))
			break
		}
		out = append(out, strings.TrimSpace(text[:j]))
		text = text[j:]
	}
	return out
}

// parseAllow extracts analyzer names from one annotation body
// (the part after "//oak:"), or nil if it is not a suppression.
func parseAllow(body string) []string {
	switch {
	case strings.HasPrefix(body, "zc-view"):
		return []string{"zcescape"}
	case strings.HasPrefix(body, "unsafe-ok"):
		return []string{"unsafespan"}
	case strings.HasPrefix(body, "allow"):
		rest := strings.TrimSpace(strings.TrimPrefix(body, "allow"))
		if rest == "" {
			return nil
		}
		names := strings.FieldsFunc(strings.Fields(rest)[0], func(r rune) bool { return r == ',' })
		return names
	}
	return nil
}

func (ai *allowIndex) addFile(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, body := range Annotations(c.Text) {
				names := parseAllow(body)
				if names == nil {
					continue
				}
				e := &allowEntry{pos: c.Pos(), names: names, used: make(map[string]bool)}
				ai.entries = append(ai.entries, e)
				pos := fset.Position(c.Pos())
				m := ai.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]*allowEntry)
					ai.lines[pos.Filename] = m
				}
				// The annotation covers its own line and the next one, so
				// it works both trailing a statement and on a line of its
				// own above it.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					m[line] = append(m[line], e)
				}
			}
		}
	}
}

func (ai *allowIndex) filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, e := range ai.lines[pos.Filename][pos.Line] {
			for _, n := range e.names {
				if n == d.Analyzer {
					e.used[n] = true
					suppressed = true
				}
			}
		}
		if suppressed {
			continue
		}
		out = append(out, d)
	}
	return out
}

// unused reports, for analyzers in ran, suppression entries that never
// dropped a diagnostic. Names outside ran are skipped: a partial
// -checks run must not flag suppressions for analyzers it didn't run.
func (ai *allowIndex) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range ai.entries {
		for _, n := range e.names {
			if !ran[n] || e.used[n] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "suppress",
				Pos:      e.pos,
				Message:  fmt.Sprintf("unused suppression: no %s diagnostic on this line or the next; delete the stale //oak: annotation", n),
			})
		}
	}
	return out
}
