// Package strict exercises the driver's -strict-suppress mode through
// lockguard: a suppression that drops a real diagnostic survives, a
// stale one is reported as a "suppress" finding at the annotation, and
// one naming an analyzer outside the run set is left alone (a partial
// -checks run must not condemn the other analyzers' suppressions).
package strict

import "sync"

type box struct {
	mu sync.Mutex
	n  int //oak:guarded-by mu
}

// usedSuppression really violates the guard; the annotation eats the
// diagnostic, so strict mode has nothing to say about it.
func usedSuppression(b *box) {
	b.n = 1 //oak:allow lockguard fixture: a deliberately unguarded write
}

// staleSuppression holds the lock, so no lockguard diagnostic lands on
// the annotated line — strict mode flags the annotation itself.
func staleSuppression(b *box) {
	b.mu.Lock()
	b.n = 2 //oak:allow lockguard stale: the lock IS held // want "unused suppression: no lockguard diagnostic on this line or the next"
	b.mu.Unlock()
}

// otherAnalyzer names an analyzer that is not part of this run;
// strict mode must skip it rather than declare it stale.
func otherAnalyzer(b *box) {
	b.mu.Lock()
	b.n = 3 //oak:allow zcescape outside the run set
	b.mu.Unlock()
}

// standalone suppressions on their own line cover the line below; this
// one is used (the write is unguarded), so strict stays quiet.
func ownLine(b *box) {
	//oak:allow lockguard fixture: annotation on its own line above the write
	b.n = 4
}
