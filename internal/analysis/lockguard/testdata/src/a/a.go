// Package a exercises lockguard: guarded-by enforcement, lock modes,
// TryLock, the *Locked convention, and annotation error reporting.
package a

import (
	"sort"
	"sync"
	"sync/atomic"
)

type registry struct {
	mu     sync.RWMutex
	pendMu sync.Mutex

	open  []uint64          //oak:guarded-by mu
	byKey map[string]int    //oak:guarded-by mu
	clock atomic.Uint64     //oak:guarded-by mu,pendMu
	count int               //oak:guarded-by pendMu
}

// good: write lock held for writes, released by defer.
func (r *registry) insert(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byKey[k] = v
	r.open = append(r.open, uint64(v))
}

// good: read lock suffices for reads, including inside a synchronous
// closure (the sort.Search idiom).
func (r *registry) find(x uint64) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sort.Search(len(r.open), func(i int) bool { return r.open[i] >= x })
}

// bad: no lock at all.
func (r *registry) leakRead() int {
	return len(r.open) // want `read of a.registry.open without a.registry.mu held`
}

// bad: mutating under a read lock.
func (r *registry) rlockWrite(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	delete(r.byKey, k) // want `write to a.registry.byKey under a read lock`
}

// bad: unlocked map delete is a write.
func (r *registry) unlockedDelete(k string) {
	delete(r.byKey, k) // want `write to a.registry.byKey without a.registry.mu held`
}

// good: either-of guards — the clock may ratchet under pendMu alone.
func (r *registry) ratchet() uint64 {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	return r.clock.Add(2)
}

// Seeded regression (PR-8 shape): PrepareBatch originally ratcheted
// the version clock BEFORE taking pendMu, so a concurrent
// snapshot-begin could observe the new version with no pending batch
// registered for it.
func (r *registry) prepareRacy() uint64 {
	base := r.clock.Add(2) // want `clock.Add on a.registry.clock without a.registry.mu or a.registry.pendMu held`
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	r.count++
	return base
}

// good: atomic Load needs no lock.
func (r *registry) now() uint64 {
	return r.clock.Load()
}

// good: the TryLock fall-through holds the lock.
func (r *registry) tryBump() {
	if !r.pendMu.TryLock() {
		return
	}
	defer r.pendMu.Unlock()
	r.count++
}

// bad: the TryLock failure branch does NOT hold the lock.
func (r *registry) tryBumpWrong() {
	if r.pendMu.TryLock() {
		defer r.pendMu.Unlock()
		return
	}
	r.count++ // want `write to a.registry.count without a.registry.pendMu held`
}

// bad: an if/else join where only one branch locked.
func (r *registry) halfGuard(b bool) {
	if b {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	r.open = r.open[:0] // want `write to a.registry.open without a.registry.mu held` `read of a.registry.open without a.registry.mu held`
}

// good: early-unlock-return idiom.
func (r *registry) earlyOut(k string) int {
	r.mu.Lock()
	if v, ok := r.byKey[k]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	return -1
}

// bad: access after the unlock.
func (r *registry) useAfterUnlock(k string) int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.byKey[k] // want `read of a.registry.byKey without a.registry.mu held`
}

// sweepLocked is exempt inside (caller holds mu)…
func (r *registry) sweepLocked() {
	r.open = r.open[:0]
	for k := range r.byKey {
		delete(r.byKey, k)
	}
}

// good: *Locked called under the lock.
func (r *registry) sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
}

// bad: *Locked called with nothing held.
func (r *registry) sweepRacy() {
	r.sweepLocked() // want `sweepLocked called without any lock held`
}

// good: a goroutine body starts with an empty held set and locks for
// itself.
func (r *registry) spawn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.open = nil
	}()
	r.open = append(r.open, 1)
}

// bad: the goroutine inherits nothing from the spawner's lock.
func (r *registry) spawnRacy() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.open = nil // want `write to a.registry.open without a.registry.mu held`
	}()
}

// good: constructor composite-literal keys are initialization, not
// access; init is exempt by name.
func newRegistry() *registry {
	return &registry{
		open:  nil,
		byKey: map[string]int{},
	}
}

var defaultRegistry *registry

func init() {
	defaultRegistry = &registry{}
	defaultRegistry.byKey = map[string]int{}
}

// Suppression with rationale: single-installer invariant — only the
// goroutine that created this registry mutates it before publication.
func (r *registry) prePublish() {
	r.open = append(r.open, 0) //oak:allow lockguard pre-publication, single-installer
	_ = r.open                 //oak:allow lockguard pre-publication, single-installer
}
