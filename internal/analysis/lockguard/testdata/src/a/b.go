package a

import "sync"

// Malformed annotations must be loud errors, never silent no-ops.

type badDecls struct {
	mu   sync.Mutex
	data []byte

	a int //oak:guarded-by nosuch // want `no sibling field "nosuch" in a.badDecls`
	b int //oak:guarded-by Wrong.mu // want `no type "Wrong" in package a`
	c int //oak:guarded-by registry.nosuch // want `type a.registry has no field "nosuch"`
	d int //oak:guarded-by data // want `a.badDecls.data is not a sync.Mutex or sync.RWMutex`
	e int //oak:guarded-by // want `needs a mutex name`
}

type hasEmbedded struct {
	sync.Mutex //oak:guarded-by mu // want `on an embedded field`
}

// Cross-struct guard reference: the Type.field form works, and two
// annotations share one comment line.
type sidecar struct {
	n int //oak:guarded-by registry.pendMu //oak:allow lockguard installer-private scratch field
}

func bumpSidecar(r *registry, s *sidecar) {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	s.n++
}

func bumpSidecarRacy(s *sidecar) {
	s.n++ // want `write to a.sidecar.n without a.registry.pendMu held`
}
