// Package lockguard enforces //oak:guarded-by field annotations: every
// access to an annotated struct field must happen with one of its
// declared mutexes held, in a strong enough mode (DESIGN.md §10).
//
// This is the compile-time form of the comment "mu guards everything
// below" that every concurrent struct in this codebase carries. The
// runtime failure it prevents is the silent torn read/lost update: a
// map iterated while another goroutine inserts, a slice append racing
// a swap-delete, a cursor's dead flag read unlatched — all reported by
// the race detector only if a test happens to interleave them.
//
// Rules, per annotated field X with guards {M...}:
//
//   - a plain read of X requires some M held (read or write mode);
//   - a write to X (assignment, compound assignment, ++/--, delete(),
//     taking &X) requires some M held in WRITE mode — an RLock is
//     flagged, because mutating under a shared lock is exactly the bug
//     RWMutex invites;
//   - if X has a sync/atomic type, only its mutating calls (Store,
//     Add, Swap, CompareAndSwap, Or, And) require the guard; Load is
//     free. This models the "atomic for readers, mutex for writers"
//     idiom the MVCC clock uses.
//
// Held-state tracking is a conservative structured walk (lockset):
// defer mu.Unlock() holds to function end, if/else joins intersect,
// `if !mu.TryLock() { return }` is understood, RLock and Lock are
// distinguished.
//
// Convention propagation: a function whose name ends in "Locked"
// asserts "caller holds the relevant lock" — its body is exempt, and
// instead every CALL to it must occur with a lock held (any annotated
// mutex, or lexically inside a function that acquires some *Lock —
// this covers the vheader TryWriteLock spinlock, which is not a
// sync.Mutex). Functions named exactly "init" are exempt: they run
// before the struct is published.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/lockset"
)

// Analyzer is the lockguard analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "flag accesses to //oak:guarded-by fields without the declared mutex held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ls := lockset.ExtractLoud(pass)
	parents := analysis.Parents(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ls, parents, fd)
		}
	}
	return nil
}

// exemptFunc reports whether fd's body is outside lockguard's
// jurisdiction: *Locked functions run under the caller's lock (their
// call sites are checked instead), and init runs pre-publication.
func exemptFunc(name string) bool {
	return strings.HasSuffix(name, "Locked") || name == "init"
}

func checkFunc(pass *analysis.Pass, ls *lockset.Info, parents map[ast.Node]ast.Node, fd *ast.FuncDecl) {
	exempt := exemptFunc(fd.Name.Name)
	w := &lockset.Walker{
		Info: pass.TypesInfo,
		Visit: func(n ast.Node, held lockset.Held) {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !exempt {
					checkFieldAccess(pass, ls, parents, n, held)
				}
			case *ast.CallExpr:
				checkLockedCall(pass, parents, fd, n, held)
			}
		},
	}
	w.Walk(fd.Body, lockset.Held{})
}

// checkFieldAccess validates one selector that resolves to a guarded
// field.
func checkFieldAccess(pass *analysis.Pass, ls *lockset.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr, held lockset.Held) {
	obj := fieldObj(pass.TypesInfo, sel)
	if obj == nil {
		return
	}
	decl := ls.Guards[obj]
	if decl == nil {
		return
	}
	// Composite-literal keys (snapCursors{next: 1}) initialize a value
	// nobody else can see yet.
	if inCompositeLitKey(parents, sel) {
		return
	}
	if decl.Atomic {
		// Only the mutating method calls need the guard.
		method := atomicMutator(parents, sel)
		if method == "" {
			return
		}
		if !satisfied(decl, held, lockset.ModeWrite) {
			pass.Report(sel.Sel.Pos(), "%s.%s on %s without %s held: the annotation requires mutators to run under the lock",
				obj.Name(), method, decl.Class, guardNames(decl))
		}
		return
	}
	need := lockset.ModeRead
	verb := "read of"
	if isWrite(parents, sel) {
		need = lockset.ModeWrite
		verb = "write to"
	}
	if satisfied(decl, held, need) {
		return
	}
	if need == lockset.ModeWrite && satisfied(decl, held, lockset.ModeRead) {
		pass.Report(sel.Sel.Pos(), "write to %s under a read lock: %s must be write-locked to mutate", decl.Class, guardNames(decl))
		return
	}
	pass.Report(sel.Sel.Pos(), "%s %s without %s held", verb, decl.Class, guardNames(decl))
}

// satisfied reports whether held grants at least mode need on one of
// the declared guards.
func satisfied(decl *lockset.GuardDecl, held lockset.Held, need lockset.Mode) bool {
	for _, g := range decl.Guards {
		if held[g] >= need {
			return true
		}
	}
	return false
}

func guardNames(decl *lockset.GuardDecl) string {
	return strings.Join(decl.GClass, " or ")
}

// fieldObj resolves sel to the struct-field variable it denotes, or
// nil.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isWrite classifies the access: is sel (possibly wrapped in index /
// star / paren expressions) a mutation target?
func isWrite(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	var n ast.Node = sel
	for {
		p := parents[n]
		switch p := p.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.IndexExpr:
			// s.open[k] = v mutates the map/slice via the field; keep
			// climbing only if sel is the indexed operand, not the key.
			if p.X != n {
				return false
			}
			n = p
			continue
		case *ast.StarExpr:
			n = p
			continue
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == n
		case *ast.UnaryExpr:
			// &s.field hands out a mutable alias: treat as a write.
			return p.Op == token.AND && p.X == n
		case *ast.CallExpr:
			// delete(s.open, k) and clear(s.open) mutate the first arg.
			if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") {
				return len(p.Args) > 0 && p.Args[0] == n
			}
			return false
		default:
			return false
		}
	}
}

// atomicMutator returns the mutating method name if sel is the
// receiver of an atomic mutate call (x.field.Store(...)), else "".
func atomicMutator(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) string {
	m, ok := parents[sel].(*ast.SelectorExpr)
	if !ok || m.X != sel {
		return ""
	}
	c, ok := parents[m].(*ast.CallExpr)
	if !ok || c.Fun != m {
		return ""
	}
	switch m.Sel.Name {
	case "Store", "Add", "Swap", "CompareAndSwap", "Or", "And":
		return m.Sel.Name
	}
	return ""
}

// inCompositeLitKey reports whether sel is a KeyValueExpr key inside a
// composite literal (struct initialization, not a field access).
func inCompositeLitKey(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	kv, ok := parents[sel].(*ast.KeyValueExpr)
	if !ok || kv.Key != sel {
		return false
	}
	_, ok = parents[kv].(*ast.CompositeLit)
	return ok
}

// checkLockedCall enforces the *Locked call-site convention.
func checkLockedCall(pass *analysis.Pass, parents map[ast.Node]ast.Node, fd *ast.FuncDecl, call *ast.CallExpr, held lockset.Held) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	if len(held) > 0 {
		return // some annotated mutex is held at the call
	}
	// Walk outward: an enclosing *Locked function, or any enclosing
	// function that acquires some lock-ish thing (a call whose method
	// name ends in "Lock" but not "Unlock" — covers sync mutexes the
	// walker missed and the vheader TryWriteLock spinlock).
	for encl := analysis.EnclosingFunc(parents, call); encl != nil; encl = analysis.EnclosingFunc(parents, encl) {
		if d, ok := encl.(*ast.FuncDecl); ok && exemptFunc(d.Name.Name) {
			return
		}
		if acquiresSomeLock(analysis.FuncBody(encl)) {
			return
		}
	}
	pass.Report(call.Pos(), "%s called without any lock held: *Locked functions require the caller to hold the protecting lock", fn.Name())
}

// acquiresSomeLock reports whether body contains a call whose method
// name ends in "Lock" (excluding the Unlock family).
func acquiresSomeLock(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch f := ast.Unparen(c.Fun).(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		if strings.HasSuffix(name, "Lock") && !strings.HasSuffix(name, "Unlock") {
			found = true
			return false
		}
		return true
	})
	return found
}
