package lockguard_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, filepath.Join("testdata", "src", "a"))
}

// TestStrictSuppress drives the same analyzer with StrictSuppressions
// on: used suppressions stay silent, stale ones are reported by the
// "suppress" pseudo-analyzer, and suppressions naming analyzers outside
// the run set are skipped.
func TestStrictSuppress(t *testing.T) {
	analysistest.RunWithOptions(t, lockguard.Analyzer,
		filepath.Join("testdata", "src", "strict"),
		analysis.Options{StrictSuppressions: true})
}
