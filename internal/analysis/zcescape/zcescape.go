// Package zcescape flags zero-copy views that escape their validity
// scope — the compile-time form of the lifetime contracts in zc.go and
// iterator.go (DESIGN.md §10).
//
// Three kinds of value are scope-bound:
//
//   - Stream views: the *OakRBuffer pair passed to AscendStream /
//     DescendStream / KeysStream / ValuesStream callbacks is reused and
//     re-filled on every step; the scan's epoch pin is the only thing
//     keeping a stream KEY view's bytes authentic (stream key views
//     carry no validation handle). Retaining one past the callback
//     reads recycled arena space.
//   - Compute buffers: the OakWBuffer passed to ComputeIfPresent /
//     PutIfAbsentComputeIfPresent lambdas is backed by the value's
//     write lock; after the lambda returns, writes through it race
//     with (or corrupt) other writers.
//   - Read slices: the []byte given to OakRBuffer.Read callbacks (and
//     any slice obtained from OakWBuffer.Bytes) aliases off-heap
//     memory that may be reused the moment the callback returns.
//
// A scoped value escapes when it is assigned to a variable declared
// outside its callback, stored into a struct field / map / slice /
// pointer target, sent on a channel, returned, captured by a goroutine
// or an escaping closure, or passed to a caller-supplied function
// value (a func parameter or variable — code the analyzer cannot see;
// named functions and methods are assumed synchronous and
// non-retaining). Copying operations — append(dst, b...), copy,
// string(b), indexing out a byte — are recognized as safe.
//
// Intentional contract propagation (a helper that re-exposes the slice
// under the same "valid during the callback" rule) is annotated
// //oak:zc-view with a rationale; see internal/analysis.
//
// Fresh views (ZC().Get, Ascend/Descend) are deliberately NOT flagged:
// per the API contract they are retainable facades that re-validate
// against the value's handle on every access.
package zcescape

import (
	"go/ast"
	"go/types"

	"oakmap/internal/analysis"
)

// Analyzer is the zcescape analysis.
var Analyzer = &analysis.Analyzer{
	Name: "zcescape",
	Doc:  "flag zero-copy stream views, compute buffers, and read slices escaping their callback scope",
	Run:  run,
}

const oakPkg = "oakmap"

var streamMethods = map[string]bool{
	"AscendStream": true, "DescendStream": true,
	"KeysStream": true, "ValuesStream": true,
}

var computeMethods = map[string]bool{
	"ComputeIfPresent": true, "PutIfAbsentComputeIfPresent": true,
}

// scoped is one value that must not outlive fn.
type scoped struct {
	obj  types.Object
	fn   ast.Node // *ast.FuncLit or *ast.FuncDecl: the validity scope
	kind string
}

func run(pass *analysis.Pass) error {
	parents := analysis.Parents(pass.Files)
	decls := funcDecls(pass)

	var work []scoped
	seen := make(map[types.Object]bool)
	add := func(obj types.Object, fn ast.Node, kind string) {
		if obj == nil || fn == nil || seen[obj] {
			return
		}
		seen[obj] = true
		work = append(work, scoped{obj: obj, fn: fn, kind: kind})
	}

	// Collect the scope-bound roots: callback parameters at every
	// stream / compute / Read call site.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != oakPkg {
				return true
			}
			switch {
			case streamMethods[fn.Name()]:
				forCallback(pass, decls, call, func(cb ast.Node, params []*types.Var) {
					for _, p := range params {
						if analysis.Named(p.Type(), oakPkg, "OakRBuffer") {
							add(p, cb, "stream view")
						}
					}
				})
			case computeMethods[fn.Name()]:
				forCallback(pass, decls, call, func(cb ast.Node, params []*types.Var) {
					for _, p := range params {
						if analysis.Named(p.Type(), oakPkg, "OakWBuffer") {
							add(p, cb, "compute buffer")
						}
					}
				})
			case fn.Name() == "Read":
				if analysis.Named(recvType(fn), oakPkg, "OakRBuffer") {
					forCallback(pass, decls, call, func(cb ast.Node, params []*types.Var) {
						for _, p := range params {
							if isByteSlice(p.Type()) {
								add(p, cb, "read slice")
							}
						}
					})
				}
			}
			return true
		})
	}

	// Flow each scoped value through its callback body; derived
	// aliases join the worklist.
	for i := 0; i < len(work); i++ {
		s := work[i]
		checkUses(pass, parents, s, add)
	}

	declSiteCheck(pass)
	return nil
}

// funcDecls indexes this package's function declarations by object, so
// a named function passed as a callback can be analyzed like a literal.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// forCallback locates the callback argument of call — a func literal,
// or a reference to a same-package function — and yields its node and
// parameter objects.
func forCallback(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, yield func(cb ast.Node, params []*types.Var)) {
	for _, arg := range call.Args {
		switch arg := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			var params []*types.Var
			for _, field := range arg.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						params = append(params, v)
					}
				}
			}
			yield(arg, params)
		case *ast.Ident, *ast.SelectorExpr:
			var obj types.Object
			if id, ok := arg.(*ast.Ident); ok {
				obj = pass.TypesInfo.Uses[id]
			} else {
				obj = pass.TypesInfo.Uses[arg.(*ast.SelectorExpr).Sel]
			}
			if fn, ok := obj.(*types.Func); ok {
				if fd := decls[fn]; fd != nil && fd.Body != nil {
					var params []*types.Var
					sig := fn.Type().(*types.Signature)
					for i := 0; i < sig.Params().Len(); i++ {
						params = append(params, sig.Params().At(i))
					}
					yield(fd, params)
				}
			}
		}
	}
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkUses classifies every use of s.obj inside its scope.
func checkUses(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, add func(types.Object, ast.Node, string)) {
	body := analysis.FuncBody(s.fn)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != s.obj {
			return true
		}
		classify(pass, parents, s, id, add)
		crossingCheck(pass, parents, s, id)
		return true
	})
}

// crossingCheck reports a use captured by a closure that outlives the
// scope, regardless of what the use does inside that closure. (The
// expression walk in classify stops at statement boundaries inside the
// closure, so this escape class needs its own upward pass.)
func crossingCheck(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, use *ast.Ident) {
	for p := parents[ast.Node(use)]; p != nil && p != s.fn; p = parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			if closureEscapes(pass, parents, lit) {
				pass.Report(use.Pos(), "%s %s escapes its callback: captured by a closure that may outlive it", s.kind, s.obj.Name())
			}
			return // one verdict per crossed closure is enough
		}
	}
}

// classify walks upward from one use of a scoped value, deciding
// whether the value's alias flows somewhere that outlives the scope.
func classify(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, use *ast.Ident, add func(types.Object, ast.Node, string)) {
	info := pass.TypesInfo
	var cur ast.Node = use
	for {
		p := parents[cur]
		if p == nil || p == s.fn {
			return
		}
		switch pp := p.(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.CompositeLit:
			cur = p
			continue
		case *ast.UnaryExpr:
			cur = p
			continue
		case *ast.KeyValueExpr:
			if pp.Value != cur {
				return // map/struct key position: a copy or a name
			}
			cur = p
			continue
		case *ast.SliceExpr:
			if pp.X != cur {
				return // used as a bound: integer, no alias
			}
			cur = p // b[i:] still aliases
			continue
		case *ast.IndexExpr:
			if pp.X != cur {
				return // used as the index
			}
			if tv, ok := info.Types[pp]; ok {
				if _, basic := tv.Type.Underlying().(*types.Basic); basic {
					return // b[i] copies a scalar out
				}
			}
			cur = p
			continue
		case *ast.RangeStmt:
			if pp.X == cur {
				if tv, ok := info.Types[use]; ok {
					if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
						if _, basic := sl.Elem().Underlying().(*types.Basic); basic {
							return // range over bytes copies elements
						}
					}
				}
			}
			return
		case *ast.BinaryExpr, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause, *ast.BlockStmt,
			*ast.IncDecStmt, *ast.DeclStmt:
			return // consumed by value: comparisons, conditions, statements
		case *ast.CallExpr:
			classifyCallUse(pass, parents, s, pp, cur, use, add)
			return
		case *ast.AssignStmt:
			classifyAssign(pass, s, pp, cur, use, add)
			return
		case *ast.SendStmt:
			if pp.Value == cur || containsAlias(pp.Value, cur) {
				pass.Report(use.Pos(), "%s %s escapes its callback: sent on a channel", s.kind, s.obj.Name())
			}
			return
		case *ast.ReturnStmt:
			if analysis.EnclosingFunc(parents, pp) == s.fn {
				pass.Report(use.Pos(), "%s %s escapes its callback: returned to the caller", s.kind, s.obj.Name())
			} else {
				pass.Report(use.Pos(), "%s %s escapes its callback: returned from a nested function", s.kind, s.obj.Name())
			}
			return
		case *ast.GoStmt:
			pass.Report(use.Pos(), "%s %s escapes its callback: captured by a goroutine", s.kind, s.obj.Name())
			return
		case *ast.DeferStmt:
			return // runs before the enclosing function returns
		case *ast.SelectorExpr:
			if pp.X != cur {
				return
			}
			// Method call or field read on the value: the facade
			// methods copy (Bytes, AppendTo, Copy, ByteAt...), except
			// OakWBuffer.Bytes which hands out the aliasing slice.
			if call, ok := parents[ast.Node(pp)].(*ast.CallExpr); ok && call.Fun == pp {
				if fn := analysis.Callee(info, call); fn != nil &&
					fn.Name() == "Bytes" && analysis.Named(recvType(fn), oakPkg, "OakWBuffer") {
					flowThroughExpr(pass, parents, s, call, use, add)
				}
			}
			return // closure capture is handled by crossingCheck
		case *ast.ValueSpec:
			// var x = b inside the scope: treat like b's alias.
			for i, v := range pp.Values {
				if v == cur && i < len(pp.Names) {
					if obj := info.Defs[pp.Names[i]]; obj != nil {
						add(obj, s.fn, s.kind)
					}
				}
			}
			return
		default:
			return
		}
	}
}

// classifyCallUse handles a scoped alias appearing among a call's
// arguments (or as the receiver of a method call).
func classifyCallUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, call *ast.CallExpr, cur ast.Node, use *ast.Ident, add func(types.Object, ast.Node, string)) {
	info := pass.TypesInfo
	if call.Fun == cur {
		return // calling a func stored in the value: not these types
	}
	// A call that is itself the body of a go statement runs after the
	// callback may have returned, whoever the callee is.
	if _, isGo := parents[call].(*ast.GoStmt); isGo {
		pass.Report(use.Pos(), "%s %s escapes its callback: passed to a goroutine", s.kind, s.obj.Name())
		return
	}
	if name, ok := analysis.IsBuiltin(info, call); ok {
		switch name {
		case "append":
			// append(dst, b...) copies bytes out: safe. append(dst, b)
			// builds a slice-of-slices holding the alias: the result
			// aliases, flow it onward via the assignment context.
			if call.Ellipsis.IsValid() && len(call.Args) > 0 && call.Args[len(call.Args)-1] == cur {
				return
			}
			flowThroughExpr(pass, parents, s, call, use, add)
			return
		case "copy", "len", "cap", "print", "println", "delete", "clear", "min", "max":
			return
		default:
			return
		}
	}
	if target, ok := analysis.IsConversion(info, call); ok {
		if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return // string(b) copies
		}
		flowThroughExpr(pass, parents, s, call, use, add)
		return
	}
	if fn := analysis.Callee(info, call); fn != nil {
		// Named function or method: assumed synchronous and
		// non-retaining (the module's own helpers honor the same
		// contract; annotate with //oak:zc-view where a helper
		// deliberately re-exposes the alias).
		//
		// Two special cases produce new aliases worth tracking:
		// OakWBuffer.Bytes hands out the off-heap slice, and an
		// OakRBuffer.Read on a scoped view scopes its own callback
		// (already collected as a root).
		if fn.Name() == "Bytes" && analysis.Named(recvType(fn), oakPkg, "OakWBuffer") {
			flowThroughExpr(pass, parents, s, call, use, add)
		}
		return
	}
	// Dynamic call: a func value the analyzer cannot see into. The
	// alias flows to arbitrary caller code.
	pass.Report(use.Pos(), "%s %s escapes its callback: passed to a caller-supplied function value", s.kind, s.obj.Name())
}

// flowThroughExpr re-runs classification treating expr (which aliases
// the scoped value) as the use site — e.g. the result of append(x, b)
// or OakWBuffer.Bytes().
func flowThroughExpr(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, expr ast.Expr, use *ast.Ident, add func(types.Object, ast.Node, string)) {
	p := parents[expr]
	switch pp := p.(type) {
	case *ast.AssignStmt:
		classifyAssign(pass, s, pp, expr, use, add)
	case *ast.CallExpr:
		classifyCallUse(pass, parents, s, pp, expr, use, add)
	case *ast.ExprStmt:
		// result discarded
	default:
		// Anything deeper (stored, sent, returned): reuse the general
		// walker by classifying from the expression's position.
		shim := scoped{obj: s.obj, fn: s.fn, kind: s.kind}
		classifyFrom(pass, parents, shim, expr, use, add)
	}
}

// classifyFrom is classify's walk starting at an arbitrary aliasing
// expression rather than an identifier.
func classifyFrom(pass *analysis.Pass, parents map[ast.Node]ast.Node, s scoped, start ast.Expr, use *ast.Ident, add func(types.Object, ast.Node, string)) {
	var cur ast.Node = start
	for {
		p := parents[cur]
		if p == nil || p == s.fn {
			return
		}
		switch pp := p.(type) {
		case *ast.AssignStmt:
			classifyAssign(pass, s, pp, cur, use, add)
			return
		case *ast.CallExpr:
			classifyCallUse(pass, parents, s, pp, cur, use, add)
			return
		case *ast.SendStmt:
			pass.Report(use.Pos(), "%s %s escapes its callback: sent on a channel", s.kind, s.obj.Name())
			return
		case *ast.ReturnStmt:
			pass.Report(use.Pos(), "%s %s escapes its callback: returned to the caller", s.kind, s.obj.Name())
			return
		case *ast.GoStmt:
			pass.Report(use.Pos(), "%s %s escapes its callback: captured by a goroutine", s.kind, s.obj.Name())
			return
		case *ast.ExprStmt, *ast.BlockStmt:
			return
		default:
			cur = p
		}
	}
}

// classifyAssign decides the fate of an aliasing RHS in an assignment.
func classifyAssign(pass *analysis.Pass, s scoped, as *ast.AssignStmt, rhs ast.Node, use *ast.Ident, add func(types.Object, ast.Node, string)) {
	info := pass.TypesInfo
	// Locate the RHS expression containing our alias and its
	// corresponding LHS.
	idx := -1
	for i, r := range as.Rhs {
		if r == rhs || containsAlias(r, rhs) {
			idx = i
			break
		}
	}
	var targets []ast.Expr
	if idx >= 0 && len(as.Lhs) == len(as.Rhs) {
		targets = []ast.Expr{as.Lhs[idx]}
	} else {
		targets = as.Lhs
	}
	for _, lhs := range targets {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			var obj types.Object
			if as.Tok.String() == ":=" {
				obj = info.Defs[lhs]
			}
			if obj == nil {
				obj = info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if obj.Pos() >= s.fn.Pos() && obj.Pos() <= s.fn.End() {
				add(obj, s.fn, s.kind) // alias stays inside the scope
				continue
			}
			pass.Report(use.Pos(), "%s %s escapes its callback: assigned to %s, declared outside the callback", s.kind, s.obj.Name(), lhs.Name)
		default:
			// Selector, index, star: a store into memory whose
			// lifetime the analyzer cannot bound.
			pass.Report(use.Pos(), "%s %s escapes its callback: stored into memory that may outlive it", s.kind, s.obj.Name())
		}
	}
}

// containsAlias reports whether expr syntactically contains node.
func containsAlias(expr ast.Node, node ast.Node) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == node {
			found = true
		}
		return !found
	})
	return found
}

// closureEscapes decides whether a func literal nested inside a scope
// outlives it, by its immediate context.
func closureEscapes(pass *analysis.Pass, parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	switch p := parents[lit].(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			// Immediately invoked — unless it is the go statement's call.
			_, isGo := parents[p].(*ast.GoStmt)
			return isGo
		}
		if _, isGo := parents[p].(*ast.GoStmt); isGo {
			return true
		}
		if _, ok := analysis.IsBuiltin(pass.TypesInfo, p); ok {
			return false
		}
		if analysis.Callee(pass.TypesInfo, p) != nil {
			return false // argument to a named function: synchronous assumption
		}
		return true // handed to a caller-supplied func value
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					if fn := analysis.EnclosingFunc(parents, lit); fn != nil {
						if obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End() {
							continue // local helper closure
						}
					}
				}
			}
			return true
		}
		return false
	case *ast.DeferStmt:
		return false
	case *ast.GoStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	default:
		return true
	}
}

// declSiteCheck flags type declarations that can only hold a
// scope-bound value past its scope: struct fields, package globals,
// and channel element types of OakWBuffer. (OakRBuffer fields are
// legal: fresh views are retainable facades.)
func declSiteCheck(pass *analysis.Pass) {
	if pass.Pkg.Path() == oakPkg {
		return // the defining package builds these types internally
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
						if analysis.Named(tv.Type, oakPkg, "OakWBuffer") {
							pass.Report(field.Pos(), "struct field of type OakWBuffer outlives the compute lambda that owns the buffer")
						}
					}
				}
			case *ast.ChanType:
				if tv, ok := pass.TypesInfo.Types[n.Value]; ok {
					if analysis.Named(tv.Type, oakPkg, "OakWBuffer") {
						pass.Report(n.Pos(), "channel of OakWBuffer carries compute buffers out of their lambda")
					}
				}
			case *ast.GenDecl:
				if n.Tok.String() == "var" {
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								if _, isPkg := obj.(*types.Var); isPkg && obj.Parent() == pass.Pkg.Scope() {
									if analysis.Named(obj.Type(), oakPkg, "OakWBuffer") {
										pass.Report(name.Pos(), "package-level OakWBuffer outlives every compute lambda")
									}
								}
							}
						}
					}
				}
			}
			return true
		})
	}
}
