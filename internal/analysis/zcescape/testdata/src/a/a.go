// Package a exercises the zcescape analyzer: every way a scope-bound
// zero-copy value (stream view, compute buffer, read slice) can leak
// out of its callback, next to the copy idioms that are safe.
package a

import "oakmap"

type holder struct {
	view *oakmap.OakRBuffer
	data []byte
}

var globalView *oakmap.OakRBuffer

func sink(b *oakmap.OakRBuffer) {}

func consume(p []byte) int { return len(p) }

func assignEscapes(m *oakmap.Map[uint64, uint64]) *oakmap.OakRBuffer {
	zc := m.ZC()
	var kept *oakmap.OakRBuffer
	zc.AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		kept = v       // want `stream view v escapes its callback: assigned to kept, declared outside the callback`
		globalView = k // want `stream view k escapes its callback: assigned to globalView, declared outside the callback`
		return true
	})
	return kept
}

func storeEscapes(m *oakmap.Map[uint64, uint64], h *holder) {
	m.ZC().DescendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		h.view = v // want `stream view v escapes its callback: stored into memory that may outlive it`
		return true
	})
}

func sendEscapes(m *oakmap.Map[uint64, uint64], ch chan *oakmap.OakRBuffer) {
	m.ZC().AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		ch <- v // want `stream view v escapes its callback: sent on a channel`
		return true
	})
}

func goroutineEscapes(m *oakmap.Map[uint64, uint64]) {
	m.ZC().AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		go sink(v) // want `stream view v escapes its callback: passed to a goroutine`
		return true
	})
}

func closureEscape(m *oakmap.Map[uint64, uint64]) func() {
	var f func()
	m.ZC().AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		f = func() { sink(v) } // want `stream view v escapes its callback: captured by a closure that may outlive it`
		return true
	})
	return f
}

func keysStreamEscapes(m *oakmap.Map[uint64, uint64], h *holder) {
	m.ZC().KeysStream(nil, nil, func(k *oakmap.OakRBuffer) bool {
		h.view = k // want `stream view k escapes its callback: stored into memory that may outlive it`
		return true
	})
}

func derivedAliasEscapes(m *oakmap.Map[uint64, uint64], h *holder) {
	m.ZC().AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		alias := v
		h.view = alias // want `stream view alias escapes its callback: stored into memory that may outlive it`
		return true
	})
}

func readSliceEscapes(m *oakmap.Map[uint64, uint64], h *holder) {
	view := m.ZC().Get(7)
	if view == nil {
		return
	}
	_ = view.Read(func(p []byte) error {
		h.data = p // want `read slice p escapes its callback: stored into memory that may outlive it`
		return nil
	})
}

func dynamicCallEscapes(m *oakmap.Map[uint64, uint64], visit func([]byte)) {
	m.ZC().ValuesStream(nil, nil, func(v *oakmap.OakRBuffer) bool {
		_ = v.Read(func(p []byte) error {
			visit(p) // want `read slice p escapes its callback: passed to a caller-supplied function value`
			return nil
		})
		return true
	})
}

func annotatedPropagation(m *oakmap.Map[uint64, uint64], visit func([]byte)) {
	m.ZC().ValuesStream(nil, nil, func(v *oakmap.OakRBuffer) bool {
		_ = v.Read(func(p []byte) error {
			// visit honors the same "valid during the callback" rule;
			// reviewed contract propagation, so no diagnostic expected.
			visit(p) //oak:zc-view
			return nil
		})
		return true
	})
}

func safeIdioms(m *oakmap.Map[uint64, uint64], h *holder) {
	m.ZC().AscendStream(nil, nil, func(k, v *oakmap.OakRBuffer) bool {
		_ = v.Read(func(p []byte) error {
			h.data = append(h.data[:0], p...) // ellipsis append copies bytes out
			_ = string(p)                     // string conversion copies
			_ = consume(p)                    // named function: assumed synchronous
			if len(p) > 0 {
				_ = p[0] // scalar index copies
			}
			for _, b := range p { // ranging over bytes copies elements
				_ = b
			}
			return nil
		})
		kept, err := v.Copy() // detached on-heap snapshot: retainable
		if err == nil {
			h.view = kept
		}
		return true
	})
}

type wholder struct {
	w oakmap.OakWBuffer // want `struct field of type OakWBuffer outlives the compute lambda that owns the buffer`
}

var globalW oakmap.OakWBuffer // want `package-level OakWBuffer outlives every compute lambda`

var wch chan oakmap.OakWBuffer // want `channel of OakWBuffer carries compute buffers out of their lambda`

func computeEscapes(m *oakmap.Map[uint64, uint64], hw *wholder) {
	_, _ = m.ZC().ComputeIfPresent(1, func(w oakmap.OakWBuffer) error {
		hw.w = w    // want `compute buffer w escapes its callback: stored into memory that may outlive it`
		globalW = w // want `compute buffer w escapes its callback: assigned to globalW, declared outside the callback`
		return nil
	})
}

func computeBytesEscapes(m *oakmap.Map[uint64, uint64], h *holder) {
	_ = m.ZC().PutIfAbsentComputeIfPresent(1, 2, func(w oakmap.OakWBuffer) error {
		h.data = w.Bytes() // want `compute buffer w escapes its callback: stored into memory that may outlive it`
		return nil
	})
}

func computeSafe(m *oakmap.Map[uint64, uint64]) {
	_, _ = m.ZC().ComputeIfPresent(1, func(w oakmap.OakWBuffer) error {
		w.PutUint64At(0, w.Uint64At(0)+1) // in-place use inside the lambda
		return w.Resize(16)
	})
}
