package zcescape_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/zcescape"
)

func TestZCEscape(t *testing.T) {
	analysistest.Run(t, zcescape.Analyzer, filepath.Join("testdata", "src", "a"))
}
