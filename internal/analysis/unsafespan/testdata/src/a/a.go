// Package a exercises the unsafespan analyzer: unsafe containment,
// pointer fabrication, Ref/pointer identity, and the post-Unpin use
// window. Signatures that merely mention unsafe.Pointer as scaffolding
// carry //oak:unsafe-ok so the tests focus on the bodies.
package a

import (
	"unsafe"

	"oakmap/internal/arena"
	"oakmap/internal/epoch"
)

//oak:unsafe-ok — signature scaffolding, not under test
func fabricate(off uintptr) unsafe.Pointer {
	return unsafe.Pointer(off) // want `use of unsafe outside the arena containment boundary` `unsafe\.Pointer fabricated from an integer`
}

//oak:unsafe-ok — signature scaffolding, not under test
func deriveOK(p unsafe.Pointer, off uintptr) unsafe.Pointer {
	// Same-expression derivation from a real pointer: only the
	// containment rule fires, not fabrication.
	return unsafe.Pointer(uintptr(p) + off) // want `use of unsafe outside the arena containment boundary`
}

func refToPointer(r arena.Ref) uintptr {
	return uintptr(r) // want `conversion between arena\.Ref and a pointer: refs are allocator-protocol names, not addresses`
}

func intToRefOK(x uint64) arena.Ref {
	return arena.Ref(x) // integers convert freely: a Ref is an integer name
}

func refToIntOK(r arena.Ref) uint64 {
	return uint64(r)
}

//oak:unsafe-ok — signature scaffolding, not under test
func useAfterUnpin(d *epoch.Domain, p unsafe.Pointer) unsafe.Pointer {
	g := d.Pin()
	q := p
	g.Unpin()
	return q // want `off-heap unsafe\.Pointer q used after Unpin: the guard that kept its span alive is gone`
}

//oak:unsafe-ok — signature scaffolding, not under test
func deferredUnpinNoWindow(d *epoch.Domain, p unsafe.Pointer) byte {
	g := d.Pin()
	defer g.Unpin() // deferred release opens no mid-function window
	q := p
	return *(*byte)(q)
}

func allowNamed(off uintptr) unsafe.Pointer { // want `use of unsafe outside the arena containment boundary`
	// The named-allow spelling suppresses only the annotated line.
	return unsafe.Pointer(off) //oak:allow unsafespan — reviewed fabrication for this test
}
