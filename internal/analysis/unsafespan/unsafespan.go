// Package unsafespan contains unsafe.Pointer use inside the packages
// that own off-heap memory, and polices the conversions that would
// turn an arena offset into a raw pointer anywhere else (DESIGN.md
// §10).
//
// Oak's off-heap discipline: arena memory is addressed by arena.Ref —
// a packed (block, offset, length) integer — and only the allocator
// maps a Ref to bytes, under the epoch/header protocols that make the
// mapping sound. The moment any other package holds a raw pointer into
// a block, every safety argument (epoch-deferred reuse, rebalance
// privatization, header recycling) silently stops covering it: the GC
// won't keep the block alive through a uintptr, and a reclaimed span
// can be re-allocated under the pointer.
//
// Rules:
//
//  1. Containment — any use of package unsafe outside the allowlist
//     (internal/arena, internal/vheader, internal/epoch,
//     internal/telemetry — the reviewed owners of off-heap or
//     address-hashing tricks) is flagged. A deliberate, reviewed
//     exception carries //oak:unsafe-ok with a rationale.
//
//  2. Fabrication — converting an integer (uintptr, arena.Ref) to
//     unsafe.Pointer is flagged EVERYWHERE, including allowlisted
//     packages, unless the integer derives from a pointer within the
//     same expression (the vet-blessed p+offset idiom). An integer
//     held across statements is invisible to the GC; the allocation
//     it pointed into may already have moved or been reused.
//
//  3. Ref/pointer identity — conversions between arena.Ref and any
//     pointer or uintptr are flagged outside internal/arena: a Ref is
//     a name for space inside the allocator's protocol, not an
//     address.
//
//  4. Unpin window — an unsafe.Pointer-typed local must not be used
//     after the epoch guard protecting it is released: the first
//     Unpin in a function ends every off-heap pointer's validity.
package unsafespan

import (
	"go/ast"
	"go/token"
	"go/types"

	"oakmap/internal/analysis"
)

// Analyzer is the unsafespan analysis.
var Analyzer = &analysis.Analyzer{
	Name: "unsafespan",
	Doc:  "contain unsafe.Pointer to the arena boundary; forbid offset/pointer conversions and post-Unpin pointer use",
	Run:  run,
}

// allowlisted packages may use unsafe (rules 2 and 4 still apply).
var allowlisted = map[string]bool{
	"oakmap/internal/arena":     true,
	"oakmap/internal/vheader":   true,
	"oakmap/internal/epoch":     true,
	"oakmap/internal/telemetry": true,
}

const arenaPkg = "oakmap/internal/arena"

func run(pass *analysis.Pass) error {
	allowed := allowlisted[pass.Pkg.Path()]
	parents := analysis.Parents(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !allowed && usesUnsafe(pass.TypesInfo, n) {
					pass.Report(n.Pos(), "use of unsafe outside the arena containment boundary (allowlist: arena, vheader, epoch, telemetry)")
				}
			case *ast.CallExpr:
				checkConversion(pass, n, allowed)
			}
			return true
		})
		checkUnpinWindows(pass, parents, f)
	}
	return nil
}

// usesUnsafe reports a selector rooted in package unsafe.
func usesUnsafe(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "unsafe"
}

// checkConversion enforces rules 2 and 3 on a single conversion.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, allowed bool) {
	target, ok := analysis.IsConversion(pass.TypesInfo, call)
	if !ok || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	argType := pass.TypesInfo.Types[arg].Type
	if argType == nil {
		return
	}
	toUnsafe := isUnsafePointer(target)
	fromUnsafe := isUnsafePointer(argType)
	toRef := analysis.Named(target, arenaPkg, "Ref")
	fromRef := analysis.Named(argType, arenaPkg, "Ref")

	switch {
	case toUnsafe && isInteger(argType):
		// Rule 2: integer → pointer, unless the integer is derived
		// from a pointer inside this same expression.
		if !derivesFromPointer(pass.TypesInfo, arg) {
			pass.Report(call.Pos(), "unsafe.Pointer fabricated from an integer: an arena offset is not an address (GC-invisible, reuse-unsafe)")
		}
	case (toRef && (fromUnsafe || isPointerLike(argType))) ||
		(fromRef && (toUnsafe || isPointerLike(target))):
		// Rule 3: Ref <-> pointer identity, outside the allocator.
		if pass.Pkg.Path() != arenaPkg {
			pass.Report(call.Pos(), "conversion between arena.Ref and a pointer: refs are allocator-protocol names, not addresses")
		}
	}
}

func isUnsafePointer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isPointerLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.Uintptr
	}
	return false
}

// derivesFromPointer reports whether expr contains a pointer →
// uintptr conversion (the same-expression arithmetic idiom).
func derivesFromPointer(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || len(c.Args) != 1 {
			return true
		}
		target, ok := analysis.IsConversion(info, c)
		if !ok {
			return true
		}
		b, ok := target.Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Uintptr {
			return true
		}
		at := info.Types[c.Args[0]].Type
		if at != nil && (isUnsafePointer(at) || isPointerLike(at)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkUnpinWindows flags unsafe.Pointer locals used after the
// function's first Unpin call (rule 4): releasing the epoch guard ends
// the validity of every off-heap pointer derived under it.
func checkUnpinWindows(pass *analysis.Pass, parents map[ast.Node]ast.Node, f *ast.File) {
	info := pass.TypesInfo
	// Collect per-function: positions of Unpin calls, and uses of
	// unsafe.Pointer-typed variables.
	type window struct {
		firstUnpin token.Pos
		uses       []*ast.Ident
	}
	byFunc := make(map[ast.Node]*window)
	fnOf := func(n ast.Node) ast.Node { return analysis.EnclosingFunc(parents, n) }
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsMethod(info, n, "oakmap/internal/epoch", "Unpin") {
				// A deferred Unpin runs at function exit regardless of
				// its lexical position: it opens no mid-function window.
				deferred := false
				for p := parents[ast.Node(n)]; p != nil; p = parents[p] {
					if _, ok := p.(*ast.DeferStmt); ok {
						deferred = true
						break
					}
					if _, ok := p.(*ast.FuncDecl); ok {
						break
					}
				}
				if deferred {
					return true
				}
				if fn := fnOf(n); fn != nil {
					w := byFunc[fn]
					if w == nil {
						w = &window{firstUnpin: n.Pos()}
						byFunc[fn] = w
					} else if n.Pos() < w.firstUnpin || w.firstUnpin == token.NoPos {
						w.firstUnpin = n.Pos()
					}
				}
			}
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Var)
			if !ok || !isUnsafePointer(obj.Type()) {
				return true
			}
			if fn := fnOf(n); fn != nil {
				w := byFunc[fn]
				if w == nil {
					w = &window{}
					byFunc[fn] = w
				}
				w.uses = append(w.uses, n)
			}
		}
		return true
	})
	for _, w := range byFunc {
		if w.firstUnpin == token.NoPos || w.firstUnpin == 0 {
			continue
		}
		for _, use := range w.uses {
			if use.Pos() > w.firstUnpin {
				pass.Report(use.Pos(), "off-heap unsafe.Pointer %s used after Unpin: the guard that kept its span alive is gone", use.Name)
			}
		}
	}
}
