package unsafespan_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/unsafespan"
)

func TestUnsafeSpan(t *testing.T) {
	analysistest.Run(t, unsafespan.Analyzer, filepath.Join("testdata", "src", "a"))
}
