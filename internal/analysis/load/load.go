// Package load turns `go list` package patterns into type-checked
// analysis units without depending on golang.org/x/tools/go/packages.
//
// The trick that keeps this stdlib-only is `go list -deps -export`: the
// go tool compiles every dependency and reports the path of its gc
// export data (.a) file in the build cache. Target packages (the ones
// the patterns matched) are then parsed and type-checked from source,
// with an importer that satisfies every import from that export data —
// the same division of labor as go vet's driver. Nothing is ever
// re-implemented for dependency resolution, build tags, or module
// semantics: the go tool owns all of it.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"oakmap/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads the packages matched by patterns, rooted at dir
// (empty means the current directory), and returns one type-checked
// unit per target package plus the export-data index for all their
// dependencies.
func Packages(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var units []*analysis.Unit
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			// cgo packages cannot be type-checked from raw source;
			// none exist in this module, so skipping is safe.
			continue
		}
		u, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// Exports resolves patterns with `go list -deps -export` and returns
// the import-path → gc-export-data index for the full dependency
// closure. The analysistest harness uses it to type-check testdata
// sources against the real module's compiled types.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// goList runs `go list -e -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through gc export data files (as indexed by `go list -export`). It is
// shared with the analysistest harness, which type-checks testdata
// sources against the real module's export data.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one target package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*analysis.Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: remappedImporter{imp: imp, remap: p.ImportMap},
		Error:    func(error) {}, // collect the first hard error below instead
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// NewInfo allocates the types.Info with every map analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// remappedImporter applies a package's ImportMap (vendored stdlib
// paths) before delegating to the export-data importer.
type remappedImporter struct {
	imp   types.Importer
	remap map[string]string
}

func (r remappedImporter) Import(path string) (*types.Package, error) {
	if m, ok := r.remap[path]; ok {
		path = m
	}
	return r.imp.Import(path)
}
