package snaplife_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/snaplife"
)

func TestSnapLife(t *testing.T) {
	analysistest.Run(t, snaplife.Analyzer, filepath.Join("testdata", "src", "a"))
}
