// Package snaplife proves that every MVCC snapshot is closed — the
// compile-time form of the retention discipline behind Snapshot()
// (DESIGN.md §13).
//
// A snapshot pins the version horizon: while it is open, every
// overwrite and delete of an entry it can see is retained instead of
// retired, so a forgotten Close turns steady-state churn into an
// unbounded off-heap leak (the runtime leak gate catches it only if a
// test happens to drive that path). The analyzer enforces, per
// acquisition of a Snapshot (the oakmap facade's or the sharded
// front-end's):
//
//   - the snapshot must not be discarded or assigned to blank — such a
//     snapshot can never be closed;
//   - a snapshot bound to a local variable must register defer
//     sn.Close() (directly or inside a deferred closure) — the only
//     form that survives panics and early returns;
//   - a snapshot that leaves the acquiring function — returned, stored
//     into a field/map/global, sent on a channel, captured by a
//     goroutine, or passed to another function — transfers ownership,
//     and the analyzer stays silent: lifetime then belongs to a
//     registry (the server's snapshot-cursor table is the canonical
//     case) and is checked at runtime by the leak gate.
//
// A deliberate non-deferred Close (e.g. a tight sequential helper) is
// annotated //oak:allow snaplife with a rationale, the same
// defer-or-flag contract pinbalance applies to epoch pins.
package snaplife

import (
	"go/ast"
	"go/types"

	"oakmap/internal/analysis"
)

// Analyzer is the snaplife analysis.
var Analyzer = &analysis.Analyzer{
	Name: "snaplife",
	Doc:  "flag MVCC snapshots that can leak: Snapshot() without a deferred (or ownership-transferring, or flagged) Close",
	Run:  run,
}

// snapshotPkgs are the packages whose Snapshot constructors are
// tracked. They are also exempt from the check themselves: the facade
// and the sharded front-end wrap and hand out snapshots as part of
// their implementation.
var snapshotPkgs = map[string]bool{
	"oakmap":         true,
	"oakmap/sharded": true,
}

func run(pass *analysis.Pass) error {
	if snapshotPkgs[pass.Pkg.Path()] {
		return nil
	}
	parents := analysis.Parents(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSnapshotCall(pass.TypesInfo, call) {
				return true
			}
			checkSnapshot(pass, parents, call)
			return true
		})
	}
	return nil
}

// isSnapshotCall matches method calls named Snapshot declared in one
// of the snapshot-bearing packages. (Map.Snapshot is the only such
// method in both; matching by name keeps the rule stable if the
// receiver types are ever renamed.)
func isSnapshotCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != "Snapshot" || fn.Pkg() == nil {
		return false
	}
	if !snapshotPkgs[fn.Pkg().Path()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isCloseCallOn matches sn.Close() for the tracked variable.
func isCloseCallOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != "Close" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// checkSnapshot verifies one acquisition.
func checkSnapshot(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := analysis.EnclosingFunc(parents, call)
	if fn == nil {
		return // package-level init: no lifetime discipline expressible
	}

	switch p := parents[call].(type) {
	case *ast.ExprStmt:
		pass.Report(call.Pos(), "Snapshot result discarded: the snapshot can never be closed and pins retained versions until the map dies")
		return
	case *ast.AssignStmt:
		obj := boundLocal(info, p, call)
		if obj == blankBinding {
			pass.Report(call.Pos(), "Snapshot result assigned to blank: the snapshot can never be closed and pins retained versions until the map dies")
			return
		}
		if obj == nil {
			return // stored straight into a field/index/etc.: ownership transferred
		}
		body := analysis.FuncBody(fn)
		if hasDeferredClose(info, body, obj) {
			return // panic-safe on every path
		}
		if transfersOwnership(info, parents, fn, obj) {
			return // a registry or caller now owns the Close
		}
		if hasAnyClose(info, body, obj) {
			pass.Report(call.Pos(), "snapshot Close is not deferred: a panic or early return before it leaks the snapshot's retained versions; use defer sn.Close() or annotate //oak:allow snaplife with a rationale")
		} else {
			pass.Report(call.Pos(), "missing Close: the snapshot is never closed on any path, pinning retained versions until the map dies")
		}
	default:
		// Direct use as an argument, composite-literal value, return
		// operand, …: the snapshot is handed off at birth.
		return
	}
}

// blankBinding is the sentinel boundLocal returns for `_ = m.Snapshot()`.
var blankBinding types.Object = types.NewLabel(0, nil, "_blank_")

// boundLocal returns the local variable the call's result is bound to,
// blankBinding for a blank assignment, or nil when the result goes
// somewhere other than a plain identifier.
func boundLocal(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, r := range as.Rhs {
		if r != call || i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			return nil
		}
		if id.Name == "_" {
			return blankBinding
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// hasDeferredClose reports whether body registers a deferred Close of
// obj: defer sn.Close(), or a deferred closure whose body calls it.
func hasDeferredClose(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isCloseCallOn(info, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isCloseCallOn(info, c, obj) {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}

// hasAnyClose reports whether body contains a non-deferred sn.Close().
func hasAnyClose(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isCloseCallOn(info, c, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// transfersOwnership reports whether obj leaves the acquiring function:
// returned, stored into memory that outlives the frame, sent on a
// channel, passed to another call, aliased, or captured by a
// goroutine. Any such use moves the Close obligation to the receiver,
// where the runtime leak gate takes over.
func transfersOwnership(info *types.Info, parents map[ast.Node]ast.Node, fn ast.Node, obj types.Object) bool {
	transferred := false
	ast.Inspect(analysis.FuncBody(fn), func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.ReturnStmt, *ast.SendStmt, *ast.KeyValueExpr, *ast.CompositeLit:
			transferred = true
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == id {
					transferred = true // alias or store: the new name owns it
				}
			}
		case *ast.CallExpr:
			// An argument position (not the sn.Close()/sn.Get() receiver
			// spelled via SelectorExpr — those parent as SelectorExpr).
			for _, a := range p.Args {
				if a == id {
					transferred = true
				}
			}
		}
		if !transferred {
			// Capture by a go statement's closure.
			for q := parents[id]; q != nil && q != fn; q = parents[q] {
				if lit, ok := q.(*ast.FuncLit); ok {
					if c, ok := parents[lit].(*ast.CallExpr); ok && c.Fun == lit {
						if _, isGo := parents[c].(*ast.GoStmt); isGo {
							transferred = true
						}
					}
				}
			}
		}
		return !transferred
	})
	return transferred
}
