// Package a exercises the snaplife analyzer: discarded, leaked, and
// non-deferred snapshot closes, next to the deferred and
// ownership-transfer forms the codebase actually uses.
package a

import "oakmap"

type registry struct {
	sn *oakmap.Snapshot[uint64, uint64]
}

var global *oakmap.Snapshot[uint64, uint64]

func cond() bool { return true }

func work() {}

func consume(sn *oakmap.Snapshot[uint64, uint64]) {}

// --- Safe forms: no diagnostics. ---

func deferredOK(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot()
	defer sn.Close()
	work()
	if cond() {
		return // early return is fine: the defer closes
	}
	sn.Get(1)
}

func deferredClosureOK(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot()
	defer func() {
		sn.Close()
	}()
	sn.Get(1)
}

// returnOK hands the snapshot to the caller: ownership transfers with
// the return value.
func returnOK(m *oakmap.Map[uint64, uint64]) *oakmap.Snapshot[uint64, uint64] {
	sn := m.Snapshot()
	return sn
}

// storeOK parks the snapshot in a registry (the server's
// snapshot-cursor table idiom): the registry owns the Close now.
func storeOK(m *oakmap.Map[uint64, uint64], r *registry) {
	r.sn = m.Snapshot()
}

// literalOK transfers ownership at birth inside a composite literal.
func literalOK(m *oakmap.Map[uint64, uint64]) *registry {
	return &registry{sn: m.Snapshot()}
}

// aliasOK conservatively treats re-binding as a transfer: the new name
// owns the snapshot.
func aliasOK(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot()
	global = sn
}

// passOK hands the snapshot to another function, which owns it now.
func passOK(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot()
	consume(sn)
}

// flaggedOK documents a reviewed, deliberately non-deferred Close.
func flaggedOK(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot() //oak:allow snaplife — straight-line helper, no panic sources between open and close
	sn.Get(1)
	sn.Close()
}

// --- Violations. ---

func discarded(m *oakmap.Map[uint64, uint64]) {
	m.Snapshot() // want "Snapshot result discarded"
}

func blank(m *oakmap.Map[uint64, uint64]) {
	_ = m.Snapshot() // want "Snapshot result assigned to blank"
}

func neverClosed(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot() // want "missing Close: the snapshot is never closed on any path"
	sn.Get(1)
}

func notDeferred(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot() // want "snapshot Close is not deferred"
	sn.Get(1)
	sn.Close()
}

func earlyReturnLeak(m *oakmap.Map[uint64, uint64]) {
	sn := m.Snapshot() // want "snapshot Close is not deferred"
	if cond() {
		return // this path leaks; the analyzer wants the defer form
	}
	sn.Close()
}
