package lockorder_test

import (
	"path/filepath"
	"testing"

	"oakmap/internal/analysis/analysistest"
	"oakmap/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, filepath.Join("testdata", "src", "a"))
}
