// Package a exercises lockorder: direct AB/BA cycles, cycles closed
// through the call graph, declared-order violations, and same-class
// nesting.
package a

import "sync"

type store struct {
	mu    sync.Mutex
	index sync.Mutex
}

// The classic two-lock deadlock: lockBoth orders mu → index,
// lockBothReversed orders index → mu.
func (s *store) lockBoth() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index.Lock() // want `acquiring a.store.index while holding a.store.mu closes a lock-order cycle \{a.store.index, a.store.mu\}`
	defer s.index.Unlock()
}

func (s *store) lockBothReversed() {
	s.index.Lock()
	defer s.index.Unlock()
	s.mu.Lock() // want `acquiring a.store.mu while holding a.store.index closes a lock-order cycle \{a.store.index, a.store.mu\}`
	defer s.mu.Unlock()
}

// A cycle closed through the call graph: lockAuxThenCall holds aux
// and calls helper, which (transitively, through helper2) locks
// inner; lockInnerThenAux holds inner and read-locks aux.
type cache struct {
	aux   sync.RWMutex
	inner sync.Mutex
}

func (c *cache) lockAuxThenCall() {
	c.aux.Lock()
	defer c.aux.Unlock()
	c.helper() // want `acquiring a.cache.inner while holding a.cache.aux closes a lock-order cycle \{a.cache.aux, a.cache.inner\}`
}

func (c *cache) helper() { c.helper2() }

func (c *cache) helper2() {
	c.inner.Lock()
	defer c.inner.Unlock()
}

func (c *cache) lockInnerThenAux() {
	c.inner.Lock()
	defer c.inner.Unlock()
	c.aux.RLock() // want `acquiring a.cache.aux while holding a.cache.inner closes a lock-order cycle \{a.cache.aux, a.cache.inner\}`
	defer c.aux.RUnlock()
}

// Same-class nesting without a declared instance order.
type shard struct {
	mu sync.Mutex
}

func drainPair(x, y *shard) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `acquiring a.shard.mu while another a.shard.mu is already held: same-class nesting deadlocks`
	defer y.mu.Unlock()
}

// Same-class nesting WITH a declared instance order is fine: ordered
// is locked ascending by id everywhere.
//
//oak:lock-order a.ordered.mu a.ordered.mu
type ordered struct {
	id int
	mu sync.Mutex
}

func drainOrdered(x, y *ordered) {
	if y.id < x.id {
		x, y = y, x
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// TryLock never blocks, so it cannot close a cycle: reap backs off
// instead of deadlocking.
type reaper struct {
	a sync.Mutex
	b sync.Mutex
}

func (r *reaper) forward() {
	r.a.Lock()
	defer r.a.Unlock()
	r.b.Lock()
	defer r.b.Unlock()
}

func (r *reaper) backoff() {
	r.b.Lock()
	defer r.b.Unlock()
	if !r.a.TryLock() {
		return
	}
	r.a.Unlock()
}

// go-launched work is unordered with the spawner's locks: no edge.
func (r *reaper) spawn() {
	r.a.Lock()
	defer r.a.Unlock()
	go func() {
		r.b.Lock()
		defer r.b.Unlock()
	}()
}
