package a

import "sync"

// A declared global order that code violates: the declaration says
// meta before data, but flip locks data then meta. The declared edge
// plus the observed edge form a cycle, reported at both sites.

//oak:lock-order a.catalog.meta a.catalog.data // want `declared lock order a.catalog.meta before a.catalog.data is part of an acquisition cycle \{a.catalog.data, a.catalog.meta\}`
type catalog struct {
	meta sync.Mutex
	data sync.Mutex
}

func (c *catalog) flip() {
	c.data.Lock()
	defer c.data.Unlock()
	c.meta.Lock() // want `acquiring a.catalog.meta while holding a.catalog.data closes a lock-order cycle \{a.catalog.data, a.catalog.meta\}`
	defer c.meta.Unlock()
}

// Code that follows a declared order is clean even though only one
// direction is ever observed.

//oak:lock-order a.ledger.head a.ledger.tail
type ledger struct {
	head sync.Mutex
	tail sync.Mutex
}

func (l *ledger) appendBoth() {
	l.head.Lock()
	defer l.head.Unlock()
	l.tail.Lock()
	defer l.tail.Unlock()
}
