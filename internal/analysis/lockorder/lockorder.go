// Package lockorder proves the module's mutex-acquisition order is
// acyclic — the compile-time form of "we never deadlock" (DESIGN.md
// §10).
//
// Every package pass summarizes, per function: which lock classes the
// function blocking-acquires directly, which functions it calls (and
// the lock classes held at each call site), and which
// //oak:lock-order declarations the package makes. The Finish hook
// stitches the summaries into a module-wide directed graph over lock
// classes (pkg.Type.field):
//
//   - an edge A → B for every site that blocking-acquires B while
//     holding A, including acquisitions reached through calls: if f
//     locks B somewhere and g calls f holding A, that call site
//     contributes A → B (transitive-acquire closure over the static
//     call graph);
//   - an edge A → B for every //oak:lock-order A B declaration — the
//     documented global order participates in cycle detection, so
//     code that locks against the declared order is reported even if
//     no second code path closes the cycle yet.
//
// Any strongly connected component with more than one class is a
// potential deadlock: two goroutines entering the cycle from
// different points block each other forever. Each edge inside a cycle
// is reported at its acquisition (or declaration) site.
//
// Same-class nesting (acquiring a mutex class while an instance of
// the same class is held — the sharded multi-shard install pattern)
// is reported unless the package declares //oak:lock-order C C,
// asserting a documented total order over instances (for shards: the
// global (shard, key) install order).
//
// Soundness notes: TryLock acquisitions never block and are excluded;
// calls through function values (the epoch free callback) are not
// traced — the call graph covers static callees only; go-launched
// work is excluded (locks taken on another goroutine are unordered
// with the spawner's).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/lockset"
)

// Analyzer is the lockorder analysis.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "flag cycles in the module-wide mutex acquisition order (potential deadlocks)",
	Run:    run,
	Finish: finish,
}

// edgeFact is one observed or declared order constraint.
type edgeFact struct {
	From, To string
	Pos      token.Pos
	Declared bool
}

// callFact is one static call with the lock classes held at the site.
type callFact struct {
	Caller string // types.Func.FullName of the calling function
	Held   []string
	Callee string // types.Func.FullName of the callee
	Pos    token.Pos
}

// fact is one package's summary.
type fact struct {
	Edges    []edgeFact
	Calls    []callFact
	Acquires map[string][]string // func FullName -> directly acquired classes
}

func run(pass *analysis.Pass) error {
	ls := lockset.Extract(pass)
	parents := analysis.Parents(pass.Files)
	f := &fact{Acquires: make(map[string][]string)}
	for _, d := range ls.Orders {
		f.Edges = append(f.Edges, edgeFact{From: d.Before, To: d.After, Pos: d.Pos, Declared: true})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			summarize(pass, ls, parents, fd, f)
		}
	}
	pass.ExportFact(f)
	return nil
}

func summarize(pass *analysis.Pass, ls *lockset.Info, parents map[ast.Node]ast.Node, fd *ast.FuncDecl, f *fact) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	self := fn.FullName()
	w := &lockset.Walker{
		Info: pass.TypesInfo,
		Visit: func(n ast.Node, held lockset.Held) {
			call, ok := n.(*ast.CallExpr)
			if !ok || underGo(parents, call) {
				return
			}
			if op := lockset.AsLockOp(pass.TypesInfo, call); op != nil {
				if !op.Acquires() || !op.Blocking() {
					return
				}
				to, ok := ls.MutexClass[op.Field]
				if !ok {
					return // local or foreign mutex: unclassed
				}
				f.Acquires[self] = append(f.Acquires[self], to)
				for h := range held {
					if from, ok := ls.MutexClass[h]; ok {
						f.Edges = append(f.Edges, edgeFact{From: from, To: to, Pos: call.Pos()})
					}
				}
				return
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil {
				return // func value / builtin / conversion: untraced
			}
			cf := callFact{Caller: self, Callee: callee.FullName(), Pos: call.Pos()}
			for h := range held {
				if c, ok := ls.MutexClass[h]; ok {
					cf.Held = append(cf.Held, c)
				}
			}
			sort.Strings(cf.Held)
			f.Calls = append(f.Calls, cf)
		},
	}
	w.Walk(fd.Body, lockset.Held{})
}

// underGo reports whether n sits inside a go statement's call: work on
// another goroutine is unordered with the spawner's held locks.
func underGo(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

func finish(m *analysis.ModulePass) error {
	// Merge package summaries.
	acquires := make(map[string]map[string]bool) // func -> directly acquired classes
	callGraph := make(map[string]map[string]bool)
	var edges []edgeFact
	var calls []callFact
	for _, raw := range m.Facts {
		f := raw.(*fact)
		edges = append(edges, f.Edges...)
		calls = append(calls, f.Calls...)
		for fn, cs := range f.Acquires {
			set := acquires[fn]
			if set == nil {
				set = make(map[string]bool)
				acquires[fn] = set
			}
			for _, c := range cs {
				set[c] = true
			}
		}
	}
	for _, c := range calls {
		set := callGraph[c.Caller]
		if set == nil {
			set = make(map[string]bool)
			callGraph[c.Caller] = set
		}
		set[c.Callee] = true
	}
	closure := transitiveAcquires(acquires, callGraph)

	// Calls made while holding locks contribute edges to everything
	// the callee (transitively) acquires.
	for _, c := range calls {
		if len(c.Held) == 0 {
			continue
		}
		for _, to := range sortedKeys(closure[c.Callee]) {
			for _, from := range c.Held {
				edges = append(edges, edgeFact{From: from, To: to, Pos: c.Pos})
			}
		}
	}

	reportCycles(m, edges)
	return nil
}

// transitiveAcquires computes, for every function, the set of lock
// classes reachable through its static call graph (its own blocking
// acquisitions plus its callees', to fixpoint).
func transitiveAcquires(acquires map[string]map[string]bool, callGraph map[string]map[string]bool) map[string]map[string]bool {
	closure := make(map[string]map[string]bool, len(acquires))
	for fn, set := range acquires {
		c := make(map[string]bool, len(set))
		for k := range set {
			c[k] = true
		}
		closure[fn] = c
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callGraph {
			dst := closure[fn]
			for callee := range cs {
				for cls := range closure[callee] {
					if dst == nil {
						dst = make(map[string]bool)
						closure[fn] = dst
					}
					if !dst[cls] {
						dst[cls] = true
						changed = true
					}
				}
			}
		}
	}
	return closure
}

// reportCycles finds strongly connected components in the class graph
// and reports every edge inside a non-trivial one. Self-edges
// (same-class nesting) are reported unless declared.
func reportCycles(m *analysis.ModulePass, edges []edgeFact) {
	// Collapse parallel edges, keeping the earliest position of each
	// (from, to); declared edges are kept distinct for messaging.
	type key struct{ from, to string }
	first := make(map[key]edgeFact)
	declaredSelf := make(map[string]bool)
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if e.Declared && e.From == e.To {
			declaredSelf[e.From] = true
			continue
		}
		k := key{e.From, e.To}
		if prev, ok := first[k]; !ok || e.Pos < prev.Pos {
			first[k] = e
		}
		if adj[e.From] == nil {
			adj[e.From] = make(map[string]bool)
		}
		adj[e.From][e.To] = true
	}

	// Self-edges: same-class nesting needs a declared instance order.
	var selfKeys []key
	for k := range first {
		if k.from == k.to && !declaredSelf[k.from] {
			selfKeys = append(selfKeys, k)
		}
	}
	sort.Slice(selfKeys, func(i, j int) bool { return selfKeys[i].from < selfKeys[j].from })
	for _, k := range selfKeys {
		e := first[k]
		m.Report(e.Pos, "acquiring %s while another %s is already held: same-class nesting deadlocks unless instances are locked in a documented total order (declare //oak:lock-order %s %s next to that order)",
			k.to, k.from, k.from, k.to)
	}

	// Tarjan SCC over the class graph (self-edges excluded above).
	sccOf := tarjan(adj)
	sccSize := make(map[int]int)
	for _, id := range sccOf {
		sccSize[id]++
	}
	var cycleKeys []key
	for k := range first {
		if k.from == k.to {
			continue
		}
		if id, ok := sccOf[k.from]; ok && sccOf[k.to] == id && sccSize[id] > 1 {
			cycleKeys = append(cycleKeys, k)
		}
	}
	sort.Slice(cycleKeys, func(i, j int) bool {
		if cycleKeys[i].from != cycleKeys[j].from {
			return cycleKeys[i].from < cycleKeys[j].from
		}
		return cycleKeys[i].to < cycleKeys[j].to
	})
	for _, k := range cycleKeys {
		e := first[k]
		// Name the component deterministically so the message shows the
		// whole cycle, not just this edge.
		var comp []string
		for n, id := range sccOf {
			if id == sccOf[k.from] {
				comp = append(comp, n)
			}
		}
		sort.Strings(comp)
		if e.Declared {
			m.Report(e.Pos, "declared lock order %s before %s is part of an acquisition cycle {%s}: some code path locks against this order",
				e.From, e.To, strings.Join(comp, ", "))
			continue
		}
		m.Report(e.Pos, "acquiring %s while holding %s closes a lock-order cycle {%s}: two goroutines entering it from different points deadlock",
			e.To, e.From, strings.Join(comp, ", "))
	}
}

// tarjan assigns each node in adj a strongly-connected-component id.
func tarjan(adj map[string]map[string]bool) map[string]int {
	nodes := make(map[string]bool)
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	sccOf := make(map[string]int)
	var stack []string
	next, nextSCC := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(adj[v]) {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = nextSCC
				if w == v {
					break
				}
			}
			nextSCC++
		}
	}
	var all []string
	for n := range nodes {
		all = append(all, n)
	}
	sort.Strings(all)
	for _, n := range all {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccOf
}

// sortedKeys returns the keys of a string-set in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
