// Package analysistest runs an analyzer over a testdata package and
// compares its diagnostics against `// want "regex"` comments in the
// sources — a stdlib-only miniature of
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata packages live under <analyzer>/testdata/src/<name>/ and may
// import the real module ("oakmap", "oakmap/internal/epoch", ...): the
// harness resolves those imports through the same gc export data that
// cmd/oak-vet uses, so the types the analyzers see in tests are the
// types they see in production.
//
// Expectation grammar (same as x/tools): a comment
//
//	// want "regex" `another regex`
//
// on a line declares that each listed regex matches the message of one
// distinct diagnostic reported on that line. Unmatched diagnostics and
// unmatched expectations both fail the test.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"oakmap/internal/analysis"
	"oakmap/internal/analysis/load"
)

// depRoots are the packages testdata files may import. `go list -deps
// -export` compiles them and indexes export data for their whole
// dependency closure (which covers the standard library the module
// itself uses).
var depRoots = []string{
	"oakmap",
	"oakmap/internal/arena",
	"oakmap/internal/epoch",
	"oakmap/internal/faultpoint",
	"errors",
	"fmt",
	"strings",
	"sync",
	"sync/atomic",
}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

func depExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		exportsMap, exportsErr = load.Exports("", depRoots...)
	})
	return exportsMap, exportsErr
}

// Run analyzes the testdata package in dir with a and checks the
// diagnostics against the sources' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunWithOptions(t, a, dir, analysis.Options{})
}

// RunWithOptions is Run with explicit driver Options (used to test
// strict-suppression reporting; the default Run stays lenient so
// deliberate testdata suppressions don't trip it).
func RunWithOptions(t *testing.T, a *analysis.Analyzer, dir string, opts analysis.Options) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not available: %v", err)
	}
	exports, err := depExports()
	if err != nil {
		t.Fatalf("resolving dependency export data: %v", err)
	}

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := load.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, exports)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	diags, err := analysis.RunWithOptions([]*analysis.Unit{unit}, []*analysis.Analyzer{a}, opts)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, dir)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re.String())
		}
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// expectation is one want regex awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the raw source text for want comments. Scanning
// text (rather than the parsed comment groups) keeps the line
// attribution trivial: an expectation belongs to the line its comment
// starts on.
func collectWants(t *testing.T, fset *token.FileSet, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, text := range strings.Split(string(data), "\n") {
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			rest := text[idx+len("// want "):]
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Errorf("%s:%d: malformed want expectation at %q", path, i+1, rest)
					break
				}
				unq, err := strconv.Unquote(q)
				if err != nil {
					t.Errorf("%s:%d: cannot unquote %s", path, i+1, q)
					break
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, unq, err)
					break
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
				rest = rest[len(q):]
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation for (file, line) whose
// regex matches message, reporting whether one existed.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if w.matched || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
