package vheader

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestReclaimAllocReleaseReuse(t *testing.T) {
	tb := NewReclaimingTable()
	h1 := tb.Alloc()
	tb.StoreData(h1, 111)
	if !tb.TryDelete(h1) {
		t.Fatal("delete")
	}
	tb.Release(h1)
	if tb.Released() != 1 {
		t.Fatalf("Released = %d", tb.Released())
	}
	h2 := tb.Alloc()
	if tb.Reused() != 1 {
		t.Fatalf("Reused = %d; slot not recycled", tb.Reused())
	}
	if h2 == h1 {
		t.Fatal("recycled handle must differ (generation bump)")
	}
	if tb.Count() != 1 {
		t.Fatalf("Count = %d; want 1 materialized slot", tb.Count())
	}
	// The new incarnation is live with clean data.
	if tb.IsDeleted(h2) || tb.LoadData(h2) != 0 {
		t.Fatal("recycled slot not reset")
	}
}

func TestReclaimStaleHandleFailsEverything(t *testing.T) {
	tb := NewReclaimingTable()
	old := tb.Alloc()
	tb.TryDelete(old)
	tb.Release(old)
	fresh := tb.Alloc() // same slot, new generation
	tb.StoreData(fresh, 42)

	if !tb.IsDeleted(old) {
		t.Fatal("stale handle must read as deleted")
	}
	if tb.TryReadLock(old) {
		t.Fatal("stale read lock must fail")
	}
	if tb.TryWriteLock(old) {
		t.Fatal("stale write lock must fail")
	}
	if tb.TryDelete(old) {
		t.Fatal("stale delete must fail")
	}
	// And the fresh incarnation is unaffected.
	if tb.IsDeleted(fresh) || tb.LoadData(fresh) != 42 {
		t.Fatal("fresh incarnation corrupted by stale operations")
	}
	if !tb.TryReadLock(fresh) {
		t.Fatal("fresh read lock")
	}
	tb.ReadUnlock(fresh)
}

func TestReclaimDoubleReleaseIsIdempotent(t *testing.T) {
	tb := NewReclaimingTable()
	h := tb.Alloc()
	tb.TryDelete(h)
	tb.Release(h)
	tb.Release(h) // must be a no-op
	if tb.Released() != 1 {
		t.Fatalf("Released = %d after double release", tb.Released())
	}
	a := tb.Alloc()
	b := tb.Alloc()
	if slotOf(a) == slotOf(b) {
		t.Fatal("double release put the slot on the free list twice")
	}
}

func TestReclaimHandleEncoding(t *testing.T) {
	h := handleOf(123456, 789)
	if slotOf(h) != 123456 || genOf(h) != 789 {
		t.Fatal("handle pack/unpack")
	}
}

func TestReclaimBoundedUnderChurn(t *testing.T) {
	tb := NewReclaimingTable()
	for i := 0; i < 10000; i++ {
		h := tb.Alloc()
		tb.StoreData(h, uint64(i))
		if !tb.TryDelete(h) {
			t.Fatal("delete")
		}
		tb.Release(h)
	}
	if tb.Count() > 4 {
		t.Fatalf("Count = %d; churn must reuse slots", tb.Count())
	}
}

func TestReclaimConcurrentChurn(t *testing.T) {
	tb := NewReclaimingTable()
	var wg sync.WaitGroup
	var deleted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				h := tb.Alloc()
				tb.StoreData(h, uint64(g))
				if !tb.TryWriteLock(h) {
					t.Error("write lock on fresh handle failed")
					return
				}
				if got := tb.LoadData(h); got != uint64(g) {
					t.Errorf("data word cross-contamination: %d != %d", got, g)
					return
				}
				tb.WriteUnlock(h)
				if tb.TryDelete(h) {
					deleted.Add(1)
					tb.Release(h)
				}
			}
		}(g)
	}
	wg.Wait()
	if deleted.Load() != 8*3000 {
		t.Fatalf("deleted %d of %d", deleted.Load(), 8*3000)
	}
	// Slots are bounded by concurrency, not total operations.
	if tb.Count() > 1000 {
		t.Fatalf("Count = %d; expected bounded slot usage", tb.Count())
	}
}

// TestReclaimStaleReaderVsRecycler hammers the narrow race: a reader
// holding an old handle while the slot is released and re-allocated. The
// reader must never observe the new incarnation's data as its own.
func TestReclaimStaleReaderVsRecycler(t *testing.T) {
	tb := NewReclaimingTable()
	const rounds = 5000
	h := tb.Alloc()
	tb.StoreData(h, 1)
	var cur atomic.Uint64
	cur.Store(h)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hh := cur.Load()
				if tb.TryReadLock(hh) {
					// Under the read lock the generation matched, so the
					// data must belong to this incarnation.
					if tb.LoadData(hh)%2 != genOf(hh)%2 {
						t.Error("reader observed another incarnation's data")
						tb.ReadUnlock(hh)
						return
					}
					tb.ReadUnlock(hh)
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		old := cur.Load()
		if tb.TryDelete(old) {
			tb.Release(old)
		}
		nh := tb.Alloc()
		// Data parity tracks generation parity so readers can verify.
		tb.StoreData(nh, genOf(nh)%2+2*uint64(i))
		cur.Store(nh)
	}
	close(stop)
	wg.Wait()
}
