package vheader

import (
	"sync/atomic"

	"oakmap/internal/telemetry"
)

// HeaderTable abstracts the two header-lifetime policies:
//
//   - Table: the paper's default — headers are never reclaimed, which
//     makes remove trivially ABA-free at the cost of ~24B per ever-
//     inserted value.
//   - ReclaimingTable: the paper's extension ("a more elaborate solution
//     that uses generations (epochs) in order to reclaim headers as
//     well; this mechanism is beyond the scope of the current paper"),
//     implemented here: header slots carry a generation counter and are
//     recycled through a free list once released.
type HeaderTable interface {
	// Alloc returns a fresh live handle with a zero data word.
	Alloc() uint64
	// Release recycles the (deleted) value's header slot; it is
	// idempotent and a no-op for non-reclaiming tables.
	Release(h uint64)
	IsDeleted(h uint64) bool
	TryReadLock(h uint64) bool
	ReadUnlock(h uint64)
	TryWriteLock(h uint64) bool
	WriteUnlock(h uint64)
	TryDelete(h uint64) bool
	// DeleteLocked marks a write-locked header deleted (releasing the
	// lock); the caller must hold the write lock via TryWriteLock.
	DeleteLocked(h uint64)
	LoadData(h uint64) uint64
	StoreData(h uint64, ref uint64)
	// LoadVersion/StoreVersion access the header's MVCC version word
	// (write version + batch flags, packed by the core layer). Stores
	// require the write lock or an unpublished header; a recycled slot
	// starts over at version 0.
	LoadVersion(h uint64) uint64
	StoreVersion(h uint64, v uint64)
	// Count returns the number of header slots ever materialized.
	Count() uint64
}

// Release implements HeaderTable for the default table: a no-op, per the
// paper's default reclamation policy.
func (t *Table) Release(uint64) {}

var _ HeaderTable = (*Table)(nil)
var _ HeaderTable = (*ReclaimingTable)(nil)

// Handle layout for ReclaimingTable: slot index in the low 40 bits,
// generation in the high 24. A slot's generation increments on every
// release, so a stale handle (one observed before the slot was recycled)
// fails every operation. Generations wrap after 2^24 reuses of one slot;
// an ABA would additionally require a 2^24-reuse cycle between a
// handle's load and its CAS, which the surrounding algorithm's retry
// structure makes unreachable in practice.
const (
	slotBits = 40
	slotMask = 1<<slotBits - 1
)

func handleOf(slot, gen uint64) uint64 { return gen<<slotBits | slot }
func slotOf(h uint64) uint64           { return h & slotMask }
func genOf(h uint64) uint64            { return h >> slotBits }

// rslot words: [0] lock/deleted, [1] data ref, [2] generation,
// [3] MVCC version.
type rsegment [4 * segmentSize]atomic.Uint64

// ReclaimingTable is a header table whose slots are recycled with
// generation validation. All operations on stale handles fail exactly
// like operations on deleted values.
//
// Recycled slots are kept on a lock-free Treiber stack threaded through
// the data words of the free slots themselves (a free slot has no data,
// and stale handles are fenced off by generation validation before any
// data read), so Release and the recycled-slot Alloc path are a few CAS
// operations with no mutex — Oak's delete-heavy workloads hit both from
// every worker.
type ReclaimingTable struct {
	segments [maxSegments]atomic.Pointer[rsegment]
	next     atomic.Uint64

	// freeHead packs the free stack's top slot index in the low slotBits
	// and a version counter above it; every successful CAS bumps the
	// version, so a head observed before an intervening pop/push cannot
	// be reinstalled (the classic Treiber ABA). The version wraps after
	// 2^24 operations; an ABA would additionally require the head slot
	// and its next link to repeat at exactly that distance, unreachable
	// under the surrounding retry structure.
	freeHead atomic.Uint64

	// Observability counters, sharded: every worker on a delete-heavy
	// workload bumps them (Release on every remove, the reuse branch on
	// every recycled Alloc), so single atomic words would be the table's
	// only all-threads shared write traffic besides the free stack
	// itself.
	released telemetry.Counter // successful releases
	reused   telemetry.Counter // allocations served from the free list
}

// headWith installs slot as the new top, bumping the version.
func headWith(old, slot uint64) uint64 {
	return (old>>slotBits+1)<<slotBits | slot
}

// NewReclaimingTable creates an empty reclaiming header table.
func NewReclaimingTable() *ReclaimingTable {
	t := &ReclaimingTable{}
	t.next.Store(1) // reserve slot 0 for ⊥
	return t
}

func (t *ReclaimingTable) words(slot uint64) *rsegment {
	return t.segments[slot>>segmentBits].Load()
}

func (t *ReclaimingTable) lockWord(slot uint64) *atomic.Uint64 {
	return &t.words(slot)[(slot&(segmentSize-1))*4]
}
func (t *ReclaimingTable) dataWord(slot uint64) *atomic.Uint64 {
	return &t.words(slot)[(slot&(segmentSize-1))*4+1]
}
func (t *ReclaimingTable) genWord(slot uint64) *atomic.Uint64 {
	return &t.words(slot)[(slot&(segmentSize-1))*4+2]
}
func (t *ReclaimingTable) verWord(slot uint64) *atomic.Uint64 {
	return &t.words(slot)[(slot&(segmentSize-1))*4+3]
}

// Alloc implements HeaderTable, preferring recycled slots.
func (t *ReclaimingTable) Alloc() uint64 {
	for {
		h := t.freeHead.Load()
		slot := h & slotMask
		if slot == 0 {
			break // stack empty: materialize a fresh slot
		}
		// The next link lives in the free slot's data word. If the slot
		// is popped and recycled between the loads, the value read here
		// is garbage — and the version bump makes the CAS fail.
		next := t.dataWord(slot).Load() & slotMask
		if t.freeHead.CompareAndSwap(h, headWith(h, next)) {
			t.reused.Inc()
			gen := t.genWord(slot).Load()
			t.dataWord(slot).Store(0)
			// A recycled slot starts a fresh value: its version word must
			// not leak the previous occupant's stamp (a stale high version
			// would hide the new value from snapshots that should see it).
			t.verWord(slot).Store(0)
			// Making the lock word live publishes the recycled slot;
			// stale handles are fenced off by the already-incremented
			// generation.
			t.lockWord(slot).Store(0)
			return handleOf(slot, gen)
		}
	}
	slot := t.next.Add(1) - 1
	seg := slot >> segmentBits
	if t.segments[seg].Load() == nil {
		t.segments[seg].CompareAndSwap(nil, new(rsegment))
	}
	return handleOf(slot, 0)
}

// Release implements HeaderTable: it invalidates the handle's generation
// and recycles the slot. Only the first caller for a given generation
// takes effect; the value must already be deleted (TryDelete succeeded)
// or never published.
func (t *ReclaimingTable) Release(h uint64) {
	slot, gen := slotOf(h), genOf(h)
	if slot == 0 {
		return
	}
	// The generation CAS makes release exactly-once: losers see a
	// mismatch and back off. The winner owns the slot until it is pushed,
	// so writing the next link into its data word is unshared.
	if !t.genWord(slot).CompareAndSwap(gen, (gen+1)&(1<<24-1)) {
		return
	}
	t.released.Inc()
	for {
		head := t.freeHead.Load()
		t.dataWord(slot).Store(head & slotMask)
		if t.freeHead.CompareAndSwap(head, headWith(head, slot)) {
			return
		}
	}
}

// validate reports whether the handle's generation is still current.
func (t *ReclaimingTable) validate(h uint64) bool {
	return t.genWord(slotOf(h)).Load() == genOf(h)
}

// IsDeleted implements HeaderTable; stale handles read as deleted.
func (t *ReclaimingTable) IsDeleted(h uint64) bool {
	if !t.validate(h) {
		return true
	}
	return t.lockWord(slotOf(h)).Load()&deletedBit != 0
}

// TryReadLock implements HeaderTable.
func (t *ReclaimingTable) TryReadLock(h uint64) bool {
	slot := slotOf(h)
	w := t.lockWord(slot)
	for spins := 0; ; spins++ {
		if !t.validate(h) {
			return false
		}
		v := w.Load()
		if v&deletedBit != 0 {
			return false
		}
		if v&writerBit != 0 {
			backoff(spins)
			continue
		}
		if w.CompareAndSwap(v, v+1) {
			// The slot may have been recycled between validate and the
			// CAS; re-verify under the lock, where recycling is blocked.
			if !t.validate(h) {
				w.Add(^uint64(0))
				return false
			}
			return true
		}
	}
}

// ReadUnlock implements HeaderTable.
func (t *ReclaimingTable) ReadUnlock(h uint64) {
	t.lockWord(slotOf(h)).Add(^uint64(0))
}

// TryWriteLock implements HeaderTable.
func (t *ReclaimingTable) TryWriteLock(h uint64) bool {
	slot := slotOf(h)
	w := t.lockWord(slot)
	for spins := 0; ; spins++ {
		if !t.validate(h) {
			return false
		}
		v := w.Load()
		if v&deletedBit != 0 {
			return false
		}
		if v != 0 {
			backoff(spins)
			continue
		}
		if w.CompareAndSwap(0, writerBit) {
			if !t.validate(h) {
				w.Store(0)
				return false
			}
			return true
		}
	}
}

// WriteUnlock implements HeaderTable.
func (t *ReclaimingTable) WriteUnlock(h uint64) {
	t.lockWord(slotOf(h)).Store(0)
}

// TryDelete implements HeaderTable.
func (t *ReclaimingTable) TryDelete(h uint64) bool {
	if !t.TryWriteLock(h) {
		return false
	}
	t.lockWord(slotOf(h)).Store(deletedBit)
	return true
}

// DeleteLocked implements HeaderTable.
func (t *ReclaimingTable) DeleteLocked(h uint64) {
	t.lockWord(slotOf(h)).Store(deletedBit)
}

// LoadData implements HeaderTable.
func (t *ReclaimingTable) LoadData(h uint64) uint64 {
	return t.dataWord(slotOf(h)).Load()
}

// StoreData implements HeaderTable.
func (t *ReclaimingTable) StoreData(h uint64, ref uint64) {
	t.dataWord(slotOf(h)).Store(ref)
}

// LoadVersion implements HeaderTable.
func (t *ReclaimingTable) LoadVersion(h uint64) uint64 {
	return t.verWord(slotOf(h)).Load()
}

// StoreVersion implements HeaderTable.
func (t *ReclaimingTable) StoreVersion(h uint64, v uint64) {
	t.verWord(slotOf(h)).Store(v)
}

// Count implements HeaderTable: slots ever materialized (reuse keeps
// this bounded by the peak live-value count, the point of the paper's
// epoch extension).
func (t *ReclaimingTable) Count() uint64 { return t.next.Load() - 1 }

// Released returns the number of slots recycled so far.
func (t *ReclaimingTable) Released() int64 { return t.released.Load() }

// Reused returns the number of allocations served from recycled slots.
func (t *ReclaimingTable) Reused() int64 { return t.reused.Load() }
